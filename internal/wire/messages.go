package wire

import (
	"context"
	"errors"

	"repro"
	"repro/internal/core"
	"repro/internal/query"
)

// Error is a failure transported over the wire: the server encodes the
// request's error as a stable code plus its message, and the client rebuilds
// an error that still satisfies errors.Is against the public typed errors —
// so error-handling code behaves identically against a local Store and a
// remote one.
type Error struct {
	Code string
	Msg  string
}

// Error implements error with the server-rendered message.
func (e *Error) Error() string { return e.Msg }

// Unwrap resolves the code to its typed sentinel, so errors.Is sees through
// the network boundary.
func (e *Error) Unwrap() error { return sentinel(e.Code) }

// Stable error codes. The repro-level codes map 1:1 onto the public typed
// errors; the protocol-level codes have sentinels of their own below.
const (
	CodeUnknownRelation  = "unknown-relation"
	CodeArityMismatch    = "arity-mismatch"
	CodeRelationExists   = "relation-exists"
	CodeValueOutOfRange  = "value-out-of-range"
	CodeUnknownAlgorithm = "unknown-algorithm"
	CodeUnknownBackend   = "unknown-backend"
	CodeUnboundHeadVar   = "unbound-head-var"
	CodeUnboundVar       = "unbound-var"
	CodeUnboundPredVar   = "unbound-pred-var"
	CodeUnsupportedQuery = "unsupported-query"
	CodeTxnUnplanned     = "txn-unplanned"
	CodeForeignPrepared  = "foreign-prepared"
	CodeCancelled        = "cancelled"
	CodeDeadline         = "deadline-exceeded"
	CodeShuttingDown     = "shutting-down"
	CodeOverloaded       = "overloaded"
	CodeUnknownHandle    = "unknown-handle"
	CodeUnknownTxn       = "unknown-txn"
	CodeUnknownStore     = "unknown-store"
	CodeVersion          = "version-mismatch"
	CodeProtocol         = "protocol"
	CodeInternal         = "internal"
)

// Protocol-level sentinels (the repro-level ones are the public typed
// errors). The client package re-exports these.
var (
	// ErrShuttingDown reports a request received while the server drains.
	ErrShuttingDown = errors.New("server shutting down")
	// ErrOverloaded reports a request rejected by per-store admission
	// control: the store's in-flight budget is exhausted and its queue is
	// full. The request was never started; retrying after backoff is safe.
	ErrOverloaded = errors.New("store overloaded")
	// ErrUnknownHandle reports a prepared-statement handle the connection
	// does not hold (closed, or from another connection).
	ErrUnknownHandle = errors.New("unknown prepared-statement handle")
	// ErrUnknownTxn reports a transaction id the connection does not hold.
	ErrUnknownTxn = errors.New("unknown transaction")
	// ErrUnknownStore reports a Hello naming a store the server does not
	// host.
	ErrUnknownStore = errors.New("unknown store")
	// ErrVersion reports a protocol-version mismatch in the Hello exchange.
	ErrVersion = errors.New("protocol version mismatch")
	// ErrProtocol reports a malformed or out-of-order frame.
	ErrProtocol = errors.New("protocol error")
)

// codeTable pairs every code with its sentinel; ErrorCode scans it with
// errors.Is and sentinel() indexes it by code.
var codeTable = []struct {
	code string
	err  error
}{
	{CodeUnknownRelation, repro.ErrUnknownRelation},
	{CodeArityMismatch, repro.ErrArityMismatch},
	{CodeRelationExists, repro.ErrRelationExists},
	{CodeValueOutOfRange, repro.ErrValueOutOfRange},
	{CodeUnknownAlgorithm, repro.ErrUnknownAlgorithm},
	{CodeUnknownBackend, repro.ErrUnknownBackend},
	{CodeUnboundHeadVar, repro.ErrUnboundHeadVar},
	{CodeUnboundVar, repro.ErrUnboundVar},
	{CodeUnboundPredVar, repro.ErrUnboundPredVar},
	{CodeUnsupportedQuery, repro.ErrUnsupportedQuery},
	{CodeTxnUnplanned, repro.ErrTxnUnplanned},
	{CodeForeignPrepared, repro.ErrForeignPrepared},
	{CodeCancelled, context.Canceled},
	{CodeDeadline, context.DeadlineExceeded},
	{CodeShuttingDown, ErrShuttingDown},
	{CodeOverloaded, ErrOverloaded},
	{CodeUnknownHandle, ErrUnknownHandle},
	{CodeUnknownTxn, ErrUnknownTxn},
	{CodeUnknownStore, ErrUnknownStore},
	{CodeVersion, ErrVersion},
	{CodeProtocol, ErrProtocol},
}

// ErrorCode maps an error to its stable wire code (CodeInternal when no
// typed sentinel matches).
func ErrorCode(err error) string {
	for _, e := range codeTable {
		if errors.Is(err, e.err) {
			return e.code
		}
	}
	return CodeInternal
}

func sentinel(code string) error {
	for _, e := range codeTable {
		if e.code == code {
			return e.err
		}
	}
	return nil
}

// EncodeErr renders an error as a TErr payload.
func EncodeErr(err error) []byte {
	var e Enc
	e.Str(ErrorCode(err))
	e.Str(err.Error())
	return e.Bytes()
}

// DecodeErr rebuilds the error from a TErr payload.
func DecodeErr(body []byte) error {
	d := NewDec(body)
	code, msg := d.Str(), d.Str()
	if d.Err() != nil {
		return d.Err()
	}
	return &Error{Code: code, Msg: msg}
}

// Atom is one query atom on the wire.
type Atom struct {
	Rel  string
	Vars []string
}

// Query is a join query on the wire: the name, the output variables (the
// plain head), the body atoms, and — since protocol version 2 — the body
// comparison predicates and the aggregate head terms. It reconstructs
// losslessly via ToQuery: projection, constant-carrying atoms (their
// desugared placeholder variables travel as ordinary variables), predicates,
// and aggregates all survive the round trip.
type Query struct {
	Name  string
	Head  []string
	Atoms []Atom
	Preds []query.Pred
	Aggs  []query.Agg
}

// FromQuery converts the in-memory representation for transport.
func FromQuery(q *query.Query) Query {
	wq := Query{Name: q.Name, Head: q.Out(), Preds: q.Preds, Aggs: q.Aggs}
	wq.Atoms = make([]Atom, len(q.Atoms))
	for i, a := range q.Atoms {
		wq.Atoms[i] = Atom{Rel: a.Rel, Vars: a.Vars}
	}
	return wq
}

// ToQuery rebuilds the in-memory query, re-validating structure, head
// coverage, operator and aggregate-function names (a hostile peer can send
// anything).
func (wq Query) ToQuery() (*query.Query, error) {
	atoms := make([]query.Atom, len(wq.Atoms))
	for i, a := range wq.Atoms {
		atoms[i] = query.Atom{Rel: a.Rel, Vars: a.Vars}
	}
	q, err := query.NewRule(wq.Name, wq.Head, wq.Aggs, wq.Preds, atoms...)
	if err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// Encode appends the query to a payload. Predicate constants ride the
// signed encoding: the storage domain is non-negative, but a hostile or
// merely careless peer may write literals like "a > -1", and clamping them
// would change the predicate's meaning.
func (wq Query) Encode(e *Enc) {
	e.Str(wq.Name)
	e.StrList(wq.Head)
	e.Int(len(wq.Atoms))
	for _, a := range wq.Atoms {
		e.Str(a.Rel)
		e.StrList(a.Vars)
	}
	e.Int(len(wq.Preds))
	for _, p := range wq.Preds {
		e.Str(p.Left)
		e.Str(string(p.Op))
		if p.IsVar {
			e.U64(1)
			e.Str(p.Right)
		} else {
			e.U64(0)
			e.I64(p.Const)
		}
	}
	e.Int(len(wq.Aggs))
	for _, a := range wq.Aggs {
		e.Str(string(a.Func))
		e.Str(a.Var)
	}
}

// DecodeQuery consumes a query from a payload.
func DecodeQuery(d *Dec) Query {
	var wq Query
	wq.Name = d.Str()
	wq.Head = d.StrList()
	n := d.Count()
	if d.Err() != nil {
		return Query{}
	}
	wq.Atoms = make([]Atom, n)
	for i := range wq.Atoms {
		wq.Atoms[i] = Atom{Rel: d.Str(), Vars: d.StrList()}
	}
	np := d.Count()
	if d.Err() != nil {
		return Query{}
	}
	for i := 0; i < np; i++ {
		p := query.Pred{Left: d.Str(), Op: query.CmpOp(d.Str())}
		if d.U64() != 0 {
			p.IsVar = true
			p.Right = d.Str()
		} else {
			p.Const = d.I64()
		}
		wq.Preds = append(wq.Preds, p)
	}
	na := d.Count()
	if d.Err() != nil {
		return Query{}
	}
	for i := 0; i < na; i++ {
		wq.Aggs = append(wq.Aggs, query.Agg{Func: query.AggFunc(d.Str()), Var: d.Str()})
	}
	return wq
}

// Option flag bits (the ablation toggles of repro.Options).
const (
	flagDisableProbeMemo = 1 << iota
	flagDisableComplete
	flagDisableSkeleton
	flagDisableCountReuse
)

// EncodeOptions appends engine options to a payload.
func EncodeOptions(e *Enc, o repro.Options) {
	e.Str(string(o.Algorithm))
	e.Int(o.Workers)
	e.Int(o.Granularity)
	e.StrList(o.GAO)
	e.Str(string(o.Backend))
	var flags uint64
	if o.DisableProbeMemo {
		flags |= flagDisableProbeMemo
	}
	if o.DisableComplete {
		flags |= flagDisableComplete
	}
	if o.DisableSkeleton {
		flags |= flagDisableSkeleton
	}
	if o.DisableCountReuse {
		flags |= flagDisableCountReuse
	}
	e.U64(flags)
	e.Int(o.MaxRows)
	// The shard spec (protocol version 3): the per-host partition of a
	// distributed fan-out. Range bounds ride the signed encoding (a range
	// partitioner's first shard legitimately starts below zero).
	if o.Shard == nil {
		e.U64(0)
		return
	}
	e.U64(1)
	e.Str(o.Shard.Kind)
	e.I64(o.Shard.Lo)
	e.I64(o.Shard.Hi)
	e.U64(o.Shard.Mod)
	e.U64(o.Shard.Res)
}

// DecodeOptions consumes engine options from a payload.
func DecodeOptions(d *Dec) repro.Options {
	var o repro.Options
	o.Algorithm = repro.Algorithm(d.Str())
	o.Workers = d.Int()
	o.Granularity = d.Int()
	o.GAO = d.StrList()
	o.Backend = repro.Backend(d.Str())
	flags := d.U64()
	o.DisableProbeMemo = flags&flagDisableProbeMemo != 0
	o.DisableComplete = flags&flagDisableComplete != 0
	o.DisableSkeleton = flags&flagDisableSkeleton != 0
	o.DisableCountReuse = flags&flagDisableCountReuse != 0
	o.MaxRows = d.Int()
	if d.U64() != 0 {
		o.Shard = &repro.Shard{
			Kind: d.Str(),
			Lo:   d.I64(),
			Hi:   d.I64(),
			Mod:  d.U64(),
			Res:  d.U64(),
		}
	}
	return o
}

// EncodeStats appends the unified counter snapshot to a payload.
func EncodeStats(e *Enc, s core.Stats) {
	for _, v := range [...]int64{
		s.PlanCacheHits, s.PlanCacheMisses, s.GAODerivations, s.IndexBindings,
		s.Executions, s.Outputs, s.Seeks, s.Probes, s.ProbeMemoHits,
		s.Constraints, s.FreeTupleSteps, s.ReuseHits, s.MemoStores,
	} {
		e.I64(v)
	}
}

// DecodeStats consumes a counter snapshot from a payload.
func DecodeStats(d *Dec) core.Stats {
	var s core.Stats
	for _, p := range [...]*int64{
		&s.PlanCacheHits, &s.PlanCacheMisses, &s.GAODerivations, &s.IndexBindings,
		&s.Executions, &s.Outputs, &s.Seeks, &s.Probes, &s.ProbeMemoHits,
		&s.Constraints, &s.FreeTupleSteps, &s.ReuseHits, &s.MemoStores,
	} {
		*p = d.I64()
	}
	return s
}
