package bench

import (
	"strings"
	"testing"
	"time"
)

// tinyConfig runs every artifact on the smallest catalog dataset with a
// short timeout: this exercises the full harness code path (sites, sample
// swapping, all engines, formatting) without taking benchmark-scale time.
func tinyConfig(out *strings.Builder) Config {
	return Config{
		Out:      out,
		Timeout:  400 * time.Millisecond,
		Datasets: []string{"ca-GrQc"},
		Repeats:  1,
		Workers:  1,
	}
}

func TestTablesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test")
	}
	var out strings.Builder
	h := NewHarness(tinyConfig(&out))
	for name, f := range map[string]func() error{
		"Table1": h.Table1,
		"Table3": h.Table3,
		"Table4": h.Table4,
		"Table6": h.Table6,
	} {
		if err := f(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	s := out.String()
	for _, want := range []string{"Table 1", "Table 3", "Table 4", "Table 6", "ca-GrQc", "3-clique"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestTable7AndFiguresSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test")
	}
	var out strings.Builder
	cfg := tinyConfig(&out)
	h := NewHarness(cfg)
	if err := h.Table7(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "2-lollipop") {
		t.Error("Table 7 output missing lollipop block")
	}
	// Figures run on the fixed big stand-ins; keep to the clique figure with
	// an even tighter budget by checking argument validation only here.
	if err := h.FigurePathScaling(9); err == nil {
		t.Error("invalid figure number should fail")
	}
	if err := h.FigureCliqueScaling(2); err == nil {
		t.Error("invalid figure number should fail")
	}
}

func TestResultFormatting(t *testing.T) {
	cases := []struct {
		r    result
		want string
	}{
		{result{seconds: 0.001, status: ok}, "0.001"},
		{result{seconds: 1.234, status: ok}, "1.23"},
		{result{seconds: 42.4, status: ok}, "42"},
		{result{status: timeout}, "-"},
		{result{status: memory}, "mem"},
		{result{status: notSupported}, "n/a"},
		{result{status: failed}, "err"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("%+v => %q, want %q", c.r, got, c.want)
		}
	}
}

func TestRatioFormatting(t *testing.T) {
	okFast := result{seconds: 1, status: ok}
	okSlow := result{seconds: 4, status: ok}
	to := result{status: timeout}
	if got := ratio(okSlow, okFast); got != "4.00" {
		t.Errorf("ratio = %q", got)
	}
	if got := ratio(to, okFast); got != "inf" {
		t.Errorf("timeout baseline ratio = %q, want inf", got)
	}
	if got := ratio(okFast, to); got != "-" {
		t.Errorf("timeout treatment ratio = %q, want -", got)
	}
}

func TestMatrixLayout(t *testing.T) {
	var out strings.Builder
	m := newMatrix("T", "row", []string{"c1", "longcolumn"})
	r := m.addRow("r1")
	m.set(r, 0, "x")
	m.note("hello %d", 7)
	m.write(&out)
	s := out.String()
	if !strings.Contains(s, "longcolumn") || !strings.Contains(s, "note: hello 7") {
		t.Errorf("matrix output malformed:\n%s", s)
	}
	// Empty cells render as ".".
	if !strings.Contains(s, ".") {
		t.Error("empty cell placeholder missing")
	}
}

func TestConfigTiers(t *testing.T) {
	small := Config{Scale: "small"}.datasets()
	med := Config{Scale: "medium"}.datasets()
	full := Config{Scale: "full"}.datasets()
	if len(small) != 8 || len(med) != 12 || len(full) != 15 {
		t.Errorf("tier sizes = %d/%d/%d, want 8/12/15", len(small), len(med), len(full))
	}
	over := Config{Scale: "full", Datasets: []string{"ca-GrQc"}}.datasets()
	if len(over) != 1 {
		t.Errorf("override ignored: %v", over)
	}
}
