package query

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestParseTriangle(t *testing.T) {
	q, err := Parse("triangle", "edge(a,b), edge(b,c), edge(a,c)")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Atoms) != 3 {
		t.Fatalf("got %d atoms, want 3", len(q.Atoms))
	}
	if !reflect.DeepEqual(q.Vars(), []string{"a", "b", "c"}) {
		t.Errorf("Vars = %v", q.Vars())
	}
	if got := q.Atoms[1]; got.Rel != "edge" || !reflect.DeepEqual(got.Vars, []string{"b", "c"}) {
		t.Errorf("atom 1 = %v", got)
	}
}

func TestParsePaperSyntax(t *testing.T) {
	// Exactly the 3-path query string from §5.1, with trailing period.
	q, err := Parse("3-path", "v1(a), v2(d), edge(a, b), edge(b, c), edge(c, d).")
	if err != nil {
		t.Fatal(err)
	}
	if q.NumVars() != 4 || len(q.Atoms) != 5 {
		t.Errorf("NumVars=%d atoms=%d", q.NumVars(), len(q.Atoms))
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"edge",
		"edge(",
		"edge()",
		"edge(a,)",
		"edge(a) garbage",
		"edge(a b)",
		"edge(a,a)", // repeated variable in one atom
		"1edge(a)",
	} {
		if _, err := Parse("bad", src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	src := "v1(a), edge(a, b), edge(b, c)"
	q := MustParse("q", src)
	q2, err := Parse("q", Format(q))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(q, q2) {
		t.Errorf("round trip mismatch: %v vs %v", q, q2)
	}
}

func TestAtomsWith(t *testing.T) {
	q := MustParse("q", "v1(a), edge(a,b), edge(b,c)")
	if got := q.AtomsWith("b"); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("AtomsWith(b) = %v", got)
	}
	if got := q.AtomsWith("z"); got != nil {
		t.Errorf("AtomsWith(z) = %v", got)
	}
}

func TestCliqueBuilder(t *testing.T) {
	q := Clique(3)
	if len(q.Atoms) != 3 || q.NumVars() != 3 {
		t.Fatalf("3-clique: %v", q)
	}
	q4 := Clique(4)
	if len(q4.Atoms) != 6 || q4.NumVars() != 4 {
		t.Fatalf("4-clique: %v", q4)
	}
	for _, a := range q4.Atoms {
		if a.Rel != Fwd {
			t.Errorf("clique atom over %s, want %s", a.Rel, Fwd)
		}
	}
}

func TestCycleBuilder(t *testing.T) {
	q := Cycle(4)
	if len(q.Atoms) != 4 || q.NumVars() != 4 {
		t.Fatalf("4-cycle: %v", q)
	}
	last := q.Atoms[len(q.Atoms)-1]
	if !reflect.DeepEqual(last.Vars, []string{"a", "d"}) {
		t.Errorf("closing atom = %v, want fwd(a, d)", last)
	}
}

func TestPathBuilder(t *testing.T) {
	q := Path(3)
	want := MustParse("3-path", "v1(a), v2(d), edge(a, b), edge(b, c), edge(c, d)")
	if Format(q) != Format(want) {
		t.Errorf("3-path = %s, want %s", Format(q), Format(want))
	}
	if q4 := Path(4); q4.NumVars() != 5 || len(q4.Atoms) != 6 {
		t.Errorf("4-path shape: %v", q4)
	}
}

func TestTreeAndCombBuilders(t *testing.T) {
	if q := Tree(1); q.NumVars() != 3 || len(q.Atoms) != 4 {
		t.Errorf("1-tree shape: %v", q)
	}
	if q := Tree(2); q.NumVars() != 7 || len(q.Atoms) != 10 {
		t.Errorf("2-tree shape: %v", q)
	}
	if q := Comb(); q.NumVars() != 4 || len(q.Atoms) != 5 {
		t.Errorf("2-comb shape: %v", q)
	}
}

func TestLollipopBuilder(t *testing.T) {
	q := Lollipop(2)
	// (A)(AB)(BC)(CD)(DE)(CE) — 1 sample atom + 2 path edges + 3 clique edges.
	if q.NumVars() != 5 || len(q.Atoms) != 6 {
		t.Fatalf("2-lollipop shape: %v", q)
	}
	if !strings.Contains(Format(q), "edge(c, e)") {
		t.Errorf("2-lollipop missing closing triangle edge: %s", Format(q))
	}
	q3 := Lollipop(3)
	// 1 sample + 3 path edges + 6 clique edges over 7 vars.
	if q3.NumVars() != 7 || len(q3.Atoms) != 10 {
		t.Fatalf("3-lollipop shape: %v", q3)
	}
	path, clique := LollipopSplit(2)
	if !reflect.DeepEqual(path, []string{"a", "b", "c"}) || !reflect.DeepEqual(clique, []string{"c", "d", "e"}) {
		t.Errorf("LollipopSplit(2) = %v, %v", path, clique)
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	for name, fn := range map[string]func(){
		"Clique(2)":   func() { Clique(2) },
		"Cycle(2)":    func() { Cycle(2) },
		"Path(0)":     func() { Path(0) },
		"Tree(3)":     func() { Tree(3) },
		"Lollipop(4)": func() { Lollipop(4) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestValidate(t *testing.T) {
	if err := New("empty").Validate(); err == nil {
		t.Error("empty query should fail validation")
	}
	q := New("dup", Atom{Rel: "R", Vars: []string{"a", "a"}})
	if err := q.Validate(); err == nil {
		t.Error("repeated-variable atom should fail validation")
	}
	if err := Clique(3).Validate(); err != nil {
		t.Errorf("Clique(3) invalid: %v", err)
	}
}

func TestParseRuleHead(t *testing.T) {
	q, err := Parse("ignored", "rev(b, a) :- e(a, b).")
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != "rev" {
		t.Errorf("name = %q, want rev", q.Name)
	}
	if vars := q.Vars(); len(vars) != 2 || vars[0] != "b" || vars[1] != "a" {
		t.Errorf("vars = %v, want [b a]", vars)
	}
	if len(q.Atoms) != 1 || q.Atoms[0].Rel != "e" {
		t.Errorf("atoms = %v", q.Atoms)
	}
}

func TestParseRuleHeadErrors(t *testing.T) {
	if _, err := Parse("q", "out(a, z) :- e(a, b)"); !errors.Is(err, ErrUnboundHeadVar) {
		t.Errorf("unbound head var: %v, want ErrUnboundHeadVar", err)
	}
	q, err := Parse("q", "out(a) :- e(a, b)")
	if err != nil {
		t.Errorf("projection head should parse: %v", err)
	} else if !q.Projected() || q.Prefix() != 1 {
		t.Errorf("out(a) :- e(a, b): Projected=%v Prefix=%d, want true 1", q.Projected(), q.Prefix())
	}
	if _, err := Parse("q", "out(a, a) :- e(a, b)"); err == nil {
		t.Error("duplicate head variable should fail")
	}
	if _, err := Parse("q", "out(a, b) :- "); err == nil {
		t.Error("empty body should fail")
	}
	// ":-" after a later atom is trailing garbage, not a second head.
	if _, err := Parse("q", "e(a, b), out(a, b) :- e(b, a)"); err == nil {
		t.Error("mid-query rule arrow should fail")
	}
}
