// Command graphjoin runs any graph-pattern query on any dataset with any
// engine — the reproduction's equivalent of a database client:
//
//	graphjoin -dataset ego-Facebook -query 3-clique -engine lftj
//	graphjoin -dataset ca-GrQc -engine ms -selectivity 10 \
//	    -datalog 'v1(a), v2(d), edge(a,b), edge(b,c), edge(c,d)'
//	graphjoin -nodes 10000 -edges 50000 -model hk -query 4-clique -engine graphlab
//	graphjoin -dataset ca-GrQc -query 3-path -engine ms -explain -stats -repeat 100
//
// The query is prepared once (validated, GAO fixed, indexes bound) and then
// executed -repeat times; -explain prints the compiled plan and -stats the
// unified execution counters.
//
// Named queries: 3-clique, 4-clique, 4-cycle, 3-path, 4-path, 1-tree,
// 2-tree, 2-comb, 2-lollipop, 3-lollipop.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/query"
)

func main() {
	var (
		datasetName = flag.String("dataset", "", "catalog dataset name (see DESIGN.md)")
		model       = flag.String("model", "ba", "generator when -dataset empty: er | ba | hk")
		nodes       = flag.Int("nodes", 10000, "generated graph nodes")
		edges       = flag.Int("edges", 50000, "generated graph edges")
		seed        = flag.Int64("seed", 1, "generator seed")
		queryName   = flag.String("query", "3-clique", "named benchmark query")
		datalog     = flag.String("datalog", "", "inline Datalog query body (overrides -query)")
		engineName  = flag.String("engine", "lftj", "lftj | ms | hybrid | psql | monetdb | yannakakis | graphlab")
		backendName = flag.String("backend", "", "index backend for lftj/ms: flat | csr | csr-sharded (empty = csr)")
		selectivity = flag.Int("selectivity", 10, "node-sample selectivity s (samples pick nodes w.p. 1/s)")
		timeout     = flag.Duration("timeout", 30*time.Minute, "execution timeout (paper protocol: 30m)")
		workers     = flag.Int("workers", 0, "worker pool size (0 = all cores)")
		showAGM     = flag.Bool("agm", false, "print the AGM output-size bound")
		explain     = flag.Bool("explain", false, "print the compiled plan (GAO, per-atom index, AGM bound)")
		showStats   = flag.Bool("stats", false, "print the unified execution counters after the run")
		repeat      = flag.Int("repeat", 1, "executions of the prepared query (plan compiled once)")
	)
	flag.Parse()

	var g *repro.Graph
	var err error
	if *datasetName != "" {
		g, err = repro.Dataset(*datasetName)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		m := repro.BarabasiAlbert
		switch *model {
		case "er":
			m = repro.ErdosRenyi
		case "hk":
			m = repro.HolmeKim
		case "ba":
		default:
			log.Fatalf("unknown model %q", *model)
		}
		g = repro.GenerateGraph(m, *nodes, *edges, *seed)
	}
	g.SetSelectivity(*selectivity, *seed)

	var q *repro.Query
	if *datalog != "" {
		q, err = repro.ParseQuery("adhoc", *datalog)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		q, err = namedQuery(*queryName)
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("graph: %d nodes, %d edges; query %s: %s\n", g.Nodes(), g.Edges(), q.Name, q)
	if *showAGM {
		if bound, err := repro.AGMBound(g, q); err == nil {
			fmt.Printf("AGM bound: %.3g\n", bound)
		}
	}

	// Prepare once: the query is validated, the GAO fixed, and the
	// GAO-consistent indexes bound here; the executions below are pure.
	prepStart := time.Now()
	p, err := g.Prepare(q, repro.Options{Algorithm: *engineName, Workers: *workers, Backend: *backendName})
	if err != nil {
		log.Fatalf("%s: %v", *engineName, err)
	}
	prepElapsed := time.Since(prepStart)
	if *explain {
		fmt.Print(p.Explain())
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	start := time.Now()
	var n int64
	for i := 0; i < max(*repeat, 1); i++ {
		n, err = p.Count(ctx)
		if err != nil {
			log.Fatalf("%s: %v", *engineName, err)
		}
	}
	elapsed := time.Since(start)
	if *repeat > 1 {
		fmt.Printf("%s: %d results; %d runs in %v (%v/run, prepared in %v)\n",
			*engineName, n, *repeat, elapsed.Round(time.Millisecond),
			(elapsed / time.Duration(*repeat)).Round(time.Microsecond), prepElapsed.Round(time.Microsecond))
	} else {
		fmt.Printf("%s: %d results in %v (prepared in %v)\n",
			*engineName, n, elapsed.Round(time.Millisecond), prepElapsed.Round(time.Microsecond))
	}
	if *showStats {
		st := p.Stats()
		fmt.Printf("stats: executions=%d outputs=%d seeks=%d probes=%d memoHits=%d constraints=%d freeTupleSteps=%d reuseHits=%d memoStores=%d\n",
			st.Executions, st.Outputs, st.Seeks, st.Probes, st.ProbeMemoHits, st.Constraints, st.FreeTupleSteps, st.ReuseHits, st.MemoStores)
		fmt.Printf("plan:  cacheHits=%d cacheMisses=%d gaoDerivations=%d indexBindings=%d\n",
			st.PlanCacheHits, st.PlanCacheMisses, st.GAODerivations, st.IndexBindings)
	}
}

func namedQuery(name string) (*repro.Query, error) {
	switch name {
	case "3-clique", "triangle":
		return query.Clique(3), nil
	case "4-clique":
		return query.Clique(4), nil
	case "4-cycle":
		return query.Cycle(4), nil
	case "3-path":
		return query.Path(3), nil
	case "4-path":
		return query.Path(4), nil
	case "1-tree":
		return query.Tree(1), nil
	case "2-tree":
		return query.Tree(2), nil
	case "2-comb":
		return query.Comb(), nil
	case "2-lollipop":
		return query.Lollipop(2), nil
	case "3-lollipop":
		return query.Lollipop(3), nil
	default:
		return nil, fmt.Errorf("unknown query %q", name)
	}
}
