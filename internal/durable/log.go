// Package durable is the persistence layer under repro.Store: a write-ahead
// log whose records are the store's own logical update batches (define, load,
// delta — the same shapes core.DB applies in memory), periodic snapshot
// checkpoints of every relation's sorted base rows, and the recovery
// procedure that folds the two back together on open. The log is the redo
// log the overlay/delta machinery already implies: replaying it through
// core.DB.ApplyDeltas reconstructs exactly the state a crashed process had
// acknowledged as durable.
//
// # Log format
//
// The log is a sequence of segment files named wal-<firstLSN>.log. Every
// segment starts with an 8-byte magic and holds length-prefixed, CRC-checked
// records:
//
//	uint32  body length (big-endian)
//	uint32  CRC-32 (IEEE) of the body
//	body    uvarint LSN, one op byte, op-specific payload
//	        (internal/wire varint codecs: strings, tuples, delta batches)
//
// LSNs are assigned contiguously from 1. A torn or bit-rotted tail — a
// partial header, a body shorter than its declared length, a CRC mismatch —
// marks the end of recoverable history: recovery keeps everything before it,
// reports the damage as ErrCorruptLog, and truncates the tail so the segment
// is appendable again. Corruption anywhere but the tail of the final segment
// is unrecoverable and fails Open.
//
// # Commit and group fsync
//
// Append buffers a record and assigns its LSN under the segment lock; Commit
// blocks until the record is durable per the configured SyncPolicy. Under
// SyncGroup (the default) commits elect a sync leader: the first waiter
// flushes and fsyncs everything appended so far while later arrivals park,
// so concurrent writers amortize one fsync — and an optional accumulation
// window widens the batch further at the cost of commit latency. The
// in-memory apply may race ahead of the disk, but a write is only
// acknowledged to the caller after its record is durable, so a crash rolls
// back precisely to the last acknowledged (fsynced) LSN.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
)

// ErrCorruptLog reports log damage: a torn or corrupt tail dropped during
// recovery (reported via Recovered.TailErr, with everything before it
// restored), or — fatally, from Open itself — corruption in the middle of
// the log, where valid records would follow the damage.
var ErrCorruptLog = errors.New("durable: corrupt log")

// ErrClosed reports an operation on a closed log or manager.
var ErrClosed = errors.New("durable: closed")

// SyncPolicy selects when Commit considers a record durable.
type SyncPolicy string

const (
	// SyncGroup (the default): every Commit waits for an fsync covering its
	// record, and concurrent commits share one fsync through a sync leader.
	SyncGroup SyncPolicy = "group"
	// SyncAlways: like SyncGroup, but never widened by an accumulation
	// window; the name documents intent where configs spell policies out.
	SyncAlways SyncPolicy = "always"
	// SyncNone: Commit only flushes to the OS; fsync is left to the kernel
	// and to checkpoints. A crash can lose acknowledged writes since the
	// last sync, but never corrupts what recovery reads.
	SyncNone SyncPolicy = "none"
)

// ParsePolicy resolves a policy name ("" selects SyncGroup).
func ParsePolicy(s string) (SyncPolicy, error) {
	switch SyncPolicy(s) {
	case "":
		return SyncGroup, nil
	case SyncGroup, SyncAlways, SyncNone:
		return SyncPolicy(s), nil
	}
	return "", fmt.Errorf("durable: unknown sync policy %q (want group, always, or none)", s)
}

const (
	walMagic  = "gjwal\x00\x01\n"
	snapMagic = "gjsnap\x00\x01"
	// maxRecord bounds one record body (1 GiB); anything larger in a header
	// is treated as corruption, not an allocation request.
	maxRecord = 1 << 30
	// bufSize is the append buffer; records are flushed to the OS at every
	// commit, so the buffer only coalesces writes within one record burst.
	bufSize = 1 << 16
)

// segment is one on-disk log file; first is the LSN of its first record.
type segment struct {
	first uint64
	path  string
}

// log is the append side of the WAL. It is safe for concurrent use.
type log struct {
	dir    string
	policy SyncPolicy
	window time.Duration

	// fsyncHist/groupHist, when non-nil, record fsync latency and group-commit
	// batch sizes into the process metrics registry (see Options.MetricsLabel).
	fsyncHist *metrics.Histogram
	groupHist *metrics.Histogram

	// mu guards the active segment file, the append buffer, and LSN
	// assignment. fsyncs happen outside it (see ioLatch) so appends keep
	// flowing while the disk works.
	mu       sync.Mutex
	f        *os.File
	buf      []byte // pending appended bytes not yet written to f
	appended uint64 // highest LSN appended (buffered or written)
	nextLSN  uint64
	segs     []segment
	unpruned uint64 // bytes across un-pruned segments (headers + records)

	// sm guards the durability state; cond wakes Commit waiters after each
	// fsync. syncing doubles as the I/O latch serializing fsync, rotation,
	// and close against each other.
	sm      sync.Mutex
	cond    *sync.Cond
	synced  uint64 // highest LSN known durable
	syncing bool
	err     error // sticky I/O failure; fails all subsequent commits
	closed  bool
}

func newLog(dir string, policy SyncPolicy, window time.Duration) *log {
	l := &log{dir: dir, policy: policy, window: window}
	l.cond = sync.NewCond(&l.sm)
	return l
}

func segPath(dir string, first uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.log", first))
}

func snapPath(dir string, lsn uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%016x.snap", lsn))
}

// parseSeq extracts the hex sequence number from a wal-/snap- filename.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	v, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// encodeRecord renders one record (header + body) ready to append.
func encodeRecord(lsn uint64, op byte, payload []byte) []byte {
	body := make([]byte, 0, binary.MaxVarintLen64+1+len(payload))
	body = binary.AppendUvarint(body, lsn)
	body = append(body, op)
	body = append(body, payload...)
	rec := make([]byte, 8, 8+len(body))
	binary.BigEndian.PutUint32(rec[0:4], uint32(len(body)))
	binary.BigEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(body))
	return append(rec, body...)
}

// append assigns the next LSN and buffers the record. The caller must
// Commit the returned LSN before acknowledging the write.
func (l *log) append(op byte, payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return 0, ErrClosed
	}
	lsn := l.nextLSN
	l.nextLSN++
	rec := encodeRecord(lsn, op, payload)
	l.buf = append(l.buf, rec...)
	l.appended = lsn
	l.unpruned += uint64(len(rec))
	if len(l.buf) >= bufSize {
		if err := l.writeOutLocked(); err != nil {
			return 0, err
		}
	}
	return lsn, nil
}

// unprunedBytes returns the bytes held across un-pruned segments — the
// volume recovery would have to re-read (and the disk keeps) until the next
// checkpoint prunes it.
func (l *log) unprunedBytes() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.unpruned
}

// writeOutLocked drains the append buffer into the OS (no fsync).
func (l *log) writeOutLocked() error {
	if len(l.buf) == 0 {
		return nil
	}
	if _, err := l.f.Write(l.buf); err != nil {
		return err
	}
	l.buf = l.buf[:0]
	return nil
}

// commit blocks until lsn is durable under the configured policy.
func (l *log) commit(lsn uint64) error {
	if l.policy == SyncNone {
		l.mu.Lock()
		defer l.mu.Unlock()
		if l.f == nil {
			return ErrClosed
		}
		return l.writeOutLocked()
	}
	window := time.Duration(0)
	if l.policy == SyncGroup {
		window = l.window
	}
	l.sm.Lock()
	defer l.sm.Unlock()
	for l.synced < lsn {
		if l.err != nil {
			return l.err
		}
		if l.closed {
			return ErrClosed
		}
		if l.syncing {
			// A sync (or rotation) is in flight; it may not cover this
			// record — re-check after it completes.
			l.cond.Wait()
			continue
		}
		l.leaderSync(window)
	}
	return l.err
}

// leaderSync runs one fsync round as the elected leader: flush everything
// appended so far and fsync the segment, then advance the durable watermark
// and wake the other waiters. Called with l.sm held; the latch (l.syncing)
// excludes rotation and close while the locks are released around the I/O.
func (l *log) leaderSync(window time.Duration) {
	l.syncing = true
	prevSynced := l.synced
	l.sm.Unlock()
	if window > 0 {
		// Accumulation window: let more commits pile into this fsync.
		time.Sleep(window)
	}
	l.mu.Lock()
	target := l.appended
	start := time.Now()
	err := l.writeOutLocked()
	f := l.f
	l.mu.Unlock()
	if err == nil && f != nil {
		err = f.Sync()
	}
	if l.fsyncHist != nil {
		l.fsyncHist.ObserveSince(start)
	}
	if err == nil && l.groupHist != nil && target > prevSynced {
		l.groupHist.Observe(float64(target - prevSynced))
	}
	l.sm.Lock()
	l.syncing = false
	if err != nil && l.err == nil {
		l.err = err
	}
	if err == nil && target > l.synced {
		l.synced = target
	}
	l.cond.Broadcast()
}

// acquireIOLatch blocks until no fsync/rotation is in flight and claims the
// latch. Returns false if the log is closed.
func (l *log) acquireIOLatch() bool {
	l.sm.Lock()
	defer l.sm.Unlock()
	for l.syncing {
		l.cond.Wait()
	}
	if l.closed {
		return false
	}
	l.syncing = true
	return true
}

func (l *log) releaseIOLatch(synced uint64, err error) {
	l.sm.Lock()
	l.syncing = false
	if err != nil && l.err == nil {
		l.err = err
	}
	if err == nil && synced > l.synced {
		l.synced = synced
	}
	l.cond.Broadcast()
	l.sm.Unlock()
}

// rotate durably finishes the active segment and starts a fresh one; every
// previously appended record is fsynced as a side effect.
func (l *log) rotate() error {
	if !l.acquireIOLatch() {
		return ErrClosed
	}
	l.mu.Lock()
	target := l.appended
	err := l.writeOutLocked()
	if err == nil {
		err = l.f.Sync()
	}
	if err == nil {
		err = l.f.Close()
		l.f = nil
		if err == nil {
			var f *os.File
			f, err = createSegment(l.dir, l.nextLSN)
			if err == nil {
				l.f = f
				l.segs = append(l.segs, segment{first: l.nextLSN, path: segPath(l.dir, l.nextLSN)})
				l.unpruned += uint64(len(walMagic))
			}
		}
	}
	l.mu.Unlock()
	l.releaseIOLatch(target, err)
	return err
}

// prune deletes segments wholly covered by a checkpoint at lsn (every record
// of the segment has LSN <= lsn) and snapshots older than that checkpoint.
// Deletion failures are ignored: stale files are re-pruned next time and
// never confuse recovery, which always prefers the newest valid snapshot.
func (l *log) prune(lsn uint64) {
	l.mu.Lock()
	keep := l.segs[:0]
	for i, s := range l.segs {
		if i+1 < len(l.segs) && l.segs[i+1].first <= lsn+1 {
			if fi, err := os.Stat(s.path); err == nil {
				if sz := uint64(fi.Size()); sz < l.unpruned {
					l.unpruned -= sz
				} else {
					l.unpruned = 0
				}
			}
			os.Remove(s.path)
			continue
		}
		keep = append(keep, s)
	}
	l.segs = keep
	l.mu.Unlock()
	names, err := os.ReadDir(l.dir)
	if err != nil {
		return
	}
	for _, e := range names {
		if v, ok := parseSeq(e.Name(), "snap-", ".snap"); ok && v < lsn {
			os.Remove(filepath.Join(l.dir, e.Name()))
		}
	}
	syncDir(l.dir)
}

// close flushes, fsyncs, and closes the active segment.
func (l *log) close() error {
	l.sm.Lock()
	for l.syncing {
		l.cond.Wait()
	}
	if l.closed {
		l.sm.Unlock()
		return nil
	}
	l.closed = true
	l.syncing = true
	l.sm.Unlock()

	l.mu.Lock()
	target := l.appended
	err := l.writeOutLocked()
	if err == nil && l.f != nil {
		err = l.f.Sync()
	}
	if l.f != nil {
		if cerr := l.f.Close(); err == nil {
			err = cerr
		}
		l.f = nil
	}
	l.mu.Unlock()
	l.releaseIOLatch(target, err)
	return err
}

// createSegment creates a fresh segment file with its magic durably on disk.
func createSegment(dir string, first uint64) (*os.File, error) {
	f, err := os.OpenFile(segPath(dir, first), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write([]byte(walMagic)); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	syncDir(dir)
	return f, nil
}

// syncDir fsyncs a directory so renames and creates within it are durable.
// Best-effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// rawRecord is one decoded log record before op-level parsing.
type rawRecord struct {
	lsn  uint64
	op   byte
	body []byte // payload after lsn+op
}

// scanSegment reads records from one segment file. It returns the records,
// the byte offset just past the last valid record, and the error that ended
// the scan: nil at a clean EOF, or a description of the torn/corrupt tail.
func scanSegment(path string) (recs []rawRecord, validEnd int64, tailErr error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	if len(data) < len(walMagic) {
		return nil, 0, fmt.Errorf("truncated segment header (%d bytes)", len(data))
	}
	if string(data[:len(walMagic)]) != walMagic {
		return nil, 0, fmt.Errorf("bad segment magic")
	}
	off := int64(len(walMagic))
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return recs, off, nil
		}
		if len(rest) < 8 {
			return recs, off, fmt.Errorf("torn record header (%d bytes)", len(rest))
		}
		n := binary.BigEndian.Uint32(rest[0:4])
		if n > maxRecord {
			return recs, off, fmt.Errorf("record length %d exceeds limit", n)
		}
		if uint64(len(rest)-8) < uint64(n) {
			return recs, off, fmt.Errorf("torn record body (%d of %d bytes)", len(rest)-8, n)
		}
		body := rest[8 : 8+n]
		if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(rest[4:8]) {
			return recs, off, fmt.Errorf("record CRC mismatch")
		}
		lsn, k := binary.Uvarint(body)
		if k <= 0 || k >= len(body) {
			return recs, off, fmt.Errorf("record body too short for LSN+op")
		}
		recs = append(recs, rawRecord{lsn: lsn, op: body[k], body: body[k+1:]})
		off += int64(8 + n)
	}
}

// openLog scans dir's segments, replays nothing itself — it returns the raw
// records after afterLSN for the manager to decode — and leaves the log
// positioned for appending: torn tails truncated away, nextLSN contiguous
// with the last valid record.
func openLog(dir string, policy SyncPolicy, window time.Duration, afterLSN uint64) (*log, []rawRecord, error, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var segs []segment
	for _, e := range entries {
		if v, ok := parseSeq(e.Name(), "wal-", ".log"); ok {
			segs = append(segs, segment{first: v, path: filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })

	l := newLog(dir, policy, window)
	var all []rawRecord
	next := afterLSN + 1 // the LSN recovery expects next
	var tailErr error
	for i, s := range segs {
		// A segment's filename records the LSN it starts at; a first LSN
		// beyond what recovery expects proves records were pruned past the
		// snapshot we fell back to, even if the segment holds no records.
		if s.first > next {
			return nil, nil, nil, fmt.Errorf("%w: LSN gap — %s starts at %d, want %d (a snapshot or segment is missing)", ErrCorruptLog, filepath.Base(s.path), s.first, next)
		}
		recs, validEnd, scanErr := scanSegment(s.path)
		for _, r := range recs {
			if r.lsn <= afterLSN {
				next = maxU64(next, r.lsn+1)
				continue
			}
			if r.lsn != next {
				return nil, nil, nil, fmt.Errorf("%w: LSN gap — have %d, want %d (a snapshot or segment is missing)", ErrCorruptLog, r.lsn, next)
			}
			all = append(all, r)
			next = r.lsn + 1
		}
		if scanErr != nil {
			if i != len(segs)-1 {
				return nil, nil, nil, fmt.Errorf("%w: %s: %v (not at the log tail)", ErrCorruptLog, filepath.Base(s.path), scanErr)
			}
			// Torn/corrupt tail of the final segment: tolerated. Truncate it
			// so new appends extend valid history. If even the segment
			// header is damaged, rewrite it as a valid empty segment —
			// truncating to zero would leave a magic-less file the NEXT
			// recovery rejects wholesale, losing whatever lands after it.
			tailErr = fmt.Errorf("%w: dropped tail of %s after LSN %d: %v", ErrCorruptLog, filepath.Base(s.path), next-1, scanErr)
			if validEnd < int64(len(walMagic)) {
				err = os.WriteFile(s.path, []byte(walMagic), 0o644)
			} else {
				err = os.Truncate(s.path, validEnd)
			}
			if err != nil {
				return nil, nil, nil, err
			}
		}
	}
	l.nextLSN = next
	l.appended = next - 1
	l.synced = next - 1
	l.segs = segs
	for _, s := range segs {
		if fi, err := os.Stat(s.path); err == nil {
			l.unpruned += uint64(fi.Size())
		}
	}
	if len(segs) == 0 {
		f, err := createSegment(dir, l.nextLSN)
		if err != nil {
			return nil, nil, nil, err
		}
		l.f = f
		l.segs = []segment{{first: l.nextLSN, path: segPath(dir, l.nextLSN)}}
		l.unpruned = uint64(len(walMagic))
	} else {
		f, err := os.OpenFile(segs[len(segs)-1].path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, nil, err
		}
		if tailErr != nil {
			// O_APPEND positions at the truncated end; fsync the truncation
			// before trusting new appends to land after valid history.
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, nil, nil, err
			}
		}
		l.f = f
	}
	return l, all, tailErr, nil
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
