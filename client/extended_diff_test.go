package client_test

import (
	"context"
	"fmt"
	"testing"

	"repro"
)

// TestExtendedRemoteDifferential is the local/remote leg of the extended
// differential wall: every query-language feature — projection heads, inline
// constants, comparison predicates, streaming aggregation — must produce the
// same count and the byte-identical row stream whether executed in-process
// or through graphjoind over the wire. The same engine runs on both sides,
// so the comparison is exact, order included.
func TestExtendedRemoteDifferential(t *testing.T) {
	ctx := context.Background()
	g := repro.GenerateGraph(repro.BarabasiAlbert, 60, 240, 11)
	st := g.Store()
	local := repro.Local(st)
	remote := dial(t, serve(t, st))

	srcs := []string{
		"edge(a, b), edge(b, c)",
		"out(a) :- edge(a, b), edge(b, c)",
		"out(c, a) :- edge(a, b), edge(b, c)",
		"edge(3, b), edge(b, c)",
		"edge(a, b), a < 10, b >= 2",
		"edge(a, b), edge(b, c), a != c",
		"deg(a, count(b)) :- edge(a, b)",
		"stats(a, sum(c), min(c), max(c)) :- edge(a, b), edge(b, c)",
		"total(count(a)) :- edge(a, b), a >= 5",
		"hot(b, count(c)) :- edge(2, b), edge(b, c)",
	}
	for _, src := range srcs {
		for _, alg := range []repro.Algorithm{repro.LFTJ, repro.MS} {
			t.Run(fmt.Sprintf("%s/%s", src, alg), func(t *testing.T) {
				run := func(qr repro.Querier) (int64, [][]int64) {
					q, err := qr.ParseQuery("q", src)
					if err != nil {
						t.Fatalf("parse: %v", err)
					}
					p, err := qr.Prepare(q, repro.Options{Algorithm: alg, Workers: 1})
					if err != nil {
						t.Fatalf("prepare: %v", err)
					}
					defer p.Close()
					n, err := p.Count(ctx)
					if err != nil {
						t.Fatalf("count: %v", err)
					}
					var rows [][]int64
					err = p.Enumerate(ctx, func(row []int64) bool {
						rows = append(rows, append([]int64(nil), row...))
						return true
					})
					if err != nil {
						t.Fatalf("enumerate: %v", err)
					}
					return n, rows
				}
				ln, lrows := run(local)
				rn, rrows := run(remote)
				if ln != rn {
					t.Fatalf("count: local %d, remote %d", ln, rn)
				}
				if len(lrows) != len(rrows) {
					t.Fatalf("rows: local %d, remote %d", len(lrows), len(rrows))
				}
				for i := range lrows {
					if fmt.Sprint(lrows[i]) != fmt.Sprint(rrows[i]) {
						t.Fatalf("row %d: local %v, remote %v", i, lrows[i], rrows[i])
					}
				}
			})
		}
	}
}
