package yannakakis

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/lftj"
	"repro/internal/query"
	"repro/internal/testutil"
)

func count(t *testing.T, e core.Engine, q *query.Query, db *core.DB) int64 {
	t.Helper()
	n, err := e.Count(context.Background(), q, db)
	if err != nil {
		t.Fatalf("%s Count(%s): %v", e.Name(), q.Name, err)
	}
	return n
}

func TestPathOnSmallGraph(t *testing.T) {
	edges := [][2]int64{{0, 1}, {1, 2}, {2, 3}}
	db := testutil.GraphDB(edges, map[string][]int64{
		query.Sample1: {0},
		query.Sample2: {3},
	})
	if got := count(t, Engine{}, query.Path(3), db); got != 1 {
		t.Errorf("3-paths = %d, want 1", got)
	}
}

func TestDifferentialAcyclicQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	acyclic := []*query.Query{
		query.Path(3), query.Path(4), query.Tree(1), query.Tree(2), query.Comb(),
	}
	for trial := 0; trial < 8; trial++ {
		db := testutil.RandomGraphDB(rng, 4+rng.Intn(10), 2+rng.Intn(30), 2)
		for _, q := range acyclic {
			want := count(t, lftj.Engine{}, q, db)
			if got := count(t, Engine{}, q, db); got != want {
				t.Errorf("trial %d %s: yannakakis = %d, lftj = %d", trial, q.Name, got, want)
			}
		}
	}
}

func TestCyclicRejected(t *testing.T) {
	db := testutil.GraphDB(testutil.K4, nil)
	if _, err := (Engine{}).Count(context.Background(), query.Clique(3), db); err == nil {
		t.Error("cyclic query should be rejected")
	}
}

func TestEnumerateUnsupported(t *testing.T) {
	db := testutil.GraphDB(testutil.K4, nil)
	if err := (Engine{}).Enumerate(context.Background(), query.Path(3), db, func([]int64) bool { return true }); err == nil {
		t.Error("enumeration should be unsupported")
	}
}

func TestEmptySampleKillsEverything(t *testing.T) {
	db := testutil.GraphDB(testutil.K4, map[string][]int64{
		query.Sample1: {77}, // not in the graph
		query.Sample2: {0},
	})
	if got := count(t, Engine{}, query.Path(3), db); got != 0 {
		t.Errorf("count = %d, want 0", got)
	}
}

func TestCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db := testutil.RandomGraphDB(rng, 200, 5000, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (Engine{}).Count(ctx, query.Path(4), db); err == nil {
		t.Error("cancelled context should surface an error")
	}
}

func TestMissingRelation(t *testing.T) {
	db := core.NewDB()
	if _, err := (Engine{}).Count(context.Background(), query.Path(3), db); err == nil {
		t.Error("missing relation should error")
	}
}
