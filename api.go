package repro

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/agm"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/incremental"
	"repro/internal/minesweeper"
	"repro/internal/query"
	"repro/internal/recursive"
)

// Model names re-exported for graph generation.
const (
	ErdosRenyi     = dataset.ErdosRenyi
	BarabasiAlbert = dataset.BarabasiAlbert
	HolmeKim       = dataset.HolmeKim
)

// Typed failure kinds surfaced by Prepare and the one-shot helpers; branch
// with errors.Is.
var (
	// ErrUnknownRelation reports a query atom naming a relation the graph's
	// database does not hold.
	ErrUnknownRelation = core.ErrUnknownRelation
	// ErrUnboundVar reports a query variable not covered by the supplied
	// attribute order (or not bound by any atom).
	ErrUnboundVar = core.ErrUnboundVar
)

// Query is a graph-pattern join query. Build one with the pattern
// constructors below or parse the paper's Datalog syntax with ParseQuery.
type Query = query.Query

// Pattern constructors mirroring the paper's §5.1 benchmark queries.
var (
	// Triangles is the 3-clique query (each triangle counted once).
	Triangles = func() *Query { return query.Clique(3) }
	// Cliques returns the k-clique query.
	Cliques = query.Clique
	// Cycles returns the k-cycle query with the a<b<...<z orientation.
	Cycles = query.Cycle
	// Paths returns the k-path query between samples v1 and v2.
	Paths = query.Path
	// Trees returns the {1,2}-tree query.
	Trees = query.Tree
	// Comb returns the 2-comb query.
	Comb = query.Comb
	// Lollipops returns the {2,3}-lollipop query.
	Lollipops = query.Lollipop
)

// ParseQuery parses the Datalog-style syntax of §5.1, e.g.
// "v1(a), v2(d), edge(a, b), edge(b, c), edge(c, d)". Relations available
// on a Graph: "edge" (symmetric), "fwd" (u<v orientation), "v1".."v4"
// (node samples).
func ParseQuery(name, src string) (*Query, error) { return query.Parse(name, src) }

// Graph is an undirected graph plus the benchmark database schema derived
// from it: the symmetric "edge" relation, the oriented "fwd" relation, and
// the node samples v1..v4.
type Graph struct {
	g  *dataset.Graph
	db *core.DB
}

// NewGraph builds a graph from an undirected edge list. Vertex ids must be
// non-negative; self-loops are dropped and duplicates merged. Samples
// default to every vertex (selectivity 1).
func NewGraph(edges [][2]int64) *Graph {
	var n int64
	for _, e := range edges {
		if e[0] >= n {
			n = e[0] + 1
		}
		if e[1] >= n {
			n = e[1] + 1
		}
	}
	g := &dataset.Graph{N: int(n)}
	seen := make(map[[2]int64]bool, len(edges))
	for _, e := range edges {
		if e[0] == e[1] {
			continue
		}
		u, v := e[0], e[1]
		if u > v {
			u, v = v, u
		}
		if seen[[2]int64{u, v}] {
			continue
		}
		seen[[2]int64{u, v}] = true
		g.Edges = append(g.Edges, [2]int64{u, v})
	}
	return &Graph{g: g, db: dataset.DB(g, 1, 1)}
}

// GenerateGraph produces a deterministic synthetic graph (see
// internal/dataset for the models). Samples default to selectivity 1.
func GenerateGraph(model dataset.Model, nodes, edges int, seed int64) *Graph {
	g := dataset.Generate(model, nodes, edges, seed)
	return &Graph{g: g, db: dataset.DB(g, 1, seed)}
}

// Dataset builds one of the paper's 15 benchmark datasets by name (synthetic
// stand-ins for the SNAP graphs; see DESIGN.md §5).
func Dataset(name string) (*Graph, error) {
	spec, err := dataset.Lookup(name)
	if err != nil {
		return nil, err
	}
	g := spec.Build()
	return &Graph{g: g, db: dataset.DB(g, 1, spec.Seed)}, nil
}

// Nodes returns the vertex count.
func (g *Graph) Nodes() int { return g.g.N }

// Edges returns the undirected edge count.
func (g *Graph) Edges() int { return len(g.g.Edges) }

// SetSelectivity redraws all four node samples with the paper's protocol:
// each vertex is selected with probability 1/s.
func (g *Graph) SetSelectivity(s int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, name := range []string{query.Sample1, query.Sample2, query.Sample3, query.Sample4} {
		g.setSample(name, g.g.Sample(rng, s))
	}
}

// SetSamples sets the v1 and v2 samples explicitly (Figures 3–5 use
// absolute sample sizes).
func (g *Graph) SetSamples(v1, v2 []int64) {
	g.setSample(query.Sample1, v1)
	g.setSample(query.Sample2, v2)
}

func (g *Graph) setSample(name string, vals []int64) {
	dataset.ReplaceSample(g.db, name, vals)
}

// DB exposes the underlying database (for the benchmark harness).
func (g *Graph) DB() *core.DB { return g.db }

// Options select and configure an engine.
type Options struct {
	// Algorithm is one of lftj, ms, hybrid, psql, monetdb, yannakakis,
	// graphlab. Empty defaults to lftj.
	Algorithm string
	// Workers bounds parallelism (0 = all cores, 1 = sequential).
	Workers int
	// Granularity is the §4.10 partitioning factor f (0 = paper defaults).
	Granularity int
	// GAO overrides the global attribute order (Table 4 experiments).
	GAO []string
	// Backend selects the physical index backend for the trie-driven
	// engines (lftj, ms): "csr" (the default — materialized CSR trie
	// levels, built once per index at Prepare time, with O(1) child-range
	// resolution on the join hot path and incremental maintenance through
	// delta overlays), "csr-sharded" (the CSR trie partitioned into
	// disjoint first-attribute shards; parallel Counts bind one shard per
	// worker job), or "flat" (binary search over the sorted rows — no extra
	// memory, and the reference the other backends are differential-tested
	// against). Other engines ignore it.
	Backend string
	// Idea toggles for the ablation experiments (all ideas default on).
	DisableProbeMemo  bool // Idea 4
	DisableComplete   bool // Idea 6
	DisableSkeleton   bool // Idea 7
	DisableCountReuse bool // Idea 8 (#Minesweeper-style count-mode reuse)
	// MaxRows caps pairwise-engine intermediates (0 = default budget).
	MaxRows int
}

func (o Options) engineOptions() engine.Options {
	alg := o.Algorithm
	if alg == "" {
		alg = string(engine.LFTJ)
	}
	return engine.Options{
		Algorithm:   engine.Algorithm(alg),
		Workers:     o.Workers,
		Granularity: o.Granularity,
		GAO:         o.GAO,
		Backend:     core.Backend(o.Backend),
		MaxRows:     o.MaxRows,
		MS: minesweeper.Options{
			DisableMemo:      o.DisableProbeMemo,
			DisableComplete:  o.DisableComplete,
			DisableSkeleton:  o.DisableSkeleton,
			DisableCountMemo: o.DisableCountReuse,
		},
	}
}

// Count evaluates the query on the graph and returns the number of results
// (all the paper's benchmark queries are counts, §5.1). It is a one-shot
// convenience over Prepare — repeated executions of the same query should
// hold a Prepared handle instead.
func Count(ctx context.Context, g *Graph, q *Query, opts Options) (int64, error) {
	p, err := g.Prepare(q, opts)
	if err != nil {
		return 0, err
	}
	return p.Count(ctx)
}

// Enumerate streams result tuples, with bindings in q.Vars() order; emit
// returns false to stop early. It is a one-shot convenience over Prepare.
func Enumerate(ctx context.Context, g *Graph, q *Query, opts Options, emit func([]int64) bool) error {
	p, err := g.Prepare(q, opts)
	if err != nil {
		return err
	}
	return p.Enumerate(ctx, emit)
}

// AGMBound returns the Atserias–Grohe–Marx worst-case output bound of the
// query on this graph's relation sizes (paper Appendix A) — the quantity
// worst-case-optimal engines are optimal against.
func AGMBound(g *Graph, q *Query) (float64, error) {
	sizes, err := relationSizes(g, q)
	if err != nil {
		return 0, fmt.Errorf("agm: %w", err)
	}
	res, err := agm.Compute(q, sizes)
	if err != nil {
		return 0, err
	}
	return res.Bound(), nil
}

// ExecStats is the unified execution-counter surface every engine reports
// on: planning counters (plan-cache hits, GAO derivations, index bindings),
// per-run execution counters, and the engine-specific counters the paper's
// ablation analyses read (probes, memo hits, constraint inserts, subtree
// reuses for Minesweeper; leapfrog seeks for LFTJ).
type ExecStats = core.Stats

// CountWithStats evaluates the query once and returns the count together
// with its execution counters. The empty Algorithm defaults to "ms" running
// sequentially (the historical behavior of this function); set
// opts.Algorithm/opts.Workers to profile any other configuration, or hold a
// Prepared handle and read Stats() to aggregate across executions.
func CountWithStats(ctx context.Context, g *Graph, q *Query, opts Options) (int64, ExecStats, error) {
	if opts.Algorithm == "" {
		opts.Algorithm = "ms"
	}
	if opts.Algorithm == "ms" && opts.Workers == 0 {
		// Sequential by default so the ablation counters stay deterministic
		// (partitioned runs probe partition boundaries too).
		opts.Workers = 1
	}
	p, err := g.Prepare(q, opts)
	if err != nil {
		return 0, ExecStats{}, err
	}
	n, err := p.Count(ctx)
	return n, p.Stats(), err
}

// CountView is a materialized pattern count maintained incrementally under
// edge updates (the paper's §3 motivation: LogicBlox's incrementally
// maintained materialized views).
type CountView struct {
	inner *incremental.GraphView
	g     *Graph
}

// MaintainCount materializes Count(q) over the graph and keeps it current.
func MaintainCount(ctx context.Context, g *Graph, q *Query) (*CountView, error) {
	v, err := incremental.NewGraphView(ctx, q, g.db)
	if err != nil {
		return nil, err
	}
	return &CountView{inner: v, g: g}, nil
}

// Count returns the maintained count.
func (v *CountView) Count() int64 { return v.inner.Count() }

// Stats returns the view's accumulated planning and execution counters. The
// view compiles its delta queries once: GAODerivations stays at 1 across
// arbitrarily many ApplyEdges batches.
func (v *CountView) Stats() ExecStats { return v.inner.Stats() }

// ApplyEdges inserts and removes undirected edges, updating the graph's
// relations and the maintained count with delta queries.
func (v *CountView) ApplyEdges(ctx context.Context, insert, remove [][2]int64) error {
	return v.inner.ApplyEdges(ctx, insert, remove)
}

// MaterializeTransitiveClosure computes tc(edge) with semi-naive recursion
// (the paper's §6 future work) and registers it as relation "tc", queryable
// from any engine, e.g. ParseQuery("reach", "v1(a), tc(a, b), v2(b)").
func MaterializeTransitiveClosure(ctx context.Context, g *Graph) error {
	return recursive.RegisterTC(ctx, g.db)
}
