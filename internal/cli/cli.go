// Package cli holds the pieces the graphjoin and graphjoind commands share:
// repeatable flags, tuple-file loading, schema setup against any Querier
// (local store or remote connection), benchmark-graph construction, and the
// named query catalog.
package cli

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/query"
)

// ListFlag collects a repeatable string flag.
type ListFlag []string

// String implements flag.Value.
func (l *ListFlag) String() string { return strings.Join(*l, ",") }

// Set implements flag.Value.
func (l *ListFlag) Set(s string) error {
	*l = append(*l, s)
	return nil
}

// SetupSchema applies -relation name:arity definitions and -load name=path
// file loads to a querier — an in-process store or a remote connection; the
// call is identical either way, which is what lets graphjoin's schema flags
// work under -connect.
func SetupSchema(q repro.Querier, relations, loads []string) error {
	for _, spec := range relations {
		name, arityStr, ok := strings.Cut(spec, ":")
		if !ok {
			return fmt.Errorf("-relation %q: want name:arity", spec)
		}
		arity, err := strconv.Atoi(arityStr)
		if err != nil {
			return fmt.Errorf("-relation %q: bad arity: %v", spec, err)
		}
		if err := q.DefineRelation(name, arity); err != nil {
			return err
		}
	}
	for _, spec := range loads {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("-load %q: want name=path", spec)
		}
		tuples, err := ReadTuples(path)
		if err != nil {
			return fmt.Errorf("-load %s: %w", name, err)
		}
		if err := q.Load(name, tuples); err != nil {
			return err
		}
	}
	return nil
}

// DescribeSchema renders a querier's schema as "name/arity" entries — one
// Schema call, which is a single round trip on a remote querier, bounded by
// the caller's context.
func DescribeSchema(ctx context.Context, q repro.Querier) string {
	infos, err := q.Schema(ctx)
	if err != nil {
		return "(schema unavailable)"
	}
	var parts []string
	for _, r := range infos {
		parts = append(parts, fmt.Sprintf("%s/%d", r.Name, r.Arity))
	}
	if len(parts) == 0 {
		return "(empty schema)"
	}
	return strings.Join(parts, ", ")
}

// ReadTuples reads integer rows, one tuple per line, columns separated by
// whitespace or commas; blank lines and #-comments are skipped.
func ReadTuples(path string) ([][]int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var tuples [][]int64
	sc := bufio.NewScanner(f)
	// Machine-generated rows can exceed bufio's default 64KB token cap.
	sc.Buffer(make([]byte, 0, 64*1024), 1<<24)
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.FieldsFunc(text, func(r rune) bool {
			return r == ',' || r == ' ' || r == '\t'
		})
		tuple := make([]int64, 0, len(fields))
		for _, fld := range fields {
			v, err := strconv.ParseInt(fld, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %v", path, line, err)
			}
			tuple = append(tuple, v)
		}
		tuples = append(tuples, tuple)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tuples, nil
}

// BuildGraph constructs the benchmark graph from the catalog (datasetName
// non-empty) or a generator model ("er", "ba", or "hk").
func BuildGraph(datasetName, model string, nodes, edges int, seed int64) (*repro.Graph, error) {
	if datasetName != "" {
		return repro.Dataset(datasetName)
	}
	var m = repro.BarabasiAlbert
	switch model {
	case "er":
		m = repro.ErdosRenyi
	case "hk":
		m = repro.HolmeKim
	case "ba", "":
	default:
		return nil, fmt.Errorf("unknown model %q (want er, ba, or hk)", model)
	}
	return repro.GenerateGraph(m, nodes, edges, seed), nil
}

// NamedQuery resolves the benchmark query catalog (§5.1 patterns).
func NamedQuery(name string) (*repro.Query, error) {
	switch name {
	case "3-clique", "triangle":
		return query.Clique(3), nil
	case "4-clique":
		return query.Clique(4), nil
	case "4-cycle":
		return query.Cycle(4), nil
	case "3-path":
		return query.Path(3), nil
	case "4-path":
		return query.Path(4), nil
	case "1-tree":
		return query.Tree(1), nil
	case "2-tree":
		return query.Tree(2), nil
	case "2-comb":
		return query.Comb(), nil
	case "2-lollipop":
		return query.Lollipop(2), nil
	case "3-lollipop":
		return query.Lollipop(3), nil
	default:
		return nil, fmt.Errorf("unknown query %q", name)
	}
}
