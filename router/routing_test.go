package router

import (
	"context"
	"errors"
	"testing"

	"repro"
)

// newReplicas builds n identical in-process stores plus one oracle, all
// loaded with the same deterministic edge relation.
func newReplicas(t *testing.T, n int) (oracle *repro.Store, hosts []repro.Querier) {
	t.Helper()
	edges := testEdges(400, 100)
	build := func() *repro.Store {
		st := repro.NewStore()
		if err := st.DefineRelation("edge", 2); err != nil {
			t.Fatal(err)
		}
		if err := st.Load("edge", edges); err != nil {
			t.Fatal(err)
		}
		return st
	}
	oracle = build()
	for i := 0; i < n; i++ {
		hosts = append(hosts, repro.Local(build()))
	}
	return oracle, hosts
}

// testEdges derives a deterministic pseudo-random edge list over [0, nodes).
func testEdges(m, nodes int64) [][]int64 {
	x := uint64(0x243f6a8885a308d3)
	next := func() int64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return int64(x % uint64(nodes))
	}
	seen := make(map[[2]int64]bool)
	var edges [][]int64
	for int64(len(edges)) < m {
		a, b := next(), next()
		if a == b || seen[[2]int64{a, b}] {
			continue
		}
		seen[[2]int64{a, b}] = true
		edges = append(edges, []int64{a, b})
	}
	return edges
}

// TestRoutingDecisions pins the Prepare-time routing: plan-aware algorithms
// fan out, a constant-pinned leading attribute routes to its owner host
// alone, and algorithms without shard support route whole to one host.
func TestRoutingDecisions(t *testing.T) {
	ctx := context.Background()
	oracle, hosts := newReplicas(t, 3)
	r, err := New(hosts, nil, Config{Partitioner: HashPartitioner()})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	parse := func(src string) *repro.Query {
		q, err := oracle.ParseQuery("q", src)
		if err != nil {
			t.Fatal(err)
		}
		return q
	}

	// A plain join fans out over all three hosts.
	p, err := r.Prepare(parse("edge(a, b), edge(b, c)"), repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rp := p.(*Prepared)
	if rp.single || len(rp.hosts) != 3 {
		t.Fatalf("plain join: single=%v hosts=%d, want fan-out over 3", rp.single, len(rp.hosts))
	}
	p.Close()

	// An in-atom constant does not pin the leading GAO attribute — the
	// planner orders its placeholder late — so that shape still fans out,
	// and sharding on the true leading attribute keeps it correct.
	p, err = r.Prepare(parse("edge(7, b), edge(b, c)"), repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rp = p.(*Prepared); rp.single {
		t.Fatal("in-atom constant unexpectedly routed single-shard")
	}
	p.Close()

	// An equality predicate pinning the leading attribute routes to one
	// host — the constant's owner under the partitioner.
	p, err = r.Prepare(parse("edge(a, b), edge(b, c), a = 7"), repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rp = p.(*Prepared)
	if !rp.single {
		t.Fatalf("constant-pinned query fanned out over %d hosts", len(rp.hosts))
	}
	if want := HashPartitioner().Owner(7, 3); rp.hostIdx[0] != want {
		t.Fatalf("constant 7 routed to host %d, want owner %d", rp.hostIdx[0], want)
	}
	// And its result matches the oracle.
	n, err := p.Count(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want, err := oracle.Count(ctx, parse("edge(a, b), edge(b, c), a = 7"), repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n != want {
		t.Fatalf("single-shard count %d, oracle %d", n, want)
	}
	p.Close()

	// An algorithm without shard support routes whole to one host and still
	// answers correctly (storage is replicated).
	p, err = r.Prepare(parse("edge(a, b), edge(b, c)"), repro.Options{Algorithm: repro.PSQL})
	if err != nil {
		t.Fatal(err)
	}
	rp = p.(*Prepared)
	if !rp.single {
		t.Fatalf("unshardable algorithm fanned out over %d hosts", len(rp.hosts))
	}
	n, err = p.Count(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want, err = oracle.Count(ctx, parse("edge(a, b), edge(b, c)"), repro.Options{Algorithm: repro.PSQL})
	if err != nil {
		t.Fatal(err)
	}
	if n != want {
		t.Fatalf("unshardable count %d, oracle %d", n, want)
	}
	p.Close()

	// Options.Shard is the router's own mechanism and rejected from callers.
	if _, err := r.Prepare(parse("edge(a, b)"), repro.Options{Shard: &repro.Shard{Kind: repro.ShardHash, Mod: 2}}); err == nil {
		t.Fatal("caller-supplied Options.Shard accepted")
	}
}

// TestPartitioners pins the Partitioner contracts: shards are disjoint and
// covering, Owner agrees with Shards, and a range partitioner rejects a
// mismatched host count.
func TestPartitioners(t *testing.T) {
	rp := RangePartitioner(10, 50)
	shards, err := rp.Shards(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int64{-5, 0, 9, 10, 42, 50, 51, 1 << 40} {
		owner := rp.Owner(v, 3)
		in := 0
		for i, sh := range shards {
			if v >= sh.Lo && v < sh.Hi {
				in++
				if i != owner {
					t.Fatalf("value %d in shard %d but Owner says %d", v, i, owner)
				}
			}
		}
		if in != 1 {
			t.Fatalf("value %d covered by %d range shards, want exactly 1", v, in)
		}
	}
	if _, err := rp.Shards(2); err == nil {
		t.Fatal("range partitioner accepted a mismatched host count")
	}

	hp := HashPartitioner()
	hshards, err := hp.Shards(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int64{0, 1, 7, 12345, -3} {
		owner := hp.Owner(v, 4)
		sh := hshards[owner]
		if sh.Kind != repro.ShardHash || sh.Mod != 4 || sh.Res != uint64(owner) {
			t.Fatalf("hash shard %d inconsistent with owner of %d: %+v", owner, v, sh)
		}
	}
}

// TestHostErrorTyping pins that failures keep their typed identity through
// the *HostError wrapper.
func TestHostErrorTyping(t *testing.T) {
	_, hosts := newReplicas(t, 2)
	r, err := New(hosts, []string{"alpha", "beta"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	err = r.Load("nope", nil)
	var he *HostError
	if !errors.As(err, &he) {
		t.Fatalf("broadcast failure not a *HostError: %v", err)
	}
	if !errors.Is(err, repro.ErrUnknownRelation) {
		t.Fatalf("HostError hides the typed sentinel: %v", err)
	}
}
