package core

// ShardHash maps a first-attribute value to a stable 64-bit hash for
// hash-partitioned routing (splitmix64's finalizer). Both the coordinator
// (picking a value's owning host) and the executing host (filtering its
// emission to its own residue class) must agree on this function, and its
// output must be stable across processes and releases — it is part of the
// wire-visible shard-spec contract, not an internal detail.
func ShardHash(v int64) uint64 {
	x := uint64(v) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
