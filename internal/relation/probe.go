package relation

// Gap describes the maximal empty box a relation reports around a probe
// point (paper §4.5, Idea 3). Col is the first column at which the probe
// point leaves the relation's index: the point's prefix before Col is
// present, but extending it with point[Col] is not. Lo and Hi are the
// greatest present value < point[Col] and the least present value >
// point[Col] under that prefix (NegInf/PosInf when none), so the open
// interval (Lo, Hi) on column Col — under the equality prefix — contains no
// tuple of the relation.
type Gap struct {
	Col    int
	Lo, Hi int64
}

// ProbeGap implements seekGap from Algorithm 3. It probes the relation's
// index with the projected free tuple `point` (len == arity). If the tuple
// is present it returns found == true and a zero Gap; otherwise it returns
// the maximal gap box around the point as defined in §4.5:
//
//	j   = min { j : prefix(j-1) present ∧ prefix(j) absent }
//	Lo  = max { x < point[j] : (prefix, x) present } ∪ {NegInf}
//	Hi  = min { x > point[j] : (prefix, x) present } ∪ {PosInf}
//
// Cost is O(arity · log n) via binary searches, standing in for the B-tree
// seek_glb/seek_lub operators of the LogicBlox trie index (Idea 4 discusses
// their cost; memoization lives in the Minesweeper engine).
func (r *Relation) ProbeGap(point []int64) (gap Gap, found bool) {
	if len(point) != r.arity {
		panic("relation: ProbeGap point length mismatch")
	}
	lo, hi := 0, r.n
	for col := 0; col < r.arity; col++ {
		v := point[col]
		pos := r.lowerBound(col, lo, hi, v)
		if pos < hi && r.Value(pos, col) == v {
			lo = pos
			hi = r.upperBound(col, pos, hi, v)
			continue
		}
		g := Gap{Col: col, Lo: NegInf, Hi: PosInf}
		if pos > lo {
			g.Lo = r.Value(pos-1, col)
		}
		if pos < hi {
			g.Hi = r.Value(pos, col)
		}
		return g, false
	}
	return Gap{}, true
}
