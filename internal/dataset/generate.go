// Package dataset provides the graph substrate for the benchmark harness.
// The paper evaluates on 15 SNAP network datasets [7]; this environment has
// no network access, so the package generates deterministic synthetic
// stand-ins whose scale (nodes, edges) and triangle-density regime match the
// originals qualitatively — see DESIGN.md §5 for the substitution argument.
// Three generative models cover the regimes:
//
//   - Erdős–Rényi: near-random topology, almost no triangles (the
//     p2p-Gnutella graphs);
//   - Barabási–Albert: heavy-tailed degrees, moderate clustering (most
//     social/collaboration graphs);
//   - Holme–Kim: preferential attachment with triad formation, high
//     clustering (ego-Facebook, ego-Twitter, com-Orkut).
package dataset

import (
	"fmt"
	"math/rand"
)

// Model selects a generative model.
type Model int

const (
	// ErdosRenyi draws m uniform random edges.
	ErdosRenyi Model = iota
	// BarabasiAlbert grows the graph by preferential attachment.
	BarabasiAlbert
	// HolmeKim is Barabási–Albert with a triad-formation step after each
	// preferential attachment, yielding high clustering.
	HolmeKim
)

func (m Model) String() string {
	switch m {
	case ErdosRenyi:
		return "erdos-renyi"
	case BarabasiAlbert:
		return "barabasi-albert"
	case HolmeKim:
		return "holme-kim"
	default:
		return fmt.Sprintf("model(%d)", int(m))
	}
}

// Graph is an undirected simple graph with vertices 0..N-1.
type Graph struct {
	N     int
	Edges [][2]int64
}

// Generate produces a deterministic graph for the given model. nodes must be
// positive; edgeTarget guides the average degree (it is matched exactly for
// Erdős–Rényi up to duplicate draws, and approximately for the attachment
// models, which add ~edgeTarget/nodes edges per new vertex).
func Generate(model Model, nodes, edgeTarget int, seed int64) *Graph {
	if nodes <= 0 {
		panic("dataset: nodes must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	switch model {
	case ErdosRenyi:
		return erdosRenyi(rng, nodes, edgeTarget)
	case BarabasiAlbert:
		return attachment(rng, nodes, edgeTarget, 0)
	case HolmeKim:
		return attachment(rng, nodes, edgeTarget, 0.6)
	default:
		panic(fmt.Sprintf("dataset: unknown model %v", model))
	}
}

// edgeSet deduplicates undirected edges.
type edgeSet struct {
	seen  map[[2]int64]struct{}
	edges [][2]int64
}

func newEdgeSet(capacity int) *edgeSet {
	return &edgeSet{seen: make(map[[2]int64]struct{}, capacity)}
}

func (s *edgeSet) add(u, v int64) bool {
	if u == v {
		return false
	}
	if u > v {
		u, v = v, u
	}
	key := [2]int64{u, v}
	if _, ok := s.seen[key]; ok {
		return false
	}
	s.seen[key] = struct{}{}
	s.edges = append(s.edges, key)
	return true
}

func erdosRenyi(rng *rand.Rand, n, m int) *Graph {
	s := newEdgeSet(m)
	attempts := 0
	maxEdges := n * (n - 1) / 2
	if m > maxEdges {
		m = maxEdges
	}
	for len(s.edges) < m && attempts < 20*m+1000 {
		attempts++
		s.add(int64(rng.Intn(n)), int64(rng.Intn(n)))
	}
	return &Graph{N: n, Edges: s.edges}
}

// attachment implements Barabási–Albert growth; with triadP > 0 each
// attachment is followed (with probability triadP) by a triad-formation
// step linking to a random neighbor of the just-chosen target (Holme–Kim).
func attachment(rng *rand.Rand, n, edgeTarget int, triadP float64) *Graph {
	mPer := edgeTarget / n
	if mPer < 1 {
		mPer = 1
	}
	if mPer >= n {
		mPer = n - 1
	}
	s := newEdgeSet(edgeTarget)
	// Repeated-target list: vertices appear once per incident edge endpoint,
	// so uniform draws realize preferential attachment.
	var targets []int64
	adj := make(map[int64][]int64, n)
	link := func(u, v int64) {
		if s.add(u, v) {
			targets = append(targets, u, v)
			adj[u] = append(adj[u], v)
			adj[v] = append(adj[v], u)
		}
	}
	// Seed clique over the first mPer+1 vertices.
	seedSize := mPer + 1
	for i := 0; i < seedSize; i++ {
		for j := i + 1; j < seedSize; j++ {
			link(int64(i), int64(j))
		}
	}
	for v := seedSize; v < n; v++ {
		var last int64 = -1
		for e := 0; e < mPer; e++ {
			var t int64
			if len(targets) == 0 {
				t = int64(rng.Intn(v))
			} else {
				t = targets[rng.Intn(len(targets))]
			}
			if t == int64(v) {
				continue
			}
			link(int64(v), t)
			// Triad formation (Holme–Kim): close a triangle through a
			// neighbor of the target.
			if last >= 0 && triadP > 0 && rng.Float64() < triadP {
				nb := adj[t]
				if len(nb) > 0 {
					w := nb[rng.Intn(len(nb))]
					if w != int64(v) {
						link(int64(v), w)
					}
				}
			}
			last = t
		}
	}
	return &Graph{N: n, Edges: s.edges}
}

// Sample selects each vertex independently with probability 1/s — the
// paper's selectivity protocol (§5.1: "selecting nodes with probability
// 1/s"). A deterministic rng keeps runs reproducible.
func (g *Graph) Sample(rng *rand.Rand, s int) []int64 {
	if s <= 1 {
		out := make([]int64, g.N)
		for i := range out {
			out[i] = int64(i)
		}
		return out
	}
	var out []int64
	for v := 0; v < g.N; v++ {
		if rng.Intn(s) == 0 {
			out = append(out, int64(v))
		}
	}
	if len(out) == 0 && g.N > 0 {
		out = append(out, int64(rng.Intn(g.N)))
	}
	return out
}

// EdgePrefix returns a graph over the first k edges (the Figures 6–7
// protocol: "gradually increase the number of edges selected from the
// LiveJournal dataset").
func (g *Graph) EdgePrefix(k int) *Graph {
	if k > len(g.Edges) {
		k = len(g.Edges)
	}
	return &Graph{N: g.N, Edges: g.Edges[:k]}
}
