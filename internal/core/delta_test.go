package core

import (
	"errors"
	"testing"

	"repro/internal/query"
	"repro/internal/relation"
)

func deltaDB() *DB {
	db := NewDB()
	db.Add(relation.FromTuples("edge", 2, [][]int64{{1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}}))
	return db
}

// collect walks an index cursor's full contents as tuples.
func collect(t *testing.T, idx IndexBackend) [][]int64 {
	t.Helper()
	var out [][]int64
	tuple := make([]int64, idx.Arity())
	c := idx.NewCursor()
	var rec func(d int)
	rec = func(d int) {
		c.Open()
		for !c.AtEnd() {
			tuple[d] = c.Key()
			if d+1 == idx.Arity() {
				out = append(out, append([]int64(nil), tuple...))
			} else {
				rec(d + 1)
			}
			c.Next()
		}
		c.Up()
	}
	rec(0)
	return out
}

// TestApplyDeltaMaintainsCSRInPlace: the cached CSR index object absorbs the
// batch through its overlay — same object, new contents — while flat and
// sharded entries are invalidated.
func TestApplyDeltaMaintainsCSRInPlace(t *testing.T) {
	db := deltaDB()
	csr, err := db.TrieIndex("edge", []int{0, 1}, BackendCSR)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := db.TrieIndex("edge", []int{0, 1}, BackendFlat)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.ApplyDelta("edge", [][]int64{{9, 9}}, [][]int64{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	csr2, err := db.TrieIndex("edge", []int{0, 1}, BackendCSR)
	if err != nil {
		t.Fatal(err)
	}
	if csr2 != csr {
		t.Error("CSR index was rebuilt, want in-place overlay advance")
	}
	if csr.Len() != 5 {
		t.Errorf("CSR Len = %d, want 5", csr.Len())
	}
	if _, found := csr.ProbeGap([]int64{9, 9}); !found {
		t.Error("inserted tuple missing from CSR index")
	}
	if _, found := csr.ProbeGap([]int64{1, 2}); found {
		t.Error("deleted tuple still in CSR index")
	}
	flat2, err := db.TrieIndex("edge", []int{0, 1}, BackendFlat)
	if err != nil {
		t.Fatal(err)
	}
	if flat2 == flat {
		t.Error("flat index not rebuilt after ApplyDelta")
	}
	if flat2.Len() != 5 {
		t.Errorf("rebuilt flat Len = %d, want 5", flat2.Len())
	}
}

// TestApplyDeltaPermutedIndexes routes the batch through each cached
// index's own permutation: a (b,a)-ordered index must see permuted tuples.
func TestApplyDeltaPermutedIndexes(t *testing.T) {
	db := deltaDB()
	rev, err := db.TrieIndex("edge", []int{1, 0}, BackendCSR)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.ApplyDelta("edge", [][]int64{{7, 8}}, [][]int64{{2, 3}}); err != nil {
		t.Fatal(err)
	}
	got := collect(t, rev)
	r, _ := db.Relation("edge")
	want := collect(t, mustBackend(t, r.Permute([]int{1, 0}), BackendFlat))
	if len(got) != len(want) {
		t.Fatalf("permuted index has %d tuples, want %d", len(got), len(want))
	}
	for i := range want {
		if relation.CompareTuples(got[i], want[i]) != 0 {
			t.Fatalf("row %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func mustBackend(t *testing.T, r *relation.Relation, b Backend) IndexBackend {
	t.Helper()
	idx, err := NewIndexBackend(r, b)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

// TestApplyDeltaPlanInvalidation: plans on the CSR backend survive a delta
// batch (their indexes advanced in place); flat and sharded plans reading
// the relation are dropped.
func TestApplyDeltaPlanInvalidation(t *testing.T) {
	db := deltaDB()
	q := query.New("q", query.Atom{Rel: "edge", Vars: []string{"a", "b"}})
	gao := []string{"a", "b"}
	for _, b := range []Backend{BackendFlat, BackendCSR, BackendCSRSharded} {
		p, err := NewPlan(q, db, "lftj", gao, nil, false, b, nil)
		if err != nil {
			t.Fatal(err)
		}
		db.StorePlan(string(b), p, db.Version())
	}
	if got := db.CachedPlanCount(); got != 3 {
		t.Fatalf("cached plans = %d, want 3", got)
	}
	if err := db.ApplyDelta("edge", [][]int64{{8, 9}}, nil); err != nil {
		t.Fatal(err)
	}
	if got := db.CachedPlanCount(); got != 1 {
		t.Errorf("cached plans after delta = %d, want 1 (csr only)", got)
	}
	if p, _, ok := db.CachedPlan(string(BackendCSR)); !ok {
		t.Error("csr plan dropped by ApplyDelta")
	} else if p.Atoms[0].Index.Len() != 6 {
		t.Errorf("csr plan index Len = %d, want 6", p.Atoms[0].Index.Len())
	}
}

// TestApplyDeltaFilters: duplicates, already-present inserts, absent
// deletes, and both-sides tuples resolve to a canonical delta.
func TestApplyDeltaFilters(t *testing.T) {
	db := deltaDB()
	v0 := db.Version()
	// Everything a no-op: present insert, absent delete, absent both-sides.
	err := db.ApplyDelta("edge",
		[][]int64{{1, 2}, {50, 50}},
		[][]int64{{40, 40}, {50, 50}})
	if err != nil {
		t.Fatal(err)
	}
	if db.Version() != v0 {
		t.Error("no-op batch bumped the version")
	}
	r, _ := db.Relation("edge")
	if r.Len() != 5 {
		t.Errorf("no-op batch changed the relation: %d tuples", r.Len())
	}
	// Present both-sides tuple: delete wins.
	if err := db.ApplyDelta("edge", [][]int64{{2, 3}}, [][]int64{{2, 3}}); err != nil {
		t.Fatal(err)
	}
	r, _ = db.Relation("edge")
	if r.Contains([]int64{2, 3}) {
		t.Error("present both-sides tuple survived (delete should win)")
	}
	if err := db.ApplyDelta("missing", [][]int64{{1}}, nil); err == nil {
		t.Error("ApplyDelta on unknown relation should fail")
	}
}

// TestSnapshotAtoms: snapshotted atoms pin the pre-delta index state for a
// whole execution, and atoms sharing an index object share one snapshot.
func TestSnapshotAtoms(t *testing.T) {
	db := deltaDB()
	q := query.New("q",
		query.Atom{Rel: "edge", Vars: []string{"a", "b"}},
		query.Atom{Rel: "edge", Vars: []string{"a", "c"}},
	)
	atoms, err := BindAtoms(q, db, []string{"a", "b", "c"}, BackendCSR)
	if err != nil {
		t.Fatal(err)
	}
	snap := SnapshotAtoms(atoms)
	if snap[0].Index == atoms[0].Index {
		t.Fatal("snapshot did not replace the updatable index")
	}
	if snap[0].Index != snap[1].Index {
		t.Error("atoms over the same index resolved to different snapshots")
	}
	if err := db.ApplyDelta("edge", [][]int64{{9, 9}}, [][]int64{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if _, found := snap[0].Index.ProbeGap([]int64{1, 2}); !found {
		t.Error("snapshot lost a pre-delta tuple")
	}
	if _, found := snap[0].Index.ProbeGap([]int64{9, 9}); found {
		t.Error("snapshot sees a post-delta tuple")
	}
	if _, found := atoms[0].Index.ProbeGap([]int64{9, 9}); !found {
		t.Error("live index misses the post-delta tuple")
	}
	// Flat bindings are immutable already; SnapshotAtoms leaves them alone.
	flatAtoms, err := BindAtoms(q, db, []string{"a", "b", "c"}, BackendFlat)
	if err != nil {
		t.Fatal(err)
	}
	if got := SnapshotAtoms(flatAtoms); &got[0] != &flatAtoms[0] {
		t.Error("SnapshotAtoms copied a slice with nothing to snapshot")
	}
}

// TestApplyDeltaSnapshotIsolation: a cursor opened before the delta keeps
// its snapshot while new cursors see the update.
func TestApplyDeltaSnapshotIsolation(t *testing.T) {
	db := deltaDB()
	idx, err := db.TrieIndex("edge", []int{0, 1}, BackendCSR)
	if err != nil {
		t.Fatal(err)
	}
	old := idx.NewCursor()
	old.Open() // pin the pre-delta snapshot
	if err := db.ApplyDelta("edge", nil, [][]int64{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if old.AtEnd() || old.Key() != 1 {
		t.Error("pre-delta cursor lost its snapshot")
	}
	fresh := collect(t, idx)
	if len(fresh) != 4 {
		t.Errorf("post-delta cursor sees %d tuples, want 4", len(fresh))
	}
}

// TestApplyDeltas: multi-relation batches land together, and an unknown
// relation anywhere in the list fails the whole call before any batch is
// applied.
func TestApplyDeltas(t *testing.T) {
	db := NewDB()
	db.Add(relation.FromTuples("a", 2, [][]int64{{1, 2}}))
	db.Add(relation.FromTuples("b", 2, [][]int64{{3, 4}}))
	err := db.ApplyDeltas([]DeltaBatch{
		{Name: "a", Inserts: [][]int64{{5, 6}}},
		{Name: "b", Deletes: [][]int64{{3, 4}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ra, _ := db.Relation("a")
	rb, _ := db.Relation("b")
	if ra.Len() != 2 || rb.Len() != 0 {
		t.Errorf("a has %d rows (want 2), b has %d (want 0)", ra.Len(), rb.Len())
	}
	err = db.ApplyDeltas([]DeltaBatch{
		{Name: "a", Inserts: [][]int64{{7, 8}}},
		{Name: "zzz", Inserts: [][]int64{{0, 0}}},
	})
	if !errors.Is(err, ErrUnknownRelation) {
		t.Fatalf("err = %v, want ErrUnknownRelation", err)
	}
	if ra2, _ := db.Relation("a"); ra2.Len() != 2 {
		t.Errorf("a mutated by a rejected multi-batch: %d rows", ra2.Len())
	}
}
