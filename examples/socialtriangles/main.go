// Command socialtriangles reproduces the paper's motivating scenario
// (§1, §5.2.1): clique finding on social networks, where pairwise join
// plans explode on the edge self-join while worst-case-optimal engines and
// specialized graph engines stay fast. It runs {3,4}-clique over two
// dataset stand-ins from the paper's table — a triangle-rich ego network
// and a triangle-poor peer-to-peer overlay — across every engine that
// supports the query, with a per-run timeout like the paper's protocol.
package main

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro"
)

func main() {
	ctx := context.Background()
	for _, name := range []string{"ego-Facebook", "p2p-Gnutella04"} {
		g, err := repro.Dataset(name)
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("\n%s (%d nodes, %d edges)\n", name, g.Nodes(), g.Edges())
		fmt.Printf("%-10s %12s %12s\n", "engine", "3-clique", "4-clique")
		for _, alg := range []repro.Algorithm{repro.LFTJ, repro.MS, repro.GraphLab, repro.PSQL, repro.MonetDB} {
			fmt.Printf("%-10s", alg)
			for _, k := range []int{3, 4} {
				// Compile once outside the timed region; the timeout
				// budgets execution only, like the paper's protocol.
				p, err := g.Prepare(repro.Cliques(k), repro.Options{Algorithm: alg})
				if err != nil {
					fmt.Printf(" %12s", "mem/err")
					continue
				}
				runCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
				start := time.Now()
				n, err := p.Count(runCtx)
				cancel()
				switch {
				case errors.Is(err, context.DeadlineExceeded):
					fmt.Printf(" %12s", "timeout")
				case err != nil:
					fmt.Printf(" %12s", "mem/err")
				default:
					fmt.Printf(" %6d/%5s", n, time.Since(start).Round(time.Millisecond))
				}
			}
			fmt.Println()
		}
	}
	fmt.Println("\ncells are count/duration; pairwise engines may exceed the")
	fmt.Println("intermediate-result budget on 4-clique, as in the paper's Table 6")
}
