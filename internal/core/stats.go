package core

import "sync"

// Stats is the unified execution-counter surface shared by every engine and
// by the planner. One struct serves both layers so a single snapshot
// answers "what did this prepared query cost so far": the planning block
// shows that compilation happened once, the execution block aggregates every
// run, and the engine blocks expose the algorithm-specific counters the
// paper's ablation tables are built from.
type Stats struct {
	// Planning. These move only while compiling a plan, never during
	// execution — a prepared query executed N times keeps GAODerivations
	// and IndexBindings at their compile-time values.

	// PlanCacheHits counts plan compilations answered from the DB's plan
	// cache.
	PlanCacheHits int64
	// PlanCacheMisses counts plan compilations that had to run the planner.
	PlanCacheMisses int64
	// GAODerivations counts global-attribute-order resolutions (hypergraph
	// analysis or coverage checking of a user-supplied order).
	GAODerivations int64
	// IndexBindings counts atom-to-index bindings performed (one per atom
	// per compilation; the underlying permuted indexes are cached on the DB).
	IndexBindings int64

	// Execution (every engine).

	// Executions counts top-level Count/Enumerate runs.
	Executions int64
	// Outputs is the number of result tuples reported.
	Outputs int64

	// Leapfrog Triejoin.

	// Seeks is the number of trie-iterator seek operations issued by the
	// leapfrog intersections.
	Seeks int64

	// Minesweeper (the paper's Ideas 4, 6, 7, 8).

	// Probes is the number of index probes actually issued (seekGap calls).
	Probes int64
	// ProbeMemoHits counts probes answered from the Idea 4 memo without
	// touching the index.
	ProbeMemoHits int64
	// Constraints is the number of gap-box constraints inserted into the CDS.
	Constraints int64
	// FreeTupleSteps is the number of CDS search iterations (Algorithm 4
	// loop turns).
	FreeTupleSteps int64
	// ReuseHits counts Idea 8 subtree-count reuses (whole subtrees skipped).
	ReuseHits int64
	// MemoStores counts subtree counts recorded for future reuse.
	MemoStores int64
}

// Merge accumulates counters from another snapshot.
func (s *Stats) Merge(o Stats) {
	s.PlanCacheHits += o.PlanCacheHits
	s.PlanCacheMisses += o.PlanCacheMisses
	s.GAODerivations += o.GAODerivations
	s.IndexBindings += o.IndexBindings
	s.Executions += o.Executions
	s.Outputs += o.Outputs
	s.Seeks += o.Seeks
	s.Probes += o.Probes
	s.ProbeMemoHits += o.ProbeMemoHits
	s.Constraints += o.Constraints
	s.FreeTupleSteps += o.FreeTupleSteps
	s.ReuseHits += o.ReuseHits
	s.MemoStores += o.MemoStores
}

// Sub returns the counter deltas from an earlier snapshot — what one
// execution cost, attached to its trace span as attributes.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		PlanCacheHits:   s.PlanCacheHits - o.PlanCacheHits,
		PlanCacheMisses: s.PlanCacheMisses - o.PlanCacheMisses,
		GAODerivations:  s.GAODerivations - o.GAODerivations,
		IndexBindings:   s.IndexBindings - o.IndexBindings,
		Executions:      s.Executions - o.Executions,
		Outputs:         s.Outputs - o.Outputs,
		Seeks:           s.Seeks - o.Seeks,
		Probes:          s.Probes - o.Probes,
		ProbeMemoHits:   s.ProbeMemoHits - o.ProbeMemoHits,
		Constraints:     s.Constraints - o.Constraints,
		FreeTupleSteps:  s.FreeTupleSteps - o.FreeTupleSteps,
		ReuseHits:       s.ReuseHits - o.ReuseHits,
		MemoStores:      s.MemoStores - o.MemoStores,
	}
}

// StatsCollector accumulates Stats from concurrent executions. Engines
// batch counters locally and Add them once per run, so the lock is taken a
// handful of times per execution, not per tuple. The zero value is ready to
// use; a nil *StatsCollector is a valid sink that records nothing.
type StatsCollector struct {
	mu sync.Mutex
	s  Stats
}

// Add merges one run's counters into the collector. Safe for concurrent use;
// a nil receiver is a no-op.
func (c *StatsCollector) Add(o Stats) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.s.Merge(o)
	c.mu.Unlock()
}

// Snapshot returns the accumulated counters. Safe for concurrent use; a nil
// receiver returns zeros.
func (c *StatsCollector) Snapshot() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s
}
