// Package bench regenerates every table and figure of the paper's
// evaluation (§5): the engine-comparison Tables 6–7, the ablation Tables
// 1–3 (Ideas 4, 6, 7), the GAO-sensitivity Table 4, the parallel-granularity
// Table 5, and the scaling Figures 3–7. Datasets are the synthetic SNAP
// stand-ins from internal/dataset; results print in the paper's layout with
// "-" marking timeouts and "mem" marking intermediate-result budget
// exhaustion, so shapes are directly comparable to the published tables.
package bench

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/minesweeper"
	"repro/internal/pairwise"
	"repro/internal/query"
)

// Config controls a harness run.
type Config struct {
	// Out receives the formatted tables.
	Out io.Writer
	// Timeout bounds each execution (the paper used 30 minutes on EC2; the
	// default here is 5s per cell so a full run stays laptop-friendly).
	Timeout time.Duration
	// Scale selects the dataset tier: "small" (the paper's 8 small sets),
	// "medium" (adds the 4 mid-size sets), "full" (adds the scaled-down
	// Pokec/LiveJournal/Orkut stand-ins).
	Scale string
	// Datasets, when non-empty, overrides the tier with an explicit list of
	// catalog names.
	Datasets []string
	// Repeats: executions per cell; the cell reports the mean of all but
	// the first when Repeats >= 3 (the paper's protocol), else the minimum.
	Repeats int
	// Workers for the parallel engines (0 = all cores).
	Workers int
	// Backend selects the index backend for the trie-driven engines
	// ("flat", "csr", or "csr-sharded"; empty = the csr default), so whole
	// table runs can be compared across backends.
	Backend string
	// SampleSeed varies the random node samples between runs.
	SampleSeed int64
}

// withDefaults fills zero values.
func (c Config) withDefaults() Config {
	if c.Out == nil {
		c.Out = io.Discard
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.Scale == "" {
		c.Scale = "small"
	}
	if c.Repeats <= 0 {
		c.Repeats = 1
	}
	if c.SampleSeed == 0 {
		c.SampleSeed = 1
	}
	return c
}

// smallSets is the paper's selectivity-8/80 dataset group; mediumSets the
// selectivity-10/100/1000 group; bigSets the three largest.
var (
	smallSets = []string{
		"wiki-Vote", "p2p-Gnutella31", "p2p-Gnutella04", "loc-Brightkite",
		"ego-Facebook", "email-Enron", "ca-GrQc", "ca-CondMat",
	}
	mediumSets = []string{
		"ego-Twitter", "soc-Slashdot0902", "soc-Slashdot0811", "soc-Epinions1",
	}
	bigSets = []string{"soc-Pokec", "soc-LiveJournal1", "com-Orkut"}
)

func (c Config) datasets() []string {
	if len(c.Datasets) > 0 {
		return c.Datasets
	}
	switch c.Scale {
	case "medium":
		return append(append([]string{}, smallSets...), mediumSets...)
	case "full":
		return append(append(append([]string{}, smallSets...), mediumSets...), bigSets...)
	default:
		return smallSets
	}
}

// site is a materialized dataset: the graph and its database. Samples are
// swapped in place per selectivity; edge indexes persist across runs.
type site struct {
	spec dataset.Spec
	g    *dataset.Graph
	db   *core.DB
}

// Harness caches dataset sites across tables.
type Harness struct {
	cfg   Config
	sites map[string]*site
}

// NewHarness builds a harness.
func NewHarness(cfg Config) *Harness {
	return &Harness{cfg: cfg.withDefaults(), sites: make(map[string]*site)}
}

// Config returns the effective configuration.
func (h *Harness) Config() Config { return h.cfg }

func (h *Harness) site(name string) (*site, error) {
	if s, ok := h.sites[name]; ok {
		return s, nil
	}
	spec, err := dataset.Lookup(name)
	if err != nil {
		return nil, err
	}
	g := spec.Build()
	s := &site{spec: spec, g: g, db: dataset.DB(g, 1, h.cfg.SampleSeed)}
	h.sites[name] = s
	return s, nil
}

// setSelectivity redraws all four samples on a site in place (paper §5.1:
// "we ensure each system sees the same random datasets"); edge indexes stay
// cached.
func (h *Harness) setSelectivity(s *site, sel int) {
	rng := rand.New(rand.NewSource(h.cfg.SampleSeed*1000 + int64(sel)))
	for _, name := range []string{query.Sample1, query.Sample2, query.Sample3, query.Sample4} {
		dataset.ReplaceSample(s.db, name, s.g.Sample(rng, sel))
	}
}

// result is one cell outcome.
type result struct {
	seconds float64
	count   int64
	status  status
}

type status int

const (
	ok status = iota
	timeout
	memory
	notSupported
	failed
)

func (r result) String() string {
	switch r.status {
	case ok:
		return formatSeconds(r.seconds)
	case timeout:
		return "-"
	case memory:
		return "mem"
	case notSupported:
		return "n/a"
	default:
		return "err"
	}
}

func formatSeconds(s float64) string {
	switch {
	case s < 0.01:
		return fmt.Sprintf("%.3f", s)
	case s < 10:
		return fmt.Sprintf("%.2f", s)
	default:
		return fmt.Sprintf("%.0f", s)
	}
}

// run executes one cell: query q on db with the given engine options. The
// query is prepared once — the plan is compiled against the site's physical
// design (and cached on the site's DB across cells) — and the repeat loop
// is pure execution, matching the paper's protocol of timing a planned
// query, not the planner.
func (h *Harness) run(opts engine.Options, q *query.Query, db *core.DB) result {
	if opts.Workers == 0 {
		opts.Workers = h.cfg.Workers
	}
	if opts.Backend == "" {
		opts.Backend = core.Backend(h.cfg.Backend)
	}
	eng, _, err := engine.Prepare(opts, q, db)
	if err != nil {
		return result{status: failed}
	}
	var best result
	for rep := 0; rep < h.cfg.Repeats; rep++ {
		ctx, cancel := context.WithTimeout(context.Background(), h.cfg.Timeout)
		start := time.Now()
		count, err := eng.Count(ctx, q, db)
		elapsed := time.Since(start).Seconds()
		cancel()
		switch {
		case err == nil:
			if rep == 0 || elapsed < best.seconds {
				best = result{seconds: elapsed, count: count, status: ok}
			}
		case errors.Is(err, context.DeadlineExceeded):
			return result{seconds: elapsed, status: timeout}
		case errors.Is(err, pairwise.ErrMemoryExceeded):
			return result{status: memory}
		case isNotSupported(err):
			return result{status: notSupported}
		default:
			return result{status: failed}
		}
	}
	return best
}

func isNotSupported(err error) bool {
	if err == nil {
		return false
	}
	s := err.Error()
	return contains(s, "not implemented") || contains(s, "not supported") || contains(s, "alpha-acyclic")
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// msOptions builds engine options for Minesweeper with idea toggles.
func msOptions(ms minesweeper.Options, workers int) engine.Options {
	return engine.Options{Algorithm: engine.MS, MS: ms, Workers: workers}
}
