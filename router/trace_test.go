package router_test

import (
	"context"
	"net"
	"strings"
	"testing"

	"repro"
	"repro/internal/trace"
	"repro/router"
	"repro/server"
)

// TestRoutedTraceStitching is the tentpole acceptance test: a traced count
// through a router over three real TCP servers must yield ONE trace — every
// span (client root, router legs, per-shard server handling, engine stages)
// carries the same trace id, parent links form a well-nested tree, and child
// durations never exceed their parents'.
func TestRoutedTraceStitching(t *testing.T) {
	ctx := context.Background()
	edges := wallEdges(300, 100)
	var specs []router.HostSpec
	for i := 0; i < 3; i++ {
		srv := server.NewSingle(edgeStore(t, edges))
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(l)
		t.Cleanup(func() { srv.Close() })
		specs = append(specs, router.HostSpec{Addr: l.Addr().String()})
	}
	r, err := router.Open(ctx, specs, router.Config{Partitioner: router.HashPartitioner()})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	q, err := r.ParseQuery("q", "edge(a, b), edge(b, c)")
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Prepare(q, repro.Options{Algorithm: repro.LFTJ, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// The client side of a traced request, as graphjoin -trace drives it.
	tr := trace.New(trace.NewID())
	root := tr.StartSpan(0, "client.query")
	tctx := trace.NewContext(ctx, root)
	if _, err := p.Count(tctx); err != nil {
		t.Fatal(err)
	}
	root.End()

	spans := tr.Spans()
	remote, err := r.TraceSpans(ctx, uint64(tr.ID()))
	if err != nil {
		t.Fatalf("TraceSpans: %v", err)
	}
	spans = append(spans, remote...)

	// One trace: every span under the client's id.
	byID := make(map[trace.SpanID]trace.SpanRecord, len(spans))
	stages := make(map[string]int)
	for _, s := range spans {
		if s.Trace != tr.ID() {
			t.Errorf("span %q carries trace %d, want %d", s.Stage, s.Trace, tr.ID())
		}
		if _, dup := byID[s.ID]; dup {
			t.Errorf("duplicate span id %d (%q)", s.ID, s.Stage)
		}
		byID[s.ID] = s
		stages[s.Stage]++
	}

	// The full path is present: one client root, one leg + one server
	// handling + one engine execution per shard.
	for stage, want := range map[string]int{
		"client.query": 1,
		"router.leg":   3,
		"server.count": 3,
		"engine.count": 3,
	} {
		if stages[stage] != want {
			t.Errorf("stage %q appears %d times, want %d (stages: %v)", stage, stages[stage], want, stages)
		}
	}

	// Well-nested: every non-root parent id resolves, and the parent chain
	// reaches the client root.
	rootID := root.ID()
	for _, s := range spans {
		if s.ID == rootID {
			if s.Parent != 0 {
				t.Errorf("client root has parent %d", s.Parent)
			}
			continue
		}
		if s.Parent == 0 {
			t.Errorf("span %q is an orphan root", s.Stage)
			continue
		}
		seen := 0
		for cur := s; cur.Parent != 0; cur = byID[cur.Parent] {
			p, ok := byID[cur.Parent]
			if !ok {
				t.Errorf("span %q: parent %d not in the stitched trace", cur.Stage, cur.Parent)
				break
			}
			// Durations are monotonic down the tree: a child is measured
			// inside its parent's interval (the leg span brackets the whole
			// downstream round trip, the server root brackets the engine).
			if cur.Duration > p.Duration {
				t.Errorf("span %q (%v) outlasts its parent %q (%v)", cur.Stage, cur.Duration, p.Stage, p.Duration)
			}
			if seen++; seen > len(spans) {
				t.Fatalf("parent cycle at span %q", s.Stage)
			}
		}
	}

	// Each shard's server.count hangs off a distinct router leg.
	legParents := make(map[trace.SpanID]bool)
	for _, s := range spans {
		if s.Stage == "server.count" {
			p, ok := byID[s.Parent]
			if !ok || p.Stage != "router.leg" {
				t.Errorf("server.count parent is %q, want router.leg", p.Stage)
				continue
			}
			if legParents[p.ID] {
				t.Errorf("two shard roots share leg %d", p.ID)
			}
			legParents[p.ID] = true
		}
	}

	// The renderer accepts the stitched tree and shows the full path.
	var b strings.Builder
	trace.Render(&b, spans)
	out := b.String()
	for _, stage := range []string{"client.query", "router.leg", "server.count", "engine.count"} {
		if !strings.Contains(out, stage) {
			t.Errorf("rendered trace missing %q:\n%s", stage, out)
		}
	}
}

// TestRoutedExplain pins the Explain satellite: a routed prepared query
// reports the partitioner, each host's shard restriction, and the merge
// strategy; a constant-pinned query reports its single-host routing.
func TestRoutedExplain(t *testing.T) {
	ctx := context.Background()
	_, r := cluster(t, 3, router.RangePartitioner(33, 66))

	q, err := r.ParseQuery("q", "edge(a, b), edge(b, c)")
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Prepare(q, repro.Options{Algorithm: repro.LFTJ, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	text, err := p.(*router.Prepared).Explain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"partitioner: range",
		"host 0", "host 1", "host 2",
		"range [-inf, 33)", "range [33, 66)", "range [66, +inf)",
		"merge: k-way on leading attribute",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("fan-out explain missing %q:\n%s", want, text)
		}
	}

	// Pinned: an equality predicate fixing the leading GAO attribute routes
	// the whole query to the constant's owner.
	pq, err := r.ParseQuery("q", "edge(a, b), edge(b, c), a = 40")
	if err != nil {
		t.Fatal(err)
	}
	pp, err := r.Prepare(pq, repro.Options{Algorithm: repro.LFTJ, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pp.Close()
	text, err = pp.(*router.Prepared).Explain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "pinned") || !strings.Contains(text, "host 1") {
		t.Errorf("pinned explain should route 40 to host 1 under range(33,66):\n%s", text)
	}
	if !strings.Contains(text, "full query, no shard restriction") {
		t.Errorf("pinned explain missing the unsharded note:\n%s", text)
	}
}
