package client

import (
	"context"
	"fmt"
	"iter"
	"time"

	"repro"
	"repro/internal/wire"
)

// drainTimeout bounds how long a cancelled stream waits for the server's
// end-of-stream acknowledgement before declaring the connection wedged. A
// live server answers in the time of one engine context-check interval;
// this covers scheduling jitter with a wide margin.
const drainTimeout = 30 * time.Second

// Prepared is a handle to a server-side prepared statement: the query was
// compiled once on the server (schema check, GAO resolution, index binding)
// and every Count/Enumerate/Rows call here is pure remote execution. It
// mirrors repro.Prepared and satisfies repro.PreparedQuery.
//
// Like its local counterpart it is safe for concurrent use. Close frees the
// server-side entry; the server also frees everything when the connection
// closes.
type Prepared struct {
	s      *Store
	handle uint64
	q      *repro.Query
	alg    string
}

// Query returns the compiled query.
func (p *Prepared) Query() *repro.Query { return p.q }

// Algorithm returns the engine the query was compiled for (resolved
// server-side; an empty Options.Algorithm reports the default).
func (p *Prepared) Algorithm() string { return p.alg }

// Close frees the server-side prepared-statement entry.
func (p *Prepared) Close() error {
	var e wire.Enc
	e.U64(p.handle)
	_, err := p.s.roundTripOp(wire.TClosePrepared, e.Bytes(), wire.TOK)
	return err
}

// Count executes the compiled plan server-side and returns the result
// cardinality.
func (p *Prepared) Count(ctx context.Context) (int64, error) {
	return p.s.count(ctx, p.handle, 0)
}

// Enumerate streams result tuples from the server with bindings in
// Query().Vars() order; emit returns false to stop early, which cancels the
// server-side execution mid-join.
func (p *Prepared) Enumerate(ctx context.Context, emit func([]int64) bool) error {
	return p.s.enumerate(ctx, p.handle, 0, emit)
}

// Rows is Enumerate as a streaming iterator; each yielded slice is owned by
// the consumer. Breaking out of the range stops the server-side execution.
// Like repro.Prepared.Rows it discards mid-stream errors — use RowsErr to
// distinguish a complete stream from a truncated one.
func (p *Prepared) Rows(ctx context.Context) iter.Seq[[]int64] {
	return rowsSeq(p.Enumerate, ctx)
}

// RowsErr is Rows with an explicit error: (tuple, nil) per result and a
// final (nil, err) pair if execution fails mid-stream.
func (p *Prepared) RowsErr(ctx context.Context) iter.Seq2[[]int64, error] {
	return rowsErrSeq(p.Enumerate, ctx)
}

// Stats snapshots the unified execution counters accumulated by the
// server-side handle — including runs other connections never see, since the
// handle is private to this connection. The fetch is best-effort: a zero
// snapshot is returned if the connection has failed (use StatsErr to
// distinguish).
func (p *Prepared) Stats() repro.ExecStats {
	ctx, cancel := p.s.opCtx()
	defer cancel()
	st, err := p.StatsErr(ctx)
	if err != nil {
		return repro.ExecStats{}
	}
	return st
}

// StatsErr fetches the server-side counter snapshot, reporting transport
// failures.
func (p *Prepared) StatsErr(ctx context.Context) (repro.ExecStats, error) {
	var e wire.Enc
	e.U64(p.handle)
	body, err := p.s.roundTrip(ctx, wire.TStats, e.Bytes(), wire.TStatsOK)
	if err != nil {
		return repro.ExecStats{}, err
	}
	d := wire.NewDec(body)
	st := wire.DecodeStats(d)
	return st, d.Err()
}

// Explain renders the server-side compiled plan (the repro.Explanation
// string form: engine, GAO, per-atom indexes, AGM bound).
func (p *Prepared) Explain(ctx context.Context) (string, error) {
	var e wire.Enc
	e.U64(p.handle)
	body, err := p.s.roundTrip(ctx, wire.TExplain, e.Bytes(), wire.TExplainOK)
	if err != nil {
		return "", err
	}
	d := wire.NewDec(body)
	s := d.Str()
	return s, d.Err()
}

// Txn is a server-side snapshot read-transaction: executions through it
// observe the index state pinned when ReadTxn was called (a core.Lease held
// by the server for this connection), no matter how many write batches land
// concurrently. It mirrors repro.Txn and satisfies repro.QueryTxn.
type Txn struct {
	s  *Store
	id uint64
}

// unwrap asserts the shared handle back to this client's concrete type; a
// handle prepared elsewhere cannot execute on this connection's snapshot.
func (t *Txn) unwrap(p repro.PreparedQuery) (*Prepared, error) {
	cp, ok := p.(*Prepared)
	if !ok || cp.s != t.s {
		return nil, fmt.Errorf("client: %w", repro.ErrForeignPrepared)
	}
	return cp, nil
}

// Count executes the prepared query against the transaction's snapshot.
func (t *Txn) Count(ctx context.Context, p repro.PreparedQuery) (int64, error) {
	cp, err := t.unwrap(p)
	if err != nil {
		return 0, err
	}
	return t.s.count(ctx, cp.handle, t.id)
}

// Enumerate streams the prepared query's results against the transaction's
// snapshot; emit returns false to stop early.
func (t *Txn) Enumerate(ctx context.Context, p repro.PreparedQuery, emit func([]int64) bool) error {
	cp, err := t.unwrap(p)
	if err != nil {
		return err
	}
	return t.s.enumerate(ctx, cp.handle, t.id, emit)
}

// Rows is Enumerate as a streaming iterator with owned tuple copies.
func (t *Txn) Rows(ctx context.Context, p repro.PreparedQuery) iter.Seq[[]int64] {
	return rowsSeq(func(ctx context.Context, emit func([]int64) bool) error {
		return t.Enumerate(ctx, p, emit)
	}, ctx)
}

// RowsErr is Rows with the explicit-error protocol.
func (t *Txn) RowsErr(ctx context.Context, p repro.PreparedQuery) iter.Seq2[[]int64, error] {
	return rowsErrSeq(func(ctx context.Context, emit func([]int64) bool) error {
		return t.Enumerate(ctx, p, emit)
	}, ctx)
}

// Close releases the server-side transaction (and its pinned snapshot).
func (t *Txn) Close() error {
	var e wire.Enc
	e.U64(t.id)
	_, err := t.s.roundTripOp(wire.TEnd, e.Bytes(), wire.TOK)
	return err
}

// count performs one Count request (txnID 0 executes outside a transaction).
func (s *Store) count(ctx context.Context, handle, txnID uint64) (int64, error) {
	var e wire.Enc
	e.U64(handle)
	e.U64(txnID)
	body, err := s.roundTrip(ctx, wire.TCount, e.Bytes(), wire.TCountOK)
	if err != nil {
		return 0, err
	}
	d := wire.NewDec(body)
	n := d.I64()
	return n, d.Err()
}

// enumerate performs one streaming Rows request with credit-based flow
// control: the server may have at most `credit` chunks in flight; the client
// grants one more chunk of credit per chunk consumed. Early termination
// (emit returning false) and context cancellation both send a Cancel frame,
// which stops the server-side execution mid-join, and then drain to the
// stream's terminating frame so the server-side run has fully ended before
// this returns.
func (s *Store) enumerate(ctx context.Context, handle, txnID uint64, emit func([]int64) bool) error {
	chunkRows := s.cfg.chunkRows
	if chunkRows < 0 {
		chunkRows = 0 // 0 selects the server default; never varint-wrap
	}
	credit := s.cfg.credit
	if credit <= 0 {
		credit = 8
	}
	// The mailbox holds the full credit window plus the terminating frame,
	// so the shared read loop never blocks on this stream.
	id, c, err := s.register(credit + 1)
	if err != nil {
		return err
	}
	defer s.deregister(id)
	var e wire.Enc
	e.U64(handle)
	e.U64(txnID)
	e.Int(chunkRows)
	e.Int(credit)
	if err := s.write(wire.TRows, id, traceBody(ctx, e.Bytes())); err != nil {
		return err
	}

	stopped := false // consumer stopped; drain without granting credit
	// A stopped stream still drains to its terminating frame, but a wedged
	// server must not block the caller forever: the wedge timer arms when
	// the stop is sent (a nil channel never fires before that).
	var wedgeT *time.Timer
	var wedgeC <-chan time.Time
	defer func() {
		if wedgeT != nil {
			wedgeT.Stop()
		}
	}()
	cancel := func() {
		if !stopped {
			stopped = true
			s.sendCancel(id)
			wedgeT = time.NewTimer(drainTimeout)
			wedgeC = wedgeT.C
		}
	}
	var one wire.Enc
	one.Int(1)
	grant := one.Bytes()
	for {
		select {
		case f := <-c.ch:
			switch f.typ {
			case wire.TErr:
				return wire.DecodeErr(f.body)
			case wire.TRowChunk:
				if stopped {
					continue // draining
				}
				d := wire.NewDec(f.body)
				rows := d.Tuples()
				if d.Err() != nil {
					err := fmt.Errorf("client: malformed row chunk: %w", ErrProtocol)
					s.fail(err)
					return err
				}
				for _, row := range rows {
					if !emit(row) {
						cancel()
						break
					}
				}
				if !stopped {
					if err := s.write(wire.TCredit, id, grant); err != nil {
						return err
					}
				}
			case wire.TRowsEnd:
				d := wire.NewDec(f.body)
				d.I64() // delivered count; the consumer counted for itself
				code := d.Str()
				msg := d.Str()
				if d.Err() != nil {
					return d.Err()
				}
				if stopped || code == "" {
					// A complete stream, or the tail of one we stopped — the
					// server acknowledged the stop, so its execution is done.
					return nil
				}
				return &wire.Error{Code: code, Msg: msg}
			default:
				err := fmt.Errorf("client: unexpected frame 0x%02x in row stream: %w", f.typ, ErrProtocol)
				s.fail(err)
				return err
			}
		case <-ctx.Done():
			cancel()
			// Drain so the server-side run has ended before returning; the
			// cancel frame wakes both a credit-blocked producer and the
			// engine's context checks, so a live server answers promptly. A
			// dead or wedged one must not outlive the caller's cancelled
			// context, so the drain itself is bounded — on timeout the
			// stream state is indeterminate and the connection is failed.
			deadline := time.NewTimer(drainTimeout)
			defer deadline.Stop()
			for {
				select {
				case f := <-c.ch:
					if f.typ == wire.TRowsEnd || f.typ == wire.TErr {
						return ctx.Err()
					}
				case <-s.readDone:
					return ctx.Err()
				case <-deadline.C:
					s.fail(fmt.Errorf("client: server did not acknowledge a cancelled stream within %v: %w", drainTimeout, ErrProtocol))
					return ctx.Err()
				}
			}
		case <-wedgeC:
			err := fmt.Errorf("client: server did not acknowledge a stopped stream within %v: %w", drainTimeout, ErrProtocol)
			s.fail(err)
			return err
		case <-s.readDone:
			return s.transportErr()
		}
	}
}

// rowsSeq adapts an Enumerate-shaped execution into a streaming iterator,
// discarding any mid-stream error (the client-side counterpart of the repro
// package's helper).
func rowsSeq(enumerate func(context.Context, func([]int64) bool) error, ctx context.Context) iter.Seq[[]int64] {
	return func(yield func([]int64) bool) {
		_ = enumerate(ctx, func(t []int64) bool {
			return yield(t)
		})
	}
}

// rowsErrSeq is rowsSeq with the explicit-error protocol: (tuple, nil) per
// result, and a final (nil, err) pair when execution fails before the
// consumer stopped.
func rowsErrSeq(enumerate func(context.Context, func([]int64) bool) error, ctx context.Context) iter.Seq2[[]int64, error] {
	return func(yield func([]int64, error) bool) {
		stopped := false
		err := enumerate(ctx, func(t []int64) bool {
			ok := yield(t, nil)
			stopped = !ok
			return ok
		})
		if err != nil && !stopped {
			yield(nil, err)
		}
	}
}
