package lftj

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/query"
	"repro/internal/testutil"
)

func BenchmarkTriangleCount(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	db := testutil.RandomGraphDB(rng, 2000, 12000, 1)
	q := query.Clique(3)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (Engine{}).Count(ctx, q, db); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFourCliqueCount(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	db := testutil.RandomGraphDB(rng, 2000, 12000, 1)
	q := query.Clique(4)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (Engine{}).Count(ctx, q, db); err != nil {
			b.Fatal(err)
		}
	}
}
