#!/usr/bin/env bash
# Client/server integration smoke (the CI `integration` job, runnable
# locally as `make integration`): build graphjoind and graphjoin, boot the
# server on a loopback port, run scripted remote queries, and compare the
# counts against an identical in-process run. Fails on any non-zero exit or
# count mismatch, and checks the dial-failure and graceful-shutdown paths.
set -euo pipefail

cd "$(dirname "$0")/.."
bin="$(mktemp -d)"
server_pid=""
cleanup() {
  [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
  rm -rf "$bin"
}
trap cleanup EXIT

go build -o "$bin/graphjoind" ./cmd/graphjoind
go build -o "$bin/graphjoin" ./cmd/graphjoin

graph_flags=(-model ba -nodes 2000 -edges 9000 -seed 7 -selectivity 10)

# Boot on an ephemeral port and scrape the bound address from the banner.
"$bin/graphjoind" -listen 127.0.0.1:0 "${graph_flags[@]}" > "$bin/server.log" 2>&1 &
server_pid=$!
addr=""
for _ in $(seq 1 100); do
  addr="$(sed -n 's/.* on \(127\.0\.0\.1:[0-9]*\)$/\1/p' "$bin/server.log")"
  [ -n "$addr" ] && break
  kill -0 "$server_pid" 2>/dev/null || { cat "$bin/server.log" >&2; exit 1; }
  sleep 0.1
done
[ -n "$addr" ] || { echo "integration: server never became ready" >&2; cat "$bin/server.log" >&2; exit 1; }

# "engine: N results in ..." -> N
extract() { sed -n 's/^[a-z]*: \([0-9][0-9]*\) results.*/\1/p'; }

want="$("$bin/graphjoin" "${graph_flags[@]}" -query 3-clique -engine lftj | extract)"
[ -n "$want" ] || { echo "integration: local run produced no count" >&2; exit 1; }

for engine in lftj ms; do
  got="$("$bin/graphjoin" -connect "$addr" -query 3-clique -engine "$engine" | extract)"
  if [ "$got" != "$want" ]; then
    echo "integration: $engine remote count $got != local $want" >&2
    exit 1
  fi
  echo "integration: $engine remote count $got matches local"
done

# The same pattern as inline Datalog against the remote schema.
got="$("$bin/graphjoin" -connect "$addr" -datalog 'fwd(a,b), fwd(a,c), fwd(b,c)' | extract)"
if [ "$got" != "$want" ]; then
  echo "integration: datalog remote count $got != local $want" >&2
  exit 1
fi

# A failed dial must exit non-zero with a one-line error (no panic).
if "$bin/graphjoin" -connect 127.0.0.1:1 -query 3-clique > "$bin/dial.log" 2>&1; then
  echo "integration: dial to a dead port did not fail" >&2
  exit 1
fi
if [ "$(wc -l < "$bin/dial.log")" -ne 1 ]; then
  echo "integration: dial failure was not a one-line error:" >&2
  cat "$bin/dial.log" >&2
  exit 1
fi

# Graceful shutdown on SIGTERM.
kill -TERM "$server_pid"
for _ in $(seq 1 50); do
  kill -0 "$server_pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$server_pid" 2>/dev/null; then
  echo "integration: server ignored SIGTERM" >&2
  exit 1
fi
wait "$server_pid" || { echo "integration: server exited non-zero" >&2; exit 1; }
server_pid=""
grep -q "bye" "$bin/server.log" || { echo "integration: no clean shutdown banner" >&2; exit 1; }

echo "integration: OK"
