package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/relation"
)

// Record ops, in the order they appear in a record body after the LSN.
const (
	OpDefine byte = 1 // define a relation: name, arity
	OpLoad   byte = 2 // bulk-replace a relation's rows: name, tuples
	OpDeltas byte = 3 // atomic multi-relation update: per relation name, inserts, deletes
)

// Options configures a Manager.
type Options struct {
	// Sync is the commit durability policy; zero value selects SyncGroup.
	Sync SyncPolicy
	// GroupWindow is how long a SyncGroup sync leader waits for more
	// commits to join its fsync. Zero syncs immediately (still batching
	// whatever arrived while the previous fsync was in flight).
	GroupWindow time.Duration
	// MetricsLabel, when non-empty, registers this manager's durability
	// metrics (WAL fsync latency, group-commit batch size, checkpoint
	// duration and age) in the process metrics registry under
	// store=<MetricsLabel>. Empty disables instrumentation.
	MetricsLabel string
}

// Record is one replayable log record surfaced by recovery.
type Record struct {
	LSN uint64
	Op  byte

	// OpDefine and OpLoad target one relation.
	Name   string
	Arity  int       // OpDefine
	Tuples [][]int64 // OpLoad

	// OpDeltas carries an atomic multi-relation batch.
	Batches []core.DeltaBatch
}

// Recovered is what Open reconstructed from disk: the newest valid snapshot
// plus every log record after it, in LSN order. The caller folds Relations
// into a fresh database, replays Records through the same code paths that
// produced them, and reports TailErr (if any) to the operator.
type Recovered struct {
	// SnapshotLSN is the log position the snapshot captures (0 = none).
	SnapshotLSN uint64
	// Relations are the snapshot's relations, sorted by name.
	Relations []SnapRelation
	// Records are the log records after SnapshotLSN, contiguous by LSN.
	Records []Record
	// LastLSN is the last durable LSN; appends resume at LastLSN+1.
	LastLSN uint64
	// TailErr, if non-nil, wraps ErrCorruptLog and describes the torn or
	// corrupt log tail that was dropped (and truncated away) past LastLSN.
	TailErr error
}

// Manager is the durability endpoint a store writes through: append a
// record, apply in memory, then Commit the returned LSN before
// acknowledging. Append methods and Commit are safe for concurrent use;
// Checkpoint and Close serialize against in-flight fsyncs internally.
type Manager struct {
	dir string
	log *log

	// ckptHist times Checkpoint; lastCkpt holds the wall-clock nanos of the
	// last successful checkpoint for the age gauge. Both are inert when
	// Options.MetricsLabel was empty.
	ckptHist *metrics.Histogram
	lastCkpt atomic.Int64
}

// Open attaches to (or initializes) the durable state in dir and returns
// the manager plus everything recovery reconstructed. dir is created if
// missing. Open fails on unrecoverable damage: a mid-log corruption, an LSN
// gap, or a directory whose every snapshot is invalid while the log starts
// past LSN 1.
func Open(dir string, opts Options) (*Manager, *Recovered, error) {
	if opts.Sync == "" {
		opts.Sync = SyncGroup
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}

	rec := &Recovered{}
	snaps, err := listSnapshots(dir)
	if err != nil {
		return nil, nil, err
	}
	// Newest valid snapshot wins; an invalid one (torn rename window, bit
	// rot) falls back to the next-newest, which the pruner keeps around
	// until a newer snapshot has fully replaced it.
	for i := len(snaps) - 1; i >= 0; i-- {
		lsn, rels, serr := readSnapshot(snaps[i])
		if serr != nil {
			continue
		}
		rec.SnapshotLSN = lsn
		rec.Relations = rels
		break
	}

	l, raws, tailErr, err := openLog(dir, opts.Sync, opts.GroupWindow, rec.SnapshotLSN)
	if err != nil {
		return nil, nil, err
	}
	rec.TailErr = tailErr
	rec.Records = make([]Record, 0, len(raws))
	for _, r := range raws {
		dec, derr := decodeRecord(r)
		if derr != nil {
			l.close()
			return nil, nil, fmt.Errorf("%w: record %d: %v", ErrCorruptLog, r.lsn, derr)
		}
		rec.Records = append(rec.Records, dec)
	}
	rec.LastLSN = l.nextLSN - 1
	if rec.SnapshotLSN == 0 && len(snaps) > 0 && len(rec.Relations) == 0 && rec.LastLSN > 0 && len(rec.Records) == 0 {
		// Snapshots exist but none validated, and the log alone cannot
		// reach the present: refusing is safer than silently serving an
		// empty store over a directory that clearly held data.
		l.close()
		return nil, nil, fmt.Errorf("%w: no valid snapshot and log starts past LSN 1", ErrCorruptLog)
	}
	m := &Manager{dir: dir, log: l}
	if opts.MetricsLabel != "" {
		reg := metrics.Default()
		l.fsyncHist = reg.Histogram("graphjoind_wal_fsync_seconds",
			"WAL flush+fsync latency per group-commit round.", "store", opts.MetricsLabel)
		l.groupHist = reg.HistogramBuckets("graphjoind_wal_group_commit_records",
			"Log records made durable per fsync round.", metrics.SizeBuckets, "store", opts.MetricsLabel)
		m.ckptHist = reg.Histogram("graphjoind_checkpoint_seconds",
			"Snapshot checkpoint duration (rotate + write + prune).", "store", opts.MetricsLabel)
		reg.GaugeFunc("graphjoind_checkpoint_age_seconds",
			"Seconds since the last successful checkpoint (-1 before the first).",
			m.checkpointAge, "store", opts.MetricsLabel)
	}
	return m, rec, nil
}

// checkpointAge backs the graphjoind_checkpoint_age_seconds gauge.
func (m *Manager) checkpointAge() float64 {
	t := m.lastCkpt.Load()
	if t == 0 {
		return -1
	}
	return time.Since(time.Unix(0, t)).Seconds()
}

func listSnapshots(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, e := range entries {
		if _, ok := parseSeq(e.Name(), "snap-", ".snap"); ok {
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(paths) // zero-padded hex: lexicographic == numeric
	return paths, nil
}

func decodeRecord(r rawRecord) (Record, error) {
	out := Record{LSN: r.lsn, Op: r.op}
	d := codec.NewDec(r.body)
	switch r.op {
	case OpDefine:
		out.Name = d.Str()
		out.Arity = d.Int()
	case OpLoad:
		out.Name = d.Str()
		out.Tuples = d.Tuples()
	case OpDeltas:
		n := d.Count()
		out.Batches = make([]core.DeltaBatch, 0, n)
		for i := 0; i < n; i++ {
			b := core.DeltaBatch{Name: d.Str()}
			b.Inserts = d.Tuples()
			b.Deletes = d.Tuples()
			out.Batches = append(out.Batches, b)
		}
	default:
		return out, fmt.Errorf("unknown op %d", r.op)
	}
	return out, d.Err()
}

// AppendDefine logs a relation definition and returns its LSN.
func (m *Manager) AppendDefine(name string, arity int) (uint64, error) {
	var e codec.Enc
	e.Str(name)
	e.Int(arity)
	return m.log.append(OpDefine, e.Bytes())
}

// AppendLoad logs a bulk load and returns its LSN.
func (m *Manager) AppendLoad(name string, tuples [][]int64) (uint64, error) {
	var e codec.Enc
	e.Str(name)
	e.Tuples(tuples)
	return m.log.append(OpLoad, e.Bytes())
}

// AppendDeltas logs one atomic multi-relation batch and returns its LSN.
func (m *Manager) AppendDeltas(batches []core.DeltaBatch) (uint64, error) {
	var e codec.Enc
	e.Int(len(batches))
	for _, b := range batches {
		e.Str(b.Name)
		e.Tuples(b.Inserts)
		e.Tuples(b.Deletes)
	}
	return m.log.append(OpDeltas, e.Bytes())
}

// Commit blocks until lsn is durable under the configured sync policy.
// The write it covers must not be acknowledged before Commit returns.
func (m *Manager) Commit(lsn uint64) error { return m.log.commit(lsn) }

// LastLSN returns the highest LSN appended so far.
func (m *Manager) LastLSN() uint64 {
	m.log.mu.Lock()
	defer m.log.mu.Unlock()
	return m.log.appended
}

// UnprunedBytes returns the on-disk size of the log segments a checkpoint
// has not yet pruned — the recovery-replay volume, and the signal
// size-triggered checkpointing watches.
func (m *Manager) UnprunedBytes() uint64 { return m.log.unprunedBytes() }

// Checkpoint durably writes rels as the snapshot at lsn — which must be the
// last LSN already applied to that relation set — then rotates the log and
// prunes segments and snapshots the new snapshot supersedes. After a
// successful checkpoint, recovery replays only records past lsn.
func (m *Manager) Checkpoint(lsn uint64, rels []*relation.Relation) error {
	start := time.Now()
	// Rotation fsyncs all appended records, so the snapshot never claims an
	// LSN the log hasn't durably reached.
	if err := m.log.rotate(); err != nil {
		return err
	}
	if _, err := writeSnapshot(m.dir, lsn, rels); err != nil {
		return err
	}
	m.log.prune(lsn)
	if m.ckptHist != nil {
		m.ckptHist.ObserveSince(start)
	}
	m.lastCkpt.Store(time.Now().UnixNano())
	return nil
}

// Close fsyncs and closes the log. Further appends and commits fail with
// ErrClosed.
func (m *Manager) Close() error { return m.log.close() }
