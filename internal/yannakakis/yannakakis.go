// Package yannakakis implements Yannakakis' algorithm [17] for α-acyclic
// queries: full semijoin reduction over a GYO join tree, then a bottom-up
// counting pass that never materializes the output. The paper cites it as
// the classical linear-time yardstick for acyclic joins ("#Minesweeper is to
// message passing what Minesweeper was to Yannakakis algorithm", §4.11); in
// the reproduction it also stands in for the closed-source "System HC"
// comparator of Figure 6.
package yannakakis

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/query"
)

// Engine is the Yannakakis engine. It rejects cyclic queries.
type Engine struct{}

// Name implements core.Engine.
func (Engine) Name() string { return "yannakakis" }

// table is a mutable copy of one atom's tuples with per-tuple weights.
type table struct {
	vars   []string
	width  int
	rows   []int64
	weight []int64
	alive  []bool
}

func (t *table) row(i int) []int64 { return t.rows[i*t.width : (i+1)*t.width] }
func (t *table) count() int        { return len(t.weight) }

// Count implements core.Engine.
func (e Engine) Count(ctx context.Context, q *query.Query, db *core.DB) (int64, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	jt, err := hypergraph.BuildJoinTree(q)
	if err != nil {
		return 0, err
	}
	tabs := make([]*table, len(q.Atoms))
	for i, a := range q.Atoms {
		r, err := db.Relation(a.Rel)
		if err != nil {
			return 0, err
		}
		if r.Arity() != len(a.Vars) {
			return 0, fmt.Errorf("yannakakis: atom %s arity mismatch with %s", a, r)
		}
		t := &table{vars: append([]string(nil), a.Vars...), width: r.Arity()}
		t.rows = make([]int64, 0, r.Len()*r.Arity())
		for j := 0; j < r.Len(); j++ {
			t.rows = append(t.rows, r.Tuple(j)...)
		}
		t.weight = make([]int64, r.Len())
		t.alive = make([]bool, r.Len())
		for j := range t.alive {
			t.alive[j] = true
			t.weight[j] = 1
		}
		tabs[i] = t
	}

	// Upward semijoin pass (children before parents): parent ⋉ child.
	for _, i := range jt.Order {
		if p := jt.Parent[i]; p != -1 {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			semijoin(tabs[p], tabs[i])
		}
	}
	// Downward pass (parents before children): child ⋉ parent.
	for k := len(jt.Order) - 1; k >= 0; k-- {
		i := jt.Order[k]
		if p := jt.Parent[i]; p != -1 {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			semijoin(tabs[i], tabs[p])
		}
	}
	// Counting pass, children before parents: fold each child's weights
	// into its parent grouped by the shared variables; the root's weight sum
	// is the join size.
	for _, i := range jt.Order {
		p := jt.Parent[i]
		if p == -1 {
			continue
		}
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		foldCounts(tabs[p], tabs[i])
	}
	var total int64
	root := tabs[jt.Root]
	for j := 0; j < root.count(); j++ {
		if root.alive[j] {
			total += root.weight[j]
		}
	}
	return total, nil
}

// Enumerate is not provided: the counting pass never materializes output
// tuples. Callers needing enumeration use LFTJ or Minesweeper.
func (e Engine) Enumerate(ctx context.Context, q *query.Query, db *core.DB, emit func([]int64) bool) error {
	return fmt.Errorf("yannakakis: enumeration not supported (count-only engine)")
}

// sharedPositions returns aligned column positions of the variables common
// to both tables.
func sharedPositions(a, b *table) (pa, pb []int) {
	idx := make(map[string]int, len(b.vars))
	for j, v := range b.vars {
		idx[v] = j
	}
	for i, v := range a.vars {
		if j, ok := idx[v]; ok {
			pa = append(pa, i)
			pb = append(pb, j)
		}
	}
	return pa, pb
}

func keyOf(row []int64, pos []int, buf []byte) []byte {
	for _, p := range pos {
		v := uint64(row[p])
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
			byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
	}
	return buf
}

// semijoin keeps only dst rows whose shared-variable projection appears in
// some alive src row.
func semijoin(dst, src *table) {
	pd, ps := sharedPositions(dst, src)
	if len(pd) == 0 {
		// No shared variables: dst survives iff src is non-empty.
		any := false
		for j := range src.alive {
			if src.alive[j] {
				any = true
				break
			}
		}
		if !any {
			for i := range dst.alive {
				dst.alive[i] = false
			}
		}
		return
	}
	present := make(map[string]struct{}, src.count())
	var buf []byte
	for j := 0; j < src.count(); j++ {
		if !src.alive[j] {
			continue
		}
		buf = keyOf(src.row(j), ps, buf[:0])
		present[string(buf)] = struct{}{}
	}
	for i := 0; i < dst.count(); i++ {
		if !dst.alive[i] {
			continue
		}
		buf = keyOf(dst.row(i), pd, buf[:0])
		if _, ok := present[string(buf)]; !ok {
			dst.alive[i] = false
		}
	}
}

// foldCounts multiplies each parent row's weight by the summed weights of
// matching child rows. After full reduction every parent row matches at
// least one child row.
func foldCounts(parent, child *table) {
	pp, pc := sharedPositions(parent, child)
	sums := make(map[string]int64, child.count())
	var buf []byte
	for j := 0; j < child.count(); j++ {
		if !child.alive[j] {
			continue
		}
		buf = keyOf(child.row(j), pc, buf[:0])
		sums[string(buf)] += child.weight[j]
	}
	if len(pp) == 0 {
		var total int64
		for _, s := range sums {
			total += s
		}
		for i := range parent.weight {
			parent.weight[i] *= total
		}
		return
	}
	for i := 0; i < parent.count(); i++ {
		if !parent.alive[i] {
			continue
		}
		buf = keyOf(parent.row(i), pp, buf[:0])
		parent.weight[i] *= sums[string(buf)]
	}
}
