// Command pathsample demonstrates the regime where Minesweeper beats the
// worst-case-optimal engine (paper §5.2.1 and Figures 3–5): low-selectivity
// path queries, where #Minesweeper-style caching avoids recomputing shared
// sub-path counts. It runs the 3-path query between growing node samples
// and prints the runtime series for both engines.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro"
)

func main() {
	ctx := context.Background()
	g := repro.GenerateGraph(repro.BarabasiAlbert, 30_000, 300_000, 7)
	fmt.Printf("graph: %d nodes, %d edges (LiveJournal-regime stand-in)\n", g.Nodes(), g.Edges())
	fmt.Printf("%-10s %12s %12s %14s\n", "sample N", "lftj", "ms", "3-path count")

	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{10, 100, 500, 2000} {
		v1 := sample(rng, g.Nodes(), n)
		v2 := sample(rng, g.Nodes(), n)
		g.SetSamples(v1, v2)
		q := repro.Paths(3)

		var times []time.Duration
		var count int64
		for _, alg := range []repro.Algorithm{repro.LFTJ, repro.MS} {
			// Samples changed above, so the physical design changed:
			// re-prepare (the plan cache invalidated the stale plans) and
			// time only the execution of the compiled query.
			p, err := g.Prepare(q, repro.Options{Algorithm: alg, Workers: 1})
			if err != nil {
				log.Fatalf("%s: %v", alg, err)
			}
			start := time.Now()
			c, err := p.Count(ctx)
			if err != nil {
				log.Fatalf("%s: %v", alg, err)
			}
			times = append(times, time.Since(start))
			count = c
		}
		fmt.Printf("%-10d %12v %12v %14d\n", n,
			times[0].Round(time.Millisecond), times[1].Round(time.Millisecond), count)
	}
	fmt.Println("\nas the samples grow, shared sub-path work grows and Minesweeper's")
	fmt.Println("caching (Ideas 5-6 + count reuse) pulls ahead of LFTJ — the paper's")
	fmt.Println("Figures 3-5 shape")
}

func sample(rng *rand.Rand, n, k int) []int64 {
	if k > n {
		k = n
	}
	perm := rng.Perm(n)[:k]
	out := make([]int64, k)
	for i, v := range perm {
		out[i] = int64(v)
	}
	return out
}
