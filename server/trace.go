package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/trace"
	"repro/internal/wire"
)

// TraceConfig configures per-request tracing and the slow-query log.
type TraceConfig struct {
	// BufferTraces is how many completed traces the server retains for the
	// TTrace wire request and /debug/traces (0 selects
	// trace.DefaultBufferTraces).
	BufferTraces int
	// SlowQuery, when positive, logs one JSON line per request that takes
	// longer than the threshold.
	SlowQuery time.Duration
	// SlowQueryLog receives the slow-query lines (one JSON object per line).
	// Nil with SlowQuery set routes the lines through Logf.
	SlowQueryLog io.Writer
	// SampleEvery traces one in N requests that arrive without a client
	// trace context, so slow-query lines carry span trees even for untraced
	// clients. 0 or 1 means every request while SlowQuery is set; requests
	// that arrive with a trace context are always traced.
	SampleEvery int
}

// traceSink is the server's tracing state, derived from TraceConfig at New.
type traceSink struct {
	buf       *trace.Buffer
	slowQuery time.Duration
	sampler   *trace.Sampler

	mu      sync.Mutex
	slowLog io.Writer
	logf    func(string, ...any)
}

func newTraceSink(cfg TraceConfig, logf func(string, ...any)) *traceSink {
	ts := &traceSink{
		buf:       trace.NewBuffer(cfg.BufferTraces),
		slowQuery: cfg.SlowQuery,
		slowLog:   cfg.SlowQueryLog,
		logf:      logf,
	}
	if cfg.SlowQuery > 0 {
		every := cfg.SampleEvery
		if every < 1 {
			every = 1
		}
		ts.sampler = trace.NewSampler(every)
	}
	return ts
}

// slowQueryLine is one slow-query log entry: when, what, how long, and the
// span tree the request left behind (absent when the request was neither
// client-traced nor sampled).
type slowQueryLine struct {
	TS          string             `json:"ts"`
	Store       string             `json:"store"`
	Type        string             `json:"type"`
	TraceID     trace.ID           `json:"trace_id,omitempty"`
	DurMs       float64            `json:"dur_ms"`
	Fingerprint string             `json:"fingerprint,omitempty"`
	Err         string             `json:"err,omitempty"`
	Spans       []trace.SpanRecord `json:"spans,omitempty"`
}

// observe retains a completed request's trace and writes the slow-query line
// when the request crossed the threshold. tr may be nil (untraced request).
func (ts *traceSink) observe(store, typ string, tr *trace.Trace, dur time.Duration, err error) {
	var data trace.Data
	if tr != nil {
		data = tr.Data()
		ts.buf.Add(data)
	}
	if ts.slowQuery <= 0 || dur < ts.slowQuery {
		return
	}
	line := slowQueryLine{
		TS:    time.Now().UTC().Format(time.RFC3339Nano),
		Store: store,
		Type:  typ,
		DurMs: float64(dur) / float64(time.Millisecond),
	}
	if err != nil {
		line.Err = err.Error()
	}
	if tr != nil {
		line.TraceID = data.ID
		line.Spans = data.Spans
		line.Fingerprint = fingerprint(data.Spans)
	}
	b, jerr := json.Marshal(line)
	if jerr != nil {
		return
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.slowLog != nil {
		ts.slowLog.Write(append(b, '\n'))
		return
	}
	ts.logf("slow query: %s", b)
}

// fingerprint extracts the plan fingerprint the handlers attach to their
// spans: the query's source form plus the engine it compiled to.
func fingerprint(spans []trace.SpanRecord) string {
	for _, s := range spans {
		if q := s.Attr("query"); q != "" {
			if alg := s.Attr("algorithm"); alg != "" {
				return q + " [" + alg + "]"
			}
			return q
		}
	}
	return ""
}

// traceFetchWait bounds how long a by-id TTrace fetch waits for the trace to
// land in the buffer. A request's trace is recorded just *after* its
// response frame is sent, so a client that queries the moment its response
// arrives can race the record by microseconds; polling briefly makes the
// fetch deterministic without ordering the hot path around diagnostics.
const traceFetchWait = 2 * time.Second

// handleTrace answers a TTrace fetch: by trace id (merging spans from
// downstream hosts when the backend fronts any — the router capability), or
// the last-N retained traces when id is zero.
func (c *conn) handleTrace(ctx context.Context, reqID uint64, body []byte) error {
	d := wire.NewDec(body)
	id := d.U64()
	n := d.Int()
	if d.Err() != nil {
		return decodeErr(d)
	}
	var e wire.Enc
	if id == 0 {
		wire.EncodeTraces(&e, c.srv.traces.buf.Last(n))
		return c.send(wire.TTraceOK, reqID, e.Bytes())
	}
	spans, ok := c.srv.traces.buf.Get(trace.ID(id))
	for deadline := time.Now().Add(traceFetchWait); !ok && time.Now().Before(deadline); {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
		spans, ok = c.srv.traces.buf.Get(trace.ID(id))
	}
	if ds, hasDownstream := c.store.(interface {
		TraceSpans(context.Context, uint64) ([]trace.SpanRecord, error)
	}); hasDownstream {
		remote, err := ds.TraceSpans(ctx, id)
		if err != nil {
			return err
		}
		spans = append(spans, remote...)
	}
	wire.EncodeTraces(&e, []trace.Data{{ID: trace.ID(id), Spans: spans}})
	return c.send(wire.TTraceOK, reqID, e.Bytes())
}

// DebugTracesHandler serves the server's retained traces as JSON — mounted
// at /debug/traces on the daemons' metrics listeners.
func (s *Server) DebugTracesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.traces.buf.Last(0))
	})
}
