// Package agm computes the Atserias–Grohe–Marx worst-case output bound for
// join queries (paper Appendix A): the minimum over fractional edge covers x
// of Π_F |R_F|^{x_F}, obtained by solving
//
//	min Σ_F log2|R_F| · x_F   s.t.   Σ_{F ∋ v} x_F >= 1 ∀v,  x >= 0.
//
// Worst-case-optimal algorithms such as LFTJ run in time Õ(N + AGM(Q)).
package agm

import (
	"fmt"
	"math"

	"repro/internal/lp"
	"repro/internal/query"
)

// Result holds the optimal fractional edge cover and the induced bound.
type Result struct {
	// Cover[i] is the weight x_F assigned to atom i.
	Cover []float64
	// Log2Bound is Σ log2|R_F| · x_F.
	Log2Bound float64
}

// Bound returns ceil(2^Log2Bound), saturating at MaxFloat64.
func (r *Result) Bound() float64 {
	return math.Exp2(r.Log2Bound)
}

// Compute solves the AGM linear program for the query, where sizes[i] is the
// number of tuples in the relation instance of atom i. Empty relations are
// treated as size 1 (log 0 is -inf; an empty input makes the output empty
// regardless, and a zero-weight cover cannot use it).
func Compute(q *query.Query, sizes []int) (*Result, error) {
	if len(sizes) != len(q.Atoms) {
		return nil, fmt.Errorf("agm: %d sizes for %d atoms", len(sizes), len(q.Atoms))
	}
	n := len(q.Atoms)
	c := make([]float64, n)
	for i, s := range sizes {
		if s < 1 {
			s = 1
		}
		c[i] = math.Log2(float64(s))
	}
	vars := q.Vars()
	a := make([][]float64, len(vars))
	b := make([]float64, len(vars))
	for vi, v := range vars {
		row := make([]float64, n)
		for _, ai := range q.AtomsWith(v) {
			row[ai] = 1
		}
		a[vi] = row
		b[vi] = 1
	}
	x, obj, err := lp.MinimizeCover(c, a, b)
	if err != nil {
		return nil, fmt.Errorf("agm: %w", err)
	}
	return &Result{Cover: x, Log2Bound: obj}, nil
}
