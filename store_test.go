package repro

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/relation"
)

// relTuples extracts every tuple of a named relation from a store.
func relTuples(t *testing.T, s *Store, name string) [][]int64 {
	t.Helper()
	r, err := s.DB().Relation(name)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]int64, r.Len())
	for i := range out {
		out[i] = append([]int64(nil), r.Tuple(i)...)
	}
	return out
}

// storeFromGraph rebuilds a graph's benchmark schema as explicit Store
// definitions — the "both ways" side of the differential test.
func storeFromGraph(t *testing.T, g *Graph) *Store {
	t.Helper()
	s := NewStore()
	for _, name := range g.Store().Relations() {
		arity, err := g.Store().Arity(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.DefineRelation(name, arity); err != nil {
			t.Fatal(err)
		}
		if err := s.Load(name, relTuples(t, g.Store(), name)); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// TestStoreGraphDifferential builds the benchmark schema both ways — NewGraph
// (the canned schema) and explicit Store definitions loaded with the same
// tuples — and requires identical counts across the full query corpus ×
// both trie-driven engines × every index backend.
func TestStoreGraphDifferential(t *testing.T) {
	ctx := context.Background()
	g := GenerateGraph(HolmeKim, 250, 900, 3)
	g.SetSelectivity(25, 5)
	s := storeFromGraph(t, g)
	for _, q := range corpusQueries() {
		for _, alg := range []Algorithm{LFTJ, MS} {
			for _, backend := range backendMatrix {
				opts := Options{Algorithm: alg, Workers: 1, Backend: backend}
				want, err := Count(ctx, g, q, opts)
				if err != nil {
					t.Fatalf("%s/%s/%s graph: %v", q.Name, alg, backend, err)
				}
				got, err := s.Count(ctx, q, opts)
				if err != nil {
					t.Fatalf("%s/%s/%s store: %v", q.Name, alg, backend, err)
				}
				if got != want {
					t.Errorf("%s/%s/%s: store = %d, graph = %d", q.Name, alg, backend, got, want)
				}
			}
		}
	}
}

// pathStore builds a small directed-edge store for the transaction and batch
// tests: e(0,1), e(1,2), ..., a directed chain plus extras.
func pathStore(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	if err := s.DefineRelation("e", 2); err != nil {
		t.Fatal(err)
	}
	var tuples [][]int64
	for i := int64(0); i < 50; i++ {
		tuples = append(tuples, []int64{i, i + 1})
	}
	if err := s.Load("e", tuples); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestStoreReadTxn: two queries inside one read-transaction agree with each
// other while ApplyDelta lands in between, and a fresh transaction (and the
// live handle) see the new state.
func TestStoreReadTxn(t *testing.T) {
	ctx := context.Background()
	s := pathStore(t)
	q2, err := s.ParseQuery("p2", "e(a,b), e(b,c)")
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Prepare(q2, Options{Algorithm: LFTJ, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	before, err := p.Count(ctx)
	if err != nil {
		t.Fatal(err)
	}

	txn := s.ReadTxn()
	c1, err := txn.Count(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != before {
		t.Fatalf("txn count = %d, live count = %d before any write", c1, before)
	}
	// A write lands between the transaction's two reads: a new hub fanning
	// into the chain adds fresh 2-paths.
	if err := s.Apply("e", [][]int64{{100, 0}, {100, 1}, {100, 2}}, nil); err != nil {
		t.Fatal(err)
	}
	c2, err := txn.Count(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if c2 != c1 {
		t.Errorf("two reads in one txn disagree: %d then %d", c1, c2)
	}
	// Rows through the same txn agree with its counts too.
	var rows int64
	for range txn.Rows(ctx, p) {
		rows++
	}
	if rows != c1 {
		t.Errorf("txn Rows = %d, txn Count = %d", rows, c1)
	}

	after, err := p.Count(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if after <= before {
		t.Fatalf("live count %d did not grow past %d after Apply", after, before)
	}
	fresh := s.ReadTxn()
	c3, err := fresh.Count(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if c3 != after {
		t.Errorf("fresh txn = %d, live = %d", c3, after)
	}
}

// TestStoreReadTxnConcurrent hammers one transaction from several goroutines
// while a writer applies deltas: every read through the transaction must
// return the same pinned count (run under -race this also exercises the
// lease's synchronization).
func TestStoreReadTxnConcurrent(t *testing.T) {
	ctx := context.Background()
	s := pathStore(t)
	q, err := s.ParseQuery("p2", "e(a,b), e(b,c)")
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Prepare(q, Options{Algorithm: LFTJ, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	txn := s.ReadTxn()
	want, err := txn.Count(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := int64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = s.Apply("e", [][]int64{{200 + i, i % 50}}, nil)
		}
	}()
	var readers sync.WaitGroup
	errs := make(chan error, 4*10)
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for k := 0; k < 10; k++ {
				got, err := txn.Count(ctx, p)
				if err != nil {
					errs <- err
					return
				}
				if got != want {
					errs <- fmt.Errorf("pinned count moved: %d != %d", got, want)
					return
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	writer.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestStoreBatch: batched execution returns the same results as sequential
// execution, in request order, with per-request errors isolated.
func TestStoreBatch(t *testing.T) {
	ctx := context.Background()
	g := GenerateGraph(HolmeKim, 250, 900, 3)
	g.SetSelectivity(25, 5)
	s := g.Store()
	var reqs []Request
	var want []int64
	for _, q := range corpusQueries() {
		p, err := s.Prepare(q, Options{Algorithm: LFTJ, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		n, err := p.Count(ctx)
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, Request{Prepared: p})
		want = append(want, n)
	}
	for _, workers := range []int{0, 1, 2, 4} {
		res := s.BatchWorkers(ctx, reqs, workers)
		if len(res) != len(reqs) {
			t.Fatalf("workers=%d: %d results for %d requests", workers, len(res), len(reqs))
		}
		for i, r := range res {
			if r.Err != nil {
				t.Fatalf("workers=%d req %d: %v", workers, i, r.Err)
			}
			if r.Count != want[i] {
				t.Errorf("workers=%d req %d: count %d, want %d", workers, i, r.Count, want[i])
			}
		}
	}

	// Rows collection delivers the tuples alongside the count.
	p := reqs[0].Prepared
	res := s.Batch(ctx, []Request{{Prepared: p, Rows: true}})
	if res[0].Err != nil {
		t.Fatal(res[0].Err)
	}
	if int64(len(res[0].Rows)) != res[0].Count || res[0].Count != want[0] {
		t.Errorf("rows = %d, count = %d, want %d", len(res[0].Rows), res[0].Count, want[0])
	}

	// Per-request failures are isolated: a nil handle and a handle from a
	// different store fail their own slots only.
	other := pathStore(t)
	oq, err := other.ParseQuery("p", "e(a,b)")
	if err != nil {
		t.Fatal(err)
	}
	op, err := other.Prepare(oq, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mixed := s.Batch(ctx, []Request{{Prepared: nil}, {Prepared: op}, {Prepared: p}})
	if mixed[0].Err == nil {
		t.Error("nil Prepared should fail its request")
	}
	if !errors.Is(mixed[1].Err, ErrForeignPrepared) {
		t.Errorf("foreign Prepared error = %v, want ErrForeignPrepared", mixed[1].Err)
	}
	if mixed[2].Err != nil || mixed[2].Count != want[0] {
		t.Errorf("healthy request alongside failures: count=%d err=%v", mixed[2].Count, mixed[2].Err)
	}
}

// TestStoreBatchSharedSnapshot: all requests of one batch observe a single
// index state even while a writer churns the store.
func TestStoreBatchSharedSnapshot(t *testing.T) {
	ctx := context.Background()
	s := pathStore(t)
	q, err := s.ParseQuery("p2", "e(a,b), e(b,c)")
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Prepare(q, Options{Algorithm: LFTJ, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]Request, 8)
	for i := range reqs {
		reqs[i] = Request{Prepared: p}
	}
	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := int64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = s.Apply("e", [][]int64{{300 + i, i % 50}}, nil)
		}
	}()
	for round := 0; round < 5; round++ {
		res := s.BatchWorkers(ctx, reqs, 4)
		for i, r := range res {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
			if r.Count != res[0].Count {
				t.Fatalf("round %d: request %d saw %d, request 0 saw %d — not one snapshot",
					round, i, r.Count, res[0].Count)
			}
		}
	}
	close(stop)
	writer.Wait()
}

// TestTxnUnplanned: engines without a plan representation cannot promise a
// pinned snapshot and are rejected with a typed error.
func TestTxnUnplanned(t *testing.T) {
	ctx := context.Background()
	g := GenerateGraph(ErdosRenyi, 100, 300, 4)
	g.SetSamples([]int64{0}, []int64{1})
	p, err := g.Prepare(Paths(3), Options{Algorithm: Yannakakis})
	if err != nil {
		t.Fatal(err)
	}
	txn := g.Store().ReadTxn()
	if _, err := txn.Count(ctx, p); !errors.Is(err, ErrTxnUnplanned) {
		t.Errorf("unplanned engine in txn: err = %v, want ErrTxnUnplanned", err)
	}
}

// TestStoreSchemaErrors covers DefineRelation/Load/Apply validation.
func TestStoreSchemaErrors(t *testing.T) {
	s := NewStore()
	if err := s.DefineRelation("likes", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.DefineRelation("likes", 3); !errors.Is(err, ErrRelationExists) {
		t.Errorf("conflicting redefine: %v, want ErrRelationExists", err)
	}
	if err := s.DefineRelation("likes", 2); err != nil {
		t.Errorf("same-arity redefine: %v, want no-op nil", err)
	}
	if err := s.DefineRelation("bad name", 2); err == nil {
		t.Error("non-identifier name should fail")
	}
	if err := s.DefineRelation("1st", 2); err == nil {
		t.Error("digit-leading name should fail")
	}
	if err := s.DefineRelation("nullary", 0); err == nil {
		t.Error("arity 0 should fail")
	}
	if err := s.Load("nope", [][]int64{{1, 2}}); !errors.Is(err, ErrUnknownRelation) {
		t.Errorf("loading unknown relation: %v, want ErrUnknownRelation", err)
	}
	if err := s.Load("likes", [][]int64{{1, 2, 3}}); !errors.Is(err, ErrArityMismatch) {
		t.Errorf("loading 3-ary tuple: %v, want ErrArityMismatch", err)
	}
	if err := s.Apply("likes", [][]int64{{1}}, nil); !errors.Is(err, ErrArityMismatch) {
		t.Errorf("applying 1-ary insert: %v, want ErrArityMismatch", err)
	}
	if err := s.Apply("likes", nil, [][]int64{{1, 2, 3}}); !errors.Is(err, ErrArityMismatch) {
		t.Errorf("applying 3-ary delete: %v, want ErrArityMismatch", err)
	}
	if err := s.Apply("nope", [][]int64{{1, 2}}, nil); !errors.Is(err, ErrUnknownRelation) {
		t.Errorf("applying to unknown relation: %v, want ErrUnknownRelation", err)
	}
	// Values outside the storage domain surface as typed errors, not the
	// storage layer's internal panic.
	if err := s.Load("likes", [][]int64{{-10, 2}}); !errors.Is(err, ErrValueOutOfRange) {
		t.Errorf("loading negative value: %v, want ErrValueOutOfRange", err)
	}
	if err := s.Apply("likes", [][]int64{{1, 1 << 62}}, nil); !errors.Is(err, ErrValueOutOfRange) {
		t.Errorf("applying sentinel-range value: %v, want ErrValueOutOfRange", err)
	}
	if err := s.Apply("likes", nil, [][]int64{{-1, 0}}); !errors.Is(err, ErrValueOutOfRange) {
		t.Errorf("deleting negative value: %v, want ErrValueOutOfRange", err)
	}
}

// TestStoreParseQueryErrors covers the schema-checked parse paths: unknown
// relation, arity mismatch, unbound head variable, duplicate head
// variables.
func TestStoreParseQueryErrors(t *testing.T) {
	s := NewStore()
	if err := s.DefineRelation("e", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ParseQuery("q", "edge(a,b)"); !errors.Is(err, ErrUnknownRelation) {
		t.Errorf("unknown relation: %v, want ErrUnknownRelation", err)
	}
	if _, err := s.ParseQuery("q", "e(a,b,c)"); !errors.Is(err, ErrArityMismatch) {
		t.Errorf("arity mismatch: %v, want ErrArityMismatch", err)
	}
	if _, err := s.ParseQuery("q", "out(a, z) :- e(a, b)"); !errors.Is(err, ErrUnboundHeadVar) {
		t.Errorf("unbound head var: %v, want ErrUnboundHeadVar", err)
	}
	if q, err := s.ParseQuery("q", "out(a) :- e(a, b)"); err != nil {
		t.Errorf("projection head should parse: %v", err)
	} else if !q.Projected() {
		t.Errorf("out(a) :- e(a, b) should be projected")
	}
	if _, err := s.ParseQuery("q", "out(a, a) :- e(a, b)"); err == nil {
		t.Error("duplicate head var should fail")
	}
	if _, err := s.ParseQuery("q", "out(a, b) :-"); err == nil {
		t.Error("empty rule body should fail")
	}
	q, err := s.ParseQuery("ignored", "out(b, a) :- e(a, b)")
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != "out" {
		t.Errorf("head name = %q, want out", q.Name)
	}
	if vars := q.Vars(); len(vars) != 2 || vars[0] != "b" || vars[1] != "a" {
		t.Errorf("head var order = %v, want [b a]", vars)
	}
}

// TestStoreHeadOrderedRows: a rule head reorders the emitted bindings.
func TestStoreHeadOrderedRows(t *testing.T) {
	ctx := context.Background()
	s := NewStore()
	if err := s.DefineRelation("e", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Load("e", [][]int64{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	q, err := s.ParseQuery("", "rev(b, a) :- e(a, b)")
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Prepare(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var got [][]int64
	for row := range p.Rows(ctx) {
		got = append(got, row)
	}
	if len(got) != 1 || got[0][0] != 2 || got[0][1] != 1 {
		t.Errorf("head-ordered rows = %v, want [[2 1]]", got)
	}
}

// TestStoreApplyKeepsPlansValid: incremental writes through Apply advance a
// live Prepared handle on the default CSR backend without re-preparing.
func TestStoreApplyKeepsPlansValid(t *testing.T) {
	ctx := context.Background()
	s := NewStore()
	if err := s.DefineRelation("e", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Load("e", [][]int64{{0, 1}, {1, 2}}); err != nil {
		t.Fatal(err)
	}
	q, err := s.ParseQuery("tri", "e(a,b), e(b,c), e(a,c)")
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Prepare(q, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	n, err := p.Count(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("initial directed triangles = %d, want 0", n)
	}
	if err := s.Apply("e", [][]int64{{0, 2}}, nil); err != nil {
		t.Fatal(err)
	}
	if n, err = p.Count(ctx); err != nil || n != 1 {
		t.Fatalf("after insert: count = %d err = %v, want 1", n, err)
	}
	if err := s.Apply("e", nil, [][]int64{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if n, err = p.Count(ctx); err != nil || n != 0 {
		t.Fatalf("after delete: count = %d err = %v, want 0", n, err)
	}
}

// TestPrepareTypedValidation: unknown algorithm and backend names fail
// eagerly at Prepare with typed errors, for stores and graphs alike.
func TestPrepareTypedValidation(t *testing.T) {
	g := GenerateGraph(ErdosRenyi, 50, 100, 1)
	if _, err := g.Prepare(Triangles(), Options{Algorithm: "nope"}); !errors.Is(err, ErrUnknownAlgorithm) {
		t.Errorf("unknown algorithm: %v, want ErrUnknownAlgorithm", err)
	}
	if _, err := g.Prepare(Triangles(), Options{Backend: "btree"}); !errors.Is(err, ErrUnknownBackend) {
		t.Errorf("unknown backend: %v, want ErrUnknownBackend", err)
	}
	// Unknown names on a non-plan-aware engine still fail eagerly.
	if _, err := g.Prepare(Triangles(), Options{Algorithm: GraphLab, Backend: "btree"}); !errors.Is(err, ErrUnknownBackend) {
		t.Errorf("unknown backend on graphlab: %v, want ErrUnknownBackend", err)
	}
	for _, alg := range Algorithms() {
		q := Triangles()
		if alg == Yannakakis || alg == Hybrid {
			// Not meaningful on the cyclic triangle query; just check the
			// names validate.
			q = Paths(3)
		}
		if alg == Hybrid {
			q = Lollipops(2)
		}
		if _, err := g.Prepare(q, Options{Algorithm: alg, Workers: 1}); err != nil {
			t.Errorf("registered algorithm %q failed Prepare: %v", alg, err)
		}
	}
}

// TestCountWithStatsDefaulting pins the documented defaulting contract: the
// zero Options select ms/sequential (historical behavior), but a caller who
// sets only Workers gets the normal default engine with those workers — no
// silent rerouting to ms.
func TestCountWithStatsDefaulting(t *testing.T) {
	ctx := context.Background()
	g := GenerateGraph(BarabasiAlbert, 200, 800, 6)
	g.SetSelectivity(5, 2)
	q := Paths(3)

	n0, st0, err := CountWithStats(ctx, g, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st0.Probes == 0 {
		t.Errorf("empty Options should run ms (probes > 0), stats = %+v", st0)
	}

	// Regression: Workers-only must not be rerouted to ms — the default
	// engine is lftj, whose signature counter is Seeks.
	n1, st1, err := CountWithStats(ctx, g, q, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st1.Probes != 0 || st1.Seeks == 0 {
		t.Errorf("Workers-only Options should run the default engine (lftj): stats = %+v", st1)
	}
	if n0 != n1 {
		t.Errorf("counts disagree across defaulting paths: %d vs %d", n0, n1)
	}

	// An explicit algorithm is likewise untouched.
	_, st2, err := CountWithStats(ctx, g, q, Options{Algorithm: LFTJ})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Probes != 0 {
		t.Errorf("explicit lftj rerouted: stats = %+v", st2)
	}

	// Explicit ms with Workers zero still runs sequentially, so its
	// ablation counters stay deterministic: two runs report identical
	// counters.
	_, stA, err := CountWithStats(ctx, g, q, Options{Algorithm: MS})
	if err != nil {
		t.Fatal(err)
	}
	_, stB, err := CountWithStats(ctx, g, q, Options{Algorithm: MS})
	if err != nil {
		t.Fatal(err)
	}
	if stA != stB {
		t.Errorf("explicit-ms counters differ across runs:\n%+v\n%+v", stA, stB)
	}
	// The execution-side counters match the defaulted-ms run too; only the
	// planning block differs (the first run compiled the plan, later runs
	// hit the cache), so normalize it before comparing.
	norm := func(st ExecStats) ExecStats {
		st.PlanCacheHits, st.PlanCacheMisses, st.GAODerivations, st.IndexBindings = 0, 0, 0, 0
		return st
	}
	if norm(stA) != norm(st0) {
		t.Errorf("explicit ms and defaulted ms diverge:\n%+v\n%+v", stA, st0)
	}
}

// TestGraphApplyEdges: the Graph-level incremental write path maintains the
// benchmark schema's invariants (edge symmetric, fwd oriented) and keeps
// live CSR-backed handles serving current data.
func TestGraphApplyEdges(t *testing.T) {
	ctx := context.Background()
	g := NewGraph([][2]int64{{0, 1}, {1, 2}})
	p, err := g.Prepare(Triangles(), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := p.Count(ctx); err != nil || n != 0 {
		t.Fatalf("initial triangles = %d err = %v", n, err)
	}
	// Insert the closing edge reversed: orientation is normalized.
	if err := g.ApplyEdges([][2]int64{{2, 0}}, nil); err != nil {
		t.Fatal(err)
	}
	if n, err := p.Count(ctx); err != nil || n != 1 {
		t.Fatalf("after insert: triangles = %d err = %v, want 1", n, err)
	}
	// The symmetric relation holds both directions of each edge.
	sym, err := g.Store().ParseQuery("sym", "edge(a, b), edge(b, a)")
	if err != nil {
		t.Fatal(err)
	}
	if n, err := g.Store().Count(ctx, sym, Options{Workers: 1}); err != nil || n != 6 {
		t.Fatalf("symmetric pairs = %d err = %v, want 6", n, err)
	}
	if err := g.ApplyEdges(nil, [][2]int64{{0, 2}}); err != nil {
		t.Fatal(err)
	}
	if n, err := p.Count(ctx); err != nil || n != 0 {
		t.Fatalf("after remove: triangles = %d err = %v, want 0", n, err)
	}
	// The wrapped graph's accounting follows the writes: a fresh vertex
	// grows Nodes, the edge count tracks fwd, and SetSelectivity(1) samples
	// the new vertex (selectivity 1 selects every vertex).
	if err := g.ApplyEdges([][2]int64{{2, 9}}, nil); err != nil {
		t.Fatal(err)
	}
	if g.Nodes() != 10 {
		t.Errorf("Nodes() = %d after inserting vertex 9, want 10", g.Nodes())
	}
	if g.Edges() != 3 {
		t.Errorf("Edges() = %d, want 3", g.Edges())
	}
	g.SetSelectivity(1, 1)
	hit, err := g.Store().ParseQuery("hit", "v1(a), edge(a, b)")
	if err != nil {
		t.Fatal(err)
	}
	var sawNine bool
	if err := g.Store().Enumerate(ctx, hit, Options{Workers: 1}, func(tu []int64) bool {
		if tu[0] == 9 {
			sawNine = true
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !sawNine {
		t.Error("selectivity-1 sample misses the vertex added by ApplyEdges")
	}
	// An edge on both sides of one batch resolves as delete-after-insert
	// and never lands, so it must not inflate the vertex accounting.
	nodes, edges := g.Nodes(), g.Edges()
	if err := g.ApplyEdges([][2]int64{{0, 5000}}, [][2]int64{{0, 5000}}); err != nil {
		t.Fatal(err)
	}
	if g.Nodes() != nodes || g.Edges() != edges {
		t.Errorf("insert+remove same edge moved accounting: nodes %d->%d edges %d->%d",
			nodes, g.Nodes(), edges, g.Edges())
	}
	// Out-of-domain vertices fail with a typed error, not a storage panic.
	if err := g.ApplyEdges([][2]int64{{-1, 3}}, nil); !errors.Is(err, ErrValueOutOfRange) {
		t.Errorf("negative vertex: %v, want ErrValueOutOfRange", err)
	}
}

// TestCountViewApplyEdgesAccounting: the view's atomic write path keeps the
// wrapper accounting in sync, resolves an edge on both sides of one batch
// as delete-after-insert exactly like Graph.ApplyEdges, and rejects
// out-of-domain vertices with a typed error.
func TestCountViewApplyEdgesAccounting(t *testing.T) {
	ctx := context.Background()
	g := NewGraph([][2]int64{{0, 1}, {1, 2}})
	v, err := MaintainCount(ctx, g, Triangles())
	if err != nil {
		t.Fatal(err)
	}
	// Edge (0,7) is absent and appears on both sides: delete-after-insert —
	// it never lands, in the relation or the accounting.
	nodes, edges := g.Nodes(), g.Edges()
	if err := v.ApplyEdges(ctx, [][2]int64{{0, 7}}, [][2]int64{{0, 7}}); err != nil {
		t.Fatal(err)
	}
	if g.Nodes() != nodes || g.Edges() != edges {
		t.Errorf("both-sides batch moved accounting: nodes %d->%d edges %d->%d",
			nodes, g.Nodes(), edges, g.Edges())
	}
	// A present edge on both sides is deleted; a plain insert lands. The
	// accounting and the stored relation stay in lockstep throughout, and
	// the maintained count tracks the triangle being completed.
	if err := v.ApplyEdges(ctx, [][2]int64{{1, 2}, {0, 2}}, [][2]int64{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	fwd, err := g.DB().Relation("fwd")
	if err != nil {
		t.Fatal(err)
	}
	if g.Edges() != fwd.Len() {
		t.Errorf("Edges() = %d, fwd holds %d after mixed batch", g.Edges(), fwd.Len())
	}
	want, err := Count(ctx, g, Triangles(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v.Count() != want {
		t.Errorf("Count() = %d, recount says %d", v.Count(), want)
	}
	if err := v.ApplyEdges(ctx, [][2]int64{{2, -9}}, nil); !errors.Is(err, ErrValueOutOfRange) {
		t.Errorf("negative vertex through view: %v, want ErrValueOutOfRange", err)
	}
}

// TestGraphApplyEdgesConcurrent exercises the wrapper accounting under
// concurrent writers and readers (meaningful under -race), then checks the
// final accounting against the stored fwd relation.
func TestGraphApplyEdgesConcurrent(t *testing.T) {
	g := NewGraph([][2]int64{{0, 1}})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				base := int64(10 + w*100 + i)
				if err := g.ApplyEdges([][2]int64{{base, base + 1}}, nil); err != nil {
					t.Error(err)
					return
				}
				_ = g.Nodes()
				_ = g.Edges()
			}
		}(w)
	}
	wg.Wait()
	fwd, err := g.DB().Relation("fwd")
	if err != nil {
		t.Fatal(err)
	}
	if g.Edges() != fwd.Len() {
		t.Errorf("Edges() = %d, fwd holds %d", g.Edges(), fwd.Len())
	}
}

// TestRowsCancellation: cancelling the context mid-stream truncates Rows,
// surfaces context.Canceled through RowsErr, and stops Enumerate.
func TestRowsCancellation(t *testing.T) {
	g := GenerateGraph(BarabasiAlbert, 2000, 8000, 8)
	p, err := g.Prepare(Triangles(), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	total, err := p.Count(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if total < 100 {
		t.Fatalf("graph too sparse for a cancellation test: %d triangles", total)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var rows int64
	var sawErr error
	for row, err := range p.RowsErr(ctx) {
		if err != nil {
			sawErr = err
			break
		}
		_ = row
		rows++
		if rows == 1 {
			cancel()
		}
	}
	if !errors.Is(sawErr, context.Canceled) {
		t.Errorf("RowsErr after cancel: err = %v, want context.Canceled", sawErr)
	}
	if rows == 0 || rows >= total {
		t.Errorf("consumed %d of %d rows; expected a truncated stream", rows, total)
	}

	// Rows (the error-discarding variant) just ends early; the context
	// reports why.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	rows = 0
	for range p.Rows(ctx2) {
		rows++
		if rows == 1 {
			cancel2()
		}
	}
	if rows >= total {
		t.Errorf("Rows consumed %d of %d rows after cancel", rows, total)
	}
	if ctx2.Err() == nil {
		t.Error("context should report cancellation")
	}
}

// TestEnumerateCancellation: a context cancelled mid-run stops Enumerate with
// the context error.
func TestEnumerateCancellation(t *testing.T) {
	g := GenerateGraph(BarabasiAlbert, 2000, 8000, 8)
	p, err := g.Prepare(Triangles(), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var n int64
	err = p.Enumerate(ctx, func([]int64) bool {
		n++
		if n == 1 {
			cancel()
		}
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Enumerate after cancel: err = %v (saw %d rows), want context.Canceled", err, n)
	}
}

// TestStoreDirectedLabeled: the motivating schema the benchmark Graph cannot
// express — a directed, edge-labeled graph as one relation per label.
func TestStoreDirectedLabeled(t *testing.T) {
	ctx := context.Background()
	s := NewStore()
	for _, rel := range []string{"follows", "likes"} {
		if err := s.DefineRelation(rel, 2); err != nil {
			t.Fatal(err)
		}
	}
	// follows is directed: 0→1→2→0 is a cycle, plus 2→3.
	if err := s.Load("follows", [][]int64{{0, 1}, {1, 2}, {2, 0}, {2, 3}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Load("likes", [][]int64{{2, 0}, {3, 1}}); err != nil {
		t.Fatal(err)
	}
	// Directed 2-paths closed by a like back to the start.
	q, err := s.ParseQuery("closed", "follows(a,b), follows(b,c), likes(c,a)")
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.Count(ctx, q, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// a=0,b=1,c=2 closed by likes(2,0); a=1,b=2,c=3 closed by likes(3,1).
	if n != 2 {
		t.Errorf("closed follows-likes patterns = %d, want 2", n)
	}
	// Directed triangles need all three arcs; reversing one must not count.
	tri, err := s.ParseQuery("tri", "follows(a,b), follows(b,c), follows(c,a)")
	if err != nil {
		t.Fatal(err)
	}
	if n, err = s.Count(ctx, tri, Options{Workers: 1}); err != nil || n != 3 {
		t.Errorf("directed triangle bindings = %d err = %v, want 3 (one cycle, three rotations)", n, err)
	}
	// Ternary relation: labeled arcs in one relation, label as a column.
	if err := s.DefineRelation("arc", 3); err != nil {
		t.Fatal(err)
	}
	if err := s.Load("arc", [][]int64{{0, 7, 1}, {1, 7, 2}, {0, 8, 2}}); err != nil {
		t.Fatal(err)
	}
	same, err := s.ParseQuery("same", "arc(a, l, b), arc(b, l, c)")
	if err != nil {
		t.Fatal(err)
	}
	if n, err = s.Count(ctx, same, Options{Workers: 1}); err != nil || n != 1 {
		t.Errorf("same-label 2-paths = %d err = %v, want 1", n, err)
	}
}

// TestStoreRelationsListing: Relations/Arity reflect definitions.
func TestStoreRelationsListing(t *testing.T) {
	s := NewStore()
	if err := s.DefineRelation("b", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.DefineRelation("a", 3); err != nil {
		t.Fatal(err)
	}
	rels := s.Relations()
	if len(rels) != 2 || rels[0] != "a" || rels[1] != "b" {
		t.Errorf("Relations() = %v, want [a b]", rels)
	}
	if arity, err := s.Arity("a"); err != nil || arity != 3 {
		t.Errorf("Arity(a) = %d, %v", arity, err)
	}
	if _, err := s.Arity("zzz"); !errors.Is(err, ErrUnknownRelation) {
		t.Errorf("Arity(zzz): %v, want ErrUnknownRelation", err)
	}
}

// TestStoreEnumerateMatchesRows sanity-checks the one-shot store Enumerate
// against collected Rows on an explicit schema.
func TestStoreEnumerateMatchesRows(t *testing.T) {
	ctx := context.Background()
	s := pathStore(t)
	q, err := s.ParseQuery("p2", "e(a,b), e(b,c)")
	if err != nil {
		t.Fatal(err)
	}
	var enumerated [][]int64
	if err := s.Enumerate(ctx, q, Options{Workers: 1}, func(tu []int64) bool {
		enumerated = append(enumerated, append([]int64(nil), tu...))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	p, err := s.Prepare(q, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]int64
	for row := range p.Rows(ctx) {
		rows = append(rows, row)
	}
	if len(rows) != len(enumerated) {
		t.Fatalf("Rows = %d tuples, Enumerate = %d", len(rows), len(enumerated))
	}
	sortedRows(rows)
	sortedRows(enumerated)
	for i := range rows {
		if relation.CompareTuples(rows[i], enumerated[i]) != 0 {
			t.Fatalf("row %d: %v vs %v", i, rows[i], enumerated[i])
		}
	}
}
