package minesweeper

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestPointListInsertAndNext(t *testing.T) {
	nd := newNode(0, nil, 0, false)
	nd.insertInterval(5, 7)
	if got := nd.intervals(); !reflect.DeepEqual(got, [][2]int64{{5, 7}}) {
		t.Fatalf("intervals = %v", got)
	}
	if nd.next(6) != 7 {
		t.Errorf("next(6) = %d, want 7", nd.next(6))
	}
	if nd.next(5) != 5 || nd.next(7) != 7 {
		t.Error("open endpoints must stay free")
	}
	if nd.covered(6) != true || nd.covered(5) != false {
		t.Error("covered wrong on endpoints/interior")
	}
}

// TestPointListPaperExample replays the Figure 2 bottom node v with
// intervals (1,3),(3,9),(10,14): pointList 1(L),3(L&R),9(R),10(L),14(R).
func TestPointListPaperExample(t *testing.T) {
	nd := newNode(0, nil, 0, false)
	nd.insertInterval(3, 9)
	nd.insertInterval(1, 3)
	nd.insertInterval(10, 14)
	want := [][2]int64{{1, 3}, {3, 9}, {10, 14}}
	if got := nd.intervals(); !reflect.DeepEqual(got, want) {
		t.Fatalf("intervals = %v, want %v", got, want)
	}
	p := nd.points
	if len(p) != 5 {
		t.Fatalf("pointList has %d entries, want 5", len(p))
	}
	// 3 is both a left and a right endpoint, like the paper's example.
	if !p[1].isL || !p[1].isR || p[1].v != 3 {
		t.Errorf("point 3 = %+v, want L&R", p[1])
	}
	if nd.next(2) != 3 || nd.next(4) != 9 || nd.next(11) != 14 || nd.next(9) != 9 {
		t.Error("next over the paper example is wrong")
	}
	// Inserting (2,4) bridges the touching intervals into (1,9).
	nd.insertInterval(2, 4)
	want = [][2]int64{{1, 9}, {10, 14}}
	if got := nd.intervals(); !reflect.DeepEqual(got, want) {
		t.Fatalf("after merge: intervals = %v, want %v", got, want)
	}
}

func TestInsertIntervalMergesOverlaps(t *testing.T) {
	nd := newNode(0, nil, 0, false)
	nd.insertInterval(1, 5)
	nd.insertInterval(3, 9)
	if got := nd.intervals(); !reflect.DeepEqual(got, [][2]int64{{1, 9}}) {
		t.Fatalf("intervals = %v, want [(1,9)]", got)
	}
	nd.insertInterval(0, 20)
	if got := nd.intervals(); !reflect.DeepEqual(got, [][2]int64{{0, 20}}) {
		t.Fatalf("intervals = %v, want [(0,20)]", got)
	}
}

func TestInsertIntervalEmpty(t *testing.T) {
	nd := newNode(0, nil, 0, false)
	nd.insertInterval(5, 6) // open (5,6) covers no integer
	nd.insertInterval(5, 5)
	if len(nd.points) != 0 {
		t.Errorf("empty intervals must not be stored: %v", nd.points)
	}
}

func TestInsertIntervalRemovesChildren(t *testing.T) {
	nd := newNode(0, nil, 0, false)
	nd.ensureChild(5)
	nd.ensureChild(8)
	nd.insertInterval(4, 7) // kills child 5, keeps child 8
	if nd.childAt(5) != nil {
		t.Error("child 5 should be eliminated by the covering interval")
	}
	if nd.childAt(8) == nil {
		t.Error("child 8 should survive")
	}
}

func TestChildOnEndpointSurvives(t *testing.T) {
	nd := newNode(0, nil, 0, false)
	nd.ensureChild(5)
	nd.insertInterval(5, 9) // 5 is an open endpoint: not covered
	if nd.childAt(5) == nil {
		t.Error("child at the open endpoint must survive")
	}
	if !nd.points[nd.find(5)].isL {
		t.Error("endpoint flag missing on the child point")
	}
}

func TestHasNoFreeValue(t *testing.T) {
	nd := newNode(0, nil, 0, false)
	if nd.hasNoFreeValue() {
		t.Error("fresh node should have free values")
	}
	nd.insertInterval(negInf, 5)
	nd.insertInterval(4, posInf)
	if !nd.hasNoFreeValue() {
		t.Errorf("(-inf,5)+(4,+inf) should cover everything: %v", nd.intervals())
	}
}

// Property: a node's interval set behaves like a reference set of covered
// integers under random inserts.
func TestIntervalSetProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nd := newNode(0, nil, 0, false)
		covered := make(map[int64]bool)
		const domain = 40
		for op := 0; op < 30; op++ {
			l := int64(rng.Intn(domain) - 2)
			r := l + int64(rng.Intn(10))
			nd.insertInterval(l, r)
			for v := l + 1; v < r; v++ {
				covered[v] = true
			}
			// Validate pointList invariants: sorted, L followed by R.
			for i := 1; i < len(nd.points); i++ {
				if nd.points[i-1].v >= nd.points[i].v {
					return false
				}
				if nd.points[i-1].isL && !nd.points[i].isR {
					return false
				}
			}
			if len(nd.points) > 0 && nd.points[len(nd.points)-1].isL {
				return false
			}
		}
		for v := int64(-3); v < domain+10; v++ {
			if nd.covered(v) != covered[v] {
				return false
			}
			// next returns the least free value >= v.
			want := v
			for covered[want] {
				want++
			}
			if nd.next(v) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestCDSFigure2 replays the paper's Figure 2 construction and checks the
// tree shape.
func TestCDSFigure2(t *testing.T) {
	c := NewCDS(5, false)
	// <*,*,(5,7),*,*>
	c.InsConstraint(Constraint{Col: 2, Lo: 5, Hi: 7})
	// <*,*,7,*,(4,9)>
	c.InsConstraint(Constraint{EqPos: []int{2}, EqVal: []int64{7}, Col: 4, Lo: 4, Hi: 9})
	// star-star path to depth 2 holds (5,7).
	n2 := c.root.star.star
	if got := n2.intervals(); !reflect.DeepEqual(got, [][2]int64{{5, 7}}) {
		t.Fatalf("depth-2 node intervals = %v", got)
	}
	// the 7-child path holds (4,9) at depth 4.
	n4 := n2.childAt(7).star
	if n4 == nil {
		t.Fatal("missing <*,*,7,*> node")
	}
	if got := n4.intervals(); !reflect.DeepEqual(got, [][2]int64{{4, 9}}) {
		t.Fatalf("depth-4 node intervals = %v", got)
	}
	// Further constraints from the figure.
	c.InsConstraint(Constraint{EqPos: []int{1}, EqVal: []int64{1}, Col: 2, Lo: 1, Hi: 3})
	c.InsConstraint(Constraint{EqPos: []int{1}, EqVal: []int64{1}, Col: 2, Lo: 9, Hi: 10})
	c.InsConstraint(Constraint{EqPos: []int{1, 2}, EqVal: []int64{1, 2}, Col: 3, Lo: 10, Hi: 19})
	c.InsConstraint(Constraint{EqPos: []int{1, 2, 3}, EqVal: []int64{1, 3, 5}, Col: 4, Lo: 3, Hi: 9})
	c.InsConstraint(Constraint{EqPos: []int{1, 2, 3}, EqVal: []int64{1, 3, 5}, Col: 4, Lo: 1, Hi: 3})
	c.InsConstraint(Constraint{EqPos: []int{1, 2, 3}, EqVal: []int64{1, 3, 5}, Col: 4, Lo: 10, Hi: 14})
	c.InsConstraint(Constraint{EqPos: []int{1, 2}, EqVal: []int64{1, 3}, Col: 4, Lo: 5, Hi: 10})
	v := c.root.star.childAt(1).childAt(3).childAt(5)
	if v == nil {
		t.Fatal("missing <*,1,3,5> node")
	}
	want := [][2]int64{{1, 3}, {3, 9}, {10, 14}}
	if got := v.intervals(); !reflect.DeepEqual(got, want) {
		t.Fatalf("<*,1,3,5> intervals = %v, want %v", got, want)
	}
	w := c.root.star.childAt(1).childAt(3).star
	if w == nil || !reflect.DeepEqual(w.intervals(), [][2]int64{{5, 10}}) {
		t.Fatalf("<*,1,3,*> node wrong: %+v", w)
	}
}

func TestConstraintSubsumption(t *testing.T) {
	c := NewCDS(3, false)
	c.InsConstraint(Constraint{Col: 0, Lo: 2, Hi: 9})
	// A constraint whose pattern value 5 is covered at the root is subsumed.
	c.InsConstraint(Constraint{EqPos: []int{0}, EqVal: []int64{5}, Col: 1, Lo: 0, Hi: 100})
	if c.root.childAt(5) != nil {
		t.Error("subsumed constraint should not create a branch")
	}
}

// TestComputeFreeTupleSimple: one attribute, gaps carve the domain.
func TestComputeFreeTupleSimple(t *testing.T) {
	c := NewCDS(1, false)
	c.InsConstraint(Constraint{Col: 0, Lo: negInf, Hi: 3})
	if !c.ComputeFreeTuple() {
		t.Fatal("expected a free tuple")
	}
	if c.Frontier()[0] != 3 {
		t.Fatalf("free tuple = %v, want [3]", c.Frontier())
	}
	c.AdvanceOutput()
	c.InsConstraint(Constraint{Col: 0, Lo: 3, Hi: posInf})
	if c.ComputeFreeTuple() {
		t.Fatalf("space should be exhausted, got %v", c.Frontier())
	}
	if c.ComputeFreeTuple() {
		t.Fatal("done flag should persist")
	}
}

// TestComputeFreeTupleDescends: two attributes with a branch-specific gap.
func TestComputeFreeTupleDescends(t *testing.T) {
	c := NewCDS(2, false)
	// Attribute 0: everything outside {2} is a gap.
	c.InsConstraint(Constraint{Col: 0, Lo: negInf, Hi: 2})
	c.InsConstraint(Constraint{Col: 0, Lo: 2, Hi: posInf})
	// Under 2, attribute 1 has gaps below 7 and above 7.
	c.InsConstraint(Constraint{EqPos: []int{0}, EqVal: []int64{2}, Col: 1, Lo: negInf, Hi: 7})
	if !c.ComputeFreeTuple() {
		t.Fatal("expected a free tuple")
	}
	if !reflect.DeepEqual(c.Frontier(), []int64{2, 7}) {
		t.Fatalf("free tuple = %v, want [2 7]", c.Frontier())
	}
	// Report the output and move past it (Idea 2: no unit gap box needed).
	c.AdvanceOutput()
	c.InsConstraint(Constraint{EqPos: []int{0}, EqVal: []int64{2}, Col: 1, Lo: 7, Hi: posInf})
	if c.ComputeFreeTuple() {
		t.Fatalf("space should be exhausted, got %v", c.Frontier())
	}
}

// TestTruncation: when a branch's subspace is fully covered, the branch
// value itself must be ruled out at the parent (Algorithm 6).
func TestTruncation(t *testing.T) {
	c := NewCDS(2, false)
	// Kill all of attribute 1 under value 4 of attribute 0.
	c.InsConstraint(Constraint{EqPos: []int{0}, EqVal: []int64{4}, Col: 1, Lo: negInf, Hi: posInf})
	// Attribute 0 must skip 4: gaps force candidates {4,9}.
	c.InsConstraint(Constraint{Col: 0, Lo: negInf, Hi: 4})
	c.InsConstraint(Constraint{Col: 0, Lo: 4, Hi: 9})
	c.InsConstraint(Constraint{Col: 0, Lo: 9, Hi: posInf})
	if !c.ComputeFreeTuple() {
		t.Fatal("expected a free tuple")
	}
	if c.Frontier()[0] != 9 {
		t.Fatalf("free tuple = %v, want first coordinate 9 (4 truncated)", c.Frontier())
	}
	// The truncation must have inserted (3,5) at the root.
	if !c.root.covered(4) {
		t.Error("value 4 should be covered at the root after truncation")
	}
}

func TestFrontierMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := NewCDS(3, false)
	prev := []int64{negInf, negInf, negInf}
	for i := 0; i < 200 && c.ComputeFreeTuple(); i++ {
		cur := append([]int64(nil), c.Frontier()...)
		if cmp := compare3(prev, cur); cmp > 0 {
			t.Fatalf("frontier went backwards: %v after %v", cur, prev)
		}
		prev = cur
		// Rule the current tuple out with a random-width gap on a random
		// suffix position.
		p := rng.Intn(3)
		c.InsConstraint(Constraint{
			EqPos: []int{0, 1}[:p],
			EqVal: cur[:p],
			Col:   p,
			Lo:    cur[p] - 1,
			Hi:    cur[p] + 1 + int64(rng.Intn(3)),
		})
	}
}

func compare3(a, b []int64) int {
	for i := range a {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}
