// Package minesweeper implements the Minesweeper join algorithm (paper §2.3
// and §4): the engine repeatedly asks the constraint data structure (CDS)
// for a "free tuple" not ruled out by any known gap, probes the input
// indexes around it, and either reports an output or learns new gap boxes.
// All of the paper's implementation ideas are present and individually
// toggleable: the pointList encoding (Idea 1), the moving frontier (Idea 2),
// geometric gap certificates (Idea 3), probe memoization (Idea 4),
// backtracking with interval caching and truncation (Idea 5), complete
// nodes (Idea 6), β-acyclic skeletons for cyclic queries (Idea 7), and
// count-mode subtree reuse in the spirit of #Minesweeper (Idea 8).
package minesweeper

import (
	"math/bits"
	"sort"

	"repro/internal/relation"
)

const (
	negInf = relation.NegInf
	posInf = relation.PosInf
)

// debugTrace, when non-nil, observes every ComputeFreeTuple iteration
// (tests only).
var debugTrace func(d int, x, y int64, killDepth int, dead bool, t []int64)

// Constraint is one gap box (paper Def 4.1): equalities at ascending GAO
// positions EqPos (values EqVal), one open interval (Lo, Hi) at position
// Col, wildcards elsewhere and everywhere after Col.
type Constraint struct {
	EqPos []int
	EqVal []int64
	Col   int
	Lo    int64
	Hi    int64
}

// point is one entry of a node's pointList (Idea 1): a domain value that is
// an interval endpoint (isL opens an interval ending at the next point with
// isR) and/or carries a child edge of the CDS tree.
type point struct {
	v     int64
	isL   bool
	isR   bool
	child *node
}

// node is a CDS tree node at depth d: its pattern is the label sequence of
// the root path (values at equality edges, * at star edges), its intervals
// constrain GAO attribute d. The pointList invariants are:
//
//   - points are sorted by strictly increasing value;
//   - an isL point's interval ends exactly at the next point, which has isR
//     (intervals are disjoint, open, and have no interior points);
//   - child edges exist only at points (values not interior to an interval).
type node struct {
	depth     int
	eqMask    uint64 // bit p set iff pattern has an equality at position p
	parent    *node
	edgeVal   int64 // label of the edge from parent (if edgeIsVal)
	edgeIsVal bool
	points    []point
	star      *node
	// hasIntervals records whether any interval was ever inserted; only
	// interval-bearing nodes belong to the principal filter G_i (§4.7:
	// "u.intervals ≠ ∅"), which keeps the chains properly nested.
	hasIntervals bool
	// Idea 6 bookkeeping: number of full sweeps to +inf with this node as
	// chain bottom; complete after the second (see DESIGN.md §3).
	exhausted int
	complete  bool
	// Counting hook (#Minesweeper): invalidated cached sums would go here;
	// the engine's count memo supersedes per-node sums (DESIGN.md §4).
}

func newNode(depth int, parent *node, edgeVal int64, edgeIsVal bool) *node {
	nd := &node{depth: depth, parent: parent, edgeVal: edgeVal, edgeIsVal: edgeIsVal}
	if parent != nil {
		nd.eqMask = parent.eqMask
		if edgeIsVal {
			nd.eqMask |= 1 << uint(depth-1)
		}
	}
	return nd
}

// find returns the index of the first point with value >= v.
func (nd *node) find(v int64) int {
	return sort.Search(len(nd.points), func(i int) bool { return nd.points[i].v >= v })
}

// next returns the least value y >= x not covered by nd's intervals
// (v.Next from §4.3). Interval endpoints themselves are not covered (open
// intervals).
func (nd *node) next(x int64) int64 {
	i := nd.find(x)
	if i < len(nd.points) && nd.points[i].v == x {
		return x
	}
	if i > 0 && nd.points[i-1].isL {
		// x lies strictly inside the interval opened at points[i-1], which
		// by the invariant closes at points[i].
		return nd.points[i].v
	}
	return x
}

// covered reports whether x lies strictly inside one of nd's intervals.
func (nd *node) covered(x int64) bool { return nd.next(x) != x }

// hasNoFreeValue reports whether nd's intervals cover the entire value
// domain (§4.3: "v.Next(−1) = +∞, i.e. all values in N are covered").
// Attribute values are natural numbers (relation.Builder enforces >= 0), so
// covering everything from -1 upward rules the whole axis out.
func (nd *node) hasNoFreeValue() bool {
	return nd.next(-1) >= posInf
}

// childAt returns the child along the value edge labeled v, or nil.
func (nd *node) childAt(v int64) *node {
	i := nd.find(v)
	if i < len(nd.points) && nd.points[i].v == v {
		return nd.points[i].child
	}
	return nil
}

// ensureChild returns the child along the value edge labeled v, creating the
// point and node as needed. The caller must ensure v is not covered.
func (nd *node) ensureChild(v int64) *node {
	i := nd.find(v)
	if i < len(nd.points) && nd.points[i].v == v {
		if nd.points[i].child == nil {
			nd.points[i].child = newNode(nd.depth+1, nd, v, true)
		}
		return nd.points[i].child
	}
	nd.points = append(nd.points, point{})
	copy(nd.points[i+1:], nd.points[i:])
	nd.points[i] = point{v: v, child: newNode(nd.depth+1, nd, v, true)}
	return nd.points[i].child
}

// ensureStar returns the star child, creating it as needed.
func (nd *node) ensureStar() *node {
	if nd.star == nil {
		nd.star = newNode(nd.depth+1, nd, 0, false)
	}
	return nd.star
}

// insertInterval inserts the open interval (l, r), merging with overlapping
// intervals and deleting interior points (whose child subtrees die with
// them). Intervals covering no integer are ignored.
func (nd *node) insertInterval(l, r int64) {
	if r <= l+1 {
		return
	}
	nd.hasIntervals = true
	// Extend endpoints over intervals that strictly cover them: if l (resp.
	// r) lies inside an existing interval, widen to that interval's left
	// (resp. right) endpoint; by the invariant the interval opened at
	// points[i-1] closes exactly at points[i].
	if i := nd.find(l); i > 0 && (i >= len(nd.points) || nd.points[i].v != l) && nd.points[i-1].isL {
		l = nd.points[i-1].v
	}
	if i := nd.find(r); i > 0 && (i >= len(nd.points) || nd.points[i].v != r) && nd.points[i-1].isL {
		r = nd.points[i].v
	}
	// Delete points strictly inside (l, r).
	lo := nd.find(l + 1)
	hi := nd.find(r)
	if lo < hi {
		nd.points = append(nd.points[:lo], nd.points[hi:]...)
	}
	// Materialize the endpoints with their flags.
	nd.setEndpoint(l, true)
	nd.setEndpoint(r, false)
}

// setEndpoint ensures a point at v flagged as a left (isL) or right (isR)
// interval endpoint.
func (nd *node) setEndpoint(v int64, left bool) {
	i := nd.find(v)
	if i < len(nd.points) && nd.points[i].v == v {
		if left {
			nd.points[i].isL = true
		} else {
			nd.points[i].isR = true
		}
		return
	}
	nd.points = append(nd.points, point{})
	copy(nd.points[i+1:], nd.points[i:])
	nd.points[i] = point{v: v, isL: left, isR: !left}
}

// intervals returns the interval list for tests and debugging.
func (nd *node) intervals() [][2]int64 {
	var out [][2]int64
	for i := 0; i < len(nd.points); i++ {
		if nd.points[i].isL {
			out = append(out, [2]int64{nd.points[i].v, nd.points[i+1].v})
		}
	}
	return out
}

// CDS is the constraint data structure (§4.3): a tree of constraint nodes,
// the moving frontier (Idea 2), and the per-depth chains of active nodes.
type CDS struct {
	n    int
	root *node
	// t is the frontier curFrontier (Idea 2); ComputeFreeTuple advances it
	// in place to the next free tuple.
	t []int64
	// actives[d] holds every node at depth d whose pattern generalizes the
	// current prefix (t[0..d-1]), sorted most-specialized first; the subset
	// with constraints is the principal filter G_d of §4.7.
	actives [][]*node
	// chain is freeValue's scratch for the current principal filter.
	chain []*node
	// disableComplete turns Idea 6 off for the ablation benchmarks.
	disableComplete bool
	// Done is set when truncation proves the whole space is covered.
	done bool
	// steps counts free-value iterations, surfaced so the engine can poll
	// its context regularly.
	steps int
	// Tick, when set, is polled once per free-value iteration; a non-nil
	// error aborts ComputeFreeTuple (context cancellation).
	Tick func() error
	// Err holds the abort error after ComputeFreeTuple returns false.
	Err error
}

// NewCDS returns an empty CDS for n attributes with frontier (-1, ..., -1).
func NewCDS(n int, disableComplete bool) *CDS {
	c := &CDS{
		n:               n,
		root:            newNode(0, nil, 0, false),
		t:               make([]int64, n),
		actives:         make([][]*node, n),
		disableComplete: disableComplete,
	}
	for i := range c.t {
		c.t[i] = -1
	}
	return c
}

// Frontier exposes the current frontier; ComputeFreeTuple leaves the free
// tuple here. The slice must not be modified except through SetFrontier.
func (c *CDS) Frontier() []int64 { return c.t }

// SetFrontier replaces the frontier (used after outputs and for Idea 7
// frontier advances). Values below the new frontier are the caller's
// assertion that no unreported output remains there.
func (c *CDS) SetFrontier(t []int64) {
	copy(c.t, t)
}

// AdvanceOutput moves the frontier just past the reported output tuple
// (Idea 2: no unit gap box is inserted).
func (c *CDS) AdvanceOutput() {
	c.t[c.n-1]++
}

// Steps returns the number of free-value iterations so far.
func (c *CDS) Steps() int { return c.steps }

// InsConstraint inserts a gap-box constraint (§4.3). Constraints subsumed by
// existing coverage along their pattern path are dropped.
func (c *CDS) InsConstraint(con Constraint) {
	nd := c.root
	ei := 0
	for d := 0; d < con.Col; d++ {
		if ei < len(con.EqPos) && con.EqPos[ei] == d {
			v := con.EqVal[ei]
			ei++
			if nd.covered(v) {
				return // subsumed: the whole branch is already ruled out
			}
			nd = nd.ensureChild(v)
		} else {
			nd = nd.ensureStar()
		}
	}
	nd.insertInterval(con.Lo, con.Hi)
}

// ComputeFreeTuple advances the frontier to the next tuple >= the current
// frontier (lexicographically) that is not covered by any stored constraint
// (Algorithm 4, restructured per DESIGN.md §3: this routine owns all depth
// and frontier mutations). It returns false when the space is exhausted.
func (c *CDS) ComputeFreeTuple() bool {
	if c.done {
		return false
	}
	d := 0
	c.actives[0] = append(c.actives[0][:0], c.root)
	for {
		c.steps++
		if c.Tick != nil {
			if err := c.Tick(); err != nil {
				c.Err = err
				return false
			}
		}
		x := c.t[d]
		y, killDepth, dead := c.freeValue(d, x)
		if debugTrace != nil {
			debugTrace(d, x, y, killDepth, dead, c.t)
		}
		if dead {
			// truncate already inserted the kill interval (Algorithm 6).
			if killDepth < 0 {
				c.done = true
				return false
			}
			d = killDepth
			continue
		}
		if y >= posInf {
			// This depth is exhausted for the current prefix: backtrack.
			if len(c.chain) > 0 {
				c.noteExhaust(c.chain[0])
			}
			d--
			if d < 0 {
				c.done = true
				return false
			}
			c.t[d]++
			c.resetBelow(d)
			continue
		}
		if y != x {
			c.t[d] = y
			c.resetBelow(d)
		}
		if d == c.n-1 {
			return true
		}
		c.computeActives(d + 1)
		d++
	}
}

func (c *CDS) resetBelow(d int) {
	for i := d + 1; i < c.n; i++ {
		c.t[i] = -1
	}
}

// noteExhaust records a full sweep of a chain bottom (Idea 6): the second
// sweep is guaranteed to have covered -1..+inf contiguously, after which the
// pointList contains every free value.
func (c *CDS) noteExhaust(u *node) {
	if u.complete {
		return
	}
	u.exhausted++
	if u.exhausted >= 2 {
		u.complete = true
	}
}

// computeActives fills actives[d] with the children of actives[d-1] along
// the t[d-1] value edge and the star edge, most-specialized first.
func (c *CDS) computeActives(d int) {
	next := c.actives[d][:0]
	v := c.t[d-1]
	for _, nd := range c.actives[d-1] {
		if ch := nd.childAt(v); ch != nil {
			next = append(next, ch)
		}
		if nd.star != nil {
			next = append(next, nd.star)
		}
	}
	sort.SliceStable(next, func(i, j int) bool {
		return bits.OnesCount64(next[i].eqMask) > bits.OnesCount64(next[j].eqMask)
	})
	c.actives[d] = next
}

// freeValue returns the least value y >= x at depth d consistent with every
// active node (Algorithm 5). When the chain bottom's intervals cover the
// whole domain it truncates (Algorithm 6) and returns dead == true with the
// depth to resume at (-1 when the whole space is dead).
func (c *CDS) freeValue(d int, x int64) (y int64, killDepth int, dead bool) {
	// The principal filter G_d: interval-bearing active nodes only (§4.7).
	// Interval-less path nodes (created on the way to deeper constraints)
	// contribute nothing to Next and would break the chain's nestedness.
	g := c.chain[:0]
	for _, nd := range c.actives[d] {
		if nd.hasIntervals {
			g = append(g, nd)
		}
	}
	c.chain = g
	if len(g) == 0 {
		return x, 0, false
	}
	if nested(g) {
		u := g[0]
		if u.complete && !c.disableComplete {
			// Idea 6 fast path: iterate without caching new intervals; the
			// other chain nodes are consulted (cheaply) rather than trusted
			// to have been merged, see DESIGN.md §3.
			y = c.fixpoint(g, x)
		} else {
			y = c.freeVal(g, x)
		}
		if u.hasNoFreeValue() {
			killDepth, dead = c.truncate(u)
			return y, killDepth, dead
		}
		return y, 0, false
	}
	// Non-chain filter (β-cyclic query without the Idea 7 skeleton, §4.8):
	// compute the merged free value without per-level caching and cache the
	// union coverage into a specialization branch — a node whose pattern
	// combines every chain node's equalities under the current prefix. This
	// is the paper's "specialization branches have to be inserted into the
	// CDS to cache the computation", and its cost is exactly why Idea 7
	// exists.
	y = c.fixpoint(g, x)
	var mask uint64
	for _, w := range g {
		mask |= w.eqMask
	}
	if spec := c.ensureSpec(d, mask); spec != nil {
		if y > x {
			spec.insertInterval(x-1, y)
		}
		if spec.hasNoFreeValue() {
			killDepth, dead = c.truncate(spec)
			return y, killDepth, dead
		}
	}
	return y, 0, false
}

// nested reports whether the popcount-sorted filter forms a specialization
// chain (each node's equalities contain the next node's).
func nested(g []*node) bool {
	for i := 0; i+1 < len(g); i++ {
		if g[i+1].eqMask&^g[i].eqMask != 0 {
			return false
		}
	}
	return true
}

// ensureSpec finds or creates the depth-d specialization node whose pattern
// has the current frontier's values at the positions in mask and stars
// elsewhere. It returns nil when the branch is already ruled out.
func (c *CDS) ensureSpec(d int, mask uint64) *node {
	nd := c.root
	for p := 0; p < d; p++ {
		if mask&(1<<uint(p)) != 0 {
			v := c.t[p]
			if nd.covered(v) {
				return nil
			}
			nd = nd.ensureChild(v)
		} else {
			nd = nd.ensureStar()
		}
	}
	return nd
}

// freeVal is the ping-pong of Algorithm 5 on the chain suffix g, caching the
// discovered coverage into the chain bottom (Idea 5) when every other node
// generalizes it (always true under the chain condition; the guard keeps
// non-chain fallbacks sound).
func (c *CDS) freeVal(g []*node, x int64) int64 {
	if len(g) == 0 {
		return x
	}
	u := g[0]
	cacheOK := true
	for _, w := range g[1:] {
		if w.eqMask&^u.eqMask != 0 {
			cacheOK = false
			break
		}
	}
	y := x
	for {
		y = u.next(y)
		z := c.freeVal(g[1:], y)
		if z == y {
			break
		}
		y = z
	}
	if cacheOK && y > x {
		u.insertInterval(x-1, y)
	}
	return y
}

// fixpoint computes the chain-consistent free value without mutating any
// node (used for complete bottoms and as a generic fallback).
func (c *CDS) fixpoint(g []*node, x int64) int64 {
	y := x
	for {
		z := y
		for _, w := range g {
			z = w.next(z)
		}
		if z == y {
			return y
		}
		y = z
	}
}

// truncate implements Algorithm 6: walk up from the dead node to the first
// value-labeled edge and rule that branch out; star edges propagate the
// deadness upward. Returns the depth whose value was killed, or -1 with
// dead == true... (dead is always true; killDepth == -1 means the whole
// space is covered).
func (c *CDS) truncate(u *node) (killDepth int, dead bool) {
	for u.parent != nil {
		p := u.parent
		if u.edgeIsVal {
			p.insertInterval(u.edgeVal-1, u.edgeVal+1)
			return p.depth, true
		}
		u = p
	}
	return -1, true
}
