package server

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/relation"
	"repro/internal/wire"
)

// Limits caps one store's concurrent work (per-tenant admission control, on
// top of the per-stream credit scheme). The zero value imposes no limits.
type Limits struct {
	// MaxInflight is the number of requests the store runs concurrently;
	// 0 or negative means unlimited.
	MaxInflight int
	// MaxQueued is how many admitted-but-waiting requests may queue for an
	// in-flight slot before new arrivals are rejected with ErrOverloaded.
	// Only meaningful with MaxInflight > 0; 0 rejects as soon as the
	// in-flight budget is exhausted.
	MaxQueued int
}

// requestTypes maps every request frame type to its metrics label.
var requestTypes = map[byte]string{
	wire.TDefine:        "define",
	wire.TLoad:          "load",
	wire.TApply:         "apply",
	wire.TApplyAll:      "apply_all",
	wire.TParse:         "parse",
	wire.TPrepare:       "prepare",
	wire.TClosePrepared: "close_prepared",
	wire.TCount:         "count",
	wire.TRows:          "rows",
	wire.TBegin:         "begin",
	wire.TEnd:           "end",
	wire.TBatch:         "batch",
	wire.TStats:         "stats",
	wire.TExplain:       "explain",
	wire.TRelations:     "relations",
	wire.TMetrics:       "metrics",
	wire.TTrace:         "trace",
}

// requestName labels a frame type for spans and the slow-query log.
func requestName(typ byte) string {
	if name, ok := requestTypes[typ]; ok {
		return name
	}
	return fmt.Sprintf("0x%02x", typ)
}

// storeMetrics is one store's serving instrumentation, pre-registered per
// request type so the hot path is two atomic ops and a histogram observe.
type storeMetrics struct {
	requests    map[byte]*metrics.Counter   // admitted requests, by type
	latency     map[byte]*metrics.Histogram // request duration, by type
	errors      map[byte]*metrics.Counter   // failed requests, by type
	unknown     *metrics.Counter            // admitted requests of unknown type
	rejected    *metrics.Counter            // admission-control rejections
	connections *metrics.Gauge              // bound connections
	creditStall *metrics.Counter            // Rows producer seconds blocked on credit
}

func newStoreMetrics(store string) *storeMetrics {
	reg := metrics.Default()
	sm := &storeMetrics{
		requests: make(map[byte]*metrics.Counter, len(requestTypes)),
		latency:  make(map[byte]*metrics.Histogram, len(requestTypes)),
		errors:   make(map[byte]*metrics.Counter, len(requestTypes)),
	}
	for typ, name := range requestTypes {
		sm.requests[typ] = reg.Counter("graphjoind_requests_total",
			"Requests admitted, by store and request type.", "store", store, "type", name)
		sm.latency[typ] = reg.Histogram("graphjoind_request_seconds",
			"Request duration from admission to response, by store and request type.",
			"store", store, "type", name)
		sm.errors[typ] = reg.Counter("graphjoind_request_errors_total",
			"Requests answered with an error, by store and request type.", "store", store, "type", name)
	}
	sm.unknown = reg.Counter("graphjoind_requests_total",
		"Requests admitted, by store and request type.", "store", store, "type", "unknown")
	sm.rejected = reg.Counter("graphjoind_rejected_total",
		"Requests rejected by per-store admission control.", "store", store)
	sm.connections = reg.Gauge("graphjoind_connections",
		"Connections currently bound to the store.", "store", store)
	sm.creditStall = reg.Counter("graphjoind_rows_credit_stall_seconds_total",
		"Total time Rows producers spent blocked waiting for client credit.", "store", store)
	return sm
}

// admitted counts one request into requests_total. Called before the
// handler runs — and therefore before any response frame is written — so a
// scrape taken after a client has received all its responses equals the
// client's own request ledger exactly.
func (sm *storeMetrics) admitted(typ byte) {
	if sm == nil {
		return
	}
	if ctr, ok := sm.requests[typ]; ok {
		ctr.Inc()
	} else {
		sm.unknown.Inc()
	}
}

// done records the request's latency and, when it failed, its error.
func (sm *storeMetrics) done(typ byte, start time.Time, err error) {
	if sm == nil {
		return
	}
	if h, ok := sm.latency[typ]; ok {
		h.ObserveSince(start)
	}
	if err != nil {
		if ctr, ok := sm.errors[typ]; ok {
			ctr.Inc()
		}
	}
}

// stalled accumulates time a Rows producer spent blocked on client credit.
func (sm *storeMetrics) stalled(d time.Duration) {
	if sm != nil && d > 0 {
		sm.creditStall.AddDuration(d)
	}
}

// admission is one store's request-budget semaphore: MaxInflight slots, a
// FIFO wait queue of at most MaxQueued, fast typed rejection beyond that.
// With MaxInflight <= 0 it admits everything but still counts occupancy for
// the in-flight gauge.
type admission struct {
	store       string
	maxInflight int
	maxQueued   int

	mu      sync.Mutex
	active  int
	waiters []chan struct{}
}

// newAdmission returns the store's admission gate and registers its
// occupancy gauges.
func newAdmission(store string, lim Limits) *admission {
	a := &admission{store: store, maxInflight: lim.MaxInflight, maxQueued: lim.MaxQueued}
	reg := metrics.Default()
	reg.GaugeFunc("graphjoind_inflight_requests",
		"Requests currently running (admitted, response not yet complete).",
		a.activeCount, "store", store)
	reg.GaugeFunc("graphjoind_queued_requests",
		"Requests waiting for an in-flight slot.", a.queuedDepth, "store", store)
	return a
}

func (a *admission) activeCount() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return float64(a.active)
}

func (a *admission) queuedDepth() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return float64(len(a.waiters))
}

// acquire claims one in-flight slot, queueing within the budget. It returns
// a wire.ErrOverloaded-typed error when the queue is full, or ctx's error if
// the request is cancelled while waiting. Every nil return must be balanced
// by release.
func (a *admission) acquire(ctx context.Context) error {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	if a.maxInflight <= 0 || a.active < a.maxInflight {
		a.active++
		a.mu.Unlock()
		return nil
	}
	if len(a.waiters) >= a.maxQueued {
		a.mu.Unlock()
		return fmt.Errorf("server: store %q at budget (%d in-flight, %d queued): %w",
			a.store, a.maxInflight, a.maxQueued, wire.ErrOverloaded)
	}
	ch := make(chan struct{})
	a.waiters = append(a.waiters, ch)
	a.mu.Unlock()
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		for i, w := range a.waiters {
			if w == ch {
				a.waiters = append(a.waiters[:i], a.waiters[i+1:]...)
				a.mu.Unlock()
				return ctx.Err()
			}
		}
		a.mu.Unlock()
		// The slot was granted between Done firing and the lock: hand it back.
		a.release()
		return ctx.Err()
	}
}

// release frees one slot, handing it to the oldest waiter if any (the slot
// transfers, so active never dips below the true occupancy).
func (a *admission) release() {
	if a == nil {
		return
	}
	a.mu.Lock()
	if len(a.waiters) > 0 {
		ch := a.waiters[0]
		a.waiters = a.waiters[1:]
		a.mu.Unlock()
		close(ch)
		return
	}
	a.active--
	a.mu.Unlock()
}

// leaseTracker records the open read-transactions (snapshot leases) of one
// store across all connections, backing the open-lease count and
// oldest-lease-age gauges.
type leaseTracker struct {
	mu   sync.Mutex
	next uint64
	open map[uint64]time.Time
}

func newLeaseTracker(store string) *leaseTracker {
	lt := &leaseTracker{open: make(map[uint64]time.Time)}
	reg := metrics.Default()
	reg.GaugeFunc("graphjoind_open_leases",
		"Read-transactions currently pinning a snapshot.", lt.count, "store", store)
	reg.GaugeFunc("graphjoind_oldest_lease_age_seconds",
		"Age of the oldest open read-transaction (0 when none).", lt.oldestAge, "store", store)
	return lt
}

func (lt *leaseTracker) add() uint64 {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	lt.next++
	lt.open[lt.next] = time.Now()
	return lt.next
}

func (lt *leaseTracker) remove(tok uint64) {
	lt.mu.Lock()
	delete(lt.open, tok)
	lt.mu.Unlock()
}

func (lt *leaseTracker) count() float64 {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return float64(len(lt.open))
}

func (lt *leaseTracker) oldestAge() float64 {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	var oldest time.Time
	for _, t := range lt.open {
		if oldest.IsZero() || t.Before(oldest) {
			oldest = t
		}
	}
	if oldest.IsZero() {
		return 0
	}
	return time.Since(oldest).Seconds()
}

// registerStoreGauges wires the store-level polled gauges: CSR overlay depth
// per store and the process-wide overlay compaction counter.
func registerStoreGauges(name string, st interface{ OverlayDepth() int }) {
	reg := metrics.Default()
	reg.GaugeFunc("graphjoind_overlay_depth",
		"Tuples pending in CSR delta-overlay logs across the store's cached indexes.",
		func() float64 { return float64(st.OverlayDepth()) }, "store", name)
	reg.CounterFunc("graphjoind_overlay_compactions_total",
		"CSR overlay log compactions performed by this process.",
		func() float64 { return float64(relation.OverlayCompactions()) })
}
