package wire

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/trace"
)

// TestTraceContextRoundTrip pins the v4 prefix: the untraced marker costs
// one byte, the traced form carries both ids, and decoding returns exactly
// what was encoded with the remainder of the body intact.
func TestTraceContextRoundTrip(t *testing.T) {
	body := []byte{0xde, 0xad}

	var e Enc
	EncodeTraceContext(&e, 0, 0)
	e.Raw(body)
	if e.Bytes()[0] != 0 || len(e.Bytes()) != 1+len(body) {
		t.Fatalf("untraced prefix should cost exactly one byte: % x", e.Bytes())
	}
	d := NewDec(e.Bytes())
	traceID, spanID := DecodeTraceContext(d)
	if traceID != 0 || spanID != 0 || d.Err() != nil {
		t.Fatalf("untraced decode: (%d, %d, %v)", traceID, spanID, d.Err())
	}
	if rest := d.Rest(); !reflect.DeepEqual(rest, body) {
		t.Fatalf("untraced remainder = % x, want % x", rest, body)
	}

	e = Enc{}
	EncodeTraceContext(&e, 0xabcdef, 0x123456)
	e.Raw(body)
	d = NewDec(e.Bytes())
	traceID, spanID = DecodeTraceContext(d)
	if traceID != 0xabcdef || spanID != 0x123456 || d.Err() != nil {
		t.Fatalf("traced decode: (%#x, %#x, %v)", traceID, spanID, d.Err())
	}
	if rest := d.Rest(); !reflect.DeepEqual(rest, body) {
		t.Fatalf("traced remainder = % x, want % x", rest, body)
	}
}

// TestTraceContextUnknownFlag pins the protocol error on a flag value the
// decoder does not know.
func TestTraceContextUnknownFlag(t *testing.T) {
	var e Enc
	e.U64(7)
	d := NewDec(e.Bytes())
	DecodeTraceContext(d)
	if !errors.Is(d.Err(), ErrProtocol) {
		t.Fatalf("unknown flag error = %v, want ErrProtocol", d.Err())
	}
}

// TestTracesRoundTrip pins the TTrace payload codec: traces, spans, and
// attributes survive the wire byte-for-byte (start times at nanosecond
// resolution).
func TestTracesRoundTrip(t *testing.T) {
	start := time.Unix(1700000000, 123456789).UTC()
	in := []trace.Data{
		{
			ID:      42,
			Dropped: 3,
			Spans: []trace.SpanRecord{
				{Trace: 42, ID: 1, Parent: 0, Stage: "server.count", Start: start, Duration: 5 * time.Millisecond},
				{Trace: 42, ID: 2, Parent: 1, Stage: "engine.count", Start: start.Add(time.Millisecond), Duration: 3 * time.Millisecond,
					Attrs: []trace.Attr{{Key: "outputs", Val: 99}, {Key: "host", Str: "h1"}}},
			},
		},
		{ID: 43}, // a trace with no spans
	}
	var e Enc
	EncodeTraces(&e, in)
	d := NewDec(e.Bytes())
	out := DecodeTraces(d)
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
	if len(out) != len(in) {
		t.Fatalf("got %d traces, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].ID != in[i].ID || out[i].Dropped != in[i].Dropped || len(out[i].Spans) != len(in[i].Spans) {
			t.Fatalf("trace %d header mismatch: %+v vs %+v", i, out[i], in[i])
		}
		for j, s := range in[i].Spans {
			g := out[i].Spans[j]
			if g.Trace != s.Trace || g.ID != s.ID || g.Parent != s.Parent || g.Stage != s.Stage ||
				!g.Start.Equal(s.Start) || g.Duration != s.Duration || !reflect.DeepEqual(g.Attrs, s.Attrs) {
				t.Fatalf("span %d/%d mismatch:\n got %+v\nwant %+v", i, j, g, s)
			}
		}
	}
}
