// Package codec holds the varint payload codecs shared by the wire protocol
// (internal/wire re-exports them as wire.Enc/wire.Dec) and the durability
// layer's log and snapshot records (internal/durable). Factoring them below
// both keeps the on-disk and on-the-wire encodings byte-identical — a tuple
// batch is laid out the same in a WAL record as in an Apply frame — without
// dragging the protocol's typed-error table (which references the public
// repro package) into the storage layer.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrTruncated reports a payload that ended before its fields did.
var ErrTruncated = errors.New("wire: truncated payload")

// Enc appends varint-encoded fields to a payload buffer. The zero value is
// ready to use.
type Enc struct{ b []byte }

// Bytes returns the encoded payload.
func (e *Enc) Bytes() []byte { return e.b }

// U64 appends an unsigned varint.
func (e *Enc) U64(v uint64) { e.b = binary.AppendUvarint(e.b, v) }

// Int appends an int as an unsigned varint. Every protocol int field is a
// count or size where negative means "unset", so negatives clamp to 0
// rather than varint-wrapping into a huge value the peer would reject.
func (e *Enc) Int(v int) {
	if v < 0 {
		v = 0
	}
	e.U64(uint64(v))
}

// I64 appends a signed varint (zig-zag); tuple values carry user input that
// may be negative, which the server rejects with its own typed error.
func (e *Enc) I64(v int64) { e.b = binary.AppendVarint(e.b, v) }

// Bool appends a boolean as one byte.
func (e *Enc) Bool(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}

// Raw appends pre-encoded bytes verbatim (no length prefix) — used to
// prepend a header ahead of an already-encoded body.
func (e *Enc) Raw(b []byte) { e.b = append(e.b, b...) }

// Str appends a length-prefixed string.
func (e *Enc) Str(s string) {
	e.U64(uint64(len(s)))
	e.b = append(e.b, s...)
}

// StrList appends a count-prefixed list of strings.
func (e *Enc) StrList(ss []string) {
	e.U64(uint64(len(ss)))
	for _, s := range ss {
		e.Str(s)
	}
}

// Tuple appends a width-prefixed tuple of signed values.
func (e *Enc) Tuple(t []int64) {
	e.U64(uint64(len(t)))
	for _, v := range t {
		e.I64(v)
	}
}

// Tuples appends a count-prefixed list of tuples.
func (e *Enc) Tuples(ts [][]int64) {
	e.U64(uint64(len(ts)))
	for _, t := range ts {
		e.Tuple(t)
	}
}

// Dec consumes varint-encoded fields from a payload. Decoding errors are
// sticky: after the first failure every accessor returns a zero value and
// Err reports the failure, so message decoders read all fields and check
// once.
type Dec struct {
	b   []byte
	err error
}

// NewDec returns a decoder over the payload.
func NewDec(b []byte) *Dec { return &Dec{b: b} }

// Err returns the first decoding failure, if any.
func (d *Dec) Err() error { return d.err }

// Rest returns the undecoded remainder of the payload — used to split a
// header off a body that a later decoder consumes.
func (d *Dec) Rest() []byte { return d.b }

func (d *Dec) fail() {
	if d.err == nil {
		d.err = ErrTruncated
	}
}

// Fail records a decoder-external validation failure (e.g. an unknown flag
// value), making it sticky like any decoding error.
func (d *Dec) Fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// U64 consumes an unsigned varint.
func (d *Dec) U64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

// Int consumes an unsigned varint as an int, failing on overflow.
func (d *Dec) Int() int {
	v := d.U64()
	if d.err == nil && v > uint64(int(^uint(0)>>1)) {
		d.err = fmt.Errorf("wire: integer field %d overflows int", v)
		return 0
	}
	return int(v)
}

// I64 consumes a signed varint.
func (d *Dec) I64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

// Bool consumes one byte as a boolean.
func (d *Dec) Bool() bool {
	if d.err != nil {
		return false
	}
	if len(d.b) == 0 {
		d.fail()
		return false
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v != 0
}

// Str consumes a length-prefixed string. The length is validated against the
// remaining payload before allocating.
func (d *Dec) Str() string {
	n := d.U64()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)) {
		d.fail()
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

// Count validates a collection count against the bytes that remain: each
// element needs at least one byte, so any count beyond len(d.b) is corrupt
// and must not size an allocation.
func (d *Dec) Count() int {
	n := d.U64()
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.b)) {
		d.fail()
		return 0
	}
	return int(n)
}

// StrList consumes a count-prefixed list of strings.
func (d *Dec) StrList() []string {
	n := d.Count()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = d.Str()
	}
	if d.err != nil {
		return nil
	}
	return out
}

// Tuple consumes a width-prefixed tuple.
func (d *Dec) Tuple() []int64 {
	n := d.Count()
	if d.err != nil {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = d.I64()
	}
	if d.err != nil {
		return nil
	}
	return out
}

// Tuples consumes a count-prefixed list of tuples.
func (d *Dec) Tuples() [][]int64 {
	n := d.Count()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([][]int64, n)
	for i := range out {
		out[i] = d.Tuple()
	}
	if d.err != nil {
		return nil
	}
	return out
}
