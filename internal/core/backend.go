package core

import (
	"fmt"

	"repro/internal/relation"
)

// Backend names a physical trie-index implementation. The paper's engines
// (§4.1) are defined against an abstract trie/B-tree index; this reproduction
// offers two interchangeable realizations of that contract so they can be
// differential-tested and benchmarked against each other.
type Backend string

const (
	// BackendFlat is the reference backend: the sorted flat relation itself,
	// with child ranges re-derived by binary search over row ranges on every
	// cursor operation. Zero extra memory, zero build cost beyond the sort.
	BackendFlat Backend = "flat"
	// BackendCSR materializes each trie level as contiguous key+offset
	// arrays at index-build time (relation.CSRTrie): cursor Open/Next become
	// O(1), SeekGE gallops over a dense array, and Minesweeper's gap probes
	// run one bounded binary search per level. Costs one extra O(arity · n)
	// build pass and up to arity·n keys of memory per index.
	BackendCSR Backend = "csr"
)

// DefaultBackend is used when no backend is selected. The flat backend stays
// the default because it is the reference implementation; workloads that
// execute a prepared query repeatedly should select BackendCSR.
const DefaultBackend = BackendFlat

// ParseBackend resolves a user-supplied backend name; empty selects
// DefaultBackend.
func ParseBackend(s string) (Backend, error) {
	switch Backend(s) {
	case "":
		return DefaultBackend, nil
	case BackendFlat:
		return BackendFlat, nil
	case BackendCSR:
		return BackendCSR, nil
	}
	return "", fmt.Errorf("core: unknown index backend %q (want %q or %q)", s, BackendFlat, BackendCSR)
}

// TrieCursor is the per-execution iteration handle over one GAO-consistent
// index, with the trie contract Leapfrog Triejoin is defined against
// (paper §2.2): Open descends to the first child of the current node, Up
// pops back, Next/SeekGE move within the current level in increasing key
// order (no-ops at the end of a level; callers check AtEnd). Cursors are
// single-goroutine; obtain a fresh one per execution from the index.
type TrieCursor interface {
	Open()
	Up()
	Next()
	SeekGE(v int64)
	AtEnd() bool
	Key() int64
}

// IndexBackend is one GAO-consistent physical index over a relation: the
// trie access path (NewCursor) the worst-case-optimal engines iterate, plus
// the least-upper-bound/greatest-lower-bound gap probe (ProbeGap, the
// paper's seekGap from Algorithm 3) Minesweeper drives. Implementations are
// immutable and safe for concurrent executions.
type IndexBackend interface {
	// Backend identifies the implementation.
	Backend() Backend
	// Arity returns the number of indexed attributes.
	Arity() int
	// Len returns the number of tuples.
	Len() int
	// NewCursor returns a fresh trie cursor positioned at the root.
	NewCursor() TrieCursor
	// ProbeGap probes with a full-arity point: found == true when the tuple
	// is present, else the maximal empty gap box around the point (§4.5).
	ProbeGap(point []int64) (relation.Gap, bool)
}

// flatIndex adapts the sorted relation itself as an IndexBackend.
type flatIndex struct {
	r *relation.Relation
}

func (f flatIndex) Backend() Backend      { return BackendFlat }
func (f flatIndex) Arity() int            { return f.r.Arity() }
func (f flatIndex) Len() int              { return f.r.Len() }
func (f flatIndex) NewCursor() TrieCursor { return relation.NewTrieIterator(f.r) }
func (f flatIndex) ProbeGap(point []int64) (relation.Gap, bool) {
	return f.r.ProbeGap(point)
}

// csrIndex adapts a materialized CSR trie as an IndexBackend.
type csrIndex struct {
	t *relation.CSRTrie
}

func (c csrIndex) Backend() Backend      { return BackendCSR }
func (c csrIndex) Arity() int            { return c.t.Arity() }
func (c csrIndex) Len() int              { return c.t.Len() }
func (c csrIndex) NewCursor() TrieCursor { return relation.NewCSRCursor(c.t) }
func (c csrIndex) ProbeGap(point []int64) (relation.Gap, bool) {
	return c.t.ProbeGap(point)
}

// NewIndexBackend wraps an already GAO-consistent relation in the chosen
// backend (building the CSR trie for BackendCSR). The DB's TrieIndex method
// is the caching entry point; this constructor serves callers that manage
// relations directly.
func NewIndexBackend(r *relation.Relation, backend Backend) (IndexBackend, error) {
	switch backend {
	case "", BackendFlat:
		return flatIndex{r: r}, nil
	case BackendCSR:
		return csrIndex{t: relation.NewCSRTrie(r)}, nil
	}
	return nil, fmt.Errorf("core: unknown index backend %q", backend)
}
