package query

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// SyntaxError is the typed error for parse failures, carrying the byte
// offset into the source and, when known, the relation name of the atom
// being parsed. Parse wraps it with the query name; unwrap with errors.As.
type SyntaxError struct {
	Offset int
	Atom   string // relation name of the enclosing atom, "" at top level
	Msg    string
}

func (e *SyntaxError) Error() string {
	if e.Atom != "" {
		return fmt.Sprintf("atom %s: %s at offset %d", e.Atom, e.Msg, e.Offset)
	}
	return fmt.Sprintf("%s at offset %d", e.Msg, e.Offset)
}

// Parse reads a query in the Datalog-style syntax the paper uses in §5.1,
// extended with projection, constants, comparison predicates, and
// aggregates. The body is a comma-separated list of atoms and predicates:
//
//	v1(a), v2(d), edge(a, b), edge(b, c), edge(c, d)
//	edge(a, 5), a < b, b != 7
//
// An optional rule head names the query and fixes the output: it may list
// any distinct subset of the body variables (a strict subset projects, with
// early duplicate elimination) and may end with aggregate terms count(v),
// sum(v), min(v), max(v), which group results by the plain head variables:
//
//	chain(a, d) :- v1(a), edge(a, b), edge(b, c), edge(c, d)
//	deg(a, count(b)) :- edge(a, b)
//
// Atom arguments are variables or integer constants. Predicates compare a
// variable against a variable or constant with =, !=, <, <=, >, >=.
// Relation and variable names are identifiers ([A-Za-z_][A-Za-z0-9_]*).
// Whitespace is insignificant. A trailing period is permitted. For a bare
// body the name argument names the query; a head overrides it. Parse errors
// are *SyntaxError values carrying the offending offset and atom.
func Parse(name, src string) (*Query, error) {
	p := &parser{src: src}
	var head *rawAtom
	var atoms []rawAtom
	var preds []rawPred
	p.skipSpace()
	for !p.done() {
		c := p.peek()
		switch {
		case c == '-' || unicode.IsDigit(rune(c)):
			// Constant-led predicate: 5 < a. Normalize to a > 5.
			off := p.pos
			v, err := p.number()
			if err != nil {
				return nil, wrapSyntax(name, err)
			}
			p.skipSpace()
			op, ok := p.cmpOp()
			if !ok {
				return nil, wrapSyntax(name, &SyntaxError{Offset: p.pos, Msg: "expected comparison operator after constant"})
			}
			p.skipSpace()
			id, err := p.ident()
			if err != nil {
				return nil, wrapSyntax(name, &SyntaxError{Offset: p.pos, Msg: "comparison must involve a variable"})
			}
			preds = append(preds, rawPred{Pred: Pred{Left: id, Op: op.flip(), Const: v}, off: off})
		default:
			rel, err := p.ident()
			if err != nil {
				return nil, wrapSyntax(name, err)
			}
			p.skipSpace()
			if p.peek() == '(' {
				ra, err := p.finishRawAtom(rel)
				if err != nil {
					return nil, wrapSyntax(name, err)
				}
				p.skipSpace()
				if head == nil && len(atoms) == 0 && len(preds) == 0 && p.hasRuleArrow() {
					head = &ra
					p.pos += 2
					p.skipSpace()
					continue
				}
				atoms = append(atoms, ra)
			} else if op, ok := p.cmpOp(); ok {
				pr := rawPred{Pred: Pred{Left: rel, Op: op}, off: p.pos}
				p.skipSpace()
				rc := p.peek()
				if rc == '-' || unicode.IsDigit(rune(rc)) {
					v, err := p.number()
					if err != nil {
						return nil, wrapSyntax(name, err)
					}
					pr.Const = v
				} else {
					id, err := p.ident()
					if err != nil {
						return nil, wrapSyntax(name, &SyntaxError{Offset: p.pos, Msg: "expected variable or constant after comparison operator"})
					}
					pr.Right = id
					pr.IsVar = true
				}
				preds = append(preds, pr)
			} else {
				return nil, wrapSyntax(name, &SyntaxError{Offset: p.pos, Atom: rel, Msg: "expected '(' or comparison operator"})
			}
		}
		p.skipSpace()
		if p.peek() == ',' {
			p.pos++
			p.skipSpace()
			continue
		}
		if p.peek() == '.' {
			p.pos++
			p.skipSpace()
		}
		break
	}
	p.skipSpace()
	if !p.done() {
		return nil, fmt.Errorf("query %q: %w", name,
			&SyntaxError{Offset: p.pos, Msg: fmt.Sprintf("trailing input: %q", p.src[p.pos:])})
	}
	q, err := assemble(name, head, atoms, preds)
	if err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

func wrapSyntax(name string, err error) error {
	return fmt.Errorf("query %q: %w", name, err)
}

// assemble desugars in-atom constants into placeholder variables pinned by
// equality predicates and builds the Query through the validating
// constructors.
func assemble(name string, head *rawAtom, atoms []rawAtom, preds []rawPred) (*Query, error) {
	if head != nil && len(atoms) == 0 && len(preds) == 0 {
		return nil, fmt.Errorf("query %q: rule %s has an empty body", name, head.Rel)
	}
	var bodyAtoms []Atom
	var constPreds []Pred
	next := 1
	for _, ra := range atoms {
		a := Atom{Rel: ra.Rel, Vars: make([]string, 0, len(ra.terms))}
		for _, t := range ra.terms {
			switch {
			case t.fn != "":
				return nil, wrapSyntax(name, &SyntaxError{Offset: t.off, Atom: ra.Rel,
					Msg: fmt.Sprintf("aggregate %s(%s) is only allowed in the rule head", t.fn, t.name)})
			case t.isConst:
				ph := "$" + strconv.Itoa(next)
				next++
				a.Vars = append(a.Vars, ph)
				constPreds = append(constPreds, Pred{Left: ph, Op: OpEq, Const: t.val})
			default:
				a.Vars = append(a.Vars, t.name)
			}
		}
		bodyAtoms = append(bodyAtoms, a)
	}
	allPreds := constPreds
	for _, rp := range preds {
		allPreds = append(allPreds, rp.Pred)
	}

	if head != nil {
		var outVars []string
		var aggs []Agg
		for _, t := range head.terms {
			switch {
			case t.isConst:
				return nil, wrapSyntax(name, &SyntaxError{Offset: t.off, Atom: head.Rel,
					Msg: "constants are not allowed in the rule head"})
			case t.fn != "":
				aggs = append(aggs, Agg{Func: t.fn, Var: t.name})
			default:
				if len(aggs) > 0 {
					return nil, wrapSyntax(name, &SyntaxError{Offset: t.off, Atom: head.Rel,
						Msg: "aggregate terms must follow every plain head variable"})
				}
				outVars = append(outVars, t.name)
			}
		}
		return NewRule(head.Rel, outVars, aggs, allPreds, bodyAtoms...)
	}
	if len(allPreds) == 0 {
		return New(name, bodyAtoms...), nil
	}
	// Bare body with constants or predicates: output the visible (non
	// placeholder) variables in first-appearance order.
	var outVars []string
	seen := make(map[string]bool)
	for _, a := range bodyAtoms {
		for _, v := range a.Vars {
			if !Placeholder(v) && !seen[v] {
				seen[v] = true
				outVars = append(outVars, v)
			}
		}
	}
	return NewRule(name, outVars, nil, allPreds, bodyAtoms...)
}

// MustParse is Parse that panics on error, for statically known queries.
func MustParse(name, src string) *Query {
	q, err := Parse(name, src)
	if err != nil {
		panic(err)
	}
	return q
}

// term is one argument of a raw (pre-desugaring) atom: a variable, an
// integer constant, or — in rule heads only — an aggregate fn(var).
type term struct {
	name    string
	fn      AggFunc // non-empty for aggregate terms
	isConst bool
	val     int64
	off     int
}

type rawAtom struct {
	Rel   string
	terms []term
}

type rawPred struct {
	Pred
	off int
}

type parser struct {
	src string
	pos int
}

func (p *parser) done() bool { return p.pos >= len(p.src) }

// hasRuleArrow reports whether ":-" starts at the current position.
func (p *parser) hasRuleArrow() bool {
	return p.pos+1 < len(p.src) && p.src[p.pos] == ':' && p.src[p.pos+1] == '-'
}

func (p *parser) peek() byte {
	if p.done() {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) skipSpace() {
	for !p.done() && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *parser) ident() (string, error) {
	start := p.pos
	for !p.done() {
		c := rune(p.src[p.pos])
		if unicode.IsLetter(c) || c == '_' || (p.pos > start && unicode.IsDigit(c)) {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return "", &SyntaxError{Offset: start, Msg: "expected identifier"}
	}
	return p.src[start:p.pos], nil
}

// number parses an optionally negative integer constant.
func (p *parser) number() (int64, error) {
	start := p.pos
	if p.peek() == '-' {
		p.pos++
	}
	for !p.done() && unicode.IsDigit(rune(p.src[p.pos])) {
		p.pos++
	}
	if p.pos == start || (p.pos == start+1 && p.src[start] == '-') {
		return 0, &SyntaxError{Offset: start, Msg: "expected integer constant"}
	}
	v, err := strconv.ParseInt(p.src[start:p.pos], 10, 64)
	if err != nil {
		return 0, &SyntaxError{Offset: start, Msg: fmt.Sprintf("integer constant %q out of range", p.src[start:p.pos])}
	}
	return v, nil
}

// cmpOp consumes a comparison operator if one starts at the current
// position. "==" is accepted as "=".
func (p *parser) cmpOp() (CmpOp, bool) {
	if p.pos+1 < len(p.src) {
		switch p.src[p.pos : p.pos+2] {
		case "<=":
			p.pos += 2
			return OpLe, true
		case ">=":
			p.pos += 2
			return OpGe, true
		case "!=":
			p.pos += 2
			return OpNe, true
		case "==":
			p.pos += 2
			return OpEq, true
		}
	}
	switch p.peek() {
	case '<':
		p.pos++
		return OpLt, true
	case '>':
		p.pos++
		return OpGt, true
	case '=':
		p.pos++
		return OpEq, true
	}
	return "", false
}

// finishRawAtom parses the argument list of an atom (or prospective rule
// head) whose relation name has already been consumed and whose next byte is
// '('. Head-only aggregate terms are accepted here and rejected later if the
// unit turns out to be a body atom.
func (p *parser) finishRawAtom(rel string) (rawAtom, error) {
	p.pos++ // '('
	ra := rawAtom{Rel: rel}
	for {
		p.skipSpace()
		off := p.pos
		c := p.peek()
		switch {
		case c == '-' || unicode.IsDigit(rune(c)):
			v, err := p.number()
			if err != nil {
				return rawAtom{}, withAtom(err, rel)
			}
			ra.terms = append(ra.terms, term{isConst: true, val: v, off: off})
		default:
			id, err := p.ident()
			if err != nil {
				return rawAtom{}, withAtom(err, rel)
			}
			p.skipSpace()
			if p.peek() == '(' {
				// Aggregate term fn(var), legal only in rule heads.
				fn := AggFunc(id)
				if !ValidAgg(fn) {
					return rawAtom{}, &SyntaxError{Offset: off, Atom: rel,
						Msg: fmt.Sprintf("unknown aggregate function %q (want count, sum, min, or max)", id)}
				}
				p.pos++
				p.skipSpace()
				arg, err := p.ident()
				if err != nil {
					return rawAtom{}, withAtom(err, rel)
				}
				p.skipSpace()
				if p.peek() != ')' {
					return rawAtom{}, &SyntaxError{Offset: p.pos, Atom: rel, Msg: fmt.Sprintf("expected ')' closing %s(", id)}
				}
				p.pos++
				ra.terms = append(ra.terms, term{name: arg, fn: fn, off: off})
			} else {
				ra.terms = append(ra.terms, term{name: id, off: off})
			}
		}
		p.skipSpace()
		switch p.peek() {
		case ',':
			p.pos++
		case ')':
			p.pos++
			return ra, nil
		default:
			return rawAtom{}, &SyntaxError{Offset: p.pos, Atom: rel, Msg: "expected ',' or ')'"}
		}
	}
}

func withAtom(err error, rel string) error {
	if se, ok := err.(*SyntaxError); ok && se.Atom == "" {
		se.Atom = rel
	}
	return err
}

// Format renders the query back to the paper's Datalog-style syntax.
// Extended queries (projection, constants, predicates, aggregates) render as
// a full rule and round-trip through Parse.
func Format(q *Query) string {
	var b strings.Builder
	b.WriteString(q.String())
	return b.String()
}
