package relation

import "sync/atomic"

// compactions counts overlay log fold-ins process-wide; the metrics layer
// exports it as graphjoind_overlay_compactions_total.
var compactions atomic.Int64

// OverlayCompactions returns the total number of overlay compactions (log
// fold-ins to a fresh base trie) performed by this process.
func OverlayCompactions() int64 { return compactions.Load() }

// Overlay is an incrementally maintainable CSR trie: an immutable base trie
// plus two small sorted logs — adds (tuples present but absent from the
// base) and dels (base tuples that have been deleted) — materialized as
// tiny CSR tries of their own. Cursors and gap probes merge the three at
// trie-cursor level, so an update batch costs O(|log|) instead of the
// O(arity · n) full trie rebuild the plain CSR backend would need; when the
// logs grow past a fraction of the base, Apply compacts them into a fresh
// base trie and starts over. This is the structure that lets incremental
// views (internal/incremental) keep their delta-query atoms on the fast CSR
// backend instead of pinning the flat reference backend.
//
// Invariants (established by the caller, checked against in Apply):
// adds ∩ base = ∅, dels ⊆ base, adds ∩ dels = ∅. An Overlay is immutable —
// Apply returns a new snapshot sharing the unchanged parts — so concurrent
// cursors over an old snapshot stay valid while a writer installs a new
// one.
type Overlay struct {
	rel          *Relation // base rows (the snapshot the base trie indexes)
	base         *CSRTrie
	adds, dels   *Relation
	addsT, delsT *CSRTrie
}

// Compaction thresholds: fold the logs into the base once they hold at
// least overlayCompactMin tuples and at least a quarter of the base size
// (so small relations compact eagerly and large ones amortize), or
// unconditionally past overlayCompactMax.
const (
	overlayCompactMin = 16
	overlayCompactMax = 1 << 14
)

// NewOverlay wraps a sorted relation as an overlay with empty logs. The
// base trie is built here (or pass one already built via NewOverlayTrie).
func NewOverlay(r *Relation) *Overlay {
	return &Overlay{rel: r, base: NewCSRTrie(r)}
}

// Name returns the indexed relation's name.
func (o *Overlay) Name() string { return o.rel.name }

// Arity returns the number of attributes.
func (o *Overlay) Arity() int { return o.rel.arity }

// Len returns the live tuple count: base − deleted + added.
func (o *Overlay) Len() int {
	n := o.rel.n
	if o.dels != nil {
		n -= o.dels.n
	}
	if o.adds != nil {
		n += o.adds.n
	}
	return n
}

// LogLen returns the total log size (tests observe compaction through it).
func (o *Overlay) LogLen() int {
	n := 0
	if o.adds != nil {
		n += o.adds.n
	}
	if o.dels != nil {
		n += o.dels.n
	}
	return n
}

// pristine reports whether the overlay carries no pending deltas.
func (o *Overlay) pristine() bool { return o.LogLen() == 0 }

// Apply returns a new overlay snapshot with the update batch folded into
// the logs (or, past the compaction threshold, into a fresh base trie).
// ins must be absent from the overlay's current contents and dels present
// in them, with ins ∩ dels = ∅ — core.DB.ApplyDelta filters the raw batch
// down to exactly that before calling. Tuples that cancel a pending log
// entry (re-inserting a deleted tuple, deleting a pending insert) shrink
// the logs instead of growing them. Cost per batch is one linear merge of
// each log plus the rebuild of the two small log tries — O(|log| +
// |batch|·log n), with |log| bounded by the compaction threshold.
func (o *Overlay) Apply(ins, dels [][]int64) *Overlay {
	if len(ins) == 0 && len(dels) == 0 {
		return o
	}
	// A tuple on both sides of one batch is an insert-then-delete: a no-op
	// for the overlay (DB.ApplyDelta never sends these, but be robust).
	var both map[string]bool
	if len(ins) > 0 && len(dels) > 0 {
		insKeys := make(map[string]bool, len(ins))
		for _, t := range ins {
			insKeys[TupleKey(t)] = true
		}
		for _, t := range dels {
			if k := TupleKey(t); insKeys[k] {
				if both == nil {
					both = make(map[string]bool)
				}
				both[k] = true
			}
		}
	}
	// Split the batch against the pending logs. An insert either restores a
	// tuple with a pending tombstone (shrinking dels) or is genuinely new
	// (growing adds); a delete either cancels a pending insert (shrinking
	// adds) or tombstones a base tuple (growing dels).
	var insNew, insRestored, delsBase, delsPending [][]int64
	for _, t := range ins {
		if both[TupleKey(t)] {
			continue
		}
		if o.dels != nil && o.dels.Contains(t) {
			insRestored = append(insRestored, t)
		} else {
			insNew = append(insNew, t)
		}
	}
	for _, t := range dels {
		if both[TupleKey(t)] {
			continue
		}
		if o.adds != nil && o.adds.Contains(t) {
			delsPending = append(delsPending, t)
		} else {
			delsBase = append(delsBase, t)
		}
	}
	next := &Overlay{rel: o.rel, base: o.base}
	next.adds = mergeLog(o.adds, o.rel.name+"+", o.rel.arity, insNew, delsPending)
	next.dels = mergeLog(o.dels, o.rel.name+"-", o.rel.arity, delsBase, insRestored)
	if n := next.LogLen(); n >= overlayCompactMax || (n >= overlayCompactMin && 4*n >= o.rel.n) {
		return next.compact()
	}
	if next.adds != nil {
		next.addsT = NewCSRTrie(next.adds)
	}
	if next.dels != nil {
		next.delsT = NewCSRTrie(next.dels)
	}
	return next
}

// mergeLog folds additions and removals into a sorted log with one linear
// merge (add ∩ log = ∅ and remove ⊆ log hold by construction in Apply).
// Empty logs stay nil so the pristine fast path keeps applying.
func mergeLog(log *Relation, name string, arity int, add, remove [][]int64) *Relation {
	if log == nil {
		if len(add) == 0 {
			return nil
		}
		return FromTuples(name, arity, add)
	}
	merged := MergeDelta(log, FromTuples(name, arity, add), FromTuples(name, arity, remove))
	if merged.Len() == 0 {
		return nil
	}
	return merged
}

// compact folds the logs into a fresh base relation and trie.
func (o *Overlay) compact() *Overlay {
	compactions.Add(1)
	return NewOverlay(MergeDelta(o.rel, o.adds, o.dels))
}

// NewCursor returns a trie cursor over the overlay's merged contents. A
// pristine overlay hands out the base trie's cursor directly — the overlay
// costs nothing until the first delta arrives.
func (o *Overlay) NewCursor() Cursor {
	if o.pristine() {
		return NewCSRCursor(o.base)
	}
	c := &OverlayCursor{o: o, b: NewCSRCursor(o.base), pure: o.rel.arity + 1}
	if o.addsT != nil {
		c.a = NewCSRCursor(o.addsT)
	}
	if o.delsT != nil {
		c.d = NewCSRCursor(o.delsT)
	}
	return c
}

// OverlayCursor merges the base trie (with deleted subtrees masked out) and
// the adds trie into one trie cursor. At every level the visible key set is
// {base keys whose subtree is not fully deleted} ∪ {adds keys}; Open
// descends whichever sides carry the selected key, with the dels trie
// tracking the base path to answer the fully-deleted test via subtree
// spans.
//
// Because the logs are small relative to the base, almost every subtree is
// untouched by them: once both log sides go dead on the current path
// (tracked in pure), every operation below that depth delegates straight to
// the base cursor — one integer compare of overhead — so the merged cursor
// costs only where a delta actually landed.
type OverlayCursor struct {
	o     *Overlay
	b     *CSRCursor // base; always non-nil
	a     *CSRCursor // adds; nil when the adds log is empty
	d     *CSRCursor // dels; nil when the dels log is empty
	depth int
	// pure is the shallowest opened depth at which only the base side is
	// active; at depths >= pure the cursor is exactly the base cursor. An
	// unreachable sentinel (> arity) means the path is still merged.
	pure int
	// Per opened level up to pure: whether each side holds the current
	// path prefix.
	bOn, aOn, dOn []bool
}

func (c *OverlayCursor) push(b, a, d bool) {
	c.bOn = append(c.bOn, b)
	c.aOn = append(c.aOn, a)
	c.dOn = append(c.dOn, d)
	c.depth++
}

// bLive reports whether the base side is active and holds a key at the
// current level (after deleted-subtree skipping).
func (c *OverlayCursor) bLive() bool { return c.bOn[c.depth-1] && !c.b.AtEnd() }

func (c *OverlayCursor) aLive() bool { return c.a != nil && c.aOn[c.depth-1] && !c.a.AtEnd() }

// skipDeleted advances the base cursor past keys whose subtrees are fully
// deleted, keeping the dels cursor aligned. The base cursor's position
// invariant after every move: it rests on a visible key or at the end of
// the level.
func (c *OverlayCursor) skipDeleted() {
	if !c.bOn[c.depth-1] || c.d == nil || !c.dOn[c.depth-1] {
		return
	}
	for !c.b.AtEnd() {
		c.d.SeekGE(c.b.Key())
		if c.d.AtEnd() || c.d.Key() != c.b.Key() || c.d.Span() < c.b.Span() {
			return
		}
		c.b.Next()
	}
}

// Open descends one level to the current node's first child.
func (c *OverlayCursor) Open() {
	if c.depth == c.o.rel.arity {
		panic("relation: OverlayCursor.Open below leaf level")
	}
	if c.depth >= c.pure {
		c.b.Open()
		c.depth++
		return
	}
	if c.depth == 0 {
		c.b.Open()
		if c.a != nil {
			c.a.Open()
		}
		if c.d != nil {
			c.d.Open()
		}
		c.push(true, c.a != nil, c.d != nil)
		c.skipDeleted()
		return
	}
	if c.AtEnd() {
		panic("relation: OverlayCursor.Open at end of level")
	}
	k := c.Key()
	bHas := c.bLive() && c.b.Key() == k
	aHas := c.aLive() && c.a.Key() == k
	dHas := false
	if bHas && c.d != nil && c.dOn[c.depth-1] {
		c.d.SeekGE(k)
		dHas = !c.d.AtEnd() && c.d.Key() == k
	}
	if bHas {
		c.b.Open()
	}
	if aHas {
		c.a.Open()
	}
	if dHas {
		c.d.Open()
	}
	c.push(bHas, aHas, dHas)
	if bHas && !aHas && !dHas {
		c.pure = c.depth // this subtree is untouched by the logs
		return
	}
	c.skipDeleted()
}

// Up pops back to the previous level. It panics at the root.
func (c *OverlayCursor) Up() {
	if c.depth == 0 {
		panic("relation: OverlayCursor.Up at root")
	}
	if c.depth > c.pure {
		c.b.Up()
		c.depth--
		return
	}
	top := c.depth - 1
	if c.bOn[top] {
		c.b.Up()
	}
	if c.aOn[top] {
		c.a.Up()
	}
	if c.dOn[top] {
		c.d.Up()
	}
	c.bOn = c.bOn[:top]
	c.aOn = c.aOn[:top]
	c.dOn = c.dOn[:top]
	c.depth--
	if c.depth < c.pure {
		c.pure = c.o.rel.arity + 1 // left the pure subtree
	}
}

// AtEnd reports whether the current level is exhausted.
func (c *OverlayCursor) AtEnd() bool {
	if c.depth >= c.pure {
		return c.b.AtEnd()
	}
	return !c.bLive() && !c.aLive()
}

// Key returns the current key at the current level: the least key either
// side offers.
func (c *OverlayCursor) Key() int64 {
	if c.depth >= c.pure {
		return c.b.Key()
	}
	bOk, aOk := c.bLive(), c.aLive()
	switch {
	case bOk && aOk:
		bk, ak := c.b.Key(), c.a.Key()
		if bk <= ak {
			return bk
		}
		return ak
	case bOk:
		return c.b.Key()
	default:
		return c.a.Key()
	}
}

// Next advances to the next distinct visible key.
func (c *OverlayCursor) Next() {
	if c.depth >= c.pure {
		c.b.Next()
		return
	}
	if c.AtEnd() {
		return
	}
	k := c.Key()
	if c.bLive() && c.b.Key() == k {
		c.b.Next()
		c.skipDeleted()
	}
	if c.aLive() && c.a.Key() == k {
		c.a.Next()
	}
}

// SeekGE positions at the least visible key >= v at the current level.
// Seeking backwards is a no-op.
func (c *OverlayCursor) SeekGE(v int64) {
	if c.depth >= c.pure {
		c.b.SeekGE(v)
		return
	}
	if c.AtEnd() || c.Key() >= v {
		return
	}
	if c.bLive() {
		c.b.SeekGE(v)
		c.skipDeleted()
	}
	if c.aLive() {
		c.a.SeekGE(v)
	}
}

// ProbeGap is Relation.ProbeGap over the overlay's merged contents: walk
// the three tries level by level, treating a base node as present only
// while its subtree is not fully deleted, and report gap endpoints as the
// tightest visible neighbours across the base and adds sides. Semantics
// match the flat reference exactly (the overlay differential tests pin
// this).
func (o *Overlay) ProbeGap(point []int64) (Gap, bool) {
	if o.pristine() {
		return o.base.ProbeGap(point)
	}
	arity := o.rel.arity
	if len(point) != arity {
		panic("relation: ProbeGap point length mismatch")
	}
	bLo, bHi := int32(0), int32(len(o.base.levels[0].vals))
	bOk := true
	var aLo, aHi int32
	aOk := o.addsT != nil
	if aOk {
		aHi = int32(len(o.addsT.levels[0].vals))
	}
	var dLo, dHi int32
	dOk := o.delsT != nil
	if dOk {
		dHi = int32(len(o.delsT.levels[0].vals))
	}
	for col := 0; col < arity; col++ {
		v := point[col]
		var bPos, aPos, dPos int32
		bHas, aHas, dHas := false, false, false
		var bvals, avals, dvals []int64
		if bOk {
			bvals = o.base.levels[col].vals
			bPos = lowerBound64(bvals, bLo, bHi, v)
			bHas = bPos < bHi && bvals[bPos] == v
		}
		if dOk {
			dvals = o.delsT.levels[col].vals
			dPos = lowerBound64(dvals, dLo, dHi, v)
			dHas = dPos < dHi && dvals[dPos] == v
		}
		bVis := bHas && !(dHas && o.delsT.levels[col].span(dPos) == o.base.levels[col].span(bPos))
		if aOk {
			avals = o.addsT.levels[col].vals
			aPos = lowerBound64(avals, aLo, aHi, v)
			aHas = aPos < aHi && avals[aPos] == v
		}
		if bVis || aHas {
			if col+1 < arity {
				if bVis {
					bLo, bHi = o.base.levels[col+1].start[bPos], o.base.levels[col+1].start[bPos+1]
				} else {
					bOk = false
				}
				if dOk = bVis && dHas; dOk {
					dLo, dHi = o.delsT.levels[col+1].start[dPos], o.delsT.levels[col+1].start[dPos+1]
				}
				if aHas {
					aLo, aHi = o.addsT.levels[col+1].start[aPos], o.addsT.levels[col+1].start[aPos+1]
				} else {
					aOk = false
				}
			}
			continue
		}
		g := Gap{Col: col, Lo: NegInf, Hi: PosInf}
		if aOk {
			if aPos > aLo {
				g.Lo = avals[aPos-1]
			}
			if aPos < aHi {
				g.Hi = avals[aPos]
			}
		}
		if bOk {
			for i := bPos - 1; i >= bLo; i-- {
				if o.baseVisible(col, i, dOk, dLo, dHi) {
					if bvals[i] > g.Lo {
						g.Lo = bvals[i]
					}
					break
				}
			}
			lub := bPos
			if bHas { // present in base but fully deleted
				lub++
			}
			for i := lub; i < bHi; i++ {
				if o.baseVisible(col, i, dOk, dLo, dHi) {
					if bvals[i] < g.Hi {
						g.Hi = bvals[i]
					}
					break
				}
			}
		}
		return g, false
	}
	return Gap{}, true
}

// baseVisible reports whether base node i at the given level survives the
// dels log (its subtree is not fully deleted).
func (o *Overlay) baseVisible(col int, i int32, dOk bool, dLo, dHi int32) bool {
	if !dOk {
		return true
	}
	dvals := o.delsT.levels[col].vals
	k := o.base.levels[col].vals[i]
	dp := lowerBound64(dvals, dLo, dHi, k)
	if dp < dHi && dvals[dp] == k && o.delsT.levels[col].span(dp) == o.base.levels[col].span(i) {
		return false
	}
	return true
}
