// Command analytics demonstrates the unification the paper argues for
// (§1: "it would be desirable to have one engine that is able to perform
// well for join processing in both of these different analytics settings"):
// pattern matching through the join engines and navigational/graph-style
// processing (the paper's §6 future work: BFS, shortest paths, PageRank)
// over the same relational substrate.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"repro"
	"repro/internal/graphalgo"
)

func main() {
	ctx := context.Background()
	g := repro.GenerateGraph(repro.HolmeKim, 5_000, 30_000, 19)
	fmt.Printf("graph: %d nodes, %d edges\n\n", g.Nodes(), g.Edges())

	// Relational side: pattern counting with the worst-case-optimal join.
	// Each query is compiled once; the handles stay valid for the life of
	// the graph's physical design and can be executed again at will.
	triQ, err := g.Prepare(repro.Triangles(), repro.Options{Algorithm: "lftj"})
	if err != nil {
		log.Fatal(err)
	}
	cycQ, err := g.Prepare(repro.Cycles(4), repro.Options{Algorithm: "lftj"})
	if err != nil {
		log.Fatal(err)
	}
	tri, err := triQ.Count(ctx)
	if err != nil {
		log.Fatal(err)
	}
	cycles, err := cycQ.Count(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("patterns: %d triangles, %d ordered 4-cycles\n", tri, cycles)

	// Navigational side: the same edge relation drives graph algorithms.
	adj, err := graphalgo.BuildAdjacency(g.DB())
	if err != nil {
		log.Fatal(err)
	}
	dist, err := adj.BFS(ctx, 0)
	if err != nil {
		log.Fatal(err)
	}
	maxHop, reached := 0, 0
	for _, d := range dist {
		reached++
		if d > maxHop {
			maxHop = d
		}
	}
	fmt.Printf("BFS from 0: %d reachable, eccentricity %d\n", reached, maxHop)

	if path, ok, _ := adj.ShortestPath(ctx, 0, int64(g.Nodes()-1)); ok {
		fmt.Printf("shortest path 0 -> %d: %d hops\n", g.Nodes()-1, len(path)-1)
	}

	rank, err := adj.PageRank(ctx, 0.85, 30)
	if err != nil {
		log.Fatal(err)
	}
	type vr struct {
		v int64
		r float64
	}
	top := make([]vr, 0, len(rank))
	for v, r := range rank {
		top = append(top, vr{v, r})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].r > top[j].r })
	fmt.Println("top-5 PageRank vertices:")
	for _, e := range top[:5] {
		fmt.Printf("  node %-6d %.5f\n", e.v, e.r)
	}
}
