package core

import (
	"fmt"
	"math"

	"repro/internal/query"
	"repro/internal/relation"
)

// VarBound is a half-open interval [Lo, Hi) of admissible values for one GAO
// depth, compiled from the query's constant comparison predicates. Engines
// push it into the trie cursors as a seek bound (SeekGE to Lo, stop at Hi)
// instead of post-filtering.
type VarBound struct {
	Lo, Hi int64
}

// Trivial reports whether the bound admits the whole storage domain.
func (b VarBound) Trivial() bool { return b.Lo <= 0 && b.Hi >= relation.PosInf }

// ResidualPred is a comparison predicate that cannot be expressed as a
// per-depth seek bound (it spans two variables, or is a disequality),
// compiled to GAO positions. It is checked as soon as both sides are bound.
type ResidualPred struct {
	LPos int         // GAO position of the left variable
	Op   query.CmpOp // comparison operator
	RPos int         // GAO position of the right variable, -1 for a constant
	RVal int64       // constant right-hand side when RPos == -1
	// Depth is the deepest GAO position the predicate reads; the binding
	// prefix [0..Depth] decides it.
	Depth int
}

// Eval evaluates the predicate against a (partial) binding in GAO order.
// binding must cover Depth.
func (r ResidualPred) Eval(binding []int64) bool {
	l := binding[r.LPos]
	rv := r.RVal
	if r.RPos >= 0 {
		rv = binding[r.RPos]
	}
	switch r.Op {
	case query.OpEq:
		return l == rv
	case query.OpNe:
		return l != rv
	case query.OpLt:
		return l < rv
	case query.OpLe:
		return l <= rv
	case query.OpGt:
		return l > rv
	case query.OpGe:
		return l >= rv
	}
	return false
}

// Pushdown is the compiled selection/projection shape of an extended query
// under a concrete GAO. A nil *Pushdown means plain natural-join execution.
type Pushdown struct {
	// Bounds[d] restricts GAO depth d to [Lo, Hi); nil when every depth is
	// unrestricted.
	Bounds []VarBound
	// Residuals are the predicates left to evaluate during enumeration,
	// ordered by Depth so engines can check each at the shallowest level
	// that binds it.
	Residuals []ResidualPred
	// Prefix, when non-zero, restricts emission to the leading Prefix GAO
	// positions with early duplicate elimination: once a binding of the
	// prefix is emitted, the engine skips the rest of that prefix's subtree
	// instead of enumerating (and deduplicating) full bindings.
	Prefix int
}

// ResidualsAt returns the residual predicates decided exactly at depth d.
func (ps *Pushdown) ResidualsAt(d int) []ResidualPred {
	if ps == nil {
		return nil
	}
	lo := 0
	for lo < len(ps.Residuals) && ps.Residuals[lo].Depth < d {
		lo++
	}
	hi := lo
	for hi < len(ps.Residuals) && ps.Residuals[hi].Depth == d {
		hi++
	}
	return ps.Residuals[lo:hi]
}

func incSat(v int64) int64 {
	if v == math.MaxInt64 {
		return v
	}
	return v + 1
}

// CompilePushdown compiles a query's predicates and projection against a
// concrete GAO. Constant comparisons other than != become per-depth seek
// bounds; disequalities and variable-variable comparisons become residual
// filters. Projection (including the implicit projection of aggregate
// queries) requires the GAO to lead with the query's output prefix in
// execution order — that prefix ordering is what makes early duplicate
// elimination a local prefix-advance and keeps the emission order identical
// across engines.
func CompilePushdown(q *query.Query, gao []string) (*Pushdown, error) {
	if !q.Extended() {
		return nil, nil
	}
	pos := make(map[string]int, len(gao))
	for i, v := range gao {
		pos[v] = i
	}
	bounds := make([]VarBound, len(gao))
	for i := range bounds {
		bounds[i] = VarBound{Lo: 0, Hi: relation.PosInf}
	}
	var residuals []ResidualPred
	for _, p := range q.Preds {
		lp, ok := pos[p.Left]
		if !ok {
			return nil, fmt.Errorf("core: predicate %s over variable outside the GAO %v: %w", p, gao, ErrUnboundVar)
		}
		if !p.IsVar {
			if p.Op == query.OpNe {
				residuals = append(residuals, ResidualPred{LPos: lp, Op: p.Op, RPos: -1, RVal: p.Const, Depth: lp})
				continue
			}
			b := &bounds[lp]
			switch p.Op {
			case query.OpEq:
				b.Lo = max(b.Lo, p.Const)
				b.Hi = min(b.Hi, incSat(p.Const))
			case query.OpLt:
				b.Hi = min(b.Hi, p.Const)
			case query.OpLe:
				b.Hi = min(b.Hi, incSat(p.Const))
			case query.OpGt:
				b.Lo = max(b.Lo, incSat(p.Const))
			case query.OpGe:
				b.Lo = max(b.Lo, p.Const)
			default:
				return nil, fmt.Errorf("core: unknown comparison operator %q", p.Op)
			}
			continue
		}
		rp, ok := pos[p.Right]
		if !ok {
			return nil, fmt.Errorf("core: predicate %s over variable outside the GAO %v: %w", p, gao, ErrUnboundVar)
		}
		if !query.ValidOp(p.Op) {
			return nil, fmt.Errorf("core: unknown comparison operator %q", p.Op)
		}
		residuals = append(residuals, ResidualPred{LPos: lp, Op: p.Op, RPos: rp, Depth: max(lp, rp)})
	}
	any := false
	for _, b := range bounds {
		if !b.Trivial() {
			any = true
			break
		}
	}
	if !any {
		bounds = nil
	}
	prefix := 0
	if q.PrefixOrdered() {
		vars := q.Vars()
		for i := 0; i < q.Prefix(); i++ {
			if gao[i] != vars[i] {
				return nil, fmt.Errorf("core: projected/aggregate query %q requires a GAO leading with its output prefix %v, got %v", q.Name, vars[:q.Prefix()], gao)
			}
		}
		if q.Projected() {
			prefix = q.Prefix()
		}
	}
	if bounds == nil && residuals == nil && prefix == 0 {
		return nil, nil
	}
	// Order residuals by depth so engines can slice them per level.
	for i := 1; i < len(residuals); i++ {
		for j := i; j > 0 && residuals[j-1].Depth > residuals[j].Depth; j-- {
			residuals[j-1], residuals[j] = residuals[j], residuals[j-1]
		}
	}
	return &Pushdown{Bounds: bounds, Residuals: residuals, Prefix: prefix}, nil
}
