package genericjoin

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/lftj"
	"repro/internal/query"
	"repro/internal/testutil"
)

func count(t *testing.T, e core.Engine, q *query.Query, db *core.DB) int64 {
	t.Helper()
	n, err := e.Count(context.Background(), q, db)
	if err != nil {
		t.Fatalf("%s Count(%s): %v", e.Name(), q.Name, err)
	}
	return n
}

func TestTriangleOnK4(t *testing.T) {
	db := testutil.GraphDB(testutil.K4, nil)
	if got := count(t, Engine{}, query.Clique(3), db); got != 4 {
		t.Errorf("triangles(K4) = %d, want 4", got)
	}
	if got := count(t, Engine{}, query.Clique(4), db); got != 1 {
		t.Errorf("4-cliques(K4) = %d, want 1", got)
	}
}

func TestDifferentialVsLFTJ(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		db := testutil.RandomGraphDB(rng, 4+rng.Intn(10), 2+rng.Intn(25), 2)
		for _, q := range testutil.BenchmarkQueries() {
			want := count(t, lftj.Engine{}, q, db)
			if got := count(t, Engine{}, q, db); got != want {
				t.Errorf("trial %d %s: genericjoin = %d, lftj = %d", trial, q.Name, got, want)
			}
		}
	}
}

func TestGAOOverride(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := testutil.RandomGraphDB(rng, 10, 30, 2)
	q := query.Path(3)
	want := count(t, Engine{}, q, db)
	if got := count(t, Engine{GAO: []string{"d", "c", "b", "a"}}, q, db); got != want {
		t.Errorf("reversed GAO: %d, want %d", got, want)
	}
	e := Engine{GAO: []string{"a"}}
	if _, err := e.Count(context.Background(), q, db); err == nil {
		t.Error("short GAO should fail")
	}
}

func TestEarlyStop(t *testing.T) {
	db := testutil.GraphDB(testutil.K4, nil)
	n := 0
	if err := (Engine{}).Enumerate(context.Background(), query.Clique(3), db, func([]int64) bool {
		n++
		return false
	}); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("early stop enumerated %d", n)
	}
}

func TestCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := testutil.RandomGraphDB(rng, 150, 3000, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (Engine{}).Count(ctx, query.Clique(4), db); err == nil {
		t.Error("cancelled context should error")
	}
}
