package server_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/client"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/server"
)

// corpus is the full named-query set of the paper's §5.1 evaluation — the
// same corpus the in-process differential tests run.
func corpus() []*repro.Query {
	return []*repro.Query{
		query.Clique(3),
		query.Clique(4),
		query.Cycle(4),
		query.Path(3),
		query.Path(4),
		query.Tree(1),
		query.Tree(2),
		query.Comb(),
		query.Lollipop(2),
		query.Lollipop(3),
	}
}

// serve starts srv on a loopback listener and returns its address; the
// server is torn down with the test.
func serve(t *testing.T, srv *server.Server) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; !errors.Is(err, server.ErrServerClosed) {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
	})
	return l.Addr().String()
}

// dial connects a client to addr, closed with the test.
func dial(t *testing.T, addr string, opts ...client.Option) *client.Store {
	t.Helper()
	s, err := client.Dial(context.Background(), addr, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// collect drains an Enumerate into owned rows.
func collect(ctx context.Context, enumerate func(context.Context, func([]int64) bool) error) ([][]int64, error) {
	var rows [][]int64
	err := enumerate(ctx, func(t []int64) bool {
		rows = append(rows, append([]int64(nil), t...))
		return true
	})
	return rows, err
}

// TestRemoteDifferential is the acceptance differential: a remote client
// must produce byte-identical results to the local Store across the full
// query corpus × both trie-driven engines × every index backend — same
// counts, same rows, same order.
func TestRemoteDifferential(t *testing.T) {
	ctx := context.Background()
	g := repro.GenerateGraph(repro.HolmeKim, 150, 520, 3)
	g.SetSelectivity(15, 5)
	st := g.Store()
	remote := dial(t, serve(t, server.NewSingle(st)))
	for _, q := range corpus() {
		for _, alg := range []repro.Algorithm{repro.LFTJ, repro.MS} {
			for _, backend := range []repro.Backend{repro.BackendFlat, repro.BackendCSR, repro.BackendCSRSharded} {
				t.Run(fmt.Sprintf("%s/%s/%s", q.Name, alg, backend), func(t *testing.T) {
					opts := repro.Options{Algorithm: alg, Workers: 1, Backend: backend}
					lp, err := st.Prepare(q, opts)
					if err != nil {
						t.Fatalf("local prepare: %v", err)
					}
					rp, err := remote.Prepare(q, opts)
					if err != nil {
						t.Fatalf("remote prepare: %v", err)
					}
					defer rp.Close()
					if lp.Algorithm() != rp.Algorithm() {
						t.Fatalf("algorithm: local %q, remote %q", lp.Algorithm(), rp.Algorithm())
					}
					ln, err := lp.Count(ctx)
					if err != nil {
						t.Fatalf("local count: %v", err)
					}
					rn, err := rp.Count(ctx)
					if err != nil {
						t.Fatalf("remote count: %v", err)
					}
					if ln != rn {
						t.Fatalf("count: local %d, remote %d", ln, rn)
					}
					lrows, err := collect(ctx, lp.Enumerate)
					if err != nil {
						t.Fatalf("local enumerate: %v", err)
					}
					rrows, err := collect(ctx, rp.Enumerate)
					if err != nil {
						t.Fatalf("remote enumerate: %v", err)
					}
					if len(lrows) != len(rrows) {
						t.Fatalf("rows: local %d, remote %d", len(lrows), len(rrows))
					}
					for i := range lrows {
						if relation.CompareTuples(lrows[i], rrows[i]) != 0 {
							t.Fatalf("row %d: local %v, remote %v (order must match)", i, lrows[i], rrows[i])
						}
					}
				})
			}
		}
	}
}

// TestRemoteTxnUnderChurn is the transactional half of the acceptance
// differential: a remote read-transaction opened before a server-side write
// stream must keep answering from its pinned snapshot — agreeing with a
// local transaction opened at the same point — while fresh (non-transaction)
// reads on both sides track the writes.
func TestRemoteTxnUnderChurn(t *testing.T) {
	ctx := context.Background()
	g := repro.GenerateGraph(repro.BarabasiAlbert, 300, 1200, 7)
	g.SetSelectivity(10, 3)
	st := g.Store()
	remote := dial(t, serve(t, server.NewSingle(st)))

	queries := []*repro.Query{query.Clique(3), query.Path(3), query.Cycle(4)}
	opts := repro.Options{Workers: 1} // default engine, default (CSR) backend
	var locals []*repro.Prepared
	var remotes []repro.PreparedQuery
	baseline := make([]int64, len(queries))
	for i, q := range queries {
		lp, err := st.Prepare(q, opts)
		if err != nil {
			t.Fatal(err)
		}
		rp, err := remote.Prepare(q, opts)
		if err != nil {
			t.Fatal(err)
		}
		locals, remotes = append(locals, lp), append(remotes, rp)
		if baseline[i], err = lp.Count(ctx); err != nil {
			t.Fatal(err)
		}
	}

	ltxn := st.ReadTxn()
	rtxn, err := remote.ReadTxn()
	if err != nil {
		t.Fatal(err)
	}

	// Server-side churn while both transactions stay open.
	done := make(chan struct{})
	go func() {
		defer close(done)
		rng := rand.New(rand.NewSource(99))
		for b := 0; b < 25; b++ {
			var ins, del [][2]int64
			for k := 0; k < 4; k++ {
				e := [2]int64{int64(rng.Intn(300)), int64(rng.Intn(300))}
				if e[0] == e[1] {
					continue
				}
				if rng.Intn(2) == 0 {
					ins = append(ins, e)
				} else {
					del = append(del, e)
				}
			}
			if err := g.ApplyEdges(ins, del); err != nil {
				t.Errorf("ApplyEdges: %v", err)
				return
			}
		}
	}()

	for round := 0; round < 8; round++ {
		for i := range queries {
			ln, err := ltxn.Count(ctx, locals[i])
			if err != nil {
				t.Fatalf("local txn count: %v", err)
			}
			rn, err := rtxn.Count(ctx, remotes[i])
			if err != nil {
				t.Fatalf("remote txn count: %v", err)
			}
			if ln != baseline[i] || rn != baseline[i] {
				t.Fatalf("%s round %d: txn counts local %d remote %d, want pinned %d",
					queries[i].Name, round, ln, rn, baseline[i])
			}
		}
	}
	<-done

	// Rows through the transaction agree too (same snapshot both sides).
	lrows, err := collect(ctx, func(ctx context.Context, emit func([]int64) bool) error {
		return ltxn.Enumerate(ctx, locals[0], emit)
	})
	if err != nil {
		t.Fatal(err)
	}
	rrows, err := collect(ctx, func(ctx context.Context, emit func([]int64) bool) error {
		return rtxn.Enumerate(ctx, remotes[0], emit)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(lrows) != len(rrows) {
		t.Fatalf("txn rows: local %d, remote %d", len(lrows), len(rrows))
	}
	for i := range lrows {
		if relation.CompareTuples(lrows[i], rrows[i]) != 0 {
			t.Fatalf("txn row %d: local %v, remote %v", i, lrows[i], rrows[i])
		}
	}

	// Fresh reads on both sides see the post-churn state (CSR handles stay
	// current under Apply) and agree with each other.
	for i := range queries {
		ln, err := locals[i].Count(ctx)
		if err != nil {
			t.Fatal(err)
		}
		rn, err := remotes[i].Count(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if ln != rn {
			t.Fatalf("%s fresh count: local %d, remote %d", queries[i].Name, ln, rn)
		}
	}
	if err := rtxn.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRemoteConcurrentClients drives N goroutine clients — each its own
// connection — through Prepare/Count/Rows/Batch against one server under
// live ApplyEdges churn, asserting snapshot consistency during the churn and
// agreement with the local Store oracle once it quiesces. CI runs this under
// the race detector.
func TestRemoteConcurrentClients(t *testing.T) {
	ctx := context.Background()
	g := repro.GenerateGraph(repro.BarabasiAlbert, 200, 800, 11)
	g.SetSelectivity(10, 3)
	st := g.Store()
	addr := serve(t, server.NewSingle(st))

	queries := []*repro.Query{query.Clique(3), query.Path(3)}
	opts := repro.Options{Workers: 1}

	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		rng := rand.New(rand.NewSource(4242))
		for b := 0; b < 60; b++ {
			var ins, del [][2]int64
			for k := 0; k < 3; k++ {
				e := [2]int64{int64(rng.Intn(200)), int64(rng.Intn(200))}
				if e[0] == e[1] {
					continue
				}
				if rng.Intn(2) == 0 {
					ins = append(ins, e)
				} else {
					del = append(del, e)
				}
			}
			if err := g.ApplyEdges(ins, del); err != nil {
				t.Errorf("ApplyEdges: %v", err)
				return
			}
		}
	}()

	const clients = 6
	errs := make(chan error, clients)
	finals := make([][]int64, clients)
	var wg sync.WaitGroup
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			fail := func(format string, args ...any) {
				select {
				case errs <- fmt.Errorf("client %d: "+format, append([]any{ci}, args...)...):
				default:
				}
			}
			c, err := client.Dial(ctx, addr)
			if err != nil {
				fail("dial: %v", err)
				return
			}
			defer c.Close()
			var preps []repro.PreparedQuery
			for _, q := range queries {
				p, err := c.Prepare(q, opts)
				if err != nil {
					fail("prepare: %v", err)
					return
				}
				preps = append(preps, p)
			}
			running := true
			for running {
				select {
				case <-writerDone:
					running = false
				default:
				}
				// Transaction self-consistency: two reads of the same query
				// inside one snapshot agree, under any interleaving of writes.
				txn, err := c.ReadTxn()
				if err != nil {
					fail("begin: %v", err)
					return
				}
				n1, err1 := txn.Count(ctx, preps[0])
				n2, err2 := txn.Count(ctx, preps[0])
				if err1 != nil || err2 != nil {
					fail("txn counts: %v, %v", err1, err2)
					return
				}
				if n1 != n2 {
					fail("txn not snapshot-consistent: %d then %d", n1, n2)
					return
				}
				if err := txn.Close(); err != nil {
					fail("end: %v", err)
					return
				}
				// Batch shares one snapshot: the repeated request must agree.
				results, err := c.Batch(ctx, []repro.BatchRequest{
					{Prepared: preps[0]}, {Prepared: preps[1]}, {Prepared: preps[0]},
				})
				if err != nil {
					fail("batch: %v", err)
					return
				}
				for i, r := range results {
					if r.Err != nil {
						fail("batch result %d: %v", i, r.Err)
						return
					}
				}
				if results[0].Count != results[2].Count {
					fail("batch not snapshot-consistent: %d vs %d", results[0].Count, results[2].Count)
					return
				}
				// Streaming with early termination exercises cancel under load.
				rows := 0
				for range preps[1].Rows(ctx) {
					rows++
					if rows == 3 {
						break
					}
				}
			}
			// Quiesced: fresh counts must match the local oracle.
			finals[ci] = make([]int64, len(queries))
			for i, p := range preps {
				n, err := p.Count(ctx)
				if err != nil {
					fail("final count: %v", err)
					return
				}
				finals[ci][i] = n
			}
		}(ci)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	for i, q := range queries {
		want, err := st.Count(ctx, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		for ci := 0; ci < clients; ci++ {
			if finals[ci][i] != want {
				t.Errorf("client %d %s: final count %d, local oracle %d", ci, q.Name, finals[ci][i], want)
			}
		}
	}
}

// TestRemoteRowsEarlyStop is the acceptance streaming check: a client that
// stops after k rows must stop the server-side execution — verified through
// the engine's Outputs counter, which lives server-side on the prepared
// handle — and the connection stays usable afterwards.
func TestRemoteRowsEarlyStop(t *testing.T) {
	ctx := context.Background()
	g := repro.GenerateGraph(repro.BarabasiAlbert, 300, 1200, 5)
	g.SetSelectivity(4, 1) // thousands of paths — far more than the client consumes
	st := g.Store()
	// Tiny chunks and a tiny credit window so the server cannot run far
	// ahead of the consumer.
	remote := dial(t, serve(t, server.NewSingle(st)), client.WithStreamTuning(4, 2))

	q := query.Path(3)
	opts := repro.Options{Workers: 1}
	total, err := st.Count(ctx, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if total < 1000 {
		t.Fatalf("test graph too small for a streaming test: %d paths", total)
	}

	rp, err := remote.Prepare(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for range rp.Rows(ctx) {
		got++
		if got == 5 {
			break
		}
	}
	if got != 5 {
		t.Fatalf("received %d rows, want 5", got)
	}
	stats, err := rp.(*client.Prepared).StatsErr(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Outputs < 5 {
		t.Fatalf("server Outputs = %d, want >= 5", stats.Outputs)
	}
	if stats.Outputs >= total/2 {
		t.Fatalf("server kept producing after the client stopped: Outputs = %d of %d", stats.Outputs, total)
	}

	// The stream's cancel must not poison the connection: a full pass now
	// delivers every row.
	rows, err := collect(ctx, rp.Enumerate)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(rows)) != total {
		t.Fatalf("full enumerate after early stop: %d rows, want %d", len(rows), total)
	}
}

// TestRemoteRowsContextCancel cancels the client context mid-stream: the
// enumeration must return the context error, the server must stop producing,
// and the connection must survive.
func TestRemoteRowsContextCancel(t *testing.T) {
	g := repro.GenerateGraph(repro.BarabasiAlbert, 300, 1200, 6)
	g.SetSelectivity(4, 1)
	st := g.Store()
	remote := dial(t, serve(t, server.NewSingle(st)), client.WithStreamTuning(4, 2))

	q := query.Path(3)
	opts := repro.Options{Workers: 1}
	total, err := st.Count(context.Background(), q, opts)
	if err != nil {
		t.Fatal(err)
	}

	rp, err := remote.Prepare(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	seen := 0
	err = rp.Enumerate(ctx, func([]int64) bool {
		seen++
		if seen == 3 {
			cancel()
		}
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("enumerate after cancel: %v, want context.Canceled", err)
	}
	stats, err := rp.(*client.Prepared).StatsErr(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Outputs >= total/2 {
		t.Fatalf("server kept producing after cancel: Outputs = %d of %d", stats.Outputs, total)
	}
	// The connection survives the cancellation.
	if _, err := rp.Count(context.Background()); err != nil {
		t.Fatalf("count after cancelled stream: %v", err)
	}
}

// TestShutdownDrains pins the graceful-shutdown contract: draining refuses
// new requests while in-flight streams finish (or the drain deadline cuts
// them off), and Serve reports ErrServerClosed.
func TestShutdownDrains(t *testing.T) {
	ctx := context.Background()
	g := repro.GenerateGraph(repro.BarabasiAlbert, 300, 1200, 7)
	g.SetSelectivity(4, 1)
	srv := server.NewSingle(g.Store())
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()

	streamer, err := client.Dial(ctx, l.Addr().String(), client.WithStreamTuning(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer streamer.Close()
	bystander, err := client.Dial(ctx, l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer bystander.Close()

	q := query.Path(3)
	sp, err := streamer.Prepare(q, repro.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	bp, err := bystander.Prepare(q, repro.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Park a stream mid-flight: the emit callback blocks until released, so
	// the request is provably in flight when Shutdown begins.
	firstRow := make(chan struct{})
	release := make(chan struct{})
	streamErr := make(chan error, 1)
	go func() {
		n := 0
		streamErr <- sp.Enumerate(ctx, func([]int64) bool {
			n++
			if n == 1 {
				close(firstRow)
				<-release
			}
			return true
		})
	}()
	<-firstRow

	// Shutdown with a short deadline: the parked stream cannot drain, so
	// Shutdown must return the deadline error after force-closing.
	shutCtx, shutCancel := context.WithTimeout(ctx, 300*time.Millisecond)
	defer shutCancel()
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srv.Shutdown(shutCtx) }()

	// While draining, already-connected clients get a typed refusal for new
	// requests. Poll briefly: Shutdown's draining flag flips concurrently.
	deadline := time.After(2 * time.Second)
	for {
		_, err := bp.Count(ctx)
		if errors.Is(err, client.ErrShuttingDown) {
			break
		}
		if err != nil {
			// The drain deadline may already have closed the connection.
			break
		}
		select {
		case <-deadline:
			t.Fatal("draining server kept accepting requests")
		case <-time.After(10 * time.Millisecond):
		}
	}

	if err := <-shutdownDone; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown with parked stream: %v, want DeadlineExceeded", err)
	}
	close(release)
	if err := <-streamErr; err == nil {
		t.Error("parked stream survived a forced shutdown")
	}
	if err := <-serveDone; !errors.Is(err, server.ErrServerClosed) {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	// New connections are refused outright.
	if _, err := client.Dial(ctx, l.Addr().String()); err == nil {
		t.Fatal("dial after shutdown succeeded")
	}
}

// TestMultiTenant pins the store registry: connections bind to the store
// they name, schemas stay isolated, and unknown names are refused with the
// typed sentinel.
func TestMultiTenant(t *testing.T) {
	social := repro.NewStore()
	if err := social.DefineRelation("follows", 2); err != nil {
		t.Fatal(err)
	}
	if err := social.Load("follows", [][]int64{{1, 2}, {2, 3}, {1, 3}}); err != nil {
		t.Fatal(err)
	}
	road := repro.NewStore()
	if err := road.DefineRelation("road", 2); err != nil {
		t.Fatal(err)
	}
	addr := serve(t, server.New(server.Config{Stores: map[string]*repro.Store{
		"social": social,
		"road":   road,
	}}))

	ctx := context.Background()
	cs := dial(t, addr, client.WithStore("social"))
	cr := dial(t, addr, client.WithStore("road"))
	if got := cs.Relations(); len(got) != 1 || got[0] != "follows" {
		t.Fatalf("social schema = %v", got)
	}
	if got := cr.Relations(); len(got) != 1 || got[0] != "road" {
		t.Fatalf("road schema = %v", got)
	}
	q, err := cs.ParseQuery("fof", "follows(a,b), follows(b,c)")
	if err != nil {
		t.Fatal(err)
	}
	n, err := cs.Count(ctx, q, repro.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 { // 1->2->3 is the only two-hop
		t.Fatalf("fof count = %d, want 1", n)
	}
	if _, err := cr.ParseQuery("fof", "follows(a,b), follows(b,c)"); !errors.Is(err, repro.ErrUnknownRelation) {
		t.Fatalf("cross-tenant relation leak: %v", err)
	}
	if _, err := client.Dial(ctx, addr, client.WithStore("nope")); !errors.Is(err, client.ErrUnknownStore) {
		t.Fatalf("unknown store: %v, want ErrUnknownStore", err)
	}
}
