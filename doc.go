// Package repro is a from-scratch Go reproduction of "Join Processing for
// Graph Patterns: An Old Dog with New Tricks" (Nguyen, Aref, Bravenboer,
// Kollias, Ngo, Ré, Rudra; arXiv:1503.04169, 2015): the first practical
// implementation and empirical evaluation of worst-case-optimal (Leapfrog
// Triejoin) and beyond-worst-case (Minesweeper / #Minesweeper) join
// algorithms on graph-pattern workloads.
//
// # Prepare once, execute repeatedly
//
// The API follows the lifecycle the paper assumes of its host system
// (LogicBlox): a query is compiled once against a fixed physical design —
// validated, its global attribute order (GAO) fixed, every atom bound to a
// GAO-consistent index (§4.1) — and the compiled plan is then executed
// repeatedly:
//
//	g := repro.GenerateGraph(repro.BarabasiAlbert, 10_000, 50_000, 1)
//	p, err := g.Prepare(repro.Triangles(), repro.Options{Algorithm: "lftj"})
//	n, err := p.Count(ctx)            // pure execution, no re-planning
//	for row := range p.Rows(ctx) {    // streaming iterator; break stops early
//		...
//	}
//	fmt.Print(p.Explain())            // GAO, per-atom index, AGM bound
//	st := p.Stats()                   // unified counters across executions
//
// A Prepared handle is safe for concurrent use and pins the physical design
// it was compiled against; compiled plans are also cached on the store
// (keyed on query shape × algorithm × backend × GAO, invalidated when a
// relation they read is replaced), so re-preparing an unchanged shape is
// cheap. One-shot helpers (Count, Enumerate, CountWithStats) remain as thin
// wrappers over Prepare.
//
// # General schemas: Store
//
// Graph exposes the paper's fixed §5.1 benchmark schema (edge, fwd,
// v1..v4). Store is the general layer underneath it — the same
// generalization step from fixed benchmark patterns to arbitrary
// graph-pattern workloads: the caller defines named relations of any arity,
// bulk-loads and incrementally mutates them, and queries them with
// schema-checked parsing over that schema. Directed graphs, edge-labeled
// graphs (one relation per label, or a ternary relation with the label as
// a column), and arbitrary n-ary relations are all ordinary schemas:
//
//	s := repro.NewStore()
//	err := s.DefineRelation("follows", 2)
//	err = s.Load("follows", tuples)          // bulk load (replaces)
//	err = s.Apply("follows", ins, dels)      // incremental; plans stay valid
//	q, err := s.ParseQuery("fof", "follows(a, b), follows(b, c)")
//	p, err := s.Prepare(q, repro.Options{})
//
// ParseQuery accepts an optional rule head — "out(b, a) :- e(a, b)" — that
// names the query and fixes the output variable order; unknown relations,
// arity mismatches, and unbound head variables fail eagerly with typed
// errors. Graph is a thin wrapper over Store (Graph.Store exposes the
// benchmark schema as a store).
//
// Store.ReadTxn returns a snapshot read-transaction: every execution
// through it observes the single index state pinned when the transaction
// began, regardless of concurrent Apply batches — several counts and row
// streams that must agree with each other run inside one transaction.
// Store.Batch executes many prepared queries concurrently against one
// shared snapshot under a worker budget (the serving regime: prepare once,
// batch the point lookups). Store.ApplyAll applies update batches to
// several relations as one atomic write — no snapshot ever observes the
// relations torn.
//
// # Local and remote deployment
//
// The Querier interface is the deployment seam: it covers the Store
// surface (schema operations, ParseQuery, Prepare, ReadTxn, Batch) with
// implementation-neutral handle types (PreparedQuery, QueryTxn), and has
// two constructors — repro.Local(store) for in-process use, and
// client.Dial (package repro/client) for a connection to a graphjoind
// server (package repro/server; cmd/graphjoind). Queries then execute
// server-side against shared indexes, with streaming flow-controlled Rows,
// remote snapshot transactions, and typed errors that survive the wire for
// errors.Is. Remote execution is differential-tested to produce
// byte-identical results to local execution.
//
// # Durability
//
// NewStore is in-memory; OpenStore roots a store in a directory and makes
// acknowledged writes crash-safe. Every mutation is appended to a
// write-ahead log and fsynced per DurabilityOptions.Sync before it
// returns — "group" (the default) shares fsyncs among concurrent writers
// through a group-commit leader, "always" syncs each commit, and "none"
// trades durability of the most recent writes for in-memory-like write
// latency (recovery is still never corrupted). Store.Checkpoint snapshots
// the relations and prunes the log; Store.Close ends persistence. On open,
// recovery loads the newest valid snapshot and replays the log tail
// through the same delta path live writes take, reporting what it found
// (and any dropped torn tail from an unclean shutdown) via RecoveryInfo.
//
// Deployment notes: give each store its own directory on a local
// filesystem (graphjoind -data-dir does this per tenant, with a
// -checkpoint-every background ticker and a final checkpoint on drain, so
// clean restarts replay nothing); checkpoint roughly as often as the
// replay time you can afford at startup; and treat RecoveryInfo.TailErr
// as an operational signal — the store is consistent, but the previous
// process died uncleanly.
//
// # Storage and index backends
//
// Relations are immutable, lexicographically sorted tuple sets over int64
// domains (internal/relation). Every atom of a compiled query is bound to a
// GAO-consistent index — the relation with its columns permuted into global
// attribute order (§4.1) — and those indexes are served through a pluggable
// backend (Options.Backend) implementing the trie contract the paper's
// engines assume:
//
//   - "csr" (default) — a materialized CSR attribute trie (one contiguous
//     key array per level plus child-offset arrays, the TrieJax/EmptyHeaded
//     layout): cursor Open/Next are O(1) array arithmetic, SeekGE gallops
//     over a dense cache-resident array, and gap probes run one bounded
//     binary search per level. Built once per index at Prepare time for up
//     to ~1.5·arity·n extra keys of memory, and maintained incrementally:
//     update batches (DB.ApplyDelta, driven by the incremental views) fold
//     into a small sorted delta overlay — an adds log plus delete
//     tombstones merged at cursor level and compacted past a threshold —
//     so an update costs time proportional to the small log, not an
//     O(arity·n) trie rebuild, and compiled
//     plans stay valid across updates.
//   - "csr-sharded" — the CSR trie partitioned into disjoint shards by
//     contiguous ranges of the first GAO attribute. Sequential execution
//     matches "csr"; the §4.10 parallel Count maps its jobs one-to-one
//     onto shard ranges and each worker binds only its own shard —
//     physically disjoint indexes, no shared-array contention between
//     cores, and no per-execution scan to derive job cut points. Atoms
//     whose index does not lead on the first GAO attribute bind plain CSR
//     tries (sharding would not help them). Rebuilt, not overlaid, on
//     updates.
//   - "flat" — the sorted rows themselves; trie-cursor moves and
//     Minesweeper's LUB/GLB gap probes re-derive child ranges by binary
//     search over row ranges on each operation. Zero extra memory and
//     build cost; the reference implementation the other backends are
//     differential-tested against.
//
// Pick "csr-sharded" for parallel Counts on multi-core hardware, "flat"
// for one-shot queries on memory-tight settings, and the "csr" default
// otherwise — including under incremental view maintenance.
// BenchmarkBackend and BenchmarkBackendParallel in bench_test.go track the
// speedups; all backends must produce identical results on the whole query
// corpus, including under parallel execution and view maintenance
// (backend_diff_test.go).
//
// # Engines
//
//   - "lftj" — Leapfrog Triejoin, worst-case optimal (paper §2.2);
//   - "ms" — Minesweeper with the constraint data structure and all of the
//     paper's Ideas 1–8 (paper §2.3, §4), beyond-worst-case optimal for
//     β-acyclic queries;
//   - "hybrid" — Minesweeper on the acyclic part + LFTJ on the clique part
//     for lollipop queries (paper §4.12);
//   - "psql" / "monetdb" — Selinger-style pairwise baselines (row-store DP
//     optimizer / column-store greedy bulk execution);
//   - "yannakakis" — the classical linear-time algorithm for acyclic joins;
//   - "graphlab" — a specialized parallel clique counter;
//   - "genericjoin" — the paper's Algorithm 1, an implementation ablation.
//
// The lftj, ms, and genericjoin engines execute pinned compiled plans; the
// remaining engines re-derive their internal state per run but share the
// same Prepared interface and unified stats surface.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// regenerated tables and figures.
package repro
