package pairwise

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/lftj"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/testutil"
)

func count(t *testing.T, e core.Engine, q *query.Query, db *core.DB) int64 {
	t.Helper()
	n, err := e.Count(context.Background(), q, db)
	if err != nil {
		t.Fatalf("%s Count(%s): %v", e.Name(), q.Name, err)
	}
	return n
}

func TestTriangleOnK4(t *testing.T) {
	db := testutil.GraphDB(testutil.K4, nil)
	for _, fl := range []Flavor{DP, Greedy} {
		if got := count(t, Engine{Opts: Options{Flavor: fl}}, query.Clique(3), db); got != 4 {
			t.Errorf("flavor %d: triangles(K4) = %d, want 4", fl, got)
		}
	}
}

func TestDifferentialVsLFTJ(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 6; trial++ {
		db := testutil.RandomGraphDB(rng, 4+rng.Intn(8), 2+rng.Intn(20), 2)
		for _, q := range testutil.BenchmarkQueries() {
			want := count(t, lftj.Engine{}, q, db)
			for _, fl := range []Flavor{DP, Greedy} {
				if got := count(t, Engine{Opts: Options{Flavor: fl}}, q, db); got != want {
					t.Errorf("trial %d %s flavor %d: pairwise = %d, lftj = %d", trial, q.Name, fl, got, want)
				}
			}
		}
	}
}

func TestEnumerateMatchesLFTJ(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := testutil.RandomGraphDB(rng, 10, 30, 2)
	q := query.Path(3)
	var want, got [][]int64
	if err := (lftj.Engine{}).Enumerate(context.Background(), q, db, collect(&want)); err != nil {
		t.Fatal(err)
	}
	if err := (Engine{}).Enumerate(context.Background(), q, db, collect(&got)); err != nil {
		t.Fatal(err)
	}
	sortTuples(want)
	sortTuples(got)
	if len(want) != len(got) {
		t.Fatalf("enumerated %d, want %d", len(got), len(want))
	}
	for i := range want {
		if relation.CompareTuples(want[i], got[i]) != 0 {
			t.Fatalf("tuple %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func collect(out *[][]int64) func([]int64) bool {
	return func(tu []int64) bool {
		*out = append(*out, append([]int64(nil), tu...))
		return true
	}
}

func sortTuples(ts [][]int64) {
	sort.Slice(ts, func(i, j int) bool { return relation.CompareTuples(ts[i], ts[j]) < 0 })
}

func TestMemoryBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db := testutil.RandomGraphDB(rng, 50, 600, 2)
	e := Engine{Opts: Options{MaxRows: 100}}
	_, err := e.Count(context.Background(), query.Clique(4), db)
	if !errors.Is(err, ErrMemoryExceeded) {
		t.Errorf("err = %v, want ErrMemoryExceeded", err)
	}
}

func TestCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db := testutil.RandomGraphDB(rng, 150, 4000, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (Engine{}).Count(ctx, query.Clique(4), db); err == nil {
		t.Error("cancelled context should surface an error")
	}
}

func TestSingleAtom(t *testing.T) {
	db := testutil.GraphDB(testutil.K4, nil)
	q := query.New("edges", query.Atom{Rel: query.Fwd, Vars: []string{"a", "b"}})
	if got := count(t, Engine{}, q, db); got != 6 {
		t.Errorf("single atom count = %d, want 6", got)
	}
}

func TestEstimatorSanity(t *testing.T) {
	// Join of R(a,b) with S(b,c), both 100 rows, 10 distinct b on each side:
	// estimate 100*100/10 = 1000.
	l := stat{card: 100, distinct: map[string]float64{"a": 100, "b": 10}}
	r := stat{card: 100, distinct: map[string]float64{"b": 10, "c": 100}}
	est := estJoin(l, r)
	if est.card != 1000 {
		t.Errorf("estJoin card = %v, want 1000", est.card)
	}
	if est.distinct["b"] != 10 {
		t.Errorf("shared distinct = %v, want 10", est.distinct["b"])
	}
}

// TestDPPrefersSampleFirst3Path: the §5.2.1 observation — for 3-path with
// small samples, a good pairwise plan starts from the samples rather than
// self-joining the edge relation. The DP optimizer must not begin with an
// edge-edge join.
func TestDPPrefersSampleFirst3Path(t *testing.T) {
	q := query.Path(3)
	// Samples tiny, edges huge.
	stats := []stat{
		{card: 5, distinct: map[string]float64{"a": 5}},
		{card: 5, distinct: map[string]float64{"d": 5}},
		{card: 1e6, distinct: map[string]float64{"a": 1e4, "b": 1e4}},
		{card: 1e6, distinct: map[string]float64{"b": 1e4, "c": 1e4}},
		{card: 1e6, distinct: map[string]float64{"c": 1e4, "d": 1e4}},
	}
	order := dpOrder(stats)
	if order[0] != 0 && order[0] != 1 {
		t.Errorf("DP starts with atom %d (%s), want a sample atom", order[0], q.Atoms[order[0]])
	}
}

func TestMissingRelation(t *testing.T) {
	db := core.NewDB()
	if _, err := (Engine{}).Count(context.Background(), query.Clique(3), db); err == nil {
		t.Error("missing relation should error")
	}
}
