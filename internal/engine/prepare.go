package engine

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/minesweeper"
	"repro/internal/query"
)

// Prepare compiles q once for the configured engine and returns the engine
// pinned to the compiled plan: validation, GAO resolution, and index binding
// happen here (or are answered from the DB's plan cache) and never again on
// Count/Enumerate. Algorithms without a plan representation (the pairwise
// baselines, Yannakakis, GraphLab, and the hybrid) are validated and
// returned unplanned — plan is nil and each run re-derives whatever internal
// state it needs. Counters for the compilation land on opts.Stats.
//
// The algorithm and backend names are validated eagerly here with typed
// errors (ErrUnknownAlgorithm, core.ErrUnknownBackend) — an unknown name
// never falls through to engine selection or index binding.
func Prepare(opts Options, q *query.Query, db *core.DB) (core.Engine, *core.Plan, error) {
	alg, err := ParseAlgorithm(string(opts.Algorithm))
	if err != nil {
		return nil, nil, err
	}
	opts.Algorithm = alg
	backend, err := core.ParseBackend(string(opts.Backend))
	if err != nil {
		return nil, nil, err
	}
	opts.Backend = backend
	if q.Extended() && alg != LFTJ && alg != MS {
		return nil, nil, fmt.Errorf("engine: query %q uses projection, predicates, or aggregates: %w (%q supports plain joins only; use lftj or ms)",
			q.Name, ErrUnsupportedQuery, alg)
	}
	switch opts.Algorithm {
	case LFTJ, MS, GenericJoin:
		plan, err := CompilePlan(opts, q, db)
		if err != nil {
			return nil, nil, err
		}
		opts.Plan = plan
		e, err := New(opts)
		return e, plan, err
	default:
		if err := q.Validate(); err != nil {
			return nil, nil, err
		}
		e, err := New(opts)
		return e, nil, err
	}
}

// ResolveGAO derives the global attribute order Prepare would fix for the
// query under these options, without touching any data: GAO resolution is
// purely structural (query shape plus planner toggles), so a coordinator can
// compute the order a remote host will execute under and partition or merge
// on its leading attribute. Mirrors CompilePlan's resolution exactly.
func ResolveGAO(opts Options, q *query.Query) ([]string, error) {
	alg, err := ParseAlgorithm(string(opts.Algorithm))
	if err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	userGAO := opts.GAO
	if alg == MS {
		if opts.MS.GAO != nil {
			userGAO = opts.MS.GAO
		}
		if userGAO == nil && q.PrefixOrdered() {
			userGAO = q.Vars()
		}
		msOpts := opts.MS
		msOpts.GAO = userGAO
		gao, _, _, err := minesweeper.ResolvePlan(q, msOpts)
		return gao, err
	}
	if userGAO != nil {
		return userGAO, nil
	}
	return q.Vars(), nil
}

// CompilePlan resolves the GAO and binds the GAO-consistent indexes for a
// plan-aware algorithm, consulting and populating the DB's plan cache. The
// cache key is the query shape × algorithm × index backend × user-supplied
// GAO (plus planner toggles that change compilation); entries are dropped
// when DB.Add replaces a relation the plan reads.
func CompilePlan(opts Options, q *query.Query, db *core.DB) (*core.Plan, error) {
	alg := opts.Algorithm
	if alg == "" {
		alg = LFTJ
	}
	backend, err := core.ParseBackend(string(opts.Backend))
	if err != nil {
		return nil, err
	}
	if alg == GenericJoin {
		// Generic join executes over flat row spans; see genericjoin.
		backend = core.BackendFlat
	}
	userGAO := opts.GAO
	variant := ""
	if alg == MS {
		if opts.MS.GAO != nil {
			userGAO = opts.MS.GAO
		}
		if opts.MS.DisableSkeleton {
			variant = "noskel"
		}
		if userGAO == nil && q.PrefixOrdered() {
			// Projected/aggregate queries must enumerate grouped by the
			// output prefix; pin Minesweeper to the query's own variable
			// order instead of the hypergraph-chosen one. (LFTJ's default
			// GAO is already q.Vars().)
			userGAO = q.Vars()
		}
	}
	key := core.PlanKey(string(alg), variant, backend, userGAO, q)
	p, version, ok := db.CachedPlan(key)
	if ok {
		opts.Stats.Add(core.Stats{PlanCacheHits: 1})
		return p, nil
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	var gao []string
	var inSkel []bool
	betaCyclic := false
	switch alg {
	case MS:
		msOpts := opts.MS
		msOpts.GAO = userGAO
		var err error
		gao, inSkel, betaCyclic, err = minesweeper.ResolvePlan(q, msOpts)
		if err != nil {
			return nil, err
		}
	default:
		gao = userGAO
		if gao == nil {
			gao = q.Vars()
		}
		_, acyclic := hypergraph.FindChainGAO(q.Vars(), q.Atoms)
		betaCyclic = !acyclic
	}
	opts.Stats.Add(core.Stats{GAODerivations: 1})
	plan, err := core.NewPlan(q, db, string(alg), gao, inSkel, betaCyclic, backend, opts.Stats)
	if err != nil {
		return nil, err
	}
	db.StorePlan(key, plan, version)
	opts.Stats.Add(core.Stats{PlanCacheMisses: 1})
	return plan, nil
}
