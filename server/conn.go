package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/wire"
)

// errUnknownStore aliases the wire sentinel so server.go stays
// protocol-agnostic.
var errUnknownStore = wire.ErrUnknownStore

// errStreamCancelled marks a Rows stream stopped by a client Cancel frame
// (distinct from the request context being cancelled server-side).
var errStreamCancelled = errors.New("server: stream cancelled by client")

// Flow-control bounds for Rows streams. The client proposes chunk size and
// initial credit in its Rows request; the server clamps both into a sane
// range so a hostile peer can neither force huge frames nor disable flow
// control.
const (
	defaultChunkRows = 256
	maxChunkRows     = 1 << 16
	defaultCredit    = 8
	maxCredit        = 1 << 10
)

// conn is one client connection: its store binding, its prepared-statement
// and transaction tables, and the bookkeeping that lets concurrently running
// requests be cancelled and Rows streams be flow-controlled.
type conn struct {
	srv *Server
	nc  net.Conn

	// wmu serializes frame writes: responses from concurrent request
	// goroutines and stream chunks interleave at frame granularity.
	wmu sync.Mutex
	bw  *bufio.Writer

	// ctx is cancelled when the connection closes; per-request contexts
	// derive from it, so force-closing a connection cancels its work.
	ctx    context.Context
	cancel context.CancelFunc

	store     repro.Querier
	storeName string
	// sm/adm/lt are the bound store's instrumentation, admission gate (nil =
	// unlimited), and lease tracker, fixed at handshake.
	sm  *storeMetrics
	adm *admission
	lt  *leaseTracker

	mu       sync.Mutex
	prepared map[uint64]repro.PreparedQuery
	txns     map[uint64]repro.QueryTxn
	nextPrep uint64
	nextTxn  uint64
	// requests maps in-flight request ids to their cancel functions (for
	// client Cancel frames); streams maps Rows request ids to their
	// flow-control state (for Credit frames).
	requests map[uint64]context.CancelFunc
	streams  map[uint64]*stream
	// leaseToks maps transaction ids to their lease-tracker tokens so the
	// lease-age gauges drop a lease at End or connection teardown.
	leaseToks map[uint64]uint64
}

func newConn(srv *Server, nc net.Conn) *conn {
	ctx, cancel := context.WithCancel(context.Background())
	return &conn{
		srv:       srv,
		nc:        nc,
		bw:        bufio.NewWriter(nc),
		ctx:       ctx,
		cancel:    cancel,
		prepared:  make(map[uint64]repro.PreparedQuery),
		txns:      make(map[uint64]repro.QueryTxn),
		requests:  make(map[uint64]context.CancelFunc),
		streams:   make(map[uint64]*stream),
		leaseToks: make(map[uint64]uint64),
	}
}

// close tears the connection down: in-flight requests see their contexts
// cancelled and the read loop unblocks.
func (c *conn) close() {
	c.cancel()
	c.nc.Close()
}

// send writes one frame under the write lock.
func (c *conn) send(typ byte, reqID uint64, body []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := wire.WriteFrame(c.bw, typ, reqID, body); err != nil {
		return err
	}
	return c.bw.Flush()
}

func (c *conn) sendOK(reqID uint64) error { return c.send(wire.TOK, reqID, nil) }

func (c *conn) sendErr(reqID uint64, err error) error {
	return c.send(wire.TErr, reqID, wire.EncodeErr(err))
}

// serve runs the connection: the Hello exchange binds a store, then the read
// loop dispatches requests. Control frames (Credit, Cancel) are handled
// inline — they steer goroutines that may be blocked — and every other
// request runs in its own goroutine so one long Count never delays another
// request's cancellation.
func (c *conn) serve() {
	defer func() {
		c.close()
		c.srv.removeConn(c)
		if c.sm != nil {
			c.sm.connections.Dec()
		}
		if c.lt != nil {
			// Leases die with the connection; drop them from the age gauges.
			c.mu.Lock()
			toks := make([]uint64, 0, len(c.leaseToks))
			for _, tok := range c.leaseToks {
				toks = append(toks, tok)
			}
			c.leaseToks = nil
			c.mu.Unlock()
			for _, tok := range toks {
				c.lt.remove(tok)
			}
		}
		// Release backend-held resources. Local handles hold none; a routed
		// backend frees its downstream prepared entries and snapshot leases.
		c.mu.Lock()
		txns := make([]repro.QueryTxn, 0, len(c.txns))
		for _, t := range c.txns {
			txns = append(txns, t)
		}
		preps := make([]repro.PreparedQuery, 0, len(c.prepared))
		for _, p := range c.prepared {
			preps = append(preps, p)
		}
		// Fresh maps rather than nil: a request goroutine still draining may
		// insert a late handle, which must not panic (it is simply dropped
		// with the conn).
		c.txns = make(map[uint64]repro.QueryTxn)
		c.prepared = make(map[uint64]repro.PreparedQuery)
		c.mu.Unlock()
		for _, t := range txns {
			t.Close()
		}
		for _, p := range preps {
			p.Close()
		}
	}()
	br := bufio.NewReader(c.nc)
	if !c.handshake(br) {
		return
	}
	for {
		typ, reqID, body, err := wire.ReadFrame(br)
		if err != nil {
			// A hangup is the normal end of a connection; anything else is
			// a protocol-level problem worth surfacing to the operator.
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				c.srv.logf("conn %s: read: %v", c.nc.RemoteAddr(), err)
			}
			return
		}
		switch typ {
		case wire.TCredit:
			d := wire.NewDec(body)
			n := d.Int()
			if d.Err() == nil {
				c.creditStream(reqID, n)
			}
		case wire.TCancel:
			c.cancelRequest(reqID)
		default:
			if !c.srv.startRequest() {
				c.sendErr(reqID, wire.ErrShuttingDown)
				continue
			}
			rctx, rcancel := context.WithCancel(c.ctx)
			c.mu.Lock()
			c.requests[reqID] = rcancel
			c.mu.Unlock()
			go func(typ byte, reqID uint64, body []byte) {
				defer c.srv.inflight.Done()
				defer func() {
					c.mu.Lock()
					delete(c.requests, reqID)
					c.mu.Unlock()
					rcancel()
				}()
				c.dispatch(rctx, typ, reqID, body)
			}(typ, reqID, body)
		}
	}
}

// handshake performs the Hello exchange; on failure it answers with the
// error and reports false so the connection closes.
func (c *conn) handshake(br *bufio.Reader) bool {
	typ, reqID, body, err := wire.ReadFrame(br)
	if err != nil {
		return false
	}
	if typ != wire.THello {
		c.sendErr(reqID, fmt.Errorf("server: expected Hello, got frame 0x%02x: %w", typ, wire.ErrProtocol))
		return false
	}
	d := wire.NewDec(body)
	version := d.U64()
	storeName := d.Str()
	if d.Err() != nil {
		c.sendErr(reqID, fmt.Errorf("server: malformed Hello: %w", wire.ErrProtocol))
		return false
	}
	if version != wire.ProtocolVersion {
		c.sendErr(reqID, fmt.Errorf("server: client speaks protocol %d, server %d: %w",
			version, wire.ProtocolVersion, wire.ErrVersion))
		return false
	}
	store, name, err := c.srv.lookupStore(storeName)
	if err != nil {
		c.sendErr(reqID, err)
		return false
	}
	c.store, c.storeName = store, name
	c.sm = c.srv.metrics[name]
	c.adm = c.srv.admissions[name]
	c.lt = c.srv.leases[name]
	if c.sm != nil {
		c.sm.connections.Inc()
	}
	var e wire.Enc
	e.U64(wire.ProtocolVersion)
	return c.send(wire.THelloOK, reqID, e.Bytes()) == nil
}

// cancelRequest serves a client Cancel frame: it cancels the in-flight
// request's context and, for Rows requests, marks the stream cancelled so a
// producer blocked on credit wakes up.
func (c *conn) cancelRequest(target uint64) {
	c.mu.Lock()
	cancel := c.requests[target]
	st := c.streams[target]
	c.mu.Unlock()
	if st != nil {
		st.cancelClient()
	}
	if cancel != nil {
		cancel()
	}
}

func (c *conn) creditStream(target uint64, n int) {
	c.mu.Lock()
	st := c.streams[target]
	c.mu.Unlock()
	if st != nil && n > 0 {
		st.add(n)
	}
}

// dispatch runs one request through admission control and the metrics
// envelope. Admission runs here — in the request's own goroutine, never the
// connection read loop — so a queued request cannot block the Credit and
// Cancel frames that unblock requests already running. The requests_total
// increment happens before the handler (and thus before any response frame),
// so a scrape taken after a client received all its responses matches the
// client's request count exactly.
func (c *conn) dispatch(ctx context.Context, typ byte, reqID uint64, body []byte) {
	if err := c.adm.acquire(ctx); err != nil {
		if c.sm != nil {
			c.sm.rejected.Inc()
		}
		c.sendErr(reqID, err)
		return
	}
	defer c.adm.release()
	c.sm.admitted(typ)
	// Protocol v4: every dispatched request leads with a trace context. A
	// client-traced request opens a root span parented at the client's span;
	// an untraced one is sampled into an internal trace when the slow-query
	// log needs span trees. tr == nil is the common fast path.
	d := wire.NewDec(body)
	traceID, parentSpan := wire.DecodeTraceContext(d)
	if d.Err() != nil {
		c.sendErr(reqID, fmt.Errorf("server: malformed trace context: %w", wire.ErrProtocol))
		return
	}
	body = d.Rest()
	var tr *trace.Trace
	var root *trace.Span
	switch {
	case traceID != 0:
		tr = trace.New(trace.ID(traceID))
	case c.srv.traces.sampler.Sample():
		tr = trace.New(trace.NewID())
	}
	if tr != nil {
		root = tr.StartSpan(trace.SpanID(parentSpan), "server."+requestName(typ))
		ctx = trace.NewContext(ctx, root)
	}
	start := time.Now()
	err := c.handle(ctx, typ, reqID, body)
	c.sm.done(typ, start, err)
	root.End()
	c.srv.traces.observe(c.storeName, requestName(typ), tr, time.Since(start), err)
	if err != nil {
		c.sendErr(reqID, err)
	}
}

// handle answers one request, returning the error to answer it with (nil
// when the handler already sent its response). Failures answer only this
// request (TErr under its request id); the connection keeps serving.
func (c *conn) handle(ctx context.Context, typ byte, reqID uint64, body []byte) error {
	var err error
	switch typ {
	case wire.TDefine:
		err = c.handleDefine(reqID, body)
	case wire.TLoad:
		err = c.handleLoad(reqID, body)
	case wire.TApply:
		err = c.handleApply(reqID, body)
	case wire.TApplyAll:
		err = c.handleApplyAll(reqID, body)
	case wire.TParse:
		err = c.handleParse(reqID, body)
	case wire.TPrepare:
		err = c.handlePrepare(ctx, reqID, body)
	case wire.TClosePrepared:
		err = c.handleClosePrepared(reqID, body)
	case wire.TCount:
		err = c.handleCount(ctx, reqID, body)
	case wire.TRows:
		err = c.handleRows(ctx, reqID, body)
	case wire.TBegin:
		err = c.handleBegin(reqID)
	case wire.TEnd:
		err = c.handleEnd(reqID, body)
	case wire.TBatch:
		err = c.handleBatch(ctx, reqID, body)
	case wire.TStats:
		err = c.handleStats(reqID, body)
	case wire.TExplain:
		err = c.handleExplain(ctx, reqID, body)
	case wire.TRelations:
		err = c.handleRelations(ctx, reqID)
	case wire.TMetrics:
		err = c.handleMetrics(reqID)
	case wire.TTrace:
		err = c.handleTrace(ctx, reqID, body)
	default:
		err = fmt.Errorf("server: unknown frame type 0x%02x: %w", typ, wire.ErrProtocol)
	}
	return err
}

// decodeErr wraps a payload-decoding failure as a protocol error.
func decodeErr(d *wire.Dec) error {
	return fmt.Errorf("server: malformed request: %v: %w", d.Err(), wire.ErrProtocol)
}

// fingerprintSpan attaches the plan fingerprint (query source form and
// engine) to the request's root span — what the slow-query log keys on.
func fingerprintSpan(ctx context.Context, p repro.PreparedQuery) {
	if sp := trace.FromContext(ctx); sp != nil {
		sp.SetStr("query", p.Query().String())
		sp.SetStr("algorithm", p.Algorithm())
	}
}

func (c *conn) handleDefine(reqID uint64, body []byte) error {
	d := wire.NewDec(body)
	name := d.Str()
	arity := d.Int()
	if d.Err() != nil {
		return decodeErr(d)
	}
	if err := c.store.DefineRelation(name, arity); err != nil {
		return err
	}
	return c.sendOK(reqID)
}

func (c *conn) handleLoad(reqID uint64, body []byte) error {
	d := wire.NewDec(body)
	name := d.Str()
	tuples := d.Tuples()
	if d.Err() != nil {
		return decodeErr(d)
	}
	if err := c.store.Load(name, tuples); err != nil {
		return err
	}
	return c.sendOK(reqID)
}

func (c *conn) handleApply(reqID uint64, body []byte) error {
	d := wire.NewDec(body)
	name := d.Str()
	ins := d.Tuples()
	dels := d.Tuples()
	if d.Err() != nil {
		return decodeErr(d)
	}
	if err := c.store.Apply(name, ins, dels); err != nil {
		return err
	}
	return c.sendOK(reqID)
}

func (c *conn) handleApplyAll(reqID uint64, body []byte) error {
	d := wire.NewDec(body)
	n := d.Count()
	batches := make(map[string][]repro.Delta, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		name := d.Str()
		var deltas []repro.Delta
		for _, t := range d.Tuples() {
			deltas = append(deltas, repro.Delta{Tuple: t})
		}
		for _, t := range d.Tuples() {
			deltas = append(deltas, repro.Delta{Tuple: t, Delete: true})
		}
		batches[name] = append(batches[name], deltas...)
	}
	if d.Err() != nil {
		return decodeErr(d)
	}
	if err := c.store.ApplyAll(batches); err != nil {
		return err
	}
	return c.sendOK(reqID)
}

func (c *conn) handleParse(reqID uint64, body []byte) error {
	d := wire.NewDec(body)
	name := d.Str()
	src := d.Str()
	if d.Err() != nil {
		return decodeErr(d)
	}
	q, err := c.store.ParseQuery(name, src)
	if err != nil {
		return err
	}
	var e wire.Enc
	wire.FromQuery(q).Encode(&e)
	return c.send(wire.TParseOK, reqID, e.Bytes())
}

func (c *conn) handlePrepare(ctx context.Context, reqID uint64, body []byte) error {
	d := wire.NewDec(body)
	wq := wire.DecodeQuery(d)
	opts := wire.DecodeOptions(d)
	if d.Err() != nil {
		return decodeErr(d)
	}
	q, err := wq.ToQuery()
	if err != nil {
		return err
	}
	_, sp := trace.Start(ctx, "prepare")
	p, err := c.store.Prepare(q, opts)
	if sp != nil {
		if err == nil {
			// The planning block moves only at Prepare time, so the handle's
			// counters are exactly this compilation's plan-cache and
			// index-binding work.
			st := p.Stats()
			sp.SetStr("query", p.Query().String())
			sp.SetStr("algorithm", p.Algorithm())
			sp.SetInt("plan_cache_hits", st.PlanCacheHits)
			sp.SetInt("plan_cache_misses", st.PlanCacheMisses)
			sp.SetInt("index_bindings", st.IndexBindings)
		}
		sp.End()
	}
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.nextPrep++
	handle := c.nextPrep
	c.prepared[handle] = p
	c.mu.Unlock()
	var e wire.Enc
	e.U64(handle)
	e.Str(p.Algorithm())
	return c.send(wire.TPrepareOK, reqID, e.Bytes())
}

func (c *conn) handleClosePrepared(reqID uint64, body []byte) error {
	d := wire.NewDec(body)
	handle := d.U64()
	if d.Err() != nil {
		return decodeErr(d)
	}
	c.mu.Lock()
	p, ok := c.prepared[handle]
	delete(c.prepared, handle)
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("server: close of handle %d: %w", handle, wire.ErrUnknownHandle)
	}
	if err := p.Close(); err != nil {
		return err
	}
	return c.sendOK(reqID)
}

// lookupPrepared resolves a prepared-statement handle.
func (c *conn) lookupPrepared(handle uint64) (repro.PreparedQuery, error) {
	c.mu.Lock()
	p, ok := c.prepared[handle]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("server: handle %d: %w", handle, wire.ErrUnknownHandle)
	}
	return p, nil
}

// lookupTxn resolves a transaction id; id 0 means "no transaction".
func (c *conn) lookupTxn(id uint64) (repro.QueryTxn, error) {
	if id == 0 {
		return nil, nil
	}
	c.mu.Lock()
	t, ok := c.txns[id]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("server: transaction %d: %w", id, wire.ErrUnknownTxn)
	}
	return t, nil
}

func (c *conn) handleCount(ctx context.Context, reqID uint64, body []byte) error {
	d := wire.NewDec(body)
	handle := d.U64()
	txnID := d.U64()
	if d.Err() != nil {
		return decodeErr(d)
	}
	p, err := c.lookupPrepared(handle)
	if err != nil {
		return err
	}
	t, err := c.lookupTxn(txnID)
	if err != nil {
		return err
	}
	fingerprintSpan(ctx, p)
	var n int64
	if t != nil {
		n, err = t.Count(ctx, p)
	} else {
		n, err = p.Count(ctx)
	}
	if err != nil {
		return err
	}
	var e wire.Enc
	e.I64(n)
	return c.send(wire.TCountOK, reqID, e.Bytes())
}

func (c *conn) handleBegin(reqID uint64) error {
	t, err := c.store.ReadTxn()
	if err != nil {
		return err
	}
	var tok uint64
	if c.lt != nil {
		tok = c.lt.add()
	}
	c.mu.Lock()
	c.nextTxn++
	id := c.nextTxn
	c.txns[id] = t
	if c.leaseToks != nil {
		c.leaseToks[id] = tok
	}
	c.mu.Unlock()
	var e wire.Enc
	e.U64(id)
	return c.send(wire.TBeginOK, reqID, e.Bytes())
}

func (c *conn) handleEnd(reqID uint64, body []byte) error {
	d := wire.NewDec(body)
	id := d.U64()
	if d.Err() != nil {
		return decodeErr(d)
	}
	c.mu.Lock()
	t, ok := c.txns[id]
	delete(c.txns, id)
	tok, hadTok := c.leaseToks[id]
	delete(c.leaseToks, id)
	c.mu.Unlock()
	if hadTok && c.lt != nil {
		c.lt.remove(tok)
	}
	if !ok {
		return fmt.Errorf("server: end of transaction %d: %w", id, wire.ErrUnknownTxn)
	}
	if err := t.Close(); err != nil {
		return err
	}
	return c.sendOK(reqID)
}

func (c *conn) handleBatch(ctx context.Context, reqID uint64, body []byte) error {
	d := wire.NewDec(body)
	// Count() validates against the remaining payload, so a corrupt frame
	// cannot size the allocation.
	n := d.Count()
	type slotReq struct {
		handle uint64
		rows   bool
	}
	reqs := make([]slotReq, n)
	for i := range reqs {
		reqs[i] = slotReq{handle: d.U64(), rows: d.Bool()}
	}
	if d.Err() != nil {
		return decodeErr(d)
	}
	// Unknown handles are isolated into their own results, exactly as Batch
	// isolates execution failures; the known ones run as one shared-snapshot
	// batch.
	results := make([]repro.Result, n)
	var batch []repro.BatchRequest
	var slots []int
	for i, r := range reqs {
		p, err := c.lookupPrepared(r.handle)
		if err != nil {
			results[i] = repro.Result{Err: err}
			continue
		}
		batch = append(batch, repro.BatchRequest{Prepared: p, Rows: r.rows})
		slots = append(slots, i)
	}
	batchRes, err := c.store.Batch(ctx, batch)
	if err != nil {
		return err
	}
	for j, res := range batchRes {
		results[slots[j]] = res
	}
	var e wire.Enc
	e.Int(len(results))
	for _, res := range results {
		e.I64(res.Count)
		e.Tuples(res.Rows)
		if res.Err != nil {
			e.Str(wire.ErrorCode(res.Err))
			e.Str(res.Err.Error())
		} else {
			e.Str("")
			e.Str("")
		}
	}
	return c.send(wire.TBatchOK, reqID, e.Bytes())
}

func (c *conn) handleStats(reqID uint64, body []byte) error {
	d := wire.NewDec(body)
	handle := d.U64()
	if d.Err() != nil {
		return decodeErr(d)
	}
	p, err := c.lookupPrepared(handle)
	if err != nil {
		return err
	}
	var e wire.Enc
	wire.EncodeStats(&e, p.Stats())
	return c.send(wire.TStatsOK, reqID, e.Bytes())
}

func (c *conn) handleExplain(ctx context.Context, reqID uint64, body []byte) error {
	d := wire.NewDec(body)
	handle := d.U64()
	if d.Err() != nil {
		return decodeErr(d)
	}
	p, err := c.lookupPrepared(handle)
	if err != nil {
		return err
	}
	// Explain is not part of the PreparedQuery seam; both known handle shapes
	// expose it with their own signatures (the local one synchronously, the
	// remote/routed one with a round trip).
	var text string
	switch h := p.(type) {
	case interface{ Explain() repro.Explanation }:
		text = h.Explain().String()
	case interface {
		Explain(context.Context) (string, error)
	}:
		text, err = h.Explain(ctx)
		if err != nil {
			return err
		}
	default:
		text = "explain unavailable for this handle"
	}
	var e wire.Enc
	e.Str(text)
	return c.send(wire.TExplainOK, reqID, e.Bytes())
}

// handleMetrics answers with the process metrics registry rendered in the
// Prometheus text format — the wire-level counterpart of the -metrics-addr
// HTTP endpoint, so clients (graphjoin -connect -stats) can inspect a server
// without a second listener.
func (c *conn) handleMetrics(reqID uint64) error {
	var sb strings.Builder
	if err := metrics.Default().WritePrometheus(&sb); err != nil {
		return err
	}
	var e wire.Enc
	e.Str(sb.String())
	return c.send(wire.TMetricsOK, reqID, e.Bytes())
}

func (c *conn) handleRelations(ctx context.Context, reqID uint64) error {
	infos, err := c.store.Schema(ctx)
	if err != nil {
		return err
	}
	var e wire.Enc
	e.Int(len(infos))
	for _, info := range infos {
		e.Str(info.Name)
		e.Int(info.Arity)
	}
	return c.send(wire.TRelationsOK, reqID, e.Bytes())
}
