#!/usr/bin/env sh
# benchgate.sh OLD NEW — benchmark regression gate.
#
# Compares two `go test -bench` outputs: for every benchmark name present in
# both files, the ns/op ratio new/old is computed, and the geometric mean of
# the ratios must not exceed 1 + BENCHGATE_MAX_REGRESSION (default 0.10,
# i.e. a >10% aggregate slowdown fails). Individual benchmarks are noisy at
# -benchtime=1x — the geomean across the whole suite is what gates.
#
# On the first run there is no previous artifact: a missing OLD file is not
# an error — the gate passes with a notice, so fresh clones, forks, and the
# first CI run of a repository go green. A missing NEW file is still a usage
# error (the caller forgot to produce the current run).
#
# Exit codes: 0 pass (or nothing comparable / first run), 1 regression,
# 2 usage error.
set -eu

if [ $# -ne 2 ]; then
    echo "usage: $0 old-bench.txt new-bench.txt" >&2
    exit 2
fi
old="$1"
new="$2"
max="${BENCHGATE_MAX_REGRESSION:-0.10}"

if [ ! -f "$new" ]; then
    echo "benchgate: current benchmark output $new not found" >&2
    exit 2
fi
if [ ! -f "$old" ]; then
    echo "benchgate: no previous benchmark artifact ($old) — first run, nothing to compare against; gate passes"
    exit 0
fi

# Extract "name ns_per_op" pairs. Benchmark lines look like:
#   BenchmarkFoo/bar-8   123   45678 ns/op   90 B/op   1 allocs/op
extract() {
    awk '/^Benchmark/ && / ns\/op/ {
        for (i = 1; i <= NF; i++) {
            if ($i == "ns/op") { print $1, $(i-1); break }
        }
    }' "$1"
}

extract "$old" | sort >/tmp/benchgate.old.$$
extract "$new" | sort >/tmp/benchgate.new.$$
trap 'rm -f /tmp/benchgate.old.$$ /tmp/benchgate.new.$$' EXIT

join /tmp/benchgate.old.$$ /tmp/benchgate.new.$$ | awk -v max="$max" '
    $2 > 0 && $3 > 0 {
        ratio = $3 / $2
        sumlog += log(ratio)
        n++
        if (ratio >= 1.5)      printf "  slower  %-60s %8.0f -> %8.0f ns/op (%.2fx)\n", $1, $2, $3, ratio
        else if (ratio <= 0.67) printf "  faster  %-60s %8.0f -> %8.0f ns/op (%.2fx)\n", $1, $2, $3, ratio
    }
    END {
        if (n == 0) {
            print "benchgate: no comparable benchmarks; skipping gate"
            exit 0
        }
        geomean = exp(sumlog / n)
        printf "benchgate: %d benchmarks, geomean ratio %.4f (gate: <= %.4f)\n", n, geomean, 1 + max
        if (geomean > 1 + max) {
            print "benchgate: FAIL — aggregate benchmark regression above threshold"
            exit 1
        }
        print "benchgate: OK"
    }'
