package repro

import (
	"context"
	"fmt"
	"iter"
	"strings"

	"repro/internal/agm"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/relation"
	"repro/internal/trace"
)

// Prepared is a compiled query pinned against a store's physical design:
// Prepare validates the query once, fixes the global attribute order, binds
// the GAO-consistent indexes (§4.1), and selects the engine — so every
// subsequent Count, Enumerate, or Rows call is pure execution. This is the
// lifecycle the paper assumes of LogicBlox: plan once against a fixed
// physical design, execute repeatedly (including under the §3 incremental-
// maintenance workloads).
//
// A Prepared handle is safe for concurrent use: the plan is immutable, every
// execution builds its own iterator and memo state, and the stats collector
// is synchronized. On the default CSR backend, incremental writes routed
// through Store.Apply advance the handle's indexes in place, so the handle
// keeps serving current data; handles on the flat and csr-sharded backends
// hold immutable indexes and keep serving their Prepare-time state after
// writes. Bulk replacements (Store.Load, SetSelectivity, SetSamples) swap
// whole relations and never re-point existing handles on any backend. In
// both cases, Prepare again to pick up the new design — the underlying plan
// cache makes re-preparing an unchanged shape cheap.
type Prepared struct {
	s       *Store
	q       *Query
	alg     string
	engOpts engine.Options
	eng     core.Engine
	plan    *core.Plan
	sc      *core.StatsCollector
	agg     *aggSpec
	// shardFilter, for a hash-sharded handle, keeps only the rows of this
	// shard's residue class; applied to the engine's emission before any
	// aggregation. nil otherwise (range shards restrict inside the engine).
	shardFilter func([]int64) bool
}

// prepare compiles the query against a store (schema checks already done by
// the callers). For the plan-aware algorithms (lftj, ms, genericjoin) the
// compiled plan is cached on the store's database — keyed on query shape ×
// algorithm × backend × GAO and invalidated when a relation it reads is
// replaced — so preparing the same shape twice reuses the first compilation.
func prepare(s *Store, q *Query, opts Options) (*Prepared, error) {
	if err := validateShard(opts); err != nil {
		return nil, err
	}
	sc := &core.StatsCollector{}
	engOpts := opts.engineOptions()
	engOpts.Stats = sc
	eng, plan, err := engine.Prepare(engOpts, q, s.db)
	if err != nil {
		return nil, err
	}
	engOpts.Plan = plan
	p := &Prepared{
		s:       s,
		q:       q,
		alg:     string(engOpts.Algorithm),
		engOpts: engOpts,
		eng:     eng,
		plan:    plan,
		sc:      sc,
		agg:     newAggSpec(q),
	}
	if sh := opts.Shard; sh != nil && sh.Kind == ShardHash {
		// The emitted row carries the leading GAO attribute at its q.Vars()
		// position (engines emit full or prefix rows in Vars() order, and a
		// prefix-ordered GAO leads with Vars()[0]).
		col := -1
		for i, v := range q.Vars() {
			if v == plan.GAO[0] {
				col = i
				break
			}
		}
		if col < 0 {
			return nil, fmt.Errorf("repro: shard attribute %q not an output of query %q", plan.GAO[0], q.Name)
		}
		mod, res := sh.Mod, sh.Res
		p.shardFilter = func(t []int64) bool {
			return core.ShardHash(t[col])%mod == res
		}
	}
	return p, nil
}

// validateShard rejects malformed shard specs eagerly, before compilation:
// only the plan-aware trie engines can restrict their execution to one
// partition of the output space.
func validateShard(opts Options) error {
	sh := opts.Shard
	if sh == nil {
		return nil
	}
	alg := opts.Algorithm
	if alg == "" {
		alg = LFTJ
	}
	if alg != LFTJ && alg != MS {
		return fmt.Errorf("repro: sharded execution: %w (%q cannot restrict its output space; use lftj or ms)",
			ErrUnsupportedQuery, alg)
	}
	switch sh.Kind {
	case ShardRange:
		if sh.Lo >= sh.Hi {
			return fmt.Errorf("repro: shard range [%d, %d) is empty", sh.Lo, sh.Hi)
		}
	case ShardHash:
		if sh.Mod < 1 || sh.Res >= sh.Mod {
			return fmt.Errorf("repro: shard residue %d mod %d out of range", sh.Res, sh.Mod)
		}
	default:
		return fmt.Errorf("repro: unknown shard kind %q", sh.Kind)
	}
	return nil
}

// Query returns the compiled query.
func (p *Prepared) Query() *Query { return p.q }

// Algorithm returns the engine the query was compiled for.
func (p *Prepared) Algorithm() string { return p.alg }

// Count executes the compiled plan and returns the number of result tuples.
// For aggregate queries that is the number of groups — one tuple per
// distinct binding of the output variables.
func (p *Prepared) Count(ctx context.Context) (int64, error) {
	return p.runCount(ctx, p.eng)
}

// Enumerate executes the compiled plan, streaming result tuples in output
// order: one value per q.Out() variable, then one per aggregate term (for
// plain queries that is q.Vars() order). emit returns false to stop early.
// The tuple slice is reused between calls — copy it to retain it.
func (p *Prepared) Enumerate(ctx context.Context, emit func([]int64) bool) error {
	return p.runEnumerate(ctx, p.eng, emit)
}

// rawEnumerate runs the engine's emission with the hash-shard filter (if
// any) applied — the stream every aggregation and count consumes.
func (p *Prepared) rawEnumerate(ctx context.Context, eng core.Engine, emit func([]int64) bool) error {
	if p.shardFilter == nil {
		return eng.Enumerate(ctx, p.q, p.s.db, emit)
	}
	return eng.Enumerate(ctx, p.q, p.s.db, func(t []int64) bool {
		if !p.shardFilter(t) {
			return true
		}
		return emit(t)
	})
}

// startEngineSpan opens the engine-stage span for one execution, returning
// a finish callback that attaches the run's core.Stats deltas (seeks,
// probes, memo hits, outputs — the per-atom seek-loop counters the engines
// already batch into the collector) before ending the span. On an untraced
// context both the span and the callback are free.
func (p *Prepared) startEngineSpan(ctx context.Context, stage string) (context.Context, func()) {
	ctx, sp := trace.Start(ctx, stage)
	if sp == nil {
		return ctx, func() {}
	}
	sp.SetStr("algorithm", p.alg)
	before := p.sc.Snapshot()
	return ctx, func() {
		d := p.sc.Snapshot().Sub(before)
		sp.SetInt("outputs", d.Outputs)
		if d.Seeks != 0 {
			sp.SetInt("seeks", d.Seeks)
		}
		if d.Probes != 0 {
			sp.SetInt("probes", d.Probes)
			sp.SetInt("probe_memo_hits", d.ProbeMemoHits)
		}
		if d.ReuseHits != 0 {
			sp.SetInt("reuse_hits", d.ReuseHits)
		}
		sp.End()
	}
}

// runCount executes the count path on an engine (the handle's own, or one
// pinned to a transaction snapshot): aggregate queries count groups, hash
// shards count their filtered emission, everything else uses the engine's
// count mode.
func (p *Prepared) runCount(ctx context.Context, eng core.Engine) (int64, error) {
	ctx, finish := p.startEngineSpan(ctx, "engine.count")
	defer finish()
	if p.agg != nil {
		return p.agg.count(func(emit func([]int64) bool) error {
			return p.rawEnumerate(ctx, eng, emit)
		})
	}
	if p.shardFilter != nil {
		var n int64
		err := p.rawEnumerate(ctx, eng, func([]int64) bool {
			n++
			return true
		})
		return n, err
	}
	return eng.Count(ctx, p.q, p.s.db)
}

// runEnumerate executes the enumeration path on an engine, folding the
// aggregation spec over the (possibly shard-filtered) emission.
func (p *Prepared) runEnumerate(ctx context.Context, eng core.Engine, emit func([]int64) bool) error {
	ctx, finish := p.startEngineSpan(ctx, "engine.enumerate")
	defer finish()
	if p.agg != nil {
		return p.agg.run(func(e func([]int64) bool) error {
			return p.rawEnumerate(ctx, eng, e)
		}, emit)
	}
	return p.rawEnumerate(ctx, eng, emit)
}

// Rows executes the compiled plan as a streaming iterator over result
// tuples, in the same output order as Enumerate. Each yielded slice is a fresh
// copy owned by the consumer. Breaking out of the range stops execution
// early. The sequence ends early if ctx is cancelled or the engine fails
// mid-stream; Rows discards that error, so callers that must distinguish a
// complete stream from a truncated one should use RowsErr (or Enumerate).
// For the compiled engines the only mid-stream failure is cancellation, so
// checking ctx.Err() after the loop suffices there; engines with runtime
// budgets (e.g. the pairwise baselines' MaxRows) can fail for other
// reasons.
func (p *Prepared) Rows(ctx context.Context) iter.Seq[[]int64] {
	return rowsSeq(p.Enumerate, ctx)
}

// RowsErr is Rows with an explicit error: it yields (tuple, nil) for every
// result and, if execution fails mid-stream, a final (nil, err) pair.
func (p *Prepared) RowsErr(ctx context.Context) iter.Seq2[[]int64, error] {
	return rowsErrSeq(p.Enumerate, ctx)
}

// rowsSeq adapts an Enumerate-shaped execution into a streaming iterator
// with owned tuple copies, discarding any mid-stream error (Prepared.Rows
// and Txn.Rows share it).
func rowsSeq(enumerate func(context.Context, func([]int64) bool) error, ctx context.Context) iter.Seq[[]int64] {
	return func(yield func([]int64) bool) {
		_ = enumerate(ctx, func(t []int64) bool {
			return yield(append([]int64(nil), t...))
		})
	}
}

// rowsErrSeq is rowsSeq with the explicit-error protocol: (tuple, nil) per
// result, and a final (nil, err) pair when execution fails before the
// consumer stopped.
func rowsErrSeq(enumerate func(context.Context, func([]int64) bool) error, ctx context.Context) iter.Seq2[[]int64, error] {
	return func(yield func([]int64, error) bool) {
		stopped := false
		err := enumerate(ctx, func(t []int64) bool {
			ok := yield(append([]int64(nil), t...), nil)
			stopped = !ok
			return ok
		})
		if err != nil && !stopped {
			yield(nil, err)
		}
	}
}

// Stats returns a snapshot of the unified execution counters accumulated by
// this handle: the planning block (plan-cache hits/misses, GAO derivations,
// index bindings) moves only at Prepare time; the execution block and the
// engine-specific counters accumulate across every Count/Enumerate/Rows run,
// for every engine.
func (p *Prepared) Stats() ExecStats { return p.sc.Snapshot() }

// AtomPlan describes how one query atom is physically bound in a compiled
// plan.
type AtomPlan struct {
	// Atom is the atom's source form, e.g. "edge(a, b)".
	Atom string
	// Index is the GAO-consistent index serving the atom: the relation with
	// its columns in GAO order.
	Index string
	// Rows is the index's tuple count.
	Rows int
	// InSkeleton reports membership in Minesweeper's §4.9 skeleton (always
	// true for engines without a skeleton notion).
	InSkeleton bool
}

// Explanation describes a compiled query: the fixed attribute order, the
// per-atom physical indexes, and the AGM worst-case output bound the
// worst-case-optimal engines are optimal against.
type Explanation struct {
	// Query is the query's source form.
	Query string
	// Algorithm is the selected engine.
	Algorithm string
	// Planned reports whether the engine executes a pinned compiled plan;
	// engines without a plan representation re-derive state per run.
	Planned bool
	// GAO is the resolved global attribute order (nil when not Planned).
	GAO []string
	// Backend is the index backend every atom is bound under (BackendFlat,
	// BackendCSR, or BackendCSRSharded; empty when not Planned).
	Backend Backend
	// BetaCyclic reports whether the query needed Minesweeper's skeleton
	// split (and drives the §4.10 parallel-granularity default).
	BetaCyclic bool
	// Atoms describes each atom's physical binding (nil when not Planned).
	Atoms []AtomPlan
	// Output names the result columns when the query projects or
	// aggregates: the head variables followed by the aggregate terms (nil
	// for plain full-binding queries).
	Output []string
	// Bounds renders the constant-predicate seek bounds pushed into the
	// trie cursors, one entry per constrained GAO variable.
	Bounds []string
	// Residuals renders the predicates that could not become seek bounds
	// and are evaluated as filters during enumeration.
	Residuals []string
	// Projection is the number of leading GAO variables emission is
	// restricted to (with early duplicate elimination); 0 when the engine
	// enumerates full bindings.
	Projection int
	// AGMBound is the Atserias–Grohe–Marx worst-case output bound on this
	// graph's relation sizes (0 when the LP is unavailable for the query).
	AGMBound float64
}

// String renders the explanation in a compact plan-tree-like layout.
func (e Explanation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "query %s\n", e.Query)
	fmt.Fprintf(&b, "engine %s", e.Algorithm)
	if !e.Planned {
		b.WriteString(" (unplanned: state derived per run)\n")
	} else {
		b.WriteString("\n")
		fmt.Fprintf(&b, "gao %s", strings.Join(e.GAO, " < "))
		if e.BetaCyclic {
			b.WriteString("  [beta-cyclic]")
		}
		b.WriteString("\n")
		if e.Backend != "" {
			fmt.Fprintf(&b, "backend %s\n", e.Backend)
		}
		for _, a := range e.Atoms {
			skel := ""
			if !a.InSkeleton {
				skel = "  [off-skeleton]"
			}
			fmt.Fprintf(&b, "  %-24s -> %s (%d tuples)%s\n", a.Atom, a.Index, a.Rows, skel)
		}
		if len(e.Bounds) > 0 {
			fmt.Fprintf(&b, "pushdown %s\n", strings.Join(e.Bounds, ", "))
		}
		if len(e.Residuals) > 0 {
			fmt.Fprintf(&b, "residual %s\n", strings.Join(e.Residuals, ", "))
		}
		if e.Projection > 0 {
			fmt.Fprintf(&b, "project %s  [early dedup]\n", strings.Join(e.GAO[:e.Projection], ", "))
		}
	}
	if len(e.Output) > 0 {
		fmt.Fprintf(&b, "output %s\n", strings.Join(e.Output, ", "))
	}
	if e.AGMBound > 0 {
		fmt.Fprintf(&b, "agm bound %.4g\n", e.AGMBound)
	}
	return b.String()
}

// Explain describes the compiled plan.
func (p *Prepared) Explain() Explanation {
	e := Explanation{
		Query:     p.q.String(),
		Algorithm: p.alg,
	}
	if sizes, err := relationSizes(p.s.db, p.q); err == nil {
		if res, err := agm.Compute(p.q, sizes); err == nil {
			e.AGMBound = res.Bound()
		}
	}
	plan := p.plan
	if plan == nil {
		return e
	}
	e.Planned = true
	e.GAO = append([]string(nil), plan.GAO...)
	e.Backend = plan.Backend
	e.BetaCyclic = plan.BetaCyclic
	for i, a := range plan.Atoms {
		cols := make([]string, len(a.VarPos))
		for k, pos := range a.VarPos {
			cols[k] = plan.GAO[pos]
		}
		ap := AtomPlan{
			Atom:       p.q.Atoms[i].String(),
			Index:      fmt.Sprintf("%s(%s)", p.q.Atoms[i].Rel, strings.Join(cols, ", ")),
			Rows:       a.Index.Len(),
			InSkeleton: plan.InSkel == nil || plan.InSkel[i],
		}
		e.Atoms = append(e.Atoms, ap)
	}
	if p.q.Extended() {
		e.Output = append([]string(nil), p.q.Out()...)
		for _, ag := range p.q.Aggs {
			e.Output = append(e.Output, ag.String())
		}
	}
	if push := plan.Push; push != nil {
		for d, bd := range push.Bounds {
			if bd.Trivial() {
				continue
			}
			switch {
			case bd.Hi >= relation.PosInf:
				e.Bounds = append(e.Bounds, fmt.Sprintf("%s >= %d", plan.GAO[d], bd.Lo))
			case bd.Lo <= 0:
				e.Bounds = append(e.Bounds, fmt.Sprintf("%s < %d", plan.GAO[d], bd.Hi))
			default:
				e.Bounds = append(e.Bounds, fmt.Sprintf("%s in [%d, %d)", plan.GAO[d], bd.Lo, bd.Hi))
			}
		}
		for _, r := range push.Residuals {
			rhs := fmt.Sprintf("%d", r.RVal)
			if r.RPos >= 0 {
				rhs = plan.GAO[r.RPos]
			}
			e.Residuals = append(e.Residuals, fmt.Sprintf("%s %s %s", plan.GAO[r.LPos], r.Op, rhs))
		}
		e.Projection = push.Prefix
	}
	return e
}

// relationSizes collects each atom's relation cardinality.
func relationSizes(db *core.DB, q *Query) ([]int, error) {
	sizes := make([]int, len(q.Atoms))
	for i, a := range q.Atoms {
		r, err := db.Relation(a.Rel)
		if err != nil {
			return nil, err
		}
		sizes[i] = r.Len()
	}
	return sizes, nil
}
