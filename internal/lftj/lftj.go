// Package lftj implements Leapfrog Triejoin (paper §2.2, [15]), the
// worst-case-optimal multiway join that LogicBlox ships: variables are bound
// one at a time in a global attribute order, and at each variable the
// participating atoms' trie iterators "leapfrog" over each other in a
// multiway sorted intersection. Runtime is Õ(N + AGM(Q)).
package lftj

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/relation"
)

// Range restricts the first GAO variable to [Lo, Hi); the parallel executor
// (§4.10) partitions the output space with it.
type Range struct {
	Lo, Hi int64
}

// Options configure the engine.
type Options struct {
	// GAO overrides the variable order; empty means the query's
	// first-appearance order.
	GAO []string
	// Backend selects the index backend for the unplanned path (empty means
	// core.DefaultBackend); a compiled Plan carries its own backend.
	Backend core.Backend
	// FirstVarRange restricts the first GAO variable for parallel jobs.
	FirstVarRange *Range
	// Plan, when set, is a compiled plan for the query: validation, GAO
	// resolution, and index binding are skipped and the plan's bound
	// indexes are executed directly.
	Plan *core.Plan
	// Stats, when non-nil, receives this run's execution counters.
	Stats *core.StatsCollector
}

// Engine is the Leapfrog Triejoin engine.
type Engine struct {
	Opts Options
}

// Name implements core.Engine.
func (Engine) Name() string { return "lftj" }

// Count implements core.Engine.
func (e Engine) Count(ctx context.Context, q *query.Query, db *core.DB) (int64, error) {
	var n int64
	err := e.Enumerate(ctx, q, db, func([]int64) bool {
		n++
		return true
	})
	return n, err
}

// Enumerate implements core.Engine.
func (e Engine) Enumerate(ctx context.Context, q *query.Query, db *core.DB, emit func([]int64) bool) error {
	var gao []string
	var atoms []core.AtomIndex
	var push *core.Pushdown
	if p := e.Opts.Plan; p != nil {
		gao, atoms, push = p.GAO, p.Atoms, p.Push
	} else {
		if err := q.Validate(); err != nil {
			return err
		}
		gao = e.Opts.GAO
		if gao == nil {
			gao = q.Vars()
		}
		if len(gao) != q.NumVars() {
			return fmt.Errorf("lftj: GAO %v does not cover the %d query variables: %w", gao, q.NumVars(), core.ErrUnboundVar)
		}
		var err error
		atoms, err = core.BindAtoms(q, db, gao, e.Opts.Backend)
		if err != nil {
			return err
		}
		for i, a := range atoms {
			if a.Index.Arity() != len(q.Atoms[i].Vars) {
				return fmt.Errorf("lftj: atom %s arity mismatch with its %d-ary index", q.Atoms[i], a.Index.Arity())
			}
		}
		push, err = core.CompilePushdown(q, gao)
		if err != nil {
			return err
		}
	}
	// Pin overlay-backed indexes to one snapshot for this whole run, so a
	// concurrent DB.ApplyDelta can never mix two index states mid-join.
	atoms = core.SnapshotAtoms(atoms)
	if rng := e.Opts.FirstVarRange; rng != nil {
		// §4.10 parallel job: bind atoms leading on the first GAO attribute
		// to just the shards covering this job's range, so concurrent
		// workers walk disjoint physical indexes.
		atoms = core.RestrictAtoms(atoms, rng.Lo, rng.Hi)
	}
	ex := &exec{
		n:       len(gao),
		binding: make([]int64, len(gao)),
		emit:    emit,
		tick:    core.NewTicker(ctx),
	}
	// Fold the compiled seek bounds and the parallel job's first-variable
	// range into one per-depth [lo, hi) table; residual predicates are
	// bucketed by the depth that decides them.
	if push != nil {
		ex.prefix = push.Prefix
		if push.Bounds != nil {
			ex.lo = make([]int64, len(gao))
			ex.hi = make([]int64, len(gao))
			for d, b := range push.Bounds {
				ex.lo[d], ex.hi[d] = b.Lo, b.Hi
			}
		}
		if len(push.Residuals) > 0 {
			ex.resAt = make([][]core.ResidualPred, len(gao))
			for d := range ex.resAt {
				ex.resAt[d] = push.ResidualsAt(d)
			}
		}
	}
	if rng := e.Opts.FirstVarRange; rng != nil {
		if ex.lo == nil {
			ex.lo = make([]int64, len(gao))
			ex.hi = make([]int64, len(gao))
			for d := range ex.hi {
				ex.hi[d] = relation.PosInf
			}
		}
		ex.lo[0] = max(ex.lo[0], rng.Lo)
		ex.hi[0] = min(ex.hi[0], rng.Hi)
	}
	// outPerm maps GAO position to q.Vars() position for emitted tuples.
	idx := q.VarIndex()
	ex.outPerm = make([]int, len(gao))
	for g, v := range gao {
		ex.outPerm[g] = idx[v]
	}
	// For each GAO depth, the cursors of participating atoms.
	ex.byVar = make([][]core.TrieCursor, len(gao))
	iters := make([]core.TrieCursor, len(atoms))
	for i, a := range atoms {
		iters[i] = a.Index.NewCursor()
		for _, p := range a.VarPos {
			ex.byVar[p] = append(ex.byVar[p], iters[i])
		}
	}
	for d, its := range ex.byVar {
		if len(its) == 0 {
			return fmt.Errorf("lftj: variable %s (depth %d) not bound by any atom: %w", gao[d], d, core.ErrUnboundVar)
		}
	}
	_, err := ex.run(0)
	if sc := e.Opts.Stats; sc != nil {
		sc.Add(core.Stats{Outputs: ex.outputs, Seeks: ex.seeks})
	}
	return err
}

type exec struct {
	n       int
	byVar   [][]core.TrieCursor
	binding []int64
	outPerm []int
	emit    func([]int64) bool
	tick    *core.Ticker
	lo, hi  []int64               // per-depth seek bounds [lo, hi); nil when unbounded
	resAt   [][]core.ResidualPred // residual predicates decided at each depth
	prefix  int                   // >0: emit only the leading prefix depths, deduped
	out     []int64
	outputs int64
	seeks   int64
}

// residualsOK evaluates the residual predicates decided at depth d against
// the binding prefix built so far.
func (ex *exec) residualsOK(d int) bool {
	if ex.resAt == nil {
		return true
	}
	for _, r := range ex.resAt[d] {
		if !r.Eval(ex.binding) {
			return false
		}
	}
	return true
}

// run executes the triejoin at GAO depth d; it returns false when
// enumeration should stop (emit returned false).
func (ex *exec) run(d int) (bool, error) {
	its := ex.byVar[d]
	for _, it := range its {
		it.Open()
	}
	defer func() {
		for _, it := range its {
			it.Up()
		}
	}()
	lf := leapfrog{its: its, seeks: &ex.seeks}
	if !lf.init() {
		return true, nil
	}
	if ex.lo != nil && ex.lo[d] > 0 {
		if !lf.seek(ex.lo[d]) {
			return true, nil
		}
	}
	for {
		if err := ex.tick.Tick(); err != nil {
			return false, err
		}
		key := lf.key
		if ex.hi != nil && key >= ex.hi[d] {
			return true, nil
		}
		ex.binding[d] = key
		if !ex.residualsOK(d) {
			if !lf.next() {
				return true, nil
			}
			continue
		}
		if d == ex.n-1 {
			if !ex.emitTuple() {
				return false, nil
			}
		} else if ex.prefix > 0 && d == ex.prefix-1 {
			// Deepest projected level: one existence probe below the prefix
			// replaces the full sub-enumeration — this is the early duplicate
			// elimination, and it emits each prefix exactly once.
			found, err := ex.exists(d + 1)
			if err != nil {
				return false, err
			}
			if found && !ex.emitPrefix() {
				return false, nil
			}
		} else {
			cont, err := ex.run(d + 1)
			if err != nil || !cont {
				return cont, err
			}
		}
		if !lf.next() {
			return true, nil
		}
	}
}

// exists reports whether any full binding extends the current prefix through
// depths d..n-1, respecting bounds and residual predicates; it stops at the
// first witness.
func (ex *exec) exists(d int) (bool, error) {
	its := ex.byVar[d]
	for _, it := range its {
		it.Open()
	}
	defer func() {
		for _, it := range its {
			it.Up()
		}
	}()
	lf := leapfrog{its: its, seeks: &ex.seeks}
	if !lf.init() {
		return false, nil
	}
	if ex.lo != nil && ex.lo[d] > 0 {
		if !lf.seek(ex.lo[d]) {
			return false, nil
		}
	}
	for {
		if err := ex.tick.Tick(); err != nil {
			return false, err
		}
		key := lf.key
		if ex.hi != nil && key >= ex.hi[d] {
			return false, nil
		}
		ex.binding[d] = key
		if ex.residualsOK(d) {
			if d == ex.n-1 {
				return true, nil
			}
			found, err := ex.exists(d + 1)
			if err != nil || found {
				return found, err
			}
		}
		if !lf.next() {
			return false, nil
		}
	}
}

func (ex *exec) emitTuple() bool {
	ex.outputs++
	if ex.out == nil {
		ex.out = make([]int64, ex.n)
	}
	for g, v := range ex.outPerm {
		ex.out[v] = ex.binding[g]
	}
	return ex.emit(ex.out)
}

// emitPrefix emits the projected prefix. The planner guarantees the leading
// GAO positions are the query's output prefix in execution order, so no
// permutation is needed.
func (ex *exec) emitPrefix() bool {
	ex.outputs++
	if ex.out == nil {
		ex.out = make([]int64, ex.prefix)
	}
	copy(ex.out, ex.binding[:ex.prefix])
	return ex.emit(ex.out)
}

// leapfrog is the multiway sorted intersection of one trie level across the
// participating atoms (Veldhuizen's leapfrog-init/search/next).
type leapfrog struct {
	its   []core.TrieCursor
	p     int
	key   int64
	seeks *int64
}

// init sorts the iterators by key and finds the first match. It returns
// false if the intersection is empty.
func (lf *leapfrog) init() bool {
	for _, it := range lf.its {
		if it.AtEnd() {
			return false
		}
	}
	// Insertion sort by current key; the lists are tiny.
	for i := 1; i < len(lf.its); i++ {
		for j := i; j > 0 && lf.its[j].Key() < lf.its[j-1].Key(); j-- {
			lf.its[j], lf.its[j-1] = lf.its[j-1], lf.its[j]
		}
	}
	lf.p = 0
	return lf.search()
}

// search advances iterators until all agree on a key.
func (lf *leapfrog) search() bool {
	k := len(lf.its)
	max := lf.its[(lf.p+k-1)%k].Key()
	for {
		it := lf.its[lf.p]
		x := it.Key()
		if x == max {
			lf.key = x
			return true
		}
		it.SeekGE(max)
		*lf.seeks++
		if it.AtEnd() {
			return false
		}
		max = it.Key()
		lf.p = (lf.p + 1) % k
	}
}

// next moves past the current match.
func (lf *leapfrog) next() bool {
	it := lf.its[lf.p]
	it.Next()
	if it.AtEnd() {
		return false
	}
	lf.p = (lf.p + 1) % len(lf.its)
	return lf.search()
}

// seek positions the intersection at the least match >= v.
func (lf *leapfrog) seek(v int64) bool {
	if lf.key >= v {
		return true
	}
	it := lf.its[lf.p]
	it.SeekGE(v)
	*lf.seeks++
	if it.AtEnd() {
		return false
	}
	lf.p = (lf.p + 1) % len(lf.its)
	return lf.search()
}
