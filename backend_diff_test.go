package repro

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/incremental"
	"repro/internal/query"
	"repro/internal/relation"
)

// corpusQueries is the full named-query corpus the CLI and benchmarks use —
// every pattern shape of the paper's §5.1 evaluation.
func corpusQueries() []*Query {
	return []*Query{
		query.Clique(3),
		query.Clique(4),
		query.Cycle(4),
		query.Path(3),
		query.Path(4),
		query.Tree(1),
		query.Tree(2),
		query.Comb(),
		query.Lollipop(2),
		query.Lollipop(3),
	}
}

func sortedRows(rows [][]int64) {
	sort.Slice(rows, func(i, j int) bool {
		return relation.CompareTuples(rows[i], rows[j]) < 0
	})
}

// backendMatrix is every index backend, reference first.
var backendMatrix = []Backend{BackendFlat, BackendCSR, BackendCSRSharded}

// TestBackendDifferential runs every corpus query under both trie-driven
// engines on every index backend and requires identical counts and identical
// enumerated result sets — the flat backend is the reference implementation
// the CSR backends must reproduce exactly.
func TestBackendDifferential(t *testing.T) {
	ctx := context.Background()
	g := GenerateGraph(HolmeKim, 250, 900, 3)
	g.SetSelectivity(25, 5)
	for _, q := range corpusQueries() {
		for _, alg := range []Algorithm{LFTJ, MS} {
			t.Run(fmt.Sprintf("%s/%s", q.Name, string(alg)), func(t *testing.T) {
				var counts []int64
				var rows [][][]int64
				for _, backend := range backendMatrix {
					p, err := g.Prepare(q, Options{Algorithm: alg, Workers: 1, Backend: backend})
					if err != nil {
						t.Fatalf("%s prepare: %v", backend, err)
					}
					if got := p.Explain().Backend; got != backend {
						t.Fatalf("Explain reports backend %q, want %q", got, backend)
					}
					n, err := p.Count(ctx)
					if err != nil {
						t.Fatalf("%s count: %v", backend, err)
					}
					var rs [][]int64
					err = p.Enumerate(ctx, func(tuple []int64) bool {
						rs = append(rs, append([]int64(nil), tuple...))
						return true
					})
					if err != nil {
						t.Fatalf("%s enumerate: %v", backend, err)
					}
					if int64(len(rs)) != n {
						t.Fatalf("%s: count %d != enumerated %d", backend, n, len(rs))
					}
					sortedRows(rs)
					counts = append(counts, n)
					rows = append(rows, rs)
				}
				for b := 1; b < len(backendMatrix); b++ {
					if counts[0] != counts[b] {
						t.Fatalf("count mismatch: flat %d, %s %d", counts[0], backendMatrix[b], counts[b])
					}
					for i := range rows[0] {
						if relation.CompareTuples(rows[0][i], rows[b][i]) != 0 {
							t.Fatalf("row %d mismatch: flat %v, %s %v", i, rows[0][i], backendMatrix[b], rows[b][i])
						}
					}
				}
			})
		}
	}
}

// TestBackendParallelDifferential checks the partitioned §4.10 count path —
// including the per-shard job binding of the csr-sharded backend — against
// the sequential flat reference, on both cyclic and acyclic shapes.
func TestBackendParallelDifferential(t *testing.T) {
	ctx := context.Background()
	g := GenerateGraph(BarabasiAlbert, 2000, 10000, 11)
	g.SetSelectivity(10, 3)
	for _, q := range []*Query{Triangles(), Cliques(4), Paths(3)} {
		want, err := Count(ctx, g, q, Options{Algorithm: "lftj", Workers: 1, Backend: "flat"})
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range []Algorithm{LFTJ, MS} {
			for _, backend := range []Backend{BackendCSR, BackendCSRSharded} {
				got, err := Count(ctx, g, q, Options{Algorithm: alg, Workers: 4, Granularity: 8, Backend: backend})
				if err != nil {
					t.Fatalf("%s/%s/%s parallel: %v", q.Name, alg, backend, err)
				}
				if got != want {
					t.Errorf("%s/%s/%s parallel count = %d, want %d", q.Name, alg, backend, got, want)
				}
			}
		}
	}
}

// TestBackendDefault pins the default backend: an unset Options.Backend
// compiles against csr.
func TestBackendDefault(t *testing.T) {
	g := GenerateGraph(ErdosRenyi, 100, 300, 2)
	p, err := g.Prepare(Triangles(), Options{Algorithm: "lftj"})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Explain().Backend; got != "csr" {
		t.Errorf("default backend = %q, want csr", got)
	}
}

// TestBackendPlanCaching pins the backend as a plan-cache dimension: the
// same shape prepared under both backends compiles twice, and re-preparing
// either hits its cached plan.
func TestBackendPlanCaching(t *testing.T) {
	g := GenerateGraph(ErdosRenyi, 200, 600, 1)
	q := Triangles()
	before := g.DB().CachedPlanCount()
	for _, backend := range backendMatrix {
		if _, err := g.Prepare(q, Options{Algorithm: "lftj", Backend: backend}); err != nil {
			t.Fatal(err)
		}
	}
	if got := g.DB().CachedPlanCount() - before; got != len(backendMatrix) {
		t.Errorf("expected %d cached plans (one per backend), got %d", len(backendMatrix), got)
	}
	p, err := g.Prepare(q, Options{Algorithm: "lftj", Backend: "csr"})
	if err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.PlanCacheHits != 1 {
		t.Errorf("re-prepare under csr: PlanCacheHits = %d, want 1", st.PlanCacheHits)
	}
}

// TestBackendUnknown rejects a misspelled backend at Prepare time.
func TestBackendUnknown(t *testing.T) {
	g := GenerateGraph(ErdosRenyi, 50, 100, 1)
	if _, err := g.Prepare(Triangles(), Options{Algorithm: "lftj", Backend: "btree"}); err == nil {
		t.Error("unknown backend should fail Prepare")
	}
}

// TestViewBackendDifferential maintains the same views on every backend
// through a long randomized ApplyEdges churn and requires identical counts
// after every batch — with a full recount as ground truth. On the CSR
// backend the batches land in the cached indexes' delta overlays, so this
// drives the overlay merge paths (cursor, probe, compaction) through the
// whole engine stack; flat re-binds per batch and is the reference.
func TestViewBackendDifferential(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(1234))
	for _, q := range []*Query{Triangles(), Cliques(4), Paths(3), Cycles(4)} {
		edges := make([][2]int64, 0, 300)
		for i := 0; i < 300; i++ {
			u, v := int64(rng.Intn(40)), int64(rng.Intn(40))
			if u != v {
				edges = append(edges, [2]int64{u, v})
			}
		}
		graphs := make([]*Graph, len(backendMatrix))
		views := make([]*incremental.GraphView, len(backendMatrix))
		for i, backend := range backendMatrix {
			graphs[i] = NewGraph(edges)
			v, err := incremental.NewGraphViewBackend(ctx, q, graphs[i].DB(), core.Backend(backend))
			if err != nil {
				t.Fatal(err)
			}
			if v.Backend() != core.Backend(backend) {
				t.Fatalf("view backend = %q, want %q", v.Backend(), backend)
			}
			views[i] = v
		}
		for step := 0; step < 15; step++ {
			var ins, del [][2]int64
			for k := 0; k < 1+rng.Intn(4); k++ {
				e := [2]int64{int64(rng.Intn(40)), int64(rng.Intn(40))}
				if e[0] == e[1] {
					continue
				}
				if rng.Intn(2) == 0 {
					ins = append(ins, e)
				} else {
					del = append(del, e)
				}
			}
			for i, v := range views {
				if err := v.ApplyEdges(ctx, ins, del); err != nil {
					t.Fatalf("%s %s step %d: %v", q.Name, backendMatrix[i], step, err)
				}
			}
			want, err := views[0].Recount(ctx)
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range views {
				if v.Count() != want {
					t.Fatalf("%s step %d: %s view = %d, recount = %d (ins=%v del=%v)",
						q.Name, step, backendMatrix[i], v.Count(), want, ins, del)
				}
			}
		}
	}
}

// TestViewPlanReuseOnCSR pins the overlay payoff: across many batches the
// CSR-backed view derives its GAO once and never re-binds a base-relation
// index — only the tiny delta atoms re-bind.
func TestViewPlanReuseOnCSR(t *testing.T) {
	ctx := context.Background()
	g := GenerateGraph(BarabasiAlbert, 300, 1200, 7)
	v, err := incremental.NewGraphViewBackend(ctx, Triangles(), g.DB(), core.BackendCSR)
	if err != nil {
		t.Fatal(err)
	}
	afterBuild := v.Stats().IndexBindings
	for i := 0; i < 5; i++ {
		if err := v.ApplyEdges(ctx, [][2]int64{{int64(i), int64(i + 50)}}, nil); err != nil {
			t.Fatal(err)
		}
	}
	st := v.Stats()
	if st.GAODerivations != 1 {
		t.Errorf("GAODerivations = %d, want 1", st.GAODerivations)
	}
	// Each batch re-binds only @delta atoms (the triangle view's delta terms
	// bind at most 3 delta atoms per term); base relations must not re-bind,
	// which would show up as hundreds of bindings on this query set.
	perBatch := float64(st.IndexBindings-afterBuild) / 5
	if perBatch > 24 {
		t.Errorf("IndexBindings per batch = %.1f — base relations appear to re-bind", perBatch)
	}
}
