// Command graphjoind serves repro stores to remote clients over the wire
// protocol — the reproduction's query server. Clients (graphjoin -connect,
// or repro/client programmatically) define schemas, load and update
// relations, and run prepared graph-pattern queries; execution happens here,
// against shared indexes.
//
// A single-tenant server with an empty default store:
//
//	graphjoind -listen :7474
//
// Preloading the default store with a general schema:
//
//	graphjoind -relation follows:2 -load follows=follows.tsv
//
// Preloading the default store with a benchmark graph (the schema graphjoin's
// named queries expect):
//
//	graphjoind -dataset ca-GrQc -selectivity 10
//	graphjoind -model ba -nodes 10000 -edges 50000 -seed 1
//
// Multi-tenant serving from a config file (-stores), one section per store:
//
//	# stores.conf
//	[social]
//	relation follows:2
//	load follows=/data/follows.tsv
//	[bench]
//	generate ba 10000 50000 1
//	selectivity 10 1
//
// With -data-dir the server is durable: every acknowledged write is fsynced
// to a per-store write-ahead log under DIR/<store> before the client sees
// success (policy via -fsync), a background snapshotter checkpoints each
// store every -checkpoint-every (and, with -checkpoint-bytes, whenever the
// un-pruned log outgrows that size budget), and a restart on the same
// -data-dir
// recovers to the last fsynced write — preload flags seed a store only on
// its first start, after which the disk is the source of truth:
//
//	graphjoind -data-dir /var/lib/graphjoind -model ba -nodes 10000 -edges 50000
//
// With -metrics-addr the server exposes Prometheus text metrics and a
// liveness probe over HTTP (see docs/OPERATIONS.md for the full inventory),
// and -max-inflight/-max-queued bound each store's concurrent work — requests
// beyond the budget fail fast with a typed overloaded error clients can
// detect with errors.Is(err, client.ErrOverloaded):
//
//	graphjoind -metrics-addr :9090 -max-inflight 64 -max-queued 128
//
// The server drains on SIGINT/SIGTERM: in-flight queries finish (up to
// -drain), new requests are refused, then a final checkpoint is written and
// the logs are closed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/cli"
	"repro/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "graphjoind: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var relations, loads cli.ListFlag
	var (
		listen      = flag.String("listen", ":7474", "address to serve on")
		storesPath  = flag.String("stores", "", "multi-tenant store config file (see the command doc)")
		datasetName = flag.String("dataset", "", "preload the default store with a catalog benchmark graph")
		model       = flag.String("model", "", "preload the default store with a generated graph: er | ba | hk")
		nodes       = flag.Int("nodes", 10000, "generated graph nodes (with -model)")
		edges       = flag.Int("edges", 50000, "generated graph edges (with -model)")
		seed        = flag.Int64("seed", 1, "generator seed (with -model)")
		selectivity = flag.Int("selectivity", 10, "node-sample selectivity for a preloaded graph")
		drain       = flag.Duration("drain", 30*time.Second, "how long shutdown waits for in-flight queries")
		metricsAddr = flag.String("metrics-addr", "", "HTTP address serving /metrics (Prometheus text) and /healthz; empty disables")
		maxInflight = flag.Int("max-inflight", 0, "per-store cap on concurrently running requests (0 = unlimited)")
		maxQueued   = flag.Int("max-queued", 0, "per-store queue depth beyond -max-inflight before requests are rejected as overloaded")
		dataDir     = flag.String("data-dir", "", "root directory for durable stores (one subdirectory per store); empty serves in-memory")
		fsync       = flag.String("fsync", "group", "WAL fsync policy with -data-dir: group | always | none")
		fsyncWindow = flag.Duration("fsync-window", 0, "group-commit accumulation window (how long a sync leader waits for more writers)")
		checkpoint  = flag.Duration("checkpoint-every", 5*time.Minute, "background checkpoint interval with -data-dir (0 disables)")
		ckptBytes   = flag.Int64("checkpoint-bytes", 0, "with -data-dir, also checkpoint whenever the un-pruned WAL exceeds this many bytes (0 disables)")
		slowQueryMs = flag.Int64("slow-query-ms", 0, "log one JSON line per request slower than this many milliseconds (0 disables)")
		slowQueryLg = flag.String("slow-query-log", "", "file the slow-query lines append to (empty routes them to stderr)")
		traceSample = flag.Int("trace-sample", 1, "with -slow-query-ms, trace one in N untraced requests so slow-query lines carry span trees")
	)
	flag.Var(&relations, "relation", "define a default-store relation as name:arity (repeatable)")
	flag.Var(&loads, "load", "load a default-store relation from a file of integer rows, as name=path (repeatable)")
	flag.Parse()

	stores := make(map[string]*repro.Store)
	if *storesPath != "" {
		if err := loadStoresConfig(*storesPath, stores); err != nil {
			return err
		}
	}
	// The flag-configured default store; a [default] section in -stores and
	// the flags are mutually exclusive so neither silently wins.
	if *datasetName != "" || *model != "" || len(relations) > 0 || len(loads) > 0 {
		if _, ok := stores[server.DefaultStore]; ok {
			return fmt.Errorf("the default store is configured both by flags and by %s", *storesPath)
		}
		st, err := buildFlagStore(*datasetName, *model, *nodes, *edges, *seed, *selectivity, relations, loads)
		if err != nil {
			return err
		}
		stores[server.DefaultStore] = st
	}
	if _, ok := stores[server.DefaultStore]; !ok {
		stores[server.DefaultStore] = repro.NewStore()
	}

	// With -data-dir, swap every configured store for a durable one rooted
	// at DIR/<name>: recovered state wins over the preload (the preload
	// seeded the store on its first start and is already on disk), and every
	// write from here on is logged and fsynced before it is acknowledged.
	var durables []*repro.Store
	if *dataDir != "" {
		names := make([]string, 0, len(stores))
		for name := range stores {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			st, err := openDurable(filepath.Join(*dataDir, name), name, *fsync, *fsyncWindow, *ckptBytes, stores[name])
			if err != nil {
				return err
			}
			stores[name] = st
			durables = append(durables, st)
		}
	}
	defer func() {
		for _, st := range durables {
			st.Close()
		}
	}()

	// Per-tenant admission control: the same budget for every store. A
	// tenant beyond its budget gets a typed overloaded error; other tenants
	// are unaffected.
	var limits map[string]server.Limits
	if *maxInflight > 0 {
		limits = make(map[string]server.Limits, len(stores))
		for name := range stores {
			limits[name] = server.Limits{MaxInflight: *maxInflight, MaxQueued: *maxQueued}
		}
	}

	slowLog, closeSlowLog, err := cli.OpenSlowQueryLog(*slowQueryLg)
	if err != nil {
		return err
	}
	defer closeSlowLog()

	srv := server.New(server.Config{Stores: stores, Limits: limits, Logf: func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "graphjoind: "+format+"\n", args...)
	}, Trace: server.TraceConfig{
		SlowQuery:    time.Duration(*slowQueryMs) * time.Millisecond,
		SlowQueryLog: slowLog,
		SampleEvery:  *traceSample,
	}})

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	names := srv.Stores()
	sort.Strings(names)
	fmt.Printf("graphjoind: serving stores [%s] on %s\n", strings.Join(names, " "), l.Addr())

	// The observability sidecar listener: /metrics in Prometheus text format,
	// /healthz for liveness probes, /debug/pprof for profiling, /debug/traces
	// for the retained request traces. It binds before the banner-reading
	// scripts proceed and is torn down with the server.
	var metricsSrv *http.Server
	if *metricsAddr != "" {
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		metricsSrv = &http.Server{Handler: cli.ObservabilityMux(srv.DebugTracesHandler())}
		go func() {
			if err := metricsSrv.Serve(ml); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "graphjoind: metrics server: %v\n", err)
			}
		}()
		fmt.Printf("graphjoind: metrics on http://%s/metrics\n", ml.Addr())
		defer func() {
			closeCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			metricsSrv.Shutdown(closeCtx)
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The background snapshotter: checkpoint every durable store on a
	// ticker, bounding log growth and recovery time. Checkpoints serialize
	// and write outside the stores' write path, concurrent with traffic.
	if len(durables) > 0 && *checkpoint > 0 {
		go func() {
			t := time.NewTicker(*checkpoint)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					for _, st := range durables {
						if err := st.Checkpoint(); err != nil {
							fmt.Fprintf(os.Stderr, "graphjoind: checkpoint: %v\n", err)
						}
					}
				}
			}
		}()
	}

	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	select {
	case err := <-serveDone:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Println("graphjoind: draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "graphjoind: drain cut short: %v\n", err)
	}
	if err := <-serveDone; !errors.Is(err, server.ErrServerClosed) {
		return err
	}
	// A final checkpoint makes the next start replay-free; the deferred
	// Close then just fsyncs and releases the logs.
	for _, st := range durables {
		if err := st.Checkpoint(); err != nil {
			fmt.Fprintf(os.Stderr, "graphjoind: final checkpoint: %v\n", err)
		}
	}
	fmt.Println("graphjoind: bye")
	return nil
}

// openDurable opens the durable store for one tenant, prints its recovery
// banner, and — only on a first start over an empty directory — seeds it
// with the flag/config-preloaded in-memory store's schema and contents. On
// every later start the disk is the source of truth and the preload is
// ignored, so changing preload flags cannot silently fork a live dataset.
func openDurable(dir, name, fsync string, window time.Duration, ckptBytes int64, seed *repro.Store) (*repro.Store, error) {
	st, info, err := repro.OpenStore(dir, repro.DurabilityOptions{Sync: fsync, GroupWindow: window, MetricsName: name, CheckpointBytes: ckptBytes})
	if err != nil {
		return nil, fmt.Errorf("store %q: %w", name, err)
	}
	switch {
	case info.LastLSN == 0 && info.SnapshotLSN == 0:
		fmt.Printf("graphjoind: store %s: fresh data dir %s\n", name, dir)
		if err := importStore(st, seed); err != nil {
			st.Close()
			return nil, fmt.Errorf("store %q: seeding preload: %w", name, err)
		}
	default:
		fmt.Printf("graphjoind: store %s: recovered snapshot lsn=%d + %d replayed records, durable through lsn=%d\n",
			name, info.SnapshotLSN, info.Replayed, info.LastLSN)
	}
	if info.TailErr != nil {
		fmt.Printf("graphjoind: store %s: unclean shutdown: %v\n", name, info.TailErr)
	}
	return st, nil
}

// importStore copies every relation of an in-memory store into a durable
// one through the logged write path (DefineRelation + Load), so the seeded
// contents are durable before the server starts accepting writes.
func importStore(dst, src *repro.Store) error {
	for _, name := range src.Relations() {
		arity, err := src.Arity(name)
		if err != nil {
			return err
		}
		if err := dst.DefineRelation(name, arity); err != nil {
			return err
		}
		r, err := src.DB().Relation(name)
		if err != nil {
			return err
		}
		tuples := make([][]int64, r.Len())
		for i := range tuples {
			tuples[i] = r.Tuple(i)
		}
		if err := dst.Load(name, tuples); err != nil {
			return err
		}
	}
	return nil
}

// buildFlagStore constructs the default store from the command-line flags:
// either a benchmark graph (dataset or generator model) or a -relation/-load
// schema, but not both — the graph schema is canned and loading over it
// would break its invariants.
func buildFlagStore(datasetName, model string, nodes, edges int, seed int64, selectivity int, relations, loads []string) (*repro.Store, error) {
	graphMode := datasetName != "" || model != ""
	if graphMode && (len(relations) > 0 || len(loads) > 0) {
		return nil, fmt.Errorf("-relation/-load conflict with a benchmark-graph preload (-dataset/-model)")
	}
	if graphMode {
		g, err := cli.BuildGraph(datasetName, model, nodes, edges, seed)
		if err != nil {
			return nil, err
		}
		g.SetSelectivity(selectivity, seed)
		return g.Store(), nil
	}
	st := repro.NewStore()
	if err := cli.SetupSchema(repro.Local(st), relations, loads); err != nil {
		return nil, err
	}
	return st, nil
}

// loadStoresConfig parses the -stores file: "[name]" opens a store section;
// within one, "relation name:arity", "load name=path", "dataset NAME",
// "generate MODEL NODES EDGES SEED", and "selectivity S SEED" configure it.
// Blank lines and #-comments are skipped.
func loadStoresConfig(path string, stores map[string]*repro.Store) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	type section struct {
		name                  string
		relations, loads      []string
		dataset, model        string
		nodes, edges          int
		seed                  int64
		selectivity, selSeed  int
		hasGraph, hasSelector bool
	}
	var sections []*section
	var cur *section
	for lineNo, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		where := fmt.Sprintf("%s:%d", path, lineNo+1)
		if strings.HasPrefix(line, "[") {
			if !strings.HasSuffix(line, "]") {
				return fmt.Errorf("%s: malformed section header %q", where, line)
			}
			name := strings.TrimSpace(line[1 : len(line)-1])
			if name == "" {
				return fmt.Errorf("%s: empty store name", where)
			}
			cur = &section{name: name}
			sections = append(sections, cur)
			continue
		}
		if cur == nil {
			return fmt.Errorf("%s: directive before the first [store] section", where)
		}
		directive, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		switch directive {
		case "relation":
			cur.relations = append(cur.relations, rest)
		case "load":
			cur.loads = append(cur.loads, rest)
		case "dataset":
			if cur.hasGraph {
				return fmt.Errorf("%s: store %q already has a graph preload", where, cur.name)
			}
			cur.dataset, cur.hasGraph = rest, true
		case "generate":
			if cur.hasGraph {
				return fmt.Errorf("%s: store %q already has a graph preload", where, cur.name)
			}
			f := strings.Fields(rest)
			if len(f) != 4 {
				return fmt.Errorf("%s: generate wants MODEL NODES EDGES SEED", where)
			}
			var errs [3]error
			cur.model = f[0]
			cur.nodes, errs[0] = strconv.Atoi(f[1])
			cur.edges, errs[1] = strconv.Atoi(f[2])
			cur.seed, errs[2] = parseInt64(f[3])
			for _, e := range errs {
				if e != nil {
					return fmt.Errorf("%s: generate: %v", where, e)
				}
			}
			cur.hasGraph = true
		case "selectivity":
			f := strings.Fields(rest)
			if len(f) != 2 {
				return fmt.Errorf("%s: selectivity wants S SEED", where)
			}
			var e1, e2 error
			cur.selectivity, e1 = strconv.Atoi(f[0])
			cur.selSeed, e2 = strconv.Atoi(f[1])
			if e1 != nil || e2 != nil {
				return fmt.Errorf("%s: selectivity: bad number", where)
			}
			cur.hasSelector = true
		default:
			return fmt.Errorf("%s: unknown directive %q", where, directive)
		}
	}
	for _, sec := range sections {
		if _, ok := stores[sec.name]; ok {
			return fmt.Errorf("%s: store %q defined twice", path, sec.name)
		}
		if sec.hasGraph && (len(sec.relations) > 0 || len(sec.loads) > 0) {
			return fmt.Errorf("%s: store %q mixes a graph preload with relation/load", path, sec.name)
		}
		if sec.hasSelector && !sec.hasGraph {
			return fmt.Errorf("%s: store %q: selectivity applies to a graph preload (dataset/generate)", path, sec.name)
		}
		if sec.hasGraph {
			g, err := cli.BuildGraph(sec.dataset, sec.model, sec.nodes, sec.edges, sec.seed)
			if err != nil {
				return fmt.Errorf("%s: store %q: %w", path, sec.name, err)
			}
			if sec.hasSelector {
				g.SetSelectivity(sec.selectivity, int64(sec.selSeed))
			}
			stores[sec.name] = g.Store()
			continue
		}
		st := repro.NewStore()
		if err := cli.SetupSchema(repro.Local(st), sec.relations, sec.loads); err != nil {
			return fmt.Errorf("%s: store %q: %w", path, sec.name, err)
		}
		stores[sec.name] = st
	}
	return nil
}

func parseInt64(s string) (int64, error) { return strconv.ParseInt(s, 10, 64) }
