package core

import "sync"

// Lease is a read snapshot of the database's physical design: at creation it
// resolves every cached index whose contents can advance in place under
// ApplyDelta (the CSR delta overlays) to the point-in-time view current at
// that moment. Plans pinned through the lease observe that one state on every
// execution, no matter how many delta batches land in between — the
// multi-execution extension of the per-run SnapshotAtoms pinning the engines
// apply, and the mechanism behind the public Store.ReadTxn and Store.Batch
// surfaces.
//
// A lease needs no release: the pinned views are ordinary overlay snapshots
// and the garbage collector reclaims them when the lease is dropped. Indexes
// that are immutable objects (flat and sharded bindings — ApplyDelta replaces
// rather than advances them) pass through unpinned; a plan holding them is
// already frozen at its compile-time state.
type Lease struct {
	mu    sync.Mutex
	views map[IndexBackend]IndexBackend
}

// NewLease pins the current state of every cached snapshottable index.
func (db *DB) NewLease() *Lease {
	db.mu.Lock()
	defer db.mu.Unlock()
	l := &Lease{views: make(map[IndexBackend]IndexBackend)}
	for _, e := range db.tries {
		if s, ok := e.idx.(Snapshotter); ok {
			l.views[e.idx] = s.Snapshot()
		}
	}
	return l
}

// Pin resolves atom bindings through the lease: a snapshottable index maps to
// the view pinned at lease creation. An index first bound after the lease was
// taken is pinned on first encounter and memoized, so repeated executions
// through the same lease still agree with each other. Non-snapshottable
// indexes pass through unchanged; when nothing is snapshottable the input
// slice is returned as is.
func (l *Lease) Pin(atoms []AtomIndex) []AtomIndex {
	l.mu.Lock()
	defer l.mu.Unlock()
	return snapshotWith(atoms, l.views)
}

// PinPlan returns a copy of the plan with its atom bindings pinned through
// the lease. Engines executing the pinned plan read the leased state on every
// run: their own per-execution SnapshotAtoms pass is a no-op on views that
// are already snapshots.
func (l *Lease) PinPlan(p *Plan) *Plan {
	cp := *p
	cp.Atoms = l.Pin(p.Atoms)
	return &cp
}
