// Package repro is a from-scratch Go reproduction of "Join Processing for
// Graph Patterns: An Old Dog with New Tricks" (Nguyen, Aref, Bravenboer,
// Kollias, Ngo, Ré, Rudra; arXiv:1503.04169, 2015): the first practical
// implementation and empirical evaluation of worst-case-optimal (Leapfrog
// Triejoin) and beyond-worst-case (Minesweeper / #Minesweeper) join
// algorithms on graph-pattern workloads.
//
// The public API evaluates graph-pattern join queries over in-memory graphs
// with a choice of engines:
//
//   - "lftj" — Leapfrog Triejoin, worst-case optimal (paper §2.2);
//   - "ms" — Minesweeper with the constraint data structure and all of the
//     paper's Ideas 1–8 (paper §2.3, §4), beyond-worst-case optimal for
//     β-acyclic queries;
//   - "hybrid" — Minesweeper on the acyclic part + LFTJ on the clique part
//     for lollipop queries (paper §4.12);
//   - "psql" / "monetdb" — Selinger-style pairwise baselines (row-store DP
//     optimizer / column-store greedy bulk execution);
//   - "yannakakis" — the classical linear-time algorithm for acyclic joins;
//   - "graphlab" — a specialized parallel clique counter.
//
// Quick start:
//
//	g := repro.GenerateGraph(repro.BarabasiAlbert, 10_000, 50_000, 1)
//	n, err := repro.Count(ctx, g, repro.Triangles(), repro.Options{Algorithm: "lftj"})
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// regenerated tables and figures.
package repro
