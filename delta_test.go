package repro

import (
	"context"
	"errors"
	"iter"
	"sync"
	"testing"
)

// pairStore builds a two-relation schema whose test invariant is that "a"
// and "b" always hold the same tuples (writes go through ApplyAll).
func pairStore(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	for _, name := range []string{"a", "b"} {
		if err := s.DefineRelation(name, 2); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// TestApplyAllSemantics pins the per-relation write semantics of the atomic
// multi-relation path: idempotent inserts/deletes and delete-after-insert
// within one batch, matching Apply.
func TestApplyAllSemantics(t *testing.T) {
	s := pairStore(t)
	err := s.ApplyAll(map[string][]Delta{
		"a": {Insert(1, 2), Insert(1, 2), Insert(3, 4)},
		"b": {Insert(1, 2), Insert(9, 9), Remove(9, 9)}, // 9,9 never lands
	})
	if err != nil {
		t.Fatal(err)
	}
	count := func(rel string) int64 {
		t.Helper()
		q, err := s.ParseQuery("q", rel+"(x, y)")
		if err != nil {
			t.Fatal(err)
		}
		n, err := s.Count(context.Background(), q, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	if got := count("a"); got != 2 {
		t.Errorf("a = %d tuples, want 2 (duplicate insert merged)", got)
	}
	if got := count("b"); got != 1 {
		t.Errorf("b = %d tuples, want 1 (delete-after-insert)", got)
	}
	// Deleting an absent tuple is a no-op; removing a present one lands.
	err = s.ApplyAll(map[string][]Delta{
		"a": {Remove(7, 7), Remove(3, 4)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := count("a"); got != 1 {
		t.Errorf("a = %d tuples after delete, want 1", got)
	}
}

// TestApplyAllChecksUpFront pins the all-or-nothing contract: a schema error
// in any batch fails the whole call before any relation is touched.
func TestApplyAllChecksUpFront(t *testing.T) {
	s := pairStore(t)
	cases := []struct {
		name    string
		batches map[string][]Delta
		want    error
	}{
		{"unknown relation", map[string][]Delta{"a": {Insert(1, 2)}, "nope": {Insert(1, 2)}}, ErrUnknownRelation},
		{"arity", map[string][]Delta{"a": {Insert(1, 2)}, "b": {Insert(1)}}, ErrArityMismatch},
		{"domain", map[string][]Delta{"a": {Insert(1, 2)}, "b": {Remove(-1, 2)}}, ErrValueOutOfRange},
	}
	for _, c := range cases {
		if err := s.ApplyAll(c.batches); !errors.Is(err, c.want) {
			t.Errorf("%s: got %v, want %v", c.name, err, c.want)
		}
		q, _ := s.ParseQuery("q", "a(x, y)")
		n, err := s.Count(context.Background(), q, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if n != 0 {
			t.Fatalf("%s: failed ApplyAll leaked a write into %q", c.name, "a")
		}
	}
}

// TestApplyAllAtomicSnapshot hammers ApplyAll from a writer while snapshot
// readers check the cross-relation invariant (a and b identical): because
// all batches land under one lock acquisition, no snapshot may ever observe
// the relations torn.
func TestApplyAllAtomicSnapshot(t *testing.T) {
	ctx := context.Background()
	s := pairStore(t)
	qa, err := s.ParseQuery("qa", "a(x, y)")
	if err != nil {
		t.Fatal(err)
	}
	qb, err := s.ParseQuery("qb", "b(x, y)")
	if err != nil {
		t.Fatal(err)
	}
	pa, err := s.Prepare(qa, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	pb, err := s.Prepare(qb, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := int64(0); i < 200; i++ {
			deltas := []Delta{Insert(i, i+1)}
			if i >= 10 {
				deltas = append(deltas, Remove(i-10, i-9))
			}
			if err := s.ApplyAll(map[string][]Delta{"a": deltas, "b": deltas}); err != nil {
				t.Errorf("ApplyAll: %v", err)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				txn := s.ReadTxn()
				na, err1 := txn.Count(ctx, pa)
				nb, err2 := txn.Count(ctx, pb)
				if err1 != nil || err2 != nil {
					t.Errorf("txn counts: %v, %v", err1, err2)
					return
				}
				if na != nb {
					t.Errorf("torn snapshot: |a| = %d, |b| = %d", na, nb)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// stubPrepared is a PreparedQuery from "some other implementation" — the
// Local adapter must isolate it instead of executing it.
type stubPrepared struct{}

func (stubPrepared) Query() *Query                                       { return nil }
func (stubPrepared) Algorithm() string                                   { return "stub" }
func (stubPrepared) Count(context.Context) (int64, error)                { return 0, nil }
func (stubPrepared) Enumerate(context.Context, func([]int64) bool) error { return nil }
func (stubPrepared) Rows(context.Context) iter.Seq[[]int64]              { return func(func([]int64) bool) {} }
func (stubPrepared) RowsErr(context.Context) iter.Seq2[[]int64, error] {
	return func(func([]int64, error) bool) {}
}
func (stubPrepared) Stats() ExecStats { return ExecStats{} }
func (stubPrepared) Close() error     { return nil }

// TestLocalQuerier pins the Local adapter: the full Querier flow over a
// Store, with foreign handles isolated per-request in Batch and rejected in
// transactions.
func TestLocalQuerier(t *testing.T) {
	ctx := context.Background()
	q := Local(NewStore())
	if err := q.DefineRelation("e", 2); err != nil {
		t.Fatal(err)
	}
	if err := q.Load("e", [][]int64{{0, 1}, {1, 2}, {2, 0}}); err != nil {
		t.Fatal(err)
	}
	if got := q.Relations(); len(got) != 1 || got[0] != "e" {
		t.Fatalf("Relations = %v", got)
	}
	if arity, err := q.Arity("e"); err != nil || arity != 2 {
		t.Fatalf("Arity = %d, %v", arity, err)
	}
	pat, err := q.ParseQuery("tri", "e(a, b), e(b, c), e(c, a)")
	if err != nil {
		t.Fatal(err)
	}
	p, err := q.Prepare(pat, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	n, err := p.Count(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("count = %d, want 3", n)
	}
	results, err := q.Batch(ctx, []BatchRequest{
		{Prepared: p},
		{Prepared: stubPrepared{}},
		{Prepared: p, Rows: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[0].Count != 3 {
		t.Errorf("batch[0] = %+v", results[0])
	}
	if !errors.Is(results[1].Err, ErrForeignPrepared) {
		t.Errorf("batch[1].Err = %v, want ErrForeignPrepared", results[1].Err)
	}
	if results[2].Err != nil || int64(len(results[2].Rows)) != 3 {
		t.Errorf("batch[2] = %+v", results[2])
	}
	txn, err := q.ReadTxn()
	if err != nil {
		t.Fatal(err)
	}
	defer txn.Close()
	if _, err := txn.Count(ctx, stubPrepared{}); !errors.Is(err, ErrForeignPrepared) {
		t.Errorf("txn foreign count: %v, want ErrForeignPrepared", err)
	}
	tn, err := txn.Count(ctx, p)
	if err != nil || tn != 3 {
		t.Fatalf("txn count = %d, %v", tn, err)
	}
	rows := 0
	for range txn.Rows(ctx, p) {
		rows++
	}
	if rows != 3 {
		t.Fatalf("txn rows = %d, want 3", rows)
	}
	if err := q.ApplyAll(map[string][]Delta{"e": {Remove(2, 0)}}); err != nil {
		t.Fatal(err)
	}
	if n, err := q.Count(ctx, pat, Options{Workers: 1}); err != nil || n != 0 {
		t.Fatalf("count after ApplyAll = %d, %v; want 0", n, err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
}
