package minesweeper

import (
	"context"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/lftj"
	"repro/internal/naive"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/testutil"
)

func count(t *testing.T, e core.Engine, q *query.Query, db *core.DB) int64 {
	t.Helper()
	n, err := e.Count(context.Background(), q, db)
	if err != nil {
		t.Fatalf("%s Count(%s): %v", e.Name(), q.Name, err)
	}
	return n
}

func TestTriangleOnK4(t *testing.T) {
	db := testutil.GraphDB(testutil.K4, nil)
	if got := count(t, Engine{}, query.Clique(3), db); got != 4 {
		t.Errorf("triangles(K4) = %d, want 4", got)
	}
	if got := count(t, Engine{}, query.Clique(4), db); got != 1 {
		t.Errorf("4-cliques(K4) = %d, want 1", got)
	}
	if got := count(t, Engine{}, query.Cycle(4), db); got != 1 {
		t.Errorf("4-cycles(K4) = %d, want 1", got)
	}
}

func TestPathCount(t *testing.T) {
	edges := [][2]int64{{0, 1}, {1, 2}, {2, 3}}
	db := testutil.GraphDB(edges, map[string][]int64{
		query.Sample1: {0},
		query.Sample2: {3},
	})
	if got := count(t, Engine{}, query.Path(3), db); got != 1 {
		t.Errorf("3-paths = %d, want 1", got)
	}
}

func TestEnumerateMatchesLFTJ(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	db := testutil.RandomGraphDB(rng, 10, 25, 2)
	for _, q := range []*query.Query{query.Clique(3), query.Path(3), query.Comb(), query.Tree(1)} {
		var want, got [][]int64
		if err := (lftj.Engine{}).Enumerate(context.Background(), q, db, collector(&want)); err != nil {
			t.Fatal(err)
		}
		if err := (Engine{}).Enumerate(context.Background(), q, db, collector(&got)); err != nil {
			t.Fatal(err)
		}
		sortTuples(want)
		sortTuples(got)
		if len(want) != len(got) {
			t.Fatalf("%s: ms enumerated %d, lftj %d", q.Name, len(got), len(want))
		}
		for i := range want {
			if relation.CompareTuples(want[i], got[i]) != 0 {
				t.Fatalf("%s: tuple %d = %v, want %v", q.Name, i, got[i], want[i])
			}
		}
	}
}

func collector(out *[][]int64) func([]int64) bool {
	return func(tu []int64) bool {
		*out = append(*out, append([]int64(nil), tu...))
		return true
	}
}

func sortTuples(ts [][]int64) {
	sort.Slice(ts, func(i, j int) bool { return relation.CompareTuples(ts[i], ts[j]) < 0 })
}

// TestDifferentialVsNaive is the main correctness net: every §5.1 query, all
// idea-toggle combinations, random graphs.
func TestDifferentialVsNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	variants := []Options{
		{},
		{DisableMemo: true},
		{DisableComplete: true},
		{DisableSkeleton: true},
		{DisableCountMemo: true},
		{DisableMemo: true, DisableComplete: true, DisableSkeleton: true, DisableCountMemo: true},
	}
	for trial := 0; trial < 6; trial++ {
		n := 4 + rng.Intn(8)
		m := 2 + rng.Intn(20)
		db := testutil.RandomGraphDB(rng, n, m, 2)
		for _, q := range testutil.BenchmarkQueries() {
			want := count(t, naive.Engine{}, q, db)
			for vi, opts := range variants {
				if got := count(t, Engine{Opts: opts}, q, db); got != want {
					t.Errorf("trial %d %s variant %d: ms = %d, naive = %d", trial, q.Name, vi, got, want)
				}
			}
		}
	}
}

// TestDifferentialDenser stresses larger random instances against LFTJ.
func TestDifferentialDenser(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 4; trial++ {
		db := testutil.RandomGraphDB(rng, 30, 150, 3)
		for _, q := range testutil.BenchmarkQueries() {
			want := count(t, lftj.Engine{}, q, db)
			if got := count(t, Engine{}, q, db); got != want {
				t.Errorf("trial %d %s: ms = %d, lftj = %d", trial, q.Name, got, want)
			}
		}
	}
}

// TestTable4GAOCounts: Minesweeper must return identical counts under every
// Table 4 attribute order, NEO or not.
func TestTable4GAOCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	db := testutil.RandomGraphDB(rng, 12, 40, 2)
	q := query.Path(4)
	want := count(t, lftj.Engine{}, q, db)
	for _, gao := range []string{"abcde", "bacde", "bcade", "cbade", "cbdae", "abdce", "badce"} {
		opts := Options{GAO: splitLetters(gao)}
		if got := count(t, Engine{Opts: opts}, q, db); got != want {
			t.Errorf("GAO %s: ms = %d, want %d", gao, got, want)
		}
	}
}

func splitLetters(s string) []string {
	out := make([]string, len(s))
	for i, r := range s {
		out[i] = string(r)
	}
	return out
}

func TestRangePartition(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db := testutil.RandomGraphDB(rng, 20, 60, 2)
	for _, q := range []*query.Query{query.Clique(3), query.Path(3), query.Comb()} {
		want := count(t, Engine{}, q, db)
		var total int64
		cuts := []int64{-1, 5, 11, 16, posInf}
		for i := 0; i+1 < len(cuts); i++ {
			e := Engine{Opts: Options{FirstVarRange: &Range{Lo: cuts[i], Hi: cuts[i+1]}}}
			total += count(t, e, q, db)
		}
		if total != want {
			t.Errorf("%s: partitioned total = %d, want %d", q.Name, total, want)
		}
	}
}

func TestCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := testutil.RandomGraphDB(rng, 150, 3000, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (Engine{}).Count(ctx, query.Clique(4), db); err == nil {
		t.Error("cancelled context should surface an error")
	}
}

func TestBadInputs(t *testing.T) {
	db := testutil.GraphDB(testutil.K4, nil)
	if _, err := (Engine{Opts: Options{GAO: []string{"a"}}}).Count(context.Background(), query.Clique(3), db); err == nil {
		t.Error("short GAO should fail")
	}
	if _, err := (Engine{Opts: Options{GAO: []string{"a", "b", "z"}}}).Count(context.Background(), query.Clique(3), db); err == nil {
		t.Error("GAO with wrong variable should fail")
	}
	if _, err := (Engine{}).Count(context.Background(), query.New("empty"), db); err == nil {
		t.Error("empty query should fail")
	}
	if err := (Engine{}).Enumerate(context.Background(), query.Clique(3), db, nil); err == nil {
		t.Error("nil emit should fail")
	}
	empty := core.NewDB()
	if _, err := (Engine{}).Count(context.Background(), query.Clique(3), empty); err == nil {
		t.Error("missing relation should fail")
	}
}

func TestEarlyStopEnumerate(t *testing.T) {
	db := testutil.GraphDB(testutil.K4, nil)
	n := 0
	err := Engine{}.Enumerate(context.Background(), query.Clique(3), db, func([]int64) bool {
		n++
		return n < 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("enumerated %d tuples after early stop, want 2", n)
	}
}

// TestCountMemoEquivalence: count-mode subtree reuse must agree with plain
// enumeration counting on instances engineered for heavy reuse (large shared
// suffixes — the Figures 3–5 regime).
func TestCountMemoEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 5; trial++ {
		db := testutil.RandomGraphDB(rng, 15, 60, 1) // selectivity 1: everything sampled
		for _, q := range []*query.Query{query.Path(3), query.Path(4), query.Tree(2), query.Comb()} {
			plain := count(t, Engine{Opts: Options{DisableCountMemo: true}}, q, db)
			memo := count(t, Engine{}, q, db)
			if plain != memo {
				t.Errorf("trial %d %s: memo count = %d, plain = %d", trial, q.Name, memo, plain)
			}
		}
	}
}

func TestSelfJoinHeavySuffixReuse(t *testing.T) {
	// A long path graph: many (a,b) pairs share the same c suffix counts.
	var edges [][2]int64
	for i := int64(0); i < 50; i++ {
		edges = append(edges, [2]int64{i, i + 1})
	}
	var all []int64
	for i := int64(0); i <= 50; i++ {
		all = append(all, i)
	}
	db := testutil.GraphDB(edges, map[string][]int64{query.Sample1: all, query.Sample2: all})
	q := query.Path(4)
	want := count(t, lftj.Engine{}, q, db)
	if got := count(t, Engine{}, q, db); got != want {
		t.Errorf("path graph 4-path: ms = %d, lftj = %d", got, want)
	}
}
