# Join Processing for Graph Patterns — development targets mirroring the CI
# jobs (.github/workflows/ci.yml), so "it passed make" and "it passed CI"
# mean the same thing.

.PHONY: help build test race lint integration bench bench-smoke bench-gate load-smoke load-gate fuzz-smoke clean

help:
	@echo "Available targets:"
	@echo ""
	@echo "  make build        - Compile every package and command"
	@echo "  make test         - Run the full test suite"
	@echo "  make race         - Run the test suite under the race detector"
	@echo "  make lint         - gofmt check + go vet + staticcheck (if installed)"
	@echo "  make integration  - graphjoind/graphjoin client-server smoke test"
	@echo "  make bench        - Run all benchmarks (every index backend)"
	@echo "  make bench-smoke  - Run every benchmark once (the CI smoke job)"
	@echo "  make bench-gate   - Gate bench-smoke.txt against bench-smoke.old.txt"
	@echo "  make load-smoke   - Boot graphjoind and drive it with graphjoinload"
	@echo "  make load-gate    - Gate load-smoke.json against load-smoke.old.json"
	@echo "  make fuzz-smoke   - Run every fuzz target for FUZZTIME (default 30s)"
	@echo "  make clean        - Drop build artifacts and the test cache"
	@echo ""

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; \
	fi
	go vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck -checks "SA*" ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

integration:
	scripts/integration.sh

bench:
	go test -bench . -benchmem -run '^$$' ./...

bench-smoke:
	@go test -bench . -benchtime=1x -run '^$$' ./... > bench-smoke.txt 2>&1; \
	status=$$?; cat bench-smoke.txt; exit $$status

# The CI regression gate, runnable locally: snapshot a baseline with
# `make bench-smoke && cp bench-smoke.txt bench-smoke.old.txt`, hack, then
# `make bench-smoke bench-gate`. Without a baseline (the first run) the gate
# is skipped — benchgate.sh exits 3 for that case, which counts as success
# here (only exit 1, a real regression, fails the target).
bench-gate:
	@test -f bench-smoke.txt || { echo "no current run: run 'make bench-smoke' first"; exit 1; }
	@scripts/benchgate.sh bench-smoke.old.txt bench-smoke.txt || { \
		status=$$?; [ $$status -eq 3 ] && exit 0; exit $$status; }

# The load smoke and its gate, mirroring bench-smoke/bench-gate: snapshot a
# baseline with `make load-smoke && cp load-smoke.json load-smoke.old.json`,
# hack, then `make load-smoke load-gate`.
load-smoke:
	scripts/loadsmoke.sh

load-gate:
	@test -f load-smoke.json || { echo "no current run: run 'make load-smoke' first"; exit 1; }
	@scripts/loadgate.sh load-smoke.old.json load-smoke.json || { \
		status=$$?; [ $$status -eq 3 ] && exit 0; exit $$status; }

# The fuzz wall: every fuzz target runs for FUZZTIME (go test allows one
# -fuzz per invocation, hence the sequential loop). Any panic or untyped
# error found by a fuzzer fails the target.
FUZZTIME ?= 30s
fuzz-smoke:
	go test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME) ./internal/query
	go test -run '^$$' -fuzz '^FuzzReadFrame$$' -fuzztime $(FUZZTIME) ./internal/wire
	go test -run '^$$' -fuzz '^FuzzDecodeQuery$$' -fuzztime $(FUZZTIME) ./internal/wire
	go test -run '^$$' -fuzz '^FuzzDecodePayloads$$' -fuzztime $(FUZZTIME) ./internal/wire

clean:
	rm -f bench-smoke.txt bench-smoke.old.txt load-smoke.json load-smoke.old.json *.prof
	go clean -testcache
