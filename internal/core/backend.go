package core

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/relation"
)

// ErrUnknownBackend reports a backend name outside the registered set; API
// callers branch with errors.Is instead of matching message text.
var ErrUnknownBackend = errors.New("unknown index backend")

// Backend names a physical trie-index implementation. The paper's engines
// (§4.1) are defined against an abstract trie/B-tree index; this reproduction
// offers three interchangeable realizations of that contract so they can be
// differential-tested and benchmarked against each other.
type Backend string

const (
	// BackendFlat is the reference backend: the sorted flat relation itself,
	// with child ranges re-derived by binary search over row ranges on every
	// cursor operation. Zero extra memory, zero build cost beyond the sort.
	BackendFlat Backend = "flat"
	// BackendCSR materializes each trie level as contiguous key+offset
	// arrays at index-build time (relation.CSRTrie): cursor Open/Next become
	// O(1), SeekGE gallops over a dense array, and Minesweeper's gap probes
	// run one bounded binary search per level. Costs one extra O(arity · n)
	// build pass and up to arity·n keys of memory per index. CSR indexes are
	// maintained incrementally under DB.ApplyDelta through a delta overlay
	// (relation.Overlay), so incremental views keep this backend's speed.
	BackendCSR Backend = "csr"
	// BackendCSRSharded partitions each CSR trie into disjoint shards by
	// contiguous first-attribute ranges (relation.ShardedCSR). Sequential
	// execution matches BackendCSR; the §4.10 parallel Count path maps jobs
	// one-to-one onto shards so every worker binds its own physically
	// disjoint index — no shared-array cache contention between cores.
	BackendCSRSharded Backend = "csr-sharded"
)

// DefaultBackend is used when no backend is selected. The CSR backend is the
// default now that prepared, repeatedly executed queries dominate the
// workloads and incremental views maintain CSR indexes through delta
// overlays; select BackendFlat explicitly for one-shot queries on
// memory-tight settings (it is also the differential-testing reference).
const DefaultBackend = BackendCSR

// ParseBackend resolves a user-supplied backend name; empty selects
// DefaultBackend.
func ParseBackend(s string) (Backend, error) {
	switch Backend(s) {
	case "":
		return DefaultBackend, nil
	case BackendFlat:
		return BackendFlat, nil
	case BackendCSR:
		return BackendCSR, nil
	case BackendCSRSharded:
		return BackendCSRSharded, nil
	}
	return "", fmt.Errorf("core: %w %q (want %q, %q, or %q)",
		ErrUnknownBackend, s, BackendFlat, BackendCSR, BackendCSRSharded)
}

// TrieCursor is the per-execution iteration handle over one GAO-consistent
// index, with the trie contract Leapfrog Triejoin is defined against
// (paper §2.2): Open descends to the first child of the current node, Up
// pops back, Next/SeekGE move within the current level in increasing key
// order (no-ops at the end of a level; callers check AtEnd). Cursors are
// single-goroutine; obtain a fresh one per execution from the index.
type TrieCursor interface {
	Open()
	Up()
	Next()
	SeekGE(v int64)
	AtEnd() bool
	Key() int64
}

// IndexBackend is one GAO-consistent physical index over a relation: the
// trie access path (NewCursor) the worst-case-optimal engines iterate, plus
// the least-upper-bound/greatest-lower-bound gap probe (ProbeGap, the
// paper's seekGap from Algorithm 3) Minesweeper drives. Implementations are
// safe for concurrent executions: a cursor obtained from NewCursor sees one
// immutable snapshot for its whole lifetime, even if the index is advanced
// by DB.ApplyDelta concurrently. Direct ProbeGap calls on an updatable
// index read its current state per call — executions that interleave many
// probes pin a stable view first via SnapshotAtoms (the engines do this at
// the start of every run).
type IndexBackend interface {
	// Backend identifies the implementation.
	Backend() Backend
	// Arity returns the number of indexed attributes.
	Arity() int
	// Len returns the number of tuples.
	Len() int
	// NewCursor returns a fresh trie cursor positioned at the root.
	NewCursor() TrieCursor
	// ProbeGap probes with a full-arity point: found == true when the tuple
	// is present, else the maximal empty gap box around the point (§4.5).
	ProbeGap(point []int64) (relation.Gap, bool)
}

// ShardedIndex is implemented by backends that partition the trie into
// disjoint physical shards by the first attribute. The §4.10 parallel
// executor aligns its job cut points with ShardStarts and binds each job to
// the Restrict view covering only its own range, so concurrent workers
// touch disjoint index arrays.
type ShardedIndex interface {
	IndexBackend
	// NumShards returns the shard count.
	NumShards() int
	// ShardStarts returns the smallest first-attribute value of each shard,
	// in increasing order.
	ShardStarts() []int64
	// Restrict returns a view over the shards intersecting the
	// first-attribute range [lo, hi). Within that range the view behaves
	// exactly like the full index.
	Restrict(lo, hi int64) IndexBackend
}

// flatIndex adapts the sorted relation itself as an IndexBackend.
type flatIndex struct {
	r *relation.Relation
}

func (f flatIndex) Backend() Backend      { return BackendFlat }
func (f flatIndex) Arity() int            { return f.r.Arity() }
func (f flatIndex) Len() int              { return f.r.Len() }
func (f flatIndex) NewCursor() TrieCursor { return relation.NewTrieIterator(f.r) }
func (f flatIndex) ProbeGap(point []int64) (relation.Gap, bool) {
	return f.r.ProbeGap(point)
}

// csrIndex serves a CSR trie through a delta overlay snapshot. The snapshot
// pointer is swapped atomically by DB.ApplyDelta, so executions in flight
// keep the snapshot they pinned (via Snapshot or NewCursor) while new
// executions see the updated contents — this is what keeps plans compiled
// against the CSR backend valid across incremental updates.
type csrIndex struct {
	ov atomic.Pointer[relation.Overlay]
}

func newCSRIndex(r *relation.Relation) *csrIndex {
	c := &csrIndex{}
	c.ov.Store(relation.NewOverlay(r))
	return c
}

func (c *csrIndex) Backend() Backend      { return BackendCSR }
func (c *csrIndex) Arity() int            { return c.ov.Load().Arity() }
func (c *csrIndex) Len() int              { return c.ov.Load().Len() }
func (c *csrIndex) NewCursor() TrieCursor { return c.ov.Load().NewCursor() }
func (c *csrIndex) ProbeGap(point []int64) (relation.Gap, bool) {
	return c.ov.Load().ProbeGap(point)
}

// Snapshot implements Snapshotter: the returned view is pinned to the
// overlay state at call time, so every probe and cursor an execution takes
// through it reads one consistent index state.
func (c *csrIndex) Snapshot() IndexBackend { return overlayView{ov: c.ov.Load()} }

// applyDelta folds an update batch (already permuted into this index's
// attribute order and filtered to the overlay invariants) into a new
// overlay snapshot. Callers serialize applyDelta under the DB lock.
func (c *csrIndex) applyDelta(ins, dels [][]int64) {
	c.ov.Store(c.ov.Load().Apply(ins, dels))
}

// PendingDelta returns the overlay log size (tuples applied since the last
// compaction); DB.OverlayDepth aggregates it for the metrics layer.
func (c *csrIndex) PendingDelta() int { return c.ov.Load().LogLen() }

// overlayView is one immutable overlay snapshot served as an IndexBackend.
type overlayView struct {
	ov *relation.Overlay
}

func (v overlayView) Backend() Backend      { return BackendCSR }
func (v overlayView) Arity() int            { return v.ov.Arity() }
func (v overlayView) Len() int              { return v.ov.Len() }
func (v overlayView) NewCursor() TrieCursor { return v.ov.NewCursor() }
func (v overlayView) ProbeGap(point []int64) (relation.Gap, bool) {
	return v.ov.ProbeGap(point)
}

// Snapshotter is implemented by index backends whose contents can advance
// in place under DB.ApplyDelta; Snapshot returns a stable point-in-time
// view. Engines pin their atoms through SnapshotAtoms at the start of every
// execution so a concurrent delta batch can never mix two index states
// within one run.
type Snapshotter interface {
	Snapshot() IndexBackend
}

// SnapshotAtoms resolves every snapshottable atom index to a single
// point-in-time view for the duration of one execution. Atoms bound to the
// same index object resolve to the same snapshot, so self-joins see one
// consistent relation state; the input slice is returned unchanged when
// nothing is snapshottable.
func SnapshotAtoms(atoms []AtomIndex) []AtomIndex {
	snapshottable := false
	for _, a := range atoms {
		if _, ok := a.Index.(Snapshotter); ok {
			snapshottable = true
			break
		}
	}
	if !snapshottable {
		return atoms
	}
	return snapshotWith(atoms, make(map[IndexBackend]IndexBackend, len(atoms)))
}

// snapshotWith resolves snapshottable atom indexes through memo, taking and
// memoizing a snapshot for indexes not yet present; the per-execution
// SnapshotAtoms passes a fresh memo, a Lease its persistent one. The input
// slice is copied only when something actually resolves.
func snapshotWith(atoms []AtomIndex, memo map[IndexBackend]IndexBackend) []AtomIndex {
	out := atoms
	copied := false
	for i, a := range atoms {
		s, ok := a.Index.(Snapshotter)
		if !ok {
			continue
		}
		v, seen := memo[a.Index]
		if !seen {
			v = s.Snapshot()
			memo[a.Index] = v
		}
		if !copied {
			out = append([]AtomIndex(nil), atoms...)
			copied = true
		}
		out[i].Index = v
	}
	return out
}

// shardedIndex adapts a sharded CSR trie as a ShardedIndex.
type shardedIndex struct {
	t *relation.ShardedCSR
}

func (s shardedIndex) Backend() Backend      { return BackendCSRSharded }
func (s shardedIndex) Arity() int            { return s.t.Arity() }
func (s shardedIndex) Len() int              { return s.t.Len() }
func (s shardedIndex) NewCursor() TrieCursor { return relation.NewShardedCursor(s.t) }
func (s shardedIndex) ProbeGap(point []int64) (relation.Gap, bool) {
	return s.t.ProbeGap(point)
}
func (s shardedIndex) NumShards() int       { return s.t.NumShards() }
func (s shardedIndex) ShardStarts() []int64 { return s.t.ShardStarts() }
func (s shardedIndex) Restrict(lo, hi int64) IndexBackend {
	r := s.t.Restrict(lo, hi)
	if r.NumShards() == 1 {
		// The common case under shard-aligned jobs: the job covers exactly
		// one shard, so hand out the shard trie directly — its cursors are
		// plain CSR cursors with zero composition overhead, and its gap
		// probes may overreach the shard boundary, which is sound inside
		// the job's own range.
		return shardTrieIndex{t: r.Shard(0)}
	}
	return shardedIndex{t: r}
}

// shardTrieIndex serves one shard of a sharded index as a standalone
// backend (the per-job binding of the §4.10 parallel path).
type shardTrieIndex struct {
	t *relation.CSRTrie
}

func (s shardTrieIndex) Backend() Backend      { return BackendCSRSharded }
func (s shardTrieIndex) Arity() int            { return s.t.Arity() }
func (s shardTrieIndex) Len() int              { return s.t.Len() }
func (s shardTrieIndex) NewCursor() TrieCursor { return relation.NewCSRCursor(s.t) }
func (s shardTrieIndex) ProbeGap(point []int64) (relation.Gap, bool) {
	return s.t.ProbeGap(point)
}

// RestrictAtoms returns the atom bindings with every atom whose index leads
// on the first GAO attribute (VarPos[0] == 0) restricted to the shards
// covering [lo, hi) — the per-job disjoint physical indexes of the §4.10
// parallel path. Atoms on non-sharded backends are returned unchanged; when
// nothing is sharded the input slice is returned as is.
func RestrictAtoms(atoms []AtomIndex, lo, hi int64) []AtomIndex {
	out := atoms
	copied := false
	for i, a := range atoms {
		if len(a.VarPos) == 0 || a.VarPos[0] != 0 {
			continue
		}
		si, ok := a.Index.(ShardedIndex)
		if !ok {
			continue
		}
		if !copied {
			out = append([]AtomIndex(nil), atoms...)
			copied = true
		}
		out[i].Index = si.Restrict(lo, hi)
	}
	return out
}

// NewIndexBackend wraps an already GAO-consistent relation in the chosen
// backend (building the CSR trie levels, shards, or overlay as needed). The
// DB's TrieIndex method is the caching entry point; this constructor serves
// callers that manage relations directly.
func NewIndexBackend(r *relation.Relation, backend Backend) (IndexBackend, error) {
	switch backend {
	case "":
		return NewIndexBackend(r, DefaultBackend)
	case BackendFlat:
		return flatIndex{r: r}, nil
	case BackendCSR:
		return newCSRIndex(r), nil
	case BackendCSRSharded:
		return shardedIndex{t: relation.NewShardedCSR(r, 0)}, nil
	}
	return nil, fmt.Errorf("core: %w %q", ErrUnknownBackend, backend)
}
