package repro

import (
	"testing"
)

// TestExtendedPlanCacheDimensions pins the new plan-cache key dimensions:
// queries sharing one body but differing in projection head, predicate,
// predicate constant, or aggregate function must compile to distinct cached
// plans, and re-preparing any of them must hit its own entry.
func TestExtendedPlanCacheDimensions(t *testing.T) {
	g := GenerateGraph(ErdosRenyi, 100, 300, 2)
	s := g.Store()
	srcs := []string{
		"edge(a, b)",
		"out(a) :- edge(a, b)",
		"out(b) :- edge(a, b)",
		"edge(a, b), a < 5",
		"edge(a, b), a < 6",
		"edge(a, b), a <= 5",
		"edge(a, b), a != 5",
		"deg(a, count(b)) :- edge(a, b)",
		"deg(a, sum(b)) :- edge(a, b)",
		"edge(3, b)",
		"edge(4, b)",
	}
	queries := make([]*Query, len(srcs))
	before := g.DB().CachedPlanCount()
	for i, src := range srcs {
		q, err := s.ParseQuery("q", src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		queries[i] = q
		if _, err := s.Prepare(q, Options{Algorithm: LFTJ}); err != nil {
			t.Fatalf("prepare %q: %v", src, err)
		}
	}
	if got := g.DB().CachedPlanCount() - before; got != len(srcs) {
		t.Fatalf("%d distinct query shapes cached %d plans — the key fails to distinguish projection/predicate/aggregate dimensions", len(srcs), got)
	}
	for i, q := range queries {
		p, err := s.Prepare(q, Options{Algorithm: LFTJ})
		if err != nil {
			t.Fatalf("re-prepare %q: %v", srcs[i], err)
		}
		if st := p.Stats(); st.PlanCacheHits != 1 {
			t.Errorf("re-prepare %q: PlanCacheHits = %d, want 1", srcs[i], st.PlanCacheHits)
		}
	}
}

// TestExtendedPlanCacheInvalidation is the invalidation regression test:
// replacing a relation an extended query's cached plan reads must drop the
// entry, and the re-prepared plan must see the new data.
func TestExtendedPlanCacheInvalidation(t *testing.T) {
	s := NewStore()
	if err := s.DefineRelation("e", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Load("e", [][]int64{{1, 2}, {2, 3}}); err != nil {
		t.Fatal(err)
	}
	q, err := s.ParseQuery("deg", "deg(a, count(b)) :- e(a, b)")
	if err != nil {
		t.Fatal(err)
	}
	p1, err := s.Prepare(q, Options{Algorithm: LFTJ})
	if err != nil {
		t.Fatal(err)
	}
	if st := p1.Stats(); st.PlanCacheMisses != 1 || st.PlanCacheHits != 0 {
		t.Fatalf("first prepare: hits=%d misses=%d, want 0/1", st.PlanCacheHits, st.PlanCacheMisses)
	}
	// Bulk-replace the relation: the cached plan reads it and must drop.
	if err := s.Load("e", [][]int64{{5, 6}, {5, 7}, {8, 9}}); err != nil {
		t.Fatal(err)
	}
	p2, err := s.Prepare(q, Options{Algorithm: LFTJ})
	if err != nil {
		t.Fatal(err)
	}
	if st := p2.Stats(); st.PlanCacheMisses != 1 || st.PlanCacheHits != 0 {
		t.Errorf("post-replace prepare: hits=%d misses=%d, want a fresh compile (0/1)", st.PlanCacheHits, st.PlanCacheMisses)
	}
	rows := collectRows(t, p2)
	sortedRows(rows)
	requireSameRows(t, "post-replace aggregate", rows, [][]int64{{5, 2}, {8, 1}})
}
