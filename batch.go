package repro

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Request is one unit of a Batch: a prepared query to execute, optionally
// collecting its result tuples alongside the count.
type Request struct {
	// Prepared is the compiled query to execute; it must have been prepared
	// on the store being batched, with a plan-aware algorithm (lftj, ms, or
	// genericjoin — Batch runs inside a read transaction, and engines
	// without a plan representation fail their request with ErrTxnUnplanned).
	Prepared *Prepared
	// Rows, when true, collects the result tuples (in output order — the
	// head variables then any aggregate values) into the Result as well as
	// counting them. Leave false for
	// count-only workloads — collection materializes the whole result.
	Rows bool
}

// Result is the outcome of one batched request.
type Result struct {
	// Count is the number of result tuples.
	Count int64
	// Rows holds the result tuples when the request asked for them.
	Rows [][]int64
	// Err is the per-request failure; other requests in the batch are
	// unaffected.
	Err error
}

// Batch executes many prepared queries concurrently against one shared
// snapshot of the store — all requests observe the same index state, exactly
// as if they ran inside a single ReadTxn — with a worker budget of
// GOMAXPROCS. Results are returned in request order; a failed request
// reports through its own Result.Err without aborting the rest, and a
// cancelled context fails the not-yet-started requests with the context
// error.
//
// Requests whose engines parallelize internally (Workers != 1) compete with
// the batch's own workers; batched workloads usually prepare their queries
// with Workers: 1 and let Batch supply the parallelism.
func (s *Store) Batch(ctx context.Context, reqs []Request) []Result {
	return s.BatchWorkers(ctx, reqs, 0)
}

// BatchWorkers is Batch with an explicit worker budget (0 means GOMAXPROCS;
// the budget is clamped to the number of requests).
func (s *Store) BatchWorkers(ctx context.Context, reqs []Request, workers int) []Result {
	results := make([]Result, len(reqs))
	if len(reqs) == 0 {
		return results
	}
	txn := s.ReadTxn()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(reqs) {
		workers = len(reqs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reqs) {
					return
				}
				if err := ctx.Err(); err != nil {
					results[i] = Result{Err: err}
					continue
				}
				results[i] = runRequest(ctx, txn, reqs[i])
			}
		}()
	}
	wg.Wait()
	return results
}

// runRequest executes one request inside the shared transaction.
func runRequest(ctx context.Context, txn *Txn, req Request) Result {
	if !req.Rows {
		n, err := txn.Count(ctx, req.Prepared)
		return Result{Count: n, Err: err}
	}
	var res Result
	res.Err = txn.Enumerate(ctx, req.Prepared, func(t []int64) bool {
		res.Rows = append(res.Rows, append([]int64(nil), t...))
		return true
	})
	res.Count = int64(len(res.Rows))
	return res
}
