package repro

import (
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/relation"
)

// ErrCorruptLog reports unrecoverable damage to a store's durable state
// (internal/durable's typed error re-exported): a corrupt record in the
// middle of the log, an LSN gap, or a directory whose snapshots are all
// invalid. A merely torn log tail is NOT this error at the OpenStore level —
// it is tolerated, reported via RecoveryInfo.TailErr, and dropped.
var ErrCorruptLog = durable.ErrCorruptLog

// DurabilityOptions configures a store opened with OpenStore.
type DurabilityOptions struct {
	// Sync is the commit fsync policy: "group" (the default — every write
	// is fsynced before it is acknowledged, and concurrent writers share
	// fsyncs through a group-commit leader), "always" (group without the
	// accumulation window), or "none" (leave fsync to the kernel and to
	// checkpoints; a crash may lose recent acknowledged writes but never
	// corrupts recovery).
	Sync string
	// GroupWindow is how long a group-commit leader waits for more writers
	// to join its fsync; zero syncs immediately. Larger windows trade
	// per-write latency for fewer fsyncs under concurrency.
	GroupWindow time.Duration
	// MetricsName is the store label this store's durability metrics (WAL
	// fsync latency, group-commit batch size, checkpoint duration and age)
	// are registered under in the process metrics registry. Empty defaults
	// to the base name of dir; "-" disables durability metrics entirely.
	MetricsName string
	// CheckpointBytes, when positive, triggers an automatic checkpoint as
	// soon as a write pushes the un-pruned log past this size — the
	// size-based complement to a timer-driven Checkpoint loop, bounding
	// recovery replay by data volume rather than wall clock. The checkpoint
	// runs in the background off the write path; at most one runs at a
	// time, and a failed attempt is retried by the next qualifying write.
	CheckpointBytes int64
}

// RecoveryInfo summarizes what OpenStore reconstructed from disk.
type RecoveryInfo struct {
	// SnapshotLSN is the checkpoint the store warm-started from (0 = none).
	SnapshotLSN uint64
	// Relations is the number of relations restored from the snapshot.
	Relations int
	// Replayed is the number of log records replayed on top of it.
	Replayed int
	// LastLSN is the durable log position recovery reached; new writes are
	// assigned LSNs from LastLSN+1.
	LastLSN uint64
	// TailErr, if non-nil, wraps ErrCorruptLog and describes the torn or
	// corrupt log tail found past LastLSN. Those bytes were never
	// acknowledged as durable; they have been truncated away and the store
	// is fully usable. Operators should still surface it (the integration
	// banner does) since it marks an unclean shutdown.
	TailErr error
}

// OpenStore opens (or initializes) a durable store rooted at dir. Recovery
// runs first: the newest valid snapshot is loaded, then the log tail is
// replayed through the same delta path live writes take, so cached CSR
// indexes warm up through the ordinary overlay fold-in. After OpenStore
// returns, every mutation — DefineRelation, Load, Apply, ApplyAll, and the
// Graph wrappers routing through them — is appended to the write-ahead log
// and fsynced per opts.Sync before the call returns, so an acknowledged
// write survives a crash. Call Checkpoint periodically to bound log growth
// and recovery time, and Close on shutdown.
func OpenStore(dir string, opts DurabilityOptions) (*Store, *RecoveryInfo, error) {
	policy, err := durable.ParsePolicy(opts.Sync)
	if err != nil {
		return nil, nil, err
	}
	label := opts.MetricsName
	switch label {
	case "":
		label = filepath.Base(dir)
	case "-":
		label = ""
	}
	mgr, rec, err := durable.Open(dir, durable.Options{Sync: policy, GroupWindow: opts.GroupWindow, MetricsLabel: label})
	if err != nil {
		return nil, nil, err
	}
	db := core.NewDB()
	for _, sr := range rec.Relations {
		db.Add(relation.FromTuples(sr.Name, sr.Arity, sr.Tuples))
	}
	if err := replay(db, rec.Records); err != nil {
		mgr.Close()
		return nil, nil, err
	}
	info := &RecoveryInfo{
		SnapshotLSN: rec.SnapshotLSN,
		Relations:   len(rec.Relations),
		Replayed:    len(rec.Records),
		LastLSN:     rec.LastLSN,
		TailErr:     rec.TailErr,
	}
	return &Store{db: db, dur: mgr, ckptBytes: opts.CheckpointBytes}, info, nil
}

// replay folds recovered log records into the database through the same
// paths the live writes took. A record that no longer applies is corruption
// by definition — the live process validated it before logging it.
func replay(db *core.DB, records []durable.Record) error {
	for _, r := range records {
		var err error
		switch r.Op {
		case durable.OpDefine:
			if cur, lookErr := db.Relation(r.Name); lookErr == nil {
				if cur.Arity() != r.Arity {
					err = fmt.Errorf("define %q arity %d over existing arity %d", r.Name, r.Arity, cur.Arity())
				}
				// Same arity: the no-op redefine, same as live.
			} else {
				db.Add(relation.NewBuilder(r.Name, r.Arity).Build())
			}
		case durable.OpLoad:
			var arity int
			if cur, lookErr := db.Relation(r.Name); lookErr == nil {
				arity = cur.Arity()
			} else {
				err = fmt.Errorf("load into undefined relation %q", r.Name)
				break
			}
			db.Add(relation.FromTuples(r.Name, arity, r.Tuples))
		case durable.OpDeltas:
			err = db.ApplyDeltas(r.Batches)
		default:
			err = fmt.Errorf("unknown op %d", r.Op)
		}
		if err != nil {
			return fmt.Errorf("%w: replaying record %d: %v", ErrCorruptLog, r.LSN, err)
		}
	}
	return nil
}

// applyDeltas is the single funnel every incremental write takes —
// Store.Apply, Store.ApplyAll, Graph.ApplyEdges, and the maintained views'
// batches all land here as one atomic multi-relation delta. On a durable
// store the record is appended and the in-memory apply performed under one
// lock (so log order equals apply order), then the caller blocks until the
// record is fsynced per the store's policy; on an in-memory store it is a
// plain atomic apply. Batches must be fully validated before calling — a
// logged record must never fail to apply, here or during recovery replay.
func (s *Store) applyDeltas(batches []core.DeltaBatch) error {
	if s.dur == nil {
		return s.db.ApplyDeltas(batches)
	}
	s.mu.Lock()
	lsn, err := s.dur.AppendDeltas(batches)
	if err == nil {
		err = s.db.ApplyDeltas(batches)
	}
	s.mu.Unlock()
	if err != nil {
		return err
	}
	if err := s.dur.Commit(lsn); err != nil {
		return err
	}
	s.maybeCheckpoint()
	return nil
}

// maybeCheckpoint starts a background checkpoint when the un-pruned log has
// outgrown DurabilityOptions.CheckpointBytes. Called after every
// acknowledged write; the CAS keeps at most one checkpoint in flight, and a
// failure is simply retried by the next write that still sees an oversized
// log — checkpointing is an optimization, never a correctness requirement.
func (s *Store) maybeCheckpoint() {
	if s.ckptBytes <= 0 || s.dur.UnprunedBytes() < uint64(s.ckptBytes) {
		return
	}
	if !s.ckptBusy.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.ckptBusy.Store(false)
		s.Checkpoint()
	}()
}

// Checkpoint snapshots every relation's base rows at the current log
// position and prunes the log and older snapshots the new snapshot
// supersedes. Recovery after a checkpoint replays only records written
// since, so periodic checkpoints bound both log growth and restart time.
// The capture is consistent (one database lock acquisition paired with the
// current LSN under the store's write lock); serialization and file I/O
// happen outside the write path, concurrent with new writes. On an
// in-memory store Checkpoint is a no-op.
func (s *Store) Checkpoint() error {
	if s.dur == nil {
		return nil
	}
	// LastLSN and the relation capture must agree: hold the write lock so
	// no append lands between reading one and the other.
	s.mu.Lock()
	lsn := s.dur.LastLSN()
	rels := s.db.Snapshot()
	s.mu.Unlock()
	return s.dur.Checkpoint(lsn, rels)
}

// LastLSN returns the store's current log position (0 on an in-memory
// store): the LSN of the last write appended to the log.
func (s *Store) LastLSN() uint64 {
	if s.dur == nil {
		return 0
	}
	return s.dur.LastLSN()
}

// Close fsyncs and closes the durable log; further writes fail. Queries keep
// working — the in-memory state is intact — but the store no longer persists
// anything. Close on an in-memory store is a no-op. Close does not
// checkpoint; call Checkpoint first for a replay-free next start.
func (s *Store) Close() error {
	if s.dur == nil {
		return nil
	}
	err := s.dur.Close()
	if err != nil && errors.Is(err, durable.ErrClosed) {
		return nil
	}
	return err
}
