package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/query"
)

// frameBytes renders one frame for the seed corpus.
func frameBytes(typ byte, reqID uint64, body []byte) []byte {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, typ, reqID, body); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzReadFrame throws arbitrary byte streams at the frame reader. The
// invariants: ReadFrame never panics, every failure is one of the protocol's
// typed errors (or the reader's own io errors), and every successfully read
// frame re-encodes via WriteFrame to something ReadFrame parses back
// identically.
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})                   // truncated header
	f.Add([]byte{0, 0, 0, 0, THello})        // zero length
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0}) // declared length over MaxFrame
	f.Add([]byte{0, 0, 0, 2, TCount})        // payload shorter than declared
	f.Add(frameBytes(THello, 0, nil))
	f.Add(frameBytes(TCount, 7, []byte{1, 2, 3}))
	f.Add(frameBytes(TRowChunk, 1<<40, bytes.Repeat([]byte{0xaa}, 100)))
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, reqID, body, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			switch {
			case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF),
				errors.Is(err, ErrFrameTooLarge), errors.Is(err, ErrTruncated):
			default:
				t.Fatalf("ReadFrame: untyped error %T: %v", err, err)
			}
			return
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, typ, reqID, body); err != nil {
			t.Fatalf("WriteFrame(%#x, %d, %d bytes) of a parsed frame: %v", typ, reqID, len(body), err)
		}
		typ2, reqID2, body2, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("re-read of re-encoded frame: %v", err)
		}
		if typ2 != typ || reqID2 != reqID || !bytes.Equal(body2, body) {
			t.Fatalf("frame round trip: (%#x, %d, %x) != (%#x, %d, %x)", typ2, reqID2, body2, typ, reqID, body)
		}
	})
}

// queryBytes encodes one query payload for the seed corpus.
func queryBytes(t *testing.F, src string) []byte {
	q, err := query.Parse("seed", src)
	if err != nil {
		t.Fatalf("seed %q: %v", src, err)
	}
	var e Enc
	FromQuery(q).Encode(&e)
	return e.Bytes()
}

// FuzzDecodeQuery throws arbitrary payloads at the query decoder and the
// ToQuery re-validation behind it — the path a hostile peer reaches. The
// invariants: no panic, decoding failures are reported through Dec.Err or
// ToQuery's typed errors, and every payload that survives validation
// round-trips losslessly through FromQuery/Encode/DecodeQuery.
func FuzzDecodeQuery(f *testing.F) {
	for _, src := range []string{
		"edge(a, b), edge(b, c)",
		"out(a) :- edge(a, b)",
		"e(137, b), e(b, c), b != 4",
		"deg(a, count(b)) :- edge(a, b), a >= 3",
		"total(sum(b)) :- e(a, b)",
	} {
		f.Add(queryBytes(f, src))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDec(data)
		wq := DecodeQuery(d)
		if d.Err() != nil {
			return
		}
		q, err := wq.ToQuery()
		if err != nil {
			return
		}
		var e Enc
		FromQuery(q).Encode(&e)
		d2 := NewDec(e.Bytes())
		wq2 := DecodeQuery(d2)
		if d2.Err() != nil {
			t.Fatalf("re-decode of valid query %s: %v", q, d2.Err())
		}
		q2, err := wq2.ToQuery()
		if err != nil {
			t.Fatalf("re-validation of valid query %s: %v", q, err)
		}
		if q2.String() != q.String() {
			t.Fatalf("query round trip: %q != %q", q2, q)
		}
	})
}

// FuzzDecodePayloads covers the remaining payload decoders — errors, engine
// options, counter snapshots — behind a one-byte selector. The invariants:
// no decoder panics on arbitrary bytes, and whatever a decoder accepts
// re-encodes and re-decodes to the same value.
func FuzzDecodePayloads(f *testing.F) {
	f.Add([]byte{0})
	f.Add(append([]byte{0}, EncodeErr(repro.ErrUnknownRelation)...))
	f.Add(append([]byte{0}, EncodeErr(&Error{Code: "made-up", Msg: "boom"})...))
	var eo Enc
	EncodeOptions(&eo, repro.Options{Algorithm: repro.MS, Workers: 4, GAO: []string{"a", "b"}, DisableProbeMemo: true, MaxRows: 10})
	f.Add(append([]byte{1}, eo.Bytes()...))
	var es Enc
	EncodeStats(&es, core.Stats{Executions: 3, Outputs: 99, Seeks: -1})
	f.Add(append([]byte{2}, es.Bytes()...))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		sel, body := data[0]%3, data[1:]
		switch sel {
		case 0:
			err := DecodeErr(body)
			if err == nil {
				t.Fatal("DecodeErr returned nil error")
			}
			again := DecodeErr(EncodeErr(err))
			if again == nil || again.Error() != err.Error() {
				t.Fatalf("error round trip: %v != %v", again, err)
			}
		case 1:
			d := NewDec(body)
			o := DecodeOptions(d)
			if d.Err() != nil {
				return
			}
			var e Enc
			EncodeOptions(&e, o)
			o2 := DecodeOptions(NewDec(e.Bytes()))
			if !reflect.DeepEqual(o2, o) {
				t.Fatalf("options round trip: %+v != %+v", o2, o)
			}
		case 2:
			d := NewDec(body)
			s := DecodeStats(d)
			if d.Err() != nil {
				return
			}
			var e Enc
			EncodeStats(&e, s)
			s2 := DecodeStats(NewDec(e.Bytes()))
			if s2 != s {
				t.Fatalf("stats round trip: %+v != %+v", s2, s)
			}
		}
	})
}
