package trace

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestUntracedFastPath pins the zero-cost contract: without a span in the
// context, Start returns a nil span whose every method is a no-op.
func TestUntracedFastPath(t *testing.T) {
	ctx, sp := Start(context.Background(), "anything")
	if sp != nil {
		t.Fatalf("Start on an untraced context returned a span: %+v", sp)
	}
	if got := FromContext(ctx); got != nil {
		t.Fatalf("untraced context carries a span: %+v", got)
	}
	// Nil-receiver methods must not panic.
	sp.SetInt("k", 1)
	sp.SetStr("k", "v")
	sp.End()
	if sp.TraceID() != 0 || sp.ID() != 0 {
		t.Fatalf("nil span has nonzero ids: %d/%d", sp.TraceID(), sp.ID())
	}
}

// TestSpanNesting checks parent linkage, attributes, and duration ordering
// through the context API.
func TestSpanNesting(t *testing.T) {
	tr := New(NewID())
	root := tr.StartSpan(0, "root")
	ctx := NewContext(context.Background(), root)

	ctx, child := Start(ctx, "child")
	child.SetInt("n", 42)
	child.SetStr("host", "h0")
	_, grand := Start(ctx, "grandchild")
	time.Sleep(time.Millisecond)
	grand.End()
	child.End()
	root.End()
	root.End() // idempotent

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byStage := map[string]SpanRecord{}
	for _, s := range spans {
		byStage[s.Stage] = s
		if s.Trace != tr.ID() {
			t.Errorf("span %q has trace %d, want %d", s.Stage, s.Trace, tr.ID())
		}
	}
	if byStage["child"].Parent != byStage["root"].ID {
		t.Errorf("child parent = %d, want root %d", byStage["child"].Parent, byStage["root"].ID)
	}
	if byStage["grandchild"].Parent != byStage["child"].ID {
		t.Errorf("grandchild parent = %d, want child %d", byStage["grandchild"].Parent, byStage["child"].ID)
	}
	if byStage["root"].Parent != 0 {
		t.Errorf("root parent = %d, want 0", byStage["root"].Parent)
	}
	if got := byStage["child"].Attr("host"); got != "h0" {
		t.Errorf("child host attr = %q, want h0", got)
	}
	if byStage["grandchild"].Duration > byStage["child"].Duration ||
		byStage["child"].Duration > byStage["root"].Duration {
		t.Errorf("durations not nested: grand=%v child=%v root=%v",
			byStage["grandchild"].Duration, byStage["child"].Duration, byStage["root"].Duration)
	}
}

// TestSpanCap checks the bounded-buffer contract: past MaxSpans, spans are
// dropped and counted, never accumulated.
func TestSpanCap(t *testing.T) {
	tr := New(NewID())
	for i := 0; i < MaxSpans+10; i++ {
		tr.StartSpan(0, "s").End()
	}
	if got := len(tr.Spans()); got != MaxSpans {
		t.Fatalf("retained %d spans, want cap %d", got, MaxSpans)
	}
	if got := tr.Dropped(); got != 10 {
		t.Fatalf("dropped = %d, want 10", got)
	}
}

// TestNewIDNonzeroAndDistinct pins that generated ids are usable as "traced"
// markers (never the zero sentinel) and do not repeat trivially.
func TestNewIDNonzeroAndDistinct(t *testing.T) {
	seen := map[ID]bool{}
	for i := 0; i < 1000; i++ {
		id := NewID()
		if id == 0 {
			t.Fatal("NewID returned the zero sentinel")
		}
		if seen[id] {
			t.Fatalf("NewID repeated %d", id)
		}
		seen[id] = true
	}
}

// TestBufferRing checks eviction order and lookup of the retention ring.
func TestBufferRing(t *testing.T) {
	b := NewBuffer(2)
	ids := []ID{NewID(), NewID(), NewID()}
	for _, id := range ids {
		tr := New(id)
		tr.StartSpan(0, "s").End()
		b.Add(tr.Data())
	}
	if _, ok := b.Get(ids[0]); ok {
		t.Error("oldest trace not evicted from a 2-slot ring")
	}
	if spans, ok := b.Get(ids[2]); !ok || len(spans) != 1 {
		t.Errorf("newest trace lookup: ok=%v spans=%d", ok, len(spans))
	}
	last := b.Last(0)
	if len(last) != 2 || last[0].ID != ids[1] || last[1].ID != ids[2] {
		t.Errorf("Last(0) = %v, want oldest-first [%d %d]", last, ids[1], ids[2])
	}
	if got := b.Last(1); len(got) != 1 || got[0].ID != ids[2] {
		t.Errorf("Last(1) should keep only the newest trace, got %v", got)
	}
}

// TestSampler checks the one-in-N contract.
func TestSampler(t *testing.T) {
	if NewSampler(0) != nil {
		t.Error("NewSampler(0) should disable sampling")
	}
	s := NewSampler(1)
	for i := 0; i < 5; i++ {
		if !s.Sample() {
			t.Fatal("every-request sampler skipped one")
		}
	}
	s = NewSampler(4)
	hits := 0
	for i := 0; i < 400; i++ {
		if s.Sample() {
			hits++
		}
	}
	if hits != 100 {
		t.Errorf("1-in-4 sampler hit %d of 400", hits)
	}
}

// TestRender sanity-checks the tree renderer: indentation follows parentage
// and attributes print.
func TestRender(t *testing.T) {
	tr := New(NewID())
	root := tr.StartSpan(0, "server.count")
	child := tr.StartSpan(root.ID(), "engine.count")
	child.SetInt("outputs", 7)
	child.End()
	root.End()

	var b strings.Builder
	Render(&b, tr.Spans())
	out := b.String()
	if !strings.Contains(out, "server.count") || !strings.Contains(out, "  engine.count") {
		t.Fatalf("render missing indented stages:\n%s", out)
	}
	if !strings.Contains(out, "outputs=7") {
		t.Fatalf("render missing attrs:\n%s", out)
	}
}
