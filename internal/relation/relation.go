// Package relation implements the storage substrate of the reproduction:
// immutable, lexicographically sorted relations over int64 attribute values,
// with the two access paths the paper's algorithms require — a trie-style
// iterator (open/up/next/seek) for Leapfrog Triejoin and least-upper-bound /
// greatest-lower-bound gap probes for Minesweeper (paper §4.1, Figure 1).
package relation

import (
	"fmt"
	"sort"
)

// Sentinel values standing in for -inf and +inf on the attribute domain.
// Ordinary attribute values must lie strictly between them.
const (
	NegInf int64 = -1 << 62
	PosInf int64 = 1 << 62
)

// Relation is an immutable, duplicate-free relation whose tuples are stored
// row-major in a single flat slice, sorted lexicographically. This mirrors
// the leaf level of the B-tree/trie indices the paper assumes (§4.1): every
// prefix of the attribute list is searchable by binary search.
type Relation struct {
	name  string
	arity int
	rows  []int64 // len(rows) == n*arity
	n     int
}

// Name returns the relation's name.
func (r *Relation) Name() string { return r.name }

// Arity returns the number of attributes.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of tuples.
func (r *Relation) Len() int { return r.n }

// Tuple returns a read-only view of row i. The returned slice aliases
// internal storage and must not be modified.
func (r *Relation) Tuple(i int) []int64 {
	return r.rows[i*r.arity : (i+1)*r.arity]
}

// Value returns column col of row i.
func (r *Relation) Value(i, col int) int64 { return r.rows[i*r.arity+col] }

func (r *Relation) String() string {
	return fmt.Sprintf("%s/%d[%d tuples]", r.name, r.arity, r.n)
}

// Builder accumulates tuples for a Relation. Tuples may be added in any
// order; Build sorts and deduplicates.
type Builder struct {
	name  string
	arity int
	rows  []int64
}

// NewBuilder returns a Builder for a relation with the given name and arity.
// Arity must be at least 1.
func NewBuilder(name string, arity int) *Builder {
	if arity < 1 {
		panic("relation: arity must be >= 1")
	}
	return &Builder{name: name, arity: arity}
}

// Add appends one tuple. It panics if the tuple length does not match the
// arity or a value is outside [0, PosInf). Attribute values are natural
// numbers, matching the paper's N-valued domains; Minesweeper's truncation
// logic (Algorithm 6) relies on -1 sorting below every stored value.
func (b *Builder) Add(tuple ...int64) {
	if len(tuple) != b.arity {
		panic(fmt.Sprintf("relation %s: Add got %d values, want %d", b.name, len(tuple), b.arity))
	}
	for _, v := range tuple {
		if v < 0 || v >= PosInf {
			panic(fmt.Sprintf("relation %s: value %d outside the domain [0, PosInf)", b.name, v))
		}
	}
	b.rows = append(b.rows, tuple...)
}

// Build sorts, deduplicates, and returns the immutable Relation. The Builder
// must not be reused afterwards.
func (b *Builder) Build() *Relation {
	r := &Relation{name: b.name, arity: b.arity, rows: b.rows}
	r.n = len(b.rows) / b.arity
	sortRows(r.rows, r.arity)
	r.dedup()
	b.rows = nil
	return r
}

// FromTuples builds a relation directly from a tuple slice.
func FromTuples(name string, arity int, tuples [][]int64) *Relation {
	b := NewBuilder(name, arity)
	for _, t := range tuples {
		b.Add(t...)
	}
	return b.Build()
}

// fromSortedRows wraps an already sorted, deduplicated row-major slice as a
// Relation without copying or re-sorting. The caller must not mutate rows
// afterwards.
func fromSortedRows(name string, arity int, rows []int64) *Relation {
	return &Relation{name: name, arity: arity, rows: rows, n: len(rows) / arity}
}

// MergeDelta returns r ∪ ins \ dels as a new relation by one linear merge
// of the three sorted row sets — no re-sort, so applying a small update
// batch to a large relation costs O(n) copying instead of O(n log n). ins
// must be disjoint from r and dels a subset of r (both may be nil); the
// incremental-maintenance path (core.DB.ApplyDelta) establishes exactly
// these invariants before calling.
func MergeDelta(r, ins, dels *Relation) *Relation {
	insN, delsN := 0, 0
	if ins != nil {
		insN = ins.n
	}
	if dels != nil {
		delsN = dels.n
	}
	if insN == 0 && delsN == 0 {
		return r
	}
	a := r.arity
	out := make([]int64, 0, (r.n+insN-delsN)*a)
	i, j, k := 0, 0, 0 // cursors into r, ins, dels
	for i < r.n || j < insN {
		// Emit the smaller head of r (minus dels) and ins.
		takeIns := i >= r.n
		if !takeIns && j < insN && CompareTuples(ins.Tuple(j), r.Tuple(i)) < 0 {
			takeIns = true
		}
		if takeIns {
			out = append(out, ins.Tuple(j)...)
			j++
			continue
		}
		t := r.Tuple(i)
		i++
		for k < delsN && CompareTuples(dels.Tuple(k), t) < 0 {
			k++
		}
		if k < delsN && CompareTuples(dels.Tuple(k), t) == 0 {
			k++
			continue
		}
		out = append(out, t...)
	}
	return fromSortedRows(r.name, a, out)
}

// rowSorter sorts a flat row-major slice lexicographically without
// allocating per-row slices.
type rowSorter struct {
	rows  []int64
	arity int
	tmp   []int64
}

func (s *rowSorter) Len() int { return len(s.rows) / s.arity }

func (s *rowSorter) Less(i, j int) bool {
	a, b := s.rows[i*s.arity:(i+1)*s.arity], s.rows[j*s.arity:(j+1)*s.arity]
	for k := 0; k < s.arity; k++ {
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return false
}

func (s *rowSorter) Swap(i, j int) {
	a, b := s.rows[i*s.arity:(i+1)*s.arity], s.rows[j*s.arity:(j+1)*s.arity]
	copy(s.tmp, a)
	copy(a, b)
	copy(b, s.tmp)
}

func sortRows(rows []int64, arity int) {
	sort.Sort(&rowSorter{rows: rows, arity: arity, tmp: make([]int64, arity)})
}

func (r *Relation) dedup() {
	if r.n == 0 {
		return
	}
	w := 1
	for i := 1; i < r.n; i++ {
		if !equalRows(r.rows, w-1, i, r.arity) {
			if w != i {
				copy(r.rows[w*r.arity:(w+1)*r.arity], r.rows[i*r.arity:(i+1)*r.arity])
			}
			w++
		}
	}
	r.rows = r.rows[:w*r.arity]
	r.n = w
}

func equalRows(rows []int64, i, j, arity int) bool {
	a, b := rows[i*arity:(i+1)*arity], rows[j*arity:(j+1)*arity]
	for k := range a {
		if a[k] != b[k] {
			return false
		}
	}
	return true
}

// Permute returns a new relation whose columns are reordered so that output
// column k holds input column perm[k], re-sorted lexicographically. It is
// how the engine realizes the GAO-consistency assumption (§4.1): each atom
// gets an index whose attribute order follows the global attribute order.
func (r *Relation) Permute(perm []int) *Relation {
	if len(perm) != r.arity {
		panic("relation: Permute length mismatch")
	}
	identity := true
	for k, p := range perm {
		if p != k {
			identity = false
			break
		}
	}
	if identity {
		return r
	}
	rows := make([]int64, len(r.rows))
	for i := 0; i < r.n; i++ {
		src := r.rows[i*r.arity : (i+1)*r.arity]
		dst := rows[i*r.arity : (i+1)*r.arity]
		for k, p := range perm {
			dst[k] = src[p]
		}
	}
	out := &Relation{name: r.name, arity: r.arity, rows: rows, n: r.n}
	sortRows(out.rows, out.arity)
	return out
}

// lowerBound returns the first row index in [lo, hi) whose value at column
// col is >= v. Rows in [lo, hi) must share a common prefix on columns < col
// so that column col is sorted within the range.
func (r *Relation) lowerBound(col, lo, hi int, v int64) int {
	return lo + sort.Search(hi-lo, func(i int) bool {
		return r.rows[(lo+i)*r.arity+col] >= v
	})
}

// upperBound is lowerBound with a strict comparison (> v).
func (r *Relation) upperBound(col, lo, hi int, v int64) int {
	return lo + sort.Search(hi-lo, func(i int) bool {
		return r.rows[(lo+i)*r.arity+col] > v
	})
}

// PrefixRange returns the half-open row range [lo, hi) of tuples whose first
// len(prefix) columns equal prefix. An empty range is returned when no tuple
// matches.
func (r *Relation) PrefixRange(prefix []int64) (lo, hi int) {
	lo, hi = 0, r.n
	for col, v := range prefix {
		lo = r.lowerBound(col, lo, hi, v)
		hi = r.upperBound(col, lo, hi, v)
		if lo == hi {
			return lo, hi
		}
	}
	return lo, hi
}

// Contains reports whether the full tuple is present.
func (r *Relation) Contains(tuple []int64) bool {
	if len(tuple) != r.arity {
		return false
	}
	lo, hi := r.PrefixRange(tuple)
	return lo < hi
}

// DistinctPrefixes returns the number of distinct prefixes of the given
// length (used by planners for statistics).
func (r *Relation) DistinctPrefixes(length int) int {
	if length <= 0 {
		return 1
	}
	count := 0
	for lo, hi := 0, 0; lo < r.n; lo = hi {
		hi = lo + 1
		for hi < r.n && prefixEqual(r, lo, hi, length) {
			hi++
		}
		count++
	}
	return count
}

func prefixEqual(r *Relation, i, j, length int) bool {
	a := r.rows[i*r.arity : i*r.arity+length]
	b := r.rows[j*r.arity : j*r.arity+length]
	for k := range a {
		if a[k] != b[k] {
			return false
		}
	}
	return true
}

// TupleKey encodes a tuple as a comparison-stable byte string, for use as a
// map key (8 bytes per value). The one tuple-set encoding shared by the
// layers that deduplicate tuples (delta filtering, incremental views).
func TupleKey(t []int64) string {
	b := make([]byte, 0, len(t)*8)
	for _, v := range t {
		u := uint64(v)
		b = append(b, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
			byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
	}
	return string(b)
}

// CompareTuples compares two equal-length tuples lexicographically.
func CompareTuples(a, b []int64) int {
	for k := range a {
		switch {
		case a[k] < b[k]:
			return -1
		case a[k] > b[k]:
			return 1
		}
	}
	return 0
}
