package cli

import (
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"

	"repro/internal/metrics"
)

// ObservabilityMux builds the daemons' shared sidecar HTTP mux: Prometheus
// text metrics, a liveness probe, the Go pprof surfaces, and — when a
// handler is supplied — the server's retained traces. Both graphjoind and
// graphjoinrouter mount it on their -metrics-addr listener, so a cluster's
// coordinator and shards profile identically.
func ObservabilityMux(traces http.Handler) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", metrics.Default().Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if traces != nil {
		mux.Handle("/debug/traces", traces)
	}
	return mux
}

// OpenSlowQueryLog opens (appending) the file the slow-query log writes to.
// An empty path returns a nil writer, which routes slow-query lines through
// the server's diagnostic log instead.
func OpenSlowQueryLog(path string) (io.Writer, func() error, error) {
	if path == "" {
		return nil, func() error { return nil }, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("slow-query log: %w", err)
	}
	return f, f.Close, nil
}
