// Package client connects to a graphjoind server (repro/server) and exposes
// the repro.Store surface over the network: the same schema operations,
// prepared queries, snapshot read-transactions, and shared-snapshot batches,
// with the execution happening server-side against shared indexes. A Store
// here satisfies repro.Querier, so code written against that interface flips
// between embedded and client/server deployment with one constructor change:
//
//	q := repro.Local(store)                     // in-process
//	q, err := client.Dial(ctx, "db-host:7474")  // remote
//
// One connection multiplexes concurrent requests: every request carries an
// id, responses are routed back by id, and Rows streams are flow-controlled
// (the server ships chunks only against client-granted credit) so one slow
// consumer never buffers unboundedly server-side and breaking out of a
// result loop stops the server-side join mid-execution.
//
// A Store is safe for concurrent use. Typed errors cross the wire: failures
// still satisfy errors.Is against repro.ErrUnknownRelation,
// repro.ErrArityMismatch, and the other public sentinels.
package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Protocol-level failures re-exported from the wire layer, so callers can
// errors.Is without importing internal packages.
var (
	// ErrClosed reports a request on a closed client.
	ErrClosed = errors.New("client: connection closed")
	// ErrShuttingDown reports a request refused by a draining server.
	ErrShuttingDown = wire.ErrShuttingDown
	// ErrOverloaded reports a request rejected by the server's per-store
	// admission control (in-flight budget exhausted, queue full). The
	// request never started; retrying after backoff is safe.
	ErrOverloaded = wire.ErrOverloaded
	// ErrUnknownStore reports a Dial naming a store the server does not host.
	ErrUnknownStore = wire.ErrUnknownStore
	// ErrUnknownHandle reports a prepared handle the server no longer holds.
	ErrUnknownHandle = wire.ErrUnknownHandle
	// ErrUnknownTxn reports a transaction the server no longer holds.
	ErrUnknownTxn = wire.ErrUnknownTxn
	// ErrVersion reports a protocol-version mismatch with the server.
	ErrVersion = wire.ErrVersion
	// ErrProtocol reports a malformed frame from the server.
	ErrProtocol = wire.ErrProtocol
)

// Option configures a Dial.
type Option func(*config)

type config struct {
	store        string
	chunkRows    int
	credit       int
	reqTimeout   time.Duration
	dialAttempts int
	dialBackoff  time.Duration
}

// WithStore selects the named store on a multi-tenant server (default
// "default").
func WithStore(name string) Option { return func(c *config) { c.store = name } }

// WithRequestTimeout bounds each context-less Store-surface call
// (DefineRelation, Load, Apply, ApplyAll, ParseQuery, Prepare, ReadTxn,
// Relations, Arity, and the handle Close calls) — those methods mirror
// repro.Store signatures, which carry no context, so this is the
// connection-level escape hatch against an unresponsive server. Zero (the
// default) means no timeout. Methods that do take a context (Count,
// Enumerate, Rows, Batch, Schema) are governed by their caller's context
// and unaffected.
func WithRequestTimeout(d time.Duration) Option {
	return func(c *config) { c.reqTimeout = d }
}

// WithDialRetry makes Dial retry transport-level connection failures (e.g.
// connection refused while the server is still booting) up to attempts total
// tries, sleeping backoff before the first retry and doubling it each
// further try. The Dial context still governs the whole sequence — its
// cancellation or deadline cuts the retries short. Handshake rejections
// (protocol version, unknown store) are not retried: the server answered,
// and it would answer the same way again. Attempts below 1 mean one try;
// backoff at or below zero defaults to 50ms.
func WithDialRetry(attempts int, backoff time.Duration) Option {
	return func(c *config) {
		c.dialAttempts = attempts
		c.dialBackoff = backoff
	}
}

// WithStreamTuning sets the Rows flow-control parameters: tuples per chunk
// and the credit window in chunks (how many chunks the server may send ahead
// of consumption). Zero keeps a parameter at its default (256 and 8); the
// server clamps both into its own sane range.
func WithStreamTuning(chunkRows, credit int) Option {
	return func(c *config) {
		c.chunkRows = chunkRows
		c.credit = credit
	}
}

// Store is a remote repro.Store. Create one with Dial (or New over an
// existing connection); it satisfies repro.Querier.
type Store struct {
	nc  net.Conn
	cfg config

	// wmu serializes frame writes from concurrent requests.
	wmu sync.Mutex
	bw  *bufio.Writer

	mu      sync.Mutex
	pending map[uint64]*call
	closed  bool
	err     error // first transport failure; sticky

	nextReq  atomic.Uint64
	readDone chan struct{}
}

var (
	_ repro.Querier       = (*Store)(nil)
	_ repro.PreparedQuery = (*Prepared)(nil)
	_ repro.QueryTxn      = (*Txn)(nil)
)

// frame is one routed response.
type frame struct {
	typ  byte
	body []byte
}

// call is one in-flight request's response mailbox. Unary requests buffer a
// single frame; Rows streams buffer their whole credit window so the read
// loop never blocks on a slow stream consumer.
type call struct {
	ch chan frame
}

// Dial connects to a graphjoind server and performs the Hello exchange
// (protocol version check and store selection). The context governs dialing
// and the handshake only — not the connection's lifetime. With WithDialRetry
// configured, connection failures are retried with exponential backoff.
func Dial(ctx context.Context, addr string, opts ...Option) (*Store, error) {
	cfg := config{}
	for _, o := range opts {
		o(&cfg)
	}
	attempts := cfg.dialAttempts
	if attempts < 1 {
		attempts = 1
	}
	backoff := cfg.dialBackoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	var lastErr error
	for try := 0; try < attempts; try++ {
		if try > 0 {
			select {
			case <-time.After(backoff):
				backoff *= 2
			case <-ctx.Done():
				return nil, fmt.Errorf("client: dial %s: %w (last attempt: %v)", addr, ctx.Err(), lastErr)
			}
		}
		var d net.Dialer
		nc, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				return nil, fmt.Errorf("client: dial %s: %w", addr, err)
			}
			continue
		}
		s, err := New(ctx, nc, opts...)
		if err != nil {
			nc.Close()
			// The server spoke: a handshake rejection (version, unknown
			// store) is deterministic and not worth retrying.
			return nil, err
		}
		return s, nil
	}
	return nil, fmt.Errorf("client: dial %s: %w", addr, lastErr)
}

// New wraps an established connection (Dial's transport-agnostic core; tests
// and embedded setups can hand it any net.Conn).
func New(ctx context.Context, nc net.Conn, opts ...Option) (*Store, error) {
	cfg := config{}
	for _, o := range opts {
		o(&cfg)
	}
	s := &Store{
		nc:       nc,
		cfg:      cfg,
		bw:       bufio.NewWriter(nc),
		pending:  make(map[uint64]*call),
		readDone: make(chan struct{}),
	}
	go s.readLoop()
	var e wire.Enc
	e.U64(wire.ProtocolVersion)
	e.Str(cfg.store)
	if _, err := s.roundTrip(ctx, wire.THello, e.Bytes(), wire.THelloOK); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// Close closes the connection; the server drops the connection's prepared
// handles and transactions. Safe to call concurrently and repeatedly.
func (s *Store) Close() error {
	s.fail(ErrClosed)
	return nil
}

// fail records the first transport-level failure, unblocks every waiter, and
// closes the connection. All later requests report the recorded error.
func (s *Store) fail(err error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.err = err
	close(s.readDone)
	s.mu.Unlock()
	s.nc.Close()
}

// transportErr returns the sticky failure.
func (s *Store) transportErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	return ErrClosed
}

// readLoop routes every incoming frame to its request's mailbox. Frames for
// unknown ids (responses to requests abandoned at context cancellation) are
// dropped. A mailbox overflow means the server violated flow control; the
// connection is failed rather than blocking the loop.
func (s *Store) readLoop() {
	br := bufio.NewReader(s.nc)
	for {
		typ, reqID, body, err := wire.ReadFrame(br)
		if err != nil {
			s.fail(fmt.Errorf("client: read: %w", err))
			return
		}
		s.mu.Lock()
		c := s.pending[reqID]
		s.mu.Unlock()
		if c == nil {
			continue
		}
		select {
		case c.ch <- frame{typ, body}:
		default:
			s.fail(fmt.Errorf("client: server overflowed the credit window: %w", ErrProtocol))
			return
		}
	}
}

// register allocates a request id with a response mailbox of the given
// capacity.
func (s *Store) register(buf int) (uint64, *call, error) {
	id := s.nextReq.Add(1)
	c := &call{ch: make(chan frame, buf)}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, nil, s.errLocked()
	}
	s.pending[id] = c
	return id, c, nil
}

func (s *Store) errLocked() error {
	if s.err != nil {
		return s.err
	}
	return ErrClosed
}

func (s *Store) deregister(id uint64) {
	s.mu.Lock()
	delete(s.pending, id)
	s.mu.Unlock()
}

// write sends one frame under the write lock.
func (s *Store) write(typ byte, reqID uint64, body []byte) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if err := wire.WriteFrame(s.bw, typ, reqID, body); err != nil {
		// An oversized frame is rejected before any byte touches the wire:
		// the request fails but the connection is still in sync — don't
		// poison it for the other multiplexed requests.
		if !errors.Is(err, wire.ErrFrameTooLarge) {
			s.fail(err)
		}
		return err
	}
	if err := s.bw.Flush(); err != nil {
		s.fail(err)
		return err
	}
	return nil
}

// sendCancel asks the server to stop an in-flight request (best effort).
func (s *Store) sendCancel(id uint64) {
	s.write(wire.TCancel, id, nil)
}

// traceBody prepends the protocol-v4 trace context to a request body: the
// active span from ctx when the caller is tracing, the one-byte untraced
// marker otherwise.
func traceBody(ctx context.Context, body []byte) []byte {
	sp := trace.FromContext(ctx)
	var e wire.Enc
	wire.EncodeTraceContext(&e, uint64(sp.TraceID()), uint64(sp.ID()))
	e.Raw(body)
	return e.Bytes()
}

// roundTrip performs one unary request: register, send, await the response,
// and verify its type. Context cancellation abandons the request and tells
// the server to stop it. Every request except the Hello itself carries the
// trace-context prefix (the Hello negotiates the version that defines it).
func (s *Store) roundTrip(ctx context.Context, typ byte, body []byte, want byte) ([]byte, error) {
	id, c, err := s.register(1)
	if err != nil {
		return nil, err
	}
	defer s.deregister(id)
	if typ != wire.THello {
		body = traceBody(ctx, body)
	}
	if err := s.write(typ, id, body); err != nil {
		return nil, err
	}
	select {
	case f := <-c.ch:
		switch f.typ {
		case want:
			return f.body, nil
		case wire.TErr:
			return nil, wire.DecodeErr(f.body)
		default:
			err := fmt.Errorf("client: unexpected response frame 0x%02x to request 0x%02x: %w", f.typ, typ, ErrProtocol)
			s.fail(err)
			return nil, err
		}
	case <-ctx.Done():
		s.sendCancel(id)
		return nil, ctx.Err()
	case <-s.readDone:
		return nil, s.transportErr()
	}
}

// opCtx returns the context governing one context-less Store-surface call:
// the WithRequestTimeout deadline when configured, unbounded otherwise.
func (s *Store) opCtx() (context.Context, context.CancelFunc) {
	if s.cfg.reqTimeout > 0 {
		return context.WithTimeout(context.Background(), s.cfg.reqTimeout)
	}
	return context.Background(), func() {}
}

// roundTripOp is roundTrip under the connection's operation context (the
// ctx-less Store-surface methods route through it).
func (s *Store) roundTripOp(typ byte, body []byte, want byte) ([]byte, error) {
	ctx, cancel := s.opCtx()
	defer cancel()
	return s.roundTrip(ctx, typ, body, want)
}

// DefineRelation declares a named relation of the given arity on the server;
// see repro.Store.DefineRelation.
func (s *Store) DefineRelation(name string, arity int) error {
	var e wire.Enc
	e.Str(name)
	e.Int(arity)
	_, err := s.roundTripOp(wire.TDefine, e.Bytes(), wire.TOK)
	return err
}

// Load replaces the named relation's contents; see repro.Store.Load.
func (s *Store) Load(name string, tuples [][]int64) error {
	var e wire.Enc
	e.Str(name)
	e.Tuples(tuples)
	_, err := s.roundTripOp(wire.TLoad, e.Bytes(), wire.TOK)
	return err
}

// Apply applies an incremental update batch to the named relation; see
// repro.Store.Apply.
func (s *Store) Apply(name string, inserts, deletes [][]int64) error {
	var e wire.Enc
	e.Str(name)
	e.Tuples(inserts)
	e.Tuples(deletes)
	_, err := s.roundTripOp(wire.TApply, e.Bytes(), wire.TOK)
	return err
}

// ApplyAll applies update batches to several relations as one atomic
// server-side write; see repro.Store.ApplyAll.
func (s *Store) ApplyAll(batches map[string][]repro.Delta) error {
	var e wire.Enc
	e.Int(len(batches))
	for name, deltas := range batches {
		var ins, dels [][]int64
		for _, d := range deltas {
			if d.Delete {
				dels = append(dels, d.Tuple)
			} else {
				ins = append(ins, d.Tuple)
			}
		}
		e.Str(name)
		e.Tuples(ins)
		e.Tuples(dels)
	}
	_, err := s.roundTripOp(wire.TApplyAll, e.Bytes(), wire.TOK)
	return err
}

// Schema fetches the server's full schema listing — names and arities, in
// sorted name order — in one round trip. Prefer it over per-name Arity
// calls when describing a whole store.
func (s *Store) Schema(ctx context.Context) ([]repro.RelationInfo, error) {
	body, err := s.roundTrip(ctx, wire.TRelations, nil, wire.TRelationsOK)
	if err != nil {
		return nil, err
	}
	d := wire.NewDec(body)
	n := d.Count()
	if d.Err() != nil {
		return nil, d.Err()
	}
	out := make([]repro.RelationInfo, n)
	for i := range out {
		out[i] = repro.RelationInfo{Name: d.Str(), Arity: d.Int()}
	}
	return out, d.Err()
}

// Relations returns the schema as sorted relation names, or nil if the
// server cannot be reached.
func (s *Store) Relations() []string {
	ctx, cancel := s.opCtx()
	defer cancel()
	infos, err := s.Schema(ctx)
	if err != nil {
		return nil
	}
	names := make([]string, len(infos))
	for i, r := range infos {
		names[i] = r.Name
	}
	return names
}

// Arity returns the declared arity of the named relation.
func (s *Store) Arity(name string) (int, error) {
	ctx, cancel := s.opCtx()
	defer cancel()
	infos, err := s.Schema(ctx)
	if err != nil {
		return 0, err
	}
	for _, r := range infos {
		if r.Name == name {
			return r.Arity, nil
		}
	}
	return 0, fmt.Errorf("client: %w: %q", repro.ErrUnknownRelation, name)
}

// Metrics fetches the server's process metrics rendered in the Prometheus
// text exposition format — the wire-level counterpart of the -metrics-addr
// HTTP endpoint (same payload), for clients without HTTP access to the
// server host.
func (s *Store) Metrics(ctx context.Context) (string, error) {
	body, err := s.roundTrip(ctx, wire.TMetrics, nil, wire.TMetricsOK)
	if err != nil {
		return "", err
	}
	d := wire.NewDec(body)
	text := d.Str()
	if d.Err() != nil {
		return "", fmt.Errorf("client: malformed Metrics response: %w", d.Err())
	}
	return text, nil
}

// Trace fetches the spans one completed trace left on the server, merged
// with the spans of any downstream hosts the server fronts (a routed
// backend fans the fetch out) — the stitched tree graphjoin -connect -trace
// renders. A trace the server never saw yields an empty span list.
func (s *Store) Trace(ctx context.Context, id uint64) ([]trace.SpanRecord, error) {
	var e wire.Enc
	e.U64(id)
	e.Int(1)
	body, err := s.roundTrip(ctx, wire.TTrace, e.Bytes(), wire.TTraceOK)
	if err != nil {
		return nil, err
	}
	d := wire.NewDec(body)
	traces := wire.DecodeTraces(d)
	if d.Err() != nil {
		return nil, fmt.Errorf("client: malformed Trace response: %w", d.Err())
	}
	var spans []trace.SpanRecord
	for _, t := range traces {
		spans = append(spans, t.Spans...)
	}
	return spans, nil
}

// TraceSpans is Trace under the name the server-side stitching capability
// probes for, letting a Store serve as a downstream host of another server's
// trace fetch.
func (s *Store) TraceSpans(ctx context.Context, id uint64) ([]trace.SpanRecord, error) {
	return s.Trace(ctx, id)
}

// Traces fetches the server's last-n completed traces, oldest first (n <= 0
// fetches the server's whole retention buffer).
func (s *Store) Traces(ctx context.Context, n int) ([]trace.Data, error) {
	var e wire.Enc
	e.U64(0)
	e.Int(n)
	body, err := s.roundTrip(ctx, wire.TTrace, e.Bytes(), wire.TTraceOK)
	if err != nil {
		return nil, err
	}
	d := wire.NewDec(body)
	traces := wire.DecodeTraces(d)
	if d.Err() != nil {
		return nil, fmt.Errorf("client: malformed Traces response: %w", d.Err())
	}
	return traces, nil
}

// ParseQuery parses and validates the query against the server's schema; see
// repro.Store.ParseQuery.
func (s *Store) ParseQuery(name, src string) (*repro.Query, error) {
	var e wire.Enc
	e.Str(name)
	e.Str(src)
	body, err := s.roundTripOp(wire.TParse, e.Bytes(), wire.TParseOK)
	if err != nil {
		return nil, err
	}
	d := wire.NewDec(body)
	wq := wire.DecodeQuery(d)
	if d.Err() != nil {
		return nil, d.Err()
	}
	return wq.ToQuery()
}

// Prepare compiles the query server-side and returns a handle to the
// server's prepared statement; see repro.Store.Prepare. Close the handle to
// free the server-side entry (the server also frees everything when the
// connection closes).
func (s *Store) Prepare(q *repro.Query, opts repro.Options) (repro.PreparedQuery, error) {
	var e wire.Enc
	wire.FromQuery(q).Encode(&e)
	wire.EncodeOptions(&e, opts)
	body, err := s.roundTripOp(wire.TPrepare, e.Bytes(), wire.TPrepareOK)
	if err != nil {
		return nil, err
	}
	d := wire.NewDec(body)
	handle := d.U64()
	alg := d.Str()
	if d.Err() != nil {
		return nil, d.Err()
	}
	return &Prepared{s: s, handle: handle, q: q, alg: alg}, nil
}

// Count evaluates the query once (a one-shot convenience over Prepare); see
// repro.Store.Count.
func (s *Store) Count(ctx context.Context, q *repro.Query, opts repro.Options) (int64, error) {
	p, err := s.Prepare(q, opts)
	if err != nil {
		return 0, err
	}
	defer p.Close()
	return p.Count(ctx)
}

// Enumerate streams the query's results once (one-shot over Prepare); see
// repro.Store.Enumerate.
func (s *Store) Enumerate(ctx context.Context, q *repro.Query, opts repro.Options, emit func([]int64) bool) error {
	p, err := s.Prepare(q, opts)
	if err != nil {
		return err
	}
	defer p.Close()
	return p.Enumerate(ctx, emit)
}

// ReadTxn opens a server-side snapshot read-transaction pinned to this
// connection; see repro.Store.ReadTxn. Close it to release the server-side
// lease.
func (s *Store) ReadTxn() (repro.QueryTxn, error) {
	body, err := s.roundTripOp(wire.TBegin, nil, wire.TBeginOK)
	if err != nil {
		return nil, err
	}
	d := wire.NewDec(body)
	id := d.U64()
	if d.Err() != nil {
		return nil, d.Err()
	}
	return &Txn{s: s, id: id}, nil
}

// Batch executes many prepared queries server-side against one shared
// snapshot; see repro.Store.Batch. Per-request failures land in the
// individual Results; the returned error reports transport-level failures
// only.
func (s *Store) Batch(ctx context.Context, reqs []repro.BatchRequest) ([]repro.Result, error) {
	results := make([]repro.Result, len(reqs))
	// Handles from another client (or the local implementation) are isolated
	// into their own Results, mirroring the Batch error-isolation contract;
	// the rest ship as one request.
	var slots []int
	for i, r := range reqs {
		if p, ok := r.Prepared.(*Prepared); ok && p.s == s {
			slots = append(slots, i)
		} else {
			results[i] = repro.Result{Err: fmt.Errorf("client: %w", repro.ErrForeignPrepared)}
		}
	}
	var e wire.Enc
	e.Int(len(slots))
	for _, i := range slots {
		p := reqs[i].Prepared.(*Prepared)
		e.U64(p.handle)
		e.Bool(reqs[i].Rows)
	}
	body, err := s.roundTrip(ctx, wire.TBatch, e.Bytes(), wire.TBatchOK)
	if err != nil {
		return nil, err
	}
	d := wire.NewDec(body)
	n := d.Int()
	if d.Err() != nil || n != len(slots) {
		return nil, fmt.Errorf("client: malformed batch response: %w", ErrProtocol)
	}
	for j := 0; j < n; j++ {
		res := repro.Result{Count: d.I64(), Rows: d.Tuples()}
		code, msg := d.Str(), d.Str()
		if code != "" {
			res.Err = &wire.Error{Code: code, Msg: msg}
		}
		if d.Err() != nil {
			return nil, d.Err()
		}
		results[slots[j]] = res
	}
	return results, nil
}
