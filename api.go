package repro

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/incremental"
	"repro/internal/minesweeper"
	"repro/internal/query"
	"repro/internal/recursive"
	"repro/internal/relation"
)

// Model names re-exported for graph generation.
const (
	ErdosRenyi     = dataset.ErdosRenyi
	BarabasiAlbert = dataset.BarabasiAlbert
	HolmeKim       = dataset.HolmeKim
)

// Typed failure kinds surfaced by Prepare, ParseQuery, and the one-shot
// helpers; branch with errors.Is.
var (
	// ErrUnknownRelation reports a query atom naming a relation the store's
	// database does not hold.
	ErrUnknownRelation = core.ErrUnknownRelation
	// ErrUnboundVar reports a query variable not covered by the supplied
	// attribute order (or not bound by any atom).
	ErrUnboundVar = core.ErrUnboundVar
	// ErrUnboundHeadVar reports a head variable or aggregated variable of a
	// rule-form query ("q(a, b) :- ...") that no body atom binds.
	ErrUnboundHeadVar = query.ErrUnboundHeadVar
	// ErrUnboundPredVar reports a comparison predicate over a variable no
	// body atom binds.
	ErrUnboundPredVar = query.ErrUnboundPredVar
	// ErrUnsupportedQuery reports an extended query (projection, predicates,
	// or aggregates) prepared for an engine that executes plain natural
	// joins only; use LFTJ or MS.
	ErrUnsupportedQuery = engine.ErrUnsupportedQuery
	// ErrUnknownAlgorithm reports an Options.Algorithm outside the
	// registered set; Prepare validates eagerly, before engine selection.
	ErrUnknownAlgorithm = engine.ErrUnknownAlgorithm
	// ErrUnknownBackend reports an Options.Backend outside the registered
	// set; Prepare validates eagerly, before index binding.
	ErrUnknownBackend = core.ErrUnknownBackend
)

// Algorithm names a join engine; the names match the paper's system labels
// (§5.1). The zero value selects LFTJ. Prepare rejects anything outside the
// registered set with ErrUnknownAlgorithm.
type Algorithm = engine.Algorithm

// Registered algorithms.
const (
	LFTJ        = engine.LFTJ
	MS          = engine.MS
	Hybrid      = engine.Hybrid
	PSQL        = engine.PSQL
	MonetDB     = engine.MonetDB
	Yannakakis  = engine.Yannakakis
	GraphLab    = engine.GraphLab
	GenericJoin = engine.GenericJoin
)

// Algorithms lists every registered algorithm.
func Algorithms() []Algorithm { return engine.Algorithms() }

// Backend names a physical index backend for the trie-driven engines. The
// zero value selects the default (CSR). Prepare rejects anything outside the
// registered set with ErrUnknownBackend.
type Backend = core.Backend

// Registered index backends.
const (
	BackendFlat       = core.BackendFlat
	BackendCSR        = core.BackendCSR
	BackendCSRSharded = core.BackendCSRSharded
)

// Query is a graph-pattern join query. Build one with the pattern
// constructors below or parse the paper's Datalog syntax with ParseQuery.
type Query = query.Query

// SyntaxError is the typed parse failure carrying the byte offset into the
// Datalog source and, when known, the enclosing atom's relation name;
// unwrap with errors.As to report positions to users.
type SyntaxError = query.SyntaxError

// Pattern constructors mirroring the paper's §5.1 benchmark queries.
var (
	// Triangles is the 3-clique query (each triangle counted once).
	Triangles = func() *Query { return query.Clique(3) }
	// Cliques returns the k-clique query.
	Cliques = query.Clique
	// Cycles returns the k-cycle query with the a<b<...<z orientation.
	Cycles = query.Cycle
	// Paths returns the k-path query between samples v1 and v2.
	Paths = query.Path
	// Trees returns the {1,2}-tree query.
	Trees = query.Tree
	// Comb returns the 2-comb query.
	Comb = query.Comb
	// Lollipops returns the {2,3}-lollipop query.
	Lollipops = query.Lollipop
)

// ParseQuery parses the Datalog-style syntax of §5.1, e.g.
// "v1(a), v2(d), edge(a, b), edge(b, c), edge(c, d)". Relations available
// on a Graph: "edge" (symmetric), "fwd" (u<v orientation), "v1".."v4"
// (node samples). Rule heads may project and aggregate
// ("deg(a, count(b)) :- edge(a, b)"), atom terms may be integer constants,
// and bodies may carry comparison predicates ("a < b", "x >= 10");
// malformed input fails with a positioned *query.SyntaxError.
func ParseQuery(name, src string) (*Query, error) { return query.Parse(name, src) }

// Graph is an undirected graph plus the benchmark database schema derived
// from it: the symmetric "edge" relation, the oriented "fwd" relation, and
// the node samples v1..v4. It is a thin compatibility wrapper over Store —
// the benchmark schema is one canned schema — so everything a Store offers
// (ReadTxn, Batch, schema-checked ParseQuery) is available through Store().
// Graph methods are safe for concurrent use (queries through the store
// serialize on the database; the wrapper's own vertex/edge accounting is
// guarded by its mutex).
type Graph struct {
	g *dataset.Graph
	s *Store

	// mu guards the wrapped graph's accounting (g.Edges, g.N, edgeIdx)
	// against concurrent ApplyEdges/Nodes/Edges/SetSelectivity calls.
	mu sync.Mutex
	// edgeIdx maps each oriented edge to its position in g.Edges; built on
	// the first ApplyEdges so incremental writes maintain the accounting in
	// time proportional to the batch instead of re-scanning the edge list.
	edgeIdx map[[2]int64]int
}

// NewGraph builds a graph from an undirected edge list. Vertex ids must be
// non-negative; self-loops are dropped and duplicates merged. Samples
// default to every vertex (selectivity 1).
func NewGraph(edges [][2]int64) *Graph {
	var n int64
	for _, e := range edges {
		if e[0] >= n {
			n = e[0] + 1
		}
		if e[1] >= n {
			n = e[1] + 1
		}
	}
	g := &dataset.Graph{N: int(n)}
	seen := make(map[[2]int64]bool, len(edges))
	for _, e := range edges {
		if e[0] == e[1] {
			continue
		}
		u, v := e[0], e[1]
		if u > v {
			u, v = v, u
		}
		if seen[[2]int64{u, v}] {
			continue
		}
		seen[[2]int64{u, v}] = true
		g.Edges = append(g.Edges, [2]int64{u, v})
	}
	return &Graph{g: g, s: newStoreOver(dataset.DB(g, 1, 1))}
}

// GenerateGraph produces a deterministic synthetic graph (see
// internal/dataset for the models). Samples default to selectivity 1.
func GenerateGraph(model dataset.Model, nodes, edges int, seed int64) *Graph {
	g := dataset.Generate(model, nodes, edges, seed)
	return &Graph{g: g, s: newStoreOver(dataset.DB(g, 1, seed))}
}

// Dataset builds one of the paper's 15 benchmark datasets by name (synthetic
// stand-ins for the SNAP graphs; see DESIGN.md §5).
func Dataset(name string) (*Graph, error) {
	spec, err := dataset.Lookup(name)
	if err != nil {
		return nil, err
	}
	g := spec.Build()
	return &Graph{g: g, s: newStoreOver(dataset.DB(g, 1, spec.Seed))}, nil
}

// Nodes returns the vertex count.
func (g *Graph) Nodes() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.g.N
}

// Edges returns the undirected edge count.
func (g *Graph) Edges() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.g.Edges)
}

// SetSelectivity redraws all four node samples with the paper's protocol:
// each vertex is selected with probability 1/s. All four relations are
// replaced in one atomic registration, so a concurrent ReadTxn/Batch
// snapshot observes one sample generation, never a mix.
func (g *Graph) SetSelectivity(s int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	samples := make(map[string][]int64, 4)
	g.mu.Lock()
	for _, name := range []string{query.Sample1, query.Sample2, query.Sample3, query.Sample4} {
		samples[name] = g.g.Sample(rng, s)
	}
	g.mu.Unlock()
	dataset.ReplaceNamedSamples(g.s.db, samples)
}

// SetSamples sets the v1 and v2 samples explicitly (Figures 3–5 use
// absolute sample sizes), replacing both atomically.
func (g *Graph) SetSamples(v1, v2 []int64) {
	dataset.ReplaceSamples(g.s.db, v1, v2)
}

// Store returns the underlying general-schema store: the benchmark schema
// (edge, fwd, v1..v4) as ordinary store relations. Use it for snapshot
// read-transactions (ReadTxn), batched execution (Batch), and schema-checked
// parsing over the benchmark relations. For writes, use the Graph methods
// (ApplyEdges, SetSelectivity, SetSamples): a raw Store.Apply on "edge" or
// "fwd" updates only that one relation and silently breaks the schema's
// invariants (edge symmetric, fwd its u<v orientation) that every benchmark
// query assumes, and a raw Store.Load on any benchmark relation replaces it
// without maintaining the wrapper's vertex/edge accounting — Nodes, Edges,
// and the SetSelectivity sampling population would go stale.
func (g *Graph) Store() *Store { return g.s }

// ApplyEdges inserts and removes undirected edges through the incremental
// write path, maintaining the schema invariants: both directions land in
// "edge" and the u<v orientation in "fwd" — applied atomically under one
// database lock, so a concurrent ReadTxn/Batch snapshot can never observe
// one relation updated and not the other — and the wrapped graph's vertex
// and edge accounting (Nodes, Edges, the population SetSelectivity samples
// from) follows the writes. Self-loops are dropped; an edge on both sides
// of one batch resolves as delete-after-insert. Like Store.Apply, it keeps
// prepared handles on the default CSR backend serving current data.
// (CountView.ApplyEdges additionally corrects a maintained count; this is
// the view-less counterpart.)
func (g *Graph) ApplyEdges(insert, remove [][2]int64) error {
	if err := checkEdgeDomain(insert, remove); err != nil {
		return err
	}
	// The database write and the accounting update form one critical
	// section: a conflicting concurrent batch cannot interleave between
	// them and desync the wrapper from the stored relations.
	g.mu.Lock()
	defer g.mu.Unlock()
	err := g.s.applyDeltas([]core.DeltaBatch{
		{Name: query.Edge, Inserts: incremental.Orient(insert, false), Deletes: incremental.Orient(remove, false)},
		{Name: query.Fwd, Inserts: incremental.Orient(insert, true), Deletes: incremental.Orient(remove, true)},
	})
	if err != nil {
		return err
	}
	g.applyDerivedLocked(insert, remove)
	return nil
}

// The wrapper accounting (g.g.Edges, g.g.N, edgeIdx) is maintained in time
// proportional to the batch: the oriented-edge index is built once (on the
// first write) and updated incrementally after that. The vertex count only
// grows — removing an edge does not retire its endpoints. Both edge write
// paths (Graph.ApplyEdges and CountView.ApplyEdges) land through
// core.CanonicalDelta semantics — delete-after-insert, an edge on both
// sides of one batch never lands — so one mirroring helper
// (applyDerivedLocked) serves them both. All these helpers run under g.mu.

func (g *Graph) ensureEdgeIdxLocked() {
	if g.edgeIdx != nil {
		return
	}
	g.edgeIdx = make(map[[2]int64]int, len(g.g.Edges))
	for i, e := range g.g.Edges {
		g.edgeIdx[e] = i
	}
}

// checkEdgeDomain validates an edge batch's vertex ids against the storage
// domain before any relation is touched, so both edge write paths
// (Graph.ApplyEdges and CountView.ApplyEdges) report typed errors instead
// of tripping the storage layer's panic.
func checkEdgeDomain(insert, remove [][2]int64) error {
	for _, batch := range [2]struct {
		op    string
		edges [][2]int64
	}{{"insert", insert}, {"delete", remove}} {
		for _, e := range batch.edges {
			if e[0] < 0 || e[0] >= relation.PosInf || e[1] < 0 || e[1] >= relation.PosInf {
				return fmt.Errorf("repro: %w: %s of edge %v (vertex ids must be in [0, %d))",
					ErrValueOutOfRange, batch.op, e, relation.PosInf)
			}
		}
	}
	return nil
}

// orientEdge normalizes an undirected edge to its u<v form; ok is false for
// self-loops.
func orientEdge(e [2]int64) (oe [2]int64, ok bool) {
	u, v := e[0], e[1]
	if u == v {
		return oe, false
	}
	if u > v {
		u, v = v, u
	}
	return [2]int64{u, v}, true
}

func (g *Graph) insertEdgeLocked(oe [2]int64) {
	if _, ok := g.edgeIdx[oe]; ok {
		return
	}
	g.edgeIdx[oe] = len(g.g.Edges)
	g.g.Edges = append(g.g.Edges, oe)
	if int(oe[1])+1 > g.g.N {
		g.g.N = int(oe[1]) + 1
	}
}

func (g *Graph) removeEdgeLocked(oe [2]int64) {
	i, ok := g.edgeIdx[oe]
	if !ok {
		return
	}
	// Swap-remove: the edge list's order carries no meaning.
	last := len(g.g.Edges) - 1
	g.g.Edges[i] = g.g.Edges[last]
	g.edgeIdx[g.g.Edges[i]] = i
	g.g.Edges = g.g.Edges[:last]
	delete(g.edgeIdx, oe)
}

// applyDerivedLocked mirrors ApplyDeltas/CanonicalDelta semantics
// (delete-after-insert: an edge on both sides never lands and must not grow
// the accounting or the vertex count).
func (g *Graph) applyDerivedLocked(insert, remove [][2]int64) {
	g.ensureEdgeIdxLocked()
	removed := make(map[[2]int64]bool, len(remove))
	for _, e := range remove {
		if oe, ok := orientEdge(e); ok {
			removed[oe] = true
		}
	}
	for _, e := range insert {
		if oe, ok := orientEdge(e); ok && !removed[oe] {
			g.insertEdgeLocked(oe)
		}
	}
	for _, e := range remove {
		if oe, ok := orientEdge(e); ok {
			g.removeEdgeLocked(oe)
		}
	}
}

// Prepare compiles the query against this graph for the configured engine;
// see Store.Prepare.
func (g *Graph) Prepare(q *Query, opts Options) (*Prepared, error) {
	return g.s.Prepare(q, opts)
}

// DB exposes the underlying database (for the benchmark harness).
func (g *Graph) DB() *core.DB { return g.s.db }

// Options select and configure an engine. Algorithm and Backend are typed —
// use the exported constants (LFTJ, MS, ..., BackendFlat, BackendCSR,
// BackendCSRSharded); string literals still assign for convenience, and
// Prepare rejects unknown names eagerly with ErrUnknownAlgorithm /
// ErrUnknownBackend.
type Options struct {
	// Algorithm selects the engine: LFTJ, MS, Hybrid, PSQL, MonetDB,
	// Yannakakis, GraphLab, or GenericJoin. Empty defaults to LFTJ.
	Algorithm Algorithm
	// Workers bounds parallelism (0 = all cores, 1 = sequential).
	Workers int
	// Granularity is the §4.10 partitioning factor f (0 = paper defaults).
	Granularity int
	// GAO overrides the global attribute order (Table 4 experiments).
	GAO []string
	// Backend selects the physical index backend for the trie-driven
	// engines (lftj, ms): BackendCSR (the default — materialized CSR trie
	// levels, built once per index at Prepare time, with O(1) child-range
	// resolution on the join hot path and incremental maintenance through
	// delta overlays), BackendCSRSharded (the CSR trie partitioned into
	// disjoint first-attribute shards; parallel Counts bind one shard per
	// worker job), or BackendFlat (binary search over the sorted rows — no
	// extra memory, and the reference the other backends are
	// differential-tested against). Other engines ignore it.
	Backend Backend
	// Idea toggles for the ablation experiments (all ideas default on).
	DisableProbeMemo  bool // Idea 4
	DisableComplete   bool // Idea 6
	DisableSkeleton   bool // Idea 7
	DisableCountReuse bool // Idea 8 (#Minesweeper-style count-mode reuse)
	// MaxRows caps pairwise-engine intermediates (0 = default budget).
	MaxRows int
	// Shard, when set, restricts execution to one partition of the query's
	// output space, keyed on the leading GAO attribute — the per-host half
	// of a distributed fan-out (see the router package, which sets it when
	// preparing a query on each cluster host). Supported by the plan-aware
	// trie engines (lftj, ms) only; Prepare rejects it elsewhere with
	// ErrUnsupportedQuery.
	Shard *Shard
}

// Shard kinds; see Shard.
const (
	// ShardRange keeps leading-attribute values in [Lo, Hi) — the same
	// restriction the §4.10 parallel jobs use, pushed into the trie cursors.
	ShardRange = "range"
	// ShardHash keeps rows whose leading attribute hashes into this host's
	// residue class (core.ShardHash(v) mod Mod == Res), applied as an
	// emission filter.
	ShardHash = "hash"
)

// Shard is one partition of a query's output space, keyed on the value of
// the leading GAO attribute. Partitions of either kind are disjoint and
// cover the domain, so per-shard counts sum to the unsharded count and
// per-shard streams merge (ordered on the leading attribute) into the
// unsharded stream. Aggregate queries group on a prefix led by the same
// attribute, so every group lands wholly inside one shard — except the
// global aggregates of an empty group-by head, which each shard reports as
// a partial for the coordinator to fold.
type Shard struct {
	// Kind selects the partitioning strategy: ShardRange or ShardHash.
	Kind string
	// Lo and Hi bound a ShardRange partition: values in [Lo, Hi).
	Lo, Hi int64
	// Mod and Res select a ShardHash residue class: 0 <= Res < Mod.
	Mod, Res uint64
}

func (o Options) engineOptions() engine.Options {
	alg := o.Algorithm
	if alg == "" {
		alg = engine.LFTJ
	}
	eo := engine.Options{
		Algorithm:   alg,
		Workers:     o.Workers,
		Granularity: o.Granularity,
		GAO:         o.GAO,
		Backend:     o.Backend,
		MaxRows:     o.MaxRows,
		MS: minesweeper.Options{
			DisableMemo:      o.DisableProbeMemo,
			DisableComplete:  o.DisableComplete,
			DisableSkeleton:  o.DisableSkeleton,
			DisableCountMemo: o.DisableCountReuse,
		},
	}
	if o.Shard != nil && o.Shard.Kind == ShardRange {
		eo.FirstVarRange = &engine.Range{Lo: o.Shard.Lo, Hi: o.Shard.Hi}
	}
	return eo
}

// ResolveGAO derives the global attribute order Prepare would fix for the
// query under these options — purely structural, touching no data, so a
// coordinator can compute the order remote hosts will execute under and
// partition or merge on its leading attribute.
func ResolveGAO(q *Query, opts Options) ([]string, error) {
	return engine.ResolveGAO(opts.engineOptions(), q)
}

// Count evaluates the query on the graph and returns the number of results
// (all the paper's benchmark queries are counts, §5.1). It is a one-shot
// convenience over Prepare — repeated executions of the same query should
// hold a Prepared handle instead.
func Count(ctx context.Context, g *Graph, q *Query, opts Options) (int64, error) {
	p, err := g.Prepare(q, opts)
	if err != nil {
		return 0, err
	}
	return p.Count(ctx)
}

// Enumerate streams result tuples in output order (head variables then any
// aggregate values; q.Vars() order for plain queries); emit returns false to
// stop early. It is a one-shot convenience over Prepare.
func Enumerate(ctx context.Context, g *Graph, q *Query, opts Options, emit func([]int64) bool) error {
	p, err := g.Prepare(q, opts)
	if err != nil {
		return err
	}
	return p.Enumerate(ctx, emit)
}

// AGMBound returns the Atserias–Grohe–Marx worst-case output bound of the
// query on this graph's relation sizes (paper Appendix A) — the quantity
// worst-case-optimal engines are optimal against.
func AGMBound(g *Graph, q *Query) (float64, error) {
	return g.s.AGMBound(q)
}

// ExecStats is the unified execution-counter surface every engine reports
// on: planning counters (plan-cache hits, GAO derivations, index bindings),
// per-run execution counters, and the engine-specific counters the paper's
// ablation analyses read (probes, memo hits, constraint inserts, subtree
// reuses for Minesweeper; leapfrog seeks for LFTJ).
type ExecStats = core.Stats

// CountWithStats evaluates the query once and returns the count together
// with its execution counters. When both Algorithm and Workers are left
// zero it defaults to "ms" (the historical behavior of this function), and
// an ms run with Workers zero — defaulted or explicit — runs sequentially,
// because the ablation counters are only deterministic on a sequential
// Minesweeper run (partitioned runs probe partition boundaries too). A
// caller who sets only Workers gets the normal default engine (lftj) on
// those workers — no silent rerouting to ms. For anything beyond a one-shot
// measurement, hold a Prepared handle and read Stats() to aggregate across
// executions.
func CountWithStats(ctx context.Context, g *Graph, q *Query, opts Options) (int64, ExecStats, error) {
	if opts.Algorithm == "" && opts.Workers == 0 {
		opts.Algorithm = MS
	}
	if opts.Algorithm == MS && opts.Workers == 0 {
		opts.Workers = 1
	}
	p, err := g.Prepare(q, opts)
	if err != nil {
		return 0, ExecStats{}, err
	}
	n, err := p.Count(ctx)
	return n, p.Stats(), err
}

// CountView is a materialized pattern count maintained incrementally under
// edge updates (the paper's §3 motivation: LogicBlox's incrementally
// maintained materialized views).
type CountView struct {
	inner *incremental.GraphView
	g     *Graph
}

// MaintainCount materializes Count(q) over the graph and keeps it current.
// On a durable store the view's maintenance batches route through the
// store's write-ahead log: each ApplyEdges is one logged record, fsynced
// like any other write.
func MaintainCount(ctx context.Context, g *Graph, q *Query) (*CountView, error) {
	v, err := incremental.NewGraphView(ctx, q, g.s.db)
	if err != nil {
		return nil, err
	}
	v.SetApply(g.s.applyDeltas)
	return &CountView{inner: v, g: g}, nil
}

// Count returns the maintained count.
func (v *CountView) Count() int64 { return v.inner.Count() }

// Stats returns the view's accumulated planning and execution counters. The
// view compiles its delta queries once: GAODerivations stays at 1 across
// arbitrarily many ApplyEdges batches.
func (v *CountView) Stats() ExecStats { return v.inner.Stats() }

// ApplyEdges inserts and removes undirected edges, updating the graph's
// relations and the maintained count with delta queries. The correction is
// computed entirely against the pre-update state, then "edge" and "fwd"
// land together through one atomic apply — exactly like Graph.ApplyEdges, a
// concurrent ReadTxn/Batch snapshot observes either the whole batch or none
// of it, an error during correction leaves the store untouched, and on a
// durable store the maintenance batch is one write-ahead log record. The
// update semantics match every other write path: an edge on both sides of
// one batch resolves as delete-after-insert.
func (v *CountView) ApplyEdges(ctx context.Context, insert, remove [][2]int64) error {
	if err := checkEdgeDomain(insert, remove); err != nil {
		return err
	}
	v.g.mu.Lock()
	defer v.g.mu.Unlock()
	if err := v.inner.ApplyEdges(ctx, insert, remove); err != nil {
		return err
	}
	v.g.applyDerivedLocked(insert, remove)
	return nil
}

// MaterializeTransitiveClosure computes tc(edge) with semi-naive recursion
// (the paper's §6 future work) and registers it as relation "tc", queryable
// from any engine, e.g. ParseQuery("reach", "v1(a), tc(a, b), v2(b)").
func MaterializeTransitiveClosure(ctx context.Context, g *Graph) error {
	return recursive.RegisterTC(ctx, g.s.db)
}
