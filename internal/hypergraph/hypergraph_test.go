package hypergraph

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/query"
)

func TestAlphaAcyclic(t *testing.T) {
	cases := []struct {
		name string
		q    *query.Query
		want bool
	}{
		{"triangle", query.Clique(3), false},
		{"4cycle", query.Cycle(4), false},
		{"3path", query.Path(3), true},
		{"4path", query.Path(4), true},
		{"1tree", query.Tree(1), true},
		{"2tree", query.Tree(2), true},
		{"comb", query.Comb(), true},
		// α-acyclic but β-cyclic: triangle plus the full edge {a,b,c}.
		{"alphaOnly", query.New("ao",
			query.Atom{Rel: "R", Vars: []string{"a", "b"}},
			query.Atom{Rel: "S", Vars: []string{"b", "c"}},
			query.Atom{Rel: "T", Vars: []string{"a", "c"}},
			query.Atom{Rel: "U", Vars: []string{"a", "b", "c"}},
		), true},
	}
	for _, c := range cases {
		if got := FromQuery(c.q).IsAlphaAcyclic(); got != c.want {
			t.Errorf("%s: IsAlphaAcyclic = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestBetaAcyclic(t *testing.T) {
	cases := []struct {
		name string
		q    *query.Query
		want bool
	}{
		{"triangle", query.Clique(3), false},
		{"4clique", query.Clique(4), false},
		{"4cycle", query.Cycle(4), false},
		{"3path", query.Path(3), true},
		{"4path", query.Path(4), true},
		{"1tree", query.Tree(1), true},
		{"2tree", query.Tree(2), true},
		{"comb", query.Comb(), true},
		{"2lollipop", query.Lollipop(2), false},
		{"3lollipop", query.Lollipop(3), false},
		{"alphaOnly", query.New("ao",
			query.Atom{Rel: "R", Vars: []string{"a", "b"}},
			query.Atom{Rel: "S", Vars: []string{"b", "c"}},
			query.Atom{Rel: "T", Vars: []string{"a", "c"}},
			query.Atom{Rel: "U", Vars: []string{"a", "b", "c"}},
		), false},
	}
	for _, c := range cases {
		if got := FromQuery(c.q).IsBetaAcyclic(); got != c.want {
			t.Errorf("%s: IsBetaAcyclic = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestTable4GAOs checks our chain condition against the paper's Table 4,
// which labels ABCDE, BACDE, BCADE, CBADE, CBDAE as NEO GAOs and ABDCE,
// BADCE as non-NEO GAOs for the 4-path query.
func TestTable4GAOs(t *testing.T) {
	q := query.Path(4) // vars a,b,c,d,e
	neo := []string{"abcde", "bacde", "bcade", "cbade", "cbdae"}
	nonNeo := []string{"abdce", "badce"}
	for _, s := range neo {
		if !IsChainGAO(split(s), q.Atoms) {
			t.Errorf("GAO %s should satisfy the chain condition", strings.ToUpper(s))
		}
	}
	for _, s := range nonNeo {
		if IsChainGAO(split(s), q.Atoms) {
			t.Errorf("GAO %s should violate the chain condition", strings.ToUpper(s))
		}
	}
}

func split(s string) []string {
	out := make([]string, len(s))
	for i, r := range s {
		out[i] = string(r)
	}
	return out
}

// TestFindChainGAOPicksLongestPath checks the §4.9 selection: for 4-path the
// best NEO is the path order A,B,C,D,E (Table 4).
func TestFindChainGAOPicksLongestPath(t *testing.T) {
	q := query.Path(4)
	gao, ok := FindChainGAO(q.Vars(), q.Atoms)
	if !ok {
		t.Fatal("4-path should have a chain GAO")
	}
	if got := strings.Join(gao, ""); got != "abcde" && got != "edcba" {
		// Both directions are full paths; our scoring ties them, and the
		// exhaustive search visits identity first.
		t.Errorf("FindChainGAO(4-path) = %v, want a full path order", gao)
	}
	if GAOScore(gao, q.Atoms) != 4 {
		t.Errorf("GAOScore = %d, want 4", GAOScore(gao, q.Atoms))
	}
}

func TestFindChainGAOCyclicFails(t *testing.T) {
	q := query.Clique(3)
	if _, ok := FindChainGAO(q.Vars(), q.Atoms); ok {
		t.Error("3-clique should not admit a chain GAO")
	}
}

// TestChainGAOMatchesBetaAcyclicity cross-checks: for all our benchmark
// queries, a chain GAO exists iff the query hypergraph is β-acyclic
// (Prop 4.2 gives ⇐; our suite also exhibits ⇒).
func TestChainGAOMatchesBetaAcyclicity(t *testing.T) {
	for _, q := range []*query.Query{
		query.Clique(3), query.Clique(4), query.Cycle(4),
		query.Path(3), query.Path(4), query.Tree(1), query.Tree(2),
		query.Comb(), query.Lollipop(2), query.Lollipop(3),
	} {
		_, hasGAO := FindChainGAO(q.Vars(), q.Atoms)
		beta := FromQuery(q).IsBetaAcyclic()
		if hasGAO != beta {
			t.Errorf("%s: chain GAO exists = %v but β-acyclic = %v", q.Name, hasGAO, beta)
		}
	}
}

func TestPlanQueryAcyclic(t *testing.T) {
	plan, err := PlanQuery(query.Path(3))
	if err != nil {
		t.Fatal(err)
	}
	if plan.BetaCyclic || len(plan.Skeleton) != 5 || len(plan.OffSkel) != 0 {
		t.Errorf("3-path plan = %+v, want full skeleton", plan)
	}
	if !IsChainGAO(plan.GAO, query.Path(3).Atoms) {
		t.Error("3-path plan GAO not chain-valid")
	}
}

func TestPlanQueryTriangleSkeleton(t *testing.T) {
	q := query.Clique(3)
	plan, err := PlanQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.BetaCyclic {
		t.Fatal("3-clique should be β-cyclic")
	}
	if len(plan.Skeleton) != 2 || len(plan.OffSkel) != 1 {
		t.Errorf("3-clique skeleton = %v offskel = %v, want 2/1 split", plan.Skeleton, plan.OffSkel)
	}
	var kept []query.Atom
	for _, i := range plan.Skeleton {
		kept = append(kept, q.Atoms[i])
	}
	if !IsChainGAO(plan.GAO, kept) {
		t.Error("skeleton GAO not chain-valid for skeleton atoms")
	}
	if len(plan.GAO) != 3 {
		t.Errorf("GAO %v must cover all 3 variables", plan.GAO)
	}
}

func TestPlanQueryLollipop(t *testing.T) {
	plan, err := PlanQuery(query.Lollipop(2))
	if err != nil {
		t.Fatal(err)
	}
	if !plan.BetaCyclic {
		t.Fatal("2-lollipop should be β-cyclic")
	}
	if len(plan.GAO) != 5 {
		t.Errorf("GAO %v must cover all 5 variables", plan.GAO)
	}
	if len(plan.Skeleton)+len(plan.OffSkel) != 6 {
		t.Errorf("skeleton %v + offskel %v must cover 6 atoms", plan.Skeleton, plan.OffSkel)
	}
}

func TestPlanQueryInvalid(t *testing.T) {
	if _, err := PlanQuery(query.New("empty")); err == nil {
		t.Error("PlanQuery on empty query should fail")
	}
}

func TestJoinTreePath(t *testing.T) {
	q := query.Path(3)
	jt, err := BuildJoinTree(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(jt.Order) != len(q.Atoms) {
		t.Fatalf("order covers %d atoms, want %d", len(jt.Order), len(q.Atoms))
	}
	// Running intersection property: for each variable, the atoms containing
	// it must form a connected subtree.
	for _, v := range q.Vars() {
		atoms := q.AtomsWith(v)
		if len(atoms) <= 1 {
			continue
		}
		in := make(map[int]bool)
		for _, i := range atoms {
			in[i] = true
		}
		// Every atom with v except one must have a path to another atom with
		// v going only upward through atoms... simplest check: climbing from
		// each atom with v toward the root, the set must meet another atom
		// with v unless it is the topmost.
		topmost := 0
		for _, i := range atoms {
			p := jt.Parent[i]
			met := false
			for p != -1 {
				if in[p] {
					met = true
					break
				}
				p = jt.Parent[p]
			}
			if !met {
				topmost++
			}
		}
		if topmost != 1 {
			t.Errorf("variable %s: %d topmost atoms, want 1 (running intersection violated)", v, topmost)
		}
	}
}

func TestJoinTreeCyclicFails(t *testing.T) {
	if _, err := BuildJoinTree(query.Clique(3)); err == nil {
		t.Error("join tree on triangle should fail")
	}
}

func TestJoinTreeTreeQueries(t *testing.T) {
	for _, q := range []*query.Query{query.Tree(1), query.Tree(2), query.Comb(), query.Path(4)} {
		jt, err := BuildJoinTree(q)
		if err != nil {
			t.Errorf("%s: %v", q.Name, err)
			continue
		}
		// Bottom-up order must place children before parents.
		seen := make(map[int]bool)
		for _, i := range jt.Order {
			if p := jt.Parent[i]; p != -1 && seen[p] {
				t.Errorf("%s: parent %d ordered before child %d", q.Name, p, i)
			}
			seen[i] = true
		}
	}
}

func TestFromQueryDedupsEdges(t *testing.T) {
	q := query.Clique(3)
	h := FromQuery(q)
	if len(h.Edges) != 3 {
		t.Errorf("triangle hypergraph has %d edges, want 3", len(h.Edges))
	}
	q2 := query.New("dup",
		query.Atom{Rel: "R", Vars: []string{"a", "b"}},
		query.Atom{Rel: "S", Vars: []string{"a", "b"}},
	)
	if h2 := FromQuery(q2); len(h2.Edges) != 1 {
		t.Errorf("duplicate edge sets not merged: %v", h2.Edges)
	}
}

func TestNestPointEliminationOrder(t *testing.T) {
	q := query.Path(4)
	order, ok := FromQuery(q).NestPointElimination()
	if !ok {
		t.Fatal("4-path should be nest-point eliminable")
	}
	if len(order) != 5 {
		t.Errorf("elimination order %v should cover 5 vars", order)
	}
	if !reflect.DeepEqual(varsSorted(order), varsSorted(q.Vars())) {
		t.Errorf("elimination order %v is not a permutation of %v", order, q.Vars())
	}
}

func varsSorted(vs []string) []string {
	out := append([]string(nil), vs...)
	for i := range out {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}
