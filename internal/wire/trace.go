package wire

import (
	"fmt"
	"time"

	"repro/internal/trace"
)

// Trace context on the wire (protocol v4): every dispatched request body —
// everything except Hello and the one-way control frames — leads with a
// uvarint flag. Flag 0 means untraced (one byte of overhead on the disabled
// path); flag 1 is followed by the trace id and the sender's current span id,
// which becomes the parent of the receiver's root span, stitching the
// distributed execution into one tree.

// EncodeTraceContext appends the trace-context prefix. A zero traceID
// encodes the untraced marker.
func EncodeTraceContext(e *Enc, traceID, spanID uint64) {
	if traceID == 0 {
		e.U64(0)
		return
	}
	e.U64(1)
	e.U64(traceID)
	e.U64(spanID)
}

// DecodeTraceContext consumes the trace-context prefix, returning (0, 0) for
// an untraced request. Unknown flag values are a protocol error.
func DecodeTraceContext(d *Dec) (traceID, spanID uint64) {
	switch flag := d.U64(); flag {
	case 0:
		return 0, 0
	case 1:
		return d.U64(), d.U64()
	default:
		d.Fail(fmt.Errorf("wire: unknown trace-context flag %d: %w", flag, ErrProtocol))
		return 0, 0
	}
}

// EncodeSpans appends a count-prefixed list of span records (a TTrace
// response's per-trace payload).
func EncodeSpans(e *Enc, spans []trace.SpanRecord) {
	e.Int(len(spans))
	for _, s := range spans {
		e.U64(uint64(s.Trace))
		e.U64(uint64(s.ID))
		e.U64(uint64(s.Parent))
		e.Str(s.Stage)
		e.I64(s.Start.UnixNano())
		e.I64(int64(s.Duration))
		e.Int(len(s.Attrs))
		for _, a := range s.Attrs {
			e.Str(a.Key)
			e.I64(a.Val)
			e.Str(a.Str)
		}
	}
}

// DecodeSpans consumes a count-prefixed list of span records.
func DecodeSpans(d *Dec) []trace.SpanRecord {
	n := d.Count()
	if d.Err() != nil || n == 0 {
		return nil
	}
	out := make([]trace.SpanRecord, 0, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		s := trace.SpanRecord{
			Trace:  trace.ID(d.U64()),
			ID:     trace.SpanID(d.U64()),
			Parent: trace.SpanID(d.U64()),
			Stage:  d.Str(),
		}
		s.Start = time.Unix(0, d.I64())
		s.Duration = time.Duration(d.I64())
		na := d.Count()
		for j := 0; j < na && d.Err() == nil; j++ {
			s.Attrs = append(s.Attrs, trace.Attr{Key: d.Str(), Val: d.I64(), Str: d.Str()})
		}
		out = append(out, s)
	}
	if d.Err() != nil {
		return nil
	}
	return out
}

// EncodeTraces appends a count-prefixed list of retained traces (the TTrace
// response body).
func EncodeTraces(e *Enc, traces []trace.Data) {
	e.Int(len(traces))
	for _, t := range traces {
		e.U64(uint64(t.ID))
		e.Int(t.Dropped)
		EncodeSpans(e, t.Spans)
	}
}

// DecodeTraces consumes a count-prefixed list of retained traces.
func DecodeTraces(d *Dec) []trace.Data {
	n := d.Count()
	if d.Err() != nil || n == 0 {
		return nil
	}
	out := make([]trace.Data, 0, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		t := trace.Data{ID: trace.ID(d.U64()), Dropped: d.Int()}
		t.Spans = DecodeSpans(d)
		out = append(out, t)
	}
	if d.Err() != nil {
		return nil
	}
	return out
}
