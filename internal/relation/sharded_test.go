package relation

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestShardedWalkMatchesFlat checks the composed sharded cursor against the
// flat trie iterator over full depth-first walks, across arities and shard
// counts (including more shards than distinct first keys).
func TestShardedWalkMatchesFlat(t *testing.T) {
	for _, tc := range []struct{ arity, n, domain, shards int }{
		{1, 50, 10, 4},
		{2, 200, 12, 1},
		{2, 200, 12, 3},
		{2, 200, 12, 64},
		{3, 300, 8, 5},
		{4, 400, 6, 7},
	} {
		r := randomRelation(rand.New(rand.NewSource(int64(tc.arity*1000+tc.shards))), tc.arity, tc.n, tc.domain)
		sh := NewShardedCSR(r, tc.shards)
		if sh.Len() != r.Len() || sh.Arity() != r.Arity() || sh.Name() != r.Name() {
			t.Fatalf("sharded header mismatch: %v vs %v", sh, r)
		}
		flat := walk(NewTrieIterator(r), r.Arity())
		got := walk(NewShardedCursor(sh), r.Arity())
		if !reflect.DeepEqual(flat, got) {
			t.Errorf("arity %d shards %d: sharded walk differs from flat (flat %d visits, sharded %d)",
				tc.arity, tc.shards, len(flat), len(got))
		}
	}
}

// TestShardedSeekGEMatchesFlat drives the shard-crossing SeekGE path against
// the flat reference, including far seeks that jump shards.
func TestShardedSeekGEMatchesFlat(t *testing.T) {
	r := randomRelation(rand.New(rand.NewSource(7)), 3, 500, 20)
	sh := NewShardedCSR(r, 6)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		seeks := []int64{int64(rng.Intn(22)), int64(rng.Intn(22)), int64(rng.Intn(22))}
		flat := walkWithSeeks(NewTrieIterator(r), 3, seeks)
		got := walkWithSeeks(NewShardedCursor(sh), 3, seeks)
		if !reflect.DeepEqual(flat, got) {
			t.Fatalf("seek walk %v: sharded differs from flat", seeks)
		}
	}
}

// TestShardedProbeGapMatchesFlat checks gap probes across shard boundaries:
// column-0 gaps spanning two shards must be clamped to the neighbouring
// shard's boundary keys, exactly reproducing the flat reference.
func TestShardedProbeGapMatchesFlat(t *testing.T) {
	for _, arity := range []int{1, 2, 3} {
		r := randomRelation(rand.New(rand.NewSource(int64(40+arity))), arity, 300, 9)
		sh := NewShardedCSR(r, 5)
		rng := rand.New(rand.NewSource(int64(arity)))
		point := make([]int64, arity)
		for trial := 0; trial < 2000; trial++ {
			for k := range point {
				point[k] = int64(rng.Intn(11)) // domain+2: probes off both ends
			}
			fg, ffound := r.ProbeGap(point)
			sg, sfound := sh.ProbeGap(point)
			if ffound != sfound || fg != sg {
				t.Fatalf("arity %d point %v: flat (%v, %v) vs sharded (%v, %v)", arity, point, fg, ffound, sg, sfound)
			}
		}
	}
}

// TestShardedPartition pins the partition invariants: shards are disjoint
// and contiguous, boundaries fall on first-attribute value changes, and the
// tuple counts add up.
func TestShardedPartition(t *testing.T) {
	r := randomRelation(rand.New(rand.NewSource(3)), 2, 400, 15)
	sh := NewShardedCSR(r, 4)
	if sh.NumShards() < 2 {
		t.Fatalf("expected multiple shards, got %d", sh.NumShards())
	}
	starts := sh.ShardStarts()
	total := 0
	for i, s := range sh.shards {
		total += s.Len()
		first := s.levels[0].vals[0]
		last := s.levels[0].vals[len(s.levels[0].vals)-1]
		if first != starts[i] {
			t.Errorf("shard %d first key %d != start %d", i, first, starts[i])
		}
		if i+1 < len(starts) && last >= starts[i+1] {
			t.Errorf("shard %d last key %d overlaps next start %d", i, last, starts[i+1])
		}
	}
	if total != r.Len() {
		t.Errorf("shard tuple counts sum to %d, want %d", total, r.Len())
	}
}

// TestShardedRestrict checks that a restricted view walks exactly the keys
// of its covered range and clamps probes at its true (global) boundaries
// within the range.
func TestShardedRestrict(t *testing.T) {
	r := randomRelation(rand.New(rand.NewSource(11)), 2, 300, 30)
	sh := NewShardedCSR(r, 5)
	starts := sh.ShardStarts()
	if len(starts) < 3 {
		t.Skip("too few shards")
	}
	lo, hi := starts[1], starts[2]
	view := sh.Restrict(lo, hi)
	if view.NumShards() != 1 {
		t.Fatalf("restrict to one shard range got %d shards", view.NumShards())
	}
	// Every key in [lo, hi) visible in the full index must be visible in the
	// view, with identical subtrees.
	full := NewShardedCursor(sh)
	sub := NewShardedCursor(view)
	full.Open()
	sub.Open()
	full.SeekGE(lo)
	sub.SeekGE(lo)
	for !full.AtEnd() && full.Key() < hi {
		if sub.AtEnd() || sub.Key() != full.Key() {
			t.Fatalf("restricted view misses key %d", full.Key())
		}
		full.Next()
		sub.Next()
	}
	// Within the range, gap probes agree with the flat reference.
	rng := rand.New(rand.NewSource(5))
	point := make([]int64, 2)
	for trial := 0; trial < 500; trial++ {
		point[0] = lo + int64(rng.Intn(int(hi-lo)))
		point[1] = int64(rng.Intn(32))
		fg, ffound := r.ProbeGap(point)
		vg, vfound := view.ProbeGap(point)
		if ffound != vfound {
			t.Fatalf("point %v: found mismatch", point)
		}
		if !vfound && vg.Col > 0 && vg != fg {
			t.Fatalf("point %v: deep gap mismatch flat %v view %v", point, fg, vg)
		}
		// Column-0 gaps may overreach beyond the view's range but must
		// contain the true gap (never claim a present key empty... the
		// other way: never report a tighter box than reality).
		if !vfound && vg.Col == 0 && (vg.Lo > fg.Lo || vg.Hi < fg.Hi) {
			t.Fatalf("point %v: restricted gap %v tighter than flat %v", point, vg, fg)
		}
	}
}

// TestShardedEmptyRelation: the zero-shard cursor opens exhausted and the
// probe reports the full empty box.
func TestShardedEmptyRelation(t *testing.T) {
	r := FromTuples("E", 2, nil)
	sh := NewShardedCSR(r, 3)
	c := NewShardedCursor(sh)
	c.Open()
	if !c.AtEnd() {
		t.Error("empty sharded trie: level 0 not at end")
	}
	c.Up()
	g, found := sh.ProbeGap([]int64{1, 2})
	if found || g != (Gap{Col: 0, Lo: NegInf, Hi: PosInf}) {
		t.Errorf("empty probe = (%v, %v)", g, found)
	}
}
