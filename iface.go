package repro

import (
	"context"
	"fmt"
	"iter"
)

// PreparedQuery is the execution surface of a compiled query, shared by the
// in-process *Prepared handle and the network client's remote handle
// (package repro/client). Everything Prepare validated — schema, algorithm,
// backend, GAO — is settled; the methods here are pure execution.
type PreparedQuery interface {
	// Query returns the compiled query.
	Query() *Query
	// Algorithm returns the engine the query was compiled for.
	Algorithm() string
	// Count executes the compiled plan and returns the result cardinality.
	Count(ctx context.Context) (int64, error)
	// Enumerate streams result tuples with bindings in Query().Vars() order;
	// emit returns false to stop early. The tuple slice may be reused between
	// calls — copy it to retain it.
	Enumerate(ctx context.Context, emit func([]int64) bool) error
	// Rows is Enumerate as a streaming iterator; each yielded slice is a
	// fresh copy owned by the consumer. Breaking out of the range stops
	// execution early — on a remote handle, the server stops producing.
	Rows(ctx context.Context) iter.Seq[[]int64]
	// RowsErr is Rows with an explicit error: (tuple, nil) per result and a
	// final (nil, err) pair if execution fails mid-stream.
	RowsErr(ctx context.Context) iter.Seq2[[]int64, error]
	// Stats snapshots the unified execution counters accumulated by the
	// handle. On a remote handle the counters live server-side; the snapshot
	// is fetched best-effort and is zero if the connection has failed.
	Stats() ExecStats
	// Close releases resources held for the handle. The local implementation
	// holds none and returns nil; the remote implementation frees the
	// server-side prepared-statement entry.
	Close() error
}

// QueryTxn is the execution surface of a snapshot read-transaction, shared by
// the in-process *Txn and the network client's remote transaction. Executions
// through it observe the index state pinned when the transaction began, no
// matter how many write batches land concurrently.
type QueryTxn interface {
	// Count executes the prepared query against the transaction's snapshot.
	Count(ctx context.Context, p PreparedQuery) (int64, error)
	// Enumerate streams the prepared query's results against the snapshot.
	Enumerate(ctx context.Context, p PreparedQuery, emit func([]int64) bool) error
	// Rows is Enumerate as a streaming iterator with owned tuple copies.
	Rows(ctx context.Context, p PreparedQuery) iter.Seq[[]int64]
	// RowsErr is Rows with the explicit-error protocol.
	RowsErr(ctx context.Context, p PreparedQuery) iter.Seq2[[]int64, error]
	// Close releases the transaction. The local implementation needs no
	// release (the snapshot is garbage-collected) and returns nil; the remote
	// implementation frees the server-side lease.
	Close() error
}

// RelationInfo is one entry of a schema listing (Querier.Schema).
type RelationInfo struct {
	Name  string
	Arity int
}

// BatchRequest is one unit of a Querier.Batch: a prepared query to execute,
// optionally collecting its result tuples alongside the count. It is the
// implementation-neutral counterpart of Request.
type BatchRequest struct {
	// Prepared is the compiled query to execute; it must come from the same
	// Querier the batch runs on (ErrForeignPrepared otherwise).
	Prepared PreparedQuery
	// Rows, when true, collects the result tuples into the Result as well as
	// counting them.
	Rows bool
}

// Querier is the query-service surface shared by the in-process Store and the
// network client (package repro/client): define a schema, load and update
// relations, parse and prepare queries, and execute them directly, in
// snapshot read-transactions, or as concurrent batches. Code written against
// Querier flips between embedded and client/server deployment with one
// constructor change:
//
//	q := repro.Local(store)                     // in-process
//	q, err := client.Dial(ctx, "db-host:7474")  // remote
//
// Method semantics match Store exactly; see the Store, Prepared, and Txn
// documentation for the contracts (snapshot pinning, per-backend freshness,
// batch error isolation).
type Querier interface {
	// DefineRelation declares a named relation of the given arity.
	DefineRelation(name string, arity int) error
	// Load replaces the named relation's contents in one bulk registration.
	Load(name string, tuples [][]int64) error
	// Apply applies an incremental update batch to the named relation.
	Apply(name string, inserts, deletes [][]int64) error
	// ApplyAll applies update batches to several relations as one atomic
	// write.
	ApplyAll(batches map[string][]Delta) error
	// Relations returns the schema as sorted relation names. On a remote
	// querier the listing is fetched from the server and is nil if the
	// connection has failed.
	Relations() []string
	// Arity returns the declared arity of the named relation.
	Arity(name string) (int, error)
	// Schema returns the whole schema — sorted names with arities — in one
	// call; on a remote querier that is one round trip, where a
	// Relations+Arity loop would pay one per relation.
	Schema(ctx context.Context) ([]RelationInfo, error)
	// ParseQuery parses the Datalog-style syntax and validates it against
	// the schema.
	ParseQuery(name, src string) (*Query, error)
	// Prepare compiles the query for the configured engine and returns an
	// execution handle.
	Prepare(q *Query, opts Options) (PreparedQuery, error)
	// Count evaluates the query once (a one-shot convenience over Prepare).
	Count(ctx context.Context, q *Query, opts Options) (int64, error)
	// Enumerate streams the query's results once (one-shot over Prepare).
	Enumerate(ctx context.Context, q *Query, opts Options, emit func([]int64) bool) error
	// ReadTxn pins the current index snapshot and returns a transaction
	// whose executions all observe it.
	ReadTxn() (QueryTxn, error)
	// Batch executes many prepared queries concurrently against one shared
	// snapshot, with per-request error isolation. The returned error reports
	// batch-level failures only (e.g. a lost connection); per-request
	// failures land in the individual Results.
	Batch(ctx context.Context, reqs []BatchRequest) ([]Result, error)
	// Close releases the querier. The local implementation holds no
	// resources and returns nil; the remote implementation closes the
	// connection.
	Close() error
}

// Close implements PreparedQuery. A local prepared handle holds no resources
// beyond its plan (shared via the store's plan cache), so Close is a no-op;
// it exists so code written against PreparedQuery can release remote handles
// uniformly.
func (p *Prepared) Close() error { return nil }

// Local wraps an in-process Store as a Querier — the counterpart of
// client.Dial for the embedded deployment. The wrapper is a thin adapter:
// every call delegates to the Store method of the same name, and the
// interface handles it returns are the ordinary *Prepared and *Txn values.
func Local(s *Store) Querier { return localQuerier{s} }

type localQuerier struct{ s *Store }

func (l localQuerier) DefineRelation(name string, arity int) error {
	return l.s.DefineRelation(name, arity)
}
func (l localQuerier) Load(name string, tuples [][]int64) error { return l.s.Load(name, tuples) }
func (l localQuerier) Apply(name string, inserts, deletes [][]int64) error {
	return l.s.Apply(name, inserts, deletes)
}
func (l localQuerier) ApplyAll(batches map[string][]Delta) error { return l.s.ApplyAll(batches) }
func (l localQuerier) Relations() []string                       { return l.s.Relations() }
func (l localQuerier) Arity(name string) (int, error)            { return l.s.Arity(name) }
func (l localQuerier) Schema(ctx context.Context) ([]RelationInfo, error) {
	names := l.s.Relations()
	out := make([]RelationInfo, 0, len(names))
	for _, name := range names {
		arity, err := l.s.Arity(name)
		if err != nil {
			return nil, err
		}
		out = append(out, RelationInfo{Name: name, Arity: arity})
	}
	return out, nil
}
func (l localQuerier) ParseQuery(name, src string) (*Query, error) {
	return l.s.ParseQuery(name, src)
}
func (l localQuerier) Prepare(q *Query, opts Options) (PreparedQuery, error) {
	return l.s.Prepare(q, opts)
}
func (l localQuerier) Count(ctx context.Context, q *Query, opts Options) (int64, error) {
	return l.s.Count(ctx, q, opts)
}
func (l localQuerier) Enumerate(ctx context.Context, q *Query, opts Options, emit func([]int64) bool) error {
	return l.s.Enumerate(ctx, q, opts, emit)
}
func (l localQuerier) ReadTxn() (QueryTxn, error) { return localTxn{l.s.ReadTxn()}, nil }
func (l localQuerier) Batch(ctx context.Context, reqs []BatchRequest) ([]Result, error) {
	results := make([]Result, len(reqs))
	local := make([]Request, 0, len(reqs))
	// Map interface requests onto the concrete batch, isolating foreign
	// handles into their own Results exactly as Batch isolates execution
	// failures.
	slot := make([]int, 0, len(reqs))
	for i, r := range reqs {
		p, ok := r.Prepared.(*Prepared)
		if !ok {
			results[i] = Result{Err: fmt.Errorf("repro: %w", ErrForeignPrepared)}
			continue
		}
		local = append(local, Request{Prepared: p, Rows: r.Rows})
		slot = append(slot, i)
	}
	for j, res := range l.s.Batch(ctx, local) {
		results[slot[j]] = res
	}
	return results, nil
}
func (l localQuerier) Close() error { return nil }

// localTxn adapts *Txn (whose methods take the concrete *Prepared) to
// QueryTxn (whose methods take the shared interface).
type localTxn struct{ t *Txn }

// unwrap asserts the interface handle back to the local concrete type; a
// handle from another implementation cannot execute against this store.
func unwrap(p PreparedQuery) (*Prepared, error) {
	lp, ok := p.(*Prepared)
	if !ok {
		return nil, fmt.Errorf("repro: %w", ErrForeignPrepared)
	}
	return lp, nil
}

func (l localTxn) Count(ctx context.Context, p PreparedQuery) (int64, error) {
	lp, err := unwrap(p)
	if err != nil {
		return 0, err
	}
	return l.t.Count(ctx, lp)
}

func (l localTxn) Enumerate(ctx context.Context, p PreparedQuery, emit func([]int64) bool) error {
	lp, err := unwrap(p)
	if err != nil {
		return err
	}
	return l.t.Enumerate(ctx, lp, emit)
}

func (l localTxn) Rows(ctx context.Context, p PreparedQuery) iter.Seq[[]int64] {
	return rowsSeq(func(ctx context.Context, emit func([]int64) bool) error {
		return l.Enumerate(ctx, p, emit)
	}, ctx)
}

func (l localTxn) RowsErr(ctx context.Context, p PreparedQuery) iter.Seq2[[]int64, error] {
	return rowsErrSeq(func(ctx context.Context, emit func([]int64) bool) error {
		return l.Enumerate(ctx, p, emit)
	}, ctx)
}

func (l localTxn) Close() error { return nil }
