package repro

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"sync"

	"repro/internal/core"
	"repro/internal/engine"
)

// ErrTxnUnplanned reports a read-transaction execution of a Prepared handle
// whose engine has no plan representation (the pairwise baselines,
// Yannakakis, GraphLab, and the hybrid re-derive state from the live
// database per run, so the transaction could not guarantee them a pinned
// snapshot). Use a plan-aware algorithm (lftj, ms, genericjoin) inside
// transactions.
var ErrTxnUnplanned = errors.New("read transaction requires a plan-aware algorithm")

// ErrForeignPrepared reports a Prepared handle used against a store (or
// transaction) other than the one it was compiled on.
var ErrForeignPrepared = errors.New("prepared handle belongs to a different store")

// Txn is a snapshot read-transaction: executions through it observe the
// index state pinned when ReadTxn was called, no matter how many
// Apply/ApplyDelta batches land concurrently — the multi-execution extension
// of the per-run snapshot pinning the engines already do. Several Count and
// Rows calls inside one transaction therefore agree with each other, which
// is what multi-query read consistency under a live write stream needs.
//
// The begin-time pin covers every index bound when the transaction began —
// i.e. the indexes of every Prepared handle that existed by then, which is
// the supported lifecycle (prepare first, then open transactions). A handle
// prepared only after the transaction began binds fresh indexes the
// transaction could not have pinned; those are pinned at their first use
// inside the transaction instead (self-consistent from then on, but that
// first pin may observe writes that landed after ReadTxn).
//
// The pin applies to the in-place-updatable indexes (the CSR backend's
// delta overlays — the default). Plans on the flat and csr-sharded backends
// hold immutable index objects and are frozen at Prepare time rather than
// transaction-begin time: still internally consistent, but re-Prepare after
// bulk loads to advance them. A Txn is safe for concurrent use and needs no
// explicit close; dropping it releases the pinned snapshot to the garbage
// collector.
type Txn struct {
	s     *Store
	lease *core.Lease

	mu      sync.Mutex
	engines map[*Prepared]core.Engine
}

// ReadTxn pins the store's current index snapshot and returns a transaction
// whose executions all observe it. Prepare the handles you will execute
// before opening the transaction — see the Txn pinning contract.
func (s *Store) ReadTxn() *Txn {
	return &Txn{
		s:       s,
		lease:   s.db.NewLease(),
		engines: make(map[*Prepared]core.Engine),
	}
}

// engineFor returns the engine executing p's plan pinned to this
// transaction's snapshot, building and memoizing it on first use.
func (t *Txn) engineFor(p *Prepared) (core.Engine, error) {
	if p == nil {
		return nil, fmt.Errorf("repro: nil Prepared handle")
	}
	if p.s != t.s {
		return nil, fmt.Errorf("repro: %w", ErrForeignPrepared)
	}
	if p.plan == nil {
		return nil, fmt.Errorf("repro: %w (algorithm %q)", ErrTxnUnplanned, p.alg)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.engines[p]; ok {
		return e, nil
	}
	opts := p.engOpts
	opts.Plan = t.lease.PinPlan(p.plan)
	e, err := engine.New(opts)
	if err != nil {
		return nil, err
	}
	t.engines[p] = e
	return e, nil
}

// Count executes the prepared query against the transaction's snapshot and
// returns the number of result tuples (for aggregate queries, the number of
// groups).
func (t *Txn) Count(ctx context.Context, p *Prepared) (int64, error) {
	e, err := t.engineFor(p)
	if err != nil {
		return 0, err
	}
	return p.runCount(ctx, e)
}

// Enumerate executes the prepared query against the transaction's snapshot,
// streaming result tuples in output order (q.Out() variables then aggregate
// values; q.Vars() order for plain queries); emit returns false to stop
// early. The tuple slice is reused between calls — copy it to retain it.
func (t *Txn) Enumerate(ctx context.Context, p *Prepared, emit func([]int64) bool) error {
	e, err := t.engineFor(p)
	if err != nil {
		return err
	}
	return p.runEnumerate(ctx, e, emit)
}

// Rows executes the prepared query against the transaction's snapshot as a
// streaming iterator; each yielded slice is a fresh copy owned by the
// consumer. Like Prepared.Rows it discards mid-stream errors — use RowsErr
// to distinguish a complete stream from a truncated one.
func (t *Txn) Rows(ctx context.Context, p *Prepared) iter.Seq[[]int64] {
	return rowsSeq(func(ctx context.Context, emit func([]int64) bool) error {
		return t.Enumerate(ctx, p, emit)
	}, ctx)
}

// RowsErr is Rows with an explicit error: it yields (tuple, nil) for every
// result and, if execution fails (including a handle the transaction cannot
// serve), a final (nil, err) pair.
func (t *Txn) RowsErr(ctx context.Context, p *Prepared) iter.Seq2[[]int64, error] {
	return rowsErrSeq(func(ctx context.Context, emit func([]int64) bool) error {
		return t.Enumerate(ctx, p, emit)
	}, ctx)
}
