package bench

import (
	"fmt"
	"io"
	"strings"
)

// matrix is a simple aligned text table with row and column labels.
type matrix struct {
	title   string
	colHead string
	cols    []string
	rows    []string
	cells   map[[2]int]string
	notes   []string
}

func newMatrix(title, colHead string, cols []string) *matrix {
	return &matrix{title: title, colHead: colHead, cols: cols, cells: make(map[[2]int]string)}
}

func (m *matrix) addRow(label string) int {
	m.rows = append(m.rows, label)
	return len(m.rows) - 1
}

func (m *matrix) set(row, col int, v string) {
	m.cells[[2]int{row, col}] = v
}

func (m *matrix) note(format string, args ...interface{}) {
	m.notes = append(m.notes, fmt.Sprintf(format, args...))
}

func (m *matrix) write(w io.Writer) {
	fmt.Fprintf(w, "\n%s\n%s\n", m.title, strings.Repeat("=", len(m.title)))
	// Column widths.
	labelW := len(m.colHead)
	for _, r := range m.rows {
		if len(r) > labelW {
			labelW = len(r)
		}
	}
	colW := make([]int, len(m.cols))
	for j, c := range m.cols {
		colW[j] = len(c)
		for i := range m.rows {
			if v, ok := m.cells[[2]int{i, j}]; ok && len(v) > colW[j] {
				colW[j] = len(v)
			}
		}
	}
	fmt.Fprintf(w, "%-*s", labelW, m.colHead)
	for j, c := range m.cols {
		fmt.Fprintf(w, "  %*s", colW[j], c)
	}
	fmt.Fprintln(w)
	for i, r := range m.rows {
		fmt.Fprintf(w, "%-*s", labelW, r)
		for j := range m.cols {
			v := m.cells[[2]int{i, j}]
			if v == "" {
				v = "."
			}
			fmt.Fprintf(w, "  %*s", colW[j], v)
		}
		fmt.Fprintln(w)
	}
	for _, n := range m.notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// series prints an x/y table for figures (one column per engine).
type series struct {
	title  string
	xLabel string
	cols   []string
	xs     []string
	cells  map[[2]int]string
	notes  []string
}

func newSeries(title, xLabel string, cols []string) *series {
	return &series{title: title, xLabel: xLabel, cols: cols, cells: make(map[[2]int]string)}
}

func (s *series) addX(x string) int {
	s.xs = append(s.xs, x)
	return len(s.xs) - 1
}

func (s *series) set(xi, col int, v string) {
	s.cells[[2]int{xi, col}] = v
}

func (s *series) note(format string, args ...interface{}) {
	s.notes = append(s.notes, fmt.Sprintf(format, args...))
}

func (s *series) write(w io.Writer) {
	m := newMatrix(s.title, s.xLabel, s.cols)
	for xi, x := range s.xs {
		m.addRow(x)
		for j := range s.cols {
			if v, ok := s.cells[[2]int{xi, j}]; ok {
				m.set(xi, j, v)
			}
		}
	}
	m.notes = s.notes
	m.write(w)
}

// ratio renders a speedup ratio like the paper's Tables 1–3; infinite
// speedups (baseline timed out while the treatment finished) print as "inf",
// matching the paper's ∞-means-thrashing convention.
func ratio(baseline, treatment result) string {
	switch {
	case baseline.status == timeout && treatment.status == ok:
		return "inf"
	case baseline.status != ok || treatment.status != ok:
		return "-"
	case treatment.seconds <= 0:
		return "inf"
	default:
		return fmt.Sprintf("%.2f", baseline.seconds/treatment.seconds)
	}
}
