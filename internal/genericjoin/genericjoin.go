// Package genericjoin implements the paper's Algorithm 1 — the high-level
// recursive view of worst-case-optimal join processing (the simplified
// NPRR/LFTJ exposition from "Skew Strikes Back" [10], which the paper
// reproduces verbatim):
//
//	L ← ∩_{R : A1 ∈ vars(R)} π_{A1}(R)
//	for each a1 ∈ L: recurse on Q[a1]
//
// Unlike the iterator-based LFTJ engine (internal/lftj) it materializes the
// candidate intersection L at every level with hash sets instead of
// leapfrogging sorted iterators. It is worst-case optimal by the same
// analysis but carries the constant-factor overheads the leapfrog
// formulation avoids — making it a useful ablation of *how* a WCOJ is
// implemented, not just whether one is used.
package genericjoin

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/relation"
)

// Engine is the materializing generic-join engine.
type Engine struct {
	// GAO overrides the variable order (default: first-appearance).
	GAO []string
	// Plan, when set, is a compiled plan for the query: validation, GAO
	// resolution, and index binding are skipped.
	Plan *core.Plan
}

// Name implements core.Engine.
func (Engine) Name() string { return "genericjoin" }

// Count implements core.Engine.
func (e Engine) Count(ctx context.Context, q *query.Query, db *core.DB) (int64, error) {
	var n int64
	err := e.Enumerate(ctx, q, db, func([]int64) bool {
		n++
		return true
	})
	return n, err
}

// Enumerate implements core.Engine.
func (e Engine) Enumerate(ctx context.Context, q *query.Query, db *core.DB, emit func([]int64) bool) error {
	var gao []string
	var atoms []core.AtomIndex
	if p := e.Plan; p != nil {
		gao, atoms = p.GAO, p.Atoms
	} else {
		if err := q.Validate(); err != nil {
			return err
		}
		gao = e.GAO
		if gao == nil {
			gao = q.Vars()
		}
		if len(gao) != q.NumVars() {
			return fmt.Errorf("genericjoin: GAO %v does not cover the %d query variables: %w", gao, q.NumVars(), core.ErrUnboundVar)
		}
		// Generic join narrows explicit row spans over the flat rows, so it
		// always binds the flat backend regardless of plan-level selection.
		var err error
		atoms, err = core.BindAtoms(q, db, gao, core.BackendFlat)
		if err != nil {
			return err
		}
		for i, a := range atoms {
			if a.Rel.Arity() != len(q.Atoms[i].Vars) {
				return fmt.Errorf("genericjoin: atom %s arity mismatch with relation %s", q.Atoms[i], a.Rel)
			}
		}
	}
	ex := &exec{
		n:       len(gao),
		atoms:   atoms,
		binding: make([]int64, len(gao)),
		emit:    emit,
		tick:    core.NewTicker(ctx),
	}
	idx := q.VarIndex()
	ex.outPerm = make([]int, len(gao))
	for g, v := range gao {
		ex.outPerm[g] = idx[v]
	}
	// For each depth, the atoms whose next column binds that variable, and
	// their per-atom prefix columns (all earlier columns are bound once we
	// reach the depth, because atom columns are GAO-sorted).
	ex.byVar = make([][]participant, len(gao))
	for ai, a := range atoms {
		for lvl, p := range a.VarPos {
			ex.byVar[p] = append(ex.byVar[p], participant{atom: ai, level: lvl})
		}
	}
	for d := range ex.byVar {
		if len(ex.byVar[d]) == 0 {
			return fmt.Errorf("genericjoin: variable %s (depth %d) not bound by any atom", gao[d], d)
		}
	}
	_, err := ex.run(0, rangesAll(atoms))
	return err
}

// participant says atom `atom` constrains the current variable at trie
// level `level`.
type participant struct {
	atom  int
	level int
}

type exec struct {
	n       int
	atoms   []core.AtomIndex
	byVar   [][]participant
	binding []int64
	outPerm []int
	out     []int64
	emit    func([]int64) bool
	tick    *core.Ticker
}

// span is a row range of one atom's index consistent with the bindings so
// far.
type span struct {
	lo, hi int
}

func rangesAll(atoms []core.AtomIndex) []span {
	out := make([]span, len(atoms))
	for i, a := range atoms {
		out[i] = span{0, a.Rel.Len()}
	}
	return out
}

// run implements Algorithm 1: intersect the candidate sets of every
// participating atom at depth d, then recurse per candidate with narrowed
// row ranges.
func (ex *exec) run(d int, spans []span) (bool, error) {
	if err := ex.tick.Tick(); err != nil {
		return false, err
	}
	parts := ex.byVar[d]
	// Build L by scanning the smallest participant's distinct values and
	// probing the others (the hash-set analogue of the leapfrog; skew-aware
	// per [10] because the smallest set drives).
	smallest := parts[0]
	smallestSize := width(ex, smallest, spans)
	for _, p := range parts[1:] {
		if w := width(ex, p, spans); w < smallestSize {
			smallest, smallestSize = p, w
		}
	}
	r := ex.atoms[smallest.atom].Rel
	sp := spans[smallest.atom]
	for row := sp.lo; row < sp.hi; {
		v := r.Value(row, smallest.level)
		next := upper(r, smallest.level, row, sp.hi, v)
		ok := true
		for _, p := range parts {
			if p == smallest {
				continue
			}
			if !contains(ex, p, spans, v) {
				ok = false
				break
			}
		}
		if ok {
			ex.binding[d] = v
			// Narrow every participating atom's span to value v.
			childSpans := append([]span(nil), spans...)
			for _, p := range parts {
				pr := ex.atoms[p.atom].Rel
				psp := childSpans[p.atom]
				lo := lower(pr, p.level, psp.lo, psp.hi, v)
				hi := upper(pr, p.level, lo, psp.hi, v)
				childSpans[p.atom] = span{lo, hi}
			}
			if d == ex.n-1 {
				if !ex.emitTuple() {
					return false, nil
				}
			} else {
				cont, err := ex.run(d+1, childSpans)
				if err != nil || !cont {
					return cont, err
				}
			}
		}
		row = next
	}
	return true, nil
}

func (ex *exec) emitTuple() bool {
	if ex.out == nil {
		ex.out = make([]int64, ex.n)
	}
	for g, v := range ex.outPerm {
		ex.out[v] = ex.binding[g]
	}
	return ex.emit(ex.out)
}

func width(ex *exec, p participant, spans []span) int {
	return spans[p.atom].hi - spans[p.atom].lo
}

func contains(ex *exec, p participant, spans []span, v int64) bool {
	r := ex.atoms[p.atom].Rel
	sp := spans[p.atom]
	lo := lower(r, p.level, sp.lo, sp.hi, v)
	return lo < sp.hi && r.Value(lo, p.level) == v
}

// lower/upper are binary searches over a column within a row range (the
// range shares a prefix on earlier columns, so the column is sorted).
func lower(r *relation.Relation, col, lo, hi int, v int64) int {
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.Value(mid, col) < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func upper(r *relation.Relation, col, lo, hi int, v int64) int {
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.Value(mid, col) <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
