// Package wire is the frame protocol graphjoind speaks: a compact
// length-prefixed binary framing with varint-encoded payloads, shared by the
// server (repro/server) and the client (repro/client). It is the first
// process boundary in the reproduction — the seam along which stores shard
// across hosts.
//
// Every frame is
//
//	uint32  length (big-endian) of everything that follows — the type
//	        byte, the request id, and the body; excludes the 4 length
//	        bytes themselves
//	uint8   frame type (the T* constants)
//	uvarint request id
//	body    the type-specific fields
//
// The request id multiplexes concurrent requests over one connection: the
// client assigns ids, the server tags every response frame — including each
// chunk of a Rows stream — with the id of the request it answers. Control
// frames (TCredit, TCancel) reference the id of the stream or request they
// steer.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// ProtocolVersion is negotiated in the Hello exchange; the server rejects
// clients whose major version it does not speak.
const ProtocolVersion = 1

// MaxFrame bounds a frame's payload (64 MiB). Oversized frames indicate a
// corrupt or malicious peer; both ends drop the connection.
const MaxFrame = 64 << 20

// ErrFrameTooLarge reports a frame whose declared payload exceeds MaxFrame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")

// ErrTruncated reports a payload that ended before its fields did.
var ErrTruncated = errors.New("wire: truncated payload")

// Frame types. Requests flow client to server; each is answered by the
// response type noted (or TErr). TRowChunk/TRowsEnd stream; TCredit and
// TCancel are one-way control frames.
const (
	// Client → server requests.
	THello         byte = 0x01 // Hello → THelloOK
	TDefine        byte = 0x02 // Define → TOK
	TLoad          byte = 0x03 // Load → TOK
	TApply         byte = 0x04 // Apply → TOK
	TApplyAll      byte = 0x05 // ApplyAll → TOK
	TParse         byte = 0x06 // Parse → TParseOK
	TPrepare       byte = 0x07 // Prepare → TPrepareOK
	TClosePrepared byte = 0x08 // ClosePrepared → TOK
	TCount         byte = 0x09 // Count → TCountOK
	TRows          byte = 0x0a // Rows → TRowChunk* then TRowsEnd
	TBegin         byte = 0x0b // Begin → TBeginOK
	TEnd           byte = 0x0c // End → TOK
	TBatch         byte = 0x0d // Batch → TBatchOK
	TStats         byte = 0x0e // Stats → TStatsOK
	TExplain       byte = 0x0f // Explain → TExplainOK
	TRelations     byte = 0x10 // Relations → TRelationsOK

	// One-way control frames (client → server).
	TCredit byte = 0x18 // grant Rows flow-control credit to a stream
	TCancel byte = 0x19 // cancel an in-flight request or stream

	// Server → client responses.
	TOK          byte = 0x20
	TErr         byte = 0x21
	THelloOK     byte = 0x22
	TParseOK     byte = 0x23
	TPrepareOK   byte = 0x24
	TCountOK     byte = 0x25
	TRowChunk    byte = 0x26
	TRowsEnd     byte = 0x27
	TBeginOK     byte = 0x28
	TBatchOK     byte = 0x29
	TStatsOK     byte = 0x2a
	TExplainOK   byte = 0x2b
	TRelationsOK byte = 0x2c
)

// WriteFrame writes one frame. The caller serializes concurrent writers.
func WriteFrame(w io.Writer, typ byte, reqID uint64, body []byte) error {
	var hdr [5 + binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[5:], reqID)
	payload := 1 + n + len(body)
	if payload > MaxFrame {
		return ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(hdr[:4], uint32(payload))
	hdr[4] = typ
	if _, err := w.Write(hdr[:5+n]); err != nil {
		return err
	}
	if len(body) == 0 {
		return nil
	}
	_, err := w.Write(body)
	return err
}

// ReadFrame reads one frame, rejecting payloads over MaxFrame.
func ReadFrame(r io.Reader) (typ byte, reqID uint64, body []byte, err error) {
	var hdr [5]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n < 1 || n > MaxFrame {
		return 0, 0, nil, ErrFrameTooLarge
	}
	typ = hdr[4]
	payload := make([]byte, n-1)
	if _, err = io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, 0, nil, err
	}
	id, k := binary.Uvarint(payload)
	if k <= 0 {
		return 0, 0, nil, ErrTruncated
	}
	return typ, id, payload[k:], nil
}

// Enc appends varint-encoded fields to a payload buffer. The zero value is
// ready to use.
type Enc struct{ b []byte }

// Bytes returns the encoded payload.
func (e *Enc) Bytes() []byte { return e.b }

// U64 appends an unsigned varint.
func (e *Enc) U64(v uint64) { e.b = binary.AppendUvarint(e.b, v) }

// Int appends an int as an unsigned varint. Every protocol int field is a
// count or size where negative means "unset", so negatives clamp to 0
// rather than varint-wrapping into a huge value the peer would reject.
func (e *Enc) Int(v int) {
	if v < 0 {
		v = 0
	}
	e.U64(uint64(v))
}

// I64 appends a signed varint (zig-zag); tuple values carry user input that
// may be negative, which the server rejects with its own typed error.
func (e *Enc) I64(v int64) { e.b = binary.AppendVarint(e.b, v) }

// Bool appends a boolean as one byte.
func (e *Enc) Bool(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}

// Str appends a length-prefixed string.
func (e *Enc) Str(s string) {
	e.U64(uint64(len(s)))
	e.b = append(e.b, s...)
}

// StrList appends a count-prefixed list of strings.
func (e *Enc) StrList(ss []string) {
	e.U64(uint64(len(ss)))
	for _, s := range ss {
		e.Str(s)
	}
}

// Tuple appends a width-prefixed tuple of signed values.
func (e *Enc) Tuple(t []int64) {
	e.U64(uint64(len(t)))
	for _, v := range t {
		e.I64(v)
	}
}

// Tuples appends a count-prefixed list of tuples.
func (e *Enc) Tuples(ts [][]int64) {
	e.U64(uint64(len(ts)))
	for _, t := range ts {
		e.Tuple(t)
	}
}

// Dec consumes varint-encoded fields from a payload. Decoding errors are
// sticky: after the first failure every accessor returns a zero value and
// Err reports the failure, so message decoders read all fields and check
// once.
type Dec struct {
	b   []byte
	err error
}

// NewDec returns a decoder over the payload.
func NewDec(b []byte) *Dec { return &Dec{b: b} }

// Err returns the first decoding failure, if any.
func (d *Dec) Err() error { return d.err }

func (d *Dec) fail() {
	if d.err == nil {
		d.err = ErrTruncated
	}
}

// U64 consumes an unsigned varint.
func (d *Dec) U64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

// Int consumes an unsigned varint as an int, failing on overflow.
func (d *Dec) Int() int {
	v := d.U64()
	if d.err == nil && v > uint64(int(^uint(0)>>1)) {
		d.err = fmt.Errorf("wire: integer field %d overflows int", v)
		return 0
	}
	return int(v)
}

// I64 consumes a signed varint.
func (d *Dec) I64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

// Bool consumes one byte as a boolean.
func (d *Dec) Bool() bool {
	if d.err != nil {
		return false
	}
	if len(d.b) == 0 {
		d.fail()
		return false
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v != 0
}

// Str consumes a length-prefixed string. The length is validated against the
// remaining payload before allocating.
func (d *Dec) Str() string {
	n := d.U64()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)) {
		d.fail()
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

// Count validates a collection count against the bytes that remain: each
// element needs at least one byte, so any count beyond len(d.b) is corrupt
// and must not size an allocation.
func (d *Dec) Count() int {
	n := d.U64()
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.b)) {
		d.fail()
		return 0
	}
	return int(n)
}

// StrList consumes a count-prefixed list of strings.
func (d *Dec) StrList() []string {
	n := d.Count()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = d.Str()
	}
	if d.err != nil {
		return nil
	}
	return out
}

// Tuple consumes a width-prefixed tuple.
func (d *Dec) Tuple() []int64 {
	n := d.Count()
	if d.err != nil {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = d.I64()
	}
	if d.err != nil {
		return nil
	}
	return out
}

// Tuples consumes a count-prefixed list of tuples.
func (d *Dec) Tuples() [][]int64 {
	n := d.Count()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([][]int64, n)
	for i := range out {
		out[i] = d.Tuple()
	}
	if d.err != nil {
		return nil
	}
	return out
}
