// Package engine ties the join algorithms together behind one registry and
// implements the paper's §4.10 multi-threading strategy: the output space is
// partitioned into p = workers × granularity jobs on the first GAO
// attribute, submitted to a worker pool; idle workers grab the next
// unclaimed job (work stealing), because on skewed graphs "the parts are not
// born equal".
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/genericjoin"
	"repro/internal/graphengine"
	"repro/internal/hybrid"
	"repro/internal/hypergraph"
	"repro/internal/lftj"
	"repro/internal/minesweeper"
	"repro/internal/pairwise"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/yannakakis"
)

// Algorithm names a join engine. The names match the paper's system labels
// (§5.1): lb/lftj, lb/ms, lb/hybrid, psql, monetdb, graphlab, plus the
// yannakakis yardstick.
type Algorithm string

// Available algorithms.
const (
	LFTJ       Algorithm = "lftj"
	MS         Algorithm = "ms"
	Hybrid     Algorithm = "hybrid"
	PSQL       Algorithm = "psql"
	MonetDB    Algorithm = "monetdb"
	Yannakakis Algorithm = "yannakakis"
	GraphLab   Algorithm = "graphlab"
	// GenericJoin is the paper's Algorithm 1 — the recursive,
	// intersection-materializing formulation of a worst-case-optimal join —
	// kept as an implementation ablation against the leapfrog formulation.
	GenericJoin Algorithm = "genericjoin"
)

// Algorithms lists every registered algorithm.
func Algorithms() []Algorithm {
	return []Algorithm{LFTJ, MS, Hybrid, PSQL, MonetDB, Yannakakis, GraphLab, GenericJoin}
}

// ErrUnknownAlgorithm reports an algorithm name outside the registered set;
// API callers branch with errors.Is instead of matching message text.
var ErrUnknownAlgorithm = errors.New("unknown algorithm")

// ErrUnsupportedQuery reports an extended query (projection, comparison
// predicates, or aggregates) prepared for an algorithm that only executes
// plain natural joins; only LFTJ and Minesweeper push the extended features
// into their trie traversal.
var ErrUnsupportedQuery = errors.New("query features unsupported by this algorithm")

// ParseAlgorithm resolves a user-supplied algorithm name; empty selects LFTJ
// (the default engine throughout the API).
func ParseAlgorithm(s string) (Algorithm, error) {
	a := Algorithm(s)
	if a == "" {
		return LFTJ, nil
	}
	for _, known := range Algorithms() {
		if a == known {
			return a, nil
		}
	}
	names := make([]string, len(Algorithms()))
	for i, k := range Algorithms() {
		names[i] = string(k)
	}
	return "", fmt.Errorf("engine: %w %q (want one of %s)", ErrUnknownAlgorithm, s, strings.Join(names, ", "))
}

// Options configure execution.
type Options struct {
	Algorithm Algorithm
	// Workers sets the worker-pool size for the parallel engines (LFTJ and
	// Minesweeper); 0 means GOMAXPROCS, 1 disables parallelism.
	Workers int
	// Granularity is the paper's factor f: jobs = workers × f. 0 picks the
	// paper's defaults (1 for β-acyclic queries, 8 for cyclic ones).
	Granularity int
	// MS carries Minesweeper idea toggles (ablation benchmarks).
	MS minesweeper.Options
	// GAO overrides the attribute order for LFTJ and Minesweeper.
	GAO []string
	// Backend selects the index backend for the trie-driven engines (LFTJ,
	// Minesweeper): core.BackendCSR (the default), core.BackendCSRSharded
	// (disjoint per-shard binding on the parallel Count path), or
	// core.BackendFlat (the reference).
	Backend core.Backend
	// MaxRows caps pairwise-engine intermediates.
	MaxRows int
	// Plan, when set, is a compiled plan the engine executes directly
	// (LFTJ, Minesweeper, and generic join); see Prepare.
	Plan *core.Plan
	// Stats, when non-nil, receives execution counters from every engine on
	// the unified core stats surface.
	Stats *core.StatsCollector
	// FirstVarRange, when set, restricts execution to first-GAO-variable
	// values in [Lo, Hi) — the same restriction the §4.10 parallel jobs use
	// internally, exposed so a coordinator can partition one query's output
	// space across processes. Count runs single-threaded under a restriction
	// (the caller owns the parallelism); LFTJ and Minesweeper only.
	FirstVarRange *Range
}

// Range restricts the first GAO variable to [Lo, Hi); see
// Options.FirstVarRange.
type Range struct {
	Lo, Hi int64
}

// New returns the configured engine.
func New(opts Options) (core.Engine, error) {
	switch opts.Algorithm {
	case LFTJ, MS:
		return &parallel{opts: opts}, nil
	case Hybrid:
		return instrument(hybrid.Engine{}, opts.Stats), nil
	case PSQL:
		return instrument(pairwise.Engine{Opts: pairwise.Options{Flavor: pairwise.DP, MaxRows: opts.MaxRows}}, opts.Stats), nil
	case MonetDB:
		return instrument(pairwise.Engine{Opts: pairwise.Options{Flavor: pairwise.Greedy, MaxRows: opts.MaxRows}}, opts.Stats), nil
	case Yannakakis:
		return instrument(yannakakis.Engine{}, opts.Stats), nil
	case GraphLab:
		return instrument(graphengine.Engine{Workers: opts.Workers}, opts.Stats), nil
	case GenericJoin:
		return instrument(genericjoin.Engine{GAO: opts.GAO, Plan: opts.Plan}, opts.Stats), nil
	default:
		return nil, fmt.Errorf("engine: %w %q", ErrUnknownAlgorithm, opts.Algorithm)
	}
}

// instrument wraps an engine without internal counter support so its
// executions and output cardinalities still land on the unified stats
// surface. A nil collector leaves the engine untouched.
func instrument(e core.Engine, sc *core.StatsCollector) core.Engine {
	if sc == nil {
		return e
	}
	return instrumented{inner: e, sc: sc}
}

type instrumented struct {
	inner core.Engine
	sc    *core.StatsCollector
}

// Name implements core.Engine.
func (e instrumented) Name() string { return e.inner.Name() }

// Count implements core.Engine.
func (e instrumented) Count(ctx context.Context, q *query.Query, db *core.DB) (int64, error) {
	n, err := e.inner.Count(ctx, q, db)
	st := core.Stats{Executions: 1}
	if err == nil {
		st.Outputs = n
	}
	e.sc.Add(st)
	return n, err
}

// Enumerate implements core.Engine.
func (e instrumented) Enumerate(ctx context.Context, q *query.Query, db *core.DB, emit func([]int64) bool) error {
	var outputs int64
	err := e.inner.Enumerate(ctx, q, db, func(t []int64) bool {
		outputs++
		return emit(t)
	})
	e.sc.Add(core.Stats{Executions: 1, Outputs: outputs})
	return err
}

// parallel partitions Count across first-attribute ranges; Enumerate runs
// single-threaded (deterministic emission order).
type parallel struct {
	opts Options
}

// Name implements core.Engine.
func (p *parallel) Name() string { return string(p.opts.Algorithm) }

func (p *parallel) single() core.Engine {
	if p.opts.Algorithm == LFTJ {
		opts := lftj.Options{GAO: p.gao(), Backend: p.opts.Backend, Plan: p.opts.Plan, Stats: p.opts.Stats}
		if r := p.opts.FirstVarRange; r != nil {
			opts.FirstVarRange = &lftj.Range{Lo: r.Lo, Hi: r.Hi}
		}
		return lftj.Engine{Opts: opts}
	}
	ms := p.opts.MS
	if ms.GAO == nil {
		ms.GAO = p.opts.GAO
	}
	if ms.Backend == "" {
		ms.Backend = p.opts.Backend
	}
	if r := p.opts.FirstVarRange; r != nil {
		ms.FirstVarRange = &minesweeper.Range{Lo: r.Lo, Hi: r.Hi}
	}
	ms.Plan = p.opts.Plan
	ms.Collector = p.opts.Stats
	return minesweeper.Engine{Opts: ms}
}

func (p *parallel) gao() []string { return p.opts.GAO }

func (p *parallel) workers() int {
	if p.opts.Workers > 0 {
		return p.opts.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// granularity applies the paper's default f (§4.10): 1 for β-acyclic
// queries, 8 for cyclic ones, "determined after minor micro experiments".
// A compiled plan carries the classification; without one it is re-derived.
func (p *parallel) granularity(q *query.Query) int {
	if p.opts.Granularity > 0 {
		return p.opts.Granularity
	}
	if p.opts.Plan != nil {
		if p.opts.Plan.BetaCyclic {
			return 8
		}
		return 1
	}
	if _, ok := hypergraph.FindChainGAO(q.Vars(), q.Atoms); ok {
		return 1
	}
	return 8
}

// Enumerate implements core.Engine.
func (p *parallel) Enumerate(ctx context.Context, q *query.Query, db *core.DB, emit func([]int64) bool) error {
	p.opts.Stats.Add(core.Stats{Executions: 1})
	return p.single().Enumerate(ctx, q, db, emit)
}

// Count implements core.Engine.
func (p *parallel) Count(ctx context.Context, q *query.Query, db *core.DB) (int64, error) {
	p.opts.Stats.Add(core.Stats{Executions: 1})
	workers := p.workers()
	// Under an external first-variable restriction the output space is
	// already one partition of a larger fan-out; splitting it again would
	// clobber the restriction (rangeCount overwrites FirstVarRange per job).
	if workers <= 1 || p.opts.FirstVarRange != nil {
		return p.single().Count(ctx, q, db)
	}
	jobs, err := p.splitJobs(q, db, workers*p.granularity(q))
	if err != nil {
		return 0, err
	}
	if len(jobs) <= 1 {
		return p.single().Count(ctx, q, db)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var total atomic.Int64
	var wg sync.WaitGroup
	jobCh := make(chan [2]int64, len(jobs))
	for _, j := range jobs {
		jobCh <- j
	}
	close(jobCh)
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range jobCh {
				if err := ctx.Err(); err != nil {
					errCh <- err
					return
				}
				// Each job gets a fresh engine: per-job CDS and memo state,
				// released before the next job is claimed (§4.10).
				n, err := p.rangeCount(ctx, q, db, job[0], job[1])
				if err != nil {
					errCh <- err
					cancel()
					return
				}
				total.Add(n)
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return 0, err
	default:
	}
	return total.Load(), nil
}

func (p *parallel) rangeCount(ctx context.Context, q *query.Query, db *core.DB, lo, hi int64) (int64, error) {
	if p.opts.Algorithm == LFTJ {
		e := lftj.Engine{Opts: lftj.Options{GAO: p.gao(), Backend: p.opts.Backend, FirstVarRange: &lftj.Range{Lo: lo, Hi: hi}, Plan: p.opts.Plan, Stats: p.opts.Stats}}
		return e.Count(ctx, q, db)
	}
	ms := p.opts.MS
	if ms.GAO == nil {
		ms.GAO = p.opts.GAO
	}
	if ms.Backend == "" {
		ms.Backend = p.opts.Backend
	}
	ms.FirstVarRange = &minesweeper.Range{Lo: lo, Hi: hi}
	ms.Plan = p.opts.Plan
	ms.Collector = p.opts.Stats
	// The per-job legacy Stats pointer is not safe under concurrent adds;
	// concurrent jobs report through the collector instead.
	ms.Stats = nil
	return minesweeper.Engine{Opts: ms}.Count(ctx, q, db)
}

// splitJobs partitions the first GAO variable's candidate values into up to
// n contiguous ranges of roughly equal candidate counts (the paper's
// "p equal-sized parts" of the output space). Under the csr-sharded backend
// the cut points are taken from the shard boundaries instead, so every job
// maps one-to-one onto a physically disjoint shard of the indexes leading
// on the first attribute.
func (p *parallel) splitJobs(q *query.Query, db *core.DB, n int) ([][2]int64, error) {
	if plan := p.opts.Plan; plan != nil && plan.Backend == core.BackendCSRSharded {
		if jobs := shardJobs(plan); len(jobs) > 1 {
			return jobs, nil
		}
	}
	var gao []string
	if p.opts.Plan != nil {
		gao = p.opts.Plan.GAO
	} else {
		if err := q.Validate(); err != nil {
			return nil, err
		}
		gao = p.opts.GAO
		if gao == nil {
			if p.opts.Algorithm == MS {
				plan, err := hypergraph.PlanQuery(q)
				if err != nil {
					return nil, err
				}
				gao = plan.GAO
			} else {
				gao = q.Vars()
			}
		}
	}
	first := gao[0]
	atoms := q.AtomsWith(first)
	if len(atoms) == 0 {
		return nil, fmt.Errorf("engine: variable %q unbound", first)
	}
	// Use the smallest relation containing the first variable to pick cut
	// points from its distinct values on that column.
	var bestRel *relation.Relation
	bestCol := 0
	for _, ai := range atoms {
		r, err := db.Relation(q.Atoms[ai].Rel)
		if err != nil {
			return nil, err
		}
		col := 0
		for c, v := range q.Atoms[ai].Vars {
			if v == first {
				col = c
				break
			}
		}
		if bestRel == nil || r.Len() < bestRel.Len() {
			bestRel, bestCol = r, col
		}
	}
	var values []int64
	seen := make(map[int64]bool)
	for i := 0; i < bestRel.Len(); i++ {
		v := bestRel.Value(i, bestCol)
		if !seen[v] {
			seen[v] = true
			values = append(values, v)
		}
	}
	sortInt64(values)
	if n < 1 {
		n = 1
	}
	if len(values) < n {
		n = len(values)
	}
	if n <= 1 {
		return [][2]int64{{-1, relation.PosInf}}, nil
	}
	jobs := make([][2]int64, 0, n)
	lo := int64(-1)
	for i := 1; i < n; i++ {
		cut := values[i*len(values)/n]
		if cut <= lo {
			continue
		}
		jobs = append(jobs, [2]int64{lo, cut})
		lo = cut
	}
	jobs = append(jobs, [2]int64{lo, relation.PosInf})
	return jobs, nil
}

// shardJobs derives the job ranges from the shard boundaries of the plan's
// sharded indexes: among the atoms whose index leads on the first GAO
// attribute, the one with the most shards sets the cut points (its shards
// are the finest physical partition of the first attribute). Each returned
// job covers exactly one shard of that index, so the per-job RestrictAtoms
// binding in the engines resolves to a single disjoint shard.
func shardJobs(plan *core.Plan) [][2]int64 {
	var best core.ShardedIndex
	for _, a := range plan.Atoms {
		if len(a.VarPos) == 0 || a.VarPos[0] != 0 {
			continue
		}
		if si, ok := a.Index.(core.ShardedIndex); ok {
			if best == nil || si.NumShards() > best.NumShards() {
				best = si
			}
		}
	}
	if best == nil || best.NumShards() <= 1 {
		return nil
	}
	starts := best.ShardStarts()
	jobs := make([][2]int64, 0, len(starts))
	lo := int64(-1)
	for _, s := range starts[1:] {
		jobs = append(jobs, [2]int64{lo, s})
		lo = s
	}
	return append(jobs, [2]int64{lo, relation.PosInf})
}

func sortInt64(v []int64) {
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
}
