package router

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"

	"repro"
	"repro/internal/trace"
)

// TraceSpans collects the spans the cluster hosts recorded under one trace id
// — the downstream half of a stitched trace: a server fronting this router
// merges these with its own spans when answering a by-id trace fetch. Hosts
// whose querier has no trace surface (in-process stores execute inside the
// coordinator's trace already) are skipped; a host that fails the fetch fails
// the whole stitch with a *HostError so a partial tree is never presented as
// complete.
func (r *Router) TraceSpans(ctx context.Context, id uint64) ([]trace.SpanRecord, error) {
	type fetcher interface {
		TraceSpans(context.Context, uint64) ([]trace.SpanRecord, error)
	}
	n := len(r.hosts)
	spans := make([][]trace.SpanRecord, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, h := range r.hosts {
		f, ok := h.(fetcher)
		if !ok {
			continue
		}
		wg.Add(1)
		go func(i int, f fetcher) {
			defer wg.Done()
			spans[i], errs[i] = f.TraceSpans(ctx, id)
		}(i, f)
	}
	wg.Wait()
	var all []trace.SpanRecord
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return nil, r.hostErr(i, errs[i])
		}
		all = append(all, spans[i]...)
	}
	return all, nil
}

// Explain renders the routing decision and the downstream plan: which hosts
// participate, each host's shard restriction under the partitioner, how the
// per-host answers combine, and host 0's compiled plan (the shards compile
// identically up to the shard spec, so one plan stands for all).
func (p *Prepared) Explain(ctx context.Context) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "routed query %s [%s]\n", p.q.Name, p.alg)
	fmt.Fprintf(&b, "routing: %s\n", p.routeNote)
	if p.single {
		i := p.hostIdx[0]
		fmt.Fprintf(&b, "  host %d (%s): full query, no shard restriction\n", i, p.r.names[i])
	} else {
		fmt.Fprintf(&b, "partitioner: %s\n", p.r.part.Name())
		for i := range p.hosts {
			hi := p.hostIdx[i]
			fmt.Fprintf(&b, "  host %d (%s): %s\n", hi, p.r.names[hi], shardDesc(p.shards[i]))
		}
		if p.globalAgg {
			fmt.Fprintf(&b, "merge: fold of per-host aggregate partials\n")
		} else {
			fmt.Fprintf(&b, "merge: k-way on leading attribute (output column %d)\n", p.mergeCol)
		}
	}
	sub, err := downstreamExplain(ctx, p.hosts[0])
	if err != nil {
		return "", p.r.hostErr(p.hostIdx[0], err)
	}
	if sub != "" {
		fmt.Fprintf(&b, "host %d plan:\n", p.hostIdx[0])
		for _, line := range strings.Split(strings.TrimRight(sub, "\n"), "\n") {
			fmt.Fprintf(&b, "  %s\n", line)
		}
	}
	return b.String(), nil
}

// downstreamExplain renders one host handle's plan, accepting both explain
// shapes behind the PreparedQuery seam (local Explanation, remote string).
func downstreamExplain(ctx context.Context, h repro.PreparedQuery) (string, error) {
	switch h := h.(type) {
	case interface{ Explain() repro.Explanation }:
		return h.Explain().String(), nil
	case interface {
		Explain(context.Context) (string, error)
	}:
		return h.Explain(ctx)
	}
	return "", nil
}

// shardDesc renders one shard spec for Explain.
func shardDesc(s repro.Shard) string {
	switch s.Kind {
	case repro.ShardRange:
		lo, hi := "-inf", "+inf"
		if s.Lo != math.MinInt64 {
			lo = fmt.Sprintf("%d", s.Lo)
		}
		if s.Hi != math.MaxInt64 {
			hi = fmt.Sprintf("%d", s.Hi)
		}
		return fmt.Sprintf("range [%s, %s)", lo, hi)
	case repro.ShardHash:
		return fmt.Sprintf("hash residue %d mod %d", s.Res, s.Mod)
	}
	return "full domain"
}
