// Package server hosts repro Stores behind the wire protocol
// (repro/internal/wire), turning the in-process library into a query service:
// clients ship schema definitions, update batches, and prepared graph-pattern
// queries over a connection and the server answers from its shared indexes —
// the deployment shape the paper assumes of LogicBlox, and the seam along
// which stores shard across processes and hosts.
//
// A Server is multi-tenant: it hosts one or more named backends — in-process
// Stores, or any repro.Querier (Config.Queriers), such as a router.Router
// fronting a cluster of downstream servers — and each connection binds to one
// of them in its Hello exchange. Per connection the
// server keeps a prepared-statement table and a read-transaction table;
// requests on one connection run concurrently (each in its own goroutine,
// cancellable by a client Cancel frame), and a request failure answers only
// that request — the connection, and every other in-flight request on it,
// continues, mirroring the Store.Batch error-isolation contract.
//
// Shutdown drains: new requests are refused while every in-flight query runs
// to completion (or the drain context expires), then connections close.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"

	"repro"
)

// DefaultStore is the store name a client that does not pick one binds to;
// single-tenant deployments (NewSingle) register their store under it.
const DefaultStore = "default"

// ErrServerClosed is returned by Serve and ListenAndServe after Shutdown or
// Close, mirroring net/http's contract.
var ErrServerClosed = errors.New("server: closed")

// Config configures a Server.
type Config struct {
	// Stores is the registry of named stores served to clients. Keys are the
	// names clients select in their Hello exchange.
	Stores map[string]*repro.Store
	// Queriers registers additional backends by name — anything implementing
	// repro.Querier, such as a router.Router fronting a cluster of remote
	// hosts. Entries here and in Stores share one namespace; a name present
	// in both resolves to the Stores entry. Store-level gauges (overlay
	// depth) register only for backends that expose them.
	Queriers map[string]repro.Querier
	// Logf, when set, receives connection-level diagnostics (accept and
	// protocol errors). Request-level errors are not logged — they are
	// answered to the client.
	Logf func(format string, args ...any)
	// Limits, keyed by store name, caps each store's concurrent requests
	// (admission control). Stores without an entry are unlimited. Rejected
	// requests fail fast with a wire error satisfying
	// errors.Is(err, client.ErrOverloaded).
	Limits map[string]Limits
	// Trace configures request tracing and the slow-query log. The zero
	// value retains a small buffer of client-traced requests and disables
	// slow-query logging.
	Trace TraceConfig
}

// Server serves Store queries to remote clients. Create one with New or
// NewSingle, then call Serve (or ListenAndServe) on as many listeners as
// needed.
type Server struct {
	stores map[string]repro.Querier
	logf   func(string, ...any)

	// Per-store serving instrumentation and admission gates, fixed at New.
	// admissions entries are nil for unlimited stores.
	metrics    map[string]*storeMetrics
	admissions map[string]*admission
	leases     map[string]*leaseTracker
	// traces retains completed request traces and writes the slow-query log.
	traces *traceSink

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[*conn]struct{}
	closed    bool

	// inflight counts requests being handled across all connections;
	// Shutdown waits on it to drain.
	inflight sync.WaitGroup
}

// New returns a server hosting the configured stores. The store map is
// copied; stores themselves are shared with the caller, so an embedding
// process can keep writing to a store (e.g. a live data feed) while the
// server serves it — Store is safe for concurrent use.
func New(cfg Config) *Server {
	n := len(cfg.Stores) + len(cfg.Queriers)
	s := &Server{
		stores:     make(map[string]repro.Querier, n),
		logf:       cfg.Logf,
		metrics:    make(map[string]*storeMetrics, n),
		admissions: make(map[string]*admission, n),
		leases:     make(map[string]*leaseTracker, n),
		listeners:  make(map[net.Listener]struct{}),
		conns:      make(map[*conn]struct{}),
	}
	register := func(name string, q repro.Querier) {
		s.stores[name] = q
		s.metrics[name] = newStoreMetrics(name)
		s.admissions[name] = newAdmission(name, cfg.Limits[name])
		s.leases[name] = newLeaseTracker(name)
	}
	for name, q := range cfg.Queriers {
		if q != nil {
			register(name, q)
			if st, ok := q.(interface{ OverlayDepth() int }); ok {
				registerStoreGauges(name, st)
			}
		}
	}
	for name, st := range cfg.Stores {
		if st != nil {
			register(name, repro.Local(st))
			registerStoreGauges(name, st)
		}
	}
	if s.logf == nil {
		s.logf = func(string, ...any) {}
	}
	s.traces = newTraceSink(cfg.Trace, s.logf)
	return s
}

// NewSingle returns a single-tenant server hosting one store under
// DefaultStore.
func NewSingle(st *repro.Store) *Server {
	return New(Config{Stores: map[string]*repro.Store{DefaultStore: st}})
}

// Stores returns the names of the hosted stores (unordered).
func (s *Server) Stores() []string {
	names := make([]string, 0, len(s.stores))
	for n := range s.stores {
		names = append(names, n)
	}
	return names
}

// Serve accepts connections on l until the listener fails or the server is
// shut down; it always returns a non-nil error, ErrServerClosed after
// Shutdown/Close.
func (s *Server) Serve(l net.Listener) error {
	if !s.addListener(l) {
		l.Close()
		return ErrServerClosed
	}
	defer s.removeListener(l)
	for {
		nc, err := l.Accept()
		if err != nil {
			if s.isClosed() {
				return ErrServerClosed
			}
			return err
		}
		c := newConn(s, nc)
		if !s.addConn(c) {
			nc.Close()
			return ErrServerClosed
		}
		go c.serve()
	}
}

// ListenAndServe listens on the TCP address and serves until failure or
// shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Shutdown gracefully stops the server: listeners close immediately, new
// requests are refused with a shutting-down error, and every in-flight
// request — including open Rows streams — runs to completion before the
// connections close. If ctx expires first, the remaining work is cut off by
// force-closing the connections (which cancels the per-request contexts) and
// ctx's error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	if !s.beginClose() {
		return nil
	}
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.closeConns()
	return err
}

// Close stops the server immediately: listeners and connections close and
// in-flight requests are cancelled.
func (s *Server) Close() error {
	if !s.beginClose() {
		return nil
	}
	s.closeConns()
	return nil
}

// beginClose transitions to the closed state once: listeners stop accepting
// and startRequest refuses new work. It reports whether this call performed
// the transition.
func (s *Server) beginClose() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.closed = true
	for l := range s.listeners {
		l.Close()
	}
	return true
}

func (s *Server) closeConns() {
	s.mu.Lock()
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.close()
	}
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Server) addListener(l net.Listener) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.listeners[l] = struct{}{}
	return true
}

func (s *Server) removeListener(l net.Listener) {
	s.mu.Lock()
	delete(s.listeners, l)
	s.mu.Unlock()
}

func (s *Server) addConn(c *conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) removeConn(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// startRequest admits one request into the in-flight set; it refuses once
// the server is draining or closed. Every successful call is balanced by
// s.inflight.Done() in the request goroutine.
func (s *Server) startRequest() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.inflight.Add(1)
	return true
}

// lookupStore resolves a Hello's store selection (empty means DefaultStore).
func (s *Server) lookupStore(name string) (repro.Querier, string, error) {
	if name == "" {
		name = DefaultStore
	}
	st, ok := s.stores[name]
	if !ok {
		return nil, name, fmt.Errorf("server: %q: %w", name, errUnknownStore)
	}
	return st, name, nil
}
