// Package wire is the frame protocol graphjoind speaks: a compact
// length-prefixed binary framing with varint-encoded payloads, shared by the
// server (repro/server) and the client (repro/client). It is the first
// process boundary in the reproduction — the seam along which stores shard
// across hosts.
//
// Every frame is
//
//	uint32  length (big-endian) of everything that follows — the type
//	        byte, the request id, and the body; excludes the 4 length
//	        bytes themselves
//	uint8   frame type (the T* constants)
//	uvarint request id
//	body    the type-specific fields
//
// The request id multiplexes concurrent requests over one connection: the
// client assigns ids, the server tags every response frame — including each
// chunk of a Rows stream — with the id of the request it answers. Control
// frames (TCredit, TCancel) reference the id of the stream or request they
// steer.
package wire

import (
	"encoding/binary"
	"errors"
	"io"

	"repro/internal/codec"
)

// ProtocolVersion is negotiated in the Hello exchange; the server rejects
// clients whose major version it does not speak. Version 2 extended the
// query payload with predicates and aggregate terms; version 3 extended the
// prepare options with the shard spec the distributed router fans out.
// Version 4 prefixes every dispatched request body with a trace context
// (flag 0 = untraced) and adds the TTrace fetch.
const ProtocolVersion = 4

// MaxFrame bounds a frame's payload (64 MiB). Oversized frames indicate a
// corrupt or malicious peer; both ends drop the connection.
const MaxFrame = 64 << 20

// ErrFrameTooLarge reports a frame whose declared payload exceeds MaxFrame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")

// ErrTruncated reports a payload that ended before its fields did.
var ErrTruncated = codec.ErrTruncated

// Frame types. Requests flow client to server; each is answered by the
// response type noted (or TErr). TRowChunk/TRowsEnd stream; TCredit and
// TCancel are one-way control frames.
const (
	// Client → server requests.
	THello         byte = 0x01 // Hello → THelloOK
	TDefine        byte = 0x02 // Define → TOK
	TLoad          byte = 0x03 // Load → TOK
	TApply         byte = 0x04 // Apply → TOK
	TApplyAll      byte = 0x05 // ApplyAll → TOK
	TParse         byte = 0x06 // Parse → TParseOK
	TPrepare       byte = 0x07 // Prepare → TPrepareOK
	TClosePrepared byte = 0x08 // ClosePrepared → TOK
	TCount         byte = 0x09 // Count → TCountOK
	TRows          byte = 0x0a // Rows → TRowChunk* then TRowsEnd
	TBegin         byte = 0x0b // Begin → TBeginOK
	TEnd           byte = 0x0c // End → TOK
	TBatch         byte = 0x0d // Batch → TBatchOK
	TStats         byte = 0x0e // Stats → TStatsOK
	TExplain       byte = 0x0f // Explain → TExplainOK
	TRelations     byte = 0x10 // Relations → TRelationsOK
	TMetrics       byte = 0x11 // Metrics → TMetricsOK
	TTrace         byte = 0x12 // Trace → TTraceOK

	// One-way control frames (client → server).
	TCredit byte = 0x18 // grant Rows flow-control credit to a stream
	TCancel byte = 0x19 // cancel an in-flight request or stream

	// Server → client responses.
	TOK          byte = 0x20
	TErr         byte = 0x21
	THelloOK     byte = 0x22
	TParseOK     byte = 0x23
	TPrepareOK   byte = 0x24
	TCountOK     byte = 0x25
	TRowChunk    byte = 0x26
	TRowsEnd     byte = 0x27
	TBeginOK     byte = 0x28
	TBatchOK     byte = 0x29
	TStatsOK     byte = 0x2a
	TExplainOK   byte = 0x2b
	TRelationsOK byte = 0x2c
	TMetricsOK   byte = 0x2d
	TTraceOK     byte = 0x2e
)

// WriteFrame writes one frame. The caller serializes concurrent writers.
func WriteFrame(w io.Writer, typ byte, reqID uint64, body []byte) error {
	var hdr [5 + binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[5:], reqID)
	payload := 1 + n + len(body)
	if payload > MaxFrame {
		return ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(hdr[:4], uint32(payload))
	hdr[4] = typ
	if _, err := w.Write(hdr[:5+n]); err != nil {
		return err
	}
	if len(body) == 0 {
		return nil
	}
	_, err := w.Write(body)
	return err
}

// ReadFrame reads one frame, rejecting payloads over MaxFrame.
func ReadFrame(r io.Reader) (typ byte, reqID uint64, body []byte, err error) {
	var hdr [5]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n < 1 || n > MaxFrame {
		return 0, 0, nil, ErrFrameTooLarge
	}
	typ = hdr[4]
	payload := make([]byte, n-1)
	if _, err = io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, 0, nil, err
	}
	id, k := binary.Uvarint(payload)
	if k <= 0 {
		return 0, 0, nil, ErrTruncated
	}
	return typ, id, payload[k:], nil
}

// Enc appends varint-encoded fields to a payload buffer (internal/codec's
// encoder, re-exported: the durability layer shares the same codecs for its
// log and snapshot records without importing the protocol's error table).
// The zero value is ready to use.
type Enc = codec.Enc

// Dec consumes varint-encoded fields from a payload (internal/codec's
// decoder, re-exported). Decoding errors are sticky: after the first failure
// every accessor returns a zero value and Err reports the failure, so
// message decoders read all fields and check once.
type Dec = codec.Dec

// NewDec returns a decoder over the payload.
func NewDec(b []byte) *Dec { return codec.NewDec(b) }
