package server_test

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/client"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/server"
)

// parkStreams starts n Rows streams that each consume one row and then block
// until release closes — deterministically occupying n server-side in-flight
// slots (the producer stalls on credit with a 1-row/1-credit window). It
// returns once all n streams are parked.
func parkStreams(t *testing.T, ctx context.Context, p repro.PreparedQuery, n int, release <-chan struct{}) *sync.WaitGroup {
	t.Helper()
	parked := make(chan struct{}, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := p.Enumerate(ctx, func([]int64) bool {
				parked <- struct{}{}
				<-release
				return false
			})
			if err != nil {
				t.Errorf("parked Enumerate: %v", err)
			}
		}()
	}
	for i := 0; i < n; i++ {
		select {
		case <-parked:
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d of %d streams parked", i, n)
		}
	}
	return &wg
}

// countWithRetry polls Count until it succeeds (slots free asynchronously
// after a stream unparks) or the deadline passes.
func countWithRetry(ctx context.Context, p repro.PreparedQuery) (int64, error) {
	deadline := time.Now().Add(5 * time.Second)
	for {
		n, err := p.Count(ctx)
		if err == nil || !errors.Is(err, client.ErrOverloaded) || time.Now().After(deadline) {
			return n, err
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAdmissionOverload pins the acceptance criterion: with a budget of K
// in-flight requests and no queue, K parked streams plus M more requests
// yield exactly M typed ErrOverloaded rejections — surfaced through
// errors.Is on the client — and no server goroutine leaks.
func TestAdmissionOverload(t *testing.T) {
	const K, M = 3, 4
	ctx := context.Background()
	g := repro.GenerateGraph(repro.HolmeKim, 80, 220, 3)
	srv := server.New(server.Config{
		Stores: map[string]*repro.Store{"adm-overload": g.Store()},
		Limits: map[string]server.Limits{"adm-overload": {MaxInflight: K, MaxQueued: 0}},
	})
	remote := dial(t, serve(t, srv), client.WithStore("adm-overload"), client.WithStreamTuning(1, 1))
	p, err := remote.Prepare(query.Clique(3), repro.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	base := runtime.NumGoroutine()
	release := make(chan struct{})
	wg := parkStreams(t, ctx, p, K, release)

	rejected := 0
	for i := 0; i < M; i++ {
		_, err := p.Count(ctx)
		if err == nil {
			t.Fatalf("Count %d succeeded with all %d slots parked", i, K)
		}
		if !errors.Is(err, client.ErrOverloaded) {
			t.Fatalf("Count %d: got %v, want ErrOverloaded", i, err)
		}
		rejected++
	}
	if rejected != M {
		t.Fatalf("got %d rejections, want exactly %d", rejected, M)
	}

	close(release)
	wg.Wait()
	if _, err := countWithRetry(ctx, p); err != nil {
		t.Fatalf("Count after unpark: %v", err)
	}

	// Zero goroutine leaks: the K parked request goroutines (and the stream
	// machinery) must all wind down once the streams finish.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, baseline %d", n, base)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestAdmissionQueue proves the queue admits without rejecting: with K slots
// parked and a queue of M, M concurrent requests wait instead of failing and
// all complete once the slots free up.
func TestAdmissionQueue(t *testing.T) {
	const K, M = 2, 3
	ctx := context.Background()
	g := repro.GenerateGraph(repro.HolmeKim, 80, 220, 3)
	srv := server.New(server.Config{
		Stores: map[string]*repro.Store{"adm-queue": g.Store()},
		Limits: map[string]server.Limits{"adm-queue": {MaxInflight: K, MaxQueued: M}},
	})
	remote := dial(t, serve(t, srv), client.WithStore("adm-queue"), client.WithStreamTuning(1, 1))
	p, err := remote.Prepare(query.Clique(3), repro.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	release := make(chan struct{})
	wg := parkStreams(t, ctx, p, K, release)

	counts := make(chan error, M)
	for i := 0; i < M; i++ {
		go func() {
			_, err := p.Count(ctx)
			counts <- err
		}()
	}
	// The queued requests must still be waiting, not failed, when the slots
	// open up.
	time.Sleep(100 * time.Millisecond)
	close(release)
	wg.Wait()
	for i := 0; i < M; i++ {
		if err := <-counts; err != nil {
			t.Fatalf("queued Count %d: %v", i, err)
		}
	}
}

// TestMetricsOverWire exercises the full exposition round-trip through the
// wire protocol: requests_total scraped via client.Metrics must advance by
// exactly the number of wire requests the client issued, and the latency
// histograms must have matching observation counts.
func TestMetricsOverWire(t *testing.T) {
	ctx := context.Background()
	g := repro.GenerateGraph(repro.HolmeKim, 80, 220, 3)
	srv := server.New(server.Config{
		Stores: map[string]*repro.Store{"metr": g.Store()},
	})
	remote := dial(t, serve(t, srv), client.WithStore("metr"))

	scrape := func() []metrics.Sample {
		t.Helper()
		text, err := remote.Metrics(ctx)
		if err != nil {
			t.Fatal(err)
		}
		samples, err := metrics.ParseText(strings.NewReader(text))
		if err != nil {
			t.Fatalf("ParseText: %v", err)
		}
		return samples
	}
	total := func(samples []metrics.Sample, kv ...string) float64 {
		return metrics.SumSamples(samples, "graphjoind_requests_total", kv...)
	}

	before := scrape() // includes itself: counted before its response

	// A known request mix: 1 prepare + 3 counts + 1 stats.
	p, err := remote.Prepare(query.Clique(3), repro.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := p.Count(ctx); err != nil {
			t.Fatal(err)
		}
	}
	sp, ok := p.(interface {
		StatsErr(context.Context) (repro.ExecStats, error)
	})
	if !ok {
		t.Fatalf("remote prepared %T lacks StatsErr", p)
	}
	if _, err := sp.StatsErr(ctx); err != nil {
		t.Fatal(err)
	}

	after := scrape()
	// 1 prepare + 3 count + 1 stats + the after-scrape's own Metrics request
	// (the before-scrape counted itself into the baseline).
	if got := total(after, "store", "metr") - total(before, "store", "metr"); got != 6 {
		t.Errorf("requests_total advanced by %g, want 6", got)
	}
	for _, want := range []struct {
		typ string
		n   float64
	}{{"prepare", 1}, {"count", 3}, {"stats", 1}, {"metrics", 1}} {
		got := total(after, "store", "metr", "type", want.typ) - total(before, "store", "metr", "type", want.typ)
		if got != want.n {
			t.Errorf("requests_total{type=%q} advanced by %g, want %g", want.typ, got, want.n)
		}
	}
	// Latency histograms observe once per request.
	countObs := func(s []metrics.Sample) float64 {
		return metrics.SumSamples(s, "graphjoind_request_seconds_count", "store", "metr", "type", "count")
	}
	if got := countObs(after) - countObs(before); got != 3 {
		t.Errorf("request_seconds_count{type=count} advanced by %g, want 3", got)
	}
	// No errors were produced.
	if got := metrics.SumSamples(after, "graphjoind_request_errors_total", "store", "metr"); got != 0 {
		t.Errorf("request_errors_total = %g, want 0", got)
	}
	// The connection gauge sees this client.
	if got := metrics.SumSamples(after, "graphjoind_connections", "store", "metr"); got != 1 {
		t.Errorf("connections = %g, want 1", got)
	}
}

// TestMetricsLeaseGauges drives Begin/End and watches the lease gauges.
func TestMetricsLeaseGauges(t *testing.T) {
	ctx := context.Background()
	g := repro.GenerateGraph(repro.HolmeKim, 60, 150, 3)
	srv := server.New(server.Config{
		Stores: map[string]*repro.Store{"metr-lease": g.Store()},
	})
	remote := dial(t, serve(t, srv), client.WithStore("metr-lease"))

	leases := func() float64 {
		t.Helper()
		text, err := remote.Metrics(ctx)
		if err != nil {
			t.Fatal(err)
		}
		samples, err := metrics.ParseText(strings.NewReader(text))
		if err != nil {
			t.Fatal(err)
		}
		return metrics.SumSamples(samples, "graphjoind_open_leases", "store", "metr-lease")
	}

	if got := leases(); got != 0 {
		t.Fatalf("open_leases before Begin = %g, want 0", got)
	}
	txn, err := remote.ReadTxn()
	if err != nil {
		t.Fatal(err)
	}
	if got := leases(); got != 1 {
		t.Errorf("open_leases with txn = %g, want 1", got)
	}
	if err := txn.Close(); err != nil {
		t.Fatal(err)
	}
	if got := leases(); got != 0 {
		t.Errorf("open_leases after End = %g, want 0", got)
	}
}
