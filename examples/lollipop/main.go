// Command lollipop runs the paper's §4.12 experiment: lollipop queries
// (a path feeding into a clique) stress both engines in different ways —
// Minesweeper suffers on the clique part, LFTJ on the path part — and the
// hybrid algorithm that runs Minesweeper on the path and LFTJ on the clique
// beats both.
package main

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro"
)

func main() {
	ctx := context.Background()
	g := repro.GenerateGraph(repro.HolmeKim, 8_000, 50_000, 11)
	g.SetSelectivity(10, 3)
	fmt.Printf("graph: %d nodes, %d edges, selectivity 10\n\n", g.Nodes(), g.Edges())

	for _, i := range []int{2, 3} {
		q := repro.Lollipops(i)
		fmt.Printf("%s: %s\n", q.Name, q)
		for _, alg := range []repro.Algorithm{repro.LFTJ, repro.MS, repro.Hybrid} {
			p, err := g.Prepare(q, repro.Options{Algorithm: alg, Workers: 1})
			if err != nil {
				fmt.Printf("  %-8s error: %v\n", alg, err)
				continue
			}
			runCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
			start := time.Now()
			n, err := p.Count(runCtx)
			cancel()
			switch {
			case errors.Is(err, context.DeadlineExceeded):
				fmt.Printf("  %-8s timeout\n", alg)
			case err != nil:
				fmt.Printf("  %-8s error: %v\n", alg, err)
			default:
				fmt.Printf("  %-8s %12d results in %v\n", alg, n, time.Since(start).Round(time.Millisecond))
			}
		}
		fmt.Println()
	}
}
