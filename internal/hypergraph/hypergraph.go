// Package hypergraph analyzes the structure of join queries (paper §2.1):
// α-acyclicity via GYO ear removal, β-acyclicity via nest-point elimination,
// join trees for Yannakakis, and — central to Minesweeper — global attribute
// order (GAO) selection: the chain condition that operationalizes nested
// elimination orders (Prop 4.2), the paper's longest-path scoring (§4.9),
// and β-acyclic skeletons for cyclic queries (Idea 7).
package hypergraph

import (
	"sort"

	"repro/internal/query"
)

// Hypergraph is the query hypergraph H(Q) = (V, E): vertices are variables,
// edges are the variable sets of atoms (deduplicated).
type Hypergraph struct {
	Vars  []string
	Edges [][]string // each sorted by Vars order, deduplicated
}

// FromQuery builds the hypergraph of a query.
func FromQuery(q *query.Query) *Hypergraph {
	idx := q.VarIndex()
	seen := make(map[string]bool)
	h := &Hypergraph{Vars: append([]string(nil), q.Vars()...)}
	for _, a := range q.Atoms {
		vars := append([]string(nil), a.Vars...)
		sort.Slice(vars, func(i, j int) bool { return idx[vars[i]] < idx[vars[j]] })
		key := ""
		for _, v := range vars {
			key += v + "|"
		}
		if !seen[key] {
			seen[key] = true
			h.Edges = append(h.Edges, vars)
		}
	}
	return h
}

func toSet(vars []string) map[string]bool {
	s := make(map[string]bool, len(vars))
	for _, v := range vars {
		s[v] = true
	}
	return s
}

func subset(a, b map[string]bool) bool {
	for v := range a {
		if !b[v] {
			return false
		}
	}
	return true
}

// IsAlphaAcyclic reports α-acyclicity via the GYO reduction: repeatedly (1)
// remove vertices that occur in exactly one edge ("ear vertices") and (2)
// remove edges contained in another edge, until fixpoint. The hypergraph is
// α-acyclic iff everything is eliminated.
func (h *Hypergraph) IsAlphaAcyclic() bool {
	edges := make([]map[string]bool, len(h.Edges))
	for i, e := range h.Edges {
		edges[i] = toSet(e)
	}
	for {
		changed := false
		// Remove vertices occurring in exactly one edge.
		occ := make(map[string]int)
		for _, e := range edges {
			for v := range e {
				occ[v]++
			}
		}
		for _, e := range edges {
			for v := range e {
				if occ[v] == 1 {
					delete(e, v)
					changed = true
				}
			}
		}
		// Remove empty edges and edges contained in another edge.
		var kept []map[string]bool
		for i, e := range edges {
			if len(e) == 0 {
				changed = true
				continue
			}
			contained := false
			for j, f := range edges {
				if i == j {
					continue
				}
				if subset(e, f) && (len(e) < len(f) || i > j) {
					contained = true
					break
				}
			}
			if contained {
				changed = true
			} else {
				kept = append(kept, e)
			}
		}
		edges = kept
		if len(edges) == 0 {
			return true
		}
		if !changed {
			return false
		}
	}
}

// nestPoint reports whether vertex v is a nest point: the edges containing v
// are totally ordered by inclusion.
func nestPoint(v string, edges []map[string]bool) bool {
	var inc []map[string]bool
	for _, e := range edges {
		if e[v] {
			inc = append(inc, e)
		}
	}
	for i := 0; i < len(inc); i++ {
		for j := i + 1; j < len(inc); j++ {
			if !subset(inc[i], inc[j]) && !subset(inc[j], inc[i]) {
				return false
			}
		}
	}
	return true
}

// NestPointElimination attempts to eliminate all vertices by repeatedly
// removing a nest point. It returns the elimination order and whether the
// hypergraph is β-acyclic (elimination succeeded). A hypergraph is β-acyclic
// iff every subhypergraph is α-acyclic, equivalently iff nest-point
// elimination empties it.
func (h *Hypergraph) NestPointElimination() (order []string, ok bool) {
	edges := make([]map[string]bool, len(h.Edges))
	for i, e := range h.Edges {
		edges[i] = toSet(e)
	}
	remaining := append([]string(nil), h.Vars...)
	for len(remaining) > 0 {
		found := -1
		for i, v := range remaining {
			if nestPoint(v, edges) {
				found = i
				break
			}
		}
		if found < 0 {
			return order, false
		}
		v := remaining[found]
		order = append(order, v)
		remaining = append(remaining[:found], remaining[found+1:]...)
		for _, e := range edges {
			delete(e, v)
		}
	}
	return order, true
}

// IsBetaAcyclic reports β-acyclicity.
func (h *Hypergraph) IsBetaAcyclic() bool {
	_, ok := h.NestPointElimination()
	return ok
}
