// Package graphalgo implements the "more graph-style processing" the
// paper's conclusion names as future work for the benchmark (§6: "BFS,
// shortest path, page rank"): classic traversal and ranking algorithms over
// the same edge relation the join engines consume. It demonstrates that the
// relational substrate serves both join processing and navigational
// workloads — the unification the paper argues for.
package graphalgo

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/query"
)

// Adjacency is a compact adjacency list over the symmetric edge relation.
type Adjacency struct {
	N   int
	adj map[int64][]int64
}

// BuildAdjacency reads the "edge" relation from the database.
func BuildAdjacency(db *core.DB) (*Adjacency, error) {
	edge, err := db.Relation(query.Edge)
	if err != nil {
		return nil, err
	}
	if edge.Arity() != 2 {
		return nil, fmt.Errorf("graphalgo: %s must be binary", query.Edge)
	}
	a := &Adjacency{adj: make(map[int64][]int64)}
	var maxID int64 = -1
	for i := 0; i < edge.Len(); i++ {
		u, v := edge.Value(i, 0), edge.Value(i, 1)
		a.adj[u] = append(a.adj[u], v)
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
	}
	a.N = int(maxID + 1)
	return a, nil
}

// Neighbors returns the sorted neighbor list of u (the edge relation is
// sorted, so insertion order is already sorted).
func (a *Adjacency) Neighbors(u int64) []int64 { return a.adj[u] }

// BFS returns the hop distance from src to every reachable vertex
// (unreachable vertices are absent).
func (a *Adjacency) BFS(ctx context.Context, src int64) (map[int64]int, error) {
	dist := map[int64]int{src: 0}
	frontier := []int64{src}
	for len(frontier) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var next []int64
		for _, u := range frontier {
			for _, v := range a.adj[u] {
				if _, seen := dist[v]; !seen {
					dist[v] = dist[u] + 1
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return dist, nil
}

// ShortestPath returns one shortest path between src and dst (inclusive),
// or ok == false when disconnected.
func (a *Adjacency) ShortestPath(ctx context.Context, src, dst int64) (path []int64, ok bool, err error) {
	if src == dst {
		return []int64{src}, true, nil
	}
	parent := map[int64]int64{src: src}
	frontier := []int64{src}
	for len(frontier) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		var next []int64
		for _, u := range frontier {
			for _, v := range a.adj[u] {
				if _, seen := parent[v]; seen {
					continue
				}
				parent[v] = u
				if v == dst {
					// Reconstruct.
					for at := dst; at != src; at = parent[at] {
						path = append(path, at)
					}
					path = append(path, src)
					reverse(path)
					return path, true, nil
				}
				next = append(next, v)
			}
		}
		frontier = next
	}
	return nil, false, nil
}

func reverse(s []int64) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// ConnectedComponents labels every vertex that appears in the edge relation
// with a component id (smallest member id).
func (a *Adjacency) ConnectedComponents(ctx context.Context) (map[int64]int64, error) {
	comp := make(map[int64]int64, len(a.adj))
	var vertices []int64
	for u := range a.adj {
		vertices = append(vertices, u)
	}
	sort.Slice(vertices, func(i, j int) bool { return vertices[i] < vertices[j] })
	for _, root := range vertices {
		if _, done := comp[root]; done {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		stack := []int64{root}
		comp[root] = root
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range a.adj[u] {
				if _, done := comp[v]; !done {
					comp[v] = root
					stack = append(stack, v)
				}
			}
		}
	}
	return comp, nil
}

// PageRank runs the classic power iteration with uniform teleport over the
// vertices incident to edges. damping is typically 0.85.
func (a *Adjacency) PageRank(ctx context.Context, damping float64, iterations int) (map[int64]float64, error) {
	if damping <= 0 || damping >= 1 {
		return nil, fmt.Errorf("graphalgo: damping %v outside (0,1)", damping)
	}
	n := len(a.adj)
	if n == 0 {
		return map[int64]float64{}, nil
	}
	rank := make(map[int64]float64, n)
	for u := range a.adj {
		rank[u] = 1 / float64(n)
	}
	for it := 0; it < iterations; it++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		next := make(map[int64]float64, n)
		base := (1 - damping) / float64(n)
		for u := range a.adj {
			next[u] = base
		}
		for u, nbrs := range a.adj {
			share := damping * rank[u] / float64(len(nbrs))
			for _, v := range nbrs {
				next[v] += share
			}
		}
		rank = next
	}
	return rank, nil
}
