// Package incremental maintains materialized pattern-count views under
// edge insertions and deletions. The paper motivates LogicBlox's adoption
// of optimal joins partly through incrementally maintained materialized
// views ("LogicBlox encourages the use of materialized views that are
// incrementally maintained", §3, citing Veldhuizen's incremental LFTJ
// [14]); this package implements the classical delta-query approach: a
// join is multilinear in each atom occurrence, so for a relation update
// R → R ∪ Δ (Δ disjoint from R),
//
//	Q(R ∪ Δ) = Σ_{S ⊆ occ(R)} Q[atoms in S ↦ Δ, others ↦ R],
//
// and the count correction is the sum over non-empty S — each term a small
// join evaluated with the worst-case-optimal engine, with the Δ-bound atoms
// keeping every term tiny for selective updates.
package incremental

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/lftj"
	"repro/internal/query"
	"repro/internal/relation"
)

// deltaSuffix names the temporary delta relations registered in the
// database during a correction pass.
const deltaSuffix = "@delta"

// View is a maintained count of a query over a database. The delta queries
// it evaluates per update batch are planned once: the GAO and the per-mask
// term queries are derived at construction (or on a relation's first
// update) and reused across every ApplyEdges/UpdateRelation batch — only
// the delta relation's indexes are re-bound, because only they changed.
type View struct {
	q     *query.Query
	db    *core.DB
	count int64
	gao   []string
	// occ[rel] lists the atom indices referencing rel.
	occ map[string][]int
	// terms[rel] holds the prepared delta-term queries, one per non-empty
	// occurrence subset, built once per relation.
	terms map[string][]*query.Query
	sc    *core.StatsCollector
}

// NewView computes the initial count and returns the maintained view.
func NewView(ctx context.Context, q *query.Query, db *core.DB) (*View, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	v := &View{
		q:     q,
		db:    db,
		gao:   q.Vars(),
		occ:   make(map[string][]int),
		terms: make(map[string][]*query.Query),
		sc:    &core.StatsCollector{},
	}
	v.sc.Add(core.Stats{GAODerivations: 1})
	n, err := v.run(ctx, q)
	if err != nil {
		return nil, err
	}
	v.count = n
	for i, a := range q.Atoms {
		v.occ[a.Rel] = append(v.occ[a.Rel], i)
	}
	return v, nil
}

// run evaluates one query (the view query or a delta term) with the
// worst-case-optimal engine under the view's fixed GAO. The atom binding
// runs per call because the delta relation's data changes every batch, but
// unchanged base-relation indexes are served from the DB's index cache.
func (v *View) run(ctx context.Context, q *query.Query) (int64, error) {
	plan, err := core.NewPlan(q, v.db, "lftj", v.gao, nil, false, core.BackendFlat, v.sc)
	if err != nil {
		return 0, err
	}
	v.sc.Add(core.Stats{Executions: 1})
	e := lftj.Engine{Opts: lftj.Options{Plan: plan, Stats: v.sc}}
	return e.Count(ctx, q, v.db)
}

// Count returns the maintained count.
func (v *View) Count() int64 { return v.count }

// Stats returns the view's accumulated planning and execution counters.
// GAODerivations stays at 1 across arbitrarily many update batches — the
// attribute order and term queries are derived once. IndexBindings grows
// with each delta-term run (the delta relation's data changes every batch,
// so its atoms re-bind; unchanged base-relation indexes are cache hits
// inside the binding).
func (v *View) Stats() core.Stats { return v.sc.Snapshot() }

// Recount recomputes from scratch (for verification).
func (v *View) Recount(ctx context.Context) (int64, error) {
	return (lftj.Engine{}).Count(ctx, v.q, v.db)
}

// UpdateRelation applies inserts and deletes to one relation and corrects
// the view. Tuples to insert that are already present, and tuples to delete
// that are absent, are ignored.
func (v *View) UpdateRelation(ctx context.Context, rel string, inserts, deletes [][]int64) error {
	occ := v.occ[rel]
	r, err := v.db.Relation(rel)
	if err != nil {
		return err
	}
	if len(occ) == 0 {
		// The view does not depend on this relation; just apply.
		return v.apply(rel, r, inserts, deletes)
	}
	// Deletions first: with R' = R \ D registered, the correction terms are
	// evaluated over (R', D).
	dels := filterPresent(r, deletes, true)
	if len(dels) > 0 {
		rPrime := minus(r, dels)
		v.db.Add(rPrime)
		correction, err := v.deltaTerms(ctx, rel, tuplesToRelation(rel+deltaSuffix, r.Arity(), dels))
		if err != nil {
			// Restore the original relation before surfacing the error.
			v.db.Add(r)
			return err
		}
		v.count -= correction
		r = rPrime
	}
	// Insertions: correction terms are evaluated over the pre-insert R.
	ins := filterPresent(r, inserts, false)
	if len(ins) > 0 {
		correction, err := v.deltaTerms(ctx, rel, tuplesToRelation(rel+deltaSuffix, r.Arity(), ins))
		if err != nil {
			return err
		}
		v.count += correction
		v.db.Add(plus(r, ins))
	}
	return nil
}

// apply installs an update without corrections (unreferenced relation).
func (v *View) apply(rel string, r *relation.Relation, inserts, deletes [][]int64) error {
	out := minus(r, filterPresent(r, deletes, true))
	out = plus(out, filterPresent(out, inserts, false))
	v.db.Add(out)
	return nil
}

// deltaTerms sums Q[S ↦ Δ, rest ↦ current] over non-empty S ⊆ occ(rel),
// executing each term's prepared query. Term construction and planning
// happen once per relation; per batch only the delta indexes are re-bound.
func (v *View) deltaTerms(ctx context.Context, rel string, delta *relation.Relation) (int64, error) {
	v.db.Add(delta)
	terms, err := v.termQueries(rel)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, term := range terms {
		n, err := v.run(ctx, term)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// termQueries returns the delta-term queries for one relation, building and
// caching them on first use.
func (v *View) termQueries(rel string) ([]*query.Query, error) {
	if terms, ok := v.terms[rel]; ok {
		return terms, nil
	}
	occ := v.occ[rel]
	if len(occ) > 20 {
		return nil, fmt.Errorf("incremental: %d occurrences of %s exceeds the subset budget", len(occ), rel)
	}
	terms := make([]*query.Query, 0, 1<<uint(len(occ))-1)
	for mask := 1; mask < 1<<uint(len(occ)); mask++ {
		atoms := make([]query.Atom, len(v.q.Atoms))
		copy(atoms, v.q.Atoms)
		for bit, ai := range occ {
			if mask&(1<<uint(bit)) != 0 {
				atoms[ai] = query.Atom{Rel: rel + deltaSuffix, Vars: atoms[ai].Vars}
			}
		}
		terms = append(terms, query.New(v.q.Name+"/delta", atoms...))
	}
	v.terms[rel] = terms
	return terms, nil
}

// filterPresent returns the tuples whose presence in r equals want.
func filterPresent(r *relation.Relation, tuples [][]int64, want bool) [][]int64 {
	var out [][]int64
	seen := make(map[string]bool)
	for _, t := range tuples {
		if r.Contains(t) != want {
			continue
		}
		k := key(t)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, t)
	}
	return out
}

func key(t []int64) string {
	b := make([]byte, 0, len(t)*8)
	for _, v := range t {
		u := uint64(v)
		b = append(b, byte(u), byte(u>>8), byte(u>>16), byte(u>>24), byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
	}
	return string(b)
}

func tuplesToRelation(name string, arity int, tuples [][]int64) *relation.Relation {
	b := relation.NewBuilder(name, arity)
	for _, t := range tuples {
		b.Add(t...)
	}
	return b.Build()
}

func minus(r *relation.Relation, tuples [][]int64) *relation.Relation {
	drop := make(map[string]bool, len(tuples))
	for _, t := range tuples {
		drop[key(t)] = true
	}
	b := relation.NewBuilder(r.Name(), r.Arity())
	for i := 0; i < r.Len(); i++ {
		t := r.Tuple(i)
		if !drop[key(t)] {
			b.Add(t...)
		}
	}
	return b.Build()
}

func plus(r *relation.Relation, tuples [][]int64) *relation.Relation {
	b := relation.NewBuilder(r.Name(), r.Arity())
	for i := 0; i < r.Len(); i++ {
		b.Add(r.Tuple(i)...)
	}
	for _, t := range tuples {
		b.Add(t...)
	}
	return b.Build()
}

// GraphView maintains a pattern count over the benchmark graph schema: an
// undirected edge update touches both the symmetric "edge" relation and the
// oriented "fwd" relation.
type GraphView struct {
	*View
}

// NewGraphView builds a maintained view over the graph schema.
func NewGraphView(ctx context.Context, q *query.Query, db *core.DB) (*GraphView, error) {
	v, err := NewView(ctx, q, db)
	if err != nil {
		return nil, err
	}
	return &GraphView{View: v}, nil
}

// ApplyEdges inserts and removes undirected edges, updating both derived
// relations and the count.
func (g *GraphView) ApplyEdges(ctx context.Context, insert, remove [][2]int64) error {
	symIns, symDel := orient(insert, false), orient(remove, false)
	fwdIns, fwdDel := orient(insert, true), orient(remove, true)
	if err := g.UpdateRelation(ctx, query.Edge, symIns, symDel); err != nil {
		return err
	}
	return g.UpdateRelation(ctx, query.Fwd, fwdIns, fwdDel)
}

func orient(edges [][2]int64, fwdOnly bool) [][]int64 {
	var out [][]int64
	for _, e := range edges {
		u, v := e[0], e[1]
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		out = append(out, []int64{u, v})
		if !fwdOnly {
			out = append(out, []int64{v, u})
		}
	}
	return out
}
