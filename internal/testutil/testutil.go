// Package testutil provides shared fixtures for engine tests: small graph
// databases in the paper's schema (symmetric edge relation, oriented fwd
// relation, node samples) and random instances for differential testing.
package testutil

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/relation"
)

// GraphDB builds a database in the benchmark schema from an undirected edge
// list: relation "edge" holds both orientations, relation "fwd" holds the
// u<v orientation, and each samples entry becomes a unary relation.
func GraphDB(edges [][2]int64, samples map[string][]int64) *core.DB {
	db := core.NewDB()
	eb := relation.NewBuilder(query.Edge, 2)
	fb := relation.NewBuilder(query.Fwd, 2)
	for _, e := range edges {
		u, v := e[0], e[1]
		if u == v {
			continue
		}
		eb.Add(u, v)
		eb.Add(v, u)
		if u < v {
			fb.Add(u, v)
		} else {
			fb.Add(v, u)
		}
	}
	db.Add(eb.Build())
	db.Add(fb.Build())
	for name, vals := range samples {
		sb := relation.NewBuilder(name, 1)
		for _, v := range vals {
			sb.Add(v)
		}
		db.Add(sb.Build())
	}
	return db
}

// RandomGraph returns m random edges over n nodes (self-loops skipped,
// duplicates allowed — relation building dedups).
func RandomGraph(rng *rand.Rand, n, m int) [][2]int64 {
	var edges [][2]int64
	for i := 0; i < m; i++ {
		u, v := int64(rng.Intn(n)), int64(rng.Intn(n))
		if u != v {
			edges = append(edges, [2]int64{u, v})
		}
	}
	return edges
}

// RandomSample selects each of 0..n-1 with probability 1/s (the paper's
// selectivity parameter); it never returns an empty sample when n > 0.
func RandomSample(rng *rand.Rand, n int, s int) []int64 {
	var out []int64
	for v := 0; v < n; v++ {
		if rng.Intn(s) == 0 {
			out = append(out, int64(v))
		}
	}
	if len(out) == 0 && n > 0 {
		out = append(out, int64(rng.Intn(n)))
	}
	return out
}

// RandomGraphDB builds a full benchmark-schema database with all four
// samples populated at the given selectivity.
func RandomGraphDB(rng *rand.Rand, n, m, selectivity int) *core.DB {
	return GraphDB(RandomGraph(rng, n, m), map[string][]int64{
		query.Sample1: RandomSample(rng, n, selectivity),
		query.Sample2: RandomSample(rng, n, selectivity),
		query.Sample3: RandomSample(rng, n, selectivity),
		query.Sample4: RandomSample(rng, n, selectivity),
	})
}

// BenchmarkQueries returns the paper's full §5.1 query suite.
func BenchmarkQueries() []*query.Query {
	return []*query.Query{
		query.Clique(3), query.Clique(4), query.Cycle(4),
		query.Path(3), query.Path(4),
		query.Tree(1), query.Tree(2), query.Comb(),
		query.Lollipop(2), query.Lollipop(3),
	}
}

// K4 is the complete graph on vertices 0..3: 3 oriented triangles per
// 3-subset etc.; handy for hand-counted expectations.
var K4 = [][2]int64{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
