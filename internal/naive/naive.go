// Package naive implements a straightforward backtracking join used only as
// a differential-testing oracle: it binds variables in first-appearance
// order, scanning each candidate atom with simple prefix lookups. It is
// deliberately unoptimized and obviously correct.
package naive

import (
	"context"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/relation"
)

// Engine is the oracle engine.
type Engine struct{}

// Name implements core.Engine.
func (Engine) Name() string { return "naive" }

// Count implements core.Engine.
func (e Engine) Count(ctx context.Context, q *query.Query, db *core.DB) (int64, error) {
	var n int64
	err := e.Enumerate(ctx, q, db, func([]int64) bool {
		n++
		return true
	})
	return n, err
}

// Enumerate implements core.Engine.
func (e Engine) Enumerate(ctx context.Context, q *query.Query, db *core.DB, emit func([]int64) bool) error {
	if err := q.Validate(); err != nil {
		return err
	}
	rels := make([]*relation.Relation, len(q.Atoms))
	for i, a := range q.Atoms {
		r, err := db.Relation(a.Rel)
		if err != nil {
			return err
		}
		if r.Arity() != len(a.Vars) {
			return errArity(a, r)
		}
		rels[i] = r
	}
	vars := q.Vars()
	idx := q.VarIndex()
	binding := make([]int64, len(vars))
	bound := make([]bool, len(vars))
	tick := core.NewTicker(ctx)

	var rec func(v int) (bool, error)
	rec = func(v int) (bool, error) {
		if err := tick.Tick(); err != nil {
			return false, err
		}
		if v == len(vars) {
			// Verify every atom (cheap given full bindings).
			point := make([]int64, 0, 4)
			for i, a := range q.Atoms {
				point = point[:0]
				for _, av := range a.Vars {
					point = append(point, binding[idx[av]])
				}
				if !rels[i].Contains(point) {
					return true, nil
				}
			}
			return emit(append([]int64(nil), binding...)), nil
		}
		// Candidate values: distinct values of this variable from the first
		// atom containing it, filtered by recursion.
		ai := q.AtomsWith(vars[v])[0]
		col := -1
		for c, av := range q.Atoms[ai].Vars {
			if av == vars[v] {
				col = c
				break
			}
		}
		seen := make(map[int64]bool)
		r := rels[ai]
		for row := 0; row < r.Len(); row++ {
			val := r.Value(row, col)
			if seen[val] {
				continue
			}
			seen[val] = true
			binding[v] = val
			bound[v] = true
			cont, err := rec(v + 1)
			if err != nil || !cont {
				return cont, err
			}
		}
		bound[v] = false
		return true, nil
	}
	_, err := rec(0)
	return err
}

type arityError struct {
	atom query.Atom
	rel  *relation.Relation
}

func errArity(a query.Atom, r *relation.Relation) error {
	return &arityError{atom: a, rel: r}
}

func (e *arityError) Error() string {
	return "naive: atom " + e.atom.String() + " arity mismatch with relation " + e.rel.String()
}
