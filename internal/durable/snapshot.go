package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/codec"
	"repro/internal/relation"
)

// A snapshot file snap-<lsn>.snap holds every relation's sorted base rows as
// of log position lsn:
//
//	magic    8 bytes
//	uint64   body length (big-endian)
//	uint32   CRC-32 (IEEE) of the body
//	body     uvarint lsn, relation count, then per relation: name, arity,
//	         chunk count, and row chunks (wire varint tuple lists)
//
// Rows are split into chunks of roughly snapChunkRows tuples, with each cut
// grown forward to the next first-attribute boundary — the same rule
// relation.NewShardedCSR uses for shard cuts — so a chunk is a
// self-contained unit a later out-of-core backend can page independently.
// Snapshots are written to a temp file, fsynced, and renamed into place, so
// a crash mid-checkpoint leaves at most a stale *.tmp file and never a
// half-written snapshot under the live name.

// snapChunkRows is the target rows per snapshot chunk.
const snapChunkRows = 32 << 10

// SnapRelation is one relation restored from a snapshot.
type SnapRelation struct {
	Name   string
	Arity  int
	Tuples [][]int64
}

// writeSnapshot durably writes rels as the snapshot at lsn and returns its
// final path.
func writeSnapshot(dir string, lsn uint64, rels []*relation.Relation) (string, error) {
	sorted := append([]*relation.Relation(nil), rels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name() < sorted[j].Name() })

	var e codec.Enc
	e.U64(lsn)
	e.Int(len(sorted))
	for _, r := range sorted {
		e.Str(r.Name())
		e.Int(r.Arity())
		cuts := chunkCuts(r)
		e.Int(len(cuts) - 1)
		for c := 0; c+1 < len(cuts); c++ {
			lo, hi := cuts[c], cuts[c+1]
			e.U64(uint64(hi - lo))
			for i := lo; i < hi; i++ {
				e.Tuple(r.Tuple(i))
			}
		}
	}
	body := e.Bytes()

	hdr := make([]byte, len(snapMagic)+12)
	copy(hdr, snapMagic)
	binary.BigEndian.PutUint64(hdr[len(snapMagic):], uint64(len(body)))
	binary.BigEndian.PutUint32(hdr[len(snapMagic)+8:], crc32.ChecksumIEEE(body))

	final := snapPath(dir, lsn)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return "", err
	}
	_, err = f.Write(hdr)
	if err == nil {
		_, err = f.Write(body)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, final)
	}
	if err != nil {
		os.Remove(tmp)
		return "", err
	}
	syncDir(dir)
	return final, nil
}

// chunkCuts returns row-index boundaries [0, ..., Len] splitting r into
// chunks of about snapChunkRows rows, each cut aligned to a first-attribute
// boundary so no key's row group straddles two chunks.
func chunkCuts(r *relation.Relation) []int {
	n := r.Len()
	cuts := []int{0}
	for end := 0; end < n; {
		end += snapChunkRows
		if end >= n {
			end = n
		} else {
			for end < n && r.Value(end, 0) == r.Value(end-1, 0) {
				end++
			}
		}
		cuts = append(cuts, end)
	}
	if n == 0 {
		cuts = append(cuts, 0)
	}
	return cuts
}

// readSnapshot loads and validates one snapshot file.
func readSnapshot(path string) (lsn uint64, rels []SnapRelation, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, err
	}
	base := filepath.Base(path)
	hdrLen := len(snapMagic) + 12
	if len(data) < hdrLen || string(data[:len(snapMagic)]) != snapMagic {
		return 0, nil, fmt.Errorf("%s: bad snapshot header", base)
	}
	bodyLen := binary.BigEndian.Uint64(data[len(snapMagic):])
	if bodyLen != uint64(len(data)-hdrLen) {
		return 0, nil, fmt.Errorf("%s: snapshot body is %d bytes, header says %d", base, len(data)-hdrLen, bodyLen)
	}
	body := data[hdrLen:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(data[len(snapMagic)+8:]) {
		return 0, nil, fmt.Errorf("%s: snapshot CRC mismatch", base)
	}

	d := codec.NewDec(body)
	lsn = d.U64()
	nRels := d.Count()
	rels = make([]SnapRelation, 0, nRels)
	for i := 0; i < nRels; i++ {
		name := d.Str()
		arity := d.Int()
		nChunks := d.Count()
		var tuples [][]int64
		for c := 0; c < nChunks; c++ {
			tuples = append(tuples, d.Tuples()...)
		}
		if d.Err() != nil {
			break
		}
		if arity < 1 {
			return 0, nil, fmt.Errorf("%s: relation %q has arity %d", base, name, arity)
		}
		for _, t := range tuples {
			if len(t) != arity {
				return 0, nil, fmt.Errorf("%s: relation %q tuple width %d != arity %d", base, name, len(t), arity)
			}
		}
		rels = append(rels, SnapRelation{Name: name, Arity: arity, Tuples: tuples})
	}
	if err := d.Err(); err != nil {
		return 0, nil, fmt.Errorf("%s: %w", base, err)
	}
	return lsn, rels, nil
}
