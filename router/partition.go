package router

import (
	"fmt"
	"math"
	"sort"

	"repro"
	"repro/internal/core"
)

// Partitioner maps the leading-GAO-attribute domain onto cluster hosts. The
// shards it hands out must be disjoint and cover the whole value domain —
// that is what makes per-host counts sum to the cluster count and per-host
// streams merge into the single-store stream. Two strategies ship: range
// partitioning (RangePartitioner — contiguous value bands, cheap in the trie
// cursors, sensitive to skew) and hash partitioning (HashPartitioner —
// residue classes of a stable 64-bit hash, skew-resistant, applied as an
// emission filter).
type Partitioner interface {
	// Name identifies the strategy ("range", "hash") for diagnostics.
	Name() string
	// Shards returns one shard spec per host, partitioning the domain
	// across n hosts. It fails when the strategy cannot produce exactly n
	// disjoint covering shards (e.g. a range partitioner configured with
	// the wrong number of boundaries).
	Shards(n int) ([]repro.Shard, error)
	// Owner returns the index of the host whose shard holds leading-
	// attribute value v, consistent with Shards: Owner(v, n) is the unique
	// i whose Shards(n)[i] admits v.
	Owner(v int64, n int) int
}

// RangePartitioner partitions by contiguous value bands: with boundaries
// b1 < b2 < ... < b(n-1), host 0 owns (-inf, b1), host i owns [bi, b(i+1)),
// and the last host owns [b(n-1), +inf). The host count is fixed by the
// boundary count (len(boundaries)+1 hosts). Range shards push into the trie
// cursors, so each host touches only its band of the leading index level.
func RangePartitioner(boundaries ...int64) Partitioner {
	bs := append([]int64(nil), boundaries...)
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	return rangePart{bs}
}

type rangePart struct{ bounds []int64 }

func (p rangePart) Name() string { return "range" }

func (p rangePart) Shards(n int) ([]repro.Shard, error) {
	if n != len(p.bounds)+1 {
		return nil, fmt.Errorf("router: range partitioner has %d boundaries (%d shards), cluster has %d hosts",
			len(p.bounds), len(p.bounds)+1, n)
	}
	shards := make([]repro.Shard, n)
	for i := range shards {
		lo, hi := int64(math.MinInt64), int64(math.MaxInt64)
		if i > 0 {
			lo = p.bounds[i-1]
		}
		if i < len(p.bounds) {
			hi = p.bounds[i]
		}
		shards[i] = repro.Shard{Kind: repro.ShardRange, Lo: lo, Hi: hi}
	}
	return shards, nil
}

func (p rangePart) Owner(v int64, n int) int {
	// First boundary strictly above v selects the band.
	i := sort.Search(len(p.bounds), func(i int) bool { return v < p.bounds[i] })
	if i >= n {
		i = n - 1
	}
	return i
}

// HashPartitioner partitions by residue class of the wire-stable
// core.ShardHash: host i owns the values v with ShardHash(v) mod n == i.
// It adapts to any host count and resists value skew, at the cost of every
// host scanning its full leading index level (the shard applies as an
// emission filter, not a cursor restriction).
func HashPartitioner() Partitioner { return hashPart{} }

type hashPart struct{}

func (hashPart) Name() string { return "hash" }

func (hashPart) Shards(n int) ([]repro.Shard, error) {
	if n < 1 {
		return nil, fmt.Errorf("router: hash partitioner needs at least one host")
	}
	shards := make([]repro.Shard, n)
	for i := range shards {
		shards[i] = repro.Shard{Kind: repro.ShardHash, Mod: uint64(n), Res: uint64(i)}
	}
	return shards, nil
}

func (hashPart) Owner(v int64, n int) int {
	return int(core.ShardHash(v) % uint64(n))
}
