// Package core holds the pieces shared by every join engine in the
// reproduction: the database (a named collection of relations with a cache
// of GAO-consistent secondary indexes, §4.1) and the Engine interface the
// benchmark harness drives.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"repro/internal/query"
	"repro/internal/relation"
)

// Typed failure kinds, so API callers can branch on errors.Is instead of
// matching message text.
var (
	// ErrUnknownRelation reports a query atom naming a relation the
	// database does not hold.
	ErrUnknownRelation = errors.New("unknown relation")
	// ErrUnboundVar reports a query variable not covered by the global
	// attribute order (or not bound by any atom).
	ErrUnboundVar = errors.New("variable not bound")
)

// DB is a collection of named relations. Engines request GAO-consistent
// secondary indexes through Index; results are cached because the paper's
// protocol reuses the same physical design across queries (§4.1: "all input
// relations are indexed consistent with this GAO"). The DB also caches
// compiled query plans (see plan.go); both caches are invalidated per
// relation by Add.
type DB struct {
	mu      sync.Mutex
	rels    map[string]*relation.Relation
	indexes map[string]*relation.Relation
	tries   map[string]trieEntry
	plans   map[string]*Plan
	// version increments on every Add and ApplyDelta; plan compilation
	// snapshots it so a plan bound against relations that were replaced
	// mid-compile is never cached (it would otherwise dodge Add's
	// invalidation sweep forever).
	version int64
}

// trieEntry is one cached physical index together with the permutation and
// backend it was built under, so ApplyDelta can route an update batch into
// the index's own attribute order.
type trieEntry struct {
	perm    []int
	backend Backend
	idx     IndexBackend
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{
		rels:    make(map[string]*relation.Relation),
		indexes: make(map[string]*relation.Relation),
		tries:   make(map[string]trieEntry),
		plans:   make(map[string]*Plan),
	}
}

// Add registers a relation under its name, replacing any previous relation
// with that name and invalidating its cached indexes and any cached plans
// that read it.
func (db *DB) Add(r *relation.Relation) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.addLocked(r)
}

// AddAll registers several relations under one lock acquisition, so no
// reader — in particular no snapshot lease — can observe some of them
// replaced and others not (the multi-relation counterpart of Add, as
// ApplyDeltas is of ApplyDelta; the benchmark schema's sample redraws
// replace four relations at once).
func (db *DB) AddAll(rels []*relation.Relation) {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, r := range rels {
		db.addLocked(r)
	}
}

func (db *DB) addLocked(r *relation.Relation) {
	db.version++
	db.rels[r.Name()] = r
	prefix := r.Name() + "/"
	for k := range db.indexes {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			delete(db.indexes, k)
		}
	}
	for k := range db.tries {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			delete(db.tries, k)
		}
	}
	for k, p := range db.plans {
		if p.reads(r.Name()) {
			delete(db.plans, k)
		}
	}
}

// OverlayDepth sums the pending delta-log sizes of every cached CSR index:
// the number of tuples sitting in overlay logs ahead of their base tries.
// The metrics layer exports it per store as graphjoind_overlay_depth.
func (db *DB) OverlayDepth() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	total := 0
	for _, e := range db.tries {
		if p, ok := e.idx.(interface{ PendingDelta() int }); ok {
			total += p.PendingDelta()
		}
	}
	return total
}

// Version returns the database's mutation counter (incremented by every Add
// and ApplyDelta). Callers that cache derived state — the incremental views
// cache compiled delta plans — compare versions to detect relations changing
// underneath them.
func (db *DB) Version() int64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.version
}

// ApplyDelta applies an in-place update batch to the named relation:
// registers the merged relation (one linear merge, no re-sort) and then
// maintains the cached physical design incrementally instead of discarding
// it — every cached CSR index absorbs the batch through its delta overlay
// (relation.Overlay) in time proportional to the small log — no trie
// rebuild — and plans compiled against the CSR
// backend stay valid because their index objects are advanced in place.
// Flat and sharded indexes, and plans bound to them, are invalidated and
// rebuilt lazily (the flat permuted relations are re-derived from the merged
// relation on next use; sharded tries are rebuilt on next bind).
//
// Inserts already present and deletes absent are ignored, and a tuple
// appearing on both sides of one batch resolves as delete-after-insert (an
// absent tuple stays absent, a present one is deleted), so any caller batch
// is safe. This is the write path the incremental views
// (internal/incremental) drive on every ApplyEdges batch.
func (db *DB) ApplyDelta(name string, inserts, deletes [][]int64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.applyDeltaLocked(name, inserts, deletes)
}

// DeltaBatch is one relation's update batch within a multi-relation delta.
type DeltaBatch struct {
	Name    string
	Inserts [][]int64
	Deletes [][]int64
}

// ApplyDeltas applies several relations' update batches under one lock
// acquisition, so no reader — in particular no snapshot lease (NewLease) and
// no index bind — can observe a state where some of the batches have landed
// and others have not. This is the write path for derived-relation schemas
// whose invariants span relations (the benchmark graph's symmetric "edge"
// and oriented "fwd"). All batch names are validated up front; an unknown
// relation fails the whole call before anything is applied.
func (db *DB) ApplyDeltas(batches []DeltaBatch) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, b := range batches {
		if _, ok := db.rels[b.Name]; !ok {
			return fmt.Errorf("core: %w: %q", ErrUnknownRelation, b.Name)
		}
	}
	for _, b := range batches {
		if err := db.applyDeltaLocked(b.Name, b.Inserts, b.Deletes); err != nil {
			return err
		}
	}
	return nil
}

func (db *DB) applyDeltaLocked(name string, inserts, deletes [][]int64) error {
	r, ok := db.rels[name]
	if !ok {
		return fmt.Errorf("core: %w: %q", ErrUnknownRelation, name)
	}
	ins, dels := CanonicalDelta(r, inserts, deletes)
	if len(ins) == 0 && len(dels) == 0 {
		return nil
	}
	db.version++
	arity := r.Arity()
	insRel := relation.FromTuples(name, arity, ins)
	delsRel := relation.FromTuples(name, arity, dels)
	db.rels[name] = relation.MergeDelta(r, insRel, delsRel)
	prefix := name + "/"
	for k := range db.indexes {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			delete(db.indexes, k)
		}
	}
	for k, e := range db.tries {
		if len(k) < len(prefix) || k[:len(prefix)] != prefix {
			continue
		}
		if e.backend == BackendCSR {
			e.idx.(*csrIndex).applyDelta(permuteTuples(ins, e.perm), permuteTuples(dels, e.perm))
			continue
		}
		delete(db.tries, k)
	}
	for k, p := range db.plans {
		if p.reads(name) && p.Backend != BackendCSR {
			delete(db.plans, k)
		}
	}
	return nil
}

// CanonicalDelta reduces a raw update batch to the canonical delta against r:
// deletes restricted to present tuples, inserts to absent ones, both
// deduplicated. A tuple appearing on both sides resolves as
// delete-after-insert: a no-op for absent tuples, a delete for present
// ones. The result satisfies the overlay invariants (ins ∩ r = ∅,
// dels ⊆ r, ins ∩ dels = ∅). Exported because the incremental views
// canonicalize their batches the same way before deriving correction terms,
// so view maintenance and the raw ApplyDelta path agree on batch semantics.
func CanonicalDelta(r *relation.Relation, inserts, deletes [][]int64) (ins, dels [][]int64) {
	seenDel := make(map[string]bool)
	for _, t := range deletes {
		if len(t) != r.Arity() {
			continue
		}
		k := relation.TupleKey(t)
		if !seenDel[k] && r.Contains(t) {
			dels = append(dels, t)
		}
		seenDel[k] = true
	}
	seenIns := make(map[string]bool)
	for _, t := range inserts {
		if len(t) != r.Arity() || r.Contains(t) {
			continue
		}
		k := relation.TupleKey(t)
		if !seenIns[k] && !seenDel[k] {
			seenIns[k] = true
			ins = append(ins, t)
		}
	}
	return ins, dels
}

// permuteTuples reorders every tuple's columns by perm (output column k
// holds input column perm[k]) — the delta-batch counterpart of
// Relation.Permute.
func permuteTuples(tuples [][]int64, perm []int) [][]int64 {
	if len(tuples) == 0 {
		return nil
	}
	identity := true
	for k, p := range perm {
		if p != k {
			identity = false
			break
		}
	}
	if identity {
		return tuples
	}
	out := make([][]int64, len(tuples))
	for i, t := range tuples {
		pt := make([]int64, len(perm))
		for k, p := range perm {
			pt[k] = t[p]
		}
		out[i] = pt
	}
	return out
}

// Snapshot returns the current relation set under one lock acquisition.
// Relations are immutable, so the returned pointers form a consistent
// point-in-time view of the database — the capture the durability layer's
// checkpointer pairs with the WAL position it holds while calling.
func (db *DB) Snapshot() []*relation.Relation {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]*relation.Relation, 0, len(db.rels))
	for _, r := range db.rels {
		out = append(out, r)
	}
	return out
}

// Relation returns the named relation.
func (db *DB) Relation(name string) (*relation.Relation, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	r, ok := db.rels[name]
	if !ok {
		return nil, fmt.Errorf("core: %w: %q", ErrUnknownRelation, name)
	}
	return r, nil
}

// Names returns the registered relation names (unordered).
func (db *DB) Names() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]string, 0, len(db.rels))
	for n := range db.rels {
		out = append(out, n)
	}
	return out
}

// Index returns the named relation with its columns permuted by perm and
// re-sorted, caching the result. perm[k] is the source column stored at
// output position k.
func (db *DB) Index(name string, perm []int) (*relation.Relation, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.indexLocked(name, perm)
}

func indexKey(name string, perm []int) string {
	key := name + "/"
	for _, p := range perm {
		key += strconv.Itoa(p) + ","
	}
	return key
}

func (db *DB) indexLocked(name string, perm []int) (*relation.Relation, error) {
	key := indexKey(name, perm)
	if idx, ok := db.indexes[key]; ok {
		return idx, nil
	}
	r, ok := db.rels[name]
	if !ok {
		return nil, fmt.Errorf("core: %w: %q", ErrUnknownRelation, name)
	}
	idx := r.Permute(perm)
	db.indexes[key] = idx
	return idx, nil
}

// TrieIndex returns the named relation's GAO-consistent index under the
// chosen backend, caching the built index alongside the permuted relation
// (both caches are invalidated per relation by Add; ApplyDelta instead
// advances cached CSR indexes in place through their delta overlays). The
// flat backend wraps the permuted relation directly; the CSR backends
// additionally materialize their trie levels here, so the build cost is
// paid once per relation × permutation × backend and amortized across
// executions.
func (db *DB) TrieIndex(name string, perm []int, backend Backend) (IndexBackend, error) {
	if backend == "" {
		backend = DefaultBackend
	}
	key := indexKey(name, perm) + "#" + string(backend)
	db.mu.Lock()
	defer db.mu.Unlock()
	if e, ok := db.tries[key]; ok {
		return e.idx, nil
	}
	rel, err := db.indexLocked(name, perm)
	if err != nil {
		return nil, err
	}
	idx, err := NewIndexBackend(rel, backend)
	if err != nil {
		return nil, err
	}
	db.tries[key] = trieEntry{perm: append([]int(nil), perm...), backend: backend, idx: idx}
	return idx, nil
}

// Engine is a join algorithm. Count returns the number of result tuples of
// the natural join; Enumerate calls emit for every result tuple with the
// variable bindings in q.Vars() order and stops early if emit returns false.
// Both honor context cancellation.
type Engine interface {
	Name() string
	Count(ctx context.Context, q *query.Query, db *DB) (int64, error)
	Enumerate(ctx context.Context, q *query.Query, db *DB, emit func([]int64) bool) error
}

// AtomIndex resolves the GAO-consistent index for one atom: the atom's
// variables sorted by GAO position, the permutation applied, and the global
// GAO positions of its columns in index order.
type AtomIndex struct {
	// Rel is the permuted flat relation the index was bound over. It is
	// populated only for the flat backend (where it is the index) — the
	// engine that needs row-level access, generic join, always binds flat.
	// CSR-backed bindings leave it nil so incremental updates never force
	// the permuted flat relation to be rebuilt; introspection reads live
	// Arity/Len through Index instead.
	Rel *relation.Relation
	// Index is the backend-selected trie index; the trie-driven engines
	// (LFTJ, Minesweeper) execute exclusively against it.
	Index IndexBackend
	// VarPos[k] is the GAO position of the index's column k.
	VarPos []int
}

// BindAtom builds the GAO-consistent index for one atom under the chosen
// backend. gaoPos maps variable name to GAO position. The incremental views
// use it to re-bind just their delta atoms per update batch.
//
// Under the csr-sharded backend, only atoms whose index leads on the first
// GAO attribute actually bind the sharded trie — those are the indexes the
// §4.10 parallel jobs partition (splitJobs cuts the first attribute's
// domain). Every other atom binds the plain CSR trie: sharding would buy it
// nothing, while the composed shard-crossing cursor would cost on every
// operation of the join's inner loops.
func BindAtom(a query.Atom, db *DB, gaoPos map[string]int, backend Backend) (AtomIndex, error) {
	order := make([]int, len(a.Vars)) // column order by GAO position
	for k := range order {
		order[k] = k
	}
	sort.Slice(order, func(x, y int) bool {
		return gaoPos[a.Vars[order[x]]] < gaoPos[a.Vars[order[y]]]
	})
	if backend == BackendCSRSharded && gaoPos[a.Vars[order[0]]] != 0 {
		backend = BackendCSR
	}
	trie, err := db.TrieIndex(a.Rel, order, backend)
	if err != nil {
		return AtomIndex{}, err
	}
	var rel *relation.Relation
	if fi, ok := trie.(flatIndex); ok {
		rel = fi.r
	}
	varPos := make([]int, len(order))
	for k, col := range order {
		p, ok := gaoPos[a.Vars[col]]
		if !ok {
			return AtomIndex{}, fmt.Errorf("core: %w: GAO misses variable %q of atom %s", ErrUnboundVar, a.Vars[col], a)
		}
		varPos[k] = p
	}
	return AtomIndex{Rel: rel, Index: trie, VarPos: varPos}, nil
}

// BindAtoms builds GAO-consistent indexes for all atoms of a query under the
// chosen backend (paper §4.1).
func BindAtoms(q *query.Query, db *DB, gao []string, backend Backend) ([]AtomIndex, error) {
	pos := make(map[string]int, len(gao))
	for i, v := range gao {
		pos[v] = i
	}
	out := make([]AtomIndex, len(q.Atoms))
	for i, a := range q.Atoms {
		ai, err := BindAtom(a, db, pos, backend)
		if err != nil {
			return nil, err
		}
		out[i] = ai
	}
	return out, nil
}

// CheckEvery is how many inner-loop steps engines may take between context
// checks; exported so all engines share the same responsiveness contract.
const CheckEvery = 4096

// Ticker counts engine steps and surfaces context cancellation with low
// overhead.
type Ticker struct {
	n   int
	ctx context.Context
}

// NewTicker returns a Ticker for ctx.
func NewTicker(ctx context.Context) *Ticker { return &Ticker{ctx: ctx} }

// Tick reports a non-nil error when the context is done; it only inspects
// the context every CheckEvery calls.
func (t *Ticker) Tick() error {
	t.n++
	if t.n%CheckEvery != 0 {
		return nil
	}
	return t.ctx.Err()
}
