// Command quickstart is the smallest end-to-end use of the library around
// its prepare/execute lifecycle: build a graph, compile a pattern query
// once, then execute the compiled plan repeatedly — counting, streaming
// rows, and reading the unified execution counters.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	ctx := context.Background()

	// A scale-free social-network stand-in: 20k vertices, ~100k edges.
	g := repro.GenerateGraph(repro.BarabasiAlbert, 20_000, 100_000, 42)
	fmt.Printf("graph: %d nodes, %d edges\n", g.Nodes(), g.Edges())

	// Prepare compiles the query once: it is validated, the global
	// attribute order (GAO) is fixed, and every atom is bound to a
	// GAO-consistent index (paper §4.1). The handle is safe to share and
	// every execution below is pure — no re-planning, no re-binding.
	q := repro.Triangles()
	p, err := g.Prepare(q, repro.Options{Algorithm: "lftj"})
	if err != nil {
		log.Fatal(err)
	}

	// Explain shows what was compiled: the GAO, the physical index serving
	// each atom, and the AGM worst-case output bound LFTJ is optimal
	// against.
	fmt.Print(p.Explain())

	// Execute the compiled plan. Repeated executions reuse the plan — the
	// serving pattern the paper's LogicBlox setting assumes.
	start := time.Now()
	n, err := p.Count(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d triangles in %v\n", n, time.Since(start).Round(time.Millisecond))

	// Rows streams results as a Go iterator; break stops the engine early.
	shown := 0
	for row := range p.Rows(ctx) {
		fmt.Printf("  triangle %v\n", row)
		if shown++; shown == 3 {
			break
		}
	}

	// The unified stats surface aggregates across executions: the planning
	// counters stayed where Prepare left them, the execution counters grew.
	st := p.Stats()
	fmt.Printf("stats: %d executions, %d outputs, %d leapfrog seeks (GAO derived %dx, indexes bound %dx)\n",
		st.Executions, st.Outputs, st.Seeks, st.GAODerivations, st.IndexBindings)

	// One-shot helpers still exist for quick comparisons; each prepares
	// internally (hitting the plan cache for repeated shapes).
	for _, alg := range []repro.Algorithm{repro.MS, repro.GraphLab, repro.PSQL} {
		start := time.Now()
		n, err := repro.Count(ctx, g, q, repro.Options{Algorithm: alg})
		if err != nil {
			log.Fatalf("%s: %v", alg, err)
		}
		fmt.Printf("%-9s %8d triangles in %v\n", alg, n, time.Since(start).Round(time.Millisecond))
	}

	// Queries can also be written in the paper's Datalog syntax.
	custom, err := repro.ParseQuery("wedge", "edge(a, b), edge(b, c)")
	if err != nil {
		log.Fatal(err)
	}
	wedges, err := g.Prepare(custom, repro.Options{Algorithm: "lftj"})
	if err != nil {
		log.Fatal(err)
	}
	nw, err := wedges.Count(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wedges (2-paths): %d\n", nw)
}
