#!/usr/bin/env bash
# Client/server integration smoke (the CI `integration` job, runnable
# locally as `make integration`): build graphjoind and graphjoin, boot the
# server on a loopback port, run scripted remote queries, and compare the
# counts against an identical in-process run. Fails on any non-zero exit or
# count mismatch, and checks the dial-failure and graceful-shutdown paths.
set -euo pipefail

cd "$(dirname "$0")/.."
bin="$(mktemp -d)"
server_pid=""
# cleanup always runs (trap EXIT): it reaps a leftover server and, when the
# script is failing, dumps every server log before the temp dir vanishes —
# the CI job's only window into why a boot or query went wrong.
cluster_pids=()
cleanup() {
  status=$?
  [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
  for pid in "${cluster_pids[@]}"; do kill "$pid" 2>/dev/null || true; done
  if [ "$status" -ne 0 ]; then
    for log in "$bin"/*.log; do
      [ -f "$log" ] || continue
      echo "integration: ---- $(basename "$log") ----" >&2
      cat "$log" >&2
    done
  fi
  rm -rf "$bin"
}
trap cleanup EXIT

go build -o "$bin/graphjoind" ./cmd/graphjoind
go build -o "$bin/graphjoin" ./cmd/graphjoin

graph_flags=(-model ba -nodes 2000 -edges 9000 -seed 7 -selectivity 10)

# boot <logfile> [flags...]: start graphjoind on an ephemeral port and scrape
# the bound address from the serving banner (recovery banners print first and
# don't match the pattern). The scrape retries against a wall-clock deadline
# rather than a fixed iteration count, so a recovery replay or a slow CI
# runner cannot outlast the loop. Sets $server_pid and $addr.
boot() {
  local log="$1"; shift
  "$bin/graphjoind" -listen 127.0.0.1:0 "$@" > "$log" 2>&1 &
  server_pid=$!
  addr=""
  local deadline=$(( $(date +%s) + 30 ))
  while [ "$(date +%s)" -lt "$deadline" ]; do
    addr="$(sed -n 's/.* on \(127\.0\.0\.1:[0-9]*\)$/\1/p' "$log")"
    [ -n "$addr" ] && break
    kill -0 "$server_pid" 2>/dev/null || { echo "integration: server died during boot" >&2; exit 1; }
    sleep 0.1
  done
  [ -n "$addr" ] || { echo "integration: server never became ready" >&2; exit 1; }
}

boot "$bin/server.log" "${graph_flags[@]}"

# "engine: N results in ..." -> N
extract() { sed -n 's/^[a-z]*: \([0-9][0-9]*\) results.*/\1/p'; }

want="$("$bin/graphjoin" "${graph_flags[@]}" -query 3-clique -engine lftj | extract)"
[ -n "$want" ] || { echo "integration: local run produced no count" >&2; exit 1; }

for engine in lftj ms; do
  got="$("$bin/graphjoin" -connect "$addr" -query 3-clique -engine "$engine" | extract)"
  if [ "$got" != "$want" ]; then
    echo "integration: $engine remote count $got != local $want" >&2
    exit 1
  fi
  echo "integration: $engine remote count $got matches local"
done

# The same pattern as inline Datalog against the remote schema.
got="$("$bin/graphjoin" -connect "$addr" -datalog 'fwd(a,b), fwd(a,c), fwd(b,c)' | extract)"
if [ "$got" != "$want" ]; then
  echo "integration: datalog remote count $got != local $want" >&2
  exit 1
fi

# A failed dial must exit non-zero with a one-line error (no panic).
if "$bin/graphjoin" -connect 127.0.0.1:1 -query 3-clique > "$bin/dial.log" 2>&1; then
  echo "integration: dial to a dead port did not fail" >&2
  exit 1
fi
if [ "$(wc -l < "$bin/dial.log")" -ne 1 ]; then
  echo "integration: dial failure was not a one-line error:" >&2
  cat "$bin/dial.log" >&2
  exit 1
fi

# Graceful shutdown on SIGTERM.
kill -TERM "$server_pid"
for _ in $(seq 1 50); do
  kill -0 "$server_pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$server_pid" 2>/dev/null; then
  echo "integration: server ignored SIGTERM" >&2
  exit 1
fi
wait "$server_pid" || { echo "integration: server exited non-zero" >&2; exit 1; }
server_pid=""
grep -q "bye" "$bin/server.log" || { echo "integration: no clean shutdown banner" >&2; exit 1; }

# Durability: churn writes over the wire, kill -9 the server, restart it on
# the same -data-dir, and require every acknowledged count to survive.
data_dir="$bin/data"
boot "$bin/server-durable.log" "${graph_flags[@]}" -data-dir "$data_dir" -fsync always
grep -q "fresh data dir" "$bin/server-durable.log" \
  || { echo "integration: no fresh-data-dir banner" >&2; cat "$bin/server-durable.log" >&2; exit 1; }

# Write a new relation through the client (define + load are remote writes),
# alongside the seeded graph, and record both counts before the crash.
seq 1 500 | awk '{print $1, $1 % 97}' > "$bin/extra.rows"
extra_want="$("$bin/graphjoin" -connect "$addr" -relation extra:2 -load "extra=$bin/extra.rows" -datalog 'extra(a, b)' | extract)"
tri_want="$("$bin/graphjoin" -connect "$addr" -query 3-clique -engine lftj | extract)"
[ -n "$extra_want" ] && [ -n "$tri_want" ] || { echo "integration: pre-crash counts missing" >&2; exit 1; }

# The compound redirect silences bash's asynchronous "Killed" job notice.
{ kill -9 "$server_pid" && wait "$server_pid"; } 2>/dev/null || true
server_pid=""

boot "$bin/server-recovered.log" "${graph_flags[@]}" -data-dir "$data_dir" -fsync always
grep -q "recovered" "$bin/server-recovered.log" \
  || { echo "integration: no recovery banner after restart" >&2; cat "$bin/server-recovered.log" >&2; exit 1; }

tri_got="$("$bin/graphjoin" -connect "$addr" -query 3-clique -engine lftj | extract)"
extra_got="$("$bin/graphjoin" -connect "$addr" -datalog 'extra(a, b)' | extract)"
if [ "$tri_got" != "$tri_want" ] || [ "$extra_got" != "$extra_want" ]; then
  echo "integration: post-recovery counts tri=$tri_got/$tri_want extra=$extra_got/$extra_want" >&2
  exit 1
fi
echo "integration: counts survived kill -9 (tri=$tri_got, extra=$extra_got)"

# Graceful shutdown writes a final checkpoint, so the next start is
# replay-free from a snapshot.
kill -TERM "$server_pid"
for _ in $(seq 1 50); do
  kill -0 "$server_pid" 2>/dev/null || break
  sleep 0.1
done
wait "$server_pid" || { echo "integration: durable server exited non-zero" >&2; exit 1; }
server_pid=""
ls "$data_dir"/default/snap-*.snap > /dev/null 2>&1 \
  || { echo "integration: no checkpoint snapshot after clean shutdown" >&2; exit 1; }

# --- Distributed layer: a 3-node cluster behind graphjoinrouter ------------
# Boot three graphjoind hosts with identical replicated data, front them with
# the router, and require routed counts to match the in-process run for both
# partition strategies. Then kill -9 one shard and require a one-line typed
# error (not a hang, not a panic) through an unmodified graphjoin -connect.
go build -o "$bin/graphjoinrouter" ./cmd/graphjoinrouter

# boot_member <logfile> [flags...]: like boot, but for cluster members —
# appends to cluster_pids instead of claiming the singleton server_pid.
boot_member() {
  local log="$1"; shift
  "$1" -listen 127.0.0.1:0 "${@:2}" > "$log" 2>&1 &
  cluster_pids+=($!)
  addr=""
  local deadline=$(( $(date +%s) + 30 ))
  while [ "$(date +%s)" -lt "$deadline" ]; do
    addr="$(sed -n 's/.* on \(127\.0\.0\.1:[0-9]*\)$/\1/p' "$log")"
    [ -n "$addr" ] && break
    kill -0 "${cluster_pids[-1]}" 2>/dev/null || { echo "integration: cluster member died during boot" >&2; exit 1; }
    sleep 0.1
  done
  [ -n "$addr" ] || { echo "integration: cluster member never became ready" >&2; exit 1; }
}

shard_addrs=()
for i in 1 2 3; do
  boot_member "$bin/shard$i.log" "$bin/graphjoind" "${graph_flags[@]}"
  shard_addrs+=("$addr")
done

for partition in hash range:700,1400; do
  boot_member "$bin/router-${partition%%:*}.log" "$bin/graphjoinrouter" \
    -hosts "$(IFS=,; echo "${shard_addrs[*]}")" -partition "$partition"
  router_addr="$addr"
  for engine in lftj ms; do
    got="$("$bin/graphjoin" -connect "$router_addr" -query 3-clique -engine "$engine" | extract)"
    if [ "$got" != "$want" ]; then
      echo "integration: routed ($partition/$engine) count $got != local $want" >&2
      exit 1
    fi
    echo "integration: routed ($partition/$engine) count $got matches local"
  done
done
# $router_addr now points at the range-partitioned router; keep it for the
# kill test below.

# --- End-to-end tracing ----------------------------------------------------
# One traced query through the router must print a single stitched span tree:
# the client root, one router.leg per shard, each shard's server handling,
# and the engine execution inside it.
"$bin/graphjoin" -connect "$router_addr" -query 3-clique -engine lftj -trace > "$bin/trace.log" 2>&1 \
  || { echo "integration: traced routed query failed" >&2; cat "$bin/trace.log" >&2; exit 1; }
for stage in client.query server.count router.leg engine.count; do
  grep -q "$stage" "$bin/trace.log" \
    || { echo "integration: trace missing stage $stage:" >&2; cat "$bin/trace.log" >&2; exit 1; }
done
legs="$(grep -c 'router\.leg' "$bin/trace.log")"
if [ "$legs" -ne 3 ]; then
  echo "integration: trace shows $legs router legs, want 3:" >&2
  cat "$bin/trace.log" >&2
  exit 1
fi
echo "integration: traced routed query rendered a full span tree ($legs legs)"

# Slow-query log: a server with a 1ms threshold must log an artificially slow
# query (a full 4-clique enumerate) as a JSON line carrying the trace.
boot_member "$bin/slow-server.log" "$bin/graphjoind" "${graph_flags[@]}" \
  -slow-query-ms 1 -slow-query-log "$bin/slow.json"
slow_addr="$addr"
"$bin/graphjoin" -connect "$slow_addr" -query 4-clique -engine lftj > /dev/null
for field in '"trace_id"' '"spans"' '"fingerprint"' '"dur_ms"'; do
  grep -q "$field" "$bin/slow.json" \
    || { echo "integration: slow-query log missing $field:" >&2; cat "$bin/slow.json" >&2; exit 1; }
done
grep -q '"type":"count"' "$bin/slow.json" \
  || { echo "integration: no slow count entry:" >&2; cat "$bin/slow.json" >&2; exit 1; }
echo "integration: slow query landed in the slow-query log"

# kill -9 one shard: the routed query must fail promptly with a one-line
# typed router error naming the dead host — no hang, no silent partial rows.
{ kill -9 "${cluster_pids[1]}" && wait "${cluster_pids[1]}"; } 2>/dev/null || true
if timeout 30 "$bin/graphjoin" -connect "$router_addr" -query 3-clique -engine lftj > "$bin/killed.log" 2>&1; then
  echo "integration: routed query succeeded with a dead shard" >&2
  exit 1
fi
if ! grep -q 'router: host [0-9]' "$bin/killed.log"; then
  echo "integration: no typed router error after shard kill:" >&2
  cat "$bin/killed.log" >&2
  exit 1
fi
if [ "$(grep -c 'router: host' "$bin/killed.log")" -ne 1 ]; then
  echo "integration: shard-kill error was not one line:" >&2
  cat "$bin/killed.log" >&2
  exit 1
fi
echo "integration: shard kill surfaced as: $(grep 'router: host' "$bin/killed.log")"

echo "integration: OK"
