package router_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/client"
	"repro/router"
	"repro/server"
)

// wallCorpus spans the query language surface the router must merge
// correctly: full joins, projection, reordered heads, in-atom constants,
// comparison predicates, grouped and global aggregates, empty results, and
// the single-shard fast path.
var wallCorpus = []string{
	"edge(a, b), edge(b, c)",
	"out(a) :- edge(a, b), edge(b, c)",
	"out(c, a) :- edge(a, b), edge(b, c)",
	"edge(3, b), edge(b, c)",
	"edge(a, b), a < 50, b >= 20",
	"edge(a, b), edge(b, c), a != c",
	"edge(a, b), edge(b, c), a = 7",
	"deg(a, count(b)) :- edge(a, b)",
	"stats(a, sum(c), min(c), max(c)) :- edge(a, b), edge(b, c)",
	"total(count(a)) :- edge(a, b), a >= 50",
	"total(sum(b), min(b), max(b)) :- edge(a, b)",
	"total(count(a)) :- edge(a, b), a >= 1000",
	"hot(b, count(c)) :- edge(2, b), edge(b, c)",
}

// wallEdges is the shared deterministic edge set (keys in [0, 100)).
func wallEdges(m, nodes int64) [][]int64 {
	x := uint64(0x9e3779b97f4a7c15)
	next := func() int64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return int64(x % uint64(nodes))
	}
	seen := make(map[[2]int64]bool)
	var edges [][]int64
	for int64(len(edges)) < m {
		a, b := next(), next()
		if a == b || seen[[2]int64{a, b}] {
			continue
		}
		seen[[2]int64{a, b}] = true
		edges = append(edges, []int64{a, b})
	}
	return edges
}

func edgeStore(t *testing.T, edges [][]int64) *repro.Store {
	t.Helper()
	st := repro.NewStore()
	if err := st.DefineRelation("edge", 2); err != nil {
		t.Fatal(err)
	}
	if err := st.Load("edge", edges); err != nil {
		t.Fatal(err)
	}
	return st
}

// cluster builds an oracle store plus a router over n identical replicas.
func cluster(t *testing.T, n int, part router.Partitioner) (*repro.Store, *router.Router) {
	t.Helper()
	edges := wallEdges(500, 100)
	oracle := edgeStore(t, edges)
	hosts := make([]repro.Querier, n)
	for i := range hosts {
		hosts[i] = repro.Local(edgeStore(t, edges))
	}
	r, err := router.New(hosts, nil, router.Config{Partitioner: part})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return oracle, r
}

func collectRows(ctx context.Context, enumerate func(context.Context, func([]int64) bool) error) ([][]int64, error) {
	var rows [][]int64
	err := enumerate(ctx, func(row []int64) bool {
		rows = append(rows, append([]int64(nil), row...))
		return true
	})
	return rows, err
}

// TestRouterDifferentialWall is the acceptance differential: a routed
// cluster must produce byte-identical results to a single store across the
// corpus × both trie-driven engines × {2, 3} shards × {range, hash}
// partitioning — same counts, same rows, same order.
func TestRouterDifferentialWall(t *testing.T) {
	ctx := context.Background()
	partitioners := map[int]map[string]router.Partitioner{
		2: {"range": router.RangePartitioner(50), "hash": router.HashPartitioner()},
		3: {"range": router.RangePartitioner(33, 66), "hash": router.HashPartitioner()},
	}
	for n, parts := range partitioners {
		for pname, part := range parts {
			t.Run(fmt.Sprintf("shards=%d/%s", n, pname), func(t *testing.T) {
				oracle, r := cluster(t, n, part)
				for _, src := range wallCorpus {
					q, err := oracle.ParseQuery("q", src)
					if err != nil {
						t.Fatalf("%s: %v", src, err)
					}
					for _, alg := range []repro.Algorithm{repro.LFTJ, repro.MS} {
						opts := repro.Options{Algorithm: alg, Workers: 1}
						wantN, err := oracle.Count(ctx, q, opts)
						if err != nil {
							t.Fatalf("%s/%s: oracle count: %v", src, alg, err)
						}
						gotN, err := r.Count(ctx, q, opts)
						if err != nil {
							t.Fatalf("%s/%s: routed count: %v", src, alg, err)
						}
						if gotN != wantN {
							t.Errorf("%s/%s: routed count %d, oracle %d", src, alg, gotN, wantN)
						}
						want, err := collectRows(ctx, func(ctx context.Context, emit func([]int64) bool) error {
							return oracle.Enumerate(ctx, q, opts, emit)
						})
						if err != nil {
							t.Fatalf("%s/%s: oracle rows: %v", src, alg, err)
						}
						got, err := collectRows(ctx, func(ctx context.Context, emit func([]int64) bool) error {
							return r.Enumerate(ctx, q, opts, emit)
						})
						if err != nil {
							t.Fatalf("%s/%s: routed rows: %v", src, alg, err)
						}
						if len(got) != len(want) {
							t.Fatalf("%s/%s: routed %d rows, oracle %d", src, alg, len(got), len(want))
						}
						for i := range want {
							if fmt.Sprint(got[i]) != fmt.Sprint(want[i]) {
								t.Fatalf("%s/%s: row %d: routed %v, oracle %v", src, alg, i, got[i], want[i])
							}
						}
					}
				}
			})
		}
	}
}

// TestRouterChurnInvariant drives atomic cross-shard moves through the
// router while concurrent readers count. Every Apply deletes one edge and
// inserts it under a key on the other side of the shard boundary in the
// same batch, so the total edge count is invariant at every write
// generation — any torn fan-out (two hosts read at different generations)
// shows up as a count off by one.
func TestRouterChurnInvariant(t *testing.T) {
	ctx := context.Background()
	const total = 300
	tuples := make([][]int64, total)
	keys := make([]int64, total)
	for i := range tuples {
		keys[i] = int64(i % 100)
		tuples[i] = []int64{keys[i], int64(1000 + i)}
	}
	mk := func() *repro.Store {
		st := repro.NewStore()
		if err := st.DefineRelation("edge", 2); err != nil {
			t.Fatal(err)
		}
		if err := st.Load("edge", tuples); err != nil {
			t.Fatal(err)
		}
		return st
	}
	hosts := []repro.Querier{repro.Local(mk()), repro.Local(mk())}
	r, err := router.New(hosts, nil, router.Config{Partitioner: router.RangePartitioner(50)})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	q, err := r.ParseQuery("all", "edge(a, b)")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writer: atomic cross-boundary moves. The second column is unique per
	// tuple, so inserts never collide and the count stays exactly total.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for iter := 0; iter < 400; iter++ {
			i := iter % total
			old := keys[i]
			next := (old + 61) % 100
			err := r.Apply("edge", [][]int64{{next, int64(1000 + i)}}, [][]int64{{old, int64(1000 + i)}})
			if err != nil {
				t.Errorf("churn apply: %v", err)
				return
			}
			keys[i] = next
		}
	}()

	// Readers: the routed count must equal total at every generation.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				n, err := r.Count(ctx, q, repro.Options{Workers: 1})
				if err != nil {
					t.Errorf("routed count under churn: %v", err)
					return
				}
				if n != total {
					t.Errorf("torn fan-out: routed count %d, want %d", n, total)
					return
				}
			}
		}()
	}

	// Snapshot reader: a distributed ReadTxn must pin one generation — two
	// counts through the same lease agree exactly. Handles are prepared
	// before the transaction opens, per the Txn pinning contract.
	wg.Add(1)
	go func() {
		defer wg.Done()
		p, err := r.Prepare(q, repro.Options{Workers: 1})
		if err != nil {
			t.Errorf("prepare under churn: %v", err)
			return
		}
		defer p.Close()
		for {
			select {
			case <-stop:
				return
			default:
			}
			txn, err := r.ReadTxn()
			if err != nil {
				t.Errorf("ReadTxn under churn: %v", err)
				return
			}
			a, err1 := txn.Count(ctx, p)
			b, err2 := txn.Count(ctx, p)
			txn.Close()
			if err1 != nil || err2 != nil {
				t.Errorf("txn counts under churn: %v / %v", err1, err2)
				return
			}
			if a != b || a != total {
				t.Errorf("lease not pinned: counts %d then %d, want stable %d", a, b, total)
				return
			}
		}
	}()

	wg.Wait()
}

// TestRouterTxnPinsSnapshot checks the distributed lease against broadcast
// writes landing after it opened: the transaction keeps answering from the
// pinned generation while direct reads see the new rows.
func TestRouterTxnPinsSnapshot(t *testing.T) {
	ctx := context.Background()
	edges := wallEdges(200, 100)
	hosts := []repro.Querier{repro.Local(edgeStore(t, edges)), repro.Local(edgeStore(t, edges)), repro.Local(edgeStore(t, edges))}
	r, err := router.New(hosts, nil, router.Config{Partitioner: router.HashPartitioner()})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	q, err := r.ParseQuery("all", "edge(a, b)")
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Prepare(q, repro.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	txn, err := r.ReadTxn()
	if err != nil {
		t.Fatal(err)
	}
	defer txn.Close()
	before, err := txn.Count(ctx, p)
	if err != nil {
		t.Fatal(err)
	}

	if err := r.Apply("edge", [][]int64{{500, 501}, {502, 503}}, nil); err != nil {
		t.Fatal(err)
	}

	pinned, err := txn.Count(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if pinned != before {
		t.Fatalf("lease leaked writes: pinned count %d, was %d", pinned, before)
	}
	rows, err := collectRows(ctx, func(ctx context.Context, emit func([]int64) bool) error {
		return txn.Enumerate(ctx, p, emit)
	})
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(rows)) != before {
		t.Fatalf("pinned enumeration %d rows, want %d", len(rows), before)
	}
	fresh, err := p.Count(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fresh != before+2 {
		t.Fatalf("direct count %d after apply, want %d", fresh, before+2)
	}
}

// TestRouterBatch checks batch fan-out: results match the oracle, and a
// handle prepared elsewhere fails its own request without poisoning the
// batch.
func TestRouterBatch(t *testing.T) {
	ctx := context.Background()
	oracle, r := cluster(t, 3, router.HashPartitioner())

	q1, _ := oracle.ParseQuery("tri", "edge(a, b), edge(b, c)")
	q2, _ := oracle.ParseQuery("deg", "deg(a, count(b)) :- edge(a, b)")
	p1, err := r.Prepare(q1, repro.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p1.Close()
	p2, err := r.Prepare(q2, repro.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	foreign, err := oracle.Prepare(q1, repro.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	res, err := r.Batch(ctx, []repro.BatchRequest{
		{Prepared: p1, Rows: true},
		{Prepared: p2, Rows: true},
		{Prepared: foreign},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("batch returned %d results, want 3", len(res))
	}
	for i, q := range []*repro.Query{q1, q2} {
		if res[i].Err != nil {
			t.Fatalf("batch request %d: %v", i, res[i].Err)
		}
		wantN, err := oracle.Count(ctx, q, repro.Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res[i].Count != wantN {
			t.Errorf("batch request %d: count %d, oracle %d", i, res[i].Count, wantN)
		}
		want, err := collectRows(ctx, func(ctx context.Context, emit func([]int64) bool) error {
			return oracle.Enumerate(ctx, q, repro.Options{Workers: 1}, emit)
		})
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(res[i].Rows) != fmt.Sprint(want) {
			t.Errorf("batch request %d: rows diverge from oracle", i)
		}
	}
	if !errors.Is(res[2].Err, repro.ErrForeignPrepared) {
		t.Errorf("foreign handle error = %v, want ErrForeignPrepared", res[2].Err)
	}
}

// errHostDown is the sentinel a crashing replica reports mid-stream.
var errHostDown = errors.New("simulated host crash")

// flakyQuerier wraps a healthy replica and makes every transaction
// enumeration die after a few rows, modelling a host crashing mid-stream.
type flakyQuerier struct {
	repro.Querier
	failAfter int
}

func (f *flakyQuerier) ReadTxn() (repro.QueryTxn, error) {
	txn, err := f.Querier.ReadTxn()
	if err != nil {
		return nil, err
	}
	return &flakyTxn{QueryTxn: txn, failAfter: f.failAfter}, nil
}

type flakyTxn struct {
	repro.QueryTxn
	failAfter int
}

func (t *flakyTxn) Enumerate(ctx context.Context, p repro.PreparedQuery, emit func([]int64) bool) error {
	n := 0
	dead := false
	err := t.QueryTxn.Enumerate(ctx, p, func(row []int64) bool {
		if n >= t.failAfter {
			dead = true
			return false
		}
		n++
		return emit(row)
	})
	if err != nil {
		return err
	}
	if dead {
		return errHostDown
	}
	return nil
}

// TestRouterHostFailureMidStream pins the failure contract: a host dying
// mid-enumeration surfaces promptly as a typed *HostError naming the host,
// the merged stream ends (no hang), and the rows emitted before the failure
// are a correct order-preserving prefix.
func TestRouterHostFailureMidStream(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	edges := wallEdges(500, 100)
	healthy := repro.Local(edgeStore(t, edges))
	flaky := &flakyQuerier{Querier: repro.Local(edgeStore(t, edges)), failAfter: 3}
	r, err := router.New([]repro.Querier{healthy, flaky}, []string{"good", "bad"}, router.Config{Partitioner: router.HashPartitioner()})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	q, err := r.ParseQuery("tri", "edge(a, b), edge(b, c)")
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Prepare(q, repro.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var streamErr error
	var got [][]int64
	for row, err := range p.RowsErr(ctx) {
		if err != nil {
			streamErr = err
			break
		}
		got = append(got, row)
	}
	var he *router.HostError
	if !errors.As(streamErr, &he) {
		t.Fatalf("mid-stream failure surfaced as %v, want *HostError", streamErr)
	}
	if he.Host != "bad" {
		t.Errorf("failure attributed to host %q, want \"bad\"", he.Host)
	}
	if !errors.Is(streamErr, errHostDown) {
		t.Errorf("HostError does not wrap the host's own error: %v", streamErr)
	}
	// The prefix that did arrive must be ordered on the merge attribute.
	for i := 1; i < len(got); i++ {
		if got[i][0] < got[i-1][0] {
			t.Fatalf("pre-failure prefix out of order at row %d: %v after %v", i, got[i], got[i-1])
		}
	}

	// A plain Enumerate reports the same typed failure.
	err = p.Enumerate(ctx, func([]int64) bool { return true })
	if !errors.As(err, &he) || !errors.Is(err, errHostDown) {
		t.Fatalf("Enumerate failure = %v, want *HostError wrapping host crash", err)
	}
}

// TestRouterHostKilledMidStreamWire repeats the mid-stream kill over the
// real wire protocol: two graphjoind servers, a router dialled to both, and
// one server hard-closed while the merged stream drains. The router must
// return a typed *HostError promptly instead of hanging on the dead host.
func TestRouterHostKilledMidStreamWire(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	edges := wallEdges(600, 100)
	var addrs []string
	var servers []*server.Server
	for i := 0; i < 2; i++ {
		srv := server.NewSingle(edgeStore(t, edges))
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(l)
		t.Cleanup(func() { srv.Close() })
		servers = append(servers, srv)
		addrs = append(addrs, l.Addr().String())
	}

	r, err := router.Open(ctx, []router.HostSpec{{Addr: addrs[0]}, {Addr: addrs[1]}}, router.Config{
		Partitioner:    router.HashPartitioner(),
		RequestTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	q, err := r.ParseQuery("tri", "edge(a, b), edge(b, c)")
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Prepare(q, repro.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	start := time.Now()
	rows := 0
	var streamErr error
	for _, err := range p.RowsErr(ctx) {
		if err != nil {
			streamErr = err
			break
		}
		if rows == 0 {
			servers[1].Close() // hard-kill one shard mid-drain
		}
		rows++
	}
	if streamErr == nil {
		t.Fatal("stream completed cleanly despite a killed shard")
	}
	var he *router.HostError
	if !errors.As(streamErr, &he) {
		t.Fatalf("killed shard surfaced as %v, want *HostError", streamErr)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("stream took %v to fail after the kill", elapsed)
	}
	if rows == 0 {
		t.Error("no rows drained before the kill was noticed")
	}
}

// TestRouterOverWire runs a slice of the differential wall through real
// connections — router.Open against live graphjoind servers — to pin the
// wire encoding of shard specs end to end.
func TestRouterOverWire(t *testing.T) {
	ctx := context.Background()
	edges := wallEdges(300, 100)
	oracle := edgeStore(t, edges)
	var specs []router.HostSpec
	for i := 0; i < 3; i++ {
		srv := server.NewSingle(edgeStore(t, edges))
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(l)
		t.Cleanup(func() { srv.Close() })
		specs = append(specs, router.HostSpec{Addr: l.Addr().String()})
	}
	for pname, part := range map[string]router.Partitioner{
		"range": router.RangePartitioner(33, 66),
		"hash":  router.HashPartitioner(),
	} {
		t.Run(pname, func(t *testing.T) {
			r, err := router.Open(ctx, specs, router.Config{Partitioner: part})
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			for _, src := range wallCorpus {
				q, err := oracle.ParseQuery("q", src)
				if err != nil {
					t.Fatal(err)
				}
				opts := repro.Options{Algorithm: repro.LFTJ, Workers: 1}
				wantN, err := oracle.Count(ctx, q, opts)
				if err != nil {
					t.Fatalf("%s: oracle: %v", src, err)
				}
				gotN, err := r.Count(ctx, q, opts)
				if err != nil {
					t.Fatalf("%s: routed: %v", src, err)
				}
				if gotN != wantN {
					t.Errorf("%s: routed count %d, oracle %d", src, gotN, wantN)
				}
				want, err := collectRows(ctx, func(ctx context.Context, emit func([]int64) bool) error {
					return oracle.Enumerate(ctx, q, opts, emit)
				})
				if err != nil {
					t.Fatal(err)
				}
				got, err := collectRows(ctx, func(ctx context.Context, emit func([]int64) bool) error {
					return r.Enumerate(ctx, q, opts, emit)
				})
				if err != nil {
					t.Fatalf("%s: routed rows: %v", src, err)
				}
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Errorf("%s: routed rows diverge from oracle (%d vs %d rows)", src, len(got), len(want))
				}
			}
		})
	}
}

// TestRouterStatsMerge checks that the routed handle's counters aggregate
// across hosts: after an execution, the summed statistics are non-trivial.
func TestRouterStatsMerge(t *testing.T) {
	ctx := context.Background()
	_, r := cluster(t, 2, router.RangePartitioner(50))
	q, err := r.ParseQuery("tri", "edge(a, b), edge(b, c)")
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Prepare(q, repro.Options{Algorithm: repro.LFTJ, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Count(ctx); err != nil {
		t.Fatal(err)
	}
	if got := p.Stats(); got.Executions == 0 || got.Outputs == 0 {
		t.Errorf("merged stats show no executions/outputs: %+v", got)
	}
}

// client.Dial is exercised through router.Open above; keep the import
// anchored for the dial-option plumbing check below.
var _ = client.WithDialRetry
