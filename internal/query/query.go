// Package query defines the join-query representation used throughout the
// reproduction: a natural join query is a set of atoms over named variables
// (paper §2.1), optionally parsed from the Datalog-style syntax the paper
// uses in §5.1, extended with projection heads, constants, comparison
// predicates, and aggregate head terms.
package query

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrUnboundHeadVar reports a head term (variable or aggregate argument) of a
// rule-form query that no body atom binds; callers branch with errors.Is.
var ErrUnboundHeadVar = errors.New("head variable not bound by the body")

// ErrUnboundPredVar reports a comparison predicate over a variable that no
// body atom binds.
var ErrUnboundPredVar = errors.New("predicate variable not bound by the body")

// Atom is one relational atom R(x1, ..., xk). Vars are variable names; a
// variable may repeat within an atom (self-join on a column).
type Atom struct {
	Rel  string
	Vars []string
}

func (a Atom) String() string {
	return a.Rel + "(" + strings.Join(a.Vars, ", ") + ")"
}

// CmpOp is a comparison operator in a predicate.
type CmpOp string

const (
	OpEq CmpOp = "="
	OpNe CmpOp = "!="
	OpLt CmpOp = "<"
	OpLe CmpOp = "<="
	OpGt CmpOp = ">"
	OpGe CmpOp = ">="
)

// ValidOp reports whether op is one of the six comparison operators.
func ValidOp(op CmpOp) bool {
	switch op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return true
	}
	return false
}

// flip maps op to the operator with swapped operands (5 < a  ≡  a > 5).
func (op CmpOp) flip() CmpOp {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	}
	return op // = and != are symmetric
}

// Pred is one comparison predicate in a query body: Left op Right where Left
// is always a variable and Right is either a variable (IsVar) or an int64
// constant. Constants appearing inside atoms — e(a, 5) — are desugared by the
// parser into a hidden placeholder variable plus an equality Pred pinning it.
type Pred struct {
	Left  string
	Op    CmpOp
	Right string // variable name when IsVar
	Const int64  // constant when !IsVar
	IsVar bool
}

func (p Pred) String() string {
	if p.IsVar {
		return fmt.Sprintf("%s %s %s", p.Left, p.Op, p.Right)
	}
	return fmt.Sprintf("%s %s %d", p.Left, p.Op, p.Const)
}

// AggFunc names one of the supported streaming aggregates.
type AggFunc string

const (
	AggCount AggFunc = "count"
	AggSum   AggFunc = "sum"
	AggMin   AggFunc = "min"
	AggMax   AggFunc = "max"
)

// ValidAgg reports whether fn is a supported aggregate function.
func ValidAgg(fn AggFunc) bool {
	switch fn {
	case AggCount, AggSum, AggMin, AggMax:
		return true
	}
	return false
}

// Agg is one aggregate head term fn(Var). Aggregates range over the distinct
// bindings of the grouped variables together with every aggregated variable
// (set semantics, matching the set semantics of the relations themselves).
type Agg struct {
	Func AggFunc
	Var  string
}

func (a Agg) String() string { return string(a.Func) + "(" + a.Var + ")" }

// Placeholder reports whether v is a parser-generated hidden variable
// standing in for an in-atom constant. Placeholder names start with '$',
// which the identifier grammar forbids, so they can never collide with a
// user-written variable.
func Placeholder(v string) bool { return strings.HasPrefix(v, "$") }

// Query is a natural join query: the join of all its atoms, optionally
// restricted by comparison predicates and projected/aggregated by a rule
// head.
type Query struct {
	Name  string
	Atoms []Atom
	Preds []Pred // conjunctive comparison predicates over body variables
	Aggs  []Agg  // aggregate head terms, emitted after the plain head vars

	// vars is the execution variable order. For plain queries it is
	// first-appearance (or head) order. For extended queries it is output
	// variables first (head order), then aggregated variables, then the
	// remaining body variables — so the default GAO enumerates results
	// grouped by the output prefix and early duplicate elimination is a
	// prefix-distinctness check.
	vars []string
	// out is the projection: the plain head variables. nil means "all vars"
	// (no rule head, or legacy full-cover head).
	out []string
	// prefix is the number of leading vars that engines must emit: the
	// output variables plus any aggregated variables. Meaningful only when
	// out != nil.
	prefix int
}

// New returns a query over the given atoms. Variables are ordered by first
// appearance.
func New(name string, atoms ...Atom) *Query {
	q := &Query{Name: name, Atoms: atoms}
	seen := make(map[string]bool)
	for _, a := range atoms {
		for _, v := range a.Vars {
			if !seen[v] {
				seen[v] = true
				q.vars = append(q.vars, v)
			}
		}
	}
	return q
}

// NewHeaded returns a query in rule form: the head names the query and fixes
// the output variable order. Every head variable must be bound by some body
// atom (ErrUnboundHeadVar otherwise) and head variables must be distinct. A
// head naming a strict subset of the body variables is a projection: engines
// emit only the projected bindings, with duplicates eliminated early at the
// deepest projected trie level.
func NewHeaded(name string, head []string, atoms ...Atom) (*Query, error) {
	return NewRule(name, head, nil, nil, atoms...)
}

// NewRule is the general constructor: head lists the plain output variables
// (the group-by keys when aggs is non-empty), aggs the aggregate head terms,
// and preds the body comparison predicates. Result rows carry the head
// variables in head order followed by one value per aggregate, in order.
func NewRule(name string, head []string, aggs []Agg, preds []Pred, atoms ...Atom) (*Query, error) {
	base := New(name, atoms...)
	bound := make(map[string]bool, len(base.vars))
	for _, v := range base.vars {
		bound[v] = true
	}
	seen := make(map[string]bool, len(head))
	for _, v := range head {
		if seen[v] {
			return nil, fmt.Errorf("query %q: head repeats variable %s", name, v)
		}
		seen[v] = true
		if !bound[v] {
			return nil, fmt.Errorf("query %q: %w: %s", name, ErrUnboundHeadVar, v)
		}
	}
	for _, ag := range aggs {
		if !ValidAgg(ag.Func) {
			return nil, fmt.Errorf("query %q: unknown aggregate function %q", name, ag.Func)
		}
		if !bound[ag.Var] {
			return nil, fmt.Errorf("query %q: %w: %s(%s)", name, ErrUnboundHeadVar, ag.Func, ag.Var)
		}
	}
	for _, p := range preds {
		if !ValidOp(p.Op) {
			return nil, fmt.Errorf("query %q: unknown comparison operator %q", name, p.Op)
		}
		if !bound[p.Left] {
			return nil, fmt.Errorf("query %q: %w: %s", name, ErrUnboundPredVar, p.Left)
		}
		if p.IsVar && !bound[p.Right] {
			return nil, fmt.Errorf("query %q: %w: %s", name, ErrUnboundPredVar, p.Right)
		}
	}
	if len(head) == 0 && len(aggs) == 0 {
		return nil, fmt.Errorf("query %q: output names no variables (at least one output variable or aggregate is required)", name)
	}
	q := &Query{
		Name:  name,
		Atoms: atoms,
		Preds: append([]Pred(nil), preds...),
		Aggs:  append([]Agg(nil), aggs...),
	}
	if len(q.Preds) == 0 {
		q.Preds = nil
	}
	if len(q.Aggs) == 0 {
		q.Aggs = nil
	}
	// Execution order: output vars (head order), then aggregated vars not
	// already output, then the remaining body vars by first appearance.
	// out stays non-nil even for an aggregate-only head ("total(count(b))"),
	// where the empty slice means "no plain output columns" — a nil out
	// means "all vars" instead.
	q.out = make([]string, 0, len(head))
	q.out = append(q.out, head...)
	q.vars = append([]string(nil), head...)
	inVars := make(map[string]bool, len(base.vars))
	for _, v := range head {
		inVars[v] = true
	}
	for _, ag := range aggs {
		if !inVars[ag.Var] {
			inVars[ag.Var] = true
			q.vars = append(q.vars, ag.Var)
		}
	}
	q.prefix = len(q.vars)
	for _, v := range base.vars {
		if !inVars[v] {
			inVars[v] = true
			q.vars = append(q.vars, v)
		}
	}
	return q, nil
}

// Vars returns the query's execution variables: output variables first (head
// order), then aggregated variables, then the remaining body variables. For
// plain queries this is first-appearance (or head) order. The returned slice
// must not be modified.
func (q *Query) Vars() []string { return q.vars }

// NumVars returns n = |vars(Q)|.
func (q *Query) NumVars() int { return len(q.vars) }

// Out returns the output (projected) variables in head order. For a query
// without a projecting head it is all of Vars().
func (q *Query) Out() []string {
	if q.out == nil {
		return q.vars
	}
	return q.out
}

// OutWidth returns the arity of result rows: the output variables plus one
// column per aggregate.
func (q *Query) OutWidth() int { return len(q.Out()) + len(q.Aggs) }

// Prefix returns the number of leading execution variables engines must
// emit: the output variables plus any aggregated variables. Equal to
// NumVars() for plain queries.
func (q *Query) Prefix() int {
	if q.out == nil {
		return len(q.vars)
	}
	return q.prefix
}

// Projected reports whether engines emit a strict prefix of the execution
// variables (projection or aggregation hiding at least one body variable).
func (q *Query) Projected() bool { return q.Prefix() < len(q.vars) }

// PrefixOrdered reports whether execution must follow the query's own
// variable order: projected and aggregate queries depend on engines emitting
// results grouped by (and ordered on) the leading output prefix, so the GAO
// must lead with Vars()[:Prefix()].
func (q *Query) PrefixOrdered() bool { return len(q.Aggs) > 0 || q.Projected() }

// Extended reports whether the query uses any feature beyond a plain natural
// join — projection, comparison predicates (including desugared constants),
// or aggregation. Extended queries are supported by the LFTJ and Minesweeper
// engines only.
func (q *Query) Extended() bool {
	return len(q.Preds) > 0 || len(q.Aggs) > 0 || q.Projected()
}

// constValue returns the constant pinning a placeholder variable, if any.
func (q *Query) constValue(v string) (int64, bool) {
	for _, p := range q.Preds {
		if p.Left == v && p.Op == OpEq && !p.IsVar {
			return p.Const, true
		}
	}
	return 0, false
}

// bodyString renders the atoms (placeholder variables inlined back to their
// constants) followed by the non-desugared predicates.
func (q *Query) bodyString() string {
	var b strings.Builder
	for i, a := range q.Atoms {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Rel)
		b.WriteByte('(')
		for j, v := range a.Vars {
			if j > 0 {
				b.WriteString(", ")
			}
			if Placeholder(v) {
				if c, ok := q.constValue(v); ok {
					b.WriteString(strconv.FormatInt(c, 10))
					continue
				}
			}
			b.WriteString(v)
		}
		b.WriteByte(')')
	}
	for _, p := range q.Preds {
		if Placeholder(p.Left) && p.Op == OpEq && !p.IsVar {
			continue // rendered inline as an atom constant
		}
		b.WriteString(", ")
		b.WriteString(p.String())
	}
	return b.String()
}

// String renders the query in the parseable Datalog-style syntax. Plain
// queries render as their atom list; extended queries render as a full rule
// with head, inlined constants, and predicates. Plan-cache keys incorporate
// this rendering, so it must distinguish every semantic dimension.
func (q *Query) String() string {
	if !q.Extended() {
		return q.bodyString()
	}
	var b strings.Builder
	b.WriteString(q.Name)
	b.WriteByte('(')
	for i, v := range q.Out() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v)
	}
	for i, ag := range q.Aggs {
		if i > 0 || len(q.Out()) > 0 {
			b.WriteString(", ")
		}
		b.WriteString(ag.String())
	}
	b.WriteString(") :- ")
	b.WriteString(q.bodyString())
	return b.String()
}

// VarIndex returns a map from variable name to its index in Vars().
func (q *Query) VarIndex() map[string]int {
	idx := make(map[string]int, len(q.vars))
	for i, v := range q.vars {
		idx[v] = i
	}
	return idx
}

// AtomsWith returns the indices of atoms containing variable v.
func (q *Query) AtomsWith(v string) []int {
	var out []int
	for i, a := range q.Atoms {
		for _, w := range a.Vars {
			if w == v {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// Validate checks structural well-formedness: at least one atom, non-empty
// atoms, every variable bound by some atom (trivially true here, but
// repeated-variable atoms are rejected because the storage layer indexes
// distinct columns; callers rewrite duplicates away first), and — for
// extended queries — well-formed predicates and aggregates over bound
// variables.
func (q *Query) Validate() error {
	if len(q.Atoms) == 0 {
		return fmt.Errorf("query %q: no atoms", q.Name)
	}
	bound := make(map[string]bool)
	for _, a := range q.Atoms {
		if len(a.Vars) == 0 {
			return fmt.Errorf("query %q: atom %s has no variables", q.Name, a.Rel)
		}
		seen := make(map[string]bool, len(a.Vars))
		for _, v := range a.Vars {
			if seen[v] {
				return fmt.Errorf("query %q: atom %s repeats variable %s", q.Name, a.Rel, v)
			}
			seen[v] = true
			bound[v] = true
		}
	}
	for _, p := range q.Preds {
		if !ValidOp(p.Op) {
			return fmt.Errorf("query %q: unknown comparison operator %q", q.Name, p.Op)
		}
		if !bound[p.Left] {
			return fmt.Errorf("query %q: %w: %s", q.Name, ErrUnboundPredVar, p.Left)
		}
		if p.IsVar && !bound[p.Right] {
			return fmt.Errorf("query %q: %w: %s", q.Name, ErrUnboundPredVar, p.Right)
		}
	}
	for _, ag := range q.Aggs {
		if !ValidAgg(ag.Func) {
			return fmt.Errorf("query %q: unknown aggregate function %q", q.Name, ag.Func)
		}
		if !bound[ag.Var] {
			return fmt.Errorf("query %q: %w: %s(%s)", q.Name, ErrUnboundHeadVar, ag.Func, ag.Var)
		}
	}
	if q.out != nil {
		for _, v := range q.out {
			if !bound[v] {
				return fmt.Errorf("query %q: %w: %s", q.Name, ErrUnboundHeadVar, v)
			}
		}
	}
	return nil
}
