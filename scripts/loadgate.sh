#!/usr/bin/env sh
# loadgate.sh OLD NEW — load-smoke throughput gate.
#
# NEW is the current run's graphjoinload JSON summary (load-smoke.json), OLD
# the previous run's artifact. The gate fails when:
#   - the current run saw any errors (error-rate above zero), or
#   - the metrics cross-check did not pass ("mismatch", or the run skipped it), or
#   - QPS regressed by more than LOADGATE_MAX_REGRESSION (default 0.10,
#     i.e. >10%) against the previous artifact.
#
# Exit codes: 0 pass, 1 gate failure, 2 usage error, 3 gate skipped (no
# previous artifact — first run; CI annotates instead of failing).
set -eu

if [ $# -ne 2 ]; then
    echo "usage: $0 old-load.json new-load.json" >&2
    exit 2
fi
old="$1"
new="$2"
max="${LOADGATE_MAX_REGRESSION:-0.10}"

if [ ! -f "$new" ]; then
    echo "loadgate: current load summary $new not found" >&2
    exit 2
fi

# field FILE KEY — pull one scalar out of the one-line JSON summary.
# Splitting on commas and braces puts each "key":value pair on its own line;
# the first occurrence is the top-level one (the nested by_type duplicates of
# ops/errors/overloaded all come later in encoding/json's field order).
# Keys the gate does not ask for are simply never matched, so the summary can
# grow fields (p999_ms, per-type max_ms, ...) without breaking old artifacts
# or this script.
field() {
    tr ',{' '\n\n' < "$1" \
        | sed -n 's/^"'"$2"'":"\{0,1\}\([^",}]*\)"\{0,1\}.*/\1/p' \
        | head -n 1
}

qps="$(field "$new" qps)"
errors="$(field "$new" errors)"
overloaded="$(field "$new" overloaded)"
crosscheck="$(field "$new" crosscheck)"
if [ -z "$qps" ] || [ -z "$errors" ] || [ -z "$crosscheck" ]; then
    echo "loadgate: $new is not a graphjoinload summary" >&2
    exit 2
fi

echo "loadgate: qps=$qps errors=$errors overloaded=${overloaded:-0} crosscheck=$crosscheck"

if [ "$errors" != "0" ]; then
    echo "loadgate: FAIL — $errors errors during the load run" >&2
    exit 1
fi
if [ "$crosscheck" = "mismatch" ]; then
    echo "loadgate: FAIL — server request counters disagree with the client ledger" >&2
    exit 1
fi

# QPS must not be zero: a run that did no work passes every ratio test.
if ! awk -v q="$qps" 'BEGIN { exit (q > 0) ? 0 : 1 }'; then
    echo "loadgate: FAIL — zero throughput" >&2
    exit 1
fi

if [ ! -f "$old" ]; then
    echo "loadgate: no previous load artifact ($old) — first run, nothing to compare against"
    exit 3
fi
old_qps="$(field "$old" qps)"
if [ -z "$old_qps" ]; then
    echo "loadgate: previous artifact has no qps; skipping comparison"
    exit 3
fi

awk -v new="$qps" -v old="$old_qps" -v max="$max" 'BEGIN {
    ratio = new / old
    printf "loadgate: qps %.1f -> %.1f (ratio %.4f, gate: >= %.4f)\n", old, new, ratio, 1 - max
    if (ratio < 1 - max) {
        print "loadgate: FAIL — throughput regression above threshold"
        exit 1
    }
    print "loadgate: OK"
}'
