package minesweeper

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/query"
	"repro/internal/testutil"
)

// TestCounterSubtreeReuse pins the counting-memo behavior on a small
// instance that previously exposed a lost-subtree bug (a failed
// contained-atom verification must not drop newly opened depths): the graph
// 0-1-2 with 2-3 and 2-4 under the 4-path query.
func TestCounterSubtreeReuse(t *testing.T) {
	edges := [][2]int64{{0, 1}, {1, 2}, {2, 3}, {2, 4}}
	db := testutil.GraphDB(edges, map[string][]int64{
		query.Sample1: {0, 1, 4},
		query.Sample2: {1, 2, 3, 4},
	})
	q := query.Path(4)
	plain, err := (Engine{Opts: Options{DisableCountMemo: true}}).Count(context.Background(), q, db)
	if err != nil {
		t.Fatal(err)
	}
	var reuses, stores int
	counterTrace = func(ev string, args ...interface{}) {
		switch ev {
		case "reuse":
			reuses++
		case "store":
			stores++
		}
	}
	defer func() { counterTrace = nil }()
	memo, err := (Engine{}).Count(context.Background(), q, db)
	if err != nil {
		t.Fatal(err)
	}
	if memo != plain {
		t.Fatalf("memo count = %d, plain = %d", memo, plain)
	}
	if plain != 28 {
		t.Errorf("plain count = %d, want 28 (hand-checked)", plain)
	}
	if reuses == 0 {
		t.Error("expected at least one subtree reuse on this instance")
	}
	if stores == 0 {
		t.Error("expected memo stores")
	}
}

// TestCounterContextShape checks the ctx(d) computation for the 3-path
// query under the canonical GAO: the suffix at depth 2 (variable c) depends
// only on c itself.
func TestCounterContextShape(t *testing.T) {
	q := query.Path(3)
	gao, _, _, err := resolvePlan(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(gao) != 4 {
		t.Fatalf("gao = %v", gao)
	}
	ex := &exec{}
	c := newCounter(ex, q, gao)
	// The last-but-one depth's context must be small (enabling the paper's
	// low-selectivity reuse): it is {that position} plus at most one earlier
	// position.
	d := len(gao) - 2
	if len(c.ctxPos[d]) > 2 {
		t.Errorf("ctx(%d) = %v, want at most 2 positions", d, c.ctxPos[d])
	}
	// Depth 0 contains v1 only when a sample is the sole prefix atom.
	if len(c.contained[len(gao)-1]) != len(q.Atoms) {
		t.Errorf("all atoms must be contained at the last depth, got %v", c.contained[len(gao)-1])
	}
}

// TestCountMemoRandomHeavy hammers the counting memo against plain counting
// across many random instances and all β-acyclic benchmark queries.
func TestCountMemoRandomHeavy(t *testing.T) {
	rng := rand.New(rand.NewSource(555))
	queries := []*query.Query{
		query.Path(3), query.Path(4), query.Tree(1), query.Tree(2), query.Comb(),
	}
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(10)
		m := 2 + rng.Intn(25)
		sel := 1 + rng.Intn(3)
		db := testutil.RandomGraphDB(rng, n, m, sel)
		for _, q := range queries {
			plain, err := (Engine{Opts: Options{DisableCountMemo: true}}).Count(context.Background(), q, db)
			if err != nil {
				t.Fatal(err)
			}
			memo, err := (Engine{}).Count(context.Background(), q, db)
			if err != nil {
				t.Fatal(err)
			}
			if plain != memo {
				t.Errorf("trial %d %s: memo = %d, plain = %d", trial, q.Name, memo, plain)
			}
		}
	}
}

// TestCountMemoCyclic: the counting memo must also be sound for β-cyclic
// queries (skeleton mode advances the frontier in larger jumps).
func TestCountMemoCyclic(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 10; trial++ {
		db := testutil.RandomGraphDB(rng, 4+rng.Intn(10), 2+rng.Intn(30), 2)
		for _, q := range []*query.Query{query.Clique(3), query.Clique(4), query.Cycle(4), query.Lollipop(2)} {
			plain, err := (Engine{Opts: Options{DisableCountMemo: true}}).Count(context.Background(), q, db)
			if err != nil {
				t.Fatal(err)
			}
			memo, err := (Engine{}).Count(context.Background(), q, db)
			if err != nil {
				t.Fatal(err)
			}
			if plain != memo {
				t.Errorf("trial %d %s: memo = %d, plain = %d", trial, q.Name, memo, plain)
			}
		}
	}
}
