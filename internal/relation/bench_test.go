package relation

import (
	"math/rand"
	"testing"
)

func benchRelation(b *testing.B, n int) *Relation {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	bl := NewBuilder("R", 2)
	for i := 0; i < n; i++ {
		bl.Add(int64(rng.Intn(n/4+1)), int64(rng.Intn(n/4+1)))
	}
	return bl.Build()
}

func BenchmarkBuild100k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	rows := make([]int64, 200_000)
	for i := range rows {
		rows[i] = int64(rng.Intn(30_000))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl := NewBuilder("R", 2)
		for j := 0; j < len(rows); j += 2 {
			bl.Add(rows[j], rows[j+1])
		}
		bl.Build()
	}
}

func BenchmarkCSRBuild100k(b *testing.B) {
	r := benchRelation(b, 100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewCSRTrie(r)
	}
}

// fullScan drives a two-level depth-first walk through either backend's
// cursor (the shapes BenchmarkTrieIteratorFullScan and BenchmarkCSR*FullScan
// compare).
func fullScan(it trieCursor) {
	it.Open()
	for !it.AtEnd() {
		it.Open()
		for !it.AtEnd() {
			it.Next()
		}
		it.Up()
		it.Next()
	}
	it.Up()
}

func BenchmarkTrieIteratorFullScan(b *testing.B) {
	r := benchRelation(b, 100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fullScan(NewTrieIterator(r))
	}
}

func BenchmarkCSRCursorFullScan(b *testing.B) {
	t := NewCSRTrie(benchRelation(b, 100_000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fullScan(NewCSRCursor(t))
	}
}

func BenchmarkTrieIteratorSeek(b *testing.B) {
	r := benchRelation(b, 100_000)
	rng := rand.New(rand.NewSource(2))
	targets := make([]int64, 1024)
	for i := range targets {
		targets[i] = int64(rng.Intn(30_000))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := NewTrieIterator(r)
		it.Open()
		for _, t := range targets {
			it.SeekGE(t % (t + 1)) // forward-only seeks
			if it.AtEnd() {
				break
			}
		}
		it.Up()
	}
}

func BenchmarkProbeGap(b *testing.B) {
	r := benchRelation(b, 100_000)
	rng := rand.New(rand.NewSource(3))
	points := make([][]int64, 1024)
	for i := range points {
		points[i] = []int64{int64(rng.Intn(30_000)), int64(rng.Intn(30_000))}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range points {
			r.ProbeGap(p)
		}
	}
}

func BenchmarkCSRProbeGap(b *testing.B) {
	t := NewCSRTrie(benchRelation(b, 100_000))
	rng := rand.New(rand.NewSource(3))
	points := make([][]int64, 1024)
	for i := range points {
		points[i] = []int64{int64(rng.Intn(30_000)), int64(rng.Intn(30_000))}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range points {
			t.ProbeGap(p)
		}
	}
}

func BenchmarkShardedCursorFullScan(b *testing.B) {
	t := NewShardedCSR(benchRelation(b, 100_000), 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fullScan(NewShardedCursor(t))
	}
}

func BenchmarkShardedProbeGap(b *testing.B) {
	t := NewShardedCSR(benchRelation(b, 100_000), 8)
	rng := rand.New(rand.NewSource(3))
	points := make([][]int64, 1024)
	for i := range points {
		points[i] = []int64{int64(rng.Intn(30_000)), int64(rng.Intn(30_000))}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range points {
			t.ProbeGap(p)
		}
	}
}

// benchOverlay carries ~2% of the base in live logs — the steady state of a
// view between compactions.
func benchOverlay(b *testing.B) *Overlay {
	b.Helper()
	r := benchRelation(b, 100_000)
	ov := NewOverlay(r)
	rng := rand.New(rand.NewSource(9))
	var ins, dels [][]int64
	for i := 0; i < 1000; i++ {
		t := []int64{int64(rng.Intn(30_000)), int64(rng.Intn(30_000))}
		if r.Contains(t) {
			dels = append(dels, t)
		} else {
			ins = append(ins, t)
		}
	}
	ov = ov.Apply(ins, dels)
	if ov.LogLen() == 0 {
		b.Fatal("overlay compacted; benchmark would measure the pristine path")
	}
	return ov
}

func BenchmarkOverlayCursorFullScan(b *testing.B) {
	ov := benchOverlay(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fullScan(ov.NewCursor())
	}
}

func BenchmarkOverlayProbeGap(b *testing.B) {
	ov := benchOverlay(b)
	rng := rand.New(rand.NewSource(3))
	points := make([][]int64, 1024)
	for i := range points {
		points[i] = []int64{int64(rng.Intn(30_000)), int64(rng.Intn(30_000))}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range points {
			ov.ProbeGap(p)
		}
	}
}

// BenchmarkOverlayApply measures one single-tuple update landing in the
// logs — the per-batch cost a CSR-backed incremental view pays instead of
// an O(arity·n) trie rebuild.
func BenchmarkOverlayApply(b *testing.B) {
	ov := NewOverlay(benchRelation(b, 100_000))
	rng := rand.New(rand.NewSource(11))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := []int64{int64(rng.Intn(30_000)), int64(rng.Intn(30_000))}
		ov.Apply([][]int64{t}, nil)
	}
}
