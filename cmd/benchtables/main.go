// Command benchtables regenerates the paper's evaluation artifacts: every
// table (1–7) and figure (3–7) of "Join Processing for Graph Patterns: An
// Old Dog with New Tricks". Run with no flags for the full suite at the
// default (laptop-friendly) scale, or select individual artifacts:
//
//	benchtables -table 6 -scale medium -timeout 10s
//	benchtables -figure 3
//	benchtables -all -scale small -timeout 5s
//
// Output layout mirrors the paper: "-" marks a timeout, "mem" an exceeded
// intermediate-result budget, "n/a" an unsupported query/engine pairing.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dataset"
)

func main() {
	var (
		table   = flag.Int("table", 0, "regenerate a single table (1-7)")
		figure  = flag.Int("figure", 0, "regenerate a single figure (3-7)")
		all     = flag.Bool("all", false, "regenerate every table and figure")
		scale   = flag.String("scale", "small", "dataset tier: small | medium | full")
		timeout = flag.Duration("timeout", 5*time.Second, "per-execution timeout (paper: 30m)")
		repeats = flag.Int("repeats", 1, "executions per cell (paper: 3, averaging the last 2)")
		workers = flag.Int("workers", 0, "worker pool size (0 = all cores)")
		backend = flag.String("backend", "", "index backend for lftj/ms: flat | csr | csr-sharded (empty = csr)")
		seed    = flag.Int64("seed", 1, "random sample seed")
	)
	flag.Parse()
	if *table == 0 && *figure == 0 {
		*all = true
	}
	if _, err := core.ParseBackend(*backend); err != nil {
		log.Fatal(err)
	}

	h := bench.NewHarness(bench.Config{
		Out:        os.Stdout,
		Timeout:    *timeout,
		Scale:      *scale,
		Repeats:    *repeats,
		Workers:    *workers,
		Backend:    *backend,
		SampleSeed: *seed,
	})

	fmt.Printf("benchtables: scale=%s timeout=%v repeats=%d\n", *scale, *timeout, *repeats)
	fmt.Println("datasets are synthetic SNAP stand-ins (DESIGN.md §5); scaled entries:")
	for _, s := range dataset.Catalog() {
		if s.ScaleDiv > 1 {
			fmt.Printf("  %-18s %d nodes / %d edges (paper: %d / %d, scale 1/%d)\n",
				s.Name, s.Nodes, s.Edges, s.PaperNodes, s.PaperEdges, s.ScaleDiv)
		}
	}

	run := func(name string, f func() error) {
		start := time.Now()
		if err := f(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("[%s done in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}

	tables := map[int]func() error{
		1: h.Table1, 2: h.Table2, 3: h.Table3, 4: h.Table4,
		5: h.Table5, 6: h.Table6, 7: h.Table7,
	}
	figures := map[int]func() error{
		3: func() error { return h.FigurePathScaling(3) },
		4: func() error { return h.FigurePathScaling(4) },
		5: func() error { return h.FigurePathScaling(5) },
		6: func() error { return h.FigureCliqueScaling(6) },
		7: func() error { return h.FigureCliqueScaling(7) },
	}

	switch {
	case *all:
		for i := 1; i <= 7; i++ {
			run(fmt.Sprintf("table %d", i), tables[i])
		}
		for i := 3; i <= 7; i++ {
			run(fmt.Sprintf("figure %d", i), figures[i])
		}
	case *table != 0:
		f, ok := tables[*table]
		if !ok {
			log.Fatalf("no table %d (tables are 1-7)", *table)
		}
		run(fmt.Sprintf("table %d", *table), f)
	case *figure != 0:
		f, ok := figures[*figure]
		if !ok {
			log.Fatalf("no figure %d (figures are 3-7)", *figure)
		}
		run(fmt.Sprintf("figure %d", *figure), f)
	}
}
