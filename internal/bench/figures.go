package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/query"
)

// figureSampleSizes is the x-axis of Figures 3–5 (node-sample sizes).
var figureSampleSizes = []int{1, 10, 100, 1000, 10000}

// figurePathEngines are the series of Figures 3–5.
var figurePathEngines = []engine.Algorithm{engine.LFTJ, engine.MS, engine.PSQL}

// FigurePathScaling regenerates Figures 3–5: 3-path runtime as the node
// samples grow, on the LiveJournal (Figure 3), Pokec (Figure 4) and Orkut
// (Figure 5) stand-ins. figure selects 3, 4 or 5.
func (h *Harness) FigurePathScaling(figure int) error {
	var name string
	switch figure {
	case 3:
		name = "soc-LiveJournal1"
	case 4:
		name = "soc-Pokec"
	case 5:
		name = "com-Orkut"
	default:
		return fmt.Errorf("bench: FigurePathScaling(%d): figure must be 3, 4 or 5", figure)
	}
	s, err := h.site(name)
	if err != nil {
		return err
	}
	cols := make([]string, len(figurePathEngines))
	for i, a := range figurePathEngines {
		cols[i] = string(a)
	}
	ser := newSeries(
		fmt.Sprintf("Figure %d: 3-path on %s stand-in, seconds vs sample size", figure, name),
		"N nodes", cols)
	q := query.Path(3)
	rng := rand.New(rand.NewSource(h.cfg.SampleSeed))
	for _, n := range figureSampleSizes {
		if n > s.g.N {
			break
		}
		v1 := s.g.SampleOfSize(rng, n)
		v2 := s.g.SampleOfSize(rng, n)
		dataset.ReplaceSamples(s.db, v1, v2)
		xi := ser.addX(fmt.Sprintf("%d", n))
		for j, alg := range figurePathEngines {
			res := h.run(engine.Options{Algorithm: alg, Workers: h.cfg.Workers}, q, s.db)
			ser.set(xi, j, res.String())
		}
	}
	ser.note("the paper's shape: ms flattens with growing samples (caching); lftj grows steeply; psql sits between until it times out")
	ser.write(h.cfg.Out)
	return nil
}

// figureCliqueEngines are the series of Figures 6–7. RedShift and System HC
// from the paper are closed-source; psql/monetdb and the yannakakis engine
// (acyclic-only, hence n/a on cliques and shown for transparency) stand in.
var figureCliqueEngines = []engine.Algorithm{engine.LFTJ, engine.MS, engine.PSQL, engine.MonetDB, engine.GraphLab}

// FigureCliqueScaling regenerates Figures 6–7: {3,4}-clique runtime on
// growing edge prefixes of the LiveJournal stand-in. figure selects 6
// (3-clique) or 7 (4-clique).
func (h *Harness) FigureCliqueScaling(figure int) error {
	var k int
	switch figure {
	case 6:
		k = 3
	case 7:
		k = 4
	default:
		return fmt.Errorf("bench: FigureCliqueScaling(%d): figure must be 6 or 7", figure)
	}
	s, err := h.site("soc-LiveJournal1")
	if err != nil {
		return err
	}
	cols := make([]string, len(figureCliqueEngines))
	for i, a := range figureCliqueEngines {
		cols[i] = string(a)
	}
	ser := newSeries(
		fmt.Sprintf("Figure %d: %d-clique on LiveJournal stand-in, seconds vs edge count", figure, k),
		"N edges", cols)
	q := query.Clique(k)
	for n := 1000; ; n *= 4 {
		sub := s.g.EdgePrefix(n)
		db := dataset.DB(sub, 1, h.cfg.SampleSeed)
		xi := ser.addX(fmt.Sprintf("%d", len(sub.Edges)))
		for j, alg := range figureCliqueEngines {
			res := h.run(engine.Options{Algorithm: alg, Workers: h.cfg.Workers}, q, db)
			ser.set(xi, j, res.String())
		}
		if n >= len(s.g.Edges) {
			break
		}
	}
	ser.note("the paper's shape: pairwise engines fall over orders of magnitude earlier; optimal joins handle ~100x more edges; graphlab leads on raw clique counting")
	ser.write(h.cfg.Out)
	return nil
}
