package relation

import (
	"fmt"
	"math"
)

// CSRTrie is a materialized attribute trie over a sorted relation, stored in
// compressed-sparse-row layout: one contiguous key array per attribute level
// plus an offset array mapping each node to its children's range in the next
// level (the layout TrieJax and EmptyHeaded use for worst-case-optimal join
// indices). Where the flat Relation re-derives child ranges by binary search
// over full row ranges on every TrieIterator.Open/Next, the CSR trie resolves
// Open and Next in O(1) array arithmetic and SeekGE by galloping over a
// dense, cache-resident key array — the access pattern of the innermost
// leapfrog loop. A CSRTrie is immutable and safe for concurrent cursors.
type CSRTrie struct {
	name  string
	arity int
	n     int
	// levels[d] materializes trie depth d (attribute column d).
	levels []csrLevel
}

// csrLevel is one materialized trie level: vals holds the keys of every node
// at this depth, grouped by parent; start[p] .. start[p+1] bounds the
// children of parent node p in vals (level 0 has the single virtual root as
// parent, so start is [0, len(vals)]). rows[i] is the first source row of
// node i's subtree; because nodes at a level partition the sorted rows in
// order, node i spans rows [rows[i], rows[i+1]) and rows[len(vals)] == n.
// The spans give every node its subtree tuple count in O(1) — the delta
// overlay's tombstone check (is a base subtree fully deleted?) reads them.
type csrLevel struct {
	vals  []int64
	start []int32
	rows  []int32
}

// span returns the subtree tuple count of node pos at this level.
func (l *csrLevel) span(pos int32) int32 { return l.rows[pos+1] - l.rows[pos] }

// NewCSRTrie materializes the attribute trie of a sorted, deduplicated
// relation. Build cost is one linear pass per level, O(arity · n) total.
func NewCSRTrie(r *Relation) *CSRTrie {
	if int64(r.Len()) > math.MaxInt32 {
		panic(fmt.Sprintf("relation: CSR trie over %d tuples exceeds int32 offsets", r.Len()))
	}
	t := &CSRTrie{name: r.name, arity: r.arity, n: r.n, levels: make([]csrLevel, r.arity)}
	// Row ranges of the previous level's nodes; the virtual root spans all
	// rows. Runs of equal values within a parent's range become the nodes of
	// the current level, carrying their row ranges down for the next one.
	prevLo := []int32{0}
	prevHi := []int32{int32(r.n)}
	for d := 0; d < r.arity; d++ {
		lvl := &t.levels[d]
		lvl.start = make([]int32, 1, len(prevLo)+1)
		var curLo, curHi []int32
		for p := range prevLo {
			for row := prevLo[p]; row < prevHi[p]; {
				v := r.rows[int(row)*r.arity+d]
				end := row + 1
				for end < prevHi[p] && r.rows[int(end)*r.arity+d] == v {
					end++
				}
				lvl.vals = append(lvl.vals, v)
				curLo = append(curLo, row)
				curHi = append(curHi, end)
				row = end
			}
			lvl.start = append(lvl.start, int32(len(lvl.vals)))
		}
		// Nodes partition the sorted rows in order, so curHi[i] == curLo[i+1]
		// and the span array is curLo with the total row count appended.
		lvl.rows = append(curLo, int32(r.n))
		prevLo, prevHi = curLo, curHi
	}
	return t
}

// Name returns the indexed relation's name.
func (t *CSRTrie) Name() string { return t.name }

// Arity returns the number of attributes.
func (t *CSRTrie) Arity() int { return t.arity }

// Len returns the number of tuples (leaf nodes).
func (t *CSRTrie) Len() int { return t.n }

// Nodes returns the total materialized trie-node count across all levels
// (the index's memory footprint in keys).
func (t *CSRTrie) Nodes() int {
	total := 0
	for _, lvl := range t.levels {
		total += len(lvl.vals)
	}
	return total
}

func (t *CSRTrie) String() string {
	return fmt.Sprintf("csr(%s/%d)[%d tuples, %d nodes]", t.name, t.arity, t.n, t.Nodes())
}

// ProbeGap is the CSR counterpart of Relation.ProbeGap (Minesweeper's
// seekGap, Algorithm 3): walk the materialized levels with one bounded
// binary search each, descending through O(1) child-range lookups instead of
// re-narrowing full row ranges. Gap semantics are identical to the flat
// backend's.
func (t *CSRTrie) ProbeGap(point []int64) (gap Gap, found bool) {
	if len(point) != t.arity {
		panic("relation: ProbeGap point length mismatch")
	}
	lo, hi := int32(0), int32(len(t.levels[0].vals))
	for d := 0; d < t.arity; d++ {
		vals := t.levels[d].vals
		v := point[d]
		pos := lowerBound64(vals, lo, hi, v)
		if pos < hi && vals[pos] == v {
			if d+1 < t.arity {
				lo, hi = t.levels[d+1].start[pos], t.levels[d+1].start[pos+1]
			}
			continue
		}
		g := Gap{Col: d, Lo: NegInf, Hi: PosInf}
		if pos > lo {
			g.Lo = vals[pos-1]
		}
		if pos < hi {
			g.Hi = vals[pos]
		}
		return g, false
	}
	return Gap{}, true
}

// lowerBound64 returns the first index in [lo, hi) with vals[i] >= v.
func lowerBound64(vals []int64, lo, hi int32, v int64) int32 {
	for lo < hi {
		mid := int32(uint32(lo+hi) >> 1)
		if vals[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// CSRCursor is the trie cursor over a CSRTrie, with the same contract as
// TrieIterator: Open descends to the first child, Up pops back, Next/SeekGE
// move within the current level in increasing key order, and calling them at
// the end of a level is a no-op.
type CSRCursor struct {
	t     *CSRTrie
	depth int
	lo    []int32 // per opened level: start of sibling range in levels[d].vals
	hi    []int32 // per opened level: end of sibling range
	pos   []int32 // per opened level: current node
}

// NewCSRCursor returns a cursor positioned at the trie's virtual root.
func NewCSRCursor(t *CSRTrie) *CSRCursor {
	return &CSRCursor{
		t:   t,
		lo:  make([]int32, 0, t.arity),
		hi:  make([]int32, 0, t.arity),
		pos: make([]int32, 0, t.arity),
	}
}

// Trie returns the underlying CSR trie.
func (c *CSRCursor) Trie() *CSRTrie { return c.t }

// Depth returns the number of currently opened levels.
func (c *CSRCursor) Depth() int { return c.depth }

// Open descends one level to the current node's first child: a direct
// offset-array lookup, no search.
func (c *CSRCursor) Open() {
	if c.depth == c.t.arity {
		panic("relation: CSRCursor.Open below leaf level")
	}
	var lo, hi int32
	lvl := &c.t.levels[c.depth]
	if c.depth == 0 {
		lo, hi = 0, int32(len(lvl.vals))
	} else {
		if c.AtEnd() {
			panic("relation: CSRCursor.Open at end of level")
		}
		p := c.pos[c.depth-1]
		lo, hi = lvl.start[p], lvl.start[p+1]
	}
	c.lo = append(c.lo, lo)
	c.hi = append(c.hi, hi)
	c.pos = append(c.pos, lo)
	c.depth++
}

// Up pops back to the previous level. It panics at the root.
func (c *CSRCursor) Up() {
	if c.depth == 0 {
		panic("relation: CSRCursor.Up at root")
	}
	c.depth--
	c.lo = c.lo[:c.depth]
	c.hi = c.hi[:c.depth]
	c.pos = c.pos[:c.depth]
}

// AtEnd reports whether the current level is exhausted.
func (c *CSRCursor) AtEnd() bool {
	cur := c.depth - 1
	return c.pos[cur] >= c.hi[cur]
}

// Key returns the current key at the current level.
func (c *CSRCursor) Key() int64 {
	cur := c.depth - 1
	return c.t.levels[cur].vals[c.pos[cur]]
}

// Span returns the subtree tuple count of the current node — how many
// tuples of the relation extend the key path selected so far. The delta
// overlay compares base and tombstone spans to decide whether a base
// subtree is fully deleted.
func (c *CSRCursor) Span() int32 {
	cur := c.depth - 1
	return c.t.levels[cur].span(c.pos[cur])
}

// Next advances to the next distinct key: a single increment, because every
// node at a level is already distinct under its parent.
func (c *CSRCursor) Next() {
	cur := c.depth - 1
	if c.pos[cur] < c.hi[cur] {
		c.pos[cur]++
	}
}

// SeekGE positions at the least key >= v at the current level, galloping
// from the current position (leapfrog seeks are usually near misses, so the
// exponential probe touches O(log distance) keys of one contiguous array).
// Seeking backwards is a no-op.
func (c *CSRCursor) SeekGE(v int64) {
	cur := c.depth - 1
	vals := c.t.levels[cur].vals
	pos, hi := c.pos[cur], c.hi[cur]
	if pos >= hi || vals[pos] >= v {
		return
	}
	// vals[pos] < v: gallop until the bracket [pos, bound) has the target.
	bound, step := pos+1, int32(1)
	for bound < hi && vals[bound] < v {
		pos = bound
		bound += step
		step <<= 1
	}
	if bound > hi {
		bound = hi
	}
	c.pos[cur] = lowerBound64(vals, pos+1, bound, v)
}
