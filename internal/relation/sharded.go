package relation

import (
	"fmt"
	"runtime"
	"sort"
)

// ShardedCSR partitions the attribute trie of a sorted relation into
// disjoint CSR tries by contiguous ranges of the first attribute — the
// physical layout Zinn's partitioned-LFTJ triangle study builds its
// out-of-core evaluation on: every first-attribute value lives in exactly
// one shard, so a worker restricted to one first-attribute range touches
// only that shard's arrays and shares no cache lines with the other
// workers. Because the shards are themselves complete CSR tries over row
// slices of the base relation (no copying), build cost and total memory
// match the unsharded CSR trie.
//
// A ShardedCSR is immutable and safe for concurrent cursors; Restrict
// returns a cheap view over a subset of the shards for the §4.10 parallel
// jobs.
type ShardedCSR struct {
	name  string
	arity int
	n     int
	// starts[i] is the smallest first-attribute value of shard i; shard i
	// covers the value range [starts[i], starts[i+1]) (the last shard is
	// unbounded above). len(starts) == len(shards).
	starts []int64
	shards []*CSRTrie
}

// DefaultShards picks the shard count when the caller does not: a few
// shards per core, so the §4.10 work-stealing pool has stealing slack when
// jobs are mapped one-to-one onto shards.
func DefaultShards() int {
	return 4 * runtime.GOMAXPROCS(0)
}

// NewShardedCSR partitions r into up to `shards` contiguous first-attribute
// ranges of roughly equal row counts (cut points always fall on
// first-attribute value boundaries) and materializes one CSR trie per
// range. shards <= 0 selects DefaultShards.
func NewShardedCSR(r *Relation, shards int) *ShardedCSR {
	if shards <= 0 {
		shards = DefaultShards()
	}
	t := &ShardedCSR{name: r.name, arity: r.arity, n: r.n}
	if r.n == 0 {
		return t
	}
	target := (r.n + shards - 1) / shards
	lo := 0
	for lo < r.n {
		hi := lo + target
		if hi >= r.n {
			hi = r.n
		} else {
			// Grow the cut to the next first-attribute boundary so a value's
			// whole subtree stays in one shard.
			v := r.Value(hi-1, 0)
			for hi < r.n && r.Value(hi, 0) == v {
				hi++
			}
		}
		sub := fromSortedRows(r.name, r.arity, r.rows[lo*r.arity:hi*r.arity])
		t.starts = append(t.starts, r.Value(lo, 0))
		t.shards = append(t.shards, NewCSRTrie(sub))
		lo = hi
	}
	return t
}

// Name returns the indexed relation's name.
func (t *ShardedCSR) Name() string { return t.name }

// Arity returns the number of attributes.
func (t *ShardedCSR) Arity() int { return t.arity }

// Len returns the number of tuples across all shards.
func (t *ShardedCSR) Len() int { return t.n }

// NumShards returns the shard count.
func (t *ShardedCSR) NumShards() int { return len(t.shards) }

// Shard returns shard i's CSR trie. A job whose Restrict view resolves to a
// single shard can iterate the shard trie directly, skipping the composed
// cursor's indirection entirely.
func (t *ShardedCSR) Shard(i int) *CSRTrie { return t.shards[i] }

// ShardStarts returns the smallest first-attribute value of each shard, in
// increasing order. The §4.10 parallel planner aligns its job cut points
// with these so every job binds exactly one shard.
func (t *ShardedCSR) ShardStarts() []int64 {
	return append([]int64(nil), t.starts...)
}

func (t *ShardedCSR) String() string {
	return fmt.Sprintf("csr-sharded(%s/%d)[%d tuples, %d shards]", t.name, t.arity, t.n, len(t.shards))
}

// shardFor returns the index of the shard whose range contains v, or -1
// when v precedes every shard.
func (t *ShardedCSR) shardFor(v int64) int {
	return sort.Search(len(t.starts), func(i int) bool { return t.starts[i] > v }) - 1
}

// Restrict returns a view over the shards whose first-attribute ranges
// intersect [lo, hi) — the disjoint physical index a parallel job binds.
// The view shares the shard tries (no copying). Within [lo, hi) the view
// answers cursor walks and gap probes exactly as the full index would;
// outside it, reported gaps may overreach into ranges the view does not
// cover, which is sound for jobs that only explore first-attribute values
// inside their own range.
func (t *ShardedCSR) Restrict(lo, hi int64) *ShardedCSR {
	if len(t.shards) == 0 {
		return t
	}
	j1 := t.shardFor(lo)
	if j1 < 0 {
		j1 = 0
	}
	j2 := sort.Search(len(t.starts), func(i int) bool { return t.starts[i] >= hi })
	if j2 <= j1 {
		j2 = j1 + 1 // keep at least the shard containing lo
	}
	if j1 == 0 && j2 == len(t.shards) {
		return t
	}
	out := &ShardedCSR{name: t.name, arity: t.arity, starts: t.starts[j1:j2], shards: t.shards[j1:j2]}
	for _, s := range out.shards {
		out.n += s.Len()
	}
	return out
}

// ProbeGap is Relation.ProbeGap over the sharded trie: the first attribute
// selects the shard, the shard answers, and column-0 gaps that run off a
// shard's end are clamped to the neighbouring shard's boundary keys so the
// reported box is empty in the whole relation.
func (t *ShardedCSR) ProbeGap(point []int64) (Gap, bool) {
	if len(point) != t.arity {
		panic("relation: ProbeGap point length mismatch")
	}
	if len(t.shards) == 0 {
		return Gap{Col: 0, Lo: NegInf, Hi: PosInf}, false
	}
	j := t.shardFor(point[0])
	if j < 0 {
		return Gap{Col: 0, Lo: NegInf, Hi: t.starts[0]}, false
	}
	g, found := t.shards[j].ProbeGap(point)
	if found || g.Col != 0 {
		return g, found
	}
	if g.Lo == NegInf && j > 0 {
		prev := t.shards[j-1].levels[0].vals
		g.Lo = prev[len(prev)-1]
	}
	if g.Hi == PosInf && j+1 < len(t.shards) {
		g.Hi = t.starts[j+1]
	}
	return g, false
}

// ShardedCursor composes the shard tries into one trie cursor: level 0
// concatenates the shards' level-0 keys in order (crossing shard boundaries
// on Next/SeekGE), and every deeper level delegates to the shard that owns
// the selected first-attribute value.
type ShardedCursor struct {
	t       *ShardedCSR
	s       int
	cur     *CSRCursor // active shard's cursor; nil before Open or when empty
	cursors []*CSRCursor
	depth   int
}

// NewShardedCursor returns a cursor positioned at the trie's virtual root.
func NewShardedCursor(t *ShardedCSR) *ShardedCursor {
	return &ShardedCursor{t: t, cursors: make([]*CSRCursor, len(t.shards))}
}

func (c *ShardedCursor) cursor(i int) *CSRCursor {
	if c.cursors[i] == nil {
		c.cursors[i] = NewCSRCursor(c.t.shards[i])
	}
	return c.cursors[i]
}

// Depth returns the number of currently opened levels.
func (c *ShardedCursor) Depth() int { return c.depth }

// Open descends one level to the current node's first child.
func (c *ShardedCursor) Open() {
	if c.depth == c.t.arity {
		panic("relation: ShardedCursor.Open below leaf level")
	}
	if c.depth == 0 {
		c.depth = 1
		if len(c.t.shards) == 0 {
			return // empty relation: level 0 opens exhausted (cur == nil)
		}
		c.s = 0
		c.cur = c.cursor(0)
		c.cur.Open()
		return
	}
	if c.AtEnd() {
		panic("relation: ShardedCursor.Open at end of level")
	}
	c.cur.Open()
	c.depth++
}

// Up pops back to the previous level. It panics at the root.
func (c *ShardedCursor) Up() {
	if c.depth == 0 {
		panic("relation: ShardedCursor.Up at root")
	}
	if c.cur != nil {
		c.cur.Up()
	}
	c.depth--
	if c.depth == 0 {
		c.cur = nil
		c.s = 0
	}
}

// AtEnd reports whether the current level is exhausted. At level 0 the
// crossing logic in Next/SeekGE keeps the cursor on a non-exhausted shard
// until the last shard runs out.
func (c *ShardedCursor) AtEnd() bool {
	if c.cur == nil {
		return true
	}
	return c.cur.AtEnd()
}

// Key returns the current key at the current level.
func (c *ShardedCursor) Key() int64 { return c.cur.Key() }

// Next advances to the next distinct key, crossing into the next shard when
// the current one's level-0 keys are exhausted.
func (c *ShardedCursor) Next() {
	if c.cur == nil {
		return
	}
	c.cur.Next()
	if c.depth == 1 {
		c.advanceShard()
	}
}

// SeekGE positions at the least key >= v at the current level. At level 0 a
// far seek jumps directly to the shard whose range contains v instead of
// galloping through the intermediate shards.
func (c *ShardedCursor) SeekGE(v int64) {
	if c.cur == nil {
		return
	}
	if c.depth > 1 {
		c.cur.SeekGE(v)
		return
	}
	if c.cur.AtEnd() || c.cur.Key() >= v {
		return
	}
	if j := c.t.shardFor(v); j > c.s {
		c.cur.Up()
		c.s = j
		c.cur = c.cursor(j)
		c.cur.Open()
	}
	c.cur.SeekGE(v)
	c.advanceShard()
}

// advanceShard moves to the next shard's first key while the active shard's
// level-0 keys are exhausted (shards are never empty, so one step suffices,
// but the loop keeps the invariant obvious).
func (c *ShardedCursor) advanceShard() {
	for c.cur.AtEnd() && c.s+1 < len(c.t.shards) {
		c.cur.Up()
		c.s++
		c.cur = c.cursor(c.s)
		c.cur.Open()
	}
}
