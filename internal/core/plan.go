package core

import (
	"fmt"
	"strings"

	"repro/internal/query"
)

// Plan is a compiled query: the query fixed against a concrete GAO with its
// GAO-consistent atom indexes already bound (§4.1's physical design, derived
// once). Engines that execute plans skip validation, attribute-order
// resolution, and index binding entirely on every run. A Plan is immutable
// after construction and safe to share across goroutines: the bound indexes
// are read-only relations, and each execution builds its own iterator and
// memo state.
type Plan struct {
	// Query is the compiled query.
	Query *query.Query
	// Algorithm is the engine the plan was compiled for.
	Algorithm string
	// GAO is the resolved global attribute order.
	GAO []string
	// Backend is the index backend every atom is bound under.
	Backend Backend
	// Atoms holds the GAO-consistent index binding of each query atom, in
	// q.Atoms order.
	Atoms []AtomIndex
	// InSkel marks the atoms in Minesweeper's skeleton (§4.9); nil means
	// every atom.
	InSkel []bool
	// BetaCyclic records whether the query is β-cyclic (drives the §4.10
	// parallel-granularity default and Minesweeper's skeleton split).
	BetaCyclic bool
	// Push carries the compiled selection bounds, residual predicates, and
	// projection prefix of an extended query; nil for plain joins.
	Push *Pushdown
}

// reads reports whether the plan binds an index over the named relation.
func (p *Plan) reads(rel string) bool {
	for _, a := range p.Query.Atoms {
		if a.Rel == rel {
			return true
		}
	}
	return false
}

// PlanKey builds the plan-cache key for a query shape under one algorithm,
// index backend, and (possibly empty) user-supplied GAO. variant
// distinguishes compilations of the same shape that planner toggles would
// change (e.g. Minesweeper with the skeleton idea disabled). The query's
// variable order is part of the key: two queries with the same atom list but
// different output orders (a parsed head reorders Vars) resolve different
// default GAOs and must not share a compilation. Extended queries render
// their head, inlined constants, predicates, and aggregates into q.String(),
// so projection, selection, and aggregation are all key dimensions.
func PlanKey(algorithm, variant string, backend Backend, userGAO []string, q *query.Query) string {
	var b strings.Builder
	b.WriteString(algorithm)
	b.WriteByte('|')
	b.WriteString(variant)
	b.WriteByte('|')
	b.WriteString(string(backend))
	b.WriteByte('|')
	b.WriteString(strings.Join(userGAO, ","))
	b.WriteByte('|')
	b.WriteString(strings.Join(q.Vars(), ","))
	b.WriteByte('|')
	b.WriteString(q.String())
	return b.String()
}

// maxCachedPlans bounds the plan cache so ad-hoc query streams with many
// distinct shapes cannot grow it without limit; eviction is arbitrary
// because any entry is equally cheap to recompile.
const maxCachedPlans = 1024

// CachedPlan returns the cached plan for key, if present, together with the
// database version to pass back to StorePlan on a miss.
func (db *DB) CachedPlan(key string) (*Plan, int64, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	p, ok := db.plans[key]
	return p, db.version, ok
}

// StorePlan caches a compiled plan under key. version must be the database
// version the compilation started from (returned by CachedPlan): if any
// relation was replaced while the plan was being built, the store is
// skipped — caching it would pin a pre-replacement snapshot that Add's
// invalidation sweep already ran past. Cached plans are dropped when Add
// replaces a relation they read.
func (db *DB) StorePlan(key string, p *Plan, version int64) {
	if p == nil || p.Query == nil {
		return
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.version != version {
		return
	}
	if len(db.plans) >= maxCachedPlans {
		for k := range db.plans {
			delete(db.plans, k)
			break
		}
	}
	db.plans[key] = p
}

// CachedPlanCount returns the number of cached plans (tests observe
// invalidation through it).
func (db *DB) CachedPlanCount() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.plans)
}

// NewPlan compiles a query for an engine: validates it, checks the GAO
// covers every variable, binds the GAO-consistent indexes under the chosen
// backend, and verifies atom/relation arity agreement. Counters for the work
// performed are added to sc (which may be nil). NewPlan does not consult the
// plan cache — see the engine package for the cached compilation entry
// point.
func NewPlan(q *query.Query, db *DB, algorithm string, gao []string, inSkel []bool, betaCyclic bool, backend Backend, sc *StatsCollector) (*Plan, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if len(gao) != q.NumVars() {
		return nil, fmt.Errorf("core: GAO %v does not cover the %d query variables: %w", gao, q.NumVars(), ErrUnboundVar)
	}
	if backend == "" {
		backend = DefaultBackend
	}
	atoms, err := BindAtoms(q, db, gao, backend)
	if err != nil {
		return nil, err
	}
	for i, a := range atoms {
		if a.Index.Arity() != len(q.Atoms[i].Vars) {
			return nil, fmt.Errorf("core: atom %s arity mismatch with its %d-ary index", q.Atoms[i], a.Index.Arity())
		}
	}
	push, err := CompilePushdown(q, gao)
	if err != nil {
		return nil, err
	}
	sc.Add(Stats{IndexBindings: int64(len(atoms))})
	return &Plan{
		Query:      q,
		Algorithm:  algorithm,
		GAO:        gao,
		Backend:    backend,
		Atoms:      atoms,
		InSkel:     inSkel,
		BetaCyclic: betaCyclic,
		Push:       push,
	}, nil
}
