package dataset

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/relation"
)

// Spec describes one benchmark dataset: a synthetic stand-in for a SNAP
// graph (paper §5.1 table). PaperNodes/PaperEdges are the original sizes;
// Nodes/Edges are the generated sizes (the three largest graphs are scaled
// down by ScaleDiv to stay laptop-friendly — the harness prints this).
type Spec struct {
	Name       string
	Model      Model
	PaperNodes int
	PaperEdges int
	Nodes      int
	Edges      int
	ScaleDiv   int
	Seed       int64
	// Big marks the three paper datasets (Pokec, LiveJournal, Orkut) that
	// most systems time out on; the harness runs them only at larger scale
	// tiers.
	Big bool
}

// scaled builds a Spec, dividing the paper sizes by div.
func scaled(name string, model Model, nodes, edges, div int, seed int64, big bool) Spec {
	return Spec{
		Name:       name,
		Model:      model,
		PaperNodes: nodes,
		PaperEdges: edges,
		Nodes:      nodes / div,
		Edges:      edges / div,
		ScaleDiv:   div,
		Seed:       seed,
		Big:        big,
	}
}

// Catalog returns the 15 benchmark datasets in the paper's §5.1 order.
// Model assignments follow the triangle-density regimes recorded in the
// paper's dataset table (see DESIGN.md §5); div > 1 marks scaled-down
// stand-ins.
func Catalog() []Spec {
	return []Spec{
		scaled("wiki-Vote", HolmeKim, 7_115, 103_689, 1, 101, false),
		scaled("p2p-Gnutella31", ErdosRenyi, 62_586, 147_892, 1, 102, false),
		scaled("p2p-Gnutella04", ErdosRenyi, 10_876, 39_994, 1, 103, false),
		scaled("loc-Brightkite", BarabasiAlbert, 58_228, 428_156, 1, 104, false),
		scaled("ego-Facebook", HolmeKim, 4_039, 88_234, 1, 105, false),
		scaled("email-Enron", HolmeKim, 36_692, 367_662, 1, 106, false),
		scaled("ca-GrQc", HolmeKim, 5_242, 28_980, 1, 107, false),
		scaled("ca-CondMat", BarabasiAlbert, 23_133, 186_936, 1, 108, false),
		scaled("ego-Twitter", HolmeKim, 81_306, 2_420_766, 4, 109, false),
		scaled("soc-Slashdot0902", BarabasiAlbert, 82_168, 948_464, 2, 110, false),
		scaled("soc-Slashdot0811", BarabasiAlbert, 77_360, 905_468, 2, 111, false),
		scaled("soc-Epinions1", BarabasiAlbert, 75_879, 508_837, 2, 112, false),
		scaled("soc-Pokec", BarabasiAlbert, 1_632_803, 30_622_564, 40, 113, true),
		scaled("soc-LiveJournal1", BarabasiAlbert, 4_847_571, 68_993_773, 80, 114, true),
		scaled("com-Orkut", HolmeKim, 3_072_441, 117_185_083, 100, 115, true),
	}
}

// Lookup returns the catalog entry with the given name.
func Lookup(name string) (Spec, error) {
	for _, s := range Catalog() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("dataset: unknown dataset %q", name)
}

// Build generates the spec's graph.
func (s Spec) Build() *Graph {
	return Generate(s.Model, s.Nodes, s.Edges, s.Seed)
}

// DB materializes the benchmark database for a graph: the symmetric "edge"
// relation, the oriented "fwd" relation, and the four node samples v1..v4 at
// the given selectivity (§5.1 protocol). sampleSeed controls the random
// draws so different runs can use different samples, as in the paper.
func DB(g *Graph, selectivity int, sampleSeed int64) *core.DB {
	db := core.NewDB()
	eb := relation.NewBuilder(query.Edge, 2)
	fb := relation.NewBuilder(query.Fwd, 2)
	for _, e := range g.Edges {
		eb.Add(e[0], e[1])
		eb.Add(e[1], e[0])
		fb.Add(e[0], e[1]) // generator emits u < v
	}
	db.Add(eb.Build())
	db.Add(fb.Build())
	rng := rand.New(rand.NewSource(sampleSeed))
	for _, name := range []string{query.Sample1, query.Sample2, query.Sample3, query.Sample4} {
		sb := relation.NewBuilder(name, 1)
		for _, v := range g.Sample(rng, selectivity) {
			sb.Add(v)
		}
		db.Add(sb.Build())
	}
	return db
}

// SampleOfSize draws exactly k distinct vertices (Figures 3–5 use absolute
// sample sizes rather than selectivities).
func (g *Graph) SampleOfSize(rng *rand.Rand, k int) []int64 {
	if k >= g.N {
		out := make([]int64, g.N)
		for i := range out {
			out[i] = int64(i)
		}
		return out
	}
	perm := rng.Perm(g.N)[:k]
	out := make([]int64, k)
	for i, v := range perm {
		out[i] = int64(v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// sampleRelation builds one unary sample relation.
func sampleRelation(name string, vals []int64) *relation.Relation {
	sb := relation.NewBuilder(name, 1)
	for _, v := range vals {
		sb.Add(v)
	}
	return sb.Build()
}

// ReplaceSample swaps one named unary sample relation in place (the figure
// sweeps grow samples without rebuilding edge indexes).
func ReplaceSample(db *core.DB, name string, vals []int64) {
	db.Add(sampleRelation(name, vals))
}

// ReplaceSamples swaps the v1/v2 samples of an existing database in one
// atomic registration, so concurrent snapshot leases never observe one
// sample generation mixed with another.
func ReplaceSamples(db *core.DB, v1, v2 []int64) {
	db.AddAll([]*relation.Relation{
		sampleRelation(query.Sample1, v1),
		sampleRelation(query.Sample2, v2),
	})
}

// ReplaceNamedSamples swaps any set of named samples atomically (the
// selectivity protocol redraws all four at once).
func ReplaceNamedSamples(db *core.DB, samples map[string][]int64) {
	rels := make([]*relation.Relation, 0, len(samples))
	for name, vals := range samples {
		rels = append(rels, sampleRelation(name, vals))
	}
	db.AddAll(rels)
}

// TriangleDensity classifies the generated graph (tests assert the regimes
// match the paper's table qualitatively).
func (g *Graph) TriangleCount() int64 {
	adj := make(map[int64][]int64)
	for _, e := range g.Edges {
		u, v := e[0], e[1]
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	for u := range adj {
		vs := adj[u]
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		adj[u] = vs
	}
	var n int64
	for _, e := range g.Edges {
		u, v := e[0], e[1]
		// Count common neighbors w > v > u to count each triangle once.
		a, b := adj[u], adj[v]
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			switch {
			case a[i] < b[j]:
				i++
			case a[i] > b[j]:
				j++
			default:
				if a[i] > u && a[i] > v {
					n++
				}
				i++
				j++
			}
		}
	}
	return n
}
