package bench

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/minesweeper"
	"repro/internal/query"
)

// ablationBase are the Minesweeper options with Ideas 4, 6 and the counting
// reuse disabled — the baseline for Tables 1–2. The count-mode reuse is off
// in every variant so the measured effect is the CDS machinery itself.
var ablationBase = minesweeper.Options{DisableMemo: true, DisableComplete: true, DisableCountMemo: true}

// Table1 regenerates the paper's Table 1: the speedup ratio of Minesweeper
// when Idea 4 (probe memoization), and Ideas 4 and 6 (complete nodes), are
// incorporated, on the acyclic queries 2-comb, 3-path, 4-path.
func (h *Harness) Table1() error {
	return h.ideaSpeedupTable("Table 1: speedup from Idea 4, and Ideas 4&6 (selectivity 100)", 100)
}

// Table2 regenerates the paper's Table 2: the Ideas 4&6 speedups at
// selectivity 10.
func (h *Harness) Table2() error {
	return h.ideaSpeedupTable("Table 2: speedup from Ideas 4&6 (selectivity 10)", 10)
}

func (h *Harness) ideaSpeedupTable(title string, sel int) error {
	sets := h.cfg.datasets()
	queries := []*query.Query{query.Comb(), query.Path(3), query.Path(4)}
	m := newMatrix(title, "query", sets)
	idea4 := ablationBase
	idea4.DisableMemo = false
	idea46 := ablationBase
	idea46.DisableMemo = false
	idea46.DisableComplete = false
	for _, q := range queries {
		r4 := m.addRow(q.Name + " idea4")
		r46 := m.addRow(q.Name + " idea4&6")
		for j, name := range sets {
			s, err := h.site(name)
			if err != nil {
				return err
			}
			h.setSelectivity(s, sel)
			base := h.run(msOptions(ablationBase, 1), q, s.db)
			with4 := h.run(msOptions(idea4, 1), q, s.db)
			with46 := h.run(msOptions(idea46, 1), q, s.db)
			m.set(r4, j, ratio(base, with4))
			m.set(r46, j, ratio(base, with46))
		}
	}
	m.note("cells are t(no ideas)/t(with ideas); count-mode reuse disabled throughout")
	m.write(h.cfg.Out)
	return nil
}

// Table3 regenerates the paper's Table 3: the speedup from Idea 7 (gap
// skipping via the β-acyclic skeleton) on the cyclic queries.
func (h *Harness) Table3() error {
	sets := h.cfg.datasets()
	queries := []*query.Query{query.Clique(3), query.Clique(4), query.Cycle(4)}
	m := newMatrix("Table 3: speedup from Idea 7 (β-acyclic skeleton)", "query", sets)
	noSkel := minesweeper.Options{DisableSkeleton: true}
	for _, q := range queries {
		r := m.addRow(q.Name)
		for j, name := range sets {
			s, err := h.site(name)
			if err != nil {
				return err
			}
			base := h.run(msOptions(noSkel, 1), q, s.db)
			with := h.run(msOptions(minesweeper.Options{}, 1), q, s.db)
			m.set(r, j, ratio(base, with))
		}
	}
	m.note(`"inf" = the no-skeleton baseline timed out (the paper prints ∞ for thrashing)`)
	m.write(h.cfg.Out)
	return nil
}

// table4GAOs are the paper's seven representative attribute orders for the
// 4-path query: five NEOs and two non-NEOs.
var table4GAOs = []string{"abcde", "bacde", "bcade", "cbade", "cbdae", "abdce", "badce"}

// Table4 regenerates the paper's Table 4: Minesweeper runtimes on 4-path
// under NEO and non-NEO global attribute orders.
func (h *Harness) Table4() error {
	sets := h.cfg.datasets()
	cols := make([]string, len(table4GAOs)+1)
	for i, g := range table4GAOs {
		label := g
		if i < 5 {
			label = g + "*" // NEO marker
		}
		cols[i] = label
	}
	cols[len(cols)-1] = "edges"
	m := newMatrix("Table 4: Minesweeper on 4-path under different GAOs (seconds; * = NEO)", "dataset", cols)
	q := query.Path(4)
	for _, name := range sets {
		s, err := h.site(name)
		if err != nil {
			return err
		}
		h.setSelectivity(s, 10)
		r := m.addRow(name)
		for j, gao := range table4GAOs {
			opts := msOptions(minesweeper.Options{GAO: letters(gao)}, 1)
			m.set(r, j, h.run(opts, q, s.db).String())
		}
		m.set(r, len(cols)-1, fmt.Sprintf("%d", len(s.g.Edges)))
	}
	m.note("non-NEO orders run through the cache-free fallback and are expected to be much slower")
	m.write(h.cfg.Out)
	return nil
}

func letters(s string) []string {
	out := make([]string, len(s))
	for i, r := range s {
		out[i] = string(r)
	}
	return out
}

// table5Granularities are the paper's partition granularity factors.
var table5Granularities = []int{1, 2, 3, 4, 8, 12, 14}

// Table5 regenerates the paper's Table 5: average normalized runtime of
// parallel Minesweeper across the partition granularity factor f.
func (h *Harness) Table5() error {
	sets := h.cfg.datasets()
	if len(sets) > 4 {
		sets = sets[:4] // a handful of sets is enough for the average
	}
	queries := []*query.Query{
		query.Path(3), query.Path(4), query.Comb(),
		query.Clique(3), query.Clique(4), query.Cycle(4),
	}
	cols := make([]string, len(table5Granularities))
	for i, f := range table5Granularities {
		cols[i] = fmt.Sprintf("f=%d", f)
	}
	m := newMatrix("Table 5: normalized runtime vs partition granularity (parallel Minesweeper)", "query", cols)
	for _, q := range queries {
		r := m.addRow(q.Name)
		sums := make([]float64, len(table5Granularities))
		counts := make([]int, len(table5Granularities))
		for _, name := range sets {
			s, err := h.site(name)
			if err != nil {
				return err
			}
			h.setSelectivity(s, 10)
			var baseline float64
			for fi, f := range table5Granularities {
				opts := engine.Options{Algorithm: engine.MS, Granularity: f, Workers: h.cfg.Workers}
				res := h.run(opts, q, s.db)
				if res.status != ok {
					continue
				}
				if fi == 0 {
					baseline = res.seconds
				}
				if baseline > 0 {
					sums[fi] += res.seconds / baseline
					counts[fi]++
				}
			}
		}
		for fi := range table5Granularities {
			if counts[fi] > 0 {
				m.set(r, fi, fmt.Sprintf("%.2f", sums[fi]/float64(counts[fi])))
			} else {
				m.set(r, fi, "-")
			}
		}
	}
	m.note("cells are t(f)/t(f=1) averaged over %d datasets; the paper found f≈1 best for acyclic and f≈4-8 best for cyclic queries", len(sets))
	m.write(h.cfg.Out)
	return nil
}

// table6Engines are the systems compared on cyclic queries. Virtuoso and
// Neo4j are closed-source; EXPERIMENTS.md documents the substitution.
var table6Engines = []engine.Algorithm{engine.LFTJ, engine.MS, engine.PSQL, engine.MonetDB, engine.GraphLab}

// Table6 regenerates the paper's Table 6: durations of the cyclic queries
// {3,4}-clique and 4-cycle across systems.
func (h *Harness) Table6() error {
	sets := h.cfg.datasets()
	queries := []*query.Query{query.Clique(3), query.Clique(4), query.Cycle(4)}
	m := newMatrix("Table 6: cyclic queries (seconds; - = timeout, mem = budget exceeded)", "query/engine", sets)
	for _, q := range queries {
		for _, alg := range table6Engines {
			r := m.addRow(q.Name + " " + string(alg))
			for j, name := range sets {
				s, err := h.site(name)
				if err != nil {
					return err
				}
				res := h.run(engine.Options{Algorithm: alg, Workers: h.cfg.Workers}, q, s.db)
				m.set(r, j, res.String())
			}
		}
	}
	m.note("lftj and ms are the paper's lb/lftj and lb/ms; graphlab supports cliques only")
	m.write(h.cfg.Out)
	return nil
}

// table7Selectivities maps the dataset tier to the paper's selectivity grid
// (§5.1: 8/80 for small sets, 10/100/1000 for the rest).
func (h *Harness) table7Selectivities() []int {
	if h.cfg.Scale == "small" {
		return []int{80, 8}
	}
	return []int{1000, 100, 10}
}

// Table7 regenerates the paper's Table 7: the acyclic and lollipop queries
// under varying selectivities across systems.
func (h *Harness) Table7() error {
	sets := h.cfg.datasets()
	sels := h.table7Selectivities()
	queries := []*query.Query{
		query.Path(3), query.Path(4),
		query.Tree(1), query.Tree(2), query.Comb(),
		query.Lollipop(2), query.Lollipop(3),
	}
	for _, q := range queries {
		engines := []engine.Algorithm{engine.LFTJ, engine.MS}
		if q.Name == "2-lollipop" || q.Name == "3-lollipop" {
			engines = append(engines, engine.Hybrid)
		} else {
			engines = append(engines, engine.Yannakakis)
		}
		engines = append(engines, engine.PSQL, engine.MonetDB)
		m := newMatrix(fmt.Sprintf("Table 7 (%s): seconds by selectivity", q.Name), "engine/sel", sets)
		for _, alg := range engines {
			for _, sel := range sels {
				r := m.addRow(fmt.Sprintf("%s s=%d", alg, sel))
				for j, name := range sets {
					s, err := h.site(name)
					if err != nil {
						return err
					}
					h.setSelectivity(s, sel)
					res := h.run(engine.Options{Algorithm: alg, Workers: h.cfg.Workers}, q, s.db)
					m.set(r, j, res.String())
				}
			}
		}
		m.note("hybrid is the paper's lb/hybrid (§4.12); yannakakis stands in for a classical acyclic-join yardstick")
		m.write(h.cfg.Out)
	}
	return nil
}
