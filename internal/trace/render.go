package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Render writes the spans as an indented timeline tree: children nested
// under their parents, siblings ordered by start time, each line carrying
// the stage, the duration, the offset from the trace's first span, and the
// span's attributes. Spans whose parent is absent from the set (e.g. the
// root's client-side parent when rendering a server-only fetch) print as
// roots, so a partial trace still renders rather than vanishing.
func Render(w io.Writer, spans []SpanRecord) {
	if len(spans) == 0 {
		fmt.Fprintln(w, "(no spans)")
		return
	}
	byID := make(map[SpanID]int, len(spans))
	for i, s := range spans {
		byID[s.ID] = i
	}
	children := make(map[SpanID][]int)
	var roots []int
	for i, s := range spans {
		if _, ok := byID[s.Parent]; s.Parent != 0 && ok {
			children[s.Parent] = append(children[s.Parent], i)
		} else {
			roots = append(roots, i)
		}
	}
	byStart := func(idx []int) {
		sort.Slice(idx, func(a, b int) bool { return spans[idx[a]].Start.Before(spans[idx[b]].Start) })
	}
	byStart(roots)
	for _, c := range children {
		byStart(c)
	}
	epoch := spans[roots[0]].Start
	for _, s := range spans {
		if s.Start.Before(epoch) {
			epoch = s.Start
		}
	}
	var walk func(i, depth int)
	walk = func(i, depth int) {
		s := spans[i]
		label := strings.Repeat("  ", depth) + s.Stage
		var attrs []string
		for _, a := range s.Attrs {
			if a.Str != "" {
				attrs = append(attrs, fmt.Sprintf("%s=%s", a.Key, a.Str))
			} else {
				attrs = append(attrs, fmt.Sprintf("%s=%d", a.Key, a.Val))
			}
		}
		line := fmt.Sprintf("%-44s %10s  +%-10s", label, round(s.Duration), round(s.Start.Sub(epoch)))
		if len(attrs) > 0 {
			line += "  " + strings.Join(attrs, " ")
		}
		fmt.Fprintln(w, strings.TrimRight(line, " "))
		for _, c := range children[s.ID] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
}

// round trims a duration to a readable precision for the timeline.
func round(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond)
	default:
		return d.Round(100 * time.Nanosecond)
	}
}
