package repro

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"
)

// durWorkload builds a deterministic sequence of store mutations. Each op
// appends exactly one WAL record on a durable store, so op i (0-based)
// carries LSN i+1 — the mapping the differential tests below rely on to
// replay an oracle to any recovered log position.
func durWorkload(seed int64, batches int) []func(*Store) error {
	rng := rand.New(rand.NewSource(seed))
	edge := func() []int64 { return []int64{rng.Int63n(48), rng.Int63n(48)} }
	ops := []func(*Store) error{
		func(s *Store) error { return s.DefineRelation("e", 2) },
		func(s *Store) error { return s.DefineRelation("label", 2) },
	}
	seedRows := make([][]int64, 40)
	for i := range seedRows {
		seedRows[i] = edge()
	}
	ops = append(ops, func(s *Store) error { return s.Load("e", seedRows) })
	for i := 0; i < batches; i++ {
		b := map[string][]Delta{}
		for j := 0; j < 4+rng.Intn(5); j++ {
			t := edge()
			b["e"] = append(b["e"], Insert(t...))
		}
		for j := 0; j < rng.Intn(4); j++ {
			t := edge()
			b["e"] = append(b["e"], Remove(t...))
		}
		if rng.Intn(2) == 0 {
			t := edge()
			b["label"] = append(b["label"], Insert(t...))
		}
		ops = append(ops, func(s *Store) error { return s.ApplyAll(b) })
	}
	return ops
}

// oracleAt replays the first n workload ops into a fresh in-memory store.
func oracleAt(t *testing.T, ops []func(*Store) error, n uint64) *Store {
	t.Helper()
	s := NewStore()
	for i := uint64(0); i < n; i++ {
		if err := ops[i](s); err != nil {
			t.Fatalf("oracle op %d: %v", i+1, err)
		}
	}
	return s
}

// storeState captures every relation's full sorted contents.
func storeState(t *testing.T, s *Store) map[string][][]int64 {
	t.Helper()
	out := map[string][][]int64{}
	for _, name := range s.Relations() {
		out[name] = relTuples(t, s, name)
	}
	return out
}

func diffStates(got, want map[string][][]int64) string {
	names := map[string]bool{}
	for n := range got {
		names[n] = true
	}
	for n := range want {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, n := range sorted {
		g, gok := got[n]
		w, wok := want[n]
		if gok != wok {
			return fmt.Sprintf("relation %q: present got=%v want=%v", n, gok, wok)
		}
		if len(g) != len(w) {
			return fmt.Sprintf("relation %q: %d tuples, want %d", n, len(g), len(w))
		}
		for i := range g {
			for k := range g[i] {
				if g[i][k] != w[i][k] {
					return fmt.Sprintf("relation %q tuple %d: %v, want %v", n, i, g[i], w[i])
				}
			}
		}
	}
	return ""
}

func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func newestSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments in %s (err %v)", dir, err)
	}
	sort.Strings(segs)
	return segs[len(segs)-1]
}

// TestOpenStoreRoundTrip pins the basic durability contract: a closed store
// reopens to exactly the state its writes built, every atomic batch costs one
// LSN, and a checkpoint makes the next open replay-free.
func TestOpenStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ops := durWorkload(11, 20)
	st, info, err := OpenStore(dir, DurabilityOptions{Sync: "always"})
	if err != nil {
		t.Fatal(err)
	}
	if info.LastLSN != 0 || info.SnapshotLSN != 0 {
		t.Fatalf("fresh dir recovered lsn=%d snap=%d, want 0/0", info.LastLSN, info.SnapshotLSN)
	}
	for i, op := range ops {
		if err := op(st); err != nil {
			t.Fatalf("op %d: %v", i+1, err)
		}
		// One op — even a multi-relation ApplyAll — is exactly one record.
		if got := st.LastLSN(); got != uint64(i+1) {
			t.Fatalf("after op %d: LastLSN = %d, want %d", i+1, got, i+1)
		}
	}
	want := storeState(t, st)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, info2, err := OpenStore(dir, DurabilityOptions{Sync: "always"})
	if err != nil {
		t.Fatal(err)
	}
	if info2.TailErr != nil {
		t.Fatalf("clean close reopened with tail error: %v", info2.TailErr)
	}
	if info2.LastLSN != uint64(len(ops)) || info2.Replayed != len(ops) {
		t.Fatalf("reopen lsn=%d replayed=%d, want %d/%d", info2.LastLSN, info2.Replayed, len(ops), len(ops))
	}
	if d := diffStates(storeState(t, st2), want); d != "" {
		t.Fatalf("reopened state: %s", d)
	}
	if err := st2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}

	st3, info3, err := OpenStore(dir, DurabilityOptions{Sync: "always"})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if info3.SnapshotLSN != uint64(len(ops)) || info3.Replayed != 0 {
		t.Fatalf("post-checkpoint open snap=%d replayed=%d, want %d/0", info3.SnapshotLSN, info3.Replayed, len(ops))
	}
	if d := diffStates(storeState(t, st3), want); d != "" {
		t.Fatalf("post-checkpoint state: %s", d)
	}
}

// crashDifferential is the crash-point recovery suite: build a durable store
// from a deterministic workload, then repeatedly truncate or bit-flip the
// newest log segment at random byte offsets, reopen, and require the
// recovered corpus to equal an in-memory oracle replayed to exactly the
// recovered LSN. A second clean reopen must then report no tail damage —
// recovery repaired the file it tolerated.
func crashDifferential(t *testing.T, withCheckpoint bool) {
	const batches = 24
	ops := durWorkload(29, batches)
	srcDir := t.TempDir()
	st, _, err := OpenStore(srcDir, DurabilityOptions{Sync: "always"})
	if err != nil {
		t.Fatal(err)
	}
	cpLSN := uint64(0)
	for i, op := range ops {
		if err := op(st); err != nil {
			t.Fatalf("op %d: %v", i+1, err)
		}
		if withCheckpoint && i == len(ops)/2 {
			if err := st.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			cpLSN = st.LastLSN()
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	seg := newestSegment(t, srcDir)
	segData, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	size := int64(len(segData))

	rng := rand.New(rand.NewSource(31))
	type trial struct {
		mode string // "truncate" or "flip"
		off  int64
	}
	trials := []trial{
		{"truncate", 0}, {"truncate", 1}, {"truncate", size - 1}, {"truncate", size},
		{"flip", 0}, {"flip", 3}, {"flip", size - 1},
	}
	for i := 0; i < 20; i++ {
		trials = append(trials, trial{"truncate", rng.Int63n(size + 1)})
		trials = append(trials, trial{"flip", rng.Int63n(size)})
	}

	for _, tr := range trials {
		t.Run(fmt.Sprintf("%s@%d", tr.mode, tr.off), func(t *testing.T) {
			dir := t.TempDir()
			copyDir(t, srcDir, dir)
			target := filepath.Join(dir, filepath.Base(seg))
			if tr.mode == "truncate" {
				if err := os.Truncate(target, tr.off); err != nil {
					t.Fatal(err)
				}
			} else {
				data := append([]byte(nil), segData...)
				data[tr.off] ^= 0x40
				if err := os.WriteFile(target, data, 0o644); err != nil {
					t.Fatal(err)
				}
			}

			rec, info, err := OpenStore(dir, DurabilityOptions{Sync: "always"})
			if err != nil {
				t.Fatalf("open after %s at %d: %v", tr.mode, tr.off, err)
			}
			if info.LastLSN > uint64(len(ops)) {
				t.Fatalf("recovered LSN %d beyond workload %d", info.LastLSN, len(ops))
			}
			if info.LastLSN < cpLSN {
				t.Fatalf("recovered LSN %d behind checkpoint %d", info.LastLSN, cpLSN)
			}
			oracle := oracleAt(t, ops, info.LastLSN)
			if d := diffStates(storeState(t, rec), storeState(t, oracle)); d != "" {
				t.Fatalf("after %s at %d (LSN %d): %s", tr.mode, tr.off, info.LastLSN, d)
			}
			// Query-level cross-check, when the schema survived far enough.
			if info.LastLSN >= 3 {
				ctx := context.Background()
				q, err := rec.ParseQuery("tri", "e(a, b), e(b, c), e(c, a)")
				if err != nil {
					t.Fatal(err)
				}
				got, err := rec.Count(ctx, q, Options{Workers: 1})
				if err != nil {
					t.Fatal(err)
				}
				oq, err := oracle.ParseQuery("tri", "e(a, b), e(b, c), e(c, a)")
				if err != nil {
					t.Fatal(err)
				}
				want, err := oracle.Count(ctx, oq, Options{Workers: 1})
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("triangle count %d, want %d", got, want)
				}
			}
			if err := rec.Close(); err != nil {
				t.Fatal(err)
			}

			// Recovery truncated the damage away; a second open is clean and
			// lands on the same LSN.
			rec2, info2, err := OpenStore(dir, DurabilityOptions{Sync: "always"})
			if err != nil {
				t.Fatalf("second open: %v", err)
			}
			defer rec2.Close()
			if info2.TailErr != nil {
				t.Fatalf("second open still torn: %v", info2.TailErr)
			}
			if info2.LastLSN != info.LastLSN {
				t.Fatalf("second open LSN %d, want %d", info2.LastLSN, info.LastLSN)
			}
		})
	}
}

func TestCrashPointDifferential(t *testing.T)           { crashDifferential(t, false) }
func TestCrashPointDifferentialCheckpoint(t *testing.T) { crashDifferential(t, true) }

// TestDurableWriteSurvivesCrash pins the acknowledgment contract directly:
// a write acknowledged under Sync "always" is on disk even if the process
// never closes the store (simulated here by reopening the directory while
// the original store object is simply abandoned).
func TestDurableWriteSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	st, _, err := OpenStore(dir, DurabilityOptions{Sync: "always"})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.DefineRelation("e", 2); err != nil {
		t.Fatal(err)
	}
	if err := st.Apply("e", [][]int64{{1, 2}, {2, 3}}, nil); err != nil {
		t.Fatal(err)
	}
	// No Close: the crash. The fsync already happened before Apply returned.
	st2, info, err := OpenStore(dir, DurabilityOptions{Sync: "always"})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if info.LastLSN != 2 {
		t.Fatalf("recovered LSN %d, want 2", info.LastLSN)
	}
	rows := relTuples(t, st2, "e")
	if len(rows) != 2 {
		t.Fatalf("recovered %d rows, want 2", len(rows))
	}
}

// BenchmarkApply compares the incremental write path with and without the
// write-ahead log: realistic batches (hundreds of edges) merged into a store
// already holding ~100k rows. The acceptance bar is the WAL'd path under the
// default group-commit policy staying within 2x of the in-memory path.
func BenchmarkApply(b *testing.B) {
	const (
		baseRows = 100_000
		domain   = 1 << 20
		insPer   = 256
		delPer   = 64
	)
	setup := func(b *testing.B, s *Store) {
		b.Helper()
		rng := rand.New(rand.NewSource(5))
		base := make([][]int64, baseRows)
		for i := range base {
			base[i] = []int64{rng.Int63n(domain), rng.Int63n(domain)}
		}
		if err := s.DefineRelation("e", 2); err != nil {
			b.Fatal(err)
		}
		if err := s.Load("e", base); err != nil {
			b.Fatal(err)
		}
	}
	bench := func(b *testing.B, s *Store) {
		b.Helper()
		setup(b, s)
		rng := rand.New(rand.NewSource(7))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ins := make([][]int64, insPer)
			for j := range ins {
				ins[j] = []int64{rng.Int63n(domain), rng.Int63n(domain)}
			}
			dels := make([][]int64, delPer)
			for j := range dels {
				dels[j] = []int64{rng.Int63n(domain), rng.Int63n(domain)}
			}
			if err := s.Apply("e", ins, dels); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("memory", func(b *testing.B) {
		bench(b, NewStore())
	})
	b.Run("wal-group", func(b *testing.B) {
		s, _, err := OpenStore(b.TempDir(), DurabilityOptions{Sync: "group"})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		bench(b, s)
	})
	b.Run("wal-none", func(b *testing.B) {
		s, _, err := OpenStore(b.TempDir(), DurabilityOptions{Sync: "none"})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		bench(b, s)
	})
}

// TestCheckpointBytesTrigger pins the size-triggered checkpoint: once writes
// push the un-pruned log past DurabilityOptions.CheckpointBytes, a background
// checkpoint must fire on its own — writing a snapshot and pruning the log
// back under the budget — with no Checkpoint call from the application, and
// recovery after it must replay only the records past the snapshot.
func TestCheckpointBytesTrigger(t *testing.T) {
	dir := t.TempDir()
	const budget = 16 << 10
	st, _, err := OpenStore(dir, DurabilityOptions{Sync: "none", CheckpointBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.DefineRelation("e", 2); err != nil {
		t.Fatal(err)
	}
	// Each batch appends one multi-kilobyte record; enough of them are
	// guaranteed to cross the budget no matter how the trigger interleaves.
	next := int64(0)
	writeBatch := func() {
		ins := make([][]int64, 128)
		for j := range ins {
			ins[j] = []int64{next % 997, next % 1013}
			next++
		}
		if err := st.Apply("e", ins, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		writeBatch()
	}

	snapCount := func() int {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), "snap-") {
				n++
			}
		}
		return n
	}
	// The checkpoint runs in the background; give it a bounded window to
	// land. Success = a snapshot exists and the log is pruned back under
	// the budget.
	deadline := time.Now().Add(10 * time.Second)
	for snapCount() == 0 || st.dur.UnprunedBytes() > budget {
		if time.Now().After(deadline) {
			t.Fatalf("no size-triggered checkpoint: %d snapshots, %d un-pruned bytes (budget %d)",
				snapCount(), st.dur.UnprunedBytes(), budget)
		}
		time.Sleep(10 * time.Millisecond)
	}

	want := storeState(t, st)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, info, err := OpenStore(dir, DurabilityOptions{Sync: "none"})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if info.SnapshotLSN == 0 {
		t.Fatal("recovery found no snapshot after the size-triggered checkpoint")
	}
	if uint64(info.Replayed) != info.LastLSN-info.SnapshotLSN {
		t.Fatalf("replayed %d records, want exactly the %d past the snapshot",
			info.Replayed, info.LastLSN-info.SnapshotLSN)
	}
	if d := diffStates(storeState(t, st2), want); d != "" {
		t.Fatalf("recovered state after size-triggered checkpoint: %s", d)
	}
}

// TestCheckpointBytesDisabled pins the default: without CheckpointBytes the
// same write volume leaves the log un-checkpointed.
func TestCheckpointBytesDisabled(t *testing.T) {
	dir := t.TempDir()
	st, _, err := OpenStore(dir, DurabilityOptions{Sync: "none"})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.DefineRelation("e", 2); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 64; i++ {
		ins := make([][]int64, 128)
		for j := range ins {
			ins[j] = []int64{(i*128 + int64(j)) % 997, i % 1013}
		}
		if err := st.Apply("e", ins, nil); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "snap-") {
			t.Fatalf("spontaneous checkpoint without CheckpointBytes: %s", e.Name())
		}
	}
	if st.dur.UnprunedBytes() < 16<<10 {
		t.Fatalf("write volume too small to have crossed the budget: %d bytes", st.dur.UnprunedBytes())
	}
}
