#!/usr/bin/env bash
# Load smoke (the CI `load-smoke` job, runnable locally as `make load-smoke`):
# boot graphjoind with the metrics endpoint and an admission budget, drive it
# with graphjoinload's mixed workload, and leave the one-line JSON summary in
# load-smoke.json for scripts/loadgate.sh to gate. The harness itself fails
# the run when its client-side request ledger disagrees with the server's
# requests_total delta, so a green smoke also proves the metrics pipeline
# counts exactly.
#
# With LOADSMOKE_CLUSTER=N the workload is driven through graphjoinrouter
# fronting N graphjoind shards instead of a single server. The ledger==delta
# cross-check then runs against the router's own frontend metrics: every
# harness request is exactly one request at the coordinator no matter how
# wide it fans out behind it.
#
# Tunables (environment): LOADSMOKE_CONNS (default 4), LOADSMOKE_DURATION
# (default 5s), LOADSMOKE_CLUSTER (default empty = single server).
set -euo pipefail

cd "$(dirname "$0")/.."
bin="$(mktemp -d)"
server_pid=""
cluster_pids=()
cleanup() {
  status=$?
  [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
  for pid in "${cluster_pids[@]}"; do kill "$pid" 2>/dev/null || true; done
  if [ "$status" -ne 0 ]; then
    for log in "$bin"/*.log; do
      [ -f "$log" ] || continue
      echo "loadsmoke: ---- $(basename "$log") ----" >&2
      cat "$log" >&2
    done
  fi
  rm -rf "$bin"
}
trap cleanup EXIT

go build -o "$bin/graphjoind" ./cmd/graphjoind
go build -o "$bin/graphjoinload" ./cmd/graphjoinload

# scrape_banner <log> <pid>: wait for the wire address ("... on ADDR") in a
# server log with a deadline, not a fixed retry count — slow CI runners boot
# slower than laptops. Sets $addr.
scrape_banner() {
  local log="$1" pid="$2"
  addr=""
  local deadline=$(( $(date +%s) + 30 ))
  while [ "$(date +%s)" -lt "$deadline" ]; do
    addr="$(sed -n 's/.* on \(127\.0\.0\.1:[0-9]*\)$/\1/p' "$log")"
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "loadsmoke: server died during boot" >&2; exit 1; }
    sleep 0.1
  done
  [ -n "$addr" ] || { echo "loadsmoke: server never became ready" >&2; exit 1; }
}

# scrape_metrics <log> <pid>: same for the metrics sidecar banner. Sets
# $metrics_addr.
scrape_metrics() {
  local log="$1" pid="$2"
  metrics_addr=""
  local deadline=$(( $(date +%s) + 30 ))
  while [ "$(date +%s)" -lt "$deadline" ]; do
    metrics_addr="$(sed -n 's|.*metrics on http://\(127\.0\.0\.1:[0-9]*\)/metrics$|\1|p' "$log")"
    [ -n "$metrics_addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "loadsmoke: server died during boot" >&2; exit 1; }
    sleep 0.1
  done
  [ -n "$metrics_addr" ] || { echo "loadsmoke: metrics endpoint never became ready" >&2; exit 1; }
}

if [ -n "${LOADSMOKE_CLUSTER:-}" ]; then
  # Routed mode: N shards, one coordinator. The shards run without
  # admission budgets (the coordinator is the tested surface); the router
  # exposes the metrics endpoint the cross-check scrapes.
  go build -o "$bin/graphjoinrouter" ./cmd/graphjoinrouter
  shard_addrs=()
  for i in $(seq 1 "$LOADSMOKE_CLUSTER"); do
    "$bin/graphjoind" -listen 127.0.0.1:0 > "$bin/shard$i.log" 2>&1 &
    cluster_pids+=($!)
    scrape_banner "$bin/shard$i.log" "${cluster_pids[-1]}"
    shard_addrs+=("$addr")
  done
  "$bin/graphjoinrouter" -listen 127.0.0.1:0 -metrics-addr 127.0.0.1:0 \
    -hosts "$(IFS=,; echo "${shard_addrs[*]}")" > "$bin/server.log" 2>&1 &
  server_pid=$!
else
  "$bin/graphjoind" -listen 127.0.0.1:0 -metrics-addr 127.0.0.1:0 \
    -max-inflight 64 -max-queued 256 > "$bin/server.log" 2>&1 &
  server_pid=$!
fi
scrape_banner "$bin/server.log" "$server_pid"
serve_addr="$addr"
scrape_metrics "$bin/server.log" "$server_pid"

"$bin/graphjoinload" \
  -addr "$serve_addr" \
  -metrics-url "http://$metrics_addr/metrics" \
  -conns "${LOADSMOKE_CONNS:-4}" \
  -duration "${LOADSMOKE_DURATION:-5s}" \
  | tee load-smoke.json

kill -TERM "$server_pid"
wait "$server_pid" || { echo "loadsmoke: server exited non-zero" >&2; exit 1; }
server_pid=""
for pid in "${cluster_pids[@]}"; do
  kill -TERM "$pid" 2>/dev/null || true
  wait "$pid" || { echo "loadsmoke: cluster member exited non-zero" >&2; exit 1; }
done
cluster_pids=()
echo "loadsmoke: OK"
