package minesweeper

import (
	"encoding/binary"

	"repro/internal/query"
)

// counterTrace, when non-nil, observes counter events (tests only).
var counterTrace func(ev string, args ...interface{})

// counter implements count-mode subtree reuse, our sound realization of
// #Minesweeper's Idea 8 (micro message passing); see DESIGN.md §4. The
// verified-output count of the subtree rooted at a binding (t_0..t_d)
// depends only on d and the values of t at
//
//	ctx(d) = {d} ∪ ⋃ { vars(R) ∩ GAO[0..d] : R has a variable after d }
//
// provided the atoms fully contained in GAO[0..d] are satisfied. The counter
// tracks per-depth accumulators while the frontier sweeps the output space
// in DFS (lexicographic) order, memoizes each exhausted subtree's count
// under its ctx key, and on a memo hit skips the whole subtree by advancing
// the frontier — the same computation reuse that makes the paper's
// low-selectivity path queries fast (Figures 3–5).
type counter struct {
	ex *exec
	n  int
	// ctxPos[d] are the sorted positions determining subtree counts at
	// depth d; contained[d] are the atoms fully inside GAO[0..d] that must
	// be re-verified before a memoized count transfers to a new prefix.
	ctxPos    [][]int
	contained [][]int
	memo      map[string]int64
	acc       []int64
	open      []bool
	prev      []int64
	prevOK    bool
	key       []byte
}

func newCounter(ex *exec, q *query.Query, gao []string) *counter {
	n := len(gao)
	c := &counter{
		ex:        ex,
		n:         n,
		ctxPos:    make([][]int, n),
		contained: make([][]int, n),
		memo:      make(map[string]int64),
		acc:       make([]int64, n),
		open:      make([]bool, n),
		prev:      make([]int64, n),
	}
	pos := make(map[string]int, n)
	for i, v := range gao {
		pos[v] = i
	}
	// Atom variable positions and max position.
	atomPos := make([][]int, len(q.Atoms))
	atomMax := make([]int, len(q.Atoms))
	for i, a := range q.Atoms {
		for _, v := range a.Vars {
			atomPos[i] = append(atomPos[i], pos[v])
			if pos[v] > atomMax[i] {
				atomMax[i] = pos[v]
			}
		}
	}
	for d := 0; d < n; d++ {
		in := make([]bool, d+1)
		in[d] = true
		for i := range q.Atoms {
			if atomMax[i] > d {
				for _, p := range atomPos[i] {
					if p <= d {
						in[p] = true
					}
				}
			} else {
				c.contained[d] = append(c.contained[d], i)
			}
		}
		for p := 0; p <= d; p++ {
			if in[p] {
				c.ctxPos[d] = append(c.ctxPos[d], p)
			}
		}
	}
	return c
}

func (c *counter) keyFor(d int, t []int64) string {
	b := c.key[:0]
	b = append(b, byte(d))
	for _, p := range c.ctxPos[d] {
		b = binary.LittleEndian.AppendUint64(b, uint64(t[p]))
	}
	c.key = b
	return string(b)
}

// containedSatisfied reports whether every atom fully contained in
// GAO[0..d] holds on tuple t (probes are memoized by the engine).
func (c *counter) containedSatisfied(d int, t []int64) bool {
	for _, i := range c.contained[d] {
		if _, found := c.ex.probeAtom(i, t); !found {
			return false
		}
	}
	return true
}

// visit is called for every free tuple before probing. It closes subtrees
// the frontier has moved past, then attempts a memo hit at the shallowest
// newly opened depth. On a hit it adds the memoized count, advances the
// frontier past the subtree, and reports reused == true.
func (c *counter) visit(t []int64) (reused bool, err error) {
	first := 0
	if c.prevOK {
		for first < c.n && c.prev[first] == t[first] {
			first++
		}
		c.flush(first)
	}
	if counterTrace != nil {
		counterTrace("visit", first, append([]int64(nil), t...), append([]bool(nil), c.open...), append([]int64(nil), c.acc...))
	}
	copy(c.prev, t)
	c.prevOK = true
	// Try to reuse a memoized subtree at the shallowest reusable depth.
	for d := first; d <= c.n-2; d++ {
		val, ok := c.memo[c.keyFor(d, t)]
		if !ok {
			continue
		}
		if !c.containedSatisfied(d, t) {
			// Some prefix-contained atom fails here; the normal probe loop
			// will discover the gap and advance. Deeper memo hits would need
			// the same (growing) verification, so stop trying — but the
			// newly opened depths must still be marked open below, or their
			// accumulated counts would be dropped at the next flush.
			break
		}
		if counterTrace != nil {
			counterTrace("reuse", d, append([]int64(nil), t...), val)
		}
		// Close the subtree immediately with the reused count; the shallower
		// depths opened by this tuple stay open.
		c.ex.stats.ReuseHits++
		c.ex.total += val
		c.acc[d] += val
		if d > 0 {
			c.acc[d-1] += c.acc[d]
		}
		c.acc[d] = 0
		for i := first; i < d; i++ {
			c.open[i] = true
		}
		for i := d; i < c.n; i++ {
			c.open[i] = false
		}
		adv := make([]int64, c.n)
		copy(adv, t)
		adv[d]++
		for i := d + 1; i < c.n; i++ {
			adv[i] = -1
		}
		c.ex.cds.SetFrontier(adv)
		return true, nil
	}
	for d := first; d < c.n; d++ {
		c.open[d] = true
	}
	return false, nil
}

// onOutput credits the reported output to the deepest open subtree.
func (c *counter) onOutput() {
	if counterTrace != nil {
		counterTrace("output", append([]int64(nil), c.prev...))
	}
	c.acc[c.n-1]++
}

// flush closes every open subtree at depth >= first against the previous
// tuple: the count rolls up into the parent accumulator and, when the
// prefix-contained atoms were satisfied, is memoized under the subtree's
// ctx key.
func (c *counter) flush(first int) {
	for d := c.n - 1; d >= first; d-- {
		if !c.open[d] {
			continue
		}
		c.open[d] = false
		if d <= c.n-2 && c.containedSatisfied(d, c.prev) {
			if counterTrace != nil {
				counterTrace("store", d, append([]int64(nil), c.prev...), c.acc[d])
			}
			c.ex.stats.MemoStores++
			c.memo[c.keyFor(d, c.prev)] = c.acc[d]
		}
		if d > 0 {
			c.acc[d-1] += c.acc[d]
		}
		c.acc[d] = 0
	}
}

// finish closes any remaining open subtrees (counts are already in
// ex.total; this only settles the accumulators).
func (c *counter) finish() {
	if c.prevOK {
		c.flush(0)
	}
}
