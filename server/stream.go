package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/trace"
	"repro/internal/wire"
)

// stream is the server side of one flow-controlled Rows stream. The client
// proposes an initial credit (in chunks) with its Rows request and tops it up
// with Credit frames as it consumes; the producer takes one credit per chunk
// and blocks when the client has stopped granting — so a slow consumer
// bounds the server's buffering at credit × chunk rows, per stream. A client
// Cancel frame (or a dropped connection) wakes a blocked producer and stops
// the query: the engine's emit callback returns false and execution ends
// mid-join, not after materializing the remainder.
type stream struct {
	mu        sync.Mutex
	credit    int
	cancelled bool
	// notify wakes a producer blocked in acquire; buffered so add/cancel
	// never block the connection's read loop.
	notify chan struct{}
}

func newStream(credit int) *stream {
	return &stream{credit: credit, notify: make(chan struct{}, 1)}
}

func (st *stream) signal() {
	select {
	case st.notify <- struct{}{}:
	default:
	}
}

// add grants n more chunks of credit.
func (st *stream) add(n int) {
	st.mu.Lock()
	st.credit += n
	st.mu.Unlock()
	st.signal()
}

// cancelClient marks the stream stopped by the client.
func (st *stream) cancelClient() {
	st.mu.Lock()
	st.cancelled = true
	st.mu.Unlock()
	st.signal()
}

// acquire takes one chunk of credit, blocking until the client grants more,
// cancels, or the request context ends. It returns how long the producer was
// blocked waiting (zero on the uncontended fast path), feeding the
// credit-stall metric without timing the unblocked case.
func (st *stream) acquire(ctx context.Context) (time.Duration, error) {
	var blockedAt time.Time
	for {
		st.mu.Lock()
		if st.cancelled {
			st.mu.Unlock()
			return stalledFor(blockedAt), errStreamCancelled
		}
		if st.credit > 0 {
			st.credit--
			st.mu.Unlock()
			return stalledFor(blockedAt), nil
		}
		st.mu.Unlock()
		if blockedAt.IsZero() {
			blockedAt = time.Now()
		}
		select {
		case <-st.notify:
		case <-ctx.Done():
			return stalledFor(blockedAt), ctx.Err()
		}
	}
}

// stalledFor converts the blocked-at mark into a stall duration.
func stalledFor(blockedAt time.Time) time.Duration {
	if blockedAt.IsZero() {
		return 0
	}
	return time.Since(blockedAt)
}

// handleRows serves one streaming Rows request: execute the prepared query
// (optionally inside a transaction snapshot), batch result tuples into
// chunks, and ship each chunk under flow control. The stream always
// terminates with a RowsEnd frame carrying the delivered-row count and an
// error code ("" for a complete stream, "cancelled" for a client stop).
func (c *conn) handleRows(ctx context.Context, reqID uint64, body []byte) error {
	d := wire.NewDec(body)
	handle := d.U64()
	txnID := d.U64()
	chunkRows := d.Int()
	credit := d.Int()
	if d.Err() != nil {
		return decodeErr(d)
	}
	if chunkRows <= 0 {
		chunkRows = defaultChunkRows
	} else if chunkRows > maxChunkRows {
		chunkRows = maxChunkRows
	}
	if credit <= 0 {
		credit = defaultCredit
	} else if credit > maxCredit {
		credit = maxCredit
	}
	p, err := c.lookupPrepared(handle)
	if err != nil {
		return err
	}
	t, err := c.lookupTxn(txnID)
	if err != nil {
		return err
	}
	fingerprintSpan(ctx, p)
	// The streaming span wraps execution and delivery; credit stalls (the
	// producer blocked waiting for the client to grant more chunks) are
	// summed into it, separating "the engine was slow" from "the consumer
	// was slow" in one glance at the trace.
	ctx, span := trace.Start(ctx, "rows.stream")
	var stallTotal time.Duration

	st := newStream(credit)
	c.mu.Lock()
	c.streams[reqID] = st
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.streams, reqID)
		c.mu.Unlock()
	}()

	var (
		pending   [][]int64
		delivered int64
		stopErr   error // credit acquisition / frame write failure
	)
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		stall, err := st.acquire(ctx)
		c.sm.stalled(stall)
		stallTotal += stall
		if err != nil {
			return err
		}
		var e wire.Enc
		e.Tuples(pending)
		if err := c.send(wire.TRowChunk, reqID, e.Bytes()); err != nil {
			return err
		}
		delivered += int64(len(pending))
		pending = pending[:0]
		return nil
	}
	emit := func(tuple []int64) bool {
		pending = append(pending, append([]int64(nil), tuple...))
		if len(pending) >= chunkRows {
			if err := flush(); err != nil {
				stopErr = err
				return false
			}
		}
		return true
	}
	var runErr error
	if t != nil {
		runErr = t.Enumerate(ctx, p, emit)
	} else {
		runErr = p.Enumerate(ctx, emit)
	}
	if runErr == nil && stopErr == nil {
		stopErr = flush() // final partial chunk
	}
	if span != nil {
		span.SetInt("delivered", delivered)
		span.SetInt("credit_stall_ns", int64(stallTotal))
		span.End()
	}

	code, msg := "", ""
	switch {
	case runErr != nil:
		code, msg = wire.ErrorCode(runErr), runErr.Error()
	case errors.Is(stopErr, errStreamCancelled):
		code, msg = wire.CodeCancelled, "stream stopped by client"
	case stopErr != nil:
		code, msg = wire.ErrorCode(stopErr), stopErr.Error()
	}
	var e wire.Enc
	e.I64(delivered)
	e.Str(code)
	e.Str(msg)
	return c.send(wire.TRowsEnd, reqID, e.Bytes())
}
