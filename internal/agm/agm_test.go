package agm

import (
	"math"
	"testing"

	"repro/internal/query"
)

func TestTriangleBound(t *testing.T) {
	// AGM bound for the triangle with |R|=|S|=|T|=N is N^{3/2}.
	q := query.Clique(3)
	n := 10000
	res, err := Compute(q, []int{n, n, n})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(float64(n), 1.5)
	if math.Abs(res.Bound()-want)/want > 1e-6 {
		t.Errorf("Bound = %v, want %v", res.Bound(), want)
	}
	for i, x := range res.Cover {
		if math.Abs(x-0.5) > 1e-6 {
			t.Errorf("Cover[%d] = %v, want 0.5", i, x)
		}
	}
}

func TestFourCliqueBound(t *testing.T) {
	// 4-clique with 6 equal edges of size N: optimal fractional cover has
	// total weight 2 (e.g. two disjoint perfect matchings ... weight 1/3 on
	// each of 6 edges gives Σ=2), bound N^2.
	q := query.Clique(4)
	n := 1000
	sizes := []int{n, n, n, n, n, n}
	res, err := Compute(q, sizes)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * math.Log2(float64(n))
	if math.Abs(res.Log2Bound-want) > 1e-6 {
		t.Errorf("Log2Bound = %v, want %v", res.Log2Bound, want)
	}
}

func TestPathBoundUsesEveryEdge(t *testing.T) {
	// 3-path: v1(a), v2(d), edge(a,b), edge(b,c), edge(c,d). With tiny
	// samples the cover leans on them: a covered by v1 (size s), d by v2,
	// b and c by the middle edge.
	q := query.Path(3)
	res, err := Compute(q, []int{4, 4, 1000, 1000, 1000})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log2(4) + math.Log2(4) + math.Log2(1000)
	if math.Abs(res.Log2Bound-want) > 1e-6 {
		t.Errorf("Log2Bound = %v, want %v (v1 + v2 + middle edge)", res.Log2Bound, want)
	}
}

func TestEmptyRelationTreatedAsUnit(t *testing.T) {
	q := query.Clique(3)
	res, err := Compute(q, []int{0, 10, 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Log2Bound < 0 {
		t.Errorf("Log2Bound = %v, want >= 0", res.Log2Bound)
	}
}

func TestSizeMismatch(t *testing.T) {
	if _, err := Compute(query.Clique(3), []int{1, 2}); err == nil {
		t.Error("expected size/atom mismatch error")
	}
}

// TestBoundDominatesOutputs: the AGM bound must upper-bound the true output
// size; check on a concrete full bipartite-ish instance for the triangle.
func TestBoundDominatesTriangleOutput(t *testing.T) {
	// Complete graph K_m: edge relation size m(m-1) (both orientations
	// folded to u<v gives m(m-1)/2 per atom); triangles = C(m,3).
	m := 20
	size := m * (m - 1) / 2
	res, err := Compute(query.Clique(3), []int{size, size, size})
	if err != nil {
		t.Fatal(err)
	}
	triangles := float64(m * (m - 1) * (m - 2) / 6)
	if res.Bound() < triangles {
		t.Errorf("AGM bound %v below true output %v", res.Bound(), triangles)
	}
}
