package hybrid

import (
	"context"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/lftj"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/testutil"
)

func count(t *testing.T, e core.Engine, q *query.Query, db *core.DB) int64 {
	t.Helper()
	n, err := e.Count(context.Background(), q, db)
	if err != nil {
		t.Fatalf("%s Count(%s): %v", e.Name(), q.Name, err)
	}
	return n
}

func TestSplitLollipop(t *testing.T) {
	sp, err := splitQuery(query.Lollipop(2))
	if err != nil {
		t.Fatal(err)
	}
	if sp.attachment != "c" {
		t.Errorf("attachment = %q, want c", sp.attachment)
	}
	// Path part: v1(a), edge(a,b), edge(b,c), edge(c,d), edge(d,e) — the
	// greedy prefix stays acyclic until the closing triangle edge.
	if len(sp.pathAtoms)+len(sp.cliqueAtoms) != 6 {
		t.Errorf("split loses atoms: %d + %d", len(sp.pathAtoms), len(sp.cliqueAtoms))
	}
	sp3, err := splitQuery(query.Lollipop(3))
	if err != nil {
		t.Fatal(err)
	}
	if sp3.attachment != "d" {
		t.Errorf("3-lollipop attachment = %q, want d", sp3.attachment)
	}
}

func TestSplitRejects(t *testing.T) {
	if _, err := splitQuery(query.Path(3)); err == nil {
		t.Error("fully acyclic query should be rejected")
	}
	if _, err := splitQuery(query.New("empty")); err == nil {
		t.Error("empty query should be rejected")
	}
	// 4-clique: greedy prefix is the a-star; remainder shares 3 variables.
	if _, err := splitQuery(query.Clique(4)); err == nil {
		t.Error("4-clique should be rejected (multi-variable interface)")
	}
}

func TestDifferentialVsLFTJ(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		db := testutil.RandomGraphDB(rng, 4+rng.Intn(10), 2+rng.Intn(30), 2)
		for _, q := range []*query.Query{query.Lollipop(2), query.Lollipop(3)} {
			want := count(t, lftj.Engine{}, q, db)
			if got := count(t, Engine{}, q, db); got != want {
				t.Errorf("trial %d %s: hybrid = %d, lftj = %d", trial, q.Name, got, want)
			}
		}
	}
}

func TestEnumerateMatchesLFTJ(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := testutil.RandomGraphDB(rng, 8, 24, 2)
	q := query.Lollipop(2)
	var want, got [][]int64
	if err := (lftj.Engine{}).Enumerate(context.Background(), q, db, collect(&want)); err != nil {
		t.Fatal(err)
	}
	if err := (Engine{}).Enumerate(context.Background(), q, db, collect(&got)); err != nil {
		t.Fatal(err)
	}
	sortTuples(want)
	sortTuples(got)
	if len(want) != len(got) {
		t.Fatalf("hybrid enumerated %d, lftj %d", len(got), len(want))
	}
	for i := range want {
		if relation.CompareTuples(want[i], got[i]) != 0 {
			t.Fatalf("tuple %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func collect(out *[][]int64) func([]int64) bool {
	return func(tu []int64) bool {
		*out = append(*out, append([]int64(nil), tu...))
		return true
	}
}

func sortTuples(ts [][]int64) {
	sort.Slice(ts, func(i, j int) bool { return relation.CompareTuples(ts[i], ts[j]) < 0 })
}

func TestCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := testutil.RandomGraphDB(rng, 150, 3000, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (Engine{}).Count(ctx, query.Lollipop(2), db); err == nil {
		t.Error("cancelled context should surface an error")
	}
}
