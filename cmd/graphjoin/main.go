// Command graphjoin runs any graph-pattern query on any dataset with any
// engine — the reproduction's equivalent of a database client:
//
//	graphjoin -dataset ego-Facebook -query 3-clique -engine lftj
//	graphjoin -dataset ca-GrQc -engine ms -selectivity 10 \
//	    -datalog 'v1(a), v2(d), edge(a,b), edge(b,c), edge(c,d)'
//	graphjoin -nodes 10000 -edges 50000 -model hk -query 4-clique -engine graphlab
//	graphjoin -dataset ca-GrQc -query 3-path -engine ms -explain -stats -repeat 100
//
// Beyond the benchmark graph schema, -relation/-load define and fill an
// arbitrary schema (a general Store): directed and edge-labeled graphs are
// ordinary multi-relation schemas. Relations are declared name:arity and
// loaded from whitespace- or comma-separated integer rows:
//
//	graphjoin -relation follows:2 -relation likes:2 \
//	    -load follows=follows.tsv -load likes=likes.tsv \
//	    -datalog 'follows(a,b), follows(b,c), likes(c,a)'
//
// With -connect the same query flags run against a remote graphjoind server
// instead of an in-process store — the query executes server-side against
// the server's shared indexes:
//
//	graphjoin -connect db-host:7474 -query 3-clique -engine ms
//	graphjoin -connect db-host:7474 -store social \
//	    -datalog 'follows(a,b), follows(b,c)'
//	graphjoin -connect db-host:7474 -relation e:2 -load e=edges.tsv \
//	    -datalog 'e(a,b), e(b,c)'
//
// The query is prepared once (validated, GAO fixed, indexes bound) and then
// executed -repeat times; -explain prints the compiled plan and -stats the
// unified execution counters.
//
// Named queries: 3-clique, 4-clique, 4-cycle, 3-path, 4-path, 1-tree,
// 2-tree, 2-comb, 2-lollipop, 3-lollipop.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro"
	"repro/client"
	"repro/internal/cli"
	"repro/internal/metrics"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "graphjoin: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var relations, loads cli.ListFlag
	var (
		connect     = flag.String("connect", "", "address of a graphjoind server; runs the query remotely")
		storeName   = flag.String("store", "", "named store on a multi-tenant server (with -connect; default \"default\")")
		datasetName = flag.String("dataset", "", "catalog dataset name (see DESIGN.md)")
		model       = flag.String("model", "ba", "generator when -dataset empty: er | ba | hk")
		nodes       = flag.Int("nodes", 10000, "generated graph nodes")
		edges       = flag.Int("edges", 50000, "generated graph edges")
		seed        = flag.Int64("seed", 1, "generator seed")
		queryName   = flag.String("query", "3-clique", "named benchmark query")
		datalog     = flag.String("datalog", "", "inline Datalog query body (overrides -query)")
		engineName  = flag.String("engine", "lftj", "lftj | ms | hybrid | psql | monetdb | yannakakis | graphlab")
		backendName = flag.String("backend", "", "index backend for lftj/ms: flat | csr | csr-sharded (empty = csr)")
		selectivity = flag.Int("selectivity", 10, "node-sample selectivity s (samples pick nodes w.p. 1/s)")
		timeout     = flag.Duration("timeout", 30*time.Minute, "execution timeout (paper protocol: 30m)")
		workers     = flag.Int("workers", 0, "worker pool size (0 = all cores)")
		showAGM     = flag.Bool("agm", false, "print the AGM output-size bound (local modes only)")
		explain     = flag.Bool("explain", false, "print the compiled plan (GAO, per-atom index, AGM bound)")
		showStats   = flag.Bool("stats", false, "print the unified execution counters after the run")
		repeat      = flag.Int("repeat", 1, "executions of the prepared query (plan compiled once)")
		showTrace   = flag.Bool("trace", false, "with -connect, trace the query end-to-end and print the span-tree timeline")
	)
	flag.Var(&relations, "relation", "define a store relation as name:arity (repeatable; switches to the general schema mode)")
	flag.Var(&loads, "load", "load a defined relation from a file of integer rows, as name=path (repeatable)")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	// rejectGraphFlags refuses the benchmark-graph flags in modes where they
	// have no meaning, instead of silently dropping them.
	rejectGraphFlags := func(mode string) error {
		var bad error
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "dataset", "model", "nodes", "edges", "seed", "selectivity":
				bad = fmt.Errorf("-%s applies to the benchmark graph mode and conflicts with %s", f.Name, mode)
			}
		})
		return bad
	}

	if *storeName != "" && *connect == "" {
		return fmt.Errorf("-store selects a tenant on a server and requires -connect")
	}
	if *showTrace && *connect == "" {
		return fmt.Errorf("-trace follows a query through a server and requires -connect")
	}

	var qr repro.Querier
	var store *repro.Store   // non-nil in the local modes (AGM bound)
	var remote *client.Store // non-nil with -connect (server metrics)
	var desc string
	switch {
	case *connect != "":
		if err := rejectGraphFlags("-connect"); err != nil {
			return err
		}
		// The -timeout budget also bounds every schema/setup round trip, so
		// an unresponsive server cannot hang the CLI.
		opts := []client.Option{client.WithRequestTimeout(*timeout)}
		if *storeName != "" {
			opts = append(opts, client.WithStore(*storeName))
		}
		c, err := client.Dial(ctx, *connect, opts...)
		if err != nil {
			return err
		}
		defer c.Close()
		if err := cli.SetupSchema(c, relations, loads); err != nil {
			return err
		}
		qr, remote = c, c
		desc = fmt.Sprintf("remote %s: %s", *connect, cli.DescribeSchema(ctx, c))
	case len(relations) > 0:
		if *datalog == "" {
			return fmt.Errorf("-relation requires a -datalog query over the defined schema")
		}
		if err := rejectGraphFlags("-relation"); err != nil {
			return err
		}
		if err := rejectQueryFlag(); err != nil {
			return err
		}
		store = repro.NewStore()
		qr = repro.Local(store)
		if err := cli.SetupSchema(qr, relations, loads); err != nil {
			return err
		}
		desc = "store: " + cli.DescribeSchema(ctx, qr)
	default:
		if len(loads) > 0 {
			return fmt.Errorf("-load requires the relations to be defined with -relation (or a -connect server that defines them)")
		}
		g, err := cli.BuildGraph(*datasetName, *model, *nodes, *edges, *seed)
		if err != nil {
			return err
		}
		g.SetSelectivity(*selectivity, *seed)
		store = g.Store()
		qr = repro.Local(store)
		desc = fmt.Sprintf("graph: %d nodes, %d edges", g.Nodes(), g.Edges())
	}

	var q *repro.Query
	var err error
	if *datalog != "" {
		q, err = qr.ParseQuery("adhoc", *datalog)
		if err != nil {
			var se *repro.SyntaxError
			if errors.As(err, &se) {
				loc := fmt.Sprintf("offset %d", se.Offset)
				if se.Atom != "" {
					loc = fmt.Sprintf("atom %q, offset %d", se.Atom, se.Offset)
				}
				return fmt.Errorf("-datalog %q: syntax error at %s: %s", *datalog, loc, se.Msg)
			}
			return err
		}
	} else {
		q, err = cli.NamedQuery(*queryName)
		if err != nil {
			return err
		}
	}

	fmt.Printf("%s; query %s: %s\n", desc, q.Name, q)
	if *showAGM && store != nil {
		if bound, err := store.AGMBound(q); err == nil {
			fmt.Printf("AGM bound: %.3g\n", bound)
		}
	}

	// Prepare once: the query is validated, the GAO fixed, and the
	// GAO-consistent indexes bound here (server-side under -connect); the
	// executions below are pure.
	prepStart := time.Now()
	p, err := qr.Prepare(q, repro.Options{
		Algorithm: repro.Algorithm(*engineName),
		Workers:   *workers,
		Backend:   repro.Backend(*backendName),
	})
	if err != nil {
		return fmt.Errorf("%s: %w", *engineName, err)
	}
	defer p.Close()
	prepElapsed := time.Since(prepStart)
	if *explain {
		switch pp := p.(type) {
		case *repro.Prepared:
			fmt.Print(pp.Explain())
		case *client.Prepared:
			text, err := pp.Explain(ctx)
			if err != nil {
				return fmt.Errorf("explain: %w", err)
			}
			fmt.Print(text)
		}
	}

	// Under -trace the executions run inside a client root span: every Count
	// request carries (trace id, root span id) on the wire, so the server —
	// and, through a router, every shard — records its spans under the same
	// trace, fetched and stitched after the run.
	runCtx := ctx
	var tr *trace.Trace
	var root *trace.Span
	if *showTrace {
		tr = trace.New(trace.NewID())
		root = tr.StartSpan(0, "client.query")
		root.SetStr("query", q.String())
		runCtx = trace.NewContext(ctx, root)
	}

	start := time.Now()
	var n int64
	for i := 0; i < max(*repeat, 1); i++ {
		n, err = p.Count(runCtx)
		if err != nil {
			return fmt.Errorf("%s: %w", *engineName, err)
		}
	}
	elapsed := time.Since(start)
	if root != nil {
		root.End()
	}
	if *repeat > 1 {
		fmt.Printf("%s: %d results; %d runs in %v (%v/run, prepared in %v)\n",
			*engineName, n, *repeat, elapsed.Round(time.Millisecond),
			(elapsed / time.Duration(*repeat)).Round(time.Microsecond), prepElapsed.Round(time.Microsecond))
	} else {
		fmt.Printf("%s: %d results in %v (prepared in %v)\n",
			*engineName, n, elapsed.Round(time.Millisecond), prepElapsed.Round(time.Microsecond))
	}
	if tr != nil {
		spans := tr.Spans()
		remoteSpans, err := remote.Trace(ctx, uint64(tr.ID()))
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphjoin: trace fetch: %v\n", err)
		} else {
			spans = append(spans, remoteSpans...)
		}
		fmt.Printf("trace %016x:\n", uint64(tr.ID()))
		trace.Render(os.Stdout, spans)
	}
	if *showStats {
		st := p.Stats()
		fmt.Printf("stats: executions=%d outputs=%d seeks=%d probes=%d memoHits=%d constraints=%d freeTupleSteps=%d reuseHits=%d memoStores=%d\n",
			st.Executions, st.Outputs, st.Seeks, st.Probes, st.ProbeMemoHits, st.Constraints, st.FreeTupleSteps, st.ReuseHits, st.MemoStores)
		fmt.Printf("plan:  cacheHits=%d cacheMisses=%d gaoDerivations=%d indexBindings=%d\n",
			st.PlanCacheHits, st.PlanCacheMisses, st.GAODerivations, st.IndexBindings)
		if remote != nil {
			if err := printServerMetrics(ctx, remote, *storeName); err != nil {
				fmt.Fprintf(os.Stderr, "graphjoin: server metrics: %v\n", err)
			}
		}
	}
	return nil
}

// printServerMetrics fetches the server's metrics over the wire and prints
// the serving counters for the bound store — the remote half of -stats.
func printServerMetrics(ctx context.Context, remote *client.Store, storeName string) error {
	if storeName == "" {
		storeName = "default"
	}
	text, err := remote.Metrics(ctx)
	if err != nil {
		return err
	}
	samples, err := metrics.ParseText(strings.NewReader(text))
	if err != nil {
		return err
	}
	sum := func(name string) float64 {
		return metrics.SumSamples(samples, name, "store", storeName)
	}
	fmt.Printf("server: requests=%.0f errors=%.0f rejected=%.0f connections=%.0f inflight=%.0f queued=%.0f creditStall=%.3gs\n",
		sum("graphjoind_requests_total"), sum("graphjoind_request_errors_total"),
		sum("graphjoind_rejected_total"), sum("graphjoind_connections"),
		sum("graphjoind_inflight_requests"), sum("graphjoind_queued_requests"),
		sum("graphjoind_rows_credit_stall_seconds_total"))
	fmt.Printf("server: leases=%.0f overlayDepth=%.0f walFsyncs=%.0f checkpoints=%.0f\n",
		sum("graphjoind_open_leases"), sum("graphjoind_overlay_depth"),
		sum("graphjoind_wal_fsync_seconds_count"), sum("graphjoind_checkpoint_seconds_count"))
	return nil
}

// rejectQueryFlag refuses -query in the general-schema mode, where only
// -datalog can name relations.
func rejectQueryFlag() error {
	var bad error
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "query" {
			bad = fmt.Errorf("-query names benchmark-schema patterns and conflicts with -relation; use -datalog")
		}
	})
	return bad
}
