package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestLatencyBucketBoundaries(t *testing.T) {
	if len(LatencyBuckets) != 27 {
		t.Fatalf("LatencyBuckets has %d bounds, want 27", len(LatencyBuckets))
	}
	if LatencyBuckets[0] != 1e-6 {
		t.Fatalf("first bound %g, want 1e-6", LatencyBuckets[0])
	}
	for i := 1; i < len(LatencyBuckets); i++ {
		if LatencyBuckets[i] != 2*LatencyBuckets[i-1] {
			t.Fatalf("bound %d = %g, want double of %g", i, LatencyBuckets[i], LatencyBuckets[i-1])
		}
	}
	// ~67s top: 1e-6 * 2^26.
	if got, want := LatencyBuckets[26], 1e-6*float64(1<<26); got != want {
		t.Fatalf("top bound %g, want %g", got, want)
	}
	if len(SizeBuckets) != 21 || SizeBuckets[0] != 1 || SizeBuckets[20] != 1<<20 {
		t.Fatalf("SizeBuckets %v malformed", SizeBuckets)
	}
}

// TestHistogramBucketAssignment pins the le semantics: a value equal to a
// bound lands in that bound's bucket (v <= le), one ulp above falls through.
func TestHistogramBucketAssignment(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramBuckets("t_hist", "", []float64{1, 2, 4})
	h.Observe(0.5) // bucket le=1
	h.Observe(1)   // bucket le=1 (boundary is inclusive)
	h.Observe(1.5) // bucket le=2
	h.Observe(4)   // bucket le=4
	h.Observe(4.1) // +Inf
	want := []uint64{2, 1, 1, 1}
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("bucket count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("buckets %v, want %v", got, want)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("count %d, want 5", h.Count())
	}
	if s := h.Sum(); math.Abs(s-11.1) > 1e-9 {
		t.Fatalf("sum %g, want 11.1", s)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramBuckets("t_q", "", []float64{1, 2, 4, 8})
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // all in le=2
	}
	// Every rank interpolates inside (1, 2].
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got := h.Quantile(q)
		if got <= 1 || got > 2 {
			t.Fatalf("Quantile(%g) = %g, want in (1,2]", q, got)
		}
	}
	if h.Quantile(1) != 2 {
		t.Fatalf("Quantile(1) = %g, want 2", h.Quantile(1))
	}
	h.Observe(100) // overflow resolves to the top finite bound
	if got := h.Quantile(1); got != 8 {
		t.Fatalf("Quantile(1) with overflow = %g, want 8", got)
	}
	empty := r.HistogramBuckets("t_q_empty", "", []float64{1})
	if empty.Quantile(0.5) != 0 {
		t.Fatalf("empty Quantile = %g, want 0", empty.Quantile(0.5))
	}
}

// TestConcurrentCounters hammers one counter, one gauge, and one histogram
// from many goroutines (run under -race in CI) and requires exact totals.
func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_total", "")
	g := r.Gauge("t_inflight", "")
	h := r.Histogram("t_lat", "")
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Get-or-create from every goroutine must return the same series.
			cc := r.Counter("t_total", "")
			for i := 0; i < perWorker; i++ {
				cc.Inc()
				g.Inc()
				g.Dec()
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got, want := c.Value(), float64(workers*perWorker); got != want {
		t.Fatalf("counter %g, want %g", got, want)
	}
	if g.Value() != 0 {
		t.Fatalf("gauge %g, want 0", g.Value())
	}
	if h.Count() != workers*perWorker {
		t.Fatalf("histogram count %d, want %d", h.Count(), workers*perWorker)
	}
}

func TestCounterAddDuration(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_secs", "")
	c.AddDuration(1500 * time.Millisecond)
	if got := c.Value(); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("AddDuration total %g, want 1.5", got)
	}
}

func TestLabelCanonicalization(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("t_lbl", "", "store", "s1", "type", "count")
	b := r.Counter("t_lbl", "", "type", "count", "store", "s1")
	if a != b {
		t.Fatal("label order created distinct series")
	}
	other := r.Counter("t_lbl", "", "store", "s2", "type", "count")
	if a == other {
		t.Fatal("distinct label values shared a series")
	}
}

func TestTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_conflict", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("t_conflict", "")
}

func TestGaugeFuncRepoint(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("t_fn", "", func() float64 { return 1 })
	r.GaugeFunc("t_fn", "", func() float64 { return 2 })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got := SumSamples(samples, "t_fn"); got != 2 {
		t.Fatalf("re-pointed GaugeFunc exported %g, want 2", got)
	}
}

// TestExpositionRoundTrip writes a mixed registry through the Prometheus
// text format and parses it back, requiring every value to survive exactly.
func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("rt_requests_total", "requests", "store", "s1", "type", "count").Add(41)
	r.Counter("rt_requests_total", "requests", "store", "s1", "type", "rows").Add(7)
	r.Gauge("rt_inflight", "in flight", "store", `quo"ted\pa`+"\n"+`th`).Set(3)
	r.GaugeFunc("rt_age_seconds", "age", func() float64 { return 12.5 }, "store", "s1")
	h := r.HistogramBuckets("rt_lat_seconds", "latency", []float64{0.001, 0.01, 0.1}, "type", "count")
	h.Observe(0.0005)
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE rt_requests_total counter",
		"# TYPE rt_inflight gauge",
		"# TYPE rt_lat_seconds histogram",
		"# HELP rt_lat_seconds latency",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}

	samples, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseText: %v\n%s", err, text)
	}
	check := func(name string, want float64, kv ...string) {
		t.Helper()
		if got := SumSamples(samples, name, kv...); got != want {
			t.Fatalf("%s%v = %g, want %g\n%s", name, kv, got, want, text)
		}
	}
	check("rt_requests_total", 41, "store", "s1", "type", "count")
	check("rt_requests_total", 48, "store", "s1") // both types summed
	check("rt_inflight", 3, "store", `quo"ted\pa`+"\n"+`th`)
	check("rt_age_seconds", 12.5)
	// Histogram expansion: cumulative buckets, sum, count.
	check("rt_lat_seconds_bucket", 2, "le", "0.001")
	check("rt_lat_seconds_bucket", 2, "le", "0.01")
	check("rt_lat_seconds_bucket", 3, "le", "0.1")
	check("rt_lat_seconds_bucket", 4, "le", "+Inf")
	check("rt_lat_seconds_count", 4)
	if got := SumSamples(samples, "rt_lat_seconds_sum"); math.Abs(got-5.051) > 1e-9 {
		t.Fatalf("histogram sum %g, want 5.051", got)
	}
}

func TestParseTextRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"name_only",
		`broken{le="0.1" 3`,
		"name notanumber",
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Fatalf("ParseText(%q) did not fail", bad)
		}
	}
}
