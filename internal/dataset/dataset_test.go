package dataset

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/query"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(BarabasiAlbert, 500, 2000, 7)
	b := Generate(BarabasiAlbert, 500, 2000, 7)
	if len(a.Edges) != len(b.Edges) {
		t.Fatalf("nondeterministic edge count: %d vs %d", len(a.Edges), len(b.Edges))
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, a.Edges[i], b.Edges[i])
		}
	}
	c := Generate(BarabasiAlbert, 500, 2000, 8)
	same := len(a.Edges) == len(c.Edges)
	if same {
		identical := true
		for i := range a.Edges {
			if a.Edges[i] != c.Edges[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Error("different seeds produced identical graphs")
		}
	}
}

// Property: generated graphs are simple (no self loops, no duplicates, u<v)
// with vertices in range.
func TestGraphInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(200)
		m := rng.Intn(600)
		model := Model(rng.Intn(3))
		g := Generate(model, n, m, seed)
		seen := make(map[[2]int64]bool)
		for _, e := range g.Edges {
			u, v := e[0], e[1]
			if u >= v || u < 0 || v >= int64(n) {
				return false
			}
			if seen[e] {
				return false
			}
			seen[e] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEdgeCounts(t *testing.T) {
	// Erdős–Rényi hits the target nearly exactly at low density.
	g := Generate(ErdosRenyi, 10000, 20000, 1)
	if got := len(g.Edges); got < 19000 || got > 20000 {
		t.Errorf("ER edges = %d, want ~20000", got)
	}
	// Attachment models approximate the target.
	g = Generate(BarabasiAlbert, 5000, 20000, 1)
	if got := len(g.Edges); got < 10000 || got > 30000 {
		t.Errorf("BA edges = %d, want within 2x of 20000", got)
	}
}

// TestTriangleRegimes checks the dataset substitution argument (DESIGN.md
// §5): Erdős–Rényi stand-ins are triangle-poor, Holme–Kim stand-ins are
// triangle-rich — mirroring p2p-Gnutella (934 triangles on 40k edges) vs
// ego-Facebook (1.6M triangles on 88k edges).
func TestTriangleRegimes(t *testing.T) {
	er := Generate(ErdosRenyi, 10876, 39994, 103)
	hk := Generate(HolmeKim, 4039, 88234, 105)
	erT, hkT := er.TriangleCount(), hk.TriangleCount()
	if erT > 2000 {
		t.Errorf("ER stand-in has %d triangles, want few (p2p regime)", erT)
	}
	if hkT < 20000 {
		t.Errorf("HK stand-in has %d triangles, want many (facebook regime)", hkT)
	}
	if hkT < 100*erT {
		t.Errorf("regime separation too small: HK=%d ER=%d", hkT, erT)
	}
}

func TestCatalogComplete(t *testing.T) {
	cat := Catalog()
	if len(cat) != 15 {
		t.Fatalf("catalog has %d entries, want 15 (the paper's table)", len(cat))
	}
	for _, s := range cat {
		if s.Nodes <= 0 || s.Edges <= 0 {
			t.Errorf("%s: empty scaled size", s.Name)
		}
		if s.PaperNodes/s.ScaleDiv != s.Nodes {
			t.Errorf("%s: inconsistent scaling", s.Name)
		}
	}
	if _, err := Lookup("ego-Facebook"); err != nil {
		t.Error(err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("Lookup(nope) should fail")
	}
}

func TestSampleSelectivity(t *testing.T) {
	g := Generate(ErdosRenyi, 10000, 5000, 3)
	rng := rand.New(rand.NewSource(1))
	s10 := g.Sample(rng, 10)
	if len(s10) < 800 || len(s10) > 1200 {
		t.Errorf("selectivity 10 sampled %d of 10000, want ~1000", len(s10))
	}
	s1 := g.Sample(rng, 1)
	if len(s1) != g.N {
		t.Errorf("selectivity 1 sampled %d, want all %d", len(s1), g.N)
	}
	// Never empty.
	tiny := &Graph{N: 3}
	if len(tiny.Sample(rng, 1000)) == 0 {
		t.Error("sample must never be empty")
	}
}

func TestSampleOfSize(t *testing.T) {
	g := Generate(ErdosRenyi, 100, 50, 3)
	rng := rand.New(rand.NewSource(2))
	s := g.SampleOfSize(rng, 10)
	if len(s) != 10 {
		t.Fatalf("got %d, want 10", len(s))
	}
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			t.Fatal("sample not sorted/distinct")
		}
	}
	if got := g.SampleOfSize(rng, 1000); len(got) != g.N {
		t.Errorf("oversized request returned %d, want all %d", len(got), g.N)
	}
}

func TestEdgePrefix(t *testing.T) {
	g := Generate(ErdosRenyi, 100, 80, 4)
	p := g.EdgePrefix(10)
	if len(p.Edges) != 10 {
		t.Errorf("prefix has %d edges, want 10", len(p.Edges))
	}
	if got := g.EdgePrefix(10_000); len(got.Edges) != len(g.Edges) {
		t.Error("oversized prefix should clamp")
	}
}

func TestDBSchema(t *testing.T) {
	g := Generate(ErdosRenyi, 50, 100, 5)
	db := DB(g, 10, 42)
	edge, err := db.Relation(query.Edge)
	if err != nil {
		t.Fatal(err)
	}
	fwd, err := db.Relation(query.Fwd)
	if err != nil {
		t.Fatal(err)
	}
	if edge.Len() != 2*fwd.Len() {
		t.Errorf("edge (%d) must be twice fwd (%d)", edge.Len(), fwd.Len())
	}
	for _, name := range []string{query.Sample1, query.Sample2, query.Sample3, query.Sample4} {
		s, err := db.Relation(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Len() == 0 {
			t.Errorf("sample %s empty", name)
		}
	}
}

func TestReplaceSamples(t *testing.T) {
	g := Generate(ErdosRenyi, 50, 100, 5)
	db := DB(g, 10, 42)
	ReplaceSamples(db, []int64{1, 2, 3}, []int64{4})
	v1, _ := db.Relation(query.Sample1)
	v2, _ := db.Relation(query.Sample2)
	if v1.Len() != 3 || v2.Len() != 1 {
		t.Errorf("ReplaceSamples: v1=%d v2=%d", v1.Len(), v2.Len())
	}
}

func TestGeneratePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zeroNodes": func() { Generate(ErdosRenyi, 0, 5, 1) },
		"badModel":  func() { Generate(Model(99), 5, 5, 1) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestModelString(t *testing.T) {
	if ErdosRenyi.String() != "erdos-renyi" || HolmeKim.String() != "holme-kim" {
		t.Error("Model.String wrong")
	}
}
