package lftj

import (
	"context"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/naive"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/testutil"
)

func count(t *testing.T, e core.Engine, q *query.Query, db *core.DB) int64 {
	t.Helper()
	n, err := e.Count(context.Background(), q, db)
	if err != nil {
		t.Fatalf("%s Count(%s): %v", e.Name(), q.Name, err)
	}
	return n
}

func TestTriangleOnK4(t *testing.T) {
	db := testutil.GraphDB(testutil.K4, nil)
	// K4 has C(4,3) = 4 triangles; the fwd orientation counts each once.
	if got := count(t, Engine{}, query.Clique(3), db); got != 4 {
		t.Errorf("triangles(K4) = %d, want 4", got)
	}
	// Exactly one 4-clique.
	if got := count(t, Engine{}, query.Clique(4), db); got != 1 {
		t.Errorf("4-cliques(K4) = %d, want 1", got)
	}
	// 4-cycles with a<b<c<d: orderings of {0,1,2,3} as a cycle with the
	// constraint — K4 contains cycles (0,1,2,3), (0,1,3,2)? The fwd encoding
	// requires a<b<c<d so candidates are only (0,1,2,3): edges 01,12,23,03
	// all present = 1; but also any 4-subset has 3 distinct cycles, only the
	// sorted one counts: 1.
	if got := count(t, Engine{}, query.Cycle(4), db); got != 1 {
		t.Errorf("4-cycles(K4) = %d, want 1", got)
	}
}

func TestPathOnSmallGraph(t *testing.T) {
	// Path graph 0-1-2-3 with samples selecting the endpoints.
	edges := [][2]int64{{0, 1}, {1, 2}, {2, 3}}
	db := testutil.GraphDB(edges, map[string][]int64{
		query.Sample1: {0},
		query.Sample2: {3},
	})
	// 3-paths from 0 to 3: exactly one (0-1-2-3).
	if got := count(t, Engine{}, query.Path(3), db); got != 1 {
		t.Errorf("3-paths = %d, want 1", got)
	}
}

func TestEnumerateBindings(t *testing.T) {
	db := testutil.GraphDB(testutil.K4, nil)
	var got [][]int64
	err := Engine{}.Enumerate(context.Background(), query.Clique(3), db, func(tu []int64) bool {
		got = append(got, append([]int64(nil), tu...))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int64{{0, 1, 2}, {0, 1, 3}, {0, 2, 3}, {1, 2, 3}}
	sortTuples(got)
	if len(got) != len(want) {
		t.Fatalf("got %d tuples, want %d", len(got), len(want))
	}
	for i := range want {
		if relation.CompareTuples(got[i], want[i]) != 0 {
			t.Errorf("tuple %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func sortTuples(ts [][]int64) {
	sort.Slice(ts, func(i, j int) bool { return relation.CompareTuples(ts[i], ts[j]) < 0 })
}

func TestEarlyStop(t *testing.T) {
	db := testutil.GraphDB(testutil.K4, nil)
	n := 0
	err := Engine{}.Enumerate(context.Background(), query.Clique(3), db, func([]int64) bool {
		n++
		return n < 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("enumerated %d tuples after early stop, want 2", n)
	}
}

// TestDifferentialVsNaive runs the full §5.1 query suite on random graphs and
// compares against the oracle.
func TestDifferentialVsNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		n := 4 + rng.Intn(8)
		m := 2 + rng.Intn(20)
		db := testutil.RandomGraphDB(rng, n, m, 2)
		for _, q := range testutil.BenchmarkQueries() {
			want := count(t, naive.Engine{}, q, db)
			got := count(t, Engine{}, q, db)
			if got != want {
				t.Errorf("trial %d %s: lftj = %d, naive = %d", trial, q.Name, got, want)
			}
		}
	}
}

// TestGAOOverride checks counts are GAO-independent.
func TestGAOOverride(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := testutil.RandomGraphDB(rng, 8, 16, 2)
	q := query.Path(3)
	want := count(t, Engine{}, q, db)
	for _, gao := range [][]string{
		{"a", "b", "c", "d"},
		{"d", "c", "b", "a"},
		{"b", "a", "d", "c"},
		{"a", "b", "d", "c"}, // the ordering §5.2.1 discusses for LFTJ
	} {
		if got := count(t, Engine{Opts: Options{GAO: gao}}, q, db); got != want {
			t.Errorf("GAO %v: count = %d, want %d", gao, got, want)
		}
	}
}

func TestBadGAO(t *testing.T) {
	db := testutil.GraphDB(testutil.K4, nil)
	e := Engine{Opts: Options{GAO: []string{"a", "b"}}}
	if _, err := e.Count(context.Background(), query.Clique(3), db); err == nil {
		t.Error("short GAO should fail")
	}
}

// TestRangePartition checks that splitting the first variable's domain into
// ranges partitions the count (the §4.10 parallelization invariant).
func TestRangePartition(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db := testutil.RandomGraphDB(rng, 20, 60, 2)
	for _, q := range []*query.Query{query.Clique(3), query.Path(3), query.Comb()} {
		want := count(t, Engine{}, q, db)
		var total int64
		cuts := []int64{relation.NegInf + 1, 5, 11, 16, relation.PosInf}
		for i := 0; i+1 < len(cuts); i++ {
			e := Engine{Opts: Options{FirstVarRange: &Range{Lo: cuts[i], Hi: cuts[i+1]}}}
			total += count(t, e, q, db)
		}
		if total != want {
			t.Errorf("%s: partitioned total = %d, want %d", q.Name, total, want)
		}
	}
}

func TestCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := testutil.RandomGraphDB(rng, 200, 4000, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Engine{}.Count(ctx, query.Clique(4), db)
	if err == nil {
		t.Error("cancelled context should surface an error")
	}
}

func TestMissingRelation(t *testing.T) {
	db := core.NewDB()
	if _, err := (Engine{}).Count(context.Background(), query.Clique(3), db); err == nil {
		t.Error("missing relation should error")
	}
}

func TestEmptyJoin(t *testing.T) {
	// Graph with edges but empty sample: path count is 0.
	db := testutil.GraphDB(testutil.K4, map[string][]int64{
		query.Sample1: {99}, // disconnected from the graph
		query.Sample2: {0},
	})
	if got := count(t, Engine{}, query.Path(3), db); got != 0 {
		t.Errorf("count = %d, want 0", got)
	}
}
