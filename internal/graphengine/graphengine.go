// Package graphengine is the reproduction's stand-in for GraphLab (§5.1):
// a hand-specialized, parallel clique counter over a degree-ordered
// compressed adjacency, the strongest baseline the paper reports for
// {3,4}-clique. Like GraphLab in the paper — whose coverage the authors
// could not confidently extend beyond cliques — it implements exactly the
// 3-clique and 4-clique patterns and rejects everything else.
package graphengine

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/query"
)

// Engine is the specialized clique-counting engine.
type Engine struct {
	// Workers overrides the parallelism (0 = GOMAXPROCS, mirroring the
	// paper's graphlab ncpus=8 tuning).
	Workers int
}

// Name implements core.Engine.
func (Engine) Name() string { return "graphlab" }

// csr is a forward adjacency: for each vertex, its oriented neighbors
// (u < v), sorted.
type csr struct {
	ids []int64 // sorted vertex ids with outgoing edges
	adj map[int64][]int64
}

func buildCSR(db *core.DB) (*csr, error) {
	fwd, err := db.Relation(query.Fwd)
	if err != nil {
		return nil, err
	}
	if fwd.Arity() != 2 {
		return nil, fmt.Errorf("graphengine: %s must be binary", query.Fwd)
	}
	g := &csr{adj: make(map[int64][]int64)}
	for i := 0; i < fwd.Len(); i++ {
		u, v := fwd.Value(i, 0), fwd.Value(i, 1)
		g.adj[u] = append(g.adj[u], v)
	}
	for u, vs := range g.adj {
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		g.adj[u] = vs
		g.ids = append(g.ids, u)
	}
	sort.Slice(g.ids, func(i, j int) bool { return g.ids[i] < g.ids[j] })
	return g, nil
}

// intersectCount returns |a ∩ b| for sorted slices.
func intersectCount(a, b []int64) int64 {
	var n int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// intersect returns a ∩ b for sorted slices.
func intersect(a, b []int64, out []int64) []int64 {
	out = out[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// Count implements core.Engine for the 3-clique and 4-clique patterns; all
// other queries are rejected, mirroring the paper's GraphLab coverage.
func (e Engine) Count(ctx context.Context, q *query.Query, db *core.DB) (int64, error) {
	var k int
	switch q.Name {
	case "3-clique":
		k = 3
	case "4-clique":
		k = 4
	default:
		return 0, fmt.Errorf("graphengine: query %q not implemented (3-clique and 4-clique only)", q.Name)
	}
	g, err := buildCSR(db)
	if err != nil {
		return 0, err
	}
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var total atomic.Int64
	var wg sync.WaitGroup
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var errOnce sync.Once
	var runErr error
	next := atomic.Int64{}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local int64
			var wbuf []int64
			for {
				i := int(next.Add(1)) - 1
				if i >= len(g.ids) {
					break
				}
				if ctx.Err() != nil {
					errOnce.Do(func() { runErr = ctx.Err() })
					return
				}
				u := g.ids[i]
				nu := g.adj[u]
				for _, v := range nu {
					nv := g.adj[v]
					if k == 3 {
						local += intersectCount(nu, nv)
						continue
					}
					wbuf = intersect(nu, nv, wbuf)
					for wi, w := range wbuf {
						// Members of wbuf after wi are > w and adjacent to
						// both u and v; count those also adjacent to w.
						local += intersectCount(wbuf[wi+1:], g.adj[w])
					}
				}
			}
			total.Add(local)
		}()
	}
	wg.Wait()
	if runErr != nil {
		return 0, runErr
	}
	return total.Load(), nil
}

// Enumerate is intentionally unsupported: the paper's GraphLab baselines are
// count-only gather-apply-scatter programs.
func (e Engine) Enumerate(ctx context.Context, q *query.Query, db *core.DB, emit func([]int64) bool) error {
	return fmt.Errorf("graphengine: enumeration not supported")
}
