package router

import (
	"context"
	"errors"
	"iter"
	"sync"
	"time"

	"repro"
	"repro/client"
	"repro/internal/query"
	"repro/internal/trace"
)

// streamBuf is the per-host row buffer of a merged stream: how far one
// host's producer may run ahead of the merge point before blocking.
const streamBuf = 64

// Prepared is a routed prepared query: one downstream handle per
// participating host, plus the merge shape decided at Prepare time. It
// satisfies repro.PreparedQuery; executions fan out and merge (or run
// shard-local for single-host-routed queries). Safe for concurrent use.
type Prepared struct {
	r   *Router
	q   *repro.Query
	alg string

	// hosts are the downstream handles; hostIdx maps each to its global
	// host index in the router topology. A single-routed query has one
	// entry; a fanned-out query has one per host.
	hosts   []repro.PreparedQuery
	hostIdx []int
	single  bool

	// mergeCol is the output-row column carrying the leading GAO attribute
	// — the k-way merge key. Shards partition exactly that attribute, so
	// per-host value sets are disjoint and merging on it reproduces the
	// single-store enumeration order.
	mergeCol int
	// globalAgg marks an empty-group-by aggregate query: each host reports
	// one partial row (or none), folded rather than merged.
	globalAgg bool
	aggs      []query.Agg

	// shards records each participating host's shard restriction (nil for
	// single-routed handles) and routeNote the routing decision — the
	// material Explain renders.
	shards    []repro.Shard
	routeNote string
}

var _ repro.PreparedQuery = (*Prepared)(nil)

// Query returns the compiled query.
func (p *Prepared) Query() *repro.Query { return p.q }

// Algorithm returns the engine the query was compiled for on the hosts.
func (p *Prepared) Algorithm() string { return p.alg }

// Close releases every downstream handle.
func (p *Prepared) Close() error {
	var first error
	for i, h := range p.hosts {
		if err := h.Close(); err != nil && first == nil {
			first = p.r.hostErr(p.hostIdx[i], err)
		}
	}
	return first
}

// Stats sums the execution counters across the downstream handles.
func (p *Prepared) Stats() repro.ExecStats {
	var s repro.ExecStats
	for _, h := range p.hosts {
		s.Merge(h.Stats())
	}
	return s
}

// Count executes across the cluster and returns the merged cardinality:
// the sum of per-shard counts (disjoint covering shards), except for
// empty-group-by aggregates, whose single global group exists iff any host
// contributes to it.
func (p *Prepared) Count(ctx context.Context) (int64, error) {
	return p.count(ctx, nil)
}

// Enumerate streams the merged results: per-host streams k-way-merged on
// the leading GAO attribute (byte-identical to a single store's stream),
// or the folded partial row for empty-group-by aggregates. emit returns
// false to stop early, which cancels every host's execution.
func (p *Prepared) Enumerate(ctx context.Context, emit func([]int64) bool) error {
	return p.enumerate(ctx, nil, emit)
}

// Rows is Enumerate as a streaming iterator; each yielded slice is owned by
// the consumer.
func (p *Prepared) Rows(ctx context.Context) iter.Seq[[]int64] {
	return rowsSeq(p.Enumerate, ctx)
}

// RowsErr is Rows with an explicit error: (tuple, nil) per result and a
// final (nil, err) pair if any host fails mid-stream.
func (p *Prepared) RowsErr(ctx context.Context) iter.Seq2[[]int64, error] {
	return rowsErrSeq(p.Enumerate, ctx)
}

// legSpan opens the "router.leg" span for host i's part of a fan-out — one
// sibling per leg under the request's root, so a trace shows the straggler as
// the longest bar. The returned context carries the leg span downstream: the
// client transport injects it into the per-host request, making the shard
// server's root span a child of this leg.
func (p *Prepared) legSpan(ctx context.Context, i int) (context.Context, *trace.Span) {
	ctx, sp := trace.Start(ctx, "router.leg")
	sp.SetStr("host", p.r.names[p.hostIdx[i]])
	return ctx, sp
}

// hostCtx derives the context for one per-host unary request, applying the
// router's per-host request timeout when configured.
func (p *Prepared) hostCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if p.r.reqTimeout > 0 {
		return context.WithTimeout(ctx, p.r.reqTimeout)
	}
	return context.WithCancel(ctx)
}

// retryUnary runs one idempotent per-host unary read with the router's
// bounded retry: admission rejections (client.ErrOverloaded) back off and
// retry; everything else returns immediately.
func (p *Prepared) retryUnary(ctx context.Context, f func(ctx context.Context) error) error {
	backoff := p.r.retryBackoff
	for attempt := 0; ; attempt++ {
		hctx, cancel := p.hostCtx(ctx)
		err := f(hctx)
		cancel()
		if err == nil || attempt >= p.r.maxRetries || !errors.Is(err, client.ErrOverloaded) {
			return err
		}
		p.r.met.retries.Inc()
		select {
		case <-time.After(backoff):
			backoff *= 2
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// countOn runs one host's count, inside txns when provided.
func (p *Prepared) countOn(ctx context.Context, i int, txns []repro.QueryTxn) (int64, error) {
	var n int64
	err := p.retryUnary(ctx, func(ctx context.Context) error {
		var err error
		if txns != nil {
			n, err = txns[p.hostIdx[i]].Count(ctx, p.hosts[i])
		} else {
			n, err = p.hosts[i].Count(ctx)
		}
		return err
	})
	return n, err
}

// snapshot returns the per-host transactions the execution should run
// under: the caller's (from a user-level Txn), or a fresh internal
// distributed read-transaction so a fan-out observes one write generation
// across hosts. release is a no-op for caller-provided transactions.
func (p *Prepared) snapshot(txns []repro.QueryTxn) (_ []repro.QueryTxn, release func(), err error) {
	if txns != nil {
		return txns, func() {}, nil
	}
	t, err := p.r.ReadTxn()
	if err != nil {
		return nil, nil, err
	}
	dt := t.(*Txn)
	return dt.txns, func() { dt.Close() }, nil
}

func (p *Prepared) count(ctx context.Context, txns []repro.QueryTxn) (int64, error) {
	if p.single {
		return p.countOn(ctx, 0, txns)
	}
	txns, release, err := p.snapshot(txns)
	if err != nil {
		return 0, err
	}
	defer release()
	n := len(p.hosts)
	counts := make([]int64, n)
	errs := make([]error, n)
	durations := make([]time.Duration, n)
	var wg sync.WaitGroup
	for i := range p.hosts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lctx, sp := p.legSpan(ctx, i)
			start := time.Now()
			counts[i], errs[i] = p.countOn(lctx, i, txns)
			durations[i] = time.Since(start)
			sp.SetInt("count", counts[i])
			sp.End()
			p.r.met.observeHost(p.r.names[p.hostIdx[i]], durations[i])
		}(i)
	}
	wg.Wait()
	p.r.met.observeFanout(durations)
	for i, err := range errs {
		if err != nil {
			return 0, p.r.hostErr(p.hostIdx[i], err)
		}
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if p.globalAgg {
		// The single global group exists iff any host saw a row; per-host
		// counts are each 0 or 1 and must not sum.
		if total > 0 {
			return 1, nil
		}
		return 0, nil
	}
	return total, nil
}

func (p *Prepared) enumerate(ctx context.Context, txns []repro.QueryTxn, emit func([]int64) bool) error {
	if p.single {
		if txns != nil {
			return txns[p.hostIdx[0]].Enumerate(ctx, p.hosts[0], emit)
		}
		return p.hosts[0].Enumerate(ctx, emit)
	}
	txns, release, err := p.snapshot(txns)
	if err != nil {
		return err
	}
	defer release()
	if p.globalAgg {
		return p.foldPartials(ctx, txns, emit)
	}
	return p.mergeStreams(ctx, txns, emit)
}

// foldPartials collects each host's partial aggregate row (zero or one per
// host — the host's fold over its shard of the distinct bindings) and folds
// them into the global row: count and sum partials add, min/max partials
// fold. Hosts whose shard is empty contribute nothing; if every shard is
// empty the merged query emits nothing, matching a single store.
func (p *Prepared) foldPartials(ctx context.Context, txns []repro.QueryTxn, emit func([]int64) bool) error {
	n := len(p.hosts)
	partials := make([][]int64, n)
	errs := make([]error, n)
	durations := make([]time.Duration, n)
	var wg sync.WaitGroup
	for i := range p.hosts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lctx, sp := p.legSpan(ctx, i)
			start := time.Now()
			errs[i] = txns[p.hostIdx[i]].Enumerate(lctx, p.hosts[i], func(row []int64) bool {
				partials[i] = append([]int64(nil), row...)
				return true
			})
			durations[i] = time.Since(start)
			sp.End()
			p.r.met.observeHost(p.r.names[p.hostIdx[i]], durations[i])
		}(i)
	}
	wg.Wait()
	p.r.met.observeFanout(durations)
	for i, err := range errs {
		if err != nil {
			return p.r.hostErr(p.hostIdx[i], err)
		}
	}
	var acc []int64
	for _, part := range partials {
		if part == nil {
			continue
		}
		if acc == nil {
			acc = part
			continue
		}
		for j, ag := range p.aggs {
			switch ag.Func {
			case query.AggCount, query.AggSum:
				acc[j] += part[j]
			case query.AggMin:
				acc[j] = min(acc[j], part[j])
			case query.AggMax:
				acc[j] = max(acc[j], part[j])
			}
		}
	}
	if acc != nil {
		emit(acc)
	}
	return nil
}

// mergeStreams runs every host's shard stream concurrently and k-way-merges
// them on the leading GAO attribute. Shards partition that attribute, so
// per-host value sets are disjoint and picking the smallest head value
// reproduces the single-store GAO-lexicographic order exactly. A host
// failing mid-stream (killed, overloaded, unreachable) cancels the others
// and fails the merge with a typed *HostError — never a silently truncated
// stream. The consumer stopping (emit false) cancels every host's
// execution.
func (p *Prepared) mergeStreams(ctx context.Context, txns []repro.QueryTxn, emit func([]int64) bool) error {
	hctx, cancel := context.WithCancel(ctx)
	n := len(p.hosts)
	type hostStream struct {
		ch  chan []int64
		err chan error
	}
	streams := make([]hostStream, n)
	start := time.Now()
	durations := make([]time.Duration, n)
	var wg sync.WaitGroup
	defer func() {
		// Stop the producers before returning so no host keeps executing
		// against a transaction the caller is about to close.
		cancel()
		for i := range streams {
			for range streams[i].ch { // unblock producers waiting for buffer space
			}
		}
		wg.Wait()
		p.r.met.observeFanout(durations)
	}()
	for i := range p.hosts {
		streams[i] = hostStream{ch: make(chan []int64, streamBuf), err: make(chan error, 1)}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lctx, sp := p.legSpan(hctx, i)
			var shipped int64
			err := txns[p.hostIdx[i]].Enumerate(lctx, p.hosts[i], func(row []int64) bool {
				cp := append([]int64(nil), row...)
				select {
				case streams[i].ch <- cp:
					shipped++
					return true
				case <-hctx.Done():
					return false
				}
			})
			durations[i] = time.Since(start)
			sp.SetInt("rows", shipped)
			sp.End()
			p.r.met.observeHost(p.r.names[p.hostIdx[i]], durations[i])
			streams[i].err <- err
			close(streams[i].ch)
		}(i)
	}

	// The merge span times the k-way merge itself — the coordinator-side cost
	// between the fan-out legs and the consumer.
	_, msp := trace.Start(ctx, "router.merge")
	var merged int64
	defer func() {
		msp.SetInt("rows", merged)
		msp.End()
	}()

	heads := make([][]int64, n)
	active := 0
	// advance loads host i's next head row; on stream end it reaps the
	// host's error (the err channel is written before the row channel
	// closes, so the receive never blocks).
	advance := func(i int) (bool, error) {
		row, ok := <-streams[i].ch
		if ok {
			heads[i] = row
			return true, nil
		}
		heads[i] = nil
		if err := <-streams[i].err; err != nil {
			return false, p.r.hostErr(p.hostIdx[i], err)
		}
		return false, nil
	}
	for i := 0; i < n; i++ {
		ok, err := advance(i)
		if err != nil {
			return err
		}
		if ok {
			active++
		}
	}
	for active > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		best := -1
		for i, h := range heads {
			if h == nil {
				continue
			}
			if best == -1 || h[p.mergeCol] < heads[best][p.mergeCol] {
				best = i
			}
		}
		if !emit(heads[best]) {
			return nil
		}
		merged++
		ok, err := advance(best)
		if err != nil {
			return err
		}
		if !ok {
			active--
		}
	}
	return nil
}

// rowsSeq adapts an Enumerate-shaped execution into a streaming iterator,
// discarding any mid-stream error (the router-side counterpart of the repro
// and client helpers).
func rowsSeq(enumerate func(context.Context, func([]int64) bool) error, ctx context.Context) iter.Seq[[]int64] {
	return func(yield func([]int64) bool) {
		_ = enumerate(ctx, func(t []int64) bool {
			return yield(append([]int64(nil), t...))
		})
	}
}

// rowsErrSeq is rowsSeq with the explicit-error protocol: (tuple, nil) per
// result, and a final (nil, err) pair when execution fails before the
// consumer stopped.
func rowsErrSeq(enumerate func(context.Context, func([]int64) bool) error, ctx context.Context) iter.Seq2[[]int64, error] {
	return func(yield func([]int64, error) bool) {
		stopped := false
		err := enumerate(ctx, func(t []int64) bool {
			ok := yield(append([]int64(nil), t...), nil)
			stopped = !ok
			return ok
		})
		if err != nil && !stopped {
			yield(nil, err)
		}
	}
}
