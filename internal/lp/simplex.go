// Package lp provides a small dense two-phase simplex solver for the
// covering linear programs that arise from the AGM fractional edge cover
// bound (paper Appendix A). Problem sizes are tiny (one variable per atom,
// one constraint per query variable), so a textbook tableau implementation
// with Bland's anti-cycling rule is entirely adequate.
package lp

import (
	"errors"
	"math"
)

// ErrInfeasible is returned when the constraint system has no solution.
var ErrInfeasible = errors.New("lp: infeasible")

// ErrUnbounded is returned when the objective is unbounded below.
var ErrUnbounded = errors.New("lp: unbounded")

const eps = 1e-9

// MinimizeCover solves
//
//	min  c·x   subject to   A·x >= b,  x >= 0
//
// with b >= 0, returning the optimal x and objective value.
func MinimizeCover(c []float64, a [][]float64, b []float64) (x []float64, obj float64, err error) {
	m, n := len(a), len(c)
	for i := range b {
		if b[i] < 0 {
			return nil, 0, errors.New("lp: MinimizeCover requires b >= 0")
		}
	}
	// Tableau columns: n structural + m surplus + m artificial + 1 rhs.
	// Row i: a_i·x - s_i + t_i = b_i.
	cols := n + 2*m + 1
	tab := make([][]float64, m+1)
	for i := 0; i <= m; i++ {
		tab[i] = make([]float64, cols)
	}
	for i := 0; i < m; i++ {
		copy(tab[i], a[i])
		tab[i][n+i] = -1
		tab[i][n+m+i] = 1
		tab[i][cols-1] = b[i]
	}
	basis := make([]int, m)
	for i := range basis {
		basis[i] = n + m + i
	}

	// Phase 1: minimize the sum of artificials. The objective row holds the
	// reduced costs of min Σ t_i expressed over the current (artificial)
	// basis: start from the raw costs, then zero out the basic columns by
	// subtracting every constraint row.
	obj1 := tab[m]
	for i := 0; i < m; i++ {
		obj1[n+m+i] = 1
	}
	for i := 0; i < m; i++ {
		for j := 0; j < cols; j++ {
			obj1[j] -= tab[i][j]
		}
	}
	if err := pivotLoop(tab, basis, n+2*m); err != nil {
		return nil, 0, err
	}
	if tab[m][cols-1] < -eps {
		return nil, 0, ErrInfeasible
	}
	// Drive any remaining artificial variables out of the basis.
	for i, bi := range basis {
		if bi < n+m {
			continue
		}
		pivoted := false
		for j := 0; j < n+m; j++ {
			if math.Abs(tab[i][j]) > eps {
				pivot(tab, basis, i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant row; the artificial stays at value zero.
			_ = pivoted
		}
	}

	// Phase 2: replace the objective row with the real objective expressed
	// over the current basis.
	for j := range tab[m] {
		tab[m][j] = 0
	}
	for j := 0; j < n; j++ {
		tab[m][j] = c[j]
	}
	for i, bi := range basis {
		coef := tab[m][bi]
		if coef == 0 {
			continue
		}
		for j := 0; j < cols; j++ {
			tab[m][j] -= coef * tab[i][j]
		}
	}
	if err := pivotLoop(tab, basis, n+m); err != nil {
		return nil, 0, err
	}

	x = make([]float64, n)
	for i, bi := range basis {
		if bi < n {
			x[bi] = tab[i][cols-1]
		}
	}
	obj = 0
	for j := 0; j < n; j++ {
		obj += c[j] * x[j]
	}
	return x, obj, nil
}

// pivotLoop runs simplex iterations until no entering column with negative
// reduced cost remains among columns [0, limit). Bland's rule (lowest
// eligible indices) guarantees termination.
func pivotLoop(tab [][]float64, basis []int, limit int) error {
	m := len(basis)
	cols := len(tab[0])
	for iter := 0; iter < 10000; iter++ {
		enter := -1
		for j := 0; j < limit; j++ {
			if tab[m][j] < -eps {
				enter = j
				break
			}
		}
		if enter < 0 {
			return nil
		}
		leave := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if tab[i][enter] > eps {
				ratio := tab[i][cols-1] / tab[i][enter]
				if ratio < best-eps || (ratio < best+eps && (leave < 0 || basis[i] < basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return ErrUnbounded
		}
		pivot(tab, basis, leave, enter)
	}
	return errors.New("lp: iteration limit exceeded")
}

func pivot(tab [][]float64, basis []int, row, col int) {
	cols := len(tab[0])
	p := tab[row][col]
	for j := 0; j < cols; j++ {
		tab[row][j] /= p
	}
	for i := range tab {
		if i == row {
			continue
		}
		f := tab[i][col]
		if f == 0 {
			continue
		}
		for j := 0; j < cols; j++ {
			tab[i][j] -= f * tab[row][j]
		}
	}
	if row < len(basis) {
		basis[row] = col
	}
}
