// Package recursive implements the recursive-query extension the paper's
// conclusion names as future work for the benchmark (§6: "extend this
// benchmark to recursive queries"): semi-naive Datalog evaluation of
// transitive closure and reachability over the same relational substrate
// the join engines use.
//
//	tc(x, y) :- edge(x, y).
//	tc(x, y) :- tc(x, z), edge(z, y).
//
// Each semi-naive round joins the newly derived delta with the edge
// relation — the incremental-evaluation discipline LogicBlox applies to
// recursion — using hash adjacency for the delta expansion.
package recursive

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/relation"
)

// TransitiveClosure computes tc(edge) and returns it as a relation. Rounds
// are semi-naive: only facts derived in round i can derive new facts in
// round i+1.
func TransitiveClosure(ctx context.Context, db *core.DB) (*relation.Relation, error) {
	edge, err := db.Relation(query.Edge)
	if err != nil {
		return nil, err
	}
	if edge.Arity() != 2 {
		return nil, fmt.Errorf("recursive: %s must be binary", query.Edge)
	}
	adj := make(map[int64][]int64)
	for i := 0; i < edge.Len(); i++ {
		adj[edge.Value(i, 0)] = append(adj[edge.Value(i, 0)], edge.Value(i, 1))
	}
	type pair struct{ x, y int64 }
	known := make(map[pair]bool, edge.Len())
	var delta []pair
	for i := 0; i < edge.Len(); i++ {
		p := pair{edge.Value(i, 0), edge.Value(i, 1)}
		if !known[p] {
			known[p] = true
			delta = append(delta, p)
		}
	}
	tick := core.NewTicker(ctx)
	for len(delta) > 0 {
		var next []pair
		for _, p := range delta {
			if err := tick.Tick(); err != nil {
				return nil, err
			}
			for _, y := range adj[p.y] {
				np := pair{p.x, y}
				if !known[np] {
					known[np] = true
					next = append(next, np)
				}
			}
		}
		delta = next
	}
	b := relation.NewBuilder("tc", 2)
	for p := range known {
		b.Add(p.x, p.y)
	}
	return b.Build(), nil
}

// Reachable counts the vertices reachable from src through directed edge
// tuples (src itself excluded unless on a cycle).
func Reachable(ctx context.Context, db *core.DB, src int64) (int64, error) {
	tc, err := TransitiveClosure(ctx, db)
	if err != nil {
		return 0, err
	}
	lo, hi := tc.PrefixRange([]int64{src})
	return int64(hi - lo), nil
}

// RegisterTC materializes the closure into the database under the name
// "tc", making it queryable by every join engine — e.g. counting
// length-bounded reachability patterns:
//
//	v1(a), tc(a, b), v2(b)
func RegisterTC(ctx context.Context, db *core.DB) error {
	tc, err := TransitiveClosure(ctx, db)
	if err != nil {
		return err
	}
	db.Add(tc)
	return nil
}
