package metrics

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered series in the Prometheus text
// exposition format (version 0.0.4): families sorted by name with # HELP and
// # TYPE headers, histogram series expanded into cumulative _bucket / _sum /
// _count. Values are read at call time (func metrics are polled here).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	type fam struct {
		family
		metrics []metric
	}
	fams := make([]fam, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		keys := append([]string(nil), f.keys...)
		sort.Strings(keys)
		out := fam{family: *f}
		for _, k := range keys {
			out.metrics = append(out.metrics, r.series[k])
		}
		fams = append(fams, out)
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, m := range f.metrics {
			switch v := m.(type) {
			case *Counter:
				writeSample(bw, f.name, v.labels(), v.Value())
			case *Gauge:
				writeSample(bw, f.name, v.labels(), v.Value())
			case *funcMetric:
				writeSample(bw, f.name, v.labels(), v.value())
			case *Histogram:
				writeHistogram(bw, f.name, v)
			}
		}
	}
	return bw.Flush()
}

func writeSample(w io.Writer, name, lbls string, v float64) {
	fmt.Fprintf(w, "%s%s %s\n", name, lbls, formatValue(v))
}

// writeHistogram expands one histogram into the cumulative exposition
// series. The le label is appended to the series' own labels.
func writeHistogram(w io.Writer, name string, h *Histogram) {
	counts := h.BucketCounts()
	bounds := h.Bounds()
	var cum uint64
	for i, c := range counts {
		cum += c
		le := "+Inf"
		if i < len(bounds) {
			le = formatValue(bounds[i])
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLabel(h.labels(), "le", le), cum)
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, h.labels(), formatValue(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, h.labels(), h.Count())
}

// withLabel splices one more label pair into a rendered label set.
func withLabel(lbls, k, v string) string {
	pair := k + `="` + escapeLabel(v) + `"`
	if lbls == "" {
		return "{" + pair + "}"
	}
	return lbls[:len(lbls)-1] + "," + pair + "}"
}

// formatValue renders a float the shortest way that round-trips.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry at GET /metrics (the graphjoind -metrics-addr
// endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// Sample is one parsed exposition line.
type Sample struct {
	// Name is the series name (histogram expansions keep their _bucket /
	// _sum / _count suffixes).
	Name string
	// Labels are the parsed label pairs (nil when the series has none).
	Labels map[string]string
	// Value is the sample value.
	Value float64
}

// Label returns the named label's value ("" when absent).
func (s Sample) Label(k string) string { return s.Labels[k] }

// ParseText parses Prometheus text exposition output — the inverse of
// WritePrometheus, used by the load harness to cross-check server-side
// counters against its client-side ledger. Comment and blank lines are
// skipped; a malformed sample line is an error.
func ParseText(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("metrics: parse %q: %w", line, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseSample(line string) (Sample, error) {
	var s Sample
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("no value")
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set")
		}
		var err error
		s.Labels, err = parseLabels(rest[1:end])
		if err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return s, fmt.Errorf("no value")
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q", fields[0])
	}
	s.Value = v
	return s, nil
}

// parseLabels parses `k="v",k2="v2"`. Escapes in values are unescaped.
func parseLabels(body string) (map[string]string, error) {
	labels := make(map[string]string)
	for len(body) > 0 {
		eq := strings.Index(body, "=")
		if eq < 0 || len(body) < eq+2 || body[eq+1] != '"' {
			return nil, fmt.Errorf("malformed label in %q", body)
		}
		key := body[:eq]
		rest := body[eq+2:]
		var b strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(rest[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			b.WriteByte(c)
		}
		if i == len(rest) {
			return nil, fmt.Errorf("unterminated label value in %q", body)
		}
		labels[key] = b.String()
		body = rest[i+1:]
		body = strings.TrimPrefix(body, ",")
	}
	return labels, nil
}

// SumSamples sums the values of every sample with the given name whose
// labels include all the given pairs — the cross-check aggregation
// ("all graphjoind_requests_total for store X, any type").
func SumSamples(samples []Sample, name string, kv ...string) float64 {
	var total float64
samples:
	for _, s := range samples {
		if s.Name != name {
			continue
		}
		for i := 0; i+1 < len(kv); i += 2 {
			if s.Labels[kv[i]] != kv[i+1] {
				continue samples
			}
		}
		total += s.Value
	}
	return total
}
