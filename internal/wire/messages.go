package wire

import (
	"context"
	"errors"

	"repro"
	"repro/internal/core"
	"repro/internal/query"
)

// Error is a failure transported over the wire: the server encodes the
// request's error as a stable code plus its message, and the client rebuilds
// an error that still satisfies errors.Is against the public typed errors —
// so error-handling code behaves identically against a local Store and a
// remote one.
type Error struct {
	Code string
	Msg  string
}

// Error implements error with the server-rendered message.
func (e *Error) Error() string { return e.Msg }

// Unwrap resolves the code to its typed sentinel, so errors.Is sees through
// the network boundary.
func (e *Error) Unwrap() error { return sentinel(e.Code) }

// Stable error codes. The repro-level codes map 1:1 onto the public typed
// errors; the protocol-level codes have sentinels of their own below.
const (
	CodeUnknownRelation  = "unknown-relation"
	CodeArityMismatch    = "arity-mismatch"
	CodeRelationExists   = "relation-exists"
	CodeValueOutOfRange  = "value-out-of-range"
	CodeUnknownAlgorithm = "unknown-algorithm"
	CodeUnknownBackend   = "unknown-backend"
	CodeUnboundHeadVar   = "unbound-head-var"
	CodeUnboundVar       = "unbound-var"
	CodeTxnUnplanned     = "txn-unplanned"
	CodeForeignPrepared  = "foreign-prepared"
	CodeCancelled        = "cancelled"
	CodeDeadline         = "deadline-exceeded"
	CodeShuttingDown     = "shutting-down"
	CodeOverloaded       = "overloaded"
	CodeUnknownHandle    = "unknown-handle"
	CodeUnknownTxn       = "unknown-txn"
	CodeUnknownStore     = "unknown-store"
	CodeVersion          = "version-mismatch"
	CodeProtocol         = "protocol"
	CodeInternal         = "internal"
)

// Protocol-level sentinels (the repro-level ones are the public typed
// errors). The client package re-exports these.
var (
	// ErrShuttingDown reports a request received while the server drains.
	ErrShuttingDown = errors.New("server shutting down")
	// ErrOverloaded reports a request rejected by per-store admission
	// control: the store's in-flight budget is exhausted and its queue is
	// full. The request was never started; retrying after backoff is safe.
	ErrOverloaded = errors.New("store overloaded")
	// ErrUnknownHandle reports a prepared-statement handle the connection
	// does not hold (closed, or from another connection).
	ErrUnknownHandle = errors.New("unknown prepared-statement handle")
	// ErrUnknownTxn reports a transaction id the connection does not hold.
	ErrUnknownTxn = errors.New("unknown transaction")
	// ErrUnknownStore reports a Hello naming a store the server does not
	// host.
	ErrUnknownStore = errors.New("unknown store")
	// ErrVersion reports a protocol-version mismatch in the Hello exchange.
	ErrVersion = errors.New("protocol version mismatch")
	// ErrProtocol reports a malformed or out-of-order frame.
	ErrProtocol = errors.New("protocol error")
)

// codeTable pairs every code with its sentinel; ErrorCode scans it with
// errors.Is and sentinel() indexes it by code.
var codeTable = []struct {
	code string
	err  error
}{
	{CodeUnknownRelation, repro.ErrUnknownRelation},
	{CodeArityMismatch, repro.ErrArityMismatch},
	{CodeRelationExists, repro.ErrRelationExists},
	{CodeValueOutOfRange, repro.ErrValueOutOfRange},
	{CodeUnknownAlgorithm, repro.ErrUnknownAlgorithm},
	{CodeUnknownBackend, repro.ErrUnknownBackend},
	{CodeUnboundHeadVar, repro.ErrUnboundHeadVar},
	{CodeUnboundVar, repro.ErrUnboundVar},
	{CodeTxnUnplanned, repro.ErrTxnUnplanned},
	{CodeForeignPrepared, repro.ErrForeignPrepared},
	{CodeCancelled, context.Canceled},
	{CodeDeadline, context.DeadlineExceeded},
	{CodeShuttingDown, ErrShuttingDown},
	{CodeOverloaded, ErrOverloaded},
	{CodeUnknownHandle, ErrUnknownHandle},
	{CodeUnknownTxn, ErrUnknownTxn},
	{CodeUnknownStore, ErrUnknownStore},
	{CodeVersion, ErrVersion},
	{CodeProtocol, ErrProtocol},
}

// ErrorCode maps an error to its stable wire code (CodeInternal when no
// typed sentinel matches).
func ErrorCode(err error) string {
	for _, e := range codeTable {
		if errors.Is(err, e.err) {
			return e.code
		}
	}
	return CodeInternal
}

func sentinel(code string) error {
	for _, e := range codeTable {
		if e.code == code {
			return e.err
		}
	}
	return nil
}

// EncodeErr renders an error as a TErr payload.
func EncodeErr(err error) []byte {
	var e Enc
	e.Str(ErrorCode(err))
	e.Str(err.Error())
	return e.Bytes()
}

// DecodeErr rebuilds the error from a TErr payload.
func DecodeErr(body []byte) error {
	d := NewDec(body)
	code, msg := d.Str(), d.Str()
	if d.Err() != nil {
		return d.Err()
	}
	return &Error{Code: code, Msg: msg}
}

// Atom is one query atom on the wire.
type Atom struct {
	Rel  string
	Vars []string
}

// Query is a join query on the wire: the name, the output variable order
// (the head), and the body atoms. It reconstructs losslessly — including the
// head-fixed output order — via ToQuery.
type Query struct {
	Name  string
	Head  []string
	Atoms []Atom
}

// FromQuery converts the in-memory representation for transport.
func FromQuery(q *query.Query) Query {
	wq := Query{Name: q.Name, Head: q.Vars()}
	wq.Atoms = make([]Atom, len(q.Atoms))
	for i, a := range q.Atoms {
		wq.Atoms[i] = Atom{Rel: a.Rel, Vars: a.Vars}
	}
	return wq
}

// ToQuery rebuilds the in-memory query, re-validating structure and head
// coverage (a hostile peer can send anything).
func (wq Query) ToQuery() (*query.Query, error) {
	atoms := make([]query.Atom, len(wq.Atoms))
	for i, a := range wq.Atoms {
		atoms[i] = query.Atom{Rel: a.Rel, Vars: a.Vars}
	}
	q, err := query.NewHeaded(wq.Name, wq.Head, atoms...)
	if err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// Encode appends the query to a payload.
func (wq Query) Encode(e *Enc) {
	e.Str(wq.Name)
	e.StrList(wq.Head)
	e.Int(len(wq.Atoms))
	for _, a := range wq.Atoms {
		e.Str(a.Rel)
		e.StrList(a.Vars)
	}
}

// DecodeQuery consumes a query from a payload.
func DecodeQuery(d *Dec) Query {
	var wq Query
	wq.Name = d.Str()
	wq.Head = d.StrList()
	n := d.Count()
	if d.Err() != nil {
		return Query{}
	}
	wq.Atoms = make([]Atom, n)
	for i := range wq.Atoms {
		wq.Atoms[i] = Atom{Rel: d.Str(), Vars: d.StrList()}
	}
	return wq
}

// Option flag bits (the ablation toggles of repro.Options).
const (
	flagDisableProbeMemo = 1 << iota
	flagDisableComplete
	flagDisableSkeleton
	flagDisableCountReuse
)

// EncodeOptions appends engine options to a payload.
func EncodeOptions(e *Enc, o repro.Options) {
	e.Str(string(o.Algorithm))
	e.Int(o.Workers)
	e.Int(o.Granularity)
	e.StrList(o.GAO)
	e.Str(string(o.Backend))
	var flags uint64
	if o.DisableProbeMemo {
		flags |= flagDisableProbeMemo
	}
	if o.DisableComplete {
		flags |= flagDisableComplete
	}
	if o.DisableSkeleton {
		flags |= flagDisableSkeleton
	}
	if o.DisableCountReuse {
		flags |= flagDisableCountReuse
	}
	e.U64(flags)
	e.Int(o.MaxRows)
}

// DecodeOptions consumes engine options from a payload.
func DecodeOptions(d *Dec) repro.Options {
	var o repro.Options
	o.Algorithm = repro.Algorithm(d.Str())
	o.Workers = d.Int()
	o.Granularity = d.Int()
	o.GAO = d.StrList()
	o.Backend = repro.Backend(d.Str())
	flags := d.U64()
	o.DisableProbeMemo = flags&flagDisableProbeMemo != 0
	o.DisableComplete = flags&flagDisableComplete != 0
	o.DisableSkeleton = flags&flagDisableSkeleton != 0
	o.DisableCountReuse = flags&flagDisableCountReuse != 0
	o.MaxRows = d.Int()
	return o
}

// EncodeStats appends the unified counter snapshot to a payload.
func EncodeStats(e *Enc, s core.Stats) {
	for _, v := range [...]int64{
		s.PlanCacheHits, s.PlanCacheMisses, s.GAODerivations, s.IndexBindings,
		s.Executions, s.Outputs, s.Seeks, s.Probes, s.ProbeMemoHits,
		s.Constraints, s.FreeTupleSteps, s.ReuseHits, s.MemoStores,
	} {
		e.I64(v)
	}
}

// DecodeStats consumes a counter snapshot from a payload.
func DecodeStats(d *Dec) core.Stats {
	var s core.Stats
	for _, p := range [...]*int64{
		&s.PlanCacheHits, &s.PlanCacheMisses, &s.GAODerivations, &s.IndexBindings,
		&s.Executions, &s.Outputs, &s.Seeks, &s.Probes, &s.ProbeMemoHits,
		&s.Constraints, &s.FreeTupleSteps, &s.ReuseHits, &s.MemoStores,
	} {
		*p = d.I64()
	}
	return s
}
