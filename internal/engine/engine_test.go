package engine

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/lftj"
	"repro/internal/query"
	"repro/internal/testutil"
)

func TestRegistryAllAlgorithms(t *testing.T) {
	for _, a := range Algorithms() {
		e, err := New(Options{Algorithm: a})
		if err != nil {
			t.Errorf("New(%s): %v", a, err)
			continue
		}
		if e.Name() == "" {
			t.Errorf("%s: empty name", a)
		}
	}
	if _, err := New(Options{Algorithm: "nope"}); err == nil {
		t.Error("unknown algorithm should fail")
	}
}

// TestParallelMatchesSequential: the §4.10 partitioning must not change
// counts, for either parallel engine, across worker counts and granularity.
func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	db := testutil.RandomGraphDB(rng, 40, 300, 2)
	queries := []*query.Query{query.Clique(3), query.Clique(4), query.Path(3), query.Comb(), query.Cycle(4)}
	for _, q := range queries {
		want, err := (lftj.Engine{}).Count(context.Background(), q, db)
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range []Algorithm{LFTJ, MS} {
			for _, workers := range []int{1, 2, 4} {
				for _, f := range []int{0, 1, 3, 8} {
					e, err := New(Options{Algorithm: alg, Workers: workers, Granularity: f})
					if err != nil {
						t.Fatal(err)
					}
					got, err := e.Count(context.Background(), q, db)
					if err != nil {
						t.Fatalf("%s %s w=%d f=%d: %v", alg, q.Name, workers, f, err)
					}
					if got != want {
						t.Errorf("%s %s w=%d f=%d: got %d, want %d", alg, q.Name, workers, f, got, want)
					}
				}
			}
		}
	}
}

func TestAllEnginesAgreeOnTriangle(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	db := testutil.RandomGraphDB(rng, 30, 200, 2)
	q := query.Clique(3)
	want, err := (lftj.Engine{}).Count(context.Background(), q, db)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []Algorithm{LFTJ, MS, PSQL, MonetDB, GraphLab} {
		e, err := New(Options{Algorithm: a, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.Count(context.Background(), q, db)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if got != want {
			t.Errorf("%s: got %d, want %d", a, got, want)
		}
	}
}

func TestSplitJobsCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := testutil.RandomGraphDB(rng, 50, 200, 2)
	p := &parallel{opts: Options{Algorithm: LFTJ}}
	jobs, err := p.splitJobs(query.Clique(3), db, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) == 0 {
		t.Fatal("no jobs")
	}
	if jobs[0][0] != -1 {
		t.Errorf("first job starts at %d, want -1", jobs[0][0])
	}
	for i := 1; i < len(jobs); i++ {
		if jobs[i][0] != jobs[i-1][1] {
			t.Errorf("job %d not contiguous: %v after %v", i, jobs[i], jobs[i-1])
		}
	}
}

func TestParallelEnumerateSequentialOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := testutil.RandomGraphDB(rng, 10, 30, 2)
	e, err := New(Options{Algorithm: MS, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := e.Enumerate(context.Background(), query.Clique(3), db, func([]int64) bool {
		n++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want, _ := (lftj.Engine{}).Count(context.Background(), query.Clique(3), db)
	if int64(n) != want {
		t.Errorf("enumerated %d, want %d", n, want)
	}
}

func TestParallelCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := testutil.RandomGraphDB(rng, 200, 5000, 2)
	e, err := New(Options{Algorithm: LFTJ, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Count(ctx, query.Clique(4), db); err == nil {
		t.Error("cancelled context should surface an error")
	}
}

func TestGAOOverridePropagates(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	db := testutil.RandomGraphDB(rng, 15, 60, 2)
	q := query.Path(3)
	want, _ := (lftj.Engine{}).Count(context.Background(), q, db)
	for _, alg := range []Algorithm{LFTJ, MS} {
		e, err := New(Options{Algorithm: alg, GAO: []string{"d", "c", "b", "a"}, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.Count(context.Background(), q, db)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if got != want {
			t.Errorf("%s with GAO override: got %d, want %d", alg, got, want)
		}
	}
}
