package query

import "fmt"

// Relation names used by the benchmark queries. Edge is the symmetric edge
// relation (both directions of every undirected edge); Fwd is the oriented
// relation E< = {(u,v) : u < v}. Clique and cycle queries are phrased over
// Fwd, which encodes the paper's order predicates a<b<c… exactly (the
// inequality chain follows by transitivity of the per-atom orientations), so
// engines need no inequality filters. Sample1..Sample4 are the random node
// samples v1..v4 from §5.1.
const (
	Edge    = "edge"
	Fwd     = "fwd"
	Sample1 = "v1"
	Sample2 = "v2"
	Sample3 = "v3"
	Sample4 = "v4"
)

var letters = []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}

// Clique returns the k-clique query over the oriented edge relation,
// equivalent to the paper's edge(a,b), edge(b,c), edge(a,c), a<b<c (§5.1).
func Clique(k int) *Query {
	if k < 3 || k > len(letters) {
		panic(fmt.Sprintf("query: Clique(%d) out of range", k))
	}
	var atoms []Atom
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			atoms = append(atoms, Atom{Rel: Fwd, Vars: []string{letters[i], letters[j]}})
		}
	}
	return New(fmt.Sprintf("%d-clique", k), atoms...)
}

// Cycle returns the k-cycle query with the paper's order predicate
// a<b<...<z, over the oriented edge relation.
func Cycle(k int) *Query {
	if k < 3 || k > len(letters) {
		panic(fmt.Sprintf("query: Cycle(%d) out of range", k))
	}
	var atoms []Atom
	for i := 0; i+1 < k; i++ {
		atoms = append(atoms, Atom{Rel: Fwd, Vars: []string{letters[i], letters[i+1]}})
	}
	atoms = append(atoms, Atom{Rel: Fwd, Vars: []string{letters[0], letters[k-1]}})
	return New(fmt.Sprintf("%d-cycle", k), atoms...)
}

// Path returns the paper's k-path query: a path of k edges whose endpoints
// are drawn from the samples v1 and v2:
//
//	v1(a), v2(z), edge(a,b), ..., edge(y,z)
func Path(k int) *Query {
	if k < 1 || k >= len(letters) {
		panic(fmt.Sprintf("query: Path(%d) out of range", k))
	}
	atoms := []Atom{
		{Rel: Sample1, Vars: []string{letters[0]}},
		{Rel: Sample2, Vars: []string{letters[k]}},
	}
	for i := 0; i < k; i++ {
		atoms = append(atoms, Atom{Rel: Edge, Vars: []string{letters[i], letters[i+1]}})
	}
	return New(fmt.Sprintf("%d-path", k), atoms...)
}

// Tree returns the paper's {1,2}-tree query: complete binary trees with 2^n
// leaves, each leaf drawn from a different random sample.
//
//	1-tree: v1(b), v2(c), edge(a,b), edge(a,c)
//	2-tree: adds a second level with leaves from v1..v4
func Tree(n int) *Query {
	switch n {
	case 1:
		return New("1-tree",
			Atom{Rel: Sample1, Vars: []string{"b"}},
			Atom{Rel: Sample2, Vars: []string{"c"}},
			Atom{Rel: Edge, Vars: []string{"a", "b"}},
			Atom{Rel: Edge, Vars: []string{"a", "c"}},
		)
	case 2:
		return New("2-tree",
			Atom{Rel: Sample1, Vars: []string{"d"}},
			Atom{Rel: Sample2, Vars: []string{"e"}},
			Atom{Rel: Sample3, Vars: []string{"f"}},
			Atom{Rel: Sample4, Vars: []string{"g"}},
			Atom{Rel: Edge, Vars: []string{"a", "b"}},
			Atom{Rel: Edge, Vars: []string{"a", "c"}},
			Atom{Rel: Edge, Vars: []string{"b", "d"}},
			Atom{Rel: Edge, Vars: []string{"b", "e"}},
			Atom{Rel: Edge, Vars: []string{"c", "f"}},
			Atom{Rel: Edge, Vars: []string{"c", "g"}},
		)
	default:
		panic(fmt.Sprintf("query: Tree(%d) out of range", n))
	}
}

// Comb returns the paper's 2-comb query: left-deep binary trees with two
// leaves drawn from different samples:
//
//	v1(c), v2(d), edge(a,b), edge(a,c), edge(b,d)
func Comb() *Query {
	return New("2-comb",
		Atom{Rel: Sample1, Vars: []string{"c"}},
		Atom{Rel: Sample2, Vars: []string{"d"}},
		Atom{Rel: Edge, Vars: []string{"a", "b"}},
		Atom{Rel: Edge, Vars: []string{"a", "c"}},
		Atom{Rel: Edge, Vars: []string{"b", "d"}},
	)
}

// Lollipop returns the paper's {2,3}-lollipop query (§4.12): an i-path from
// a sampled start node followed by an (i+1)-clique attached at the path end.
//
//	2-lollipop: v1(a), edge(a,b), edge(b,c), edge(c,d), edge(d,e), edge(c,e)
func Lollipop(i int) *Query {
	if i != 2 && i != 3 {
		panic(fmt.Sprintf("query: Lollipop(%d) out of range", i))
	}
	atoms := []Atom{{Rel: Sample1, Vars: []string{letters[0]}}}
	for j := 0; j < i; j++ {
		atoms = append(atoms, Atom{Rel: Edge, Vars: []string{letters[j], letters[j+1]}})
	}
	// Clique on the path end plus i fresh vertices (i+1 vertices total).
	cliqueVars := make([]string, 0, i+1)
	for j := i; j <= 2*i; j++ {
		cliqueVars = append(cliqueVars, letters[j])
	}
	for x := 0; x < len(cliqueVars); x++ {
		for y := x + 1; y < len(cliqueVars); y++ {
			atoms = append(atoms, Atom{Rel: Edge, Vars: []string{cliqueVars[x], cliqueVars[y]}})
		}
	}
	return New(fmt.Sprintf("%d-lollipop", i), atoms...)
}

// PathVars returns, for a lollipop query built by Lollipop(i), the variables
// of the path part (including the attachment vertex) and of the clique part
// (attachment vertex first). The hybrid engine uses this split (§4.12).
func LollipopSplit(i int) (path, clique []string) {
	for j := 0; j <= i; j++ {
		path = append(path, letters[j])
	}
	for j := i; j <= 2*i; j++ {
		clique = append(clique, letters[j])
	}
	return path, clique
}
