package repro

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/query"
	"repro/internal/relation"
)

// TestPushdownEquivalenceProperty is the property pinning bound compilation:
// for random relations and random comparison predicates — including
// constants at and beyond both ends of the storage domain, and predicate
// combinations that compile to empty ranges — executing with pushed-down
// seek bounds must equal the unpushed plain join post-filtered by the same
// predicates (the brute-force reference), on both engines and the
// incremental backends.
func TestPushdownEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Constants stress the boundary arithmetic: far below the domain,
	// around zero, inside the data range, at the domain's top, and at the
	// saturation point of the half-open increment.
	consts := []int64{
		math.MinInt64, -relation.PosInf, -7, -1, 0, 1, 3, 6, 11, 12, 40,
		relation.PosInf - 1, relation.PosInf, math.MaxInt64 - 1, math.MaxInt64,
	}
	ops := []query.CmpOp{query.OpEq, query.OpNe, query.OpLt, query.OpLe, query.OpGt, query.OpGe}
	vars := []string{"a", "b", "c"}
	atoms := []query.Atom{
		{Rel: "r", Vars: []string{"a", "b"}},
		{Rel: "s", Vars: []string{"b", "c"}},
	}
	for trial := 0; trial < 80; trial++ {
		s := NewStore()
		for _, rel := range []string{"r", "s"} {
			if err := s.DefineRelation(rel, 2); err != nil {
				t.Fatal(err)
			}
			n := 5 + rng.Intn(30)
			tuples := make([][]int64, 0, n)
			for i := 0; i < n; i++ {
				u, v := int64(rng.Intn(12)), int64(rng.Intn(12))
				// A sprinkle of values at the very top of the domain so
				// bounds near PosInf actually select something.
				if rng.Intn(8) == 0 {
					u = relation.PosInf - 1
				}
				tuples = append(tuples, []int64{u, v})
			}
			if err := s.Load(rel, tuples); err != nil {
				t.Fatal(err)
			}
		}
		var preds []query.Pred
		for k := 0; k < 1+rng.Intn(3); k++ {
			p := query.Pred{Left: vars[rng.Intn(len(vars))], Op: ops[rng.Intn(len(ops))]}
			if rng.Intn(3) == 0 {
				p.IsVar = true
				p.Right = vars[rng.Intn(len(vars))]
			} else {
				p.Const = consts[rng.Intn(len(consts))]
			}
			preds = append(preds, p)
		}
		q, err := query.NewRule("prop", vars, nil, preds, atoms...)
		if err != nil {
			t.Fatalf("trial %d: NewRule(%v): %v", trial, preds, err)
		}
		want := referenceEval(t, s, q)
		for _, alg := range []Algorithm{LFTJ, MS} {
			for _, backend := range []Backend{BackendFlat, BackendCSR} {
				p, err := s.Prepare(q, Options{Algorithm: alg, Workers: 1, Backend: backend})
				if err != nil {
					t.Fatalf("trial %d %s/%s prepare (%v): %v", trial, alg, backend, preds, err)
				}
				rows := collectRows(t, p)
				sortedRows(rows)
				requireSameRows(t, fmt.Sprintf("trial %d %s/%s preds %v", trial, alg, backend, preds), rows, want)
			}
		}
	}
}

// TestPushdownEmptyRange pins the degenerate bounds explicitly: predicates
// whose compiled range [Lo, Hi) is empty must return zero rows without
// error, on both engines.
func TestPushdownEmptyRange(t *testing.T) {
	s := NewStore()
	if err := s.DefineRelation("e", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Load("e", [][]int64{{1, 2}, {3, 4}, {5, 6}}); err != nil {
		t.Fatal(err)
	}
	for _, src := range []string{
		"e(a, b), a < 0",
		"e(a, b), a > 100, a < 50",
		"e(a, b), a >= 4, a <= 2",
		"e(a, b), b = 2, b = 4",
		fmt.Sprintf("e(a, b), a >= %d", relation.PosInf),
	} {
		q, err := s.ParseQuery("q", src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		for _, alg := range []Algorithm{LFTJ, MS} {
			p, err := s.Prepare(q, Options{Algorithm: alg, Workers: 1})
			if err != nil {
				t.Fatalf("%s %q prepare: %v", alg, src, err)
			}
			if rows := collectRows(t, p); len(rows) != 0 {
				t.Errorf("%s %q: %d rows, want 0", alg, src, len(rows))
			}
		}
	}
}
