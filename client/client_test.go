package client_test

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"repro"
	"repro/client"
	"repro/server"
)

// serve boots a single-tenant server for st on a loopback port.
func serve(t *testing.T, st *repro.Store) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.NewSingle(st)
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return l.Addr().String()
}

func dial(t *testing.T, addr string, opts ...client.Option) *client.Store {
	t.Helper()
	c, err := client.Dial(context.Background(), addr, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestDialFailure pins the error contract of an unreachable server: a plain
// error, not a panic or a hang.
func TestDialFailure(t *testing.T) {
	// Reserve a port and close it so nothing listens there.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	if _, err := client.Dial(context.Background(), addr); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

// TestDialRetry pins WithDialRetry: a server that starts listening only after
// the first attempts have failed is still reached, a bounded retry budget
// against a port that never opens reports the last dial error, and context
// cancellation cuts the backoff sleeps short.
func TestDialRetry(t *testing.T) {
	st := repro.NewStore()

	// Reserve a port, close it, and bring the server up only after a delay —
	// the booting-cluster shape WithDialRetry exists for.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	go func() {
		time.Sleep(150 * time.Millisecond)
		l2, err := net.Listen("tcp", addr)
		if err != nil {
			return // port re-taken by another process; the dial below fails loudly
		}
		srv := server.NewSingle(st)
		t.Cleanup(func() { srv.Close() })
		srv.Serve(l2)
	}()
	c, err := client.Dial(context.Background(), addr, client.WithDialRetry(20, 25*time.Millisecond))
	if err != nil {
		t.Fatalf("dial with retry against delayed listener: %v", err)
	}
	c.Close()

	// A port that never opens must exhaust the budget, not hang.
	l3, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := l3.Addr().String()
	l3.Close()
	if _, err := client.Dial(context.Background(), dead, client.WithDialRetry(3, time.Millisecond)); err == nil {
		t.Fatal("dial with retry to closed port succeeded")
	}

	// Context cancellation interrupts the backoff sleep.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := client.Dial(ctx, dead, client.WithDialRetry(100, time.Second)); err == nil {
		t.Fatal("dial survived a cancelled context")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled dial took %v, want prompt return", elapsed)
	}
}

// TestTypedErrorsAcrossWire pins that every schema- and planning-level typed
// error survives the network boundary for errors.Is — the property that lets
// error-handling code move between Local and Dial unchanged.
func TestTypedErrorsAcrossWire(t *testing.T) {
	st := repro.NewStore()
	if err := st.DefineRelation("e", 2); err != nil {
		t.Fatal(err)
	}
	c := dial(t, serve(t, st))

	if err := c.DefineRelation("e", 3); !errors.Is(err, repro.ErrRelationExists) {
		t.Errorf("conflicting redefine: %v, want ErrRelationExists", err)
	}
	if err := c.DefineRelation("e", 2); err != nil {
		t.Errorf("same-arity redefine: %v, want no-op nil", err)
	}
	if err := c.DefineRelation("bad name", 2); err == nil {
		t.Error("bad identifier accepted")
	}
	if err := c.Load("nope", nil); !errors.Is(err, repro.ErrUnknownRelation) {
		t.Errorf("load unknown: %v, want ErrUnknownRelation", err)
	}
	if err := c.Load("e", [][]int64{{1}}); !errors.Is(err, repro.ErrArityMismatch) {
		t.Errorf("load arity: %v, want ErrArityMismatch", err)
	}
	if err := c.Apply("e", [][]int64{{-1, 2}}, nil); !errors.Is(err, repro.ErrValueOutOfRange) {
		t.Errorf("apply domain: %v, want ErrValueOutOfRange", err)
	}
	if _, err := c.ParseQuery("q", "nope(a, b)"); !errors.Is(err, repro.ErrUnknownRelation) {
		t.Errorf("parse unknown relation: %v, want ErrUnknownRelation", err)
	}
	if _, err := c.ParseQuery("q", "e(a, b, c)"); !errors.Is(err, repro.ErrArityMismatch) {
		t.Errorf("parse arity: %v, want ErrArityMismatch", err)
	}
	if _, err := c.ParseQuery("q", "q(a) :- e(a, b)"); err != nil {
		t.Errorf("projection head should parse over the wire: %v", err)
	}
	q, err := c.ParseQuery("q", "e(a, b)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Prepare(q, repro.Options{Algorithm: "nope"}); !errors.Is(err, repro.ErrUnknownAlgorithm) {
		t.Errorf("unknown algorithm: %v, want ErrUnknownAlgorithm", err)
	}
	if _, err := c.Prepare(q, repro.Options{Backend: "btree"}); !errors.Is(err, repro.ErrUnknownBackend) {
		t.Errorf("unknown backend: %v, want ErrUnknownBackend", err)
	}
	if _, err := c.Arity("nope"); !errors.Is(err, repro.ErrUnknownRelation) {
		t.Errorf("arity unknown: %v, want ErrUnknownRelation", err)
	}
	// A plan-less engine inside a transaction is refused with the local
	// sentinel, through the wire.
	p, err := c.Prepare(q, repro.Options{Algorithm: repro.Yannakakis})
	if err != nil {
		t.Fatal(err)
	}
	txn, err := c.ReadTxn()
	if err != nil {
		t.Fatal(err)
	}
	defer txn.Close()
	if _, err := txn.Count(context.Background(), p); !errors.Is(err, repro.ErrTxnUnplanned) {
		t.Errorf("unplanned in txn: %v, want ErrTxnUnplanned", err)
	}
}

// TestForeignPrepared pins handle hygiene: a handle prepared on one
// connection cannot execute on another connection's transaction or batch.
func TestForeignPrepared(t *testing.T) {
	ctx := context.Background()
	st := repro.NewStore()
	if err := st.DefineRelation("e", 2); err != nil {
		t.Fatal(err)
	}
	if err := st.Load("e", [][]int64{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	addr := serve(t, st)
	c1 := dial(t, addr)
	c2 := dial(t, addr)
	q, err := c1.ParseQuery("q", "e(a, b)")
	if err != nil {
		t.Fatal(err)
	}
	p1, err := c1.Prepare(q, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	txn2, err := c2.ReadTxn()
	if err != nil {
		t.Fatal(err)
	}
	defer txn2.Close()
	if _, err := txn2.Count(ctx, p1); !errors.Is(err, repro.ErrForeignPrepared) {
		t.Errorf("foreign txn count: %v, want ErrForeignPrepared", err)
	}
	results, err := c2.Batch(ctx, []repro.BatchRequest{{Prepared: p1}})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(results[0].Err, repro.ErrForeignPrepared) {
		t.Errorf("foreign batch: %v, want ErrForeignPrepared", results[0].Err)
	}
	// Closing a handle invalidates it server-side.
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := p1.Count(ctx); !errors.Is(err, client.ErrUnknownHandle) {
		t.Errorf("count after close: %v, want ErrUnknownHandle", err)
	}
}

// TestRemoteApplyAll drives the atomic multi-relation write through the wire
// and checks both the write semantics and the schema checks.
func TestRemoteApplyAll(t *testing.T) {
	ctx := context.Background()
	st := repro.NewStore()
	for _, name := range []string{"follows", "likes"} {
		if err := st.DefineRelation(name, 2); err != nil {
			t.Fatal(err)
		}
	}
	c := dial(t, serve(t, st))
	err := c.ApplyAll(map[string][]repro.Delta{
		"follows": {repro.Insert(1, 2), repro.Insert(2, 3)},
		"likes":   {repro.Insert(3, 1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	q, err := c.ParseQuery("loop", "follows(a, b), follows(b, c), likes(c, a)")
	if err != nil {
		t.Fatal(err)
	}
	n, err := c.Count(ctx, q, repro.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("loop count = %d, want 1", n)
	}
	// Deletes and inserts in one call; delete-after-insert per relation.
	err = c.ApplyAll(map[string][]repro.Delta{
		"likes": {repro.Remove(3, 1), repro.Insert(9, 9), repro.Remove(9, 9)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n, err = c.Count(ctx, q, repro.Options{Workers: 1}); err != nil || n != 0 {
		t.Fatalf("after delete: count %d err %v, want 0", n, err)
	}
	// A failed batch is rejected as a whole with the typed error.
	err = c.ApplyAll(map[string][]repro.Delta{
		"follows": {repro.Insert(5, 6)},
		"nope":    {repro.Insert(1, 1)},
	})
	if !errors.Is(err, repro.ErrUnknownRelation) {
		t.Fatalf("bad batch: %v, want ErrUnknownRelation", err)
	}
	fresh, err := c.ParseQuery("f", "follows(a, b)")
	if err != nil {
		t.Fatal(err)
	}
	if n, err = c.Count(ctx, fresh, repro.Options{Workers: 1}); err != nil || n != 2 {
		t.Fatalf("failed batch leaked a write: count %d err %v, want 2", n, err)
	}
}

// TestQuerierSeam runs the same workload against repro.Local and a Dial'd
// client — the one-constructor-change property the shared interface exists
// for — and requires identical behavior.
func TestQuerierSeam(t *testing.T) {
	ctx := context.Background()
	workload := func(q repro.Querier) (int64, [][]int64, error) {
		if err := q.DefineRelation("edge", 2); err != nil {
			return 0, nil, err
		}
		if err := q.Load("edge", [][]int64{{0, 1}, {1, 2}, {2, 0}, {2, 3}}); err != nil {
			return 0, nil, err
		}
		if err := q.Apply("edge", [][]int64{{3, 0}}, [][]int64{{2, 3}}); err != nil {
			return 0, nil, err
		}
		pat, err := q.ParseQuery("tri", "edge(a, b), edge(b, c), edge(c, a)")
		if err != nil {
			return 0, nil, err
		}
		p, err := q.Prepare(pat, repro.Options{Workers: 1})
		if err != nil {
			return 0, nil, err
		}
		defer p.Close()
		txn, err := q.ReadTxn()
		if err != nil {
			return 0, nil, err
		}
		defer txn.Close()
		n, err := txn.Count(ctx, p)
		if err != nil {
			return 0, nil, err
		}
		var rows [][]int64
		for row := range txn.Rows(ctx, p) {
			rows = append(rows, append([]int64(nil), row...))
		}
		results, err := q.Batch(ctx, []repro.BatchRequest{{Prepared: p, Rows: true}})
		if err != nil {
			return 0, nil, err
		}
		if results[0].Err != nil {
			return 0, nil, results[0].Err
		}
		if results[0].Count != n {
			return 0, nil, errors.New("batch count disagrees with txn count")
		}
		return n, rows, nil
	}

	ln, lrows, err := workload(repro.Local(repro.NewStore()))
	if err != nil {
		t.Fatalf("local workload: %v", err)
	}
	remote := dial(t, serve(t, repro.NewStore()))
	rn, rrows, err := workload(remote)
	if err != nil {
		t.Fatalf("remote workload: %v", err)
	}
	if ln != rn || len(lrows) != len(rrows) {
		t.Fatalf("seam mismatch: local (%d, %d rows), remote (%d, %d rows)", ln, len(lrows), rn, len(rrows))
	}
	for i := range lrows {
		for k := range lrows[i] {
			if lrows[i][k] != rrows[i][k] {
				t.Fatalf("row %d: local %v, remote %v", i, lrows[i], rrows[i])
			}
		}
	}
	// The loaded cycle 0→1→2→0 matches the directed pattern in all three
	// rotations; the applied churn (insert 3→0, delete 2→3) adds none.
	if ln != 3 {
		t.Fatalf("triangle count = %d, want 3", ln)
	}
}

// TestRemoteExplain pins that the compiled-plan rendering crosses the wire.
func TestRemoteExplain(t *testing.T) {
	st := repro.NewStore()
	if err := st.DefineRelation("e", 2); err != nil {
		t.Fatal(err)
	}
	c := dial(t, serve(t, st))
	q, err := c.ParseQuery("q", "e(a, b), e(b, c)")
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Prepare(q, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	text, err := p.(*client.Prepared).Explain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if text == "" {
		t.Fatal("empty explanation")
	}
}
