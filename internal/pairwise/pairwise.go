// Package pairwise implements the conventional RDBMS baseline the paper
// compares against (§5.1: PostgreSQL, MonetDB): binary hash joins over
// materialized intermediates, ordered either by a Selinger-style
// dynamic-programming optimizer with textbook cardinality estimation
// (the "psql" flavor) or by a greedy smallest-first bulk order (the
// "monetdb" flavor). On cyclic graph patterns these plans materialize the
// enormous intermediate results of edge self-joins — exactly the
// asymptotic suboptimality (Ω(√N) factor) the paper attributes to
// pairwise optimizers.
package pairwise

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/relation"
)

// Flavor selects the join-order strategy.
type Flavor int

const (
	// DP is Selinger-style dynamic programming over connected subsets
	// (the PostgreSQL stand-in).
	DP Flavor = iota
	// Greedy joins the two cheapest-estimate relations first and then
	// repeatedly folds in the atom minimizing the next intermediate
	// (the MonetDB stand-in: bulk operator-at-a-time processing).
	Greedy
)

// ErrMemoryExceeded reports that an intermediate result outgrew the
// configured budget — the reproduction's stand-in for the thrashing and
// OOM conditions the paper marks in Tables 6–7.
var ErrMemoryExceeded = errors.New("pairwise: intermediate result exceeds memory budget")

// Options configure the engine.
type Options struct {
	Flavor Flavor
	// MaxRows caps any intermediate's row count (0 = default 30M).
	MaxRows int
}

// Engine is the pairwise-join baseline.
type Engine struct {
	Opts Options
}

// Name implements core.Engine.
func (e Engine) Name() string {
	if e.Opts.Flavor == Greedy {
		return "monetdb"
	}
	return "psql"
}

const defaultMaxRows = 30_000_000

// Count implements core.Engine.
func (e Engine) Count(ctx context.Context, q *query.Query, db *core.DB) (int64, error) {
	res, err := e.join(ctx, q, db)
	if err != nil {
		return 0, err
	}
	return int64(res.count()), nil
}

// Enumerate implements core.Engine.
func (e Engine) Enumerate(ctx context.Context, q *query.Query, db *core.DB, emit func([]int64) bool) error {
	res, err := e.join(ctx, q, db)
	if err != nil {
		return err
	}
	idx := q.VarIndex()
	perm := make([]int, len(res.schema))
	for i, v := range res.schema {
		perm[i] = idx[v]
	}
	out := make([]int64, len(res.schema))
	for r := 0; r < res.count(); r++ {
		row := res.row(r)
		for i, p := range perm {
			out[p] = row[i]
		}
		if !emit(out) {
			return nil
		}
	}
	return nil
}

// table is a materialized intermediate with a variable schema.
type table struct {
	schema []string
	rows   []int64
}

func (t *table) count() int {
	if len(t.schema) == 0 {
		return 0
	}
	return len(t.rows) / len(t.schema)
}

func (t *table) row(i int) []int64 {
	w := len(t.schema)
	return t.rows[i*w : (i+1)*w]
}

// join plans and executes the full query, returning the materialized result.
func (e Engine) join(ctx context.Context, q *query.Query, db *core.DB) (*table, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if len(q.Atoms) > 20 {
		return nil, fmt.Errorf("pairwise: too many atoms (%d)", len(q.Atoms))
	}
	base := make([]*table, len(q.Atoms))
	stats := make([]stat, len(q.Atoms))
	for i, a := range q.Atoms {
		r, err := db.Relation(a.Rel)
		if err != nil {
			return nil, err
		}
		if r.Arity() != len(a.Vars) {
			return nil, fmt.Errorf("pairwise: atom %s arity mismatch with %s", a, r)
		}
		base[i] = baseTable(a, r)
		stats[i] = statFor(a, r)
	}
	order, err := e.planOrder(q, stats)
	if err != nil {
		return nil, err
	}
	maxRows := e.Opts.MaxRows
	if maxRows <= 0 {
		maxRows = defaultMaxRows
	}
	tick := core.NewTicker(ctx)
	cur := base[order[0]]
	for _, ai := range order[1:] {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		next, err := hashJoin(cur, base[ai], maxRows, tick)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return cur, nil
}

func baseTable(a query.Atom, r *relation.Relation) *table {
	t := &table{schema: append([]string(nil), a.Vars...)}
	t.rows = make([]int64, 0, r.Len()*r.Arity())
	for i := 0; i < r.Len(); i++ {
		t.rows = append(t.rows, r.Tuple(i)...)
	}
	return t
}

// stat carries the optimizer statistics for one atom: cardinality and
// per-variable distinct counts.
type stat struct {
	card     float64
	distinct map[string]float64
}

func statFor(a query.Atom, r *relation.Relation) stat {
	s := stat{card: float64(r.Len()), distinct: make(map[string]float64, len(a.Vars))}
	for col, v := range a.Vars {
		if col == 0 {
			s.distinct[v] = float64(r.DistinctPrefixes(1))
			continue
		}
		// Distinct count of a non-leading column: estimate via a small exact
		// scan (relations are modest in this reproduction).
		seen := make(map[int64]struct{})
		for i := 0; i < r.Len(); i++ {
			seen[r.Value(i, col)] = struct{}{}
		}
		s.distinct[v] = float64(len(seen))
	}
	return s
}

// estJoin is the System R textbook estimate: |L ⋈ R| = |L|·|R| / Π_v
// max(d_L(v), d_R(v)) over shared variables v.
func estJoin(l, r stat) stat {
	out := stat{card: l.card * r.card, distinct: make(map[string]float64, len(l.distinct)+len(r.distinct))}
	for v, d := range l.distinct {
		out.distinct[v] = d
	}
	for v, d := range r.distinct {
		if d2, ok := out.distinct[v]; ok {
			m := math.Max(d, d2)
			if m > 0 {
				out.card /= m
			}
			out.distinct[v] = math.Min(d, d2)
		} else {
			out.distinct[v] = d
		}
	}
	for v := range out.distinct {
		out.distinct[v] = math.Min(out.distinct[v], math.Max(out.card, 1))
	}
	return out
}

func shares(a, b stat) bool {
	for v := range a.distinct {
		if _, ok := b.distinct[v]; ok {
			return true
		}
	}
	return false
}

// planOrder returns the join order as a sequence of atom indices (left-deep).
func (e Engine) planOrder(q *query.Query, stats []stat) ([]int, error) {
	if len(q.Atoms) == 1 {
		return []int{0}, nil
	}
	if e.Opts.Flavor == Greedy {
		return greedyOrder(stats), nil
	}
	return dpOrder(stats), nil
}

// greedyOrder mimics bulk column-store execution: start from the smallest
// base relation, then repeatedly fold in the connected atom whose join
// estimate is smallest (cross products only when forced).
func greedyOrder(stats []stat) []int {
	m := len(stats)
	start := 0
	for i := 1; i < m; i++ {
		if stats[i].card < stats[start].card {
			start = i
		}
	}
	order := []int{start}
	used := make([]bool, m)
	used[start] = true
	cur := stats[start]
	for len(order) < m {
		best, bestCard := -1, math.Inf(1)
		connectedOnly := false
		for i := 0; i < m; i++ {
			if !used[i] && shares(cur, stats[i]) {
				connectedOnly = true
				break
			}
		}
		for i := 0; i < m; i++ {
			if used[i] || (connectedOnly && !shares(cur, stats[i])) {
				continue
			}
			if est := estJoin(cur, stats[i]); est.card < bestCard {
				bestCard = est.card
				best = i
			}
		}
		used[best] = true
		order = append(order, best)
		cur = estJoin(cur, stats[best])
	}
	return order
}

// dpOrder is Selinger DP over subsets restricted to left-deep plans with
// connected extensions where possible; cost is the sum of intermediate
// cardinalities.
func dpOrder(stats []stat) []int {
	m := len(stats)
	type entry struct {
		cost  float64
		est   stat
		order []int
		ok    bool
	}
	dp := make([]entry, 1<<m)
	for i := 0; i < m; i++ {
		dp[1<<i] = entry{cost: 0, est: stats[i], order: []int{i}, ok: true}
	}
	for mask := 1; mask < 1<<m; mask++ {
		if !dp[mask].ok {
			continue
		}
		cur := dp[mask]
		// Prefer connected extensions; fall back to cross products only if
		// no connected atom remains.
		anyConnected := false
		for i := 0; i < m; i++ {
			if mask&(1<<i) == 0 && shares(cur.est, stats[i]) {
				anyConnected = true
				break
			}
		}
		for i := 0; i < m; i++ {
			if mask&(1<<i) != 0 {
				continue
			}
			if anyConnected && !shares(cur.est, stats[i]) {
				continue
			}
			est := estJoin(cur.est, stats[i])
			cost := cur.cost + est.card
			next := mask | 1<<i
			if !dp[next].ok || cost < dp[next].cost {
				order := make([]int, len(cur.order)+1)
				copy(order, cur.order)
				order[len(cur.order)] = i
				dp[next] = entry{cost: cost, est: est, order: order, ok: true}
			}
		}
	}
	return dp[(1<<m)-1].order
}

// hashJoin materializes l ⋈ r, enforcing the row budget.
func hashJoin(l, r *table, maxRows int, tick *core.Ticker) (*table, error) {
	// Build on the smaller side.
	if l.count() > r.count() {
		l, r = r, l
	}
	shared, rOnly := splitSchema(l.schema, r.schema)
	out := &table{schema: append(append([]string(nil), l.schema...), rOnly.names...)}

	// Key extraction positions.
	lPos := make([]int, len(shared.l))
	copy(lPos, shared.l)
	build := make(map[string][]int32, l.count())
	keyBuf := make([]byte, 0, len(lPos)*8)
	for i := 0; i < l.count(); i++ {
		row := l.row(i)
		keyBuf = keyBuf[:0]
		for _, p := range lPos {
			keyBuf = appendInt64(keyBuf, row[p])
		}
		build[string(keyBuf)] = append(build[string(keyBuf)], int32(i))
	}
	for j := 0; j < r.count(); j++ {
		if err := tick.Tick(); err != nil {
			return nil, err
		}
		row := r.row(j)
		keyBuf = keyBuf[:0]
		for _, p := range shared.r {
			keyBuf = appendInt64(keyBuf, row[p])
		}
		for _, i := range build[string(keyBuf)] {
			out.rows = append(out.rows, l.row(int(i))...)
			for _, p := range rOnly.pos {
				out.rows = append(out.rows, row[p])
			}
			if out.count() > maxRows {
				return nil, ErrMemoryExceeded
			}
		}
	}
	return out, nil
}

func appendInt64(b []byte, v int64) []byte {
	u := uint64(v)
	return append(b, byte(u), byte(u>>8), byte(u>>16), byte(u>>24), byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
}

type sharedCols struct {
	l, r []int
}

type extraCols struct {
	names []string
	pos   []int
}

// splitSchema computes the shared-variable key columns and the right-only
// payload columns.
func splitSchema(ls, rs []string) (sharedCols, extraCols) {
	lIdx := make(map[string]int, len(ls))
	for i, v := range ls {
		lIdx[v] = i
	}
	var sh sharedCols
	var ex extraCols
	for j, v := range rs {
		if i, ok := lIdx[v]; ok {
			sh.l = append(sh.l, i)
			sh.r = append(sh.r, j)
		} else {
			ex.names = append(ex.names, v)
			ex.pos = append(ex.pos, j)
		}
	}
	return sh, ex
}
