package relation

import (
	"math/rand"
	"reflect"
	"testing"
)

// trieCursor is the shared contract of TrieIterator and CSRCursor, so the
// differential tests below can drive both identically.
type trieCursor interface {
	Open()
	Up()
	Next()
	SeekGE(v int64)
	AtEnd() bool
	Key() int64
}

// walk enumerates the full trie depth-first, recording every (depth, key)
// visit in order.
func walk(c trieCursor, arity int) [][2]int64 {
	var out [][2]int64
	var rec func(depth int)
	rec = func(depth int) {
		c.Open()
		for !c.AtEnd() {
			out = append(out, [2]int64{int64(depth), c.Key()})
			if depth+1 < arity {
				rec(depth + 1)
			}
			c.Next()
		}
		c.Up()
	}
	rec(0)
	return out
}

func TestCSRCursorMatchesTrieIterator(t *testing.T) {
	for _, tc := range []struct{ arity, n, domain int }{
		{1, 50, 10},
		{2, 200, 12},
		{3, 300, 8},
		{4, 400, 6},
	} {
		r := randomRelation(rand.New(rand.NewSource(int64(tc.arity*1000+tc.n))), tc.arity, tc.n, tc.domain)
		csr := NewCSRTrie(r)
		if csr.Len() != r.Len() || csr.Arity() != r.Arity() || csr.Name() != r.Name() {
			t.Fatalf("CSR header mismatch: %v vs %v", csr, r)
		}
		flat := walk(NewTrieIterator(r), r.Arity())
		got := walk(NewCSRCursor(csr), r.Arity())
		if !reflect.DeepEqual(flat, got) {
			t.Errorf("arity %d: CSR walk differs from flat walk (flat %d visits, csr %d)", tc.arity, len(flat), len(got))
		}
	}
}

// walkWithSeeks descends the trie performing a SeekGE at every level before
// iterating, exercising the galloping path against the binary-search path.
func walkWithSeeks(c trieCursor, arity int, seeks []int64) [][2]int64 {
	var out [][2]int64
	var rec func(depth int)
	rec = func(depth int) {
		c.Open()
		c.SeekGE(seeks[depth])
		for !c.AtEnd() {
			out = append(out, [2]int64{int64(depth), c.Key()})
			if depth+1 < arity {
				rec(depth + 1)
			}
			c.Next()
			// Interleave forward seeks mid-level too.
			if !c.AtEnd() {
				c.SeekGE(c.Key() + seeks[depth]%3)
			}
		}
		c.Up()
	}
	rec(0)
	return out
}

func TestCSRSeekGEMatchesFlat(t *testing.T) {
	r := randomRelation(rand.New(rand.NewSource(7)), 3, 500, 20)
	csr := NewCSRTrie(r)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		seeks := []int64{int64(rng.Intn(22)), int64(rng.Intn(22)), int64(rng.Intn(22))}
		flat := walkWithSeeks(NewTrieIterator(r), 3, seeks)
		got := walkWithSeeks(NewCSRCursor(csr), 3, seeks)
		if !reflect.DeepEqual(flat, got) {
			t.Fatalf("seek walk %v: CSR differs from flat", seeks)
		}
	}
	// Backward seeks are no-ops on both backends.
	fc, cc := NewTrieIterator(r), NewCSRCursor(csr)
	fc.Open()
	cc.Open()
	fc.SeekGE(10)
	cc.SeekGE(10)
	fk, ck := fc.Key(), cc.Key()
	fc.SeekGE(0)
	cc.SeekGE(0)
	if fc.Key() != fk || cc.Key() != ck {
		t.Error("backward SeekGE moved a cursor")
	}
}

func TestCSRProbeGapMatchesFlat(t *testing.T) {
	for _, arity := range []int{1, 2, 3} {
		r := randomRelation(rand.New(rand.NewSource(int64(40+arity))), arity, 300, 9)
		csr := NewCSRTrie(r)
		rng := rand.New(rand.NewSource(int64(arity)))
		point := make([]int64, arity)
		for trial := 0; trial < 2000; trial++ {
			for k := range point {
				point[k] = int64(rng.Intn(11)) // domain+2: probes off both ends
			}
			fg, ffound := r.ProbeGap(point)
			cg, cfound := csr.ProbeGap(point)
			if ffound != cfound || fg != cg {
				t.Fatalf("arity %d point %v: flat (%v, %v) vs csr (%v, %v)", arity, point, fg, ffound, cg, cfound)
			}
		}
	}
}

// TestProbeGapInfBoundaries pins the NegInf/PosInf gap endpoints at the
// domain edges on both backends: a probe below every stored value must
// report Lo = NegInf, one above every stored value Hi = PosInf, and an empty
// relation the full (NegInf, PosInf) box at column 0.
func TestProbeGapInfBoundaries(t *testing.T) {
	r := FromTuples("R", 2, [][]int64{{5, 10}, {5, 20}, {8, 1}})
	csr := NewCSRTrie(r)
	probes := []struct {
		point   []int64
		wantGap Gap
	}{
		// Below the least first-column value: no lower neighbor.
		{[]int64{2, 0}, Gap{Col: 0, Lo: NegInf, Hi: 5}},
		// Above the greatest first-column value: no upper neighbor.
		{[]int64{9, 0}, Gap{Col: 0, Lo: 8, Hi: PosInf}},
		// Present prefix, second column below its least child.
		{[]int64{5, 3}, Gap{Col: 1, Lo: NegInf, Hi: 10}},
		// Present prefix, second column above its greatest child.
		{[]int64{5, 30}, Gap{Col: 1, Lo: 20, Hi: PosInf}},
		// Present prefix, second column strictly between children.
		{[]int64{5, 15}, Gap{Col: 1, Lo: 10, Hi: 20}},
		// First column between stored values.
		{[]int64{6, 0}, Gap{Col: 0, Lo: 5, Hi: 8}},
	}
	for _, tc := range probes {
		for name, idx := range map[string]interface {
			ProbeGap([]int64) (Gap, bool)
		}{"flat": r, "csr": csr} {
			gap, found := idx.ProbeGap(tc.point)
			if found {
				t.Errorf("%s: probe %v unexpectedly found", name, tc.point)
				continue
			}
			if gap != tc.wantGap {
				t.Errorf("%s: probe %v gap = %+v, want %+v", name, tc.point, gap, tc.wantGap)
			}
		}
	}
	// Present tuples are found on both backends.
	for _, tuple := range [][]int64{{5, 10}, {5, 20}, {8, 1}} {
		if _, found := r.ProbeGap(tuple); !found {
			t.Errorf("flat: present tuple %v not found", tuple)
		}
		if _, found := csr.ProbeGap(tuple); !found {
			t.Errorf("csr: present tuple %v not found", tuple)
		}
	}

	empty := FromTuples("E", 2, nil)
	emptyCSR := NewCSRTrie(empty)
	want := Gap{Col: 0, Lo: NegInf, Hi: PosInf}
	if gap, found := empty.ProbeGap([]int64{1, 1}); found || gap != want {
		t.Errorf("flat empty: gap = %+v found=%v", gap, found)
	}
	if gap, found := emptyCSR.ProbeGap([]int64{1, 1}); found || gap != want {
		t.Errorf("csr empty: gap = %+v found=%v", gap, found)
	}
}

func TestCSREmptyAndSingleton(t *testing.T) {
	empty := NewCSRTrie(FromTuples("E", 3, nil))
	c := NewCSRCursor(empty)
	c.Open()
	if !c.AtEnd() {
		t.Error("empty trie level 0 not at end")
	}
	c.Up()

	single := NewCSRTrie(FromTuples("S", 2, [][]int64{{3, 4}}))
	if got := walk(NewCSRCursor(single), 2); !reflect.DeepEqual(got, [][2]int64{{0, 3}, {1, 4}}) {
		t.Errorf("singleton walk = %v", got)
	}
	if single.Nodes() != 2 {
		t.Errorf("singleton Nodes = %d, want 2", single.Nodes())
	}
}
