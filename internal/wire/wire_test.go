package wire

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/query"
)

// TestFrameRoundTrip pins the frame layout: type, request id, and payload
// survive a write/read cycle, including empty bodies and large ids.
func TestFrameRoundTrip(t *testing.T) {
	cases := []struct {
		typ   byte
		reqID uint64
		body  []byte
	}{
		{THello, 1, []byte("payload")},
		{TOK, 0, nil},
		{TRowChunk, 1 << 60, bytes.Repeat([]byte{0xab}, 4096)},
	}
	var buf bytes.Buffer
	for _, c := range cases {
		if err := WriteFrame(&buf, c.typ, c.reqID, c.body); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range cases {
		typ, id, body, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if typ != c.typ || id != c.reqID || !bytes.Equal(body, c.body) {
			t.Fatalf("frame round trip: got (0x%02x, %d, %d bytes), want (0x%02x, %d, %d bytes)",
				typ, id, len(body), c.typ, c.reqID, len(c.body))
		}
	}
}

// TestFrameTruncated pins the error behavior on short reads: a frame cut off
// mid-header or mid-payload reports an unexpected EOF, never a partial frame.
func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TCount, 7, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut++ {
		_, _, _, err := ReadFrame(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d of %d bytes not detected", cut, len(full))
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
			t.Fatalf("truncation at %d: unexpected error %v", cut, err)
		}
	}
}

// TestFrameOversize rejects frames beyond MaxFrame on both ends without
// allocating the declared size.
func TestFrameOversize(t *testing.T) {
	if err := WriteFrame(io.Discard, TLoad, 1, make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("write oversize: got %v, want ErrFrameTooLarge", err)
	}
	hdr := []byte{0xff, 0xff, 0xff, 0xff, TLoad}
	if _, _, _, err := ReadFrame(bytes.NewReader(hdr)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("read oversize: got %v, want ErrFrameTooLarge", err)
	}
}

// TestPayloadRoundTrip drives every Enc/Dec primitive through one payload.
func TestPayloadRoundTrip(t *testing.T) {
	var e Enc
	e.U64(0)
	e.U64(1 << 62)
	e.Int(12345)
	e.I64(-9e15)
	e.Bool(true)
	e.Bool(false)
	e.Str("")
	e.Str("edge")
	e.StrList([]string{"a", "b", "c"})
	e.StrList(nil)
	e.Tuple([]int64{1, -2, 3})
	e.Tuples([][]int64{{1, 2}, {3, 4}, {}})
	e.Tuples(nil)

	d := NewDec(e.Bytes())
	if got := d.U64(); got != 0 {
		t.Fatalf("U64 = %d", got)
	}
	if got := d.U64(); got != 1<<62 {
		t.Fatalf("U64 = %d", got)
	}
	if got := d.Int(); got != 12345 {
		t.Fatalf("Int = %d", got)
	}
	if got := d.I64(); got != -9e15 {
		t.Fatalf("I64 = %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("Bool mismatch")
	}
	if got := d.Str(); got != "" {
		t.Fatalf("Str = %q", got)
	}
	if got := d.Str(); got != "edge" {
		t.Fatalf("Str = %q", got)
	}
	ss := d.StrList()
	if len(ss) != 3 || ss[0] != "a" || ss[2] != "c" {
		t.Fatalf("StrList = %v", ss)
	}
	if got := d.StrList(); got != nil {
		t.Fatalf("empty StrList = %v", got)
	}
	tu := d.Tuple()
	if len(tu) != 3 || tu[1] != -2 {
		t.Fatalf("Tuple = %v", tu)
	}
	ts := d.Tuples()
	if len(ts) != 3 || ts[1][1] != 4 || len(ts[2]) != 0 {
		t.Fatalf("Tuples = %v", ts)
	}
	if got := d.Tuples(); got != nil {
		t.Fatalf("empty Tuples = %v", got)
	}
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestDecTruncatedCollections pins the corrupt-count guard: a collection
// count larger than the remaining payload fails instead of sizing an
// allocation.
func TestDecTruncatedCollections(t *testing.T) {
	var e Enc
	e.U64(1 << 40) // a count with no elements behind it
	for _, read := range []func(*Dec){
		func(d *Dec) { d.Str() },
		func(d *Dec) { d.StrList() },
		func(d *Dec) { d.Tuple() },
		func(d *Dec) { d.Tuples() },
	} {
		d := NewDec(e.Bytes())
		read(d)
		if d.Err() == nil {
			t.Fatal("corrupt count not detected")
		}
	}
}

// TestQueryRoundTrip pins the query transport: atoms, name, and — the part
// first-appearance ordering would silently lose — a head-fixed output
// variable order all survive.
func TestQueryRoundTrip(t *testing.T) {
	q, err := query.Parse("fof", "fof(c, b, a) :- follows(a, b), follows(b, c)")
	if err != nil {
		t.Fatal(err)
	}
	var e Enc
	FromQuery(q).Encode(&e)
	d := NewDec(e.Bytes())
	got, err := DecodeQuery(d).ToQuery()
	if err != nil {
		t.Fatal(err)
	}
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
	if got.Name != q.Name || got.String() != q.String() {
		t.Fatalf("query round trip: got %s %q, want %s %q", got.Name, got, q.Name, q)
	}
	if len(got.Vars()) != 3 || got.Vars()[0] != "c" || got.Vars()[2] != "a" {
		t.Fatalf("head order lost: %v", got.Vars())
	}
}

// TestExtendedQueryRoundTrip pins the protocol-version-2 query payload:
// projection heads, inline constants (desugared placeholders), comparison
// predicates — including negative constants, which the signed encoding must
// not clamp — and aggregate terms all survive transport and re-validation.
func TestExtendedQueryRoundTrip(t *testing.T) {
	for _, src := range []string{
		"out(a) :- e(a, b), e(b, c)",
		"e(3, b), e(b, c), b != 4",
		"deg(a, count(b), sum(b)) :- e(a, b), a >= 2, b < 9",
		"total(min(c), max(c)) :- e(a, b), e(b, c)",
	} {
		q, err := query.Parse("q", src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		var e Enc
		FromQuery(q).Encode(&e)
		d := NewDec(e.Bytes())
		got, err := DecodeQuery(d).ToQuery()
		if err != nil {
			t.Fatalf("%q: ToQuery: %v", src, err)
		}
		if d.Err() != nil {
			t.Fatalf("%q: %v", src, d.Err())
		}
		if got.String() != q.String() {
			t.Fatalf("%q round trip: got %q, want %q", src, got, q)
		}
	}
	// A hand-built predicate with a negative constant: the parser never emits
	// one (the storage domain is non-negative), but a peer may.
	q, err := query.NewRule("neg", []string{"a", "b"}, nil,
		[]query.Pred{{Left: "a", Op: query.OpGt, Const: -5}},
		query.Atom{Rel: "e", Vars: []string{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	var e Enc
	FromQuery(q).Encode(&e)
	got, err := DecodeQuery(NewDec(e.Bytes())).ToQuery()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Preds) != 1 || got.Preds[0].Const != -5 {
		t.Fatalf("negative predicate constant clamped: %+v", got.Preds)
	}
}

// TestOptionsRoundTrip drives every Options field across the wire.
func TestOptionsRoundTrip(t *testing.T) {
	in := repro.Options{
		Algorithm:         repro.MS,
		Workers:           4,
		Granularity:       8,
		GAO:               []string{"b", "a"},
		Backend:           repro.BackendCSRSharded,
		DisableProbeMemo:  true,
		DisableSkeleton:   true,
		DisableCountReuse: true,
		MaxRows:           1 << 20,
	}
	var e Enc
	EncodeOptions(&e, in)
	d := NewDec(e.Bytes())
	out := DecodeOptions(d)
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
	if out.Algorithm != in.Algorithm || out.Workers != in.Workers ||
		out.Granularity != in.Granularity || len(out.GAO) != 2 || out.GAO[0] != "b" ||
		out.Backend != in.Backend || !out.DisableProbeMemo || out.DisableComplete ||
		!out.DisableSkeleton || !out.DisableCountReuse || out.MaxRows != in.MaxRows {
		t.Fatalf("options round trip: got %+v, want %+v", out, in)
	}
}

// TestStatsRoundTrip drives the counter snapshot across the wire.
func TestStatsRoundTrip(t *testing.T) {
	in := core.Stats{
		PlanCacheHits: 1, PlanCacheMisses: 2, GAODerivations: 3, IndexBindings: 4,
		Executions: 5, Outputs: 6, Seeks: 7, Probes: 8, ProbeMemoHits: 9,
		Constraints: 10, FreeTupleSteps: 11, ReuseHits: 12, MemoStores: 13,
	}
	var e Enc
	EncodeStats(&e, in)
	d := NewDec(e.Bytes())
	if out := DecodeStats(d); out != in || d.Err() != nil {
		t.Fatalf("stats round trip: got %+v (err %v), want %+v", out, d.Err(), in)
	}
}

// TestErrorCodes pins the typed-error mapping both ways: the public
// sentinels survive the encode/decode cycle for errors.Is, and unknown
// errors degrade to CodeInternal without losing their message.
func TestErrorCodes(t *testing.T) {
	for _, sentinel := range []error{
		repro.ErrUnknownRelation,
		repro.ErrArityMismatch,
		repro.ErrRelationExists,
		repro.ErrValueOutOfRange,
		repro.ErrUnknownAlgorithm,
		repro.ErrUnknownBackend,
		repro.ErrTxnUnplanned,
		repro.ErrForeignPrepared,
		context.Canceled,
		ErrShuttingDown,
		ErrUnknownStore,
	} {
		wrapped := errors.Join(sentinel) // a non-sentinel error wrapping it
		got := DecodeErr(EncodeErr(wrapped))
		if !errors.Is(got, sentinel) {
			t.Errorf("sentinel %v lost across the wire: decoded %v", sentinel, got)
		}
	}
	opaque := errors.New("some engine explosion")
	got := DecodeErr(EncodeErr(opaque))
	var we *Error
	if !errors.As(got, &we) || we.Code != CodeInternal || we.Msg != opaque.Error() {
		t.Errorf("opaque error: got %v", got)
	}
}
