package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestTriangleCover(t *testing.T) {
	// Triangle query cover LP with equal edge sizes: min x1+x2+x3 s.t. each
	// vertex covered by its two incident edges. Optimum 3/2.
	c := []float64{1, 1, 1}
	a := [][]float64{
		{1, 0, 1}, // vertex a in edges ab, ac
		{1, 1, 0}, // vertex b in edges ab, bc
		{0, 1, 1}, // vertex c in edges bc, ac
	}
	b := []float64{1, 1, 1}
	x, obj, err := MinimizeCover(c, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(obj, 1.5) {
		t.Errorf("obj = %v, want 1.5", obj)
	}
	for i, xi := range x {
		if !almostEqual(xi, 0.5) {
			t.Errorf("x[%d] = %v, want 0.5", i, xi)
		}
	}
}

func TestPathCover(t *testing.T) {
	// Path a-b-c: edges ab, bc. min x1+x2 s.t. a: x1>=1, b: x1+x2>=1, c: x2>=1.
	x, obj, err := MinimizeCover(
		[]float64{1, 1},
		[][]float64{{1, 0}, {1, 1}, {0, 1}},
		[]float64{1, 1, 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(obj, 2) || !almostEqual(x[0], 1) || !almostEqual(x[1], 1) {
		t.Errorf("x=%v obj=%v, want [1 1] 2", x, obj)
	}
}

func TestWeightedObjective(t *testing.T) {
	// Two parallel edges covering the same single vertex; the cheaper one
	// should carry all the weight.
	x, obj, err := MinimizeCover(
		[]float64{5, 2},
		[][]float64{{1, 1}},
		[]float64{1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(obj, 2) || !almostEqual(x[1], 1) {
		t.Errorf("x=%v obj=%v, want weight on the cheap column", x, obj)
	}
}

func TestInfeasible(t *testing.T) {
	// A vertex contained in no edge: 0 >= 1 is infeasible.
	_, _, err := MinimizeCover([]float64{1}, [][]float64{{0}}, []float64{1})
	if err != ErrInfeasible {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestNegativeRHSRejected(t *testing.T) {
	if _, _, err := MinimizeCover([]float64{1}, [][]float64{{1}}, []float64{-1}); err == nil {
		t.Error("negative rhs should be rejected")
	}
}

func TestZeroCostDegenerate(t *testing.T) {
	// Zero objective: any feasible point is optimal with objective 0.
	x, obj, err := MinimizeCover([]float64{0, 0}, [][]float64{{1, 1}}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(obj, 0) || x[0]+x[1] < 1-1e-6 {
		t.Errorf("x=%v obj=%v", x, obj)
	}
}

// Property: on random covering instances the solution is feasible and its
// objective is no worse than several random feasible integer covers.
func TestSimplexProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5) // columns
		m := 1 + rng.Intn(5) // rows
		a := make([][]float64, m)
		for i := range a {
			a[i] = make([]float64, n)
			a[i][rng.Intn(n)] = 1 // guarantee feasibility
			for j := 0; j < n; j++ {
				if rng.Intn(2) == 0 {
					a[i][j] = 1
				}
			}
		}
		c := make([]float64, n)
		for j := range c {
			c[j] = 1 + rng.Float64()*9
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = 1
		}
		x, obj, err := MinimizeCover(c, a, b)
		if err != nil {
			return false
		}
		// Feasibility.
		for i := 0; i < m; i++ {
			lhs := 0.0
			for j := 0; j < n; j++ {
				lhs += a[i][j] * x[j]
			}
			if lhs < 1-1e-6 {
				return false
			}
		}
		for j := 0; j < n; j++ {
			if x[j] < -1e-9 {
				return false
			}
		}
		// Optimality sanity vs random 0/1 covers.
		for trial := 0; trial < 20; trial++ {
			y := make([]float64, n)
			cost := 0.0
			for j := range y {
				if rng.Intn(2) == 0 {
					y[j] = 1
					cost += c[j]
				}
			}
			feasible := true
			for i := 0; i < m && feasible; i++ {
				lhs := 0.0
				for j := 0; j < n; j++ {
					lhs += a[i][j] * y[j]
				}
				feasible = lhs >= 1-1e-9
			}
			if feasible && cost < obj-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
