package minesweeper

// Stats collects execution counters, making the ablation tables
// interpretable: the paper's Ideas 4, 6 and 8 all trade index/CDS work for
// bookkeeping, and these counters show the trade directly.
type Stats struct {
	// Probes is the number of index probes actually issued (seekGap calls).
	Probes int64
	// ProbeMemoHits counts probes answered from the Idea 4 memo without
	// touching the index.
	ProbeMemoHits int64
	// Constraints is the number of gap-box constraints inserted into the CDS.
	Constraints int64
	// FreeTupleSteps is the number of CDS search iterations (Algorithm 4
	// loop turns).
	FreeTupleSteps int64
	// Outputs is the number of result tuples reported.
	Outputs int64
	// ReuseHits counts Idea 8 subtree-count reuses (whole subtrees skipped).
	ReuseHits int64
	// MemoStores counts subtree counts recorded for future reuse.
	MemoStores int64
}

// add accumulates counters from one execution.
func (s *Stats) add(o Stats) {
	s.Probes += o.Probes
	s.ProbeMemoHits += o.ProbeMemoHits
	s.Constraints += o.Constraints
	s.FreeTupleSteps += o.FreeTupleSteps
	s.Outputs += o.Outputs
	s.ReuseHits += o.ReuseHits
	s.MemoStores += o.MemoStores
}
