// Package metrics is the serving observability layer: a dependency-free
// registry of atomic counters, gauges, and log-bucketed latency histograms,
// exported in the Prometheus text exposition format. graphjoind serves a
// process-wide registry on -metrics-addr; the server, store, and durability
// layers record into it so operators see per-tenant QPS, request latency
// distributions, flow-control stalls, WAL fsync behavior, and index overlay
// state from one scrape — and the runtime-observed cardinalities the
// adaptive-planning roadmap item needs are accumulated as a side effect.
//
// Metrics are identified by name plus a label set; Counter/Gauge/Histogram
// are get-or-create, so independently instrumented layers share one time
// series when they agree on name and labels. All value types are safe for
// concurrent use and never allocate on the hot recording path.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds named metrics and renders them for export. The zero value
// is not usable; create one with NewRegistry or share Default().
type Registry struct {
	mu sync.Mutex
	// families keeps name → help/type so exposition groups series correctly
	// and a name cannot be registered under two metric types.
	families map[string]*family
	// series keys are name + canonical label rendering.
	series map[string]metric
}

type family struct {
	name string
	help string
	typ  string // "counter" | "gauge" | "histogram"
	// keys of the member series, in registration order; sorted at export.
	keys []string
}

// metric is one registered time series.
type metric interface {
	// sampleLabels returns the canonical label rendering ("" or `{k="v"}`).
	labels() string
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry: the one graphjoind exports and
// the instrumented layers (server, durable log, overlays) record into.
func Default() *Registry { return defaultRegistry }

// NewRegistry returns an empty registry (tests isolate with their own).
func NewRegistry() *Registry {
	return &Registry{
		families: make(map[string]*family),
		series:   make(map[string]metric),
	}
}

// renderLabels canonicalizes variadic "key, value, key, value" pairs: sorted
// by key, rendered as {k="v",k2="v2"}. Panics on an odd-length list — label
// sets are compile-time shapes, not runtime data.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("metrics: odd label list %q", kv))
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// register get-or-creates one series, enforcing type consistency per name.
// build is called under the registry lock when the series does not exist.
func (r *Registry) register(name, help, typ, lbls string, build func() metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ok := r.families[name]
	if !ok {
		fam = &family{name: name, help: help, typ: typ}
		r.families[name] = fam
	} else if fam.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as %s and %s", name, fam.typ, typ))
	}
	key := name + lbls
	if m, ok := r.series[key]; ok {
		return m
	}
	m := build()
	r.series[key] = m
	fam.keys = append(fam.keys, key)
	return m
}

// Counter is a monotonically increasing value. The value is a float64 (so
// second-totals accumulate exactly like Prometheus counters); integer counts
// stay exact up to 2^53.
type Counter struct {
	bits atomic.Uint64
	lbls string
}

// Counter get-or-creates a counter series.
func (r *Registry) Counter(name, help string, kv ...string) *Counter {
	lbls := renderLabels(kv)
	return r.register(name, help, "counter", lbls, func() metric {
		return &Counter{lbls: lbls}
	}).(*Counter)
}

func (c *Counter) labels() string { return c.lbls }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v (v must be >= 0 for Prometheus counter semantics).
func (c *Counter) Add(v float64) {
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// AddDuration adds d in seconds (the unit Prometheus _seconds_total totals
// are expressed in).
func (c *Counter) AddDuration(d time.Duration) { c.Add(d.Seconds()) }

// Value returns the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
	lbls string
}

// Gauge get-or-creates a gauge series.
func (r *Registry) Gauge(name, help string, kv ...string) *Gauge {
	lbls := renderLabels(kv)
	return r.register(name, help, "gauge", lbls, func() metric {
		return &Gauge{lbls: lbls}
	}).(*Gauge)
}

func (g *Gauge) labels() string { return g.lbls }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds v (negative to decrement).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds 1; Dec subtracts 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// funcMetric is a series whose value is polled at export time (ages, depths,
// and other state that lives in the instrumented object itself).
type funcMetric struct {
	mu   sync.Mutex
	fn   func() float64
	lbls string
}

func (f *funcMetric) labels() string { return f.lbls }

func (f *funcMetric) value() float64 {
	f.mu.Lock()
	fn := f.fn
	f.mu.Unlock()
	return fn()
}

// setFunc swaps the polled function; re-registering a func series replaces
// its source, so a store re-opened over the same name reports the live
// object, not a stale closure.
func (f *funcMetric) setFunc(fn func() float64) {
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// GaugeFunc registers (or re-points) a gauge whose value is fn() at export.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, kv ...string) {
	lbls := renderLabels(kv)
	m := r.register(name, help, "gauge", lbls, func() metric {
		return &funcMetric{fn: fn, lbls: lbls}
	}).(*funcMetric)
	m.setFunc(fn)
}

// CounterFunc registers (or re-points) a counter whose value is fn() at
// export; fn must be monotonically non-decreasing.
func (r *Registry) CounterFunc(name, help string, fn func() float64, kv ...string) {
	lbls := renderLabels(kv)
	m := r.register(name, help, "counter", lbls, func() metric {
		return &funcMetric{fn: fn, lbls: lbls}
	}).(*funcMetric)
	m.setFunc(fn)
}

// LatencyBuckets are the default histogram boundaries: log-bucketed upper
// bounds doubling from 1µs to ~67s (27 buckets), expressed in seconds. A
// request latency histogram over them resolves sub-millisecond serving
// behavior and minute-scale outliers with one fixed, comparison-stable
// bucket layout.
var LatencyBuckets = func() []float64 {
	b := make([]float64, 27)
	v := 1e-6
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}()

// SizeBuckets are log-bucketed boundaries for count-valued histograms
// (group-commit batch sizes, chunk sizes): powers of two from 1 to 2^20.
var SizeBuckets = func() []float64 {
	b := make([]float64, 21)
	v := 1.0
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}()

// Histogram is a fixed-boundary histogram: observation counts per le bucket
// plus a running sum and count, exported in the Prometheus histogram
// convention (cumulative _bucket series, _sum, _count).
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // non-cumulative; bucket i counts v <= bounds[i]
	inf     atomic.Uint64   // v > bounds[last]
	count   atomic.Uint64
	sumBits atomic.Uint64
	lbls    string
}

// Histogram get-or-creates a latency histogram (LatencyBuckets, seconds).
func (r *Registry) Histogram(name, help string, kv ...string) *Histogram {
	return r.HistogramBuckets(name, help, LatencyBuckets, kv...)
}

// HistogramBuckets get-or-creates a histogram with explicit bucket upper
// bounds (must be sorted ascending). A name's bucket layout is fixed by its
// first registration.
func (r *Registry) HistogramBuckets(name, help string, bounds []float64, kv ...string) *Histogram {
	lbls := renderLabels(kv)
	return r.register(name, help, "histogram", lbls, func() metric {
		return &Histogram{
			bounds:  bounds,
			buckets: make([]atomic.Uint64, len(bounds)),
			lbls:    lbls,
		}
	}).(*Histogram)
}

func (h *Histogram) labels() string { return h.lbls }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) {
		h.buckets[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the elapsed time since start, in seconds.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations; Sum their total.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns the bucket upper bounds (shared slice; do not mutate).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCounts returns the non-cumulative per-bucket counts, with the
// overflow (+Inf) bucket appended.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.buckets)+1)
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	out[len(h.buckets)] = h.inf.Load()
	return out
}

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket counts by
// linear interpolation within the containing bucket — the standard
// histogram_quantile estimate. Returns 0 with no observations; observations
// in the overflow bucket resolve to the highest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	counts := h.BucketCounts()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(h.bounds) {
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		// Interpolate the rank within this bucket's count.
		within := rank - float64(cum-c)
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(within/float64(c))
	}
	return h.bounds[len(h.bounds)-1]
}
