// Package query defines the join-query representation used throughout the
// reproduction: a natural join query is a set of atoms over named variables
// (paper §2.1), optionally parsed from the Datalog-style syntax the paper
// uses in §5.1.
package query

import (
	"errors"
	"fmt"
	"strings"
)

// ErrUnboundHeadVar reports a head variable of a rule-form query that no body
// atom binds; callers branch with errors.Is.
var ErrUnboundHeadVar = errors.New("head variable not bound by the body")

// Atom is one relational atom R(x1, ..., xk). Vars are variable names; a
// variable may repeat within an atom (self-join on a column).
type Atom struct {
	Rel  string
	Vars []string
}

func (a Atom) String() string {
	return a.Rel + "(" + strings.Join(a.Vars, ", ") + ")"
}

// Query is a natural join query: the join of all its atoms.
type Query struct {
	Name  string
	Atoms []Atom

	vars []string // cached variable order (first appearance)
}

// New returns a query over the given atoms. Variables are ordered by first
// appearance.
func New(name string, atoms ...Atom) *Query {
	q := &Query{Name: name, Atoms: atoms}
	seen := make(map[string]bool)
	for _, a := range atoms {
		for _, v := range a.Vars {
			if !seen[v] {
				seen[v] = true
				q.vars = append(q.vars, v)
			}
		}
	}
	return q
}

// NewHeaded returns a query in rule form: the head names the query and fixes
// the output variable order (results are emitted in head order rather than
// first-appearance order). Every head variable must be bound by some body
// atom (ErrUnboundHeadVar otherwise), head variables must be distinct, and
// the head must cover every body variable — the engines emit full bindings,
// so a strict subset would be a projection, which the head form does not
// express.
func NewHeaded(name string, head []string, atoms ...Atom) (*Query, error) {
	q := New(name, atoms...)
	bound := make(map[string]bool, len(q.vars))
	for _, v := range q.vars {
		bound[v] = true
	}
	seen := make(map[string]bool, len(head))
	for _, v := range head {
		if seen[v] {
			return nil, fmt.Errorf("query %q: head repeats variable %s", name, v)
		}
		seen[v] = true
		if !bound[v] {
			return nil, fmt.Errorf("query %q: %w: %s", name, ErrUnboundHeadVar, v)
		}
	}
	if len(head) != len(q.vars) {
		return nil, fmt.Errorf("query %q: head covers %d of %d body variables (projection is not supported; list every variable)",
			name, len(head), len(q.vars))
	}
	q.vars = append([]string(nil), head...)
	return q, nil
}

// Vars returns the query's variables in first-appearance order. The returned
// slice must not be modified.
func (q *Query) Vars() []string { return q.vars }

// NumVars returns n = |vars(Q)|.
func (q *Query) NumVars() int { return len(q.vars) }

func (q *Query) String() string {
	parts := make([]string, len(q.Atoms))
	for i, a := range q.Atoms {
		parts[i] = a.String()
	}
	return strings.Join(parts, ", ")
}

// VarIndex returns a map from variable name to its index in Vars().
func (q *Query) VarIndex() map[string]int {
	idx := make(map[string]int, len(q.vars))
	for i, v := range q.vars {
		idx[v] = i
	}
	return idx
}

// AtomsWith returns the indices of atoms containing variable v.
func (q *Query) AtomsWith(v string) []int {
	var out []int
	for i, a := range q.Atoms {
		for _, w := range a.Vars {
			if w == v {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// Validate checks structural well-formedness: at least one atom, non-empty
// atoms, and every variable bound by some atom (trivially true here, but
// repeated-variable atoms are rejected because the storage layer indexes
// distinct columns; callers rewrite duplicates away first).
func (q *Query) Validate() error {
	if len(q.Atoms) == 0 {
		return fmt.Errorf("query %q: no atoms", q.Name)
	}
	for _, a := range q.Atoms {
		if len(a.Vars) == 0 {
			return fmt.Errorf("query %q: atom %s has no variables", q.Name, a.Rel)
		}
		seen := make(map[string]bool, len(a.Vars))
		for _, v := range a.Vars {
			if seen[v] {
				return fmt.Errorf("query %q: atom %s repeats variable %s", q.Name, a.Rel, v)
			}
			seen[v] = true
		}
	}
	return nil
}
