package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/query"
	"repro/internal/relation"
)

func TestDBAddAndLookup(t *testing.T) {
	db := NewDB()
	r := relation.FromTuples("R", 2, [][]int64{{1, 2}, {3, 4}})
	db.Add(r)
	got, err := db.Relation("R")
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Error("lookup returned a different relation")
	}
	if _, err := db.Relation("S"); err == nil {
		t.Error("missing relation should error")
	}
	names := db.Names()
	if len(names) != 1 || names[0] != "R" {
		t.Errorf("Names = %v", names)
	}
}

func TestIndexCaching(t *testing.T) {
	db := NewDB()
	db.Add(relation.FromTuples("R", 2, [][]int64{{1, 2}, {3, 4}}))
	a, err := db.Index("R", []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.Index("R", []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("index not cached")
	}
	if !reflect.DeepEqual(a.Tuple(0), []int64{2, 1}) {
		t.Errorf("permuted index tuple = %v", a.Tuple(0))
	}
	// Replacing the relation invalidates its cached indexes.
	db.Add(relation.FromTuples("R", 2, [][]int64{{9, 9}}))
	c, err := db.Index("R", []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("stale index survived relation replacement")
	}
	if _, err := db.Index("missing", []int{0}); err == nil {
		t.Error("indexing a missing relation should error")
	}
}

func TestBindAtoms(t *testing.T) {
	db := NewDB()
	db.Add(relation.FromTuples("edge", 2, [][]int64{{1, 2}, {2, 3}}))
	q := query.New("q",
		query.Atom{Rel: "edge", Vars: []string{"a", "b"}},
		query.Atom{Rel: "edge", Vars: []string{"b", "c"}},
	)
	// GAO c,b,a: the first atom's index order must become (b,a), the
	// second's (c,b) -> wait: positions c=0,b=1,a=2, so atom1 (a,b) sorts to
	// (b,a) and atom2 (b,c) sorts to (c,b).
	atoms, err := BindAtoms(q, db, []string{"c", "b", "a"}, BackendFlat)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(atoms[0].VarPos, []int{1, 2}) {
		t.Errorf("atom0 VarPos = %v, want [1 2]", atoms[0].VarPos)
	}
	if !reflect.DeepEqual(atoms[1].VarPos, []int{0, 1}) {
		t.Errorf("atom1 VarPos = %v, want [0 1]", atoms[1].VarPos)
	}
	// atom0's index is edge permuted to (b,a): sorted tuples (2,1),(3,2).
	if !reflect.DeepEqual(atoms[0].Rel.Tuple(0), []int64{2, 1}) {
		t.Errorf("atom0 index tuple = %v", atoms[0].Rel.Tuple(0))
	}
	// A GAO missing a variable fails.
	if _, err := BindAtoms(q, db, []string{"a", "b"}, BackendFlat); err == nil {
		t.Error("short GAO should fail")
	}
}

func TestTicker(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	tick := NewTicker(ctx)
	for i := 0; i < CheckEvery-1; i++ {
		if err := tick.Tick(); err != nil {
			t.Fatalf("unexpected early error: %v", err)
		}
	}
	cancel()
	var got error
	for i := 0; i < CheckEvery+1; i++ {
		if err := tick.Tick(); err != nil {
			got = err
			break
		}
	}
	if got == nil {
		t.Error("ticker never surfaced the cancellation")
	}
}
