package repro

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"repro/internal/query"
	"repro/internal/relation"
)

// corpusQueries is the full named-query corpus the CLI and benchmarks use —
// every pattern shape of the paper's §5.1 evaluation.
func corpusQueries() []*Query {
	return []*Query{
		query.Clique(3),
		query.Clique(4),
		query.Cycle(4),
		query.Path(3),
		query.Path(4),
		query.Tree(1),
		query.Tree(2),
		query.Comb(),
		query.Lollipop(2),
		query.Lollipop(3),
	}
}

func sortedRows(rows [][]int64) {
	sort.Slice(rows, func(i, j int) bool {
		return relation.CompareTuples(rows[i], rows[j]) < 0
	})
}

// TestBackendDifferential runs every corpus query under both trie-driven
// engines on both index backends and requires identical counts and identical
// enumerated result sets — the flat backend is the reference implementation
// the CSR backend must reproduce exactly.
func TestBackendDifferential(t *testing.T) {
	ctx := context.Background()
	g := GenerateGraph(HolmeKim, 250, 900, 3)
	g.SetSelectivity(25, 5)
	for _, q := range corpusQueries() {
		for _, alg := range []string{"lftj", "ms"} {
			t.Run(fmt.Sprintf("%s/%s", q.Name, alg), func(t *testing.T) {
				var counts []int64
				var rows [][][]int64
				for _, backend := range []string{"flat", "csr"} {
					p, err := g.Prepare(q, Options{Algorithm: alg, Workers: 1, Backend: backend})
					if err != nil {
						t.Fatalf("%s prepare: %v", backend, err)
					}
					if got := p.Explain().Backend; got != backend {
						t.Fatalf("Explain reports backend %q, want %q", got, backend)
					}
					n, err := p.Count(ctx)
					if err != nil {
						t.Fatalf("%s count: %v", backend, err)
					}
					var rs [][]int64
					err = p.Enumerate(ctx, func(tuple []int64) bool {
						rs = append(rs, append([]int64(nil), tuple...))
						return true
					})
					if err != nil {
						t.Fatalf("%s enumerate: %v", backend, err)
					}
					if int64(len(rs)) != n {
						t.Fatalf("%s: count %d != enumerated %d", backend, n, len(rs))
					}
					sortedRows(rs)
					counts = append(counts, n)
					rows = append(rows, rs)
				}
				if counts[0] != counts[1] {
					t.Fatalf("count mismatch: flat %d, csr %d", counts[0], counts[1])
				}
				for i := range rows[0] {
					if relation.CompareTuples(rows[0][i], rows[1][i]) != 0 {
						t.Fatalf("row %d mismatch: flat %v, csr %v", i, rows[0][i], rows[1][i])
					}
				}
			})
		}
	}
}

// TestBackendParallelDifferential checks the partitioned §4.10 count path on
// the CSR backend against the sequential flat reference.
func TestBackendParallelDifferential(t *testing.T) {
	ctx := context.Background()
	g := GenerateGraph(BarabasiAlbert, 2000, 10000, 11)
	q := Triangles()
	want, err := Count(ctx, g, q, Options{Algorithm: "lftj", Workers: 1, Backend: "flat"})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []string{"lftj", "ms"} {
		got, err := Count(ctx, g, q, Options{Algorithm: alg, Workers: 4, Granularity: 8, Backend: "csr"})
		if err != nil {
			t.Fatalf("%s/csr parallel: %v", alg, err)
		}
		if got != want {
			t.Errorf("%s/csr parallel count = %d, want %d", alg, got, want)
		}
	}
}

// TestBackendPlanCaching pins the backend as a plan-cache dimension: the
// same shape prepared under both backends compiles twice, and re-preparing
// either hits its cached plan.
func TestBackendPlanCaching(t *testing.T) {
	g := GenerateGraph(ErdosRenyi, 200, 600, 1)
	q := Triangles()
	before := g.DB().CachedPlanCount()
	for _, backend := range []string{"flat", "csr"} {
		if _, err := g.Prepare(q, Options{Algorithm: "lftj", Backend: backend}); err != nil {
			t.Fatal(err)
		}
	}
	if got := g.DB().CachedPlanCount() - before; got != 2 {
		t.Errorf("expected 2 cached plans (one per backend), got %d", got)
	}
	p, err := g.Prepare(q, Options{Algorithm: "lftj", Backend: "csr"})
	if err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.PlanCacheHits != 1 {
		t.Errorf("re-prepare under csr: PlanCacheHits = %d, want 1", st.PlanCacheHits)
	}
}

// TestBackendUnknown rejects a misspelled backend at Prepare time.
func TestBackendUnknown(t *testing.T) {
	g := GenerateGraph(ErdosRenyi, 50, 100, 1)
	if _, err := g.Prepare(Triangles(), Options{Algorithm: "lftj", Backend: "btree"}); err == nil {
		t.Error("unknown backend should fail Prepare")
	}
}
