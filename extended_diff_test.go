package repro

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/query"
	"repro/internal/relation"
)

// extendedCorpus is the query-language corpus: projection, in-atom
// constants, comparison predicates, aggregation, and combinations — the
// shapes the plain corpus in backend_diff_test.go cannot express.
func extendedCorpus() []string {
	return []string{
		// Projection.
		"out(a) :- edge(a, b)",
		"mid(b) :- edge(a, b), edge(b, c)",
		"pair(a, c) :- edge(a, b), edge(b, c)",
		"rev(c, a) :- edge(a, b), edge(b, c)",
		// In-atom constants (desugared to placeholder equality bounds).
		"edge(3, b)",
		"edge(a, 7), edge(7, b)",
		// Comparison predicates: bounds and residuals.
		"edge(a, b), a < b",
		"edge(a, b), a >= 10, b < 100",
		"edge(a, b), edge(b, c), a != c",
		"two(a, c) :- edge(a, b), edge(b, c), b >= 10, c < 100",
		// Aggregation.
		"deg(a, count(b)) :- edge(a, b)",
		"deg2(a, count(c)) :- edge(a, b), edge(b, c)",
		"stats(a, min(b), max(b), sum(b)) :- edge(a, b)",
		"total(count(a)) :- edge(a, b)",
		// Everything at once.
		"hot(a, count(b)) :- edge(a, b), b > 20, a != 5",
		"sel(a) :- edge(a, b), edge(b, c), c >= 2, a < 200",
	}
}

// referenceEval evaluates an extended query by brute force: enumerate the
// plain natural join of the query's atoms, post-filter every predicate,
// project with duplicate elimination, and aggregate over the distinct
// projected bindings — the semantics the engines' pushed-down execution must
// reproduce exactly.
func referenceEval(t *testing.T, s *Store, q *Query) [][]int64 {
	t.Helper()
	ctx := context.Background()
	plain := query.New("ref", q.Atoms...)
	pos := make(map[string]int, plain.NumVars())
	for i, v := range plain.Vars() {
		pos[v] = i
	}
	evalPred := func(row []int64, p query.Pred) bool {
		l := row[pos[p.Left]]
		r := p.Const
		if p.IsVar {
			r = row[pos[p.Right]]
		}
		switch p.Op {
		case query.OpEq:
			return l == r
		case query.OpNe:
			return l != r
		case query.OpLt:
			return l < r
		case query.OpLe:
			return l <= r
		case query.OpGt:
			return l > r
		case query.OpGe:
			return l >= r
		}
		t.Fatalf("unknown op %q", p.Op)
		return false
	}
	// Distinct bindings of the engine-level output prefix (output vars then
	// aggregated vars), in the extended query's own column order.
	prefixVars := q.Vars()[:q.Prefix()]
	seen := make(map[string]bool)
	var prefixRows [][]int64
	err := s.Enumerate(ctx, plain, Options{Algorithm: LFTJ, Workers: 1, Backend: BackendFlat}, func(row []int64) bool {
		for _, p := range q.Preds {
			if !evalPred(row, p) {
				return true
			}
		}
		proj := make([]int64, len(prefixVars))
		for i, v := range prefixVars {
			proj[i] = row[pos[v]]
		}
		key := fmt.Sprint(proj)
		if !seen[key] {
			seen[key] = true
			prefixRows = append(prefixRows, proj)
		}
		return true
	})
	if err != nil {
		t.Fatalf("reference enumerate: %v", err)
	}
	if len(q.Aggs) == 0 {
		sortedRows(prefixRows)
		return prefixRows
	}
	// Aggregate over the distinct prefix bindings, grouped by the plain
	// output columns.
	qpos := make(map[string]int, q.Prefix())
	for i, v := range prefixVars {
		qpos[v] = i
	}
	keys := len(q.Out())
	groups := make(map[string][]int64) // key -> [keys..., accs...]
	var order []string
	for _, pr := range prefixRows {
		key := fmt.Sprint(pr[:keys])
		acc, ok := groups[key]
		if !ok {
			acc = append([]int64(nil), pr[:keys]...)
			for _, ag := range q.Aggs {
				v := pr[qpos[ag.Var]]
				if ag.Func == query.AggCount {
					v = 1
				}
				acc = append(acc, v)
			}
			groups[key] = acc
			order = append(order, key)
			continue
		}
		for i, ag := range q.Aggs {
			v := pr[qpos[ag.Var]]
			switch ag.Func {
			case query.AggCount:
				acc[keys+i]++
			case query.AggSum:
				acc[keys+i] += v
			case query.AggMin:
				acc[keys+i] = min(acc[keys+i], v)
			case query.AggMax:
				acc[keys+i] = max(acc[keys+i], v)
			}
		}
	}
	rows := make([][]int64, 0, len(order))
	for _, k := range order {
		rows = append(rows, groups[k])
	}
	sortedRows(rows)
	return rows
}

func collectRows(t *testing.T, p *Prepared) [][]int64 {
	t.Helper()
	var rows [][]int64
	if err := p.Enumerate(context.Background(), func(tuple []int64) bool {
		rows = append(rows, append([]int64(nil), tuple...))
		return true
	}); err != nil {
		t.Fatalf("enumerate: %v", err)
	}
	return rows
}

func requireSameRows(t *testing.T, label string, got, want [][]int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range want {
		if relation.CompareTuples(got[i], want[i]) != 0 {
			t.Fatalf("%s: row %d = %v, want %v", label, i, got[i], want[i])
		}
	}
}

// TestExtendedDifferential runs the extended corpus under both trie-driven
// engines on every index backend and requires identical counts and row sets
// everywhere — checked against an independent brute-force reference
// (enumerate-then-filter-then-group), not just engine-vs-engine.
func TestExtendedDifferential(t *testing.T) {
	ctx := context.Background()
	g := GenerateGraph(HolmeKim, 250, 900, 3)
	s := g.Store()
	for _, src := range extendedCorpus() {
		q, err := s.ParseQuery("q", src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		want := referenceEval(t, s, q)
		for _, alg := range []Algorithm{LFTJ, MS} {
			for _, backend := range backendMatrix {
				t.Run(fmt.Sprintf("%s/%s/%s", src, alg, backend), func(t *testing.T) {
					p, err := s.Prepare(q, Options{Algorithm: alg, Workers: 1, Backend: backend})
					if err != nil {
						t.Fatalf("prepare: %v", err)
					}
					n, err := p.Count(ctx)
					if err != nil {
						t.Fatalf("count: %v", err)
					}
					rows := collectRows(t, p)
					if int64(len(rows)) != n {
						t.Fatalf("count %d != enumerated %d", n, len(rows))
					}
					for _, r := range rows {
						if len(r) != q.OutWidth() {
							t.Fatalf("row width %d, want OutWidth %d", len(r), q.OutWidth())
						}
					}
					sortedRows(rows)
					requireSameRows(t, fmt.Sprintf("%s/%s", alg, backend), rows, want)
				})
			}
		}
	}
}

// TestExtendedDifferentialChurn re-runs a slice of the extended corpus after
// every step of a randomized 15-step Apply churn, across both engines and
// every backend, against the brute-force reference recomputed per step. The
// handles are re-prepared each step: flat and csr-sharded indexes are frozen
// at Prepare time, and the plan cache must serve correct (invalidated or
// overlay-advanced) plans through the writes.
func TestExtendedDifferentialChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	s := NewStore()
	if err := s.DefineRelation("edge", 2); err != nil {
		t.Fatal(err)
	}
	var init [][]int64
	for i := 0; i < 200; i++ {
		init = append(init, []int64{int64(rng.Intn(30)), int64(rng.Intn(30))})
	}
	if err := s.Load("edge", init); err != nil {
		t.Fatal(err)
	}
	srcs := []string{
		"out(a) :- edge(a, b)",
		"edge(a, b), a < b",
		"edge(3, b)",
		"deg(a, count(b)) :- edge(a, b)",
		"hot(a, sum(b)) :- edge(a, b), b >= 5",
	}
	queries := make([]*Query, len(srcs))
	for i, src := range srcs {
		q, err := s.ParseQuery(fmt.Sprintf("q%d", i), src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		queries[i] = q
	}
	for step := 0; step < 15; step++ {
		var ins, del [][]int64
		for k := 0; k < 1+rng.Intn(5); k++ {
			tu := []int64{int64(rng.Intn(30)), int64(rng.Intn(30))}
			if rng.Intn(2) == 0 {
				ins = append(ins, tu)
			} else {
				del = append(del, tu)
			}
		}
		if err := s.Apply("edge", ins, del); err != nil {
			t.Fatalf("step %d apply: %v", step, err)
		}
		for qi, q := range queries {
			want := referenceEval(t, s, q)
			for _, alg := range []Algorithm{LFTJ, MS} {
				for _, backend := range backendMatrix {
					p, err := s.Prepare(q, Options{Algorithm: alg, Workers: 1, Backend: backend})
					if err != nil {
						t.Fatalf("step %d %s/%s/%s prepare: %v", step, srcs[qi], alg, backend, err)
					}
					rows := collectRows(t, p)
					sortedRows(rows)
					requireSameRows(t, fmt.Sprintf("step %d %s/%s/%s", step, srcs[qi], alg, backend), rows, want)
				}
			}
		}
	}
}

// TestExtendedUnsupportedEngines pins the gate: extended queries on the
// engines without pushdown support fail Prepare with ErrUnsupportedQuery
// instead of silently returning plain-join results.
func TestExtendedUnsupportedEngines(t *testing.T) {
	g := GenerateGraph(ErdosRenyi, 100, 300, 2)
	s := g.Store()
	q, err := s.ParseQuery("q", "out(a) :- edge(a, b)")
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{Hybrid, PSQL, MonetDB, Yannakakis, GraphLab, GenericJoin} {
		if _, err := s.Prepare(q, Options{Algorithm: alg}); err == nil {
			t.Errorf("%s: extended query accepted, want ErrUnsupportedQuery", alg)
		} else if !errors.Is(err, ErrUnsupportedQuery) {
			t.Errorf("%s: error %v, want ErrUnsupportedQuery", alg, err)
		}
	}
	// Plain queries stay accepted everywhere.
	if _, err := s.Prepare(Triangles(), Options{Algorithm: Yannakakis}); err != nil {
		t.Errorf("plain query on yannakakis: %v", err)
	}
}

// TestExtendedTxnAndBatch runs aggregate and projected queries through the
// snapshot paths: ReadTxn executions and Batch requests must apply the same
// streaming aggregation as direct Prepared executions.
func TestExtendedTxnAndBatch(t *testing.T) {
	ctx := context.Background()
	g := GenerateGraph(BarabasiAlbert, 150, 600, 4)
	s := g.Store()
	for _, src := range []string{"deg(a, count(b)) :- edge(a, b)", "out(a) :- edge(a, b), a < 100"} {
		q, err := s.ParseQuery("q", src)
		if err != nil {
			t.Fatal(err)
		}
		p, err := s.Prepare(q, Options{Algorithm: LFTJ, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		want := collectRows(t, p)
		wantN, err := p.Count(ctx)
		if err != nil {
			t.Fatal(err)
		}
		txn := s.ReadTxn()
		n, err := txn.Count(ctx, p)
		if err != nil {
			t.Fatal(err)
		}
		if n != wantN {
			t.Errorf("%s: txn count %d, want %d", src, n, wantN)
		}
		var got [][]int64
		for row := range txn.Rows(ctx, p) {
			got = append(got, row)
		}
		requireSameRows(t, "txn rows "+src, got, want)
		res := s.Batch(ctx, []Request{{Prepared: p, Rows: true}, {Prepared: p}})
		for i, r := range res {
			if r.Err != nil {
				t.Fatalf("%s: batch req %d: %v", src, i, r.Err)
			}
			if r.Count != wantN {
				t.Errorf("%s: batch req %d count %d, want %d", src, i, r.Count, wantN)
			}
		}
		requireSameRows(t, "batch rows "+src, res[0].Rows, want)
	}
}
