// Command graphjoinload drives a running graphjoind server with a mixed
// concurrent workload and reports a machine-readable summary — the
// reproduction's load harness, built for the CI throughput gauntlet and for
// sizing admission budgets by hand.
//
// It opens -conns connections to one store, each running a weighted mix of
// Count, streaming Rows, Apply (write), and streaming Aggregate
// (group-by/count) requests against a relation the harness defines and loads
// itself, for -duration. The summary is one JSON line on stdout: achieved
// QPS, client-side latency quantiles (p50/p95/p99/p999), per-type maxima,
// and error counts, with overloaded rejections (admission control) broken
// out from other failures.
//
//	graphjoinload -addr 127.0.0.1:7474 -conns 8 -duration 10s
//	graphjoinload -addr 127.0.0.1:7474 -mix 'count=6,rows=3,apply=1,aggregate=1'
//
// With -metrics-url the harness scrapes the server's Prometheus endpoint
// before and after the run and cross-checks the server's requests_total
// delta against its own request ledger — every harness operation is exactly
// one wire request, so the two must match exactly (the run must own the
// store: concurrent foreign traffic breaks the equality). A mismatch means
// lost or double-counted requests and fails the run:
//
//	graphjoinload -addr 127.0.0.1:7474 -metrics-url http://127.0.0.1:9090/metrics
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/client"
	"repro/internal/metrics"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "graphjoinload: %v\n", err)
		os.Exit(1)
	}
}

// opResult is one completed operation in a worker's log.
type opResult struct {
	typ        string
	elapsed    time.Duration
	overloaded bool
	failed     bool
}

// typeSummary aggregates one request type across all workers.
type typeSummary struct {
	Ops        int64   `json:"ops"`
	Overloaded int64   `json:"overloaded"`
	Errors     int64   `json:"errors"`
	MaxMs      float64 `json:"max_ms"`
}

// summary is the one-line JSON report.
type summary struct {
	Conns      int                    `json:"conns"`
	DurationS  float64                `json:"duration_s"`
	Ops        int64                  `json:"ops"`
	QPS        float64                `json:"qps"`
	Errors     int64                  `json:"errors"`
	Overloaded int64                  `json:"overloaded"`
	P50Ms      float64                `json:"p50_ms"`
	P95Ms      float64                `json:"p95_ms"`
	P99Ms      float64                `json:"p99_ms"`
	P999Ms     float64                `json:"p999_ms"`
	ByType     map[string]typeSummary `json:"by_type"`
	// Crosscheck is "ok", "skipped" (no -metrics-url), or "mismatch";
	// Ledger is the client-side count of admitted wire requests and
	// ServerDelta the server's requests_total advance over the run.
	Crosscheck  string `json:"crosscheck"`
	Ledger      int64  `json:"ledger"`
	ServerDelta int64  `json:"server_delta"`
}

func run() error {
	var (
		addr       = flag.String("addr", "127.0.0.1:7474", "graphjoind wire address")
		storeName  = flag.String("store", "", "named store on a multi-tenant server (default \"default\")")
		metricsURL = flag.String("metrics-url", "", "server /metrics URL; enables the requests_total cross-check")
		conns      = flag.Int("conns", 4, "concurrent connections (one worker each)")
		duration   = flag.Duration("duration", 5*time.Second, "how long to drive load")
		mix        = flag.String("mix", "count=5,rows=3,apply=1,aggregate=1", "workload weights: count,rows,apply,aggregate")
		relName    = flag.String("relation", "loadtest_edge", "relation the harness defines, loads, and queries")
		relNodes   = flag.Int("dataset-nodes", 500, "node id space of the harness-loaded edge list")
		relEdges   = flag.Int("dataset-edges", 2000, "edges in the harness-loaded edge list")
		rowsLimit  = flag.Int("rows-limit", 256, "rows consumed per streaming Rows operation before stopping")
		engine     = flag.String("engine", "lftj", "engine for the prepared query")
		seed       = flag.Int64("seed", 1, "workload randomness seed")
		timeout    = flag.Duration("timeout", 30*time.Second, "per-request timeout")
	)
	flag.Parse()

	weights, err := parseMix(*mix)
	if err != nil {
		return err
	}
	ctx := context.Background()

	before, err := scrape(*metricsURL)
	if err != nil {
		return fmt.Errorf("pre-run metrics scrape: %w", err)
	}

	opts := []client.Option{client.WithRequestTimeout(*timeout)}
	if *storeName != "" {
		opts = append(opts, client.WithStore(*storeName))
	}

	// Setup on the first connection: define and load the workload relation
	// and parse the query once. Each of these is one counted wire request.
	var ledger ledger
	setup, err := client.Dial(ctx, *addr, opts...)
	if err != nil {
		return err
	}
	defer setup.Close()
	loaded, err := setupRelation(setup, &ledger, *relName, *relNodes, *relEdges, *seed)
	if err != nil {
		return err
	}
	if !loaded {
		fmt.Fprintf(os.Stderr, "graphjoinload: relation %q already defined; reusing its contents\n", *relName)
	}
	q, err := setup.ParseQuery("load", fmt.Sprintf("%s(a,b), %s(b,c)", *relName, *relName))
	if err != nil {
		return err
	}
	ledger.add("parse", 1)
	// The aggregate op streams the two-hop degree profile — a grouped
	// count over the same join the other ops run.
	aggQ, err := setup.ParseQuery("loadagg",
		fmt.Sprintf("loadagg(a, count(c)) :- %s(a,b), %s(b,c)", *relName, *relName))
	if err != nil {
		return err
	}
	ledger.add("parse", 1)

	// One worker per connection, each with its own prepared handles.
	workers := make([]*worker, *conns)
	for i := range workers {
		c, err := client.Dial(ctx, *addr, opts...)
		if err != nil {
			return fmt.Errorf("conn %d: %w", i, err)
		}
		defer c.Close()
		p, err := c.Prepare(q, repro.Options{Algorithm: repro.Algorithm(*engine)})
		if err != nil {
			return fmt.Errorf("conn %d: prepare: %w", i, err)
		}
		ledger.add("prepare", 1)
		pa, err := c.Prepare(aggQ, repro.Options{Algorithm: repro.Algorithm(*engine)})
		if err != nil {
			return fmt.Errorf("conn %d: prepare aggregate: %w", i, err)
		}
		ledger.add("prepare", 1)
		workers[i] = &worker{
			store:     c,
			prepared:  p,
			aggregate: pa,
			rng:       rand.New(rand.NewSource(*seed + int64(i)*7919)),
			weights:   weights,
			relName:   *relName,
			relNodes:  *relNodes,
			rowsLimit: *rowsLimit,
		}
	}

	runCtx, cancel := context.WithTimeout(ctx, *duration)
	defer cancel()
	start := time.Now()
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.drive(runCtx)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Close the prepared handles before the final scrape so the
	// close_prepared requests land inside the measured window.
	for _, w := range workers {
		if err := w.prepared.Close(); err == nil {
			ledger.add("close_prepared", 1)
		}
		if err := w.aggregate.Close(); err == nil {
			ledger.add("close_prepared", 1)
		}
	}

	after, err := scrape(*metricsURL)
	if err != nil {
		return fmt.Errorf("post-run metrics scrape: %w", err)
	}

	s := summarize(workers, *conns, elapsed, &ledger)
	crosscheck(&s, before, after, effectiveStore(*storeName), &ledger)

	out, err := json.Marshal(s)
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	if s.Crosscheck == "mismatch" {
		return fmt.Errorf("server requests_total advanced by %d, client ledger says %d", s.ServerDelta, s.Ledger)
	}
	return nil
}

// ledger counts the wire requests this process has issued that the server
// admits (rejected requests are subtracted by the callers as they happen) —
// the client-side truth the server's requests_total is checked against.
type ledger struct {
	mu     sync.Mutex
	byType map[string]int64
}

func (l *ledger) add(typ string, n int64) {
	l.mu.Lock()
	if l.byType == nil {
		l.byType = make(map[string]int64)
	}
	l.byType[typ] += n
	l.mu.Unlock()
}

func (l *ledger) total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var t int64
	for _, n := range l.byType {
		t += n
	}
	return t
}

// setupRelation defines and loads the workload relation; it reports false
// (without error) when the relation already exists on the server, so repeat
// runs against a durable store work.
func setupRelation(c *client.Store, led *ledger, name string, nodes, edges int, seed int64) (bool, error) {
	err := c.DefineRelation(name, 2)
	led.add("define", 1)
	if err != nil {
		if strings.Contains(err.Error(), "exists") || strings.Contains(err.Error(), "defined") {
			return false, nil
		}
		return false, fmt.Errorf("define %s: %w", name, err)
	}
	rng := rand.New(rand.NewSource(seed))
	tuples := make([][]int64, edges)
	for i := range tuples {
		tuples[i] = []int64{rng.Int63n(int64(nodes)), rng.Int63n(int64(nodes))}
	}
	if err := c.Load(name, tuples); err != nil {
		return false, fmt.Errorf("load %s: %w", name, err)
	}
	led.add("load", 1)
	return true, nil
}

// worker drives one connection's share of the workload.
type worker struct {
	store     *client.Store
	prepared  repro.PreparedQuery
	aggregate repro.PreparedQuery
	rng       *rand.Rand
	weights   [4]int // count, rows, apply, aggregate
	relName   string
	relNodes  int
	rowsLimit int
	results   []opResult
}

// drive runs ops until the run deadline. The deadline only gates starting a
// new op — each op runs to completion on its own context (bounded by the
// client's per-request timeout), because an op abandoned mid-flight may
// already be admitted and counted server-side, which would break the exact
// requests_total cross-check.
func (w *worker) drive(runCtx context.Context) {
	total := w.weights[0] + w.weights[1] + w.weights[2] + w.weights[3]
	opCtx := context.Background()
	for runCtx.Err() == nil {
		pick := w.rng.Intn(total)
		var typ string
		var err error
		start := time.Now()
		switch {
		case pick < w.weights[0]:
			typ = "count"
			_, err = w.prepared.Count(opCtx)
		case pick < w.weights[0]+w.weights[1]:
			typ = "rows"
			n := 0
			err = w.prepared.Enumerate(opCtx, func([]int64) bool {
				n++
				return n < w.rowsLimit
			})
		case pick < w.weights[0]+w.weights[1]+w.weights[2]:
			typ = "apply"
			err = w.store.Apply(w.relName,
				[][]int64{{w.rng.Int63n(int64(w.relNodes)), w.rng.Int63n(int64(w.relNodes))}}, nil)
		default:
			typ = "aggregate"
			n := 0
			err = w.aggregate.Enumerate(opCtx, func([]int64) bool {
				n++
				return n < w.rowsLimit
			})
		}
		w.results = append(w.results, opResult{
			typ:        typ,
			elapsed:    time.Since(start),
			overloaded: errors.Is(err, client.ErrOverloaded),
			failed:     err != nil && !errors.Is(err, client.ErrOverloaded),
		})
	}
}

// summarize folds the worker logs into the report and fills the ledger with
// the admitted operation counts (attempts minus overloaded rejections, which
// the server counts separately).
func summarize(workers []*worker, conns int, elapsed time.Duration, led *ledger) summary {
	var all []time.Duration
	byType := make(map[string]typeSummary)
	var errs, overloaded int64
	for _, w := range workers {
		for _, r := range w.results {
			t := byType[r.typ]
			t.Ops++
			if r.overloaded {
				t.Overloaded++
				overloaded++
			} else {
				led.add(r.typ, 1)
				if r.failed {
					t.Errors++
					errs++
				}
			}
			if ms := float64(r.elapsed) / float64(time.Millisecond); ms > t.MaxMs {
				t.MaxMs = ms
			}
			byType[r.typ] = t
			all = append(all, r.elapsed)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	quantile := func(q float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(q * float64(len(all)-1))
		return float64(all[i]) / float64(time.Millisecond)
	}
	ops := int64(len(all))
	return summary{
		Conns:      conns,
		DurationS:  elapsed.Seconds(),
		Ops:        ops,
		QPS:        float64(ops) / elapsed.Seconds(),
		Errors:     errs,
		Overloaded: overloaded,
		P50Ms:      quantile(0.50),
		P95Ms:      quantile(0.95),
		P99Ms:      quantile(0.99),
		P999Ms:     quantile(0.999),
		ByType:     byType,
	}
}

// crosscheck compares the server's requests_total advance against the
// client-side ledger. Exact equality is the contract: the server counts a
// request before writing any response frame, the harness counts it when the
// response arrives, and rejections live in rejected_total instead.
func crosscheck(s *summary, before, after []metrics.Sample, store string, led *ledger) {
	s.Ledger = led.total()
	if before == nil || after == nil {
		s.Crosscheck = "skipped"
		return
	}
	delta := func(name string) int64 {
		return int64(metrics.SumSamples(after, name, "store", store) -
			metrics.SumSamples(before, name, "store", store))
	}
	s.ServerDelta = delta("graphjoind_requests_total")
	if s.ServerDelta == s.Ledger && delta("graphjoind_rejected_total") == s.Overloaded {
		s.Crosscheck = "ok"
	} else {
		s.Crosscheck = "mismatch"
	}
}

// scrape fetches and parses a Prometheus endpoint; a nil slice (no error)
// means the cross-check is disabled.
func scrape(url string) ([]metrics.Sample, error) {
	if url == "" {
		return nil, nil
	}
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return metrics.ParseText(resp.Body)
}

func effectiveStore(name string) string {
	if name == "" {
		return "default"
	}
	return name
}

// parseMix turns "count=5,rows=3,apply=1,aggregate=1" into weights.
func parseMix(s string) ([4]int, error) {
	w := [4]int{}
	idx := map[string]int{"count": 0, "rows": 1, "apply": 2, "aggregate": 3}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		i, known := idx[strings.TrimSpace(k)]
		if !ok || !known {
			return w, fmt.Errorf("bad -mix element %q (want count=N,rows=N,apply=N,aggregate=N)", part)
		}
		n, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil || n < 0 {
			return w, fmt.Errorf("bad -mix weight %q", part)
		}
		w[i] = n
	}
	if w[0]+w[1]+w[2]+w[3] == 0 {
		return w, fmt.Errorf("-mix has no positive weights")
	}
	return w, nil
}
