package query

import (
	"errors"
	"testing"
)

// FuzzParse throws arbitrary source at the Datalog parser. The invariants:
// Parse never panics, every failure carries a diagnosable error (a
// *SyntaxError with an in-range offset, or one of the rule-validation
// sentinels), and every success round-trips — formatting the parsed query
// and parsing it again yields the same canonical form. The seed corpus
// spans the full grammar (projection heads, aggregate terms, inline
// constants, comparison predicates) plus the malformed shapes the parser
// must reject.
func FuzzParse(f *testing.F) {
	for _, src := range []string{
		"edge(a, b)",
		"edge(a, b), edge(b, c)",
		"out(a) :- edge(a, b)",
		"out(b, a) :- edge(a, b)",
		"e(a, 5)",
		"e(137, b), e(b, c)",
		"edge(a, b), a < 5",
		"edge(a, b), a != b, b >= 3",
		"edge(a, b), 7 > a",
		"deg(a, count(b)) :- edge(a, b)",
		"stats(a, sum(b), min(c), max(c)) :- e(a, b), e(b, c)",
		"total(count(a)) :- edge(a, b)",
		"out(a, count(c)) :- e(a, b), e(b, c), b != 4, a >= 1",
		"e(a, b), a < -9223372036854775808",
		"e(a, b), a > 9223372036854775807",
		// Malformed shapes.
		"",
		"e(a b)",
		"e(a,",
		"out(a) :-",
		":- e(a, b)",
		"out(z) :- e(a, b)",
		"out(a, a) :- e(a, b)",
		"deg(a, median(b)) :- e(a, b)",
		"e(a, b), a ~ b",
		"e(a, b), 1 < 2",
		"e(a, 99999999999999999999999999)",
		"e(a, b) :- e(a, b)",
		"total(count(z)) :- e(a, b)",
	} {
		f.Add(src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse("fuzz", src)
		if err != nil {
			var se *SyntaxError
			if errors.As(err, &se) {
				if se.Offset < 0 || se.Offset > len(src) {
					t.Fatalf("Parse(%q): SyntaxError offset %d outside [0, %d]", src, se.Offset, len(src))
				}
				if se.Msg == "" {
					t.Fatalf("Parse(%q): SyntaxError with empty message", src)
				}
			} else if err.Error() == "" {
				t.Fatalf("Parse(%q): error with empty message", src)
			}
			return
		}
		// Success must round-trip through the canonical rendering.
		canonical := q.String()
		q2, err := Parse("fuzz", canonical)
		if err != nil {
			t.Fatalf("Parse(%q) ok but canonical form %q fails to re-parse: %v", src, canonical, err)
		}
		if got := q2.String(); got != canonical {
			t.Fatalf("Parse(%q): canonical form not a fixed point:\n first %q\nsecond %q", src, canonical, got)
		}
	})
}
