package repro

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
)

// TestPrepareExecuteCompilesOnce is the headline contract of the prepared
// API: preparing a §5.1 benchmark query once and executing it N times
// performs GAO derivation and index binding exactly once, at Prepare time.
func TestPrepareExecuteCompilesOnce(t *testing.T) {
	ctx := context.Background()
	g := GenerateGraph(BarabasiAlbert, 300, 1200, 6)
	g.SetSelectivity(5, 2)
	for _, alg := range []Algorithm{LFTJ, MS, GenericJoin} {
		q := Paths(3)
		p, err := g.Prepare(q, Options{Algorithm: alg, Workers: 1})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		after := p.Stats()
		if after.GAODerivations != 1 || after.PlanCacheMisses != 1 {
			t.Errorf("%s: prepare stats = %+v, want one derivation and one cache miss", alg, after)
		}
		if after.IndexBindings != int64(len(q.Atoms)) {
			t.Errorf("%s: IndexBindings = %d, want %d (one per atom)", alg, after.IndexBindings, len(q.Atoms))
		}
		const runs = 5
		var want int64 = -1
		for i := 0; i < runs; i++ {
			n, err := p.Count(ctx)
			if err != nil {
				t.Fatalf("%s run %d: %v", alg, i, err)
			}
			if want == -1 {
				want = n
			} else if n != want {
				t.Fatalf("%s run %d: count %d != %d", alg, i, n, want)
			}
		}
		st := p.Stats()
		if st.GAODerivations != 1 || st.IndexBindings != int64(len(q.Atoms)) {
			t.Errorf("%s: after %d executions planning counters moved: %+v", alg, runs, st)
		}
		if st.Executions != runs {
			t.Errorf("%s: Executions = %d, want %d", alg, st.Executions, runs)
		}
		if st.Outputs != want*runs {
			t.Errorf("%s: Outputs = %d, want %d", alg, st.Outputs, want*runs)
		}
	}
}

// TestPreparedConcurrentUse shares one handle across goroutines mixing
// Count, Enumerate, and Rows (run with -race to check the synchronization).
func TestPreparedConcurrentUse(t *testing.T) {
	ctx := context.Background()
	g := GenerateGraph(HolmeKim, 400, 2000, 3)
	p, err := g.Prepare(Triangles(), Options{Algorithm: "lftj"})
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.Count(ctx)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(mode int) {
			defer wg.Done()
			var got int64
			var err error
			switch mode % 3 {
			case 0:
				got, err = p.Count(ctx)
			case 1:
				err = p.Enumerate(ctx, func([]int64) bool { got++; return true })
			default:
				for range p.Rows(ctx) {
					got++
				}
			}
			if err != nil {
				errCh <- err
				return
			}
			if got != want {
				errCh <- errors.New("concurrent execution count mismatch")
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if st := p.Stats(); st.Executions != goroutines+1 {
		t.Errorf("Executions = %d, want %d", st.Executions, goroutines+1)
	}
}

// TestPlanCacheInvalidation checks the cache key and invalidation rules:
// re-preparing an unchanged shape hits the cache; replacing a relation the
// plan reads (sample redraw or a direct DB.Add) evicts it; plans over
// untouched relations survive.
func TestPlanCacheInvalidation(t *testing.T) {
	g := GenerateGraph(ErdosRenyi, 200, 600, 5)
	g.SetSelectivity(4, 1)

	pathQ := Paths(3) // reads v1, v2, edge
	triQ := Triangles()

	if _, err := g.Prepare(pathQ, Options{}); err != nil {
		t.Fatal(err)
	}
	p2, err := g.Prepare(pathQ, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st := p2.Stats(); st.PlanCacheHits != 1 || st.PlanCacheMisses != 0 {
		t.Errorf("re-prepare stats = %+v, want a pure cache hit", st)
	}

	if _, err := g.Prepare(triQ, Options{}); err != nil { // reads fwd only
		t.Fatal(err)
	}

	// Redrawing samples replaces v1..v4: the path plan must recompile, the
	// triangle plan must not.
	g.SetSelectivity(4, 99)
	p3, err := g.Prepare(pathQ, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st := p3.Stats(); st.PlanCacheMisses != 1 {
		t.Errorf("post-invalidation stats = %+v, want a recompile", st)
	}
	p4, err := g.Prepare(triQ, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st := p4.Stats(); st.PlanCacheHits != 1 {
		t.Errorf("triangle plan should have survived the sample redraw: %+v", st)
	}

	// A direct relation replacement evicts too.
	fwd, err := g.DB().Relation("fwd")
	if err != nil {
		t.Fatal(err)
	}
	g.DB().Add(fwd) // same data, new registration
	p5, err := g.Prepare(triQ, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st := p5.Stats(); st.PlanCacheMisses != 1 {
		t.Errorf("triangle plan should have been evicted by DB.Add: %+v", st)
	}

	// Different algorithm and different GAO are different cache keys.
	pMS, err := g.Prepare(pathQ, Options{Algorithm: "ms"})
	if err != nil {
		t.Fatal(err)
	}
	if st := pMS.Stats(); st.PlanCacheMisses != 1 {
		t.Errorf("ms plan unexpectedly shared the lftj slot: %+v", st)
	}
	gao := append([]string(nil), pathQ.Vars()...)
	gao[0], gao[1] = gao[1], gao[0]
	pGAO, err := g.Prepare(pathQ, Options{GAO: gao})
	if err != nil {
		t.Fatal(err)
	}
	if st := pGAO.Stats(); st.PlanCacheMisses != 1 {
		t.Errorf("explicit-GAO plan unexpectedly shared the default slot: %+v", st)
	}
}

// TestRowsEarlyStop breaks out of the streaming iterator and checks the
// engine stopped with it.
func TestRowsEarlyStop(t *testing.T) {
	ctx := context.Background()
	g := k4()
	p, err := g.Prepare(Triangles(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]int64
	for row := range p.Rows(ctx) {
		rows = append(rows, row)
		if len(rows) == 2 {
			break
		}
	}
	if len(rows) != 2 {
		t.Fatalf("collected %d rows, want 2", len(rows))
	}
	if st := p.Stats(); st.Outputs != 2 {
		t.Errorf("engine emitted %d outputs after early stop, want 2", st.Outputs)
	}
	// Yielded rows are owned copies with bindings in q.Vars() order.
	if len(rows[0]) != 3 {
		t.Errorf("row arity = %d, want 3", len(rows[0]))
	}
	// The handle stays usable after an early stop.
	n, err := p.Count(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("count after early stop = %d, want 4", n)
	}
}

// TestRowsErr surfaces mid-stream failures the plain Rows iterator
// discards.
func TestRowsErr(t *testing.T) {
	g := k4()
	p, err := g.Prepare(Triangles(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var rows int
	for row, err := range p.RowsErr(context.Background()) {
		if err != nil {
			t.Fatalf("unexpected stream error: %v", err)
		}
		if len(row) != 3 {
			t.Fatalf("row = %v", row)
		}
		rows++
	}
	if rows != 4 {
		t.Errorf("streamed %d rows, want 4", rows)
	}
	// Mid-stream cancellation surfaces as the final error pair when the
	// consumer keeps ranging (a consumer that breaks instead sees no pair).
	big := GenerateGraph(BarabasiAlbert, 5000, 40000, 8)
	pb, err := big.Prepare(Triangles(), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var sawErr error
	seen := 0
	for _, err := range pb.RowsErr(ctx) {
		if err != nil {
			sawErr = err
			break
		}
		if seen++; seen == 1 {
			cancel()
		}
	}
	if !errors.Is(sawErr, context.Canceled) {
		t.Errorf("stream error = %v, want context.Canceled", sawErr)
	}
}

// TestRowsContextCancel ends the stream when the context dies.
func TestRowsContextCancel(t *testing.T) {
	g := GenerateGraph(BarabasiAlbert, 5000, 40000, 8)
	p, err := g.Prepare(Triangles(), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	seen := 0
	for range p.Rows(ctx) {
		if seen++; seen == 1 {
			cancel()
		}
	}
	if ctx.Err() == nil {
		t.Fatal("context should be cancelled")
	}
	total, err := p.Count(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if int64(seen) >= total {
		t.Errorf("cancellation did not stop the stream: saw %d of %d", seen, total)
	}
}

// TestExplainBenchmarkQueries checks the Explain surface on the paper's
// §5.1 benchmark queries: a fixed GAO covering every variable, one physical
// index per atom, and a positive AGM bound.
func TestExplainBenchmarkQueries(t *testing.T) {
	g := GenerateGraph(HolmeKim, 300, 1500, 4)
	g.SetSelectivity(4, 9)
	queries := []*Query{
		Triangles(), Cliques(4), Cycles(4), Paths(3), Paths(4),
		Trees(1), Trees(2), Comb(), Lollipops(2),
	}
	for _, q := range queries {
		for _, alg := range []Algorithm{LFTJ, MS} {
			p, err := g.Prepare(q, Options{Algorithm: alg})
			if err != nil {
				t.Fatalf("%s/%s: %v", q.Name, alg, err)
			}
			e := p.Explain()
			if !e.Planned {
				t.Errorf("%s/%s: not planned", q.Name, alg)
			}
			if len(e.GAO) != q.NumVars() {
				t.Errorf("%s/%s: GAO %v does not cover %d vars", q.Name, alg, e.GAO, q.NumVars())
			}
			if len(e.Atoms) != len(q.Atoms) {
				t.Errorf("%s/%s: %d atom plans for %d atoms", q.Name, alg, len(e.Atoms), len(q.Atoms))
			}
			if e.AGMBound <= 0 {
				t.Errorf("%s/%s: AGM bound = %v", q.Name, alg, e.AGMBound)
			}
			s := e.String()
			if !strings.Contains(s, "gao ") || !strings.Contains(s, "agm bound") {
				t.Errorf("%s/%s: explanation missing sections:\n%s", q.Name, alg, s)
			}
		}
	}
	// Unplanned engines still explain the query and bound.
	p, err := g.Prepare(Paths(3), Options{Algorithm: "yannakakis"})
	if err != nil {
		t.Fatal(err)
	}
	if e := p.Explain(); e.Planned || e.AGMBound <= 0 {
		t.Errorf("unplanned explanation = %+v", e)
	}
}

// TestPreparedStatsEveryEngine is the unified-stats generalization: every
// engine reports executions and output cardinality through the same
// surface.
func TestPreparedStatsEveryEngine(t *testing.T) {
	ctx := context.Background()
	g := k4()
	g.SetSamples([]int64{0}, []int64{3})
	for _, tc := range []struct {
		alg Algorithm
		q   *Query
	}{
		{"lftj", Triangles()},
		{"ms", Triangles()},
		{"psql", Triangles()},
		{"monetdb", Triangles()},
		{"graphlab", Triangles()},
		{"genericjoin", Triangles()},
		{"yannakakis", Paths(3)},
		{"hybrid", Lollipops(2)},
	} {
		p, err := g.Prepare(tc.q, Options{Algorithm: tc.alg, Workers: 1})
		if err != nil {
			t.Fatalf("%s: %v", tc.alg, err)
		}
		n, err := p.Count(ctx)
		if err != nil {
			t.Fatalf("%s: %v", tc.alg, err)
		}
		st := p.Stats()
		if st.Executions != 1 {
			t.Errorf("%s: Executions = %d, want 1", tc.alg, st.Executions)
		}
		if st.Outputs != n {
			t.Errorf("%s: Outputs = %d, count = %d", tc.alg, st.Outputs, n)
		}
	}
}

// TestCountViewDeltaPlanReuse checks the incremental view compiles its
// delta queries once and reuses them across ApplyEdges batches.
func TestCountViewDeltaPlanReuse(t *testing.T) {
	ctx := context.Background()
	g := NewGraph([][2]int64{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	v, err := MaintainCount(ctx, g, Triangles())
	if err != nil {
		t.Fatal(err)
	}
	batches := [][][2]int64{
		{{0, 2}}, {{1, 3}}, {{0, 4}, {1, 4}},
	}
	for _, ins := range batches {
		if err := v.ApplyEdges(ctx, ins, nil); err != nil {
			t.Fatal(err)
		}
	}
	fresh, err := Count(ctx, g, Triangles(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v.Count() != fresh {
		t.Errorf("maintained = %d, fresh = %d", v.Count(), fresh)
	}
	if st := v.Stats(); st.GAODerivations != 1 {
		t.Errorf("GAODerivations = %d after %d batches, want 1 (delta plans reused)", st.GAODerivations, len(batches))
	}
}

// TestTypedErrors branches on the failure kinds Prepare reports.
func TestTypedErrors(t *testing.T) {
	g := k4()
	q, err := ParseQuery("bad", "nosuch(a, b)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Prepare(q, Options{}); !errors.Is(err, ErrUnknownRelation) {
		t.Errorf("unknown relation error = %v, want ErrUnknownRelation", err)
	}
	if _, err := g.Prepare(Triangles(), Options{GAO: []string{"a", "b"}}); !errors.Is(err, ErrUnboundVar) {
		t.Errorf("short GAO error = %v, want ErrUnboundVar", err)
	}
	if _, err := g.Prepare(Triangles(), Options{Algorithm: "ms", GAO: []string{"a", "b", "z"}}); !errors.Is(err, ErrUnboundVar) {
		t.Errorf("wrong-var GAO error = %v, want ErrUnboundVar", err)
	}
}

// TestNewGraphDedup checks the documented "duplicates merged" contract.
func TestNewGraphDedup(t *testing.T) {
	g := NewGraph([][2]int64{{0, 1}, {1, 0}, {0, 1}, {2, 2}, {1, 2}})
	if g.Edges() != 2 {
		t.Errorf("Edges() = %d, want 2 (duplicates and self-loops dropped)", g.Edges())
	}
}

// TestPreparedSnapshotSemantics: a handle pins the physical design it was
// compiled against; re-preparing after a sample redraw picks up the new
// design.
func TestPreparedSnapshotSemantics(t *testing.T) {
	ctx := context.Background()
	g := GenerateGraph(ErdosRenyi, 150, 450, 7)
	g.SetSamples([]int64{0, 1, 2}, []int64{3, 4, 5})
	p, err := g.Prepare(Paths(3), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	before, err := p.Count(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Empty the v1 sample: the pinned handle keeps the old snapshot.
	g.SetSamples(nil, []int64{3, 4, 5})
	again, err := p.Count(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if again != before {
		t.Errorf("pinned handle changed result: %d -> %d", before, again)
	}
	p2, err := g.Prepare(Paths(3), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	now, err := p2.Count(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if now != 0 {
		t.Errorf("fresh handle over empty v1 sample = %d, want 0", now)
	}
}
