// Command graphjoin runs any graph-pattern query on any dataset with any
// engine — the reproduction's equivalent of a database client:
//
//	graphjoin -dataset ego-Facebook -query 3-clique -engine lftj
//	graphjoin -dataset ca-GrQc -engine ms -selectivity 10 \
//	    -datalog 'v1(a), v2(d), edge(a,b), edge(b,c), edge(c,d)'
//	graphjoin -nodes 10000 -edges 50000 -model hk -query 4-clique -engine graphlab
//
// Named queries: 3-clique, 4-clique, 4-cycle, 3-path, 4-path, 1-tree,
// 2-tree, 2-comb, 2-lollipop, 3-lollipop.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/query"
)

func main() {
	var (
		datasetName = flag.String("dataset", "", "catalog dataset name (see DESIGN.md)")
		model       = flag.String("model", "ba", "generator when -dataset empty: er | ba | hk")
		nodes       = flag.Int("nodes", 10000, "generated graph nodes")
		edges       = flag.Int("edges", 50000, "generated graph edges")
		seed        = flag.Int64("seed", 1, "generator seed")
		queryName   = flag.String("query", "3-clique", "named benchmark query")
		datalog     = flag.String("datalog", "", "inline Datalog query body (overrides -query)")
		engineName  = flag.String("engine", "lftj", "lftj | ms | hybrid | psql | monetdb | yannakakis | graphlab")
		selectivity = flag.Int("selectivity", 10, "node-sample selectivity s (samples pick nodes w.p. 1/s)")
		timeout     = flag.Duration("timeout", 30*time.Minute, "execution timeout (paper protocol: 30m)")
		workers     = flag.Int("workers", 0, "worker pool size (0 = all cores)")
		showAGM     = flag.Bool("agm", false, "print the AGM output-size bound")
	)
	flag.Parse()

	var g *repro.Graph
	var err error
	if *datasetName != "" {
		g, err = repro.Dataset(*datasetName)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		m := repro.BarabasiAlbert
		switch *model {
		case "er":
			m = repro.ErdosRenyi
		case "hk":
			m = repro.HolmeKim
		case "ba":
		default:
			log.Fatalf("unknown model %q", *model)
		}
		g = repro.GenerateGraph(m, *nodes, *edges, *seed)
	}
	g.SetSelectivity(*selectivity, *seed)

	var q *repro.Query
	if *datalog != "" {
		q, err = repro.ParseQuery("adhoc", *datalog)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		q, err = namedQuery(*queryName)
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("graph: %d nodes, %d edges; query %s: %s\n", g.Nodes(), g.Edges(), q.Name, q)
	if *showAGM {
		if bound, err := repro.AGMBound(g, q); err == nil {
			fmt.Printf("AGM bound: %.3g\n", bound)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	start := time.Now()
	n, err := repro.Count(ctx, g, q, repro.Options{Algorithm: *engineName, Workers: *workers})
	if err != nil {
		log.Fatalf("%s: %v", *engineName, err)
	}
	fmt.Printf("%s: %d results in %v\n", *engineName, n, time.Since(start).Round(time.Millisecond))
}

func namedQuery(name string) (*repro.Query, error) {
	switch name {
	case "3-clique", "triangle":
		return query.Clique(3), nil
	case "4-clique":
		return query.Clique(4), nil
	case "4-cycle":
		return query.Cycle(4), nil
	case "3-path":
		return query.Path(3), nil
	case "4-path":
		return query.Path(4), nil
	case "1-tree":
		return query.Tree(1), nil
	case "2-tree":
		return query.Tree(2), nil
	case "2-comb":
		return query.Comb(), nil
	case "2-lollipop":
		return query.Lollipop(2), nil
	case "3-lollipop":
		return query.Lollipop(3), nil
	default:
		return nil, fmt.Errorf("unknown query %q", name)
	}
}
