package minesweeper

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

// TestFreeTupleEnumerationOracle checks the CDS against a brute-force
// oracle: after inserting random gap-box constraints over a small domain
// (plus upper-bound constraints so enumeration terminates), advancing
// through ComputeFreeTuple must visit exactly the tuples not covered by any
// constraint, in lexicographic order.
func TestFreeTupleEnumerationOracle(t *testing.T) {
	const (
		n      = 3
		maxVal = 6
	)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, disableComplete := range []bool{false, true} {
			c := NewCDS(n, disableComplete)
			var cons []Constraint
			// Random gap boxes.
			for k := 0; k < 2+rng.Intn(10); k++ {
				col := rng.Intn(n)
				eqPos := make([]int, 0, col)
				eqVal := make([]int64, 0, col)
				for p := 0; p < col; p++ {
					if rng.Intn(2) == 0 {
						eqPos = append(eqPos, p)
						eqVal = append(eqVal, int64(rng.Intn(maxVal+1)))
					}
				}
				lo := int64(rng.Intn(maxVal+2) - 1)
				hi := lo + int64(rng.Intn(4))
				if rng.Intn(5) == 0 {
					lo = relation.NegInf
				}
				if rng.Intn(5) == 0 {
					hi = relation.PosInf
				}
				cons = append(cons, Constraint{EqPos: eqPos, EqVal: eqVal, Col: col, Lo: lo, Hi: hi})
			}
			// Terminators: everything above maxVal is covered on every axis.
			for d := 0; d < n; d++ {
				cons = append(cons, Constraint{Col: d, Lo: maxVal, Hi: relation.PosInf})
			}
			for _, con := range cons {
				c.InsConstraint(con)
			}

			// Oracle: all tuples over [-1, maxVal]^n not inside any box.
			var want [][3]int64
			var tup [n]int64
			var enumerate func(d int)
			enumerate = func(d int) {
				if d == n {
					for _, con := range cons {
						if boxCovers(con, tup[:]) {
							return
						}
					}
					want = append(want, [3]int64{tup[0], tup[1], tup[2]})
					return
				}
				for v := int64(-1); v <= maxVal; v++ {
					tup[d] = v
					enumerate(d + 1)
				}
			}
			enumerate(0)

			var got [][3]int64
			for c.ComputeFreeTuple() {
				ft := c.Frontier()
				got = append(got, [3]int64{ft[0], ft[1], ft[2]})
				if len(got) > len(want)+8 {
					return false // runaway enumeration
				}
				c.AdvanceOutput()
			}
			if len(got) != len(want) {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// boxCovers reports whether the constraint's gap box contains the tuple.
func boxCovers(c Constraint, t []int64) bool {
	for i, p := range c.EqPos {
		if t[p] != c.EqVal[i] {
			return false
		}
	}
	v := t[c.Col]
	return v > c.Lo && v < c.Hi
}
