package repro

import (
	"context"
	"testing"
)

func k4() *Graph {
	return NewGraph([][2]int64{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
}

func TestCountTrianglesAllEngines(t *testing.T) {
	g := k4()
	for _, alg := range []Algorithm{"", LFTJ, MS, PSQL, MonetDB, GraphLab} {
		got, err := Count(context.Background(), g, Triangles(), Options{Algorithm: alg})
		if err != nil {
			t.Fatalf("%q: %v", alg, err)
		}
		if got != 4 {
			t.Errorf("%q: triangles(K4) = %d, want 4", alg, got)
		}
	}
}

func TestGeneratedGraphConsistency(t *testing.T) {
	g := GenerateGraph(BarabasiAlbert, 400, 1600, 3)
	if g.Nodes() != 400 || g.Edges() == 0 {
		t.Fatalf("nodes=%d edges=%d", g.Nodes(), g.Edges())
	}
	ctx := context.Background()
	a, err := Count(ctx, g, Triangles(), Options{Algorithm: "lftj"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Count(ctx, g, Triangles(), Options{Algorithm: "ms"})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("lftj=%d ms=%d", a, b)
	}
}

func TestSelectivityAndSamples(t *testing.T) {
	g := GenerateGraph(ErdosRenyi, 200, 400, 5)
	g.SetSelectivity(10, 7)
	ctx := context.Background()
	n1, err := Count(ctx, g, Paths(3), Options{Algorithm: "ms"})
	if err != nil {
		t.Fatal(err)
	}
	n2, err := Count(ctx, g, Paths(3), Options{Algorithm: "lftj"})
	if err != nil {
		t.Fatal(err)
	}
	if n1 != n2 {
		t.Errorf("ms=%d lftj=%d", n1, n2)
	}
	g.SetSamples([]int64{0}, []int64{1})
	n3, err := Count(ctx, g, Paths(3), Options{Algorithm: "yannakakis"})
	if err != nil {
		t.Fatal(err)
	}
	n4, err := Count(ctx, g, Paths(3), Options{Algorithm: "lftj"})
	if err != nil {
		t.Fatal(err)
	}
	if n3 != n4 {
		t.Errorf("yannakakis=%d lftj=%d", n3, n4)
	}
}

func TestEnumerateAPI(t *testing.T) {
	g := k4()
	var rows [][]int64
	err := Enumerate(context.Background(), g, Triangles(), Options{}, func(tu []int64) bool {
		rows = append(rows, append([]int64(nil), tu...))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Errorf("enumerated %d rows, want 4", len(rows))
	}
}

func TestParseQueryAPI(t *testing.T) {
	q, err := ParseQuery("my-triangle", "fwd(a,b), fwd(b,c), fwd(a,c)")
	if err != nil {
		t.Fatal(err)
	}
	got, err := Count(context.Background(), k4(), q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Errorf("parsed triangle count = %d, want 4", got)
	}
}

func TestDatasetAPI(t *testing.T) {
	g, err := Dataset("ca-GrQc")
	if err != nil {
		t.Fatal(err)
	}
	if g.Nodes() != 5242 {
		t.Errorf("ca-GrQc nodes = %d, want 5242", g.Nodes())
	}
	if _, err := Dataset("nope"); err == nil {
		t.Error("unknown dataset should fail")
	}
}

func TestAGMBoundAPI(t *testing.T) {
	g := k4()
	bound, err := AGMBound(g, Triangles())
	if err != nil {
		t.Fatal(err)
	}
	// 6 oriented edges: bound = 6^1.5 ≈ 14.7 >= 4 actual triangles.
	if bound < 4 || bound > 15 {
		t.Errorf("AGM bound = %v, want in [4, 15]", bound)
	}
}

func TestBadAlgorithm(t *testing.T) {
	if _, err := Count(context.Background(), k4(), Triangles(), Options{Algorithm: "nope"}); err == nil {
		t.Error("unknown algorithm should fail")
	}
}

func TestHybridAPI(t *testing.T) {
	g := GenerateGraph(HolmeKim, 100, 500, 2)
	g.SetSelectivity(4, 9)
	ctx := context.Background()
	a, err := Count(ctx, g, Lollipops(2), Options{Algorithm: "hybrid"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Count(ctx, g, Lollipops(2), Options{Algorithm: "lftj"})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("hybrid=%d lftj=%d", a, b)
	}
}

func TestIdeaTogglesAPI(t *testing.T) {
	g := GenerateGraph(BarabasiAlbert, 150, 600, 4)
	g.SetSelectivity(10, 3)
	ctx := context.Background()
	base, err := Count(ctx, g, Comb(), Options{Algorithm: "ms"})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range []Options{
		{Algorithm: "ms", DisableProbeMemo: true},
		{Algorithm: "ms", DisableComplete: true},
		{Algorithm: "ms", DisableSkeleton: true},
		{Algorithm: "ms", DisableCountReuse: true},
	} {
		got, err := Count(ctx, g, Comb(), o)
		if err != nil {
			t.Fatal(err)
		}
		if got != base {
			t.Errorf("toggle %+v changed the count: %d vs %d", o, got, base)
		}
	}
}

func TestCountWithStatsAPI(t *testing.T) {
	g := GenerateGraph(BarabasiAlbert, 100, 400, 6)
	g.SetSelectivity(5, 2)
	n, stats, err := CountWithStats(context.Background(), g, Paths(3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Outputs != n || stats.Probes == 0 {
		t.Errorf("stats = %+v for count %d", stats, n)
	}
}

func TestMaintainCountAPI(t *testing.T) {
	ctx := context.Background()
	g := NewGraph([][2]int64{{0, 1}, {1, 2}})
	v, err := MaintainCount(ctx, g, Triangles())
	if err != nil {
		t.Fatal(err)
	}
	if v.Count() != 0 {
		t.Fatalf("initial = %d", v.Count())
	}
	if err := v.ApplyEdges(ctx, [][2]int64{{0, 2}}, nil); err != nil {
		t.Fatal(err)
	}
	if v.Count() != 1 {
		t.Errorf("after insert = %d, want 1", v.Count())
	}
	// The underlying graph relations changed too: a fresh engine count agrees.
	n, err := Count(ctx, g, Triangles(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("fresh count = %d, want 1", n)
	}
}

func TestTransitiveClosureAPI(t *testing.T) {
	ctx := context.Background()
	g := NewGraph([][2]int64{{0, 1}, {1, 2}})
	g.SetSamples([]int64{0}, []int64{2})
	if err := MaterializeTransitiveClosure(ctx, g); err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery("reach", "v1(a), tc(a, b), v2(b)")
	if err != nil {
		t.Fatal(err)
	}
	n, err := Count(ctx, g, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("reach = %d, want 1", n)
	}
}

func TestGenericJoinAPI(t *testing.T) {
	g := k4()
	n, err := Count(context.Background(), g, Triangles(), Options{Algorithm: "genericjoin"})
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("genericjoin triangles = %d, want 4", n)
	}
}
