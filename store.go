package repro

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/agm"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/query"
	"repro/internal/relation"
)

// ErrArityMismatch reports a query atom (or a loaded tuple) whose arity
// disagrees with the relation's declared arity; branch with errors.Is.
var ErrArityMismatch = errors.New("arity mismatch")

// ErrRelationExists reports a DefineRelation call that conflicts with an
// existing definition — same name, different arity. Redefining a relation at
// its current arity is a no-op, so schema setup is idempotent (recovery
// replay and client retries re-issue definitions freely).
var ErrRelationExists = errors.New("relation already defined")

// ErrValueOutOfRange reports a loaded or applied tuple value outside the
// storage domain [0, relation.PosInf) — the storage layer reserves negative
// values and the top of the int64 range as sentinels.
var ErrValueOutOfRange = errors.New("value outside the storage domain")

// checkDomain validates one tuple against the declared arity and the
// storage value domain, so the public write surface reports typed errors
// instead of tripping the storage layer's internal panics.
func checkDomain(op, name string, arity int, t []int64) error {
	if len(t) != arity {
		return fmt.Errorf("store: %w: %s of %d-ary tuple %v, relation %q has arity %d", ErrArityMismatch, op, len(t), t, name, arity)
	}
	for _, v := range t {
		if v < 0 || v >= relation.PosInf {
			return fmt.Errorf("store: %w: %s of tuple %v into %q (values must be in [0, %d))", ErrValueOutOfRange, op, t, name, relation.PosInf)
		}
	}
	return nil
}

// Store is the general-schema workload surface: a named collection of
// relations of arbitrary arity, queried with conjunctive graph-pattern
// queries over that schema. Where Graph exposes the paper's fixed §5.1
// benchmark schema (edge/fwd/v1..v4), a Store lets the caller define the
// schema — directed graphs, edge-labeled graphs (one relation per label),
// and arbitrary n-ary relations are all ordinary multi-relation schemas.
//
// The lifecycle is the one the paper assumes of LogicBlox: define the
// physical design once (DefineRelation + Load), compile queries against it
// once (Prepare), then execute repeatedly while Apply routes incremental
// update batches through the database's delta overlays so compiled plans
// stay valid. ReadTxn pins one index snapshot across several executions and
// Batch executes many prepared queries concurrently against one shared
// snapshot.
//
// A Store is safe for concurrent use.
type Store struct {
	db *core.DB
	// mu is the write lock: it serializes DefineRelation's exists-check
	// against its registration and, on a durable store, pairs every WAL
	// append with its in-memory apply so log order equals apply order.
	// Reads never take it (the database has its own lock); fsync waits
	// happen after it is released so concurrent writers group-commit.
	mu sync.Mutex
	// dur is the durability manager for stores opened with OpenStore; nil
	// for in-memory stores, which skip logging entirely.
	dur *durable.Manager
	// ckptBytes is DurabilityOptions.CheckpointBytes; ckptBusy keeps at
	// most one size-triggered background checkpoint in flight.
	ckptBytes int64
	ckptBusy  atomic.Bool
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{db: core.NewDB()}
}

// newStoreOver adopts an existing database (the Graph constructors build the
// benchmark schema through internal/dataset and wrap it as a store).
func newStoreOver(db *core.DB) *Store {
	return &Store{db: db}
}

// DefineRelation declares a named relation of the given arity and registers
// it empty, so queries over it compile before the first Load. Names must be
// identifiers ([A-Za-z_][A-Za-z0-9_]*) — the ParseQuery syntax has to be able
// to name them — and arity must be at least 1. Redefining a relation at its
// current arity is a no-op (schema setup is idempotent); redefining it at a
// different arity fails with ErrRelationExists. Use Load to replace a
// relation's contents.
func (s *Store) DefineRelation(name string, arity int) error {
	if !isIdent(name) {
		return fmt.Errorf("store: relation name %q is not an identifier", name)
	}
	if arity < 1 {
		return fmt.Errorf("store: relation %q: arity %d out of range (want >= 1)", name, arity)
	}
	s.mu.Lock()
	if cur, err := s.db.Relation(name); err == nil {
		defer s.mu.Unlock()
		if cur.Arity() == arity {
			return nil
		}
		return fmt.Errorf("store: %w: %q has arity %d, redefined as %d", ErrRelationExists, name, cur.Arity(), arity)
	}
	var lsn uint64
	if s.dur != nil {
		var err error
		if lsn, err = s.dur.AppendDefine(name, arity); err != nil {
			s.mu.Unlock()
			return err
		}
	}
	s.db.Add(relation.NewBuilder(name, arity).Build())
	s.mu.Unlock()
	if s.dur != nil {
		return s.dur.Commit(lsn)
	}
	return nil
}

// Relations returns the schema as sorted relation names; Arity looks up one
// relation's arity.
func (s *Store) Relations() []string {
	names := s.db.Names()
	sort.Strings(names)
	return names
}

// Arity returns the declared arity of the named relation
// (ErrUnknownRelation if it does not exist).
func (s *Store) Arity(name string) (int, error) {
	r, err := s.db.Relation(name)
	if err != nil {
		return 0, err
	}
	return r.Arity(), nil
}

// Load replaces the named relation's contents with the given tuples in one
// bulk registration (duplicates merge; tuples must match the declared arity
// and carry values in [0, relation.PosInf)). Loading rebuilds the relation's
// physical indexes and invalidates compiled plans that read it — it is the
// bulk path; route incremental changes through Apply, which keeps prepared
// plans on the default backend valid.
func (s *Store) Load(name string, tuples [][]int64) error {
	arity, err := s.Arity(name)
	if err != nil {
		return err
	}
	b := relation.NewBuilder(name, arity)
	for _, t := range tuples {
		if err := checkDomain("load", name, arity, t); err != nil {
			return err
		}
		b.Add(t...)
	}
	rel := b.Build()
	if s.dur == nil {
		s.db.Add(rel)
		return nil
	}
	s.mu.Lock()
	lsn, err := s.dur.AppendLoad(name, tuples)
	if err == nil {
		s.db.Add(rel)
	}
	s.mu.Unlock()
	if err != nil {
		return err
	}
	if err := s.dur.Commit(lsn); err != nil {
		return err
	}
	s.maybeCheckpoint()
	return nil
}

// Apply applies an incremental update batch to the named relation: inserts
// already present and deletes absent are ignored, and a tuple appearing on
// both sides of one batch resolves as delete-after-insert — an absent tuple
// stays absent, a present one is deleted. The batch routes through the
// database's delta path (core.DB.ApplyDelta), which folds it into the cached
// CSR indexes' delta overlays — compiled plans on the CSR backend (the
// default) stay valid and keep serving current data, which is what makes
// prepare-once / execute-repeatedly hold under a live write stream. Plans on
// the flat and csr-sharded backends hold immutable indexes and keep serving
// their Prepare-time state; re-Prepare those after writes.
func (s *Store) Apply(name string, inserts, deletes [][]int64) error {
	arity, err := s.Arity(name)
	if err != nil {
		return err
	}
	for _, t := range inserts {
		if err := checkDomain("insert", name, arity, t); err != nil {
			return err
		}
	}
	for _, t := range deletes {
		if err := checkDomain("delete", name, arity, t); err != nil {
			return err
		}
	}
	return s.applyDeltas([]core.DeltaBatch{{Name: name, Inserts: inserts, Deletes: deletes}})
}

// CheckQuery validates a query against the store's schema: every atom must
// name a stored relation (ErrUnknownRelation) with matching arity
// (ErrArityMismatch). Prepare and ParseQuery run it implicitly.
func (s *Store) CheckQuery(q *Query) error {
	if err := q.Validate(); err != nil {
		return err
	}
	for _, a := range q.Atoms {
		arity, err := s.Arity(a.Rel)
		if err != nil {
			return fmt.Errorf("store: query %q: %w", q.Name, err)
		}
		if arity != len(a.Vars) {
			return fmt.Errorf("store: query %q: %w: atom %s has %d variables but relation %q has arity %d",
				q.Name, ErrArityMismatch, a, len(a.Vars), a.Rel, arity)
		}
	}
	return nil
}

// ParseQuery parses the Datalog-style syntax over this store's schema and
// validates it eagerly. A bare body ("follows(a,b), follows(b,c)") outputs
// every variable; a full rule's head names the query and fixes — or projects
// — the output ("fof(a, c) :- follows(a, b), follows(b, c)" emits the
// distinct (a, c) pairs; "fof(c, b, a) :- ..." reorders). Atoms may carry
// integer constants ("e(a, 5)"), bodies may mix in comparison predicates
// ("a < b", "x >= 10"), and heads may end in aggregate terms
// ("deg(a, count(b)) :- e(a, b)") — see ParseQuery (package query) for the
// grammar. Unknown relations, arity mismatches, unbound head or predicate
// variables, and malformed syntax surface as typed errors
// (ErrUnknownRelation, ErrArityMismatch, ErrUnboundHeadVar,
// query.ErrUnboundPredVar, *query.SyntaxError).
func (s *Store) ParseQuery(name, src string) (*Query, error) {
	q, err := query.Parse(name, src)
	if err != nil {
		return nil, err
	}
	if err := s.CheckQuery(q); err != nil {
		return nil, err
	}
	return q, nil
}

// Prepare compiles the query against this store for the configured engine:
// schema check, algorithm/backend validation (ErrUnknownAlgorithm,
// ErrUnknownBackend), GAO resolution, and GAO-consistent index binding all
// happen here — every subsequent Count/Enumerate/Rows call on the returned
// handle is pure execution. Compiled plans are cached on the store's
// database, keyed on query shape × algorithm × backend × GAO.
func (s *Store) Prepare(q *Query, opts Options) (*Prepared, error) {
	if err := s.CheckQuery(q); err != nil {
		return nil, err
	}
	return prepare(s, q, opts)
}

// Count evaluates the query on the store and returns the number of results.
// It is a one-shot convenience over Prepare — repeated executions of the
// same query should hold a Prepared handle instead.
func (s *Store) Count(ctx context.Context, q *Query, opts Options) (int64, error) {
	p, err := s.Prepare(q, opts)
	if err != nil {
		return 0, err
	}
	return p.Count(ctx)
}

// Enumerate streams result tuples in output order (the head variables then
// any aggregate values; q.Vars() order for plain queries); emit returns
// false to stop early. One-shot convenience over Prepare.
func (s *Store) Enumerate(ctx context.Context, q *Query, opts Options, emit func([]int64) bool) error {
	p, err := s.Prepare(q, opts)
	if err != nil {
		return err
	}
	return p.Enumerate(ctx, emit)
}

// AGMBound returns the Atserias–Grohe–Marx worst-case output bound of the
// query on this store's relation sizes (paper Appendix A).
func (s *Store) AGMBound(q *Query) (float64, error) {
	sizes, err := relationSizes(s.db, q)
	if err != nil {
		return 0, fmt.Errorf("agm: %w", err)
	}
	res, err := agm.Compute(q, sizes)
	if err != nil {
		return 0, err
	}
	return res.Bound(), nil
}

// DB exposes the underlying database (for the benchmark harness and the
// internal packages).
func (s *Store) DB() *core.DB { return s.db }

// OverlayDepth returns the total pending delta-log size across the store's
// cached CSR indexes: tuples applied incrementally but not yet compacted
// into base tries. The server exports it per store as
// graphjoind_overlay_depth.
func (s *Store) OverlayDepth() int { return s.db.OverlayDepth() }

// isIdent reports whether name is a ParseQuery-compatible identifier.
func isIdent(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c == '_', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
