package hypergraph

import (
	"fmt"

	"repro/internal/query"
)

// IsChainGAO reports whether the given global attribute order satisfies the
// chain condition with respect to the given atoms: for every variable X, the
// family { vars(R) ∩ before(X) : R ∈ atoms, X ∈ vars(R) } must be totally
// ordered by inclusion. This is the property that makes every principal
// filter G_i of the Minesweeper CDS a chain (paper Prop 4.2); the paper
// calls such orders nested elimination orders (NEO).
func IsChainGAO(gao []string, atoms []query.Atom) bool {
	pos := make(map[string]int, len(gao))
	for i, v := range gao {
		pos[v] = i
	}
	for _, a := range atoms {
		for _, v := range a.Vars {
			if _, ok := pos[v]; !ok {
				return false // GAO must cover every variable
			}
		}
	}
	for k, x := range gao {
		var prefixes []map[string]bool
		for _, a := range atoms {
			has := false
			for _, v := range a.Vars {
				if v == x {
					has = true
					break
				}
			}
			if !has {
				continue
			}
			p := make(map[string]bool)
			for _, v := range a.Vars {
				if pos[v] < k {
					p[v] = true
				}
			}
			prefixes = append(prefixes, p)
		}
		for i := 0; i < len(prefixes); i++ {
			for j := i + 1; j < len(prefixes); j++ {
				if !subset(prefixes[i], prefixes[j]) && !subset(prefixes[j], prefixes[i]) {
					return false
				}
			}
		}
	}
	return true
}

// GAOScore is the paper's §4.9 selection criterion, concretized: the number
// of consecutive GAO pairs that co-occur in some atom ("the NEO with the
// longest path length ... longer paths allow for more caching"). For the
// 4-path query this ranks A,B,C,D,E above the other NEOs, matching Table 4.
func GAOScore(gao []string, atoms []query.Atom) int {
	score := 0
	for i := 0; i+1 < len(gao); i++ {
		if coOccur(gao[i], gao[i+1], atoms) {
			score++
		}
	}
	return score
}

func coOccur(x, y string, atoms []query.Atom) bool {
	for _, a := range atoms {
		hx, hy := false, false
		for _, v := range a.Vars {
			if v == x {
				hx = true
			}
			if v == y {
				hy = true
			}
		}
		if hx && hy {
			return true
		}
	}
	return false
}

// maxExhaustiveVars bounds exhaustive GAO search; the paper's queries have
// at most 7 variables.
const maxExhaustiveVars = 9

// FindChainGAO returns the best chain-valid GAO for the given atoms over the
// given variable universe, or ok == false if none exists (the sub-hypergraph
// is β-cyclic). For small queries the search is exhaustive; larger queries
// fall back to nest-point elimination orders.
func FindChainGAO(vars []string, atoms []query.Atom) (gao []string, ok bool) {
	if len(vars) <= maxExhaustiveVars {
		best, bestScore := []string(nil), -1
		perm := append([]string(nil), vars...)
		permute(perm, 0, func(p []string) {
			if !IsChainGAO(p, atoms) {
				return
			}
			if s := GAOScore(p, atoms); s > bestScore {
				bestScore = s
				best = append([]string(nil), p...)
			}
		})
		return best, best != nil
	}
	h := &Hypergraph{Vars: vars}
	for _, a := range atoms {
		h.Edges = append(h.Edges, a.Vars)
	}
	order, ok := h.NestPointElimination()
	if !ok || !IsChainGAO(order, atoms) {
		return nil, false
	}
	return order, true
}

func permute(p []string, k int, visit func([]string)) {
	if k == len(p) {
		visit(p)
		return
	}
	for i := k; i < len(p); i++ {
		p[k], p[i] = p[i], p[k]
		permute(p, k+1, visit)
		p[k], p[i] = p[i], p[k]
	}
}

// Plan is the structural execution plan for Minesweeper: the GAO, and for
// β-cyclic queries the β-acyclic skeleton (Idea 7) — the subset of atoms
// whose gaps become CDS constraints; gaps from the remaining atoms only
// advance the frontier.
type Plan struct {
	GAO        []string
	Skeleton   []int // atom indices in the skeleton
	OffSkel    []int // atom indices outside the skeleton
	BetaCyclic bool  // true if the full query needed a proper skeleton
}

// PlanQuery computes the GAO and skeleton for a query (paper §4.8, §4.9).
// For β-acyclic queries the skeleton is the whole query. For β-cyclic
// queries a maximal chain-valid subset of atoms is chosen greedily and the
// GAO is optimized for that skeleton (remaining variables, if any, are
// appended in first-appearance order; the chain condition is preserved
// because appended variables occur only in off-skeleton atoms).
func PlanQuery(q *query.Query) (*Plan, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if gao, ok := FindChainGAO(q.Vars(), q.Atoms); ok {
		skeleton := make([]int, len(q.Atoms))
		for i := range skeleton {
			skeleton[i] = i
		}
		return &Plan{GAO: gao, Skeleton: skeleton}, nil
	}
	// Greedy maximal chain-valid subset, preferring earlier atoms (samples
	// and path edges precede clique-closing edges in our builders).
	var skeleton []int
	var kept []query.Atom
	for i, a := range q.Atoms {
		trial := append(append([]query.Atom(nil), kept...), a)
		if _, ok := FindChainGAO(varsOf(trial), trial); ok {
			kept = trial
			skeleton = append(skeleton, i)
		}
	}
	if len(skeleton) == 0 {
		return nil, fmt.Errorf("hypergraph: no chain-valid skeleton for query %q", q.Name)
	}
	gao, _ := FindChainGAO(varsOf(kept), kept)
	// Append variables that occur only in off-skeleton atoms.
	inGAO := make(map[string]bool, len(gao))
	for _, v := range gao {
		inGAO[v] = true
	}
	for _, v := range q.Vars() {
		if !inGAO[v] {
			gao = append(gao, v)
		}
	}
	plan := &Plan{GAO: gao, Skeleton: skeleton, BetaCyclic: true}
	inSkel := make(map[int]bool, len(skeleton))
	for _, i := range skeleton {
		inSkel[i] = true
	}
	for i := range q.Atoms {
		if !inSkel[i] {
			plan.OffSkel = append(plan.OffSkel, i)
		}
	}
	return plan, nil
}

func varsOf(atoms []query.Atom) []string {
	var out []string
	seen := make(map[string]bool)
	for _, a := range atoms {
		for _, v := range a.Vars {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}
