package query

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse reads a query in the Datalog-style syntax the paper uses in §5.1 —
// either a bare body,
//
//	v1(a), v2(d), edge(a, b), edge(b, c), edge(c, d)
//
// or a full rule whose head names the query and fixes the output variable
// order (the head must list every body variable exactly once, each bound by
// some body atom):
//
//	chain(a, d) :- ...   // rejected: projection
//	chain(d, c, b, a) :- v1(a), edge(a, b), edge(b, c), edge(c, d)
//
// Relation and variable names are identifiers ([A-Za-z_][A-Za-z0-9_]*).
// Whitespace is insignificant. A trailing period is permitted. For a bare
// body the name argument names the query; a head overrides it.
func Parse(name, src string) (*Query, error) {
	p := &parser{src: src}
	var atoms []Atom
	var head *Atom
	p.skipSpace()
	for !p.done() {
		atom, err := p.atom()
		if err != nil {
			return nil, fmt.Errorf("query %q: %w", name, err)
		}
		p.skipSpace()
		if head == nil && len(atoms) == 0 && p.hasRuleArrow() {
			head = &atom
			p.pos += 2
			p.skipSpace()
			continue
		}
		atoms = append(atoms, atom)
		p.skipSpace()
		if p.peek() == ',' {
			p.pos++
			p.skipSpace()
			continue
		}
		if p.peek() == '.' {
			p.pos++
			p.skipSpace()
		}
		break
	}
	p.skipSpace()
	if !p.done() {
		return nil, fmt.Errorf("query %q: trailing input at offset %d: %q", name, p.pos, p.src[p.pos:])
	}
	var q *Query
	if head != nil {
		if len(atoms) == 0 {
			return nil, fmt.Errorf("query %q: rule %s has an empty body", name, head.Rel)
		}
		var err error
		q, err = NewHeaded(head.Rel, head.Vars, atoms...)
		if err != nil {
			return nil, err
		}
	} else {
		q = New(name, atoms...)
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse that panics on error, for statically known queries.
func MustParse(name, src string) *Query {
	q, err := Parse(name, src)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	src string
	pos int
}

func (p *parser) done() bool { return p.pos >= len(p.src) }

// hasRuleArrow reports whether ":-" starts at the current position.
func (p *parser) hasRuleArrow() bool {
	return p.pos+1 < len(p.src) && p.src[p.pos] == ':' && p.src[p.pos+1] == '-'
}

func (p *parser) peek() byte {
	if p.done() {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) skipSpace() {
	for !p.done() && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *parser) ident() (string, error) {
	start := p.pos
	for !p.done() {
		c := rune(p.src[p.pos])
		if unicode.IsLetter(c) || c == '_' || (p.pos > start && unicode.IsDigit(c)) {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return "", fmt.Errorf("expected identifier at offset %d", start)
	}
	return p.src[start:p.pos], nil
}

func (p *parser) atom() (Atom, error) {
	rel, err := p.ident()
	if err != nil {
		return Atom{}, err
	}
	p.skipSpace()
	if p.peek() != '(' {
		return Atom{}, fmt.Errorf("atom %s: expected '(' at offset %d", rel, p.pos)
	}
	p.pos++
	var vars []string
	for {
		p.skipSpace()
		v, err := p.ident()
		if err != nil {
			return Atom{}, fmt.Errorf("atom %s: %w", rel, err)
		}
		vars = append(vars, v)
		p.skipSpace()
		switch p.peek() {
		case ',':
			p.pos++
		case ')':
			p.pos++
			return Atom{Rel: rel, Vars: vars}, nil
		default:
			return Atom{}, fmt.Errorf("atom %s: expected ',' or ')' at offset %d", rel, p.pos)
		}
	}
}

// Format renders the query back to the paper's Datalog-style syntax.
func Format(q *Query) string {
	var b strings.Builder
	for i, a := range q.Atoms {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	return b.String()
}
